// Standalone server daemon: creates (or reopens) a database with one
// B-tree index (id 1), serves the wire protocol until SIGINT/SIGTERM,
// then drains gracefully and checkpoints.
//
//   gistcr_serverd --db=/tmp/mydb --port=4747 [--workers=4] [--maint-ms=500]

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "access/btree_extension.h"
#include "db/database.h"
#include "obs/flight_recorder.h"
#include "server/server.h"

namespace {

// Self-pipe: signal handlers may only write; main blocks on the read end.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  const char b = 1;
  (void)!::write(g_signal_pipe[1], &b, 1);
}

bool FileExists(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path = "/tmp/gistcr_serverd";
  uint16_t port = 4747;
  uint32_t workers = 4;
  uint32_t maint_ms = 500;
  for (int i = 1; i < argc; i++) {
    const char* a = argv[i];
    if (std::strncmp(a, "--db=", 5) == 0) {
      db_path = a + 5;
    } else if (std::strncmp(a, "--port=", 7) == 0) {
      port = static_cast<uint16_t>(std::atoi(a + 7));
    } else if (std::strncmp(a, "--workers=", 10) == 0) {
      workers = static_cast<uint32_t>(std::atoi(a + 10));
    } else if (std::strncmp(a, "--maint-ms=", 11) == 0) {
      maint_ms = static_cast<uint32_t>(std::atoi(a + 11));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--db=PATH] [--port=P] [--workers=N] "
                   "[--maint-ms=MS]\n",
                   argv[0]);
      return 2;
    }
  }

  gistcr::DatabaseOptions dopts;
  dopts.path = db_path;
  dopts.maintenance_interval_ms = maint_ms;
  const bool existing = FileExists(db_path + ".db");
  auto db_or = existing ? gistcr::Database::Open(dopts)
                        : gistcr::Database::Create(dopts);
  if (!db_or.ok()) {
    std::fprintf(stderr, "%s %s: %s\n", existing ? "open" : "create",
                 db_path.c_str(), db_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<gistcr::Database> db = db_or.MoveValue();
  gistcr::BtreeExtension bt;
  gistcr::Status st =
      existing ? db->OpenIndex(1, &bt) : db->CreateIndex(1, &bt);
  if (!st.ok()) {
    std::fprintf(stderr, "index 1: %s\n", st.ToString().c_str());
    return 1;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGPIPE, SIG_IGN);
  // Fatal signals dump the flight-recorder sidecar (<db>.flight) before
  // the default disposition re-raises; a post-mortem then has the trace
  // ring, metrics snapshot and slow-op ring of the moment of death.
  gistcr::obs::FlightRecorder::InstallSignalHandlers();

  gistcr::ServerOptions sopts;
  sopts.port = port;
  sopts.num_workers = workers;
  gistcr::Server server(db.get(), sopts);
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "listen on %u: %s\n", port, st.ToString().c_str());
    return 1;
  }
  std::printf("gistcr_serverd: %s database '%s', listening on port %u\n",
              existing ? "opened" : "created", db_path.c_str(),
              server.port());

  // Block until a signal arrives.
  pollfd pfd{g_signal_pipe[0], POLLIN, 0};
  while (::poll(&pfd, 1, -1) < 0) {
    // EINTR: the handler already wrote to the pipe; loop re-checks.
  }
  std::printf("signal received, draining...\n");
  st = server.Shutdown();
  if (!st.ok()) {
    std::fprintf(stderr, "shutdown: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("drained and checkpointed; bye\n");
  return 0;
}
