#!/usr/bin/env python3
"""gistcr_lint: protocol linter for the gistcr latch discipline.

Clang's thread-safety analysis checks mutex/field associations but cannot
express the paper's latch protocol (no I/O or lock waits while a node latch
is held, NSN/rightlink reads only under a latch). This linter enforces
those rules with file-local heuristics; see DESIGN.md section 10 for the
invariant-to-tool mapping.

Rules
-----
  io-under-latch
      No BufferPool::Fetch/NewPage or DiskManager::ReadPage/WritePage/Sync
      call (all of which may perform disk I/O) while a PageGuard latch is
      held in the enclosing scope. A latched frame pins a shared resource
      every other operation may need; I/O under it stretches the hold time
      from nanoseconds to milliseconds and, for fetches that evict, can
      deadlock against the WAL flush path.

  blocking-lock-under-latch
      No blocking lock-manager call (locks->Lock, locks->WaitForTxn) while
      a PageGuard latch is held. Lock waits are deadlock-checked only
      against other lock waits; a latch held across one creates a
      latch/lock cycle no detector sees (paper sections 5-6: operations
      release latches before blocking and re-position afterwards).

  raw-latch-primitive
      No std::mutex / std::shared_mutex / std::condition_variable /
      pthread primitives or direct .lock()/.unlock() calls outside the
      annotated wrappers in common/mutex.h (and the RAII types built on
      them). Raw primitives bypass both Clang thread-safety analysis and
      this linter's scope tracking.

  nsn-outside-node
      No nsn()/set_nsn()/rightlink()/set_rightlink() access outside
      gist/node.{h,cc} unless a latch is held in scope. The NSN/rightlink
      pair is the split-detection protocol (paper section 10.1); reading it
      unlatched can observe a half-installed split.

  unchecked-status
      Every call to a Status/StatusOr-returning function (collected from
      the src headers) must consume the result: assign it, return it, test
      it, wrap it in GISTCR_RETURN_IF_ERROR / an assertion, or cast to
      (void) deliberately.

  sync-under-mutex
      No fsync/fdatasync or DiskManager::Sync call while a MutexLock or
      SharedLock from common/mutex.h is held in the enclosing scope. A
      disk sync takes milliseconds; holding a mutex across one serializes
      every thread that touches the same shared state behind the platter
      (the whole point of the WAL flusher split, DESIGN.md section 11).
      MutexLock::Unlock()/Lock() windows are tracked: sync inside an
      unlocked window is fine.

  serialize-under-latch
      No observability serialization (DumpMetrics/DumpMetricsPrometheus/
      DumpPrometheus/DumpJson/DumpText/InspectJson/ExportTrace/
      ExportJsonString/Snapshot) while a PageGuard latch is held. These
      walk every registered metric or ring under the observability
      mutexes and build multi-kilobyte strings; doing that under a node
      latch turns a nanosecond-scale hold into a stats-scrape-scale one
      and inverts the intended latch < obs-mutex ordering.

  latch-inside-optimistic-section
      No blocking latch acquisition (PageGuard::RLatch/WLatch,
      FetchLatched, TreeLatch) while an OptimisticReadScope is live in the
      enclosing scope. The optimistic read protocol (DESIGN.md section 13)
      promises writers that readers never wait on them; a blocking latch
      inside the section breaks that promise and can deadlock against a
      writer spinning on the reader's pin. Try-acquires (TryWLatch) cannot
      block and are allowed. An active OptimisticReadScope also counts as
      protection for `nsn-outside-node`: the scope's discipline is that
      NSN/rightlink reads go through a version-validated snapshot copy,
      which is as stable as a latched read.

  predicate-attach-on-snapshot-path
      No predicate attach (SignalLock/Attach/AttachAndFindConflicts) and
      no blocking lock-manager call inside a function whose name marks it
      as part of the MVCC snapshot read path (contains "Snapshot").
      Snapshot readers promise zero lock-manager traffic (DESIGN.md
      section 14.3) — the lock.acquires counter asserts it dynamically,
      and the distinct Snapshot* naming of the read-path functions is
      what makes the promise statically checkable here.

  lock-rank-inversion
      Every long-lived mutex declares a rank from the global hierarchy in
      common/lock_rank.h via GISTCR_LOCK_RANK; page latches derive a rank
      class from their page type. Acquisitions must proceed in strictly
      increasing rank (equal ranks only where the rank is marked
      `coupling`). The analyzer tracks MutexLock/SharedLock/TreeLatch
      scopes, PageGuard latches (page class per file, see the
      page-latch-class directive below), and a call-summary table for the
      lock footprints of cross-module calls (pool fetches take the shard
      mutex, WAL appends take wal.mu, ...). DESIGN.md section 15 is the
      normative catalogue.

  lock-order
      Whole-program check over the same extraction: every acquisition
      edge (held lock -> acquired lock) from every analyzed file is
      merged into one directed graph; any cycle is a potential ABBA
      deadlock and is reported with one representative edge per leg,
      each carrying file:line evidence. `--dot FILE` writes the merged
      graph for visual inspection.

  stamping-epoch-unclosed
      A call to mvcc->BeginStamping opens a commit-stamping epoch that
      must be closed by StampCommit or CancelStamping on *every* path
      out of the enclosing scope (DESIGN.md section 14.6: an open epoch
      blocks snapshot-stamp publication forever). Flags any return —
      including the hidden returns in GISTCR_RETURN_IF_ERROR /
      GISTCR_ASSIGN_OR_RETURN — and any scope exit while an epoch is
      open.

  wal-append-after-unlatch
      A redo-logged page mutation must append its WAL record while the
      page latch is still held: the append assigns the LSN stamped into
      the page, and releasing the latch first lets a second writer
      interleave an older LSN over a newer image. Flags WAL appends of
      page-mutation record types (tracked through `rec.type =
      LogRecordType::k...` assignments) that execute after a latch
      release with no latch held. Txn-lifecycle records (Begin, Commit,
      Abort, End, NTA-End, checkpoints) are latch-free by design and
      exempt.

  redo-appends-wal
      Redo replays history; it must never create it. A WAL append inside
      a redo applier (a `Redo*` / `Apply*` / `Replay*` function) would
      assign fresh LSNs during recovery, corrupting the restart plan
      ordering and making recovery non-idempotent (DESIGN.md section
      16.6). Undo is exempt — it logs CLRs by design, and does so from
      `Undo*`-named functions.

Escape hatches
--------------
  // gistcr-lint: allow(<rule>)        on the offending line or the line
                                       directly above it
  // gistcr-lint: allow-file(<rule>)   anywhere in the file
  // gistcr-lint: page-latch-class(node|meta|bitmap|heap)
                                       file-wide page-latch rank class for
                                       PageGuard latches (default: node)

Every allow() should carry a justification comment; the suppression is the
documentation of a deliberate protocol exception.

Usage
-----
  gistcr_lint.py <path>...          lint .cc/.h files (dirs recursed)
  gistcr_lint.py --dot FILE <path>  also write the merged lock graph (DOT)
  gistcr_lint.py --self-test <dir>  run the fixture expectations in <dir>:
                                    *_bad.cc must trigger the rule named by
                                    its basename, *_good.cc must be clean
"""

import os
import re
import sys

RULES = (
    "io-under-latch",
    "blocking-lock-under-latch",
    "raw-latch-primitive",
    "nsn-outside-node",
    "unchecked-status",
    "sync-under-mutex",
    "serialize-under-latch",
    "latch-inside-optimistic-section",
    "predicate-attach-on-snapshot-path",
    "lock-rank-inversion",
    "lock-order",
    "stamping-epoch-unclosed",
    "wal-append-after-unlatch",
    "redo-appends-wal",
)

# --- directive extraction & source stripping -------------------------------

ALLOW_RE = re.compile(r"gistcr-lint:\s*allow\(([\w,\s-]+)\)")
ALLOW_FILE_RE = re.compile(r"gistcr-lint:\s*allow-file\(([\w,\s-]+)\)")


def collect_directives(lines):
    """Returns (per_line_allows, file_allows).

    per_line_allows[i] is the set of rules suppressed on 1-based line i; a
    directive on its own (otherwise empty/comment-only) line also applies
    to the following line.
    """
    per_line = {}
    file_allows = set()
    for i, line in enumerate(lines, start=1):
        m = ALLOW_FILE_RE.search(line)
        if m:
            file_allows.update(r.strip() for r in m.group(1).split(","))
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            per_line.setdefault(i, set()).update(rules)
            before = line.split("//", 1)[0].strip()
            if not before:  # directive-only line: covers the next line too
                per_line.setdefault(i + 1, set()).update(rules)
    return per_line, file_allows


def strip_code(text):
    """Blanks comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            else:
                out.append(c if c == "\n" else " ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


# --- Status-returning name collection --------------------------------------

STATUS_DECL_RE = re.compile(
    r"^\s*(?:virtual\s+)?(?:static\s+)?(?:\[\[nodiscard\]\]\s+)?"
    r"(?:Status|StatusOr<[^;{}()]*>)\s+(\w+)\s*\(",
    re.M,
)
OTHER_DECL_RE = re.compile(
    r"^\s*(?:virtual\s+)?(?:static\s+)?(?:constexpr\s+)?"
    r"(?:void|bool|int|size_t|uint\d+_t|int\d+_t|double|float|char|auto"
    r"|PageId|Lsn|TxnId|std::\w[\w:<>,\s]*?"
    r"|(?!Status\b|StatusOr\b)[A-Z]\w*(?:<[^;{}()]*>)?)"
    r"\s*[*&]?\s+(\w+)\s*\(",
    re.M,
)


def collect_status_names(src_root):
    """Names whose every header declaration returns Status/StatusOr."""
    status, other = set(), set()
    for root, _dirs, files in os.walk(src_root):
        for f in files:
            if not f.endswith(".h"):
                continue
            try:
                with open(os.path.join(root, f), encoding="utf-8") as fh:
                    text = strip_code(fh.read())
            except OSError:
                continue
            status.update(STATUS_DECL_RE.findall(text))
            other.update(OTHER_DECL_RE.findall(text))
    return status - other


# --- lock-hierarchy extraction ---------------------------------------------

# Enum entries in common/lock_rank.h; the trailing `// coupling` comment is
# the machine-readable same-rank-nesting allowance.
RANK_ENTRY_RE = re.compile(
    r"^[ \t]*(k\w+)[ \t]*=[ \t]*(\d+)[ \t]*,?[ \t]*(//\s*coupling)?", re.M)
# A ranked wrapper declaration: Mutex mu_{GISTCR_LOCK_RANK(kWal, "wal.mu")};
LOCK_ANNOT_RE = re.compile(
    r"\b(?:Mutex|SharedMutex)\s+(\w+)\s*\{\s*"
    r"GISTCR_LOCK_RANK\(\s*(k\w+)\s*,\s*\"([^\"]+)\"\s*\)")
CLASS_DECL_RE = re.compile(r"\b(?:class|struct)\s+(\w+)\s*(?:final\s*)?"
                           r"(?::[^{;]*)?\{")
IMPL_SIG_RE = re.compile(r"^[\w:<>,*&\s\[\]]*?\b(\w+)::~?\w+\s*\(")
PAGE_CLASS_RE = re.compile(
    r"gistcr-lint:\s*page-latch-class\((node|meta|bitmap|heap)\)")

# Page-latch rank classes (mirrors deadlock::PageRankFor / ClassName).
PAGE_CLASS_LOCKS = {
    "node": ("latch.node", "kNodeLatch"),
    "meta": ("latch.meta", "kMetaLatch"),
    "bitmap": ("latch.bitmap", "kBitmapLatch"),
    "heap": ("latch.heap", "kHeapLatch"),
}

# Lock footprints of cross-module calls: while the caller's held set is
# live, the callee transiently acquires (and releases) these locks. The
# table names receivers, not types — the codebase's naming is uniform
# enough (pool_/alloc/locks/mvcc_/txns_/log_) for that to be precise.
CALL_SUMMARIES = (
    (re.compile(r"(?:\.|->)\s*(?:Fetch|NewPage|Unpin|FlushAllPages)\s*\("),
     ("bp.shard.mu",)),
    (re.compile(r"(?:\.|->)\s*FlushPage\s*\("), ("bp.shard.mu", "wal.mu")),
    (re.compile(r"\bFetchLatched\s*\("), ("bp.shard.mu",)),
    (re.compile(r"\b(?:log_?|wal_?)(?:\(\))?\s*(?:\.|->)\s*"
                r"(?:Append\w*|Flush)\s*\("), ("wal.mu",)),
    (re.compile(r"(?:\.|->)\s*(?:AppendTxnLog|NtaEnd|NtaBegin)\s*\("),
     ("wal.mu",)),
    (re.compile(r"\balloc\w*(?:\(\))?\s*(?:\.|->)\s*(?:Allocate|Free)\s*\("),
     ("alloc.mu", "bp.shard.mu", "latch.bitmap", "wal.mu")),
    (re.compile(r"\block\w*(?:\(\))?\s*(?:\.|->)\s*(?:Lock|Unlock|"
                r"WaitForTxn|SignalLock|ReleaseAllFor|"
                r"ReplicateSharedHolders|CollectWaitsFor)\s*\("),
     ("lock.shard.mu",)),
    (re.compile(r"\b(?:Set|Clear)Pending\s*\("), ("lock.pending.mu",)),
    (re.compile(r"\bpred\w*(?:\(\))?\s*(?:\.|->)\s*Attach\w*\s*\("),
     ("preds.mu",)),
    (re.compile(r"\bmvcc\w*(?:\(\))?\s*(?:\.|->)\s*"
                r"(?:BeginSnapshot|EndSnapshot)\s*\("), ("mvcc.snap.mu",)),
    (re.compile(r"\bmvcc\w*(?:\(\))?\s*(?:\.|->)\s*"
                r"(?:BeginStamping|StampCommit|CancelStamping)\s*\("),
     ("mvcc.stamping.mu", "mvcc.shard.mu")),
    (re.compile(r"\bmvcc\w*(?:\(\))?\s*(?:\.|->)\s*"
                r"(?:Visible|Note\w+|OnAbort|Sweep)\s*\("),
     ("mvcc.shard.mu",)),
    (re.compile(r"\btxns?\w*(?:\(\))?\s*(?:\.|->)\s*"
                r"(?:IsActive|ActiveTxns)\s*\("), ("txn.mu",)),
)

MUTEX_SCOPE_EXPR_RE = re.compile(
    r"\b(?:MutexLock|SharedLock)\s+(\w+)\s*\(\s*([^;]*?)\s*\)\s*;")
LOCAL_TYPE_RE = re.compile(r"\b([A-Z]\w*)\s*[&*]+\s*(\w+)\s*=")
# Members that point at a ranked lock owned elsewhere (eviction writeback
# re-locks its shard through Frame::shard_mu_).
MEMBER_LOCK_HINTS = {"shard_mu_": "bp.shard.mu"}
TREE_LATCH_DECL_RE = re.compile(r"\bTreeLatch\s+(\w+)\s*\(")
LATCH_VERB_RE = re.compile(
    r"\b(\w+)\s*(?:\.|->)\s*(WLatch|RLatch|TryWLatch)\s*\(")


def parse_lock_ranks(src_root):
    """Returns ({kName: numeric rank}, {coupling-allowed kNames})."""
    ranks, coupling = {}, set()
    if not src_root:
        return ranks, coupling
    path = os.path.join(src_root, "common", "lock_rank.h")
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError:
        return ranks, coupling
    for m in RANK_ENTRY_RE.finditer(text):
        ranks[m.group(1)] = int(m.group(2))
        if m.group(3):
            coupling.add(m.group(1))
    return ranks, coupling


def class_stacks_by_line(lines):
    """For each (0-based) line, the tuple of enclosing class/struct names.

    Nested types report the whole chain (outer first), so a member of
    LockManager::Shard registers under both names — .cc code resolves
    `sh.mu` from LockManager method context without knowing Shard.
    """
    out = []
    depth = 0
    stack = []  # (class name, inside_depth)
    for line in lines:
        out.append(tuple(n for (n, _d) in stack))
        for m in CLASS_DECL_RE.finditer(line):
            pos = m.end() - 1  # the '{'
            d_at = depth + line[:pos].count("{") - line[:pos].count("}")
            stack.append((m.group(1), d_at + 1))
            out[-1] = tuple(n for (n, _d) in stack)
        depth += line.count("{") - line.count("}")
        if depth < 0:
            depth = 0
        stack = [(n, d) for (n, d) in stack if depth >= d]
    return out


class LockRegistry:
    """Declared ranks merged with GISTCR_LOCK_RANK annotations."""

    def __init__(self, ranks, coupling):
        self.ranks = ranks        # kName -> int
        self.coupling = coupling  # kNames allowing same-rank nesting
        self.locks = {}           # lock name -> kName
        self.members = {}         # (class, member) -> set of lock names
        self.member_names = {}    # member -> set of lock names

    def rank_of(self, lockname):
        return self.ranks.get(self.locks.get(lockname, ""), None)

    def allows_coupling(self, lockname):
        return self.locks.get(lockname, "") in self.coupling

    def add_file(self, path):
        """Collects annotations (with class context) from one file."""
        try:
            with open(path, encoding="utf-8") as fh:
                raw = fh.read()
        except OSError:
            return
        lines = raw.splitlines()
        stacks = class_stacks_by_line(strip_code(raw).splitlines())
        for i, line in enumerate(lines):
            for m in LOCK_ANNOT_RE.finditer(line):
                member, rank, lockname = m.groups()
                self.locks[lockname] = rank
                ctx = stacks[i] if i < len(stacks) else ()
                for cls in ctx:
                    self.members.setdefault(
                        (cls, member), set()).add(lockname)
                self.member_names.setdefault(member, set()).add(lockname)
        # Page-latch class nodes are always present.
        for _k, (lockname, rank) in PAGE_CLASS_LOCKS.items():
            self.locks.setdefault(lockname, rank)

    def resolve_member(self, classes, member, receiver_type=None):
        """Lock name for a member expression's trailing identifier.

        `classes` is the enclosing-class context (innermost last);
        `receiver_type` narrows nested-struct collisions (LockManager has
        Shard::mu *and* TxnShard::mu — `sh.mu` vs `ts.mu` resolve through
        the declared type of the receiver variable).
        """
        candidates = set()
        for cls in reversed(classes):
            candidates = set(self.members.get((cls, member), set()))
            if candidates:
                break
        if receiver_type is not None:
            by_type = self.members.get((receiver_type, member), set())
            narrowed = (candidates & by_type) if candidates else set(by_type)
            if narrowed:
                candidates = narrowed
        if not candidates:
            candidates = self.member_names.get(member, set())
        if len(candidates) == 1:
            return next(iter(candidates))
        return None  # unknown or ambiguous: invisible to the analysis


class LockGraphScanner:
    """Extracts acquisition events and edges from one file.

    Held state is tracked the same way FileLinter tracks latches: brace
    depth scoping for RAII scopes (MutexLock/SharedLock/TreeLatch,
    PageGuard latches) plus explicit Unlock()/Lock() windows. Call
    summaries contribute transient acquisitions (edge sources only while
    the call runs). Each blocking acquisition with a non-empty held set
    is rank-checked and adds held->acquired edges to the merged graph.
    """

    def __init__(self, path, registry, graph):
        self.path = path
        self.registry = registry
        self.graph = graph  # dict (src, dst) -> (path, line)
        self.findings = []

    def scan(self):
        try:
            with open(self.path, encoding="utf-8") as fh:
                raw = fh.read()
        except OSError:
            return []
        raw_lines = raw.splitlines()
        per_line_allows, file_allows = collect_directives(raw_lines)
        lines = strip_code(raw).splitlines()
        stacks = class_stacks_by_line(lines)

        page_cls = "node"
        for line in raw_lines:
            m = PAGE_CLASS_RE.search(line)
            if m:
                page_cls = m.group(1)
        page_lock = PAGE_CLASS_LOCKS[page_cls][0]

        reg = self.registry
        depth = 0
        impl_class = None  # Foo from `Ret Foo::Method(...)` definitions
        # Held entries: [lockname, decl_depth, raii_var|None, held_bool]
        holds = []
        guard_decl_depth = {}
        local_types = {}  # local ref/ptr var -> declared type name

        def context(i):
            ctx = list(stacks[i]) if i < len(stacks) else []
            if impl_class and impl_class not in ctx:
                ctx.insert(0, impl_class)
            return ctx

        def held_names():
            return [h[0] for h in holds if h[3]]

        def report(rule, msg, lineno):
            if rule in file_allows:
                return
            if rule in per_line_allows.get(lineno, set()):
                return
            self.findings.append((lineno, rule, msg))

        def acquire(lockname, lineno, blocking=True):
            rank = reg.rank_of(lockname)
            if rank is None:
                return
            held = [(n, reg.rank_of(n)) for n in held_names()]
            held = [(n, r) for (n, r) in held if r is not None]
            if blocking and held:
                top_name, top_rank = max(held, key=lambda h: h[1])
                if rank < top_rank:
                    report(
                        "lock-rank-inversion",
                        f"acquiring '{lockname}' (rank {rank}) while "
                        f"holding '{top_name}' (rank {top_rank}); ranks "
                        "must increase (common/lock_rank.h)", lineno)
                elif (rank == top_rank and top_name != lockname
                      and not reg.allows_coupling(lockname)):
                    report(
                        "lock-rank-inversion",
                        f"acquiring '{lockname}' at the same rank as held "
                        f"'{top_name}' without a coupling allowance",
                        lineno)
            for n, _r in held:
                if n != lockname:
                    self.graph.setdefault((n, lockname),
                                          (self.path, lineno))

        for lineno, line in enumerate(lines, start=1):
            i = lineno - 1
            if depth <= 2:
                m = IMPL_SIG_RE.match(line)
                if m:
                    impl_class = m.group(1)

            for m in GUARD_DECL_RE.finditer(line):
                guard_decl_depth[m.group(1)] = depth
            # Releases before acquisitions (same rationale as FileLinter).
            for m in LATCH_REL_RE.finditer(line):
                var = m.group(1)
                for h in reversed(holds):
                    if h[2] == var:
                        holds.remove(h)
                        break
            for m in MUTEX_UNLOCK_RE.finditer(line):
                for h in holds:
                    if h[2] == m.group(1):
                        h[3] = False
            for m in MUTEX_RELOCK_RE.finditer(line):
                for h in holds:
                    if h[2] == m.group(1):
                        h[3] = True

            # Transient callee footprints.
            for call_re, locknames in CALL_SUMMARIES:
                if call_re.search(line):
                    for n in locknames:
                        acquire(n, lineno)

            # Receiver types for nested-struct disambiguation.
            for m in LOCAL_TYPE_RE.finditer(line):
                local_types[m.group(2)] = m.group(1)

            # RAII mutex scopes.
            for m in MUTEX_SCOPE_EXPR_RE.finditer(line):
                var, expr = m.groups()
                em = re.match(
                    r"(?:\*\s*)?(?:(\w+)\s*(?:\.|->)\s*)?(\w+)$", expr)
                lockname = None
                if em:
                    receiver, member = em.groups()
                    lockname = MEMBER_LOCK_HINTS.get(member)
                    if lockname is None:
                        lockname = reg.resolve_member(
                            context(i), member,
                            receiver_type=local_types.get(receiver))
                if lockname is not None:
                    acquire(lockname, lineno)
                    holds.append([lockname, depth, var, True])

            # TreeLatch RAII (argument may continue on the next line).
            for m in TREE_LATCH_DECL_RE.finditer(line):
                tail = line[m.end():] + " " + \
                    (lines[i + 1] if i + 1 < len(lines) else "")
                em = re.search(r"&\s*(?:\w+(?:\.|->))*(\w+)", tail)
                lockname = reg.resolve_member(
                    context(i), em.group(1)) if em else None
                if lockname is not None:
                    acquire(lockname, lineno)
                    holds.append([lockname, depth, m.group(1), True])

            # PageGuard latches -> the file's page class node.
            for m in LATCH_VERB_RE.finditer(line):
                var, verb = m.groups()
                blocking = verb != "TryWLatch"
                acquire(page_lock, lineno, blocking=blocking)
                holds.append(
                    [page_lock, guard_decl_depth.get(var, depth), var, True])
            for m in ADDR_OF_GUARD_RE.finditer(line):
                var = m.group(1)
                if var in guard_decl_depth and \
                        re.search(r"\bFetchLatched\s*\(|Parent", line):
                    acquire(page_lock, lineno)
                    holds.append(
                        [page_lock, guard_decl_depth[var], var, True])
            for m in MOVE_FROM_GUARD_RE.finditer(line):
                dst_deref, dst, _sd, src = m.groups()
                for h in list(holds):
                    if h[2] == src and h[0] == page_lock:
                        if dst_deref:
                            continue
                        h[2] = dst
                        h[1] = guard_decl_depth.get(dst, h[1])

            depth += line.count("{") - line.count("}")
            if depth < 0:
                depth = 0
            holds = [h for h in holds if h[1] <= depth]
            if depth == 0:
                holds = []
                guard_decl_depth = {}
                local_types = {}
                impl_class = None
        return self.findings


def detect_cycles(graph, registry):
    """Findings for every elementary cycle family in the merged graph.

    One finding per strongly-connected component with a cycle; the
    message walks one representative cycle with per-edge evidence.
    """
    adj = {}
    for (src, dst) in graph:
        adj.setdefault(src, []).append(dst)
        adj.setdefault(dst, [])
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    def strongconnect(v):
        # Iterative Tarjan (fixture graphs are tiny, src graphs small,
        # but recursion limits are not worth risking).
        work = [(v, iter(adj[v]))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(adj[w])))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                low[work[-1][0]] = min(low[work[-1][0]], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                sccs.append(comp)

    for v in adj:
        if v not in index:
            strongconnect(v)

    findings = []
    for comp in sccs:
        comp_set = set(comp)
        cyclic = len(comp) > 1 or any(
            (v, v) in graph for v in comp)
        if not cyclic:
            continue
        # Walk one cycle inside the component for the report.
        start = comp[0]
        path = [start]
        seen = {start}
        cur = start
        while True:
            nxt = next((w for w in adj[cur]
                        if w in comp_set and (w == start or w not in seen)),
                       None)
            if nxt is None or nxt == start:
                break
            path.append(nxt)
            seen.add(nxt)
            cur = nxt
        legs = []
        evidence = None
        for k, src in enumerate(path):
            dst = path[(k + 1) % len(path)]
            ev = graph.get((src, dst))
            if ev and evidence is None:
                evidence = ev
            where = f" [{ev[0]}:{ev[1]}]" if ev else ""
            legs.append(f"{src} -> {dst}{where}")
        msg = ("lock acquisition cycle (potential ABBA deadlock): "
               + "; ".join(legs))
        where = evidence or ("<merged>", 0)
        findings.append((where[0], where[1], "lock-order", msg))
    return findings


def write_dot(graph, registry, out_path):
    nodes = {}
    for (src, dst) in graph:
        for n in (src, dst):
            nodes[n] = registry.rank_of(n)
    lines = ["digraph lock_order {", "  rankdir=LR;",
             '  node [shape=box, fontname="monospace"];']
    for n in sorted(nodes, key=lambda x: (nodes[x] or 0, x)):
        r = nodes[n]
        label = f"{n}\\nrank {r}" if r is not None else n
        lines.append(f'  "{n}" [label="{label}"];')
    for (src, dst), (path, lineno) in sorted(graph.items()):
        lines.append(
            f'  "{src}" -> "{dst}" '
            f'[label="{os.path.basename(path)}:{lineno}", fontsize=9];')
    lines.append("}")
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


# --- the per-file scanner ---------------------------------------------------

LATCH_ACQ_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*(?:WLatch|RLatch|TryWLatch)\s*\(")
# Any call that takes the address of a local PageGuard latches it on
# success (FetchLatched, FindParentExhaustive, LatchParentForChild, ...).
ADDR_OF_GUARD_RE = re.compile(r"&\s*(\w+)\s*[,)]")
LATCH_REL_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*(?:Unlatch|Drop)\s*\(")
GUARD_DECL_RE = re.compile(r"\bPageGuard\s+(\w+)\s*[;({=]")
# Latch transfer through moves. `*out = std::move(g)` (deref destination)
# is an out-parameter hand-off on a branch that returns immediately — the
# fall-through code still holds `g`, so it does not release anything.
MOVE_FROM_GUARD_RE = re.compile(
    r"(\*?)\s*(\w+)\s*=\s*std::move\(\s*(\*?)\s*(\w+)\s*\)")

IO_RE = re.compile(
    r"(?:\.|->)\s*(?:Fetch|NewPage|ReadPage|WritePage|Sync)\s*\("
    r"|\bFetchLatched\s*\("
)
BLOCKING_LOCK_RE = re.compile(
    r"\block(?:s|s_|_manager_?)?(?:\(\))?\s*(?:\.|->)\s*(?:Lock|WaitForTxn)\s*\("
)
RAW_PRIMITIVE_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock)\b"
    r"|\bpthread_(?:mutex|rwlock|cond)\w*"
    r"|\b\w+(?:\.|->)(?:try_)?lock(?:_shared)?\s*\(\s*\)"
    r"|\b\w+(?:\.|->)unlock(?:_shared)?\s*\(\s*\)"
)
NSN_RE = re.compile(r"(?:\.|->)\s*(?:set_)?(?:nsn|rightlink)\s*\(")
# latch-inside-optimistic-section: OptimisticReadScope tracking against
# blocking latch acquisitions. TryWLatch is excluded (the regex anchors
# the latch verb directly after . or ->, so `.TryWLatch(` cannot match).
OPT_SCOPE_DECL_RE = re.compile(r"\bOptimisticReadScope\s+(\w+)\s*[;({]")
BLOCKING_LATCH_RE = re.compile(
    r"(?:\.|->)\s*(?:WLatch|RLatch)\s*\("
    r"|\bFetchLatched\s*\("
    r"|\bTreeLatch\s+\w+\s*[({]"
    r"|\b\w+\s*(?:\.|->)\s*Acquire\s*\(\s*\)"
)
SERIALIZE_RE = re.compile(
    r"(?:\.|->|::)\s*(?:DumpMetrics(?:Prometheus)?|DumpPrometheus|DumpJson|"
    r"DumpText|InspectJson|ExportTrace|ExportJsonString|Snapshot)\s*\("
)

# predicate-attach-on-snapshot-path: function-definition detection for the
# snapshot read path (distinctly named Snapshot* family: SearchSnapshot,
# ProcessStackEntrySnapshot[Latched], ...) and the calls banned inside it.
# The signature regex anchors at line start so receiver-qualified *calls*
# (`mvcc->BeginSnapshot(...)`) never match.
SNAPSHOT_SIG_RE = re.compile(
    r"^\s*[\w:<>,*&\s]*?\b(?:\w+::)?(\w*Snapshot\w*)\s*\(")

# redo-appends-wal: redo appliers replay logged history and must not
# append records of their own (undo logs CLRs, but from Undo*-named
# functions). `AppendAt` (heap-page slot write) deliberately does not
# match: the paren must follow Append/AppendTxnLog directly.
REDO_SIG_RE = re.compile(
    r"^\s*[\w:<>,*&\s]*?\b(?:\w+::)?((?:Redo|Apply|Replay)\w*)\s*\(")
REDO_WAL_APPEND_RE = re.compile(
    r"(?:\.|->)\s*(?:AppendTxnLog|Append)\s*\(")
PREDICATE_ATTACH_RE = re.compile(
    r"(?:\.|->)\s*Attach(?:AndFindConflicts|Predicate)?\s*\("
    r"|\bSignalLock\s*\(")

# sync-under-mutex: scoped-lock tracking (MutexLock/SharedLock from
# common/mutex.h) plus the explicit Unlock()/Lock() windows MutexLock
# supports, against direct disk syncs.
MUTEX_SCOPE_DECL_RE = re.compile(r"\b(?:MutexLock|SharedLock)\s+(\w+)\s*[({]")
MUTEX_UNLOCK_RE = re.compile(r"\b(\w+)\s*\.\s*Unlock\s*\(\s*\)")
MUTEX_RELOCK_RE = re.compile(r"\b(\w+)\s*\.\s*Lock\s*\(\s*\)")
SYNC_CALL_RE = re.compile(
    r"\b(?:::\s*)?f(?:data)?sync\s*\(|(?:\.|->)\s*Sync\s*\(")

# stamping-epoch-unclosed: epoch opens on a receiver-qualified
# BeginStamping call (the definition in mvcc_manager.cc is unqualified and
# must not count) and closes on any StampCommit/CancelStamping.
STAMPING_OPEN_RE = re.compile(r"(?:\.|->)\s*BeginStamping\s*\(")
STAMPING_CLOSE_RE = re.compile(r"\b(?:StampCommit|CancelStamping)\s*\(")
RETURN_STMT_RE = re.compile(
    r"^\s*(?:GISTCR_RETURN_IF_ERROR|GISTCR_ASSIGN_OR_RETURN)\b"
    r"|\breturn\b")

# wal-append-after-unlatch: record types tracked through the standard
# `rec.type = LogRecordType::k...;` setup idiom; txn-lifecycle records are
# appended latch-free by design.
REC_TYPE_RE = re.compile(r"\b(\w+)\s*\.\s*type\s*=\s*LogRecordType::k(\w+)")
WAL_APPEND_RE = re.compile(
    r"(?:\.|->)\s*(?:AppendTxnLog|Append)\s*\(\s*(?:\w+\s*,\s*)?&?\s*(\w+)"
    r"\s*\)")
LIFECYCLE_LOG_TYPES = {
    "Begin", "Commit", "Abort", "End", "NtaEnd",
    "Checkpoint", "CheckpointBegin", "CheckpointEnd",
}

# latch-inside-optimistic-section, generalized: any blocking mutex
# acquisition inside the seqlock section is as much a broken promise as a
# latch — the reader may wait on a thread that is spinning on the
# reader's validation window.
OPT_BLOCKING_MUTEX_RE = re.compile(
    r"\b(?:MutexLock|SharedLock)\s+\w+\s*[({]"
    r"|(?:\.|->)\s*(?:WaitForTxn|Flush)\s*\(")

CONTROL_KEYWORDS = (
    "if", "while", "for", "switch", "return", "case", "else", "do",
    "sizeof", "new", "delete", "co_return", "co_await",
)
CALL_STMT_RE = re.compile(r"^\s*((?:\w+\s*(?:\(\s*\))?\s*(?:\.|->|::)\s*)*)(\w+)\s*\(")


class FileLinter:
    def __init__(self, path, status_names):
        self.path = path
        self.status_names = status_names
        self.findings = []  # (line, rule, message)

    def lint(self):
        try:
            with open(self.path, encoding="utf-8") as fh:
                raw = fh.read()
        except OSError as e:
            print(f"gistcr_lint: cannot read {self.path}: {e}",
                  file=sys.stderr)
            return []
        raw_lines = raw.splitlines()
        per_line_allows, file_allows = collect_directives(raw_lines)
        lines = strip_code(raw).splitlines()

        in_node_file = os.path.basename(self.path) in ("node.h", "node.cc")

        depth = 0
        latches = []  # list of (var, entry_depth)
        guard_decl_depth = {}  # PageGuard var -> declaration depth
        mutex_holds = {}  # scoped-lock var -> [decl_depth, currently_held]
        opt_scopes = []  # list of (var, decl_depth) OptimisticReadScope RAIIs
        prev_code = ""  # last non-blank stripped line (statement context)
        stamping_open = None  # (open line, open depth) of a live epoch
        release_floors = []  # decl depths of guards released in this scope
        rec_types = {}  # LogRecord var -> (type name, tracking depth)

        for lineno, line in enumerate(lines, start=1):
            for m in GUARD_DECL_RE.finditer(line):
                guard_decl_depth[m.group(1)] = depth
            # Releases first: `g.Drop(); pool->Fetch(...)` on one line is
            # not a violation. A release inside a conditional that then
            # exits the block (continue/break/return) is branch-local:
            # the fall-through path still holds the latch.
            for m in LATCH_REL_RE.finditer(line):
                var = m.group(1)
                entry = next(
                    (d for (v, d) in latches if v == var), None)
                if entry is not None and depth > entry:
                    early_exit = False
                    for ahead in lines[lineno:lineno + 6]:
                        a = ahead.strip()
                        if re.match(r"(continue|break|return)\b", a):
                            early_exit = True
                            break
                        if a.startswith("}"):
                            break
                    if early_exit:
                        continue
                if any(v == var for (v, _d) in latches):
                    release_floors.append(guard_decl_depth.get(var, depth))
                latches = [(v, d) for (v, d) in latches if v != var]

            held = bool(latches)
            in_opt = bool(opt_scopes)

            def report(rule, msg, _lineno=lineno):
                if rule in file_allows:
                    return
                if rule in per_line_allows.get(_lineno, set()):
                    return
                self.findings.append((_lineno, rule, msg))

            if held and IO_RE.search(line):
                report(
                    "io-under-latch",
                    "possible I/O (Fetch/NewPage/ReadPage/WritePage/Sync) "
                    f"while latch on '{latches[-1][0]}' is held",
                )
            if held and BLOCKING_LOCK_RE.search(line):
                # A trailing `false)` argument is the try-only (wait=false)
                # form, which cannot block.
                stmt = line
                for ahead in lines[lineno:lineno + 4]:
                    if ";" in stmt:
                        break
                    stmt += " " + ahead.strip()
                if not re.search(r",\s*false\s*\)\s*;", stmt):
                    report(
                        "blocking-lock-under-latch",
                        "blocking lock-manager call while latch on "
                        f"'{latches[-1][0]}' is held",
                    )
            if RAW_PRIMITIVE_RE.search(line):
                report(
                    "raw-latch-primitive",
                    "raw synchronization primitive; use the annotated "
                    "wrappers in common/mutex.h",
                )
            # An active OptimisticReadScope protects NSN/rightlink reads:
            # the section's discipline is that node bytes come from a
            # version-validated snapshot copy (DESIGN.md section 13), which
            # is as stable as a latched read.
            if not in_node_file and not held and not in_opt and \
                    NSN_RE.search(line):
                report(
                    "nsn-outside-node",
                    "nsn/rightlink access with no latch held in scope",
                )
            if in_opt and BLOCKING_LATCH_RE.search(line):
                report(
                    "latch-inside-optimistic-section",
                    "blocking latch acquisition while OptimisticReadScope "
                    f"'{opt_scopes[-1][0]}' is live; optimistic readers "
                    "must fall back (drop the scope) before latching",
                )
            if in_opt and OPT_BLOCKING_MUTEX_RE.search(line):
                report(
                    "latch-inside-optimistic-section",
                    "blocking mutex/wait acquisition while "
                    f"OptimisticReadScope '{opt_scopes[-1][0]}' is live; "
                    "no blocking acquire of any kind inside a seqlock "
                    "section",
                )
            if held and SERIALIZE_RE.search(line):
                report(
                    "serialize-under-latch",
                    "observability serialization (metrics/slow-op/trace "
                    "dump) while latch on "
                    f"'{latches[-1][0]}' is held; scrape outside the latch",
                )

            # sync-under-mutex: explicit Unlock() opens a window before the
            # sync check; Lock() closes it after (both processed in line
            # order relative to the sync call's position).
            for m in MUTEX_UNLOCK_RE.finditer(line):
                if m.group(1) in mutex_holds:
                    mutex_holds[m.group(1)][1] = False
            sync_m = SYNC_CALL_RE.search(line)
            if sync_m:
                holder = next(
                    (v for v, (_d, h) in mutex_holds.items() if h), None)
                if holder is not None:
                    report(
                        "sync-under-mutex",
                        "disk sync (fsync/fdatasync/DiskManager::Sync) "
                        f"while MutexLock '{holder}' is held; release the "
                        "mutex across the sync (see the WAL flusher)",
                    )
            for m in MUTEX_RELOCK_RE.finditer(line):
                if m.group(1) in mutex_holds:
                    mutex_holds[m.group(1)][1] = True
            for m in MUTEX_SCOPE_DECL_RE.finditer(line):
                mutex_holds[m.group(1)] = [depth, True]
            for m in OPT_SCOPE_DECL_RE.finditer(line):
                opt_scopes.append((m.group(1), depth))

            # stamping-epoch-unclosed: closes processed before the return
            # check so `CancelStamping(...); return st;` sequences pass.
            if stamping_open is not None and STAMPING_CLOSE_RE.search(line):
                stamping_open = None
            if stamping_open is not None and RETURN_STMT_RE.search(line):
                report(
                    "stamping-epoch-unclosed",
                    "return while the stamping epoch opened on line "
                    f"{stamping_open[0]} is still open; every path must "
                    "run StampCommit or CancelStamping first",
                )
            if STAMPING_OPEN_RE.search(line):
                stamping_open = (lineno, depth)

            # wal-append-after-unlatch: a page-mutation record appended
            # with no latch held after some latch was released.
            for m in REC_TYPE_RE.finditer(line):
                rec_types[m.group(1)] = (m.group(2), depth)
            if not held and release_floors:
                am = WAL_APPEND_RE.search(line)
                if am:
                    rtype = rec_types.get(am.group(1), (None, 0))[0]
                    if rtype is not None and \
                            rtype not in LIFECYCLE_LOG_TYPES:
                        report(
                            "wal-append-after-unlatch",
                            f"WAL append of page-mutation record 'k{rtype}'"
                            " after latch release with no latch held; the "
                            "append must run under the latch that covers "
                            "the page image it stamps",
                        )

            self.check_unchecked_status(line, prev_code, lineno, report)

            # Acquisitions after checks: the latched call itself (e.g.
            # FetchLatched) is judged against the *prior* latch set. A
            # guard declared in an outer scope keeps its latch past the
            # block it was (re-)latched in, so the entry depth is the
            # declaration depth when known.
            for m in LATCH_ACQ_RE.finditer(line):
                var = m.group(1)
                latches.append((var, guard_decl_depth.get(var, depth)))
            for m in ADDR_OF_GUARD_RE.finditer(line):
                var = m.group(1)
                if var in guard_decl_depth:
                    latches.append((var, guard_decl_depth[var]))
            for m in MOVE_FROM_GUARD_RE.finditer(line):
                dst_deref, dst, src_deref, src = m.groups()
                if dst_deref:
                    continue  # out-param hand-off; fall-through keeps src
                src_held = any(v == src for (v, _d) in latches)
                if src_held or (src_deref and dst in guard_decl_depth):
                    latches = [(v, d) for (v, d) in latches if v != src]
                    latches.append((dst, guard_decl_depth.get(dst, depth)))

            depth += line.count("{") - line.count("}")
            if depth < 0:
                depth = 0
            latches = [(v, d) for (v, d) in latches if d <= depth]
            mutex_holds = {
                v: s for v, s in mutex_holds.items() if s[0] <= depth
            }
            opt_scopes = [(v, d) for (v, d) in opt_scopes if d <= depth]
            if stamping_open is not None and depth < stamping_open[1]:
                report("stamping-epoch-unclosed",
                       "scope exits with the stamping epoch opened on "
                       f"line {stamping_open[0]} still open",
                       _lineno=stamping_open[0])
                stamping_open = None
            release_floors = [f for f in release_floors if f <= depth]
            rec_types = {
                v: t for v, t in rec_types.items() if t[1] <= depth
            }
            if depth == 0:
                latches = []
                guard_decl_depth = {}
                mutex_holds = {}
                opt_scopes = []
                stamping_open = None
                release_floors = []
                rec_types = {}
            if line.strip():
                prev_code = line.strip()

        self.check_snapshot_paths(lines, per_line_allows, file_allows)
        self.check_redo_paths(lines, per_line_allows, file_allows)
        return self.findings

    def check_snapshot_paths(self, lines, per_line_allows, file_allows):
        """Second pass: predicate-attach-on-snapshot-path.

        Finds each Snapshot*-named function *definition*, brace-matches its
        body, and flags predicate attaches / blocking lock-manager calls
        inside. Scope tracking is separate from the latch pass because the
        unit here is the whole function, not a brace depth.
        """
        rule = "predicate-attach-on-snapshot-path"
        i, n = 0, len(lines)
        while i < n:
            m = SNAPSHOT_SIG_RE.match(lines[i])
            if not m or lines[i][: m.start(1)].strip().endswith(
                    ("return", "=", ".", "->")):
                i += 1
                continue
            name = m.group(1)
            # Brace-match from the signature. A `;` before any `{` means
            # this was a declaration (or a call statement), not a body.
            depth = 0
            opened = False
            j = i
            while j < n:
                for c in lines[j]:
                    if c == "{":
                        depth += 1
                        opened = True
                    elif c == "}":
                        depth -= 1
                if not opened and ";" in lines[j]:
                    break
                j += 1
                if opened and depth <= 0:
                    break
            if not opened:
                i += 1
                continue
            for k in range(i, j):
                if PREDICATE_ATTACH_RE.search(lines[k]) or \
                        BLOCKING_LOCK_RE.search(lines[k]):
                    if rule in file_allows or \
                            rule in per_line_allows.get(k + 1, set()):
                        continue
                    self.findings.append((
                        k + 1, rule,
                        "predicate attach / lock-manager call inside "
                        f"snapshot read path '{name}'; snapshot readers "
                        "must touch zero lock-manager state "
                        "(DESIGN.md section 14.3)",
                    ))
            i = j if j > i else i + 1

    def check_redo_paths(self, lines, per_line_allows, file_allows):
        """Second pass: redo-appends-wal.

        Finds each Redo*/Apply*/Replay*-named function *definition*,
        brace-matches its body, and flags WAL appends inside. Same
        whole-function scoping as check_snapshot_paths.
        """
        rule = "redo-appends-wal"
        i, n = 0, len(lines)
        while i < n:
            m = REDO_SIG_RE.match(lines[i])
            if not m or lines[i][: m.start(1)].strip().endswith(
                    ("return", "=", ".", "->")):
                i += 1
                continue
            name = m.group(1)
            # Brace-match from the signature; `;` before any `{` means a
            # declaration (or call statement), not a body.
            depth = 0
            opened = False
            j = i
            while j < n:
                for c in lines[j]:
                    if c == "{":
                        depth += 1
                        opened = True
                    elif c == "}":
                        depth -= 1
                if not opened and ";" in lines[j]:
                    break
                j += 1
                if opened and depth <= 0:
                    break
            if not opened:
                i += 1
                continue
            for k in range(i, j):
                if REDO_WAL_APPEND_RE.search(lines[k]):
                    if rule in file_allows or \
                            rule in per_line_allows.get(k + 1, set()):
                        continue
                    self.findings.append((
                        k + 1, rule,
                        f"WAL append inside redo applier '{name}'; redo "
                        "replays logged history and must never append "
                        "records of its own (DESIGN.md section 16.6)",
                    ))
            i = j if j > i else i + 1

    def check_unchecked_status(self, line, prev_code, lineno, report):
        m = CALL_STMT_RE.match(line)
        if not m:
            return
        name = m.group(2)
        if name not in self.status_names:
            return
        if name in CONTROL_KEYWORDS or m.group(1).strip() == "":
            # A bare `Name(...)` with no receiver is commonly a local or a
            # constructor; only flag explicit member/namespace calls plus
            # bare names we are sure about -- keep receiver-qualified only.
            if m.group(1).strip() == "" and not re.match(
                    rf"^\s*{name}\s*\([^;]*\)\s*;", line):
                return
        # Statement must start fresh (previous code line ended a statement
        # or opened a block), otherwise we are inside an expression whose
        # context consumes the value.
        if prev_code and prev_code[-1] not in "{};":
            return
        # The call's own line must not capture or forward the result.
        if not re.search(r"\)\s*;\s*$", line):
            return  # multi-line call or used in larger expression: skip
        report(
            "unchecked-status",
            f"result of Status-returning call '{name}' is ignored "
            "(assign, test, GISTCR_RETURN_IF_ERROR, or cast to (void))",
        )


# --- driver -----------------------------------------------------------------


def iter_source_files(paths):
    for p in paths:
        if os.path.isfile(p):
            yield p
        else:
            for root, _dirs, files in os.walk(p):
                for f in sorted(files):
                    if f.endswith((".cc", ".h")):
                        yield os.path.join(root, f)


def find_src_root(paths):
    """Locates the src/ tree for Status-name collection."""
    for p in paths:
        p = os.path.abspath(p)
        cur = p if os.path.isdir(p) else os.path.dirname(p)
        while cur != os.path.dirname(cur):
            cand = os.path.join(cur, "src")
            if os.path.isdir(cand):
                return cand
            cur = os.path.dirname(cur)
    return None


def build_registry(src_root, extra_files=()):
    ranks, coupling = parse_lock_ranks(src_root)
    registry = LockRegistry(ranks, coupling)
    if src_root:
        for root, _dirs, files in os.walk(src_root):
            for f in files:
                if f.endswith(".h"):
                    registry.add_file(os.path.join(root, f))
    for path in extra_files:
        registry.add_file(path)
    return registry


def run_lint(paths, src_root=None, dot_path=None):
    src_root = src_root or find_src_root(paths)
    status_names = collect_status_names(src_root) if src_root else set()
    files = list(iter_source_files(paths))
    registry = build_registry(src_root, extra_files=files)
    graph = {}  # (src lock, dst lock) -> (path, line) first evidence
    findings = []
    for path in files:
        findings.extend(
            (path, line, rule, msg)
            for (line, rule, msg) in FileLinter(path, status_names).lint()
        )
        findings.extend(
            (path, line, rule, msg)
            for (line, rule, msg)
            in LockGraphScanner(path, registry, graph).scan()
        )
    findings.extend(detect_cycles(graph, registry))
    if dot_path:
        write_dot(graph, registry, dot_path)
    return findings


def self_test(fixture_dir):
    src_root = find_src_root([fixture_dir])
    status_names = collect_status_names(src_root) if src_root else set()
    failures = []
    checked = 0
    for f in sorted(os.listdir(fixture_dir)):
        if not f.endswith(".cc"):
            continue
        path = os.path.join(fixture_dir, f)
        findings = list(FileLinter(path, status_names).lint())
        # Graph pass per fixture: each fixture is its own closed world
        # (its annotations merge with the real src/ registry), so a
        # cycle seeded inside one file must surface from that file alone.
        registry = build_registry(src_root, extra_files=[path])
        graph = {}
        findings.extend(LockGraphScanner(path, registry, graph).scan())
        findings.extend(
            (line, rule, msg)
            for (_p, line, rule, msg) in detect_cycles(graph, registry)
        )
        rules_hit = {rule for (_l, rule, _m) in findings}
        base = f[:-3]
        if base.endswith("_bad"):
            expected = base[: -len("_bad")].replace("_", "-")
            if expected not in RULES:
                failures.append(f"{f}: unknown rule '{expected}'")
            elif expected not in rules_hit:
                failures.append(
                    f"{f}: expected a '{expected}' finding, got "
                    f"{sorted(rules_hit) or 'none'}"
                )
            checked += 1
        elif base.endswith("_good"):
            if findings:
                listed = ", ".join(
                    f"{l}:{r}" for (l, r, _m) in findings[:5])
                failures.append(f"{f}: expected clean, got [{listed}]")
            checked += 1
    if checked == 0:
        failures.append(f"{fixture_dir}: no *_bad.cc / *_good.cc fixtures")
    for msg in failures:
        print(f"gistcr_lint self-test FAIL: {msg}", file=sys.stderr)
    if not failures:
        print(f"gistcr_lint self-test: {checked} fixtures OK")
    return 1 if failures else 0


def main(argv):
    args = argv[1:]
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        return 0 if args else 2
    if args[0] == "--self-test":
        if len(args) != 2:
            print("usage: gistcr_lint.py --self-test <fixture-dir>",
                  file=sys.stderr)
            return 2
        return self_test(args[1])
    dot_path = None
    if args[0] == "--dot":
        if len(args) < 3:
            print("usage: gistcr_lint.py --dot FILE <path>...",
                  file=sys.stderr)
            return 2
        dot_path = args[1]
        args = args[2:]
    findings = run_lint(args, dot_path=dot_path)
    for path, line, rule, msg in findings:
        print(f"{path}:{line}: [{rule}] {msg}")
    if findings:
        print(f"gistcr_lint: {len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
