#!/usr/bin/env python3
"""gistcr_lint: protocol linter for the gistcr latch discipline.

Clang's thread-safety analysis checks mutex/field associations but cannot
express the paper's latch protocol (no I/O or lock waits while a node latch
is held, NSN/rightlink reads only under a latch). This linter enforces
those rules with file-local heuristics; see DESIGN.md section 10 for the
invariant-to-tool mapping.

Rules
-----
  io-under-latch
      No BufferPool::Fetch/NewPage or DiskManager::ReadPage/WritePage/Sync
      call (all of which may perform disk I/O) while a PageGuard latch is
      held in the enclosing scope. A latched frame pins a shared resource
      every other operation may need; I/O under it stretches the hold time
      from nanoseconds to milliseconds and, for fetches that evict, can
      deadlock against the WAL flush path.

  blocking-lock-under-latch
      No blocking lock-manager call (locks->Lock, locks->WaitForTxn) while
      a PageGuard latch is held. Lock waits are deadlock-checked only
      against other lock waits; a latch held across one creates a
      latch/lock cycle no detector sees (paper sections 5-6: operations
      release latches before blocking and re-position afterwards).

  raw-latch-primitive
      No std::mutex / std::shared_mutex / std::condition_variable /
      pthread primitives or direct .lock()/.unlock() calls outside the
      annotated wrappers in common/mutex.h (and the RAII types built on
      them). Raw primitives bypass both Clang thread-safety analysis and
      this linter's scope tracking.

  nsn-outside-node
      No nsn()/set_nsn()/rightlink()/set_rightlink() access outside
      gist/node.{h,cc} unless a latch is held in scope. The NSN/rightlink
      pair is the split-detection protocol (paper section 10.1); reading it
      unlatched can observe a half-installed split.

  unchecked-status
      Every call to a Status/StatusOr-returning function (collected from
      the src headers) must consume the result: assign it, return it, test
      it, wrap it in GISTCR_RETURN_IF_ERROR / an assertion, or cast to
      (void) deliberately.

  sync-under-mutex
      No fsync/fdatasync or DiskManager::Sync call while a MutexLock or
      SharedLock from common/mutex.h is held in the enclosing scope. A
      disk sync takes milliseconds; holding a mutex across one serializes
      every thread that touches the same shared state behind the platter
      (the whole point of the WAL flusher split, DESIGN.md section 11).
      MutexLock::Unlock()/Lock() windows are tracked: sync inside an
      unlocked window is fine.

  serialize-under-latch
      No observability serialization (DumpMetrics/DumpMetricsPrometheus/
      DumpPrometheus/DumpJson/DumpText/InspectJson/ExportTrace/
      ExportJsonString/Snapshot) while a PageGuard latch is held. These
      walk every registered metric or ring under the observability
      mutexes and build multi-kilobyte strings; doing that under a node
      latch turns a nanosecond-scale hold into a stats-scrape-scale one
      and inverts the intended latch < obs-mutex ordering.

  latch-inside-optimistic-section
      No blocking latch acquisition (PageGuard::RLatch/WLatch,
      FetchLatched, TreeLatch) while an OptimisticReadScope is live in the
      enclosing scope. The optimistic read protocol (DESIGN.md section 13)
      promises writers that readers never wait on them; a blocking latch
      inside the section breaks that promise and can deadlock against a
      writer spinning on the reader's pin. Try-acquires (TryWLatch) cannot
      block and are allowed. An active OptimisticReadScope also counts as
      protection for `nsn-outside-node`: the scope's discipline is that
      NSN/rightlink reads go through a version-validated snapshot copy,
      which is as stable as a latched read.

  predicate-attach-on-snapshot-path
      No predicate attach (SignalLock/Attach/AttachAndFindConflicts) and
      no blocking lock-manager call inside a function whose name marks it
      as part of the MVCC snapshot read path (contains "Snapshot").
      Snapshot readers promise zero lock-manager traffic (DESIGN.md
      section 14.3) — the lock.acquires counter asserts it dynamically,
      and the distinct Snapshot* naming of the read-path functions is
      what makes the promise statically checkable here.

Escape hatches
--------------
  // gistcr-lint: allow(<rule>)        on the offending line or the line
                                       directly above it
  // gistcr-lint: allow-file(<rule>)   anywhere in the file

Every allow() should carry a justification comment; the suppression is the
documentation of a deliberate protocol exception.

Usage
-----
  gistcr_lint.py <path>...          lint .cc/.h files (dirs recursed)
  gistcr_lint.py --self-test <dir>  run the fixture expectations in <dir>:
                                    *_bad.cc must trigger the rule named by
                                    its basename, *_good.cc must be clean
"""

import os
import re
import sys

RULES = (
    "io-under-latch",
    "blocking-lock-under-latch",
    "raw-latch-primitive",
    "nsn-outside-node",
    "unchecked-status",
    "sync-under-mutex",
    "serialize-under-latch",
    "latch-inside-optimistic-section",
    "predicate-attach-on-snapshot-path",
)

# --- directive extraction & source stripping -------------------------------

ALLOW_RE = re.compile(r"gistcr-lint:\s*allow\(([\w,\s-]+)\)")
ALLOW_FILE_RE = re.compile(r"gistcr-lint:\s*allow-file\(([\w,\s-]+)\)")


def collect_directives(lines):
    """Returns (per_line_allows, file_allows).

    per_line_allows[i] is the set of rules suppressed on 1-based line i; a
    directive on its own (otherwise empty/comment-only) line also applies
    to the following line.
    """
    per_line = {}
    file_allows = set()
    for i, line in enumerate(lines, start=1):
        m = ALLOW_FILE_RE.search(line)
        if m:
            file_allows.update(r.strip() for r in m.group(1).split(","))
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            per_line.setdefault(i, set()).update(rules)
            before = line.split("//", 1)[0].strip()
            if not before:  # directive-only line: covers the next line too
                per_line.setdefault(i + 1, set()).update(rules)
    return per_line, file_allows


def strip_code(text):
    """Blanks comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            else:
                out.append(c if c == "\n" else " ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


# --- Status-returning name collection --------------------------------------

STATUS_DECL_RE = re.compile(
    r"^\s*(?:virtual\s+)?(?:static\s+)?(?:\[\[nodiscard\]\]\s+)?"
    r"(?:Status|StatusOr<[^;{}()]*>)\s+(\w+)\s*\(",
    re.M,
)
OTHER_DECL_RE = re.compile(
    r"^\s*(?:virtual\s+)?(?:static\s+)?(?:constexpr\s+)?"
    r"(?:void|bool|int|size_t|uint\d+_t|int\d+_t|double|float|char|auto"
    r"|PageId|Lsn|TxnId|std::\w[\w:<>,\s]*?"
    r"|(?!Status\b|StatusOr\b)[A-Z]\w*(?:<[^;{}()]*>)?)"
    r"\s*[*&]?\s+(\w+)\s*\(",
    re.M,
)


def collect_status_names(src_root):
    """Names whose every header declaration returns Status/StatusOr."""
    status, other = set(), set()
    for root, _dirs, files in os.walk(src_root):
        for f in files:
            if not f.endswith(".h"):
                continue
            try:
                with open(os.path.join(root, f), encoding="utf-8") as fh:
                    text = strip_code(fh.read())
            except OSError:
                continue
            status.update(STATUS_DECL_RE.findall(text))
            other.update(OTHER_DECL_RE.findall(text))
    return status - other


# --- the per-file scanner ---------------------------------------------------

LATCH_ACQ_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*(?:WLatch|RLatch|TryWLatch)\s*\(")
# Any call that takes the address of a local PageGuard latches it on
# success (FetchLatched, FindParentExhaustive, LatchParentForChild, ...).
ADDR_OF_GUARD_RE = re.compile(r"&\s*(\w+)\s*[,)]")
LATCH_REL_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*(?:Unlatch|Drop)\s*\(")
GUARD_DECL_RE = re.compile(r"\bPageGuard\s+(\w+)\s*[;({=]")
# Latch transfer through moves. `*out = std::move(g)` (deref destination)
# is an out-parameter hand-off on a branch that returns immediately — the
# fall-through code still holds `g`, so it does not release anything.
MOVE_FROM_GUARD_RE = re.compile(
    r"(\*?)\s*(\w+)\s*=\s*std::move\(\s*(\*?)\s*(\w+)\s*\)")

IO_RE = re.compile(
    r"(?:\.|->)\s*(?:Fetch|NewPage|ReadPage|WritePage|Sync)\s*\("
    r"|\bFetchLatched\s*\("
)
BLOCKING_LOCK_RE = re.compile(
    r"\block(?:s|s_|_manager_?)?(?:\(\))?\s*(?:\.|->)\s*(?:Lock|WaitForTxn)\s*\("
)
RAW_PRIMITIVE_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock)\b"
    r"|\bpthread_(?:mutex|rwlock|cond)\w*"
    r"|\b\w+(?:\.|->)(?:try_)?lock(?:_shared)?\s*\(\s*\)"
    r"|\b\w+(?:\.|->)unlock(?:_shared)?\s*\(\s*\)"
)
NSN_RE = re.compile(r"(?:\.|->)\s*(?:set_)?(?:nsn|rightlink)\s*\(")
# latch-inside-optimistic-section: OptimisticReadScope tracking against
# blocking latch acquisitions. TryWLatch is excluded (the regex anchors
# the latch verb directly after . or ->, so `.TryWLatch(` cannot match).
OPT_SCOPE_DECL_RE = re.compile(r"\bOptimisticReadScope\s+(\w+)\s*[;({]")
BLOCKING_LATCH_RE = re.compile(
    r"(?:\.|->)\s*(?:WLatch|RLatch)\s*\("
    r"|\bFetchLatched\s*\("
    r"|\bTreeLatch\s+\w+\s*[({]"
    r"|\b\w+\s*(?:\.|->)\s*Acquire\s*\(\s*\)"
)
SERIALIZE_RE = re.compile(
    r"(?:\.|->|::)\s*(?:DumpMetrics(?:Prometheus)?|DumpPrometheus|DumpJson|"
    r"DumpText|InspectJson|ExportTrace|ExportJsonString|Snapshot)\s*\("
)

# predicate-attach-on-snapshot-path: function-definition detection for the
# snapshot read path (distinctly named Snapshot* family: SearchSnapshot,
# ProcessStackEntrySnapshot[Latched], ...) and the calls banned inside it.
# The signature regex anchors at line start so receiver-qualified *calls*
# (`mvcc->BeginSnapshot(...)`) never match.
SNAPSHOT_SIG_RE = re.compile(
    r"^\s*[\w:<>,*&\s]*?\b(?:\w+::)?(\w*Snapshot\w*)\s*\(")
PREDICATE_ATTACH_RE = re.compile(
    r"(?:\.|->)\s*Attach(?:AndFindConflicts|Predicate)?\s*\("
    r"|\bSignalLock\s*\(")

# sync-under-mutex: scoped-lock tracking (MutexLock/SharedLock from
# common/mutex.h) plus the explicit Unlock()/Lock() windows MutexLock
# supports, against direct disk syncs.
MUTEX_SCOPE_DECL_RE = re.compile(r"\b(?:MutexLock|SharedLock)\s+(\w+)\s*[({]")
MUTEX_UNLOCK_RE = re.compile(r"\b(\w+)\s*\.\s*Unlock\s*\(\s*\)")
MUTEX_RELOCK_RE = re.compile(r"\b(\w+)\s*\.\s*Lock\s*\(\s*\)")
SYNC_CALL_RE = re.compile(
    r"\b(?:::\s*)?f(?:data)?sync\s*\(|(?:\.|->)\s*Sync\s*\(")

CONTROL_KEYWORDS = (
    "if", "while", "for", "switch", "return", "case", "else", "do",
    "sizeof", "new", "delete", "co_return", "co_await",
)
CALL_STMT_RE = re.compile(r"^\s*((?:\w+\s*(?:\(\s*\))?\s*(?:\.|->|::)\s*)*)(\w+)\s*\(")


class FileLinter:
    def __init__(self, path, status_names):
        self.path = path
        self.status_names = status_names
        self.findings = []  # (line, rule, message)

    def lint(self):
        try:
            with open(self.path, encoding="utf-8") as fh:
                raw = fh.read()
        except OSError as e:
            print(f"gistcr_lint: cannot read {self.path}: {e}",
                  file=sys.stderr)
            return []
        raw_lines = raw.splitlines()
        per_line_allows, file_allows = collect_directives(raw_lines)
        lines = strip_code(raw).splitlines()

        in_node_file = os.path.basename(self.path) in ("node.h", "node.cc")

        depth = 0
        latches = []  # list of (var, entry_depth)
        guard_decl_depth = {}  # PageGuard var -> declaration depth
        mutex_holds = {}  # scoped-lock var -> [decl_depth, currently_held]
        opt_scopes = []  # list of (var, decl_depth) OptimisticReadScope RAIIs
        prev_code = ""  # last non-blank stripped line (statement context)

        for lineno, line in enumerate(lines, start=1):
            for m in GUARD_DECL_RE.finditer(line):
                guard_decl_depth[m.group(1)] = depth
            # Releases first: `g.Drop(); pool->Fetch(...)` on one line is
            # not a violation. A release inside a conditional that then
            # exits the block (continue/break/return) is branch-local:
            # the fall-through path still holds the latch.
            for m in LATCH_REL_RE.finditer(line):
                var = m.group(1)
                entry = next(
                    (d for (v, d) in latches if v == var), None)
                if entry is not None and depth > entry:
                    early_exit = False
                    for ahead in lines[lineno:lineno + 6]:
                        a = ahead.strip()
                        if re.match(r"(continue|break|return)\b", a):
                            early_exit = True
                            break
                        if a.startswith("}"):
                            break
                    if early_exit:
                        continue
                latches = [(v, d) for (v, d) in latches if v != var]

            held = bool(latches)
            in_opt = bool(opt_scopes)

            def report(rule, msg, _lineno=lineno):
                if rule in file_allows:
                    return
                if rule in per_line_allows.get(_lineno, set()):
                    return
                self.findings.append((_lineno, rule, msg))

            if held and IO_RE.search(line):
                report(
                    "io-under-latch",
                    "possible I/O (Fetch/NewPage/ReadPage/WritePage/Sync) "
                    f"while latch on '{latches[-1][0]}' is held",
                )
            if held and BLOCKING_LOCK_RE.search(line):
                # A trailing `false)` argument is the try-only (wait=false)
                # form, which cannot block.
                stmt = line
                for ahead in lines[lineno:lineno + 4]:
                    if ";" in stmt:
                        break
                    stmt += " " + ahead.strip()
                if not re.search(r",\s*false\s*\)\s*;", stmt):
                    report(
                        "blocking-lock-under-latch",
                        "blocking lock-manager call while latch on "
                        f"'{latches[-1][0]}' is held",
                    )
            if RAW_PRIMITIVE_RE.search(line):
                report(
                    "raw-latch-primitive",
                    "raw synchronization primitive; use the annotated "
                    "wrappers in common/mutex.h",
                )
            # An active OptimisticReadScope protects NSN/rightlink reads:
            # the section's discipline is that node bytes come from a
            # version-validated snapshot copy (DESIGN.md section 13), which
            # is as stable as a latched read.
            if not in_node_file and not held and not in_opt and \
                    NSN_RE.search(line):
                report(
                    "nsn-outside-node",
                    "nsn/rightlink access with no latch held in scope",
                )
            if in_opt and BLOCKING_LATCH_RE.search(line):
                report(
                    "latch-inside-optimistic-section",
                    "blocking latch acquisition while OptimisticReadScope "
                    f"'{opt_scopes[-1][0]}' is live; optimistic readers "
                    "must fall back (drop the scope) before latching",
                )
            if held and SERIALIZE_RE.search(line):
                report(
                    "serialize-under-latch",
                    "observability serialization (metrics/slow-op/trace "
                    "dump) while latch on "
                    f"'{latches[-1][0]}' is held; scrape outside the latch",
                )

            # sync-under-mutex: explicit Unlock() opens a window before the
            # sync check; Lock() closes it after (both processed in line
            # order relative to the sync call's position).
            for m in MUTEX_UNLOCK_RE.finditer(line):
                if m.group(1) in mutex_holds:
                    mutex_holds[m.group(1)][1] = False
            sync_m = SYNC_CALL_RE.search(line)
            if sync_m:
                holder = next(
                    (v for v, (_d, h) in mutex_holds.items() if h), None)
                if holder is not None:
                    report(
                        "sync-under-mutex",
                        "disk sync (fsync/fdatasync/DiskManager::Sync) "
                        f"while MutexLock '{holder}' is held; release the "
                        "mutex across the sync (see the WAL flusher)",
                    )
            for m in MUTEX_RELOCK_RE.finditer(line):
                if m.group(1) in mutex_holds:
                    mutex_holds[m.group(1)][1] = True
            for m in MUTEX_SCOPE_DECL_RE.finditer(line):
                mutex_holds[m.group(1)] = [depth, True]
            for m in OPT_SCOPE_DECL_RE.finditer(line):
                opt_scopes.append((m.group(1), depth))

            self.check_unchecked_status(line, prev_code, lineno, report)

            # Acquisitions after checks: the latched call itself (e.g.
            # FetchLatched) is judged against the *prior* latch set. A
            # guard declared in an outer scope keeps its latch past the
            # block it was (re-)latched in, so the entry depth is the
            # declaration depth when known.
            for m in LATCH_ACQ_RE.finditer(line):
                var = m.group(1)
                latches.append((var, guard_decl_depth.get(var, depth)))
            for m in ADDR_OF_GUARD_RE.finditer(line):
                var = m.group(1)
                if var in guard_decl_depth:
                    latches.append((var, guard_decl_depth[var]))
            for m in MOVE_FROM_GUARD_RE.finditer(line):
                dst_deref, dst, src_deref, src = m.groups()
                if dst_deref:
                    continue  # out-param hand-off; fall-through keeps src
                src_held = any(v == src for (v, _d) in latches)
                if src_held or (src_deref and dst in guard_decl_depth):
                    latches = [(v, d) for (v, d) in latches if v != src]
                    latches.append((dst, guard_decl_depth.get(dst, depth)))

            depth += line.count("{") - line.count("}")
            if depth < 0:
                depth = 0
            latches = [(v, d) for (v, d) in latches if d <= depth]
            mutex_holds = {
                v: s for v, s in mutex_holds.items() if s[0] <= depth
            }
            opt_scopes = [(v, d) for (v, d) in opt_scopes if d <= depth]
            if depth == 0:
                latches = []
                guard_decl_depth = {}
                mutex_holds = {}
                opt_scopes = []
            if line.strip():
                prev_code = line.strip()

        self.check_snapshot_paths(lines, per_line_allows, file_allows)
        return self.findings

    def check_snapshot_paths(self, lines, per_line_allows, file_allows):
        """Second pass: predicate-attach-on-snapshot-path.

        Finds each Snapshot*-named function *definition*, brace-matches its
        body, and flags predicate attaches / blocking lock-manager calls
        inside. Scope tracking is separate from the latch pass because the
        unit here is the whole function, not a brace depth.
        """
        rule = "predicate-attach-on-snapshot-path"
        i, n = 0, len(lines)
        while i < n:
            m = SNAPSHOT_SIG_RE.match(lines[i])
            if not m or lines[i][: m.start(1)].strip().endswith(
                    ("return", "=", ".", "->")):
                i += 1
                continue
            name = m.group(1)
            # Brace-match from the signature. A `;` before any `{` means
            # this was a declaration (or a call statement), not a body.
            depth = 0
            opened = False
            j = i
            while j < n:
                for c in lines[j]:
                    if c == "{":
                        depth += 1
                        opened = True
                    elif c == "}":
                        depth -= 1
                if not opened and ";" in lines[j]:
                    break
                j += 1
                if opened and depth <= 0:
                    break
            if not opened:
                i += 1
                continue
            for k in range(i, j):
                if PREDICATE_ATTACH_RE.search(lines[k]) or \
                        BLOCKING_LOCK_RE.search(lines[k]):
                    if rule in file_allows or \
                            rule in per_line_allows.get(k + 1, set()):
                        continue
                    self.findings.append((
                        k + 1, rule,
                        "predicate attach / lock-manager call inside "
                        f"snapshot read path '{name}'; snapshot readers "
                        "must touch zero lock-manager state "
                        "(DESIGN.md section 14.3)",
                    ))
            i = j if j > i else i + 1

    def check_unchecked_status(self, line, prev_code, lineno, report):
        m = CALL_STMT_RE.match(line)
        if not m:
            return
        name = m.group(2)
        if name not in self.status_names:
            return
        if name in CONTROL_KEYWORDS or m.group(1).strip() == "":
            # A bare `Name(...)` with no receiver is commonly a local or a
            # constructor; only flag explicit member/namespace calls plus
            # bare names we are sure about -- keep receiver-qualified only.
            if m.group(1).strip() == "" and not re.match(
                    rf"^\s*{name}\s*\([^;]*\)\s*;", line):
                return
        # Statement must start fresh (previous code line ended a statement
        # or opened a block), otherwise we are inside an expression whose
        # context consumes the value.
        if prev_code and prev_code[-1] not in "{};":
            return
        # The call's own line must not capture or forward the result.
        if not re.search(r"\)\s*;\s*$", line):
            return  # multi-line call or used in larger expression: skip
        report(
            "unchecked-status",
            f"result of Status-returning call '{name}' is ignored "
            "(assign, test, GISTCR_RETURN_IF_ERROR, or cast to (void))",
        )


# --- driver -----------------------------------------------------------------


def iter_source_files(paths):
    for p in paths:
        if os.path.isfile(p):
            yield p
        else:
            for root, _dirs, files in os.walk(p):
                for f in sorted(files):
                    if f.endswith((".cc", ".h")):
                        yield os.path.join(root, f)


def find_src_root(paths):
    """Locates the src/ tree for Status-name collection."""
    for p in paths:
        p = os.path.abspath(p)
        cur = p if os.path.isdir(p) else os.path.dirname(p)
        while cur != os.path.dirname(cur):
            cand = os.path.join(cur, "src")
            if os.path.isdir(cand):
                return cand
            cur = os.path.dirname(cur)
    return None


def run_lint(paths, src_root=None):
    src_root = src_root or find_src_root(paths)
    status_names = collect_status_names(src_root) if src_root else set()
    findings = []
    for path in iter_source_files(paths):
        findings.extend(
            (path, line, rule, msg)
            for (line, rule, msg) in FileLinter(path, status_names).lint()
        )
    return findings


def self_test(fixture_dir):
    src_root = find_src_root([fixture_dir])
    status_names = collect_status_names(src_root) if src_root else set()
    failures = []
    checked = 0
    for f in sorted(os.listdir(fixture_dir)):
        if not f.endswith(".cc"):
            continue
        path = os.path.join(fixture_dir, f)
        findings = FileLinter(path, status_names).lint()
        rules_hit = {rule for (_l, rule, _m) in findings}
        base = f[:-3]
        if base.endswith("_bad"):
            expected = base[: -len("_bad")].replace("_", "-")
            if expected not in RULES:
                failures.append(f"{f}: unknown rule '{expected}'")
            elif expected not in rules_hit:
                failures.append(
                    f"{f}: expected a '{expected}' finding, got "
                    f"{sorted(rules_hit) or 'none'}"
                )
            checked += 1
        elif base.endswith("_good"):
            if findings:
                listed = ", ".join(
                    f"{l}:{r}" for (l, r, _m) in findings[:5])
                failures.append(f"{f}: expected clean, got [{listed}]")
            checked += 1
    if checked == 0:
        failures.append(f"{fixture_dir}: no *_bad.cc / *_good.cc fixtures")
    for msg in failures:
        print(f"gistcr_lint self-test FAIL: {msg}", file=sys.stderr)
    if not failures:
        print(f"gistcr_lint self-test: {checked} fixtures OK")
    return 1 if failures else 0


def main(argv):
    args = argv[1:]
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        return 0 if args else 2
    if args[0] == "--self-test":
        if len(args) != 2:
            print("usage: gistcr_lint.py --self-test <fixture-dir>",
                  file=sys.stderr)
            return 2
        return self_test(args[1])
    findings = run_lint(args)
    for path, line, rule, msg in findings:
        print(f"{path}:{line}: [{rule}] {msg}")
    if findings:
        print(f"gistcr_lint: {len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
