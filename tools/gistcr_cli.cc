// Interactive shell over the client library (ISSUE satellite). Talks the
// wire protocol to a running gistcr_serverd; keys are int64 B-tree keys on
// index 1 (the daemon's default index).
//
//   gistcr_cli [host] [port]
//   > begin
//   > insert 42 hello-world
//   > search 40 50
//   > commit

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "access/btree_extension.h"
#include "client/client.h"

namespace {

constexpr uint32_t kIndexId = 1;

void Help() {
  std::printf(
      "commands:\n"
      "  ping                      round-trip check\n"
      "  begin [rc|rr]             open a transaction (default rr)\n"
      "  commit | abort            finish the open transaction\n"
      "  insert <key> <value>      insert (auto-commits outside a txn)\n"
      "  uinsert <key> <value>     unique insert (DuplicateKey on clash)\n"
      "  delete <key> <rid>        logical delete (rid from insert/search)\n"
      "  search <lo> [hi]          range scan, prints key/rid/record\n"
      "  stats [json]              server metrics (Prometheus; 'json' for JSON)\n"
      "  slow                      slow-op ring (one JSON record per line)\n"
      "  waitgraph                 lock-manager wait-for edges (JSON)\n"
      "  bp | wal                  buffer-pool / WAL flusher occupancy (JSON)\n"
      "  help | quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  gistcr::ClientOptions opts;
  if (argc > 1) opts.host = argv[1];
  opts.port = argc > 2 ? static_cast<uint16_t>(std::atoi(argv[2])) : 4747;
  gistcr::Client client(opts);
  gistcr::Status st = client.Connect();
  if (!st.ok()) {
    std::fprintf(stderr, "connect %s:%u failed: %s\n", opts.host.c_str(),
                 opts.port, st.ToString().c_str());
    return 1;
  }
  std::printf("connected to %s:%u (index %u, int64 keys). 'help' for help.\n",
              opts.host.c_str(), opts.port, kIndexId);

  std::string line;
  while (std::printf("%s> ", client.txn_open() ? "txn" : ""),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      Help();
    } else if (cmd == "ping") {
      st = client.Ping();
      std::printf("%s\n", st.ToString().c_str());
    } else if (cmd == "begin") {
      std::string iso;
      in >> iso;
      auto r = client.Begin(iso == "rc"
                                ? gistcr::IsolationLevel::kReadCommitted
                                : gistcr::IsolationLevel::kRepeatableRead);
      if (r.ok()) {
        std::printf("txn %llu open\n",
                    static_cast<unsigned long long>(r.value()));
      } else {
        std::printf("%s\n", r.status().ToString().c_str());
      }
    } else if (cmd == "commit") {
      std::printf("%s\n", client.Commit().ToString().c_str());
    } else if (cmd == "abort") {
      std::printf("%s\n", client.Abort().ToString().c_str());
    } else if (cmd == "insert" || cmd == "uinsert") {
      int64_t key;
      std::string value;
      if (!(in >> key) || !(in >> value)) {
        std::printf("usage: %s <key> <value>\n", cmd.c_str());
        continue;
      }
      auto r = client.Insert(kIndexId, gistcr::BtreeExtension::MakeKey(key),
                             value, cmd == "uinsert");
      if (r.ok()) {
        std::printf("ok rid=%llu\n",
                    static_cast<unsigned long long>(r.value()));
      } else {
        std::printf("%s\n", r.status().ToString().c_str());
      }
    } else if (cmd == "delete") {
      int64_t key;
      uint64_t rid;
      if (!(in >> key) || !(in >> rid)) {
        std::printf("usage: delete <key> <rid>\n");
        continue;
      }
      std::printf("%s\n",
                  client.Delete(kIndexId,
                                gistcr::BtreeExtension::MakeKey(key), rid)
                      .ToString()
                      .c_str());
    } else if (cmd == "search") {
      int64_t lo, hi;
      if (!(in >> lo)) {
        std::printf("usage: search <lo> [hi]\n");
        continue;
      }
      if (!(in >> hi)) hi = lo;
      auto r = client.Search(kIndexId,
                             gistcr::BtreeExtension::MakeRange(lo, hi),
                             /*with_records=*/true);
      if (!r.ok()) {
        std::printf("%s\n", r.status().ToString().c_str());
        continue;
      }
      for (const auto& e : r.value()) {
        std::printf("  [%lld, %lld] rid=%llu record=%s\n",
                    static_cast<long long>(gistcr::BtreeExtension::Lo(e.key)),
                    static_cast<long long>(gistcr::BtreeExtension::Hi(e.key)),
                    static_cast<unsigned long long>(e.rid),
                    e.record.c_str());
      }
      std::printf("%zu result(s)\n", r.value().size());
    } else if (cmd == "stats") {
      std::string format;
      in >> format;
      auto r = client.Stats(/*prometheus=*/format != "json");
      std::printf("%s\n", r.ok() ? r.value().c_str()
                                 : r.status().ToString().c_str());
    } else if (cmd == "slow" || cmd == "waitgraph" || cmd == "bp" ||
               cmd == "wal") {
      gistcr::net::InspectKind kind = gistcr::net::InspectKind::kSlowOps;
      if (cmd == "waitgraph") kind = gistcr::net::InspectKind::kWaitGraph;
      if (cmd == "bp") kind = gistcr::net::InspectKind::kBufferPool;
      if (cmd == "wal") kind = gistcr::net::InspectKind::kWal;
      auto r = client.Inspect(kind);
      std::printf("%s\n", r.ok() ? r.value().c_str()
                                 : r.status().ToString().c_str());
    } else {
      std::printf("unknown command '%s' — 'help' lists commands\n",
                  cmd.c_str());
    }
  }
  return 0;
}
