file(REMOVE_RECURSE
  "CMakeFiles/bench_nsn_source.dir/bench_nsn_source.cc.o"
  "CMakeFiles/bench_nsn_source.dir/bench_nsn_source.cc.o.d"
  "bench_nsn_source"
  "bench_nsn_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nsn_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
