# Empty compiler generated dependencies file for bench_nsn_source.
# This may be replaced when dependencies are built.
