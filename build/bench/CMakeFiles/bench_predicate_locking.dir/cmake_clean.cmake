file(REMOVE_RECURSE
  "CMakeFiles/bench_predicate_locking.dir/bench_predicate_locking.cc.o"
  "CMakeFiles/bench_predicate_locking.dir/bench_predicate_locking.cc.o.d"
  "bench_predicate_locking"
  "bench_predicate_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_predicate_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
