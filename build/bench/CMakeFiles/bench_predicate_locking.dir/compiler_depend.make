# Empty compiler generated dependencies file for bench_predicate_locking.
# This may be replaced when dependencies are built.
