# Empty dependencies file for bench_logical_delete.
# This may be replaced when dependencies are built.
