file(REMOVE_RECURSE
  "CMakeFiles/bench_logical_delete.dir/bench_logical_delete.cc.o"
  "CMakeFiles/bench_logical_delete.dir/bench_logical_delete.cc.o.d"
  "bench_logical_delete"
  "bench_logical_delete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logical_delete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
