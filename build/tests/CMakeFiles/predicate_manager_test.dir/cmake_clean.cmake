file(REMOVE_RECURSE
  "CMakeFiles/predicate_manager_test.dir/predicate_manager_test.cc.o"
  "CMakeFiles/predicate_manager_test.dir/predicate_manager_test.cc.o.d"
  "predicate_manager_test"
  "predicate_manager_test.pdb"
  "predicate_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
