file(REMOVE_RECURSE
  "CMakeFiles/node_deletion_test.dir/node_deletion_test.cc.o"
  "CMakeFiles/node_deletion_test.dir/node_deletion_test.cc.o.d"
  "node_deletion_test"
  "node_deletion_test.pdb"
  "node_deletion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_deletion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
