# Empty dependencies file for node_deletion_test.
# This may be replaced when dependencies are built.
