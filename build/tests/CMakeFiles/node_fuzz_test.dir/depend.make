# Empty dependencies file for node_fuzz_test.
# This may be replaced when dependencies are built.
