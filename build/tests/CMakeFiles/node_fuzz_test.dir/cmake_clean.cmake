file(REMOVE_RECURSE
  "CMakeFiles/node_fuzz_test.dir/node_fuzz_test.cc.o"
  "CMakeFiles/node_fuzz_test.dir/node_fuzz_test.cc.o.d"
  "node_fuzz_test"
  "node_fuzz_test.pdb"
  "node_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
