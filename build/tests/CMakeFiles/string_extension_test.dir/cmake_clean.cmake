file(REMOVE_RECURSE
  "CMakeFiles/string_extension_test.dir/string_extension_test.cc.o"
  "CMakeFiles/string_extension_test.dir/string_extension_test.cc.o.d"
  "string_extension_test"
  "string_extension_test.pdb"
  "string_extension_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_extension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
