# Empty dependencies file for string_extension_test.
# This may be replaced when dependencies are built.
