# Empty dependencies file for gist_split_detection_test.
# This may be replaced when dependencies are built.
