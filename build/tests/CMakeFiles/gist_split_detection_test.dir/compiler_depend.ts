# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gist_split_detection_test.
