file(REMOVE_RECURSE
  "CMakeFiles/gist_split_detection_test.dir/gist_split_detection_test.cc.o"
  "CMakeFiles/gist_split_detection_test.dir/gist_split_detection_test.cc.o.d"
  "gist_split_detection_test"
  "gist_split_detection_test.pdb"
  "gist_split_detection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gist_split_detection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
