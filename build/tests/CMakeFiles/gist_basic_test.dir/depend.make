# Empty dependencies file for gist_basic_test.
# This may be replaced when dependencies are built.
