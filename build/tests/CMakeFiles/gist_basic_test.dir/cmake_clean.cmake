file(REMOVE_RECURSE
  "CMakeFiles/gist_basic_test.dir/gist_basic_test.cc.o"
  "CMakeFiles/gist_basic_test.dir/gist_basic_test.cc.o.d"
  "gist_basic_test"
  "gist_basic_test.pdb"
  "gist_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gist_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
