file(REMOVE_RECURSE
  "CMakeFiles/eviction_stress_test.dir/eviction_stress_test.cc.o"
  "CMakeFiles/eviction_stress_test.dir/eviction_stress_test.cc.o.d"
  "eviction_stress_test"
  "eviction_stress_test.pdb"
  "eviction_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eviction_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
