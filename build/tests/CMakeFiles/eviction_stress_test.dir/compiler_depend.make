# Empty compiler generated dependencies file for eviction_stress_test.
# This may be replaced when dependencies are built.
