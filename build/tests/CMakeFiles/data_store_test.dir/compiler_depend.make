# Empty compiler generated dependencies file for data_store_test.
# This may be replaced when dependencies are built.
