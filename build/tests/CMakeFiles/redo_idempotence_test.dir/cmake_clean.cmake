file(REMOVE_RECURSE
  "CMakeFiles/redo_idempotence_test.dir/redo_idempotence_test.cc.o"
  "CMakeFiles/redo_idempotence_test.dir/redo_idempotence_test.cc.o.d"
  "redo_idempotence_test"
  "redo_idempotence_test.pdb"
  "redo_idempotence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redo_idempotence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
