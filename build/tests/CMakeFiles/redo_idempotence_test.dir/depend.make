# Empty dependencies file for redo_idempotence_test.
# This may be replaced when dependencies are built.
