file(REMOVE_RECURSE
  "CMakeFiles/gist_concurrency_test.dir/gist_concurrency_test.cc.o"
  "CMakeFiles/gist_concurrency_test.dir/gist_concurrency_test.cc.o.d"
  "gist_concurrency_test"
  "gist_concurrency_test.pdb"
  "gist_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gist_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
