# Empty compiler generated dependencies file for gist_concurrency_test.
# This may be replaced when dependencies are built.
