# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/node_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
include("/root/repo/build/tests/lock_manager_test[1]_include.cmake")
include("/root/repo/build/tests/predicate_manager_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/gist_basic_test[1]_include.cmake")
include("/root/repo/build/tests/gist_concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/isolation_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/node_deletion_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/database_test[1]_include.cmake")
include("/root/repo/build/tests/string_extension_test[1]_include.cmake")
include("/root/repo/build/tests/crash_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/gist_split_detection_test[1]_include.cmake")
include("/root/repo/build/tests/eviction_stress_test[1]_include.cmake")
include("/root/repo/build/tests/node_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/cursor_test[1]_include.cmake")
include("/root/repo/build/tests/data_store_test[1]_include.cmake")
include("/root/repo/build/tests/redo_idempotence_test[1]_include.cmake")
include("/root/repo/build/tests/maintenance_test[1]_include.cmake")
include("/root/repo/build/tests/serializability_test[1]_include.cmake")
include("/root/repo/build/tests/model_check_test[1]_include.cmake")
