add_test([=[CrashFuzzTest.EveryLogPrefixRecoversConsistently]=]  /root/repo/build/tests/crash_fuzz_test [==[--gtest_filter=CrashFuzzTest.EveryLogPrefixRecoversConsistently]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[CrashFuzzTest.EveryLogPrefixRecoversConsistently]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  crash_fuzz_test_TESTS CrashFuzzTest.EveryLogPrefixRecoversConsistently)
