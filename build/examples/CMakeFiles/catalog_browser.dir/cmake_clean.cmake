file(REMOVE_RECURSE
  "CMakeFiles/catalog_browser.dir/catalog_browser.cpp.o"
  "CMakeFiles/catalog_browser.dir/catalog_browser.cpp.o.d"
  "catalog_browser"
  "catalog_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
