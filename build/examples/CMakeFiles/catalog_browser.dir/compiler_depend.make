# Empty compiler generated dependencies file for catalog_browser.
# This may be replaced when dependencies are built.
