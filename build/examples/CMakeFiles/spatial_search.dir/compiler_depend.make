# Empty compiler generated dependencies file for spatial_search.
# This may be replaced when dependencies are built.
