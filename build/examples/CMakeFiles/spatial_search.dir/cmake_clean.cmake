file(REMOVE_RECURSE
  "CMakeFiles/spatial_search.dir/spatial_search.cpp.o"
  "CMakeFiles/spatial_search.dir/spatial_search.cpp.o.d"
  "spatial_search"
  "spatial_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
