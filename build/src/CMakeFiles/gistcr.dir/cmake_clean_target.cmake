file(REMOVE_RECURSE
  "libgistcr.a"
)
