
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/access/btree_extension.cc" "src/CMakeFiles/gistcr.dir/access/btree_extension.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/access/btree_extension.cc.o.d"
  "/root/repo/src/access/rtree_extension.cc" "src/CMakeFiles/gistcr.dir/access/rtree_extension.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/access/rtree_extension.cc.o.d"
  "/root/repo/src/access/string_extension.cc" "src/CMakeFiles/gistcr.dir/access/string_extension.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/access/string_extension.cc.o.d"
  "/root/repo/src/db/data_store.cc" "src/CMakeFiles/gistcr.dir/db/data_store.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/db/data_store.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/gistcr.dir/db/database.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/db/database.cc.o.d"
  "/root/repo/src/db/page_allocator.cc" "src/CMakeFiles/gistcr.dir/db/page_allocator.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/db/page_allocator.cc.o.d"
  "/root/repo/src/gist/cursor.cc" "src/CMakeFiles/gistcr.dir/gist/cursor.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/gist/cursor.cc.o.d"
  "/root/repo/src/gist/gist.cc" "src/CMakeFiles/gistcr.dir/gist/gist.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/gist/gist.cc.o.d"
  "/root/repo/src/gist/gist_delete.cc" "src/CMakeFiles/gistcr.dir/gist/gist_delete.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/gist/gist_delete.cc.o.d"
  "/root/repo/src/gist/gist_insert.cc" "src/CMakeFiles/gistcr.dir/gist/gist_insert.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/gist/gist_insert.cc.o.d"
  "/root/repo/src/gist/gist_maintenance.cc" "src/CMakeFiles/gistcr.dir/gist/gist_maintenance.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/gist/gist_maintenance.cc.o.d"
  "/root/repo/src/gist/node.cc" "src/CMakeFiles/gistcr.dir/gist/node.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/gist/node.cc.o.d"
  "/root/repo/src/recovery/recovery_manager.cc" "src/CMakeFiles/gistcr.dir/recovery/recovery_manager.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/recovery/recovery_manager.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/gistcr.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/gistcr.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/txn/lock_manager.cc" "src/CMakeFiles/gistcr.dir/txn/lock_manager.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/txn/lock_manager.cc.o.d"
  "/root/repo/src/txn/predicate_manager.cc" "src/CMakeFiles/gistcr.dir/txn/predicate_manager.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/txn/predicate_manager.cc.o.d"
  "/root/repo/src/txn/transaction_manager.cc" "src/CMakeFiles/gistcr.dir/txn/transaction_manager.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/txn/transaction_manager.cc.o.d"
  "/root/repo/src/util/crc32.cc" "src/CMakeFiles/gistcr.dir/util/crc32.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/util/crc32.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/gistcr.dir/util/random.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/util/random.cc.o.d"
  "/root/repo/src/wal/log_manager.cc" "src/CMakeFiles/gistcr.dir/wal/log_manager.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/wal/log_manager.cc.o.d"
  "/root/repo/src/wal/log_record.cc" "src/CMakeFiles/gistcr.dir/wal/log_record.cc.o" "gcc" "src/CMakeFiles/gistcr.dir/wal/log_record.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
