# Empty dependencies file for gistcr.
# This may be replaced when dependencies are built.
