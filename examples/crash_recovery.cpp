// Crash recovery walkthrough: commit some transactions, leave one in
// flight, "pull the plug" (drop all volatile state), and let ARIES-style
// restart recovery repair the tree — committed work survives, the loser
// is rolled back with compensation log records, and structural
// modifications that completed as nested top actions persist even though
// the transaction that triggered them aborted (paper section 9).
//
//   $ ./crash_recovery [/tmp/gistcr_crash]

#include <cstdio>
#include <string>

#include "access/btree_extension.h"
#include "db/database.h"

using namespace gistcr;

namespace {

size_t CountKeys(Database* db, Gist* index, int64_t lo, int64_t hi) {
  Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
  std::vector<SearchResult> results;
  Status st = index->Search(txn, BtreeExtension::MakeRange(lo, hi), &results);
  if (!st.ok()) std::fprintf(stderr, "search: %s\n", st.ToString().c_str());
  (void)db->Commit(txn);
  return results.size();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/gistcr_crash";
  DatabaseOptions opts;
  opts.path = path;
  opts.buffer_pool_pages = 1024;

  BtreeExtension btree;
  GistOptions gopts;
  gopts.max_entries = 16;  // small fanout: plenty of structure changes

  {
    auto db_or = Database::Create(opts);
    if (!db_or.ok()) return 1;
    auto db = db_or.MoveValue();
    if (!db->CreateIndex(1, &btree, gopts).ok()) return 1;
    Gist* index = db->GetIndex(1).value();

    // Committed transaction: keys 0..499.
    Transaction* t1 = db->Begin();
    for (int64_t k = 0; k < 500; k++) {
      (void)db->InsertRecord(t1, index, BtreeExtension::MakeKey(k), "ok");
    }
    (void)db->Commit(t1);
    std::printf("[before crash] committed 500 keys\n");

    // A fuzzy checkpoint in the middle, while the next txn is active.
    Transaction* loser = db->Begin();
    for (int64_t k = 1000; k < 1200; k++) {
      (void)db->InsertRecord(loser, index, BtreeExtension::MakeKey(k),
                             "uncommitted");
    }
    (void)db->Checkpoint();
    for (int64_t k = 1200; k < 1400; k++) {
      (void)db->InsertRecord(loser, index, BtreeExtension::MakeKey(k),
                             "uncommitted");
    }
    // The loser's updates hit the log (and some even reach disk through
    // buffer-pool eviction) but it never commits.
    (void)db->log()->FlushAll();
    std::printf("[before crash] loser txn has 400 uncommitted inserts "
                "(forced to the log, splits completed as NTAs)\n");
    std::printf("[before crash] splits so far: %lu\n",
                static_cast<unsigned long>(index->stats().splits.load()));

    // ---- power failure ----
    db->SimulateCrash();
    std::printf("[crash] buffer pool and log tail dropped\n");
  }

  // Restart: Open() runs analysis, redo, undo.
  auto db_or = Database::Open(opts);
  if (!db_or.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  auto db = db_or.MoveValue();
  const auto& rs = db->recovery()->restart_stats();
  std::printf("[restart] analyzed %lu records, redid %lu, "
              "rolled back %lu loser txn(s) undoing %lu records\n",
              static_cast<unsigned long>(rs.records_analyzed),
              static_cast<unsigned long>(rs.records_redone),
              static_cast<unsigned long>(rs.loser_txns),
              static_cast<unsigned long>(rs.records_undone));

  if (!db->OpenIndex(1, &btree, gopts).ok()) return 1;
  Gist* index = db->GetIndex(1).value();

  const size_t committed = CountKeys(db.get(), index, 0, 999);
  const size_t uncommitted = CountKeys(db.get(), index, 1000, 1399);
  std::printf("[after recovery] committed keys found: %zu (expect 500)\n",
              committed);
  std::printf("[after recovery] loser keys found: %zu (expect 0)\n",
              uncommitted);
  Status st = index->CheckInvariants();
  std::printf("[after recovery] structural invariants: %s\n",
              st.ToString().c_str());

  // The recovered tree is fully writable.
  Transaction* t2 = db->Begin();
  for (int64_t k = 500; k < 600; k++) {
    (void)db->InsertRecord(t2, index, BtreeExtension::MakeKey(k), "post");
  }
  (void)db->Commit(t2);
  std::printf("[after recovery] inserted 100 more keys; total now %zu\n",
              CountKeys(db.get(), index, 0, 999));
  std::printf("crash_recovery done: %s\n",
              committed == 500 && uncommitted == 0 ? "CORRECT" : "WRONG");
  return committed == 500 && uncommitted == 0 ? 0 : 1;
}
