// Spatial indexing with the R-tree GiST specialization: index a synthetic
// city of points of interest, answer window queries transactionally, and
// show that the concurrency protocol is oblivious to key semantics — the
// exact motivation of the paper (R-trees, TV-trees, ... all inherit the
// same concurrency and recovery machinery).
//
//   $ ./spatial_search [/tmp/gistcr_spatial]

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "access/rtree_extension.h"
#include "db/database.h"
#include "util/random.h"

using namespace gistcr;

namespace {

const char* kCategories[] = {"cafe", "library", "park", "museum", "station"};

struct Poi {
  double x, y;
  std::string name;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/gistcr_spatial";
  DatabaseOptions opts;
  opts.path = path;
  opts.buffer_pool_pages = 2048;
  auto db_or = Database::Create(opts);
  if (!db_or.ok()) {
    std::fprintf(stderr, "create: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  auto db = db_or.MoveValue();

  RtreeExtension rtree;
  Status st = db->CreateIndex(1, &rtree);
  if (!st.ok()) {
    std::fprintf(stderr, "index: %s\n", st.ToString().c_str());
    return 1;
  }
  Gist* index = db->GetIndex(1).value();

  // Load 20k points of interest on a 1000x1000 grid, from 4 loader
  // threads running concurrently — node splits, BP expansions and
  // predicate bookkeeping all happen under contention.
  std::printf("loading 20000 points of interest with 4 threads...\n");
  std::vector<std::thread> loaders;
  for (int t = 0; t < 4; t++) {
    loaders.emplace_back([&db, index, t] {
      Random rng(static_cast<uint64_t>(t) * 1337 + 1);
      for (int i = 0; i < 5000; i++) {
        Poi poi;
        poi.x = rng.NextDouble() * 1000.0;
        poi.y = rng.NextDouble() * 1000.0;
        poi.name = std::string(kCategories[rng.Uniform(5)]) + "-" +
                   std::to_string(t) + "-" + std::to_string(i);
        for (;;) {
          Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
          Status ist =
              db->InsertRecord(txn, index,
                               RtreeExtension::MakeKey(
                                   Rect::Point(poi.x, poi.y)),
                               poi.name)
                  .status();
          if (ist.ok() && db->Commit(txn).ok()) break;
          (void)db->Abort(txn);
          if (!ist.IsDeadlock() && !ist.IsBusy() && !ist.ok()) {
            std::fprintf(stderr, "insert: %s\n", ist.ToString().c_str());
            return;
          }
        }
      }
    });
  }
  for (auto& th : loaders) th.join();
  std::printf("loaded. tree height = %u, splits = %lu, root grows = %lu\n",
              index->Height().value(),
              static_cast<unsigned long>(index->stats().splits.load()),
              static_cast<unsigned long>(index->stats().root_grows.load()));

  st = index->CheckInvariants();
  std::printf("structural invariants: %s\n", st.ToString().c_str());

  // Window queries: "what is near me?"
  const Rect windows[] = {
      {100, 100, 150, 150},
      {0, 0, 50, 1000},      // western strip
      {495, 495, 505, 505},  // tight box around the center
  };
  Transaction* reader = db->Begin(IsolationLevel::kRepeatableRead);
  for (const Rect& w : windows) {
    std::vector<SearchResult> results;
    st = index->Search(reader, RtreeExtension::MakeWindowQuery(w), &results);
    if (!st.ok()) {
      std::fprintf(stderr, "search: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("window (%.0f,%.0f)-(%.0f,%.0f): %4zu POIs", w.xlo, w.ylo,
                w.xhi, w.yhi, results.size());
    if (!results.empty()) {
      auto rec = db->ReadRecord(results[0].rid);
      std::printf("   e.g. %s at %s", rec.ok() ? rec.value().c_str() : "?",
                  rtree.Describe(results[0].key).c_str());
    }
    std::printf("\n");
  }
  st = db->Commit(reader);
  if (!st.ok()) {
    std::fprintf(stderr, "commit: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("rightlink follows during load (missed-split compensation): "
              "%lu\n",
              static_cast<unsigned long>(
                  index->stats().rightlink_follows.load()));
  std::printf("spatial_search done.\n");
  return 0;
}
