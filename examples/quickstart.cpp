// Quickstart: create a database, build a B-tree-emulating GiST, run
// transactions with inserts, range searches and deletes.
//
//   $ ./quickstart [/tmp/gistcr_quickstart]

#include <cstdio>
#include <string>

#include "access/btree_extension.h"
#include "db/database.h"

using namespace gistcr;

#define DIE_IF(cond, msg)                         \
  do {                                            \
    if (cond) {                                   \
      std::fprintf(stderr, "fatal: %s\n", msg);   \
      return 1;                                   \
    }                                             \
  } while (0)

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/gistcr_quickstart";

  // 1. Create a fresh database (page file + write-ahead log).
  DatabaseOptions opts;
  opts.path = path;
  opts.buffer_pool_pages = 1024;
  auto db_or = Database::Create(opts);
  DIE_IF(!db_or.ok(), db_or.status().ToString().c_str());
  auto db = db_or.MoveValue();

  // 2. Register a GiST specialized to a B-tree over int64 keys. The
  //    extension object supplies consistent/penalty/union/pickSplit; the
  //    engine supplies concurrency, isolation and recovery.
  BtreeExtension btree;
  Status st = db->CreateIndex(/*index_id=*/1, &btree);
  DIE_IF(!st.ok(), st.ToString().c_str());
  Gist* index = db->GetIndex(1).value();

  // 3. Insert records transactionally. InsertRecord stores the payload in
  //    the heap, X-locks the new record id, then inserts (key, rid) into
  //    the tree.
  Transaction* writer = db->Begin();
  for (int64_t k = 0; k < 1000; k++) {
    auto rid = db->InsertRecord(writer, index, BtreeExtension::MakeKey(k),
                                "payload-" + std::to_string(k));
    DIE_IF(!rid.ok(), rid.status().ToString().c_str());
  }
  st = db->Commit(writer);
  DIE_IF(!st.ok(), st.ToString().c_str());
  std::printf("inserted 1000 records; tree height = %u, splits = %lu\n",
              index->Height().value(),
              static_cast<unsigned long>(index->stats().splits.load()));

  // 4. Range search at repeatable read: result RIDs are S-locked and the
  //    search predicate is attached to visited nodes, so the result set is
  //    stable until commit — no phantoms.
  Transaction* reader = db->Begin(IsolationLevel::kRepeatableRead);
  std::vector<SearchResult> results;
  st = index->Search(reader, BtreeExtension::MakeRange(100, 119), &results);
  DIE_IF(!st.ok(), st.ToString().c_str());
  std::printf("range [100,120): %zu hits\n", results.size());
  for (size_t i = 0; i < 3 && i < results.size(); i++) {
    auto rec = db->ReadRecord(results[i].rid);
    std::printf("  key=%lld -> %s\n",
                static_cast<long long>(BtreeExtension::Lo(results[i].key)),
                rec.ok() ? rec.value().c_str() : "?");
  }
  st = db->Commit(reader);
  DIE_IF(!st.ok(), st.ToString().c_str());

  // 5. Delete is logical: the entry is marked, kept reachable for
  //    concurrent repeatable readers, and physically removed later by
  //    garbage collection.
  Transaction* deleter = db->Begin();
  results.clear();
  st = index->Search(deleter, BtreeExtension::MakeRange(0, 49), &results);
  DIE_IF(!st.ok(), st.ToString().c_str());
  for (const auto& r : results) {
    st = db->DeleteRecord(deleter, index, r.key, r.rid);
    DIE_IF(!st.ok(), st.ToString().c_str());
  }
  st = db->Commit(deleter);
  DIE_IF(!st.ok(), st.ToString().c_str());

  Transaction* gc = db->Begin();
  uint64_t removed = 0, nodes = 0;
  st = index->GarbageCollect(gc, &removed, &nodes);
  DIE_IF(!st.ok(), st.ToString().c_str());
  st = db->Commit(gc);
  DIE_IF(!st.ok(), st.ToString().c_str());
  std::printf("deleted 50 records; GC reclaimed %lu entries, %lu nodes\n",
              static_cast<unsigned long>(removed),
              static_cast<unsigned long>(nodes));

  // 6. Checkpoint and shut down cleanly.
  st = db->Checkpoint();
  DIE_IF(!st.ok(), st.ToString().c_str());
  st = index->CheckInvariants();
  std::printf("invariant check: %s\n", st.ToString().c_str());
  std::printf("quickstart done.\n");
  return 0;
}
