// Incremental cursors and savepoints (paper section 10.2): a product
// catalog indexed by a string GiST is browsed page by page through a
// GistCursor. A savepoint taken mid-browse snapshots the cursor's
// traversal stack (keeping the stacked nodes' signaling locks alive);
// rolling back re-delivers the pages after the savepoint, exactly as the
// paper's partial rollback restores open cursor positions.
//
//   $ ./catalog_browser [/tmp/gistcr_catalog]

#include <cstdio>
#include <string>
#include <vector>

#include "access/string_extension.h"
#include "db/database.h"
#include "gist/cursor.h"
#include "util/random.h"

using namespace gistcr;

namespace {

const char* kAdjectives[] = {"amber", "brisk", "coral", "dusty", "ember",
                             "frosty", "golden", "hazel", "ivory", "jade"};
const char* kNouns[] = {"anchor", "beacon", "compass", "drum", "easel",
                        "flute", "garnet", "harp", "inkwell", "jar"};

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/gistcr_catalog";
  DatabaseOptions opts;
  opts.path = path;
  opts.buffer_pool_pages = 512;
  opts.maintenance_interval_ms = 200;  // background checkpoint + GC daemon
  auto db_or = Database::Create(opts);
  if (!db_or.ok()) {
    std::fprintf(stderr, "create: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  auto db = db_or.MoveValue();
  StringExtension ext;
  if (!db->CreateIndex(1, &ext).ok()) return 1;
  Gist* index = db->GetIndex(1).value();

  // Load a product catalog with composite string names.
  {
    Transaction* txn = db->Begin();
    int sku = 0;
    for (const char* a : kAdjectives) {
      for (const char* n : kNouns) {
        for (int v = 0; v < 5; v++) {
          const std::string name = std::string(a) + "-" + n + "-v" +
                                   std::to_string(v);
          auto rid = db->InsertRecord(txn, index,
                                      StringExtension::MakeKey(name),
                                      "sku-" + std::to_string(sku++));
          if (!rid.ok()) {
            std::fprintf(stderr, "load: %s\n",
                         rid.status().ToString().c_str());
            return 1;
          }
        }
      }
    }
    if (!db->Commit(txn).ok()) return 1;
    std::printf("loaded %d products\n", sku);
  }

  // Browse everything starting with "f" in pages of 8, through a cursor.
  Transaction* browser = db->Begin(IsolationLevel::kRepeatableRead);
  GistCursor cursor(index, browser,
                    StringExtension::MakePrefixQuery("f"));
  if (!cursor.Open().ok()) return 1;

  auto show_page = [&](const char* title) -> int {
    std::printf("%s\n", title);
    for (int i = 0; i < 8; i++) {
      SearchResult r;
      bool done = false;
      if (!cursor.Next(&r, &done).ok()) return -1;
      if (done) {
        std::printf("  <end of results>\n");
        return 0;
      }
      auto rec = db->ReadRecord(r.rid);
      std::printf("  %-22s %s\n", StringExtension::Lo(r.key).c_str(),
                  rec.ok() ? rec.value().c_str() : "?");
    }
    return 1;
  };

  if (show_page("-- page 1 --") < 0) return 1;

  // Bookmark the position, read ahead two pages, then jump back.
  auto bookmark = cursor.Save();
  if (!bookmark.ok()) return 1;
  std::printf("[bookmark saved after page 1]\n");
  if (show_page("-- page 2 --") < 0) return 1;
  if (show_page("-- page 3 --") < 0) return 1;

  if (!cursor.Restore(bookmark.MoveValue()).ok()) return 1;
  std::printf("[rolled back to bookmark — page 2 replays identically]\n");
  if (show_page("-- page 2 (replayed) --") < 0) return 1;

  if (!db->Commit(browser).ok()) return 1;
  std::printf("catalog_browser done.\n");
  return 0;
}
