// A seat-reservation workload exercising the isolation machinery the
// paper was built for: concurrent agents reserve seats (unique-index
// inserts), auditors take repeatable-read inventory scans, and
// cancellations free seats (logical deletes + garbage collection).
// Repeatable read guarantees every auditor's two scans agree even while
// agents churn; the unique index guarantees a seat is never double-sold
// even when two agents race (their "= key" probe predicates deadlock one
// of them, paper section 8).
//
//   $ ./reservation_system [/tmp/gistcr_resv]

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "access/btree_extension.h"
#include "db/database.h"
#include "util/random.h"

using namespace gistcr;

namespace {

constexpr int64_t kSeats = 300;
constexpr int kAgents = 6;
constexpr int kAttemptsPerAgent = 200;

std::atomic<uint64_t> g_booked{0};
std::atomic<uint64_t> g_double_sold{0};
std::atomic<uint64_t> g_deadlock_retries{0};
std::atomic<uint64_t> g_audits{0};
std::atomic<uint64_t> g_audit_mismatches{0};

void Agent(Database* db, Gist* index, int id) {
  Random rng(static_cast<uint64_t>(id) * 7919 + 3);
  for (int i = 0; i < kAttemptsPerAgent; i++) {
    const int64_t seat = static_cast<int64_t>(rng.Uniform(kSeats));
    Transaction* txn = db->Begin(IsolationLevel::kRepeatableRead);
    auto rid = db->InsertRecord(txn, index, BtreeExtension::MakeKey(seat),
                                "agent-" + std::to_string(id),
                                /*unique=*/true);
    if (rid.ok()) {
      if (db->Commit(txn).ok()) {
        g_booked++;
      }
      continue;
    }
    if (rid.status().IsDuplicateKey()) {
      (void)db->Commit(txn);  // seat taken, repeatably
      continue;
    }
    g_deadlock_retries++;
    (void)db->Abort(txn);
  }
}

void Auditor(Database* db, Gist* index, std::atomic<bool>* stop) {
  while (!stop->load()) {
    Transaction* txn = db->Begin(IsolationLevel::kRepeatableRead);
    std::vector<SearchResult> first, second;
    Status st =
        index->Search(txn, BtreeExtension::MakeRange(0, kSeats), &first);
    if (st.ok()) {
      st = index->Search(txn, BtreeExtension::MakeRange(0, kSeats), &second);
    }
    if (st.ok()) {
      g_audits++;
      if (first.size() != second.size()) g_audit_mismatches++;
      (void)db->Commit(txn);
    } else {
      (void)db->Abort(txn);  // deadlock victim: fine, retry
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/gistcr_resv";
  DatabaseOptions opts;
  opts.path = path;
  opts.buffer_pool_pages = 1024;
  auto db_or = Database::Create(opts);
  if (!db_or.ok()) return 1;
  auto db = db_or.MoveValue();
  BtreeExtension btree;
  if (!db->CreateIndex(1, &btree).ok()) return 1;
  Gist* index = db->GetIndex(1).value();

  std::printf("selling %lld seats with %d agents + 2 repeatable-read "
              "auditors...\n",
              static_cast<long long>(kSeats), kAgents);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int a = 0; a < kAgents; a++) {
    threads.emplace_back(Agent, db.get(), index, a);
  }
  std::thread aud1(Auditor, db.get(), index, &stop);
  std::thread aud2(Auditor, db.get(), index, &stop);
  for (auto& t : threads) t.join();
  stop = true;
  aud1.join();
  aud2.join();

  // Verify: every seat sold at most once.
  Transaction* txn = db->Begin();
  std::vector<SearchResult> all;
  (void)index->Search(txn, BtreeExtension::MakeRange(0, kSeats), &all);
  std::vector<int> seen(kSeats, 0);
  for (const auto& r : all) {
    const int64_t seat = BtreeExtension::Lo(r.key);
    if (++seen[static_cast<size_t>(seat)] > 1) g_double_sold++;
  }
  (void)db->Commit(txn);

  // Cancel a third of the bookings, then garbage-collect.
  Transaction* cancel = db->Begin();
  size_t cancelled = 0;
  for (size_t i = 0; i < all.size(); i += 3) {
    if (db->DeleteRecord(cancel, index, all[i].key, all[i].rid).ok()) {
      cancelled++;
    }
  }
  (void)db->Commit(cancel);
  Transaction* gc = db->Begin();
  uint64_t reclaimed = 0, nodes = 0;
  (void)index->GarbageCollect(gc, &reclaimed, &nodes);
  (void)db->Commit(gc);

  std::printf("booked:            %lu\n",
              static_cast<unsigned long>(g_booked.load()));
  std::printf("distinct seats:    %zu\n", all.size());
  std::printf("double-sold seats: %lu (must be 0)\n",
              static_cast<unsigned long>(g_double_sold.load()));
  std::printf("deadlock retries:  %lu (section 8 races, resolved)\n",
              static_cast<unsigned long>(g_deadlock_retries.load()));
  std::printf("audits: %lu, repeatable-read violations: %lu (must be 0)\n",
              static_cast<unsigned long>(g_audits.load()),
              static_cast<unsigned long>(g_audit_mismatches.load()));
  std::printf("cancelled %zu, GC reclaimed %lu entries\n", cancelled,
              static_cast<unsigned long>(reclaimed));
  Status st = index->CheckInvariants();
  std::printf("invariants: %s\n", st.ToString().c_str());

  const bool ok = g_double_sold.load() == 0 && g_audit_mismatches.load() == 0 &&
                  st.ok() && g_booked.load() == all.size();
  std::printf("reservation_system done: %s\n", ok ? "CORRECT" : "WRONG");
  return ok ? 0 : 1;
}
