#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <thread>

#include "access/btree_extension.h"
#include "tests/test_util.h"

namespace gistcr {
namespace {

/// Figure 2 semantics: NSN assignment during splits and how traversals
/// detect missed splits and terminate their rightlink chains.
class SplitDetectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("split");
    RemoveDbFiles(path_);
    DatabaseOptions opts;
    opts.path = path_;
    opts.buffer_pool_pages = 512;
    auto db_or = Database::Create(opts);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    GistOptions gopts;
    gopts.max_entries = 4;
    ASSERT_OK(db_->CreateIndex(1, &ext_, gopts));
    gist_ = db_->GetIndex(1).value();
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }

  void Insert(Transaction* txn, int64_t k) {
    ASSERT_OK(db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(k), "v")
                  .status());
  }

  struct NodeInfo {
    Nsn nsn;
    PageId rightlink;
    uint16_t level;
    uint16_t count;
  };
  NodeInfo ReadNode(PageId pid) {
    auto fr = db_->pool()->Fetch(pid);
    EXPECT_TRUE(fr.ok());
    PageGuard g(db_->pool(), fr.value());
    g.RLatch();
    NodeView nv(g.view().data());
    return {nv.nsn(), nv.rightlink(), nv.level(), nv.count()};
  }

  std::string path_;
  std::unique_ptr<Database> db_;
  BtreeExtension ext_;
  Gist* gist_ = nullptr;
};

TEST_F(SplitDetectionTest, SplitAssignsNewNsnAndSiblingInheritsOld) {
  // Figure 2: the split increments the global counter, assigns the new
  // value to the ORIGINAL node; the new sibling receives the original's
  // prior NSN and rightlink.
  Transaction* txn = db_->Begin();
  for (int64_t k : {10, 20, 30, 40}) Insert(txn, k);
  const PageId orig = gist_->root_hint();
  const NodeInfo before = ReadNode(orig);
  const Nsn counter_before = db_->nsn()->Current();
  Insert(txn, 50);  // forces the root-leaf to split (root grows)
  ASSERT_OK(db_->Commit(txn));

  const NodeInfo after = ReadNode(orig);
  EXPECT_GT(after.nsn, before.nsn);
  EXPECT_GT(after.nsn, counter_before)
      << "NSN must exceed any counter value memorized before the split";
  ASSERT_NE(after.rightlink, kInvalidPageId);
  const NodeInfo sib = ReadNode(after.rightlink);
  EXPECT_EQ(sib.nsn, before.nsn);              // inherited prior NSN
  EXPECT_EQ(sib.rightlink, before.rightlink);  // inherited rightlink
  EXPECT_EQ(sib.level, before.level);
}

TEST_F(SplitDetectionTest, MultiSplitChainTerminatesAtMemorizedNsn) {
  // Split the same node repeatedly; a traverser holding the ORIGINAL
  // memorized counter value must follow the chain until it reaches a node
  // with NSN <= memorized (the chain end), and that walk must cover every
  // split-off sibling.
  Transaction* txn = db_->Begin();
  for (int64_t k : {10, 20, 30, 40}) Insert(txn, k);
  const PageId orig = gist_->root_hint();
  const Nsn memorized = db_->nsn()->Current();
  for (int64_t k = 100; k < 160; k++) Insert(txn, k);  // many splits
  ASSERT_OK(db_->Commit(txn));

  // Walk the chain from the original node as a traverser would.
  size_t chain_nodes = 0;
  size_t keys_seen = 0;
  PageId cur = orig;
  for (;;) {
    const NodeInfo info = ReadNode(cur);
    chain_nodes++;
    keys_seen += info.count;
    if (info.nsn <= memorized || info.rightlink == kInvalidPageId) break;
    cur = info.rightlink;
  }
  EXPECT_GT(chain_nodes, 2u) << "expected a multi-node split chain";
  // The chain from the original covers everything that ever lived there.
  EXPECT_GE(keys_seen, 4u);
}

TEST_F(SplitDetectionTest, NsnsAreMonotonePerNodeHistory) {
  Transaction* txn = db_->Begin();
  for (int64_t k = 0; k < 200; k++) Insert(txn, k);
  ASSERT_OK(db_->Commit(txn));
  // Every node's NSN is <= the current global counter.
  std::vector<IndexEntry> entries;
  ASSERT_OK(gist_->DumpEntries(&entries));
  const Nsn global = db_->nsn()->Current();
  std::vector<PageId> frontier{gist_->root_hint()};
  std::set<PageId> seen;
  while (!frontier.empty()) {
    const PageId pid = frontier.back();
    frontier.pop_back();
    if (!seen.insert(pid).second) continue;
    auto fr = db_->pool()->Fetch(pid);
    ASSERT_OK(fr.status());
    PageGuard g(db_->pool(), fr.value());
    g.RLatch();
    NodeView nv(g.view().data());
    EXPECT_LE(nv.nsn(), global);
    if (nv.rightlink() != kInvalidPageId) frontier.push_back(nv.rightlink());
    if (!nv.is_leaf()) {
      for (uint16_t i = 0; i < nv.count(); i++) {
        frontier.push_back(static_cast<PageId>(nv.entry_value(i)));
      }
    }
  }
}

TEST_F(SplitDetectionTest, SearcherFollowsChainBuiltDuringPause) {
  // Stronger Figure 2 variant: while the searcher is paused, the target
  // node splits TWICE, so compensation requires following two rightlinks.
  Transaction* setup = db_->Begin();
  for (int64_t k : {900, 910, 920, 1000}) Insert(setup, k);
  ASSERT_OK(db_->Commit(setup));

  std::mutex mu;
  std::condition_variable cv;
  bool paused = false, resume = false;
  gist_->test_hooks().after_root_push = [&] {
    std::unique_lock<std::mutex> l(mu);
    paused = true;
    cv.notify_all();
    cv.wait(l, [&] { return resume; });
  };

  std::vector<SearchResult> results;
  std::thread searcher([&] {
    Transaction* txn = db_->Begin(IsolationLevel::kReadCommitted);
    ASSERT_OK(gist_->Search(txn, BtreeExtension::MakeRange(900, 1000),
                            &results));
    ASSERT_OK(db_->Commit(txn));
  });
  {
    std::unique_lock<std::mutex> l(mu);
    cv.wait(l, [&] { return paused; });
  }
  gist_->test_hooks().after_root_push = nullptr;

  // Two waves of inserts: the original root leaf splits repeatedly.
  Transaction* t2 = db_->Begin(IsolationLevel::kReadCommitted);
  for (int64_t k : {930, 940, 950, 960, 970, 980}) Insert(t2, k);
  ASSERT_OK(db_->Commit(t2));

  {
    std::lock_guard<std::mutex> l(mu);
    resume = true;
    cv.notify_all();
  }
  searcher.join();

  std::set<int64_t> found;
  for (const auto& r : results) found.insert(BtreeExtension::Lo(r.key));
  // All four committed-before-scan keys must be found despite the splits.
  for (int64_t k : {900, 910, 920, 1000}) {
    EXPECT_TRUE(found.count(k)) << "lost key " << k;
  }
  EXPECT_GT(gist_->stats().rightlink_follows.load(), 1u);
}

// The paused-searcher scenario, pinned explicitly to the optimistic read
// path (DESIGN.md section 13): a read-committed search under kLink with
// optimistic_reads on must compensate for the splits built during the
// pause from version-validated snapshots — without ever taking the latched
// fallback — and return exactly what a latched searcher returns.
TEST_F(SplitDetectionTest, OptimisticReadSearcherCompensatesAcrossPause) {
  Transaction* setup = db_->Begin();
  for (int64_t k : {900, 910, 920, 1000}) Insert(setup, k);
  ASSERT_OK(db_->Commit(setup));

  std::mutex mu;
  std::condition_variable cv;
  bool paused = false, resume = false;
  gist_->test_hooks().after_root_push = [&] {
    std::unique_lock<std::mutex> l(mu);
    paused = true;
    cv.notify_all();
    cv.wait(l, [&] { return resume; });
  };

  std::vector<SearchResult> results;
  std::thread searcher([&] {
    Transaction* txn = db_->Begin(IsolationLevel::kReadCommitted);
    ASSERT_OK(gist_->Search(txn, BtreeExtension::MakeRange(900, 1000),
                            &results));
    ASSERT_OK(db_->Commit(txn));
  });
  {
    std::unique_lock<std::mutex> l(mu);
    cv.wait(l, [&] { return paused; });
  }
  gist_->test_hooks().after_root_push = nullptr;

  const uint64_t visits_before = gist_->stats().optimistic_visits.load();
  Transaction* t2 = db_->Begin(IsolationLevel::kReadCommitted);
  for (int64_t k : {930, 940, 950, 960, 970, 980}) Insert(t2, k);
  ASSERT_OK(db_->Commit(t2));

  {
    std::lock_guard<std::mutex> l(mu);
    resume = true;
    cv.notify_all();
  }
  searcher.join();

  // Exactness: everything committed before the scan, nothing torn, no
  // duplicates.
  std::set<int64_t> found;
  for (const auto& r : results) {
    const int64_t k = BtreeExtension::Lo(r.key);
    EXPECT_TRUE(found.insert(k).second) << "duplicate key " << k;
    EXPECT_GE(k, 900);
    EXPECT_LE(k, 1000);
  }
  for (int64_t k : {900, 910, 920, 1000}) {
    EXPECT_TRUE(found.count(k)) << "lost key " << k;
  }
  // The compensation ran on the optimistic path: snapshot visits happened
  // after the pause, and the restart budget was never exhausted.
  EXPECT_GT(gist_->stats().optimistic_visits.load(), visits_before);
  EXPECT_EQ(gist_->stats().read_fallbacks.load(), 0u);
  EXPECT_GT(gist_->stats().rightlink_follows.load(), 0u);
}

}  // namespace
}  // namespace gistcr
