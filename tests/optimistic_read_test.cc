#include <gtest/gtest.h>

#include <dirent.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "access/btree_extension.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace gistcr {
namespace {

/// Torture suite for the latch-free read path (DESIGN.md section 13).
///
/// Optimistic searches run against concurrent splits, logical deletes, GC
/// node deletion and buffer-pool eviction, and every result set is checked
/// against watermark invariants that a correct (latched) reader would also
/// satisfy:
///   - a key whose delete committed before the search began must be absent;
///   - a key whose insert committed before the search began and for which
///     no delete had even been *announced* by the time the search finished
///     must be present;
///   - no duplicate keys, no keys outside the committed universe (a torn
///     snapshot that survived version validation would manifest as garbage
///     keys or phantom entries).
///
/// Suite names contain "OptimisticRead" on purpose: the TSan CI leg selects
/// concurrency suites by regex.
// ---------------------------------------------------------------------
// Stall watchdog: a torture run that stops making progress is a latent
// deadlock; dump every thread's stack and abort instead of letting CI
// time the job out with no forensics.
// ---------------------------------------------------------------------

void DumpThreadStack(int) {
  void* frames[64];
  const int n = backtrace(frames, 64);
  char hdr[64];
  const int len = snprintf(hdr, sizeof(hdr), "\n-- stack of tid %ld --\n",
                           static_cast<long>(syscall(SYS_gettid)));
  (void)!write(2, hdr, static_cast<size_t>(len));
  backtrace_symbols_fd(frames, n, 2);
}

/// Watches \p progress; if it stops advancing for ~30s, SIGUSR1s every
/// thread in the process (each dumps its stack to stderr) and aborts.
class StallWatchdog {
 public:
  explicit StallWatchdog(std::atomic<uint64_t>* progress)
      : progress_(progress) {
    struct sigaction sa = {};
    sa.sa_handler = DumpThreadStack;
    sigaction(SIGUSR1, &sa, nullptr);
    thread_ = std::thread([this] { Run(); });
  }
  ~StallWatchdog() {
    stop_.store(true);
    thread_.join();
  }

 private:
  void Run() {
    uint64_t last = progress_->load();
    int stalled = 0;
    while (!stop_.load()) {
      std::this_thread::sleep_for(std::chrono::seconds(1));
      const uint64_t now = progress_->load();
      stalled = (now == last) ? stalled + 1 : 0;
      last = now;
      if (stalled >= 30) {
        fprintf(stderr, "torture stalled for %ds; dumping stacks\n", stalled);
        DIR* d = opendir("/proc/self/task");
        if (d != nullptr) {
          const pid_t self = getpid();
          while (struct dirent* e = readdir(d)) {
            const long tid = atol(e->d_name);
            if (tid <= 0) continue;
            syscall(SYS_tgkill, self, static_cast<pid_t>(tid), SIGUSR1);
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
          closedir(d);
        }
        std::this_thread::sleep_for(std::chrono::seconds(2));
        abort();
      }
    }
  }

  std::atomic<uint64_t>* progress_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

class OptimisticReadTest : public ::testing::Test {
 protected:
  void SetUpDb(uint32_t pool_pages, uint16_t max_entries,
               bool optimistic = true) {
    path_ = TestPath("optread");
    RemoveDbFiles(path_);
    DatabaseOptions opts;
    opts.path = path_;
    opts.buffer_pool_pages = pool_pages;
    auto db_or = Database::Create(opts);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    GistOptions gopts;
    gopts.protocol = ConcurrencyProtocol::kLink;
    gopts.max_entries = max_entries;
    gopts.optimistic_reads = optimistic;
    ASSERT_OK(db_->CreateIndex(1, &ext_, gopts));
    gist_ = db_->GetIndex(1).value();
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }

  /// Same retry-loop convention as ConcurrencyTest: deadlock/busy victims
  /// begin a fresh transaction (standard application behaviour).
  void WithTxnRetry(const std::function<Status(Transaction*)>& fn) {
    for (int attempt = 0; attempt < 100; attempt++) {
      Transaction* txn = db_->Begin(IsolationLevel::kReadCommitted);
      Status st = fn(txn);
      if (st.ok()) {
        st = db_->Commit(txn);
        if (st.ok()) return;
        continue;
      }
      (void)db_->Abort(txn);
      if (st.IsDeadlock() || st.IsBusy()) continue;
      FAIL() << "operation failed: " << st.ToString();
      return;
    }
    FAIL() << "retries exhausted";
  }

  std::string path_;
  std::unique_ptr<Database> db_;
  BtreeExtension ext_;
  Gist* gist_ = nullptr;
};

// ---------------------------------------------------------------------
// The torture test proper: optimistic searches vs splits, deletes, GC and
// eviction, validated with per-writer watermarks.
// ---------------------------------------------------------------------

TEST_F(OptimisticReadTest, OptimisticReadTortureVsSplitsDeletesEviction) {
  // Small pool (the tree outgrows it, so frames recycle under readers) and
  // small nodes (constant splitting).
  SetUpDb(/*pool_pages=*/256, /*max_entries=*/8);
  constexpr int kWriters = 3;
  constexpr int kReaders = 3;
  constexpr int64_t kNamespace = 1'000'000;
  constexpr int kPerWriter = 900;
  constexpr int kInsertBatch = 6;
  constexpr int kDeleteBatch = 4;

  // Per-writer watermarks. Keys of writer t are base=t*kNamespace + offset.
  //   ins_done:   offsets [0, ins_done) are insert-committed.
  //   del_intent: a delete transaction covering offsets [0, del_intent) has
  //               been announced (published BEFORE the txn begins).
  //   del_done:   offsets [0, del_done) are delete-committed.
  std::atomic<int64_t> ins_done[kWriters];
  std::atomic<int64_t> del_intent[kWriters];
  std::atomic<int64_t> del_done[kWriters];
  for (int t = 0; t < kWriters; t++) {
    ins_done[t] = 0;
    del_intent[t] = 0;
    del_done[t] = 0;
  }

  std::atomic<bool> writers_done{false};
  std::atomic<uint64_t> progress{0};
  StallWatchdog watchdog(&progress);
  std::vector<std::thread> threads;

  for (int t = 0; t < kWriters; t++) {
    threads.emplace_back([&, t] {
      const int64_t base = static_cast<int64_t>(t) * kNamespace;
      std::vector<Rid> rids;  // rids[o] = rid of key base+o (this thread only)
      rids.reserve(kPerWriter);
      int batches = 0;
      while (ins_done[t].load() < kPerWriter) {
        // Insert a batch of fresh keys, then publish the watermark.
        const int64_t lo = ins_done[t].load();
        const int64_t hi = std::min<int64_t>(lo + kInsertBatch, kPerWriter);
        std::vector<Rid> staged;
        WithTxnRetry([&](Transaction* txn) {
          staged.clear();
          for (int64_t o = lo; o < hi; o++) {
            auto rid = db_->InsertRecord(txn, gist_,
                                         BtreeExtension::MakeKey(base + o),
                                         "v");
            if (!rid.ok()) return rid.status();
            staged.push_back(rid.value());
          }
          return Status::OK();
        });
        for (const Rid& r : staged) rids.push_back(r);
        ins_done[t].store(hi);
        progress.fetch_add(1);

        // Every third batch, delete the oldest still-live keys. The intent
        // watermark is published BEFORE the transaction begins so readers
        // can tell "no delete was even underway" from "a delete may have
        // committed but its done-watermark publish is still in flight".
        if (++batches % 3 == 0) {
          const int64_t dlo = del_done[t].load();
          const int64_t dhi =
              std::min<int64_t>(dlo + kDeleteBatch, ins_done[t].load());
          if (dhi > dlo) {
            del_intent[t].store(dhi);
            WithTxnRetry([&](Transaction* txn) {
              for (int64_t o = dlo; o < dhi; o++) {
                Status st = db_->DeleteRecord(
                    txn, gist_, BtreeExtension::MakeKey(base + o),
                    rids[static_cast<size_t>(o)]);
                if (!st.ok() && !st.IsNotFound()) return st;
              }
              return Status::OK();
            });
            del_done[t].store(dhi);
          }
        }
      }
    });
  }

  // A maintenance thread sweeps committed-deleted entries and deletes empty
  // nodes (drain technique) — node reuse racing optimistic readers.
  threads.emplace_back([&] {
    while (!writers_done.load()) {
      WithTxnRetry([&](Transaction* txn) {
        uint64_t removed = 0, nodes = 0;
        return gist_->GarbageCollect(txn, &removed, &nodes);
      });
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  std::atomic<uint64_t> searches_checked{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; r++) {
    readers.emplace_back([&, r] {
      Random rng(static_cast<uint64_t>(r) * 977 + 13);
      // Keep racing while writers run, but always check a minimum number of
      // searches per reader — on a loaded single-core host the writers can
      // finish before a reader gets scheduled at all, and the watermark
      // invariants hold just as well against the final (static) tree.
      for (int i = 0; i < 20 || !writers_done.load(); i++) {
        const int t = static_cast<int>(rng.Uniform(kWriters));
        const int64_t base = static_cast<int64_t>(t) * kNamespace;
        // Sub-range of the namespace (sometimes the whole namespace).
        int64_t a = 0, b = kPerWriter;
        if (!rng.OneIn(4)) {
          a = rng.UniformRange(0, kPerWriter);
          b = std::min<int64_t>(a + 120, kPerWriter);
        }

        // Watermarks before the search...
        const int64_t d_done0 = del_done[t].load();
        const int64_t c0 = ins_done[t].load();

        std::vector<SearchResult> results;
        WithTxnRetry([&](Transaction* txn) {
          results.clear();
          return gist_->Search(
              txn, BtreeExtension::MakeRange(base + a, base + b - 1),
              &results);
        });

        // ...and the delete-intent watermark after it.
        const int64_t d_int1 = del_intent[t].load();

        std::set<int64_t> offsets;
        for (const auto& res : results) {
          const int64_t k = BtreeExtension::Lo(res.key);
          const int64_t o = k - base;
          // No torn garbage: every key is inside the searched range of the
          // committed universe.
          ASSERT_GE(o, a) << "key " << k << " outside searched range";
          ASSERT_LT(o, b) << "key " << k << " outside searched range";
          // No duplicates.
          ASSERT_TRUE(offsets.insert(o).second) << "duplicate key " << k;
          // Deleted-committed-before-start keys must be gone.
          ASSERT_GE(o, d_done0)
              << "key " << k << " visible after its delete committed";
        }
        // Inserted-committed-before-start keys with no delete announced by
        // the end of the search must all be present.
        for (int64_t o = std::max(a, d_int1); o < std::min(b, c0); o++) {
          ASSERT_TRUE(offsets.count(o))
              << "lost key " << base + o << " (ins_done=" << c0
              << " del_intent=" << d_int1 << ")";
        }
        searches_checked.fetch_add(1);
        progress.fetch_add(1);
      }
    });
  }

  // Join writers first, then stop the maintenance + reader loops.
  for (size_t i = 0; i + 1 < threads.size(); i++) threads[i].join();
  writers_done = true;
  threads.back().join();
  for (auto& th : readers) th.join();

  ASSERT_OK(gist_->CheckInvariants());
  EXPECT_GT(searches_checked.load(), 50u);
  EXPECT_GT(gist_->stats().splits.load(), 0u);

  // The optimistic path must actually have been exercised, and the restart
  // budget (kOptimisticMaxAttempts) must make fallbacks rare: a fallback
  // needs 8 consecutive failed validations on one node.
  const uint64_t visits = gist_->stats().optimistic_visits.load();
  const uint64_t fallbacks = gist_->stats().read_fallbacks.load();
  EXPECT_GT(visits, 0u);
  EXPECT_LE(fallbacks, visits / 10 + 5);

  // Final state matches the watermarks exactly: everything in
  // [del_done, ins_done) per writer, nothing else.
  Transaction* txn = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(gist_->Search(
      txn,
      BtreeExtension::MakeRange(0, kWriters * kNamespace + kPerWriter),
      &results));
  ASSERT_OK(db_->Commit(txn));
  std::set<int64_t> found;
  for (const auto& res : results) found.insert(BtreeExtension::Lo(res.key));
  size_t want = 0;
  for (int t = 0; t < kWriters; t++) {
    const int64_t base = static_cast<int64_t>(t) * kNamespace;
    for (int64_t o = del_done[t].load(); o < ins_done[t].load(); o++) {
      EXPECT_TRUE(found.count(base + o)) << "lost key " << base + o;
      want++;
    }
  }
  EXPECT_EQ(found.size(), want);
}

// ---------------------------------------------------------------------
// Restart boundedness: even on a split-heavy workload, version-validation
// restarts stay under a fixed per-search bound and the latched fallback is
// (nearly) never needed.
// ---------------------------------------------------------------------

TEST_F(OptimisticReadTest, OptimisticReadRestartsBoundedUnderSplits) {
  SetUpDb(/*pool_pages=*/2048, /*max_entries=*/4);
  // Preload a committed prefix for the readers to scan.
  constexpr int64_t kPreload = 400;
  {
    Transaction* txn = db_->Begin();
    for (int64_t k = 0; k < kPreload; k++) {
      ASSERT_OK(db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(k), "v")
                    .status());
    }
    ASSERT_OK(db_->Commit(txn));
  }

  const uint64_t restarts_before = gist_->stats().read_restarts.load();
  const uint64_t fallbacks_before = gist_->stats().read_fallbacks.load();

  // One writer splits nodes continuously; readers scan the stable prefix.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int64_t k = kPreload;
    while (!stop.load()) {
      WithTxnRetry([&](Transaction* txn) {
        return db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(k), "v")
            .status();
      });
      k++;
    }
  });

  constexpr int kReaders = 2;
  constexpr int kSearchesPerReader = 400;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; r++) {
    readers.emplace_back([&, r] {
      Random rng(static_cast<uint64_t>(r) + 1);
      for (int i = 0; i < kSearchesPerReader; i++) {
        const int64_t lo = rng.UniformRange(0, kPreload - 20);
        std::vector<SearchResult> results;
        WithTxnRetry([&](Transaction* txn) {
          results.clear();
          return gist_->Search(txn, BtreeExtension::MakeRange(lo, lo + 19),
                               &results);
        });
        // Committed-before-start prefix keys are never deleted: all 20
        // must be found, with no duplicates (results sized exactly).
        std::set<int64_t> got;
        for (const auto& res : results) got.insert(BtreeExtension::Lo(res.key));
        ASSERT_EQ(got.size(), results.size()) << "duplicate entries";
        ASSERT_EQ(got.size(), 20u) << "lost keys in [" << lo << "," << lo + 19
                                   << "]";
      }
    });
  }
  for (auto& th : readers) th.join();
  stop = true;
  writer.join();

  ASSERT_OK(gist_->CheckInvariants());
  EXPECT_GT(gist_->stats().splits.load(), 0u);

  // The regression bound: a search restarts at most a small constant number
  // of times on average. Measured rates are ~0.0003 restarts/search; the
  // bound of 2 per search leaves orders of magnitude of headroom while
  // still catching a livelocking validation loop.
  constexpr uint64_t kTotalSearches = kReaders * kSearchesPerReader;
  const uint64_t restarts = gist_->stats().read_restarts.load() -
                            restarts_before;
  const uint64_t fallbacks = gist_->stats().read_fallbacks.load() -
                             fallbacks_before;
  EXPECT_LE(restarts, 2 * kTotalSearches)
      << "optimistic restarts exceed the per-search bound";
  // Fallbacks need kOptimisticMaxAttempts consecutive conflicts on a single
  // node; on this workload they should be essentially absent.
  EXPECT_LE(fallbacks, kTotalSearches / 20 + 2);
  EXPECT_GT(gist_->stats().optimistic_visits.load(), 0u);
}

// ---------------------------------------------------------------------
// Knob gating: with optimistic_reads=false the snapshot path is never
// taken, and both modes return identical results on the same data.
// ---------------------------------------------------------------------

TEST_F(OptimisticReadTest, OptimisticReadKnobGatesSnapshotPath) {
  SetUpDb(/*pool_pages=*/512, /*max_entries=*/8, /*optimistic=*/false);
  {
    Transaction* txn = db_->Begin();
    for (int64_t k = 0; k < 300; k++) {
      ASSERT_OK(db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(k), "v")
                    .status());
    }
    ASSERT_OK(db_->Commit(txn));
  }
  Transaction* txn = db_->Begin(IsolationLevel::kReadCommitted);
  std::vector<SearchResult> latched;
  ASSERT_OK(gist_->Search(txn, BtreeExtension::MakeRange(0, 299), &latched));
  ASSERT_OK(db_->Commit(txn));
  EXPECT_EQ(latched.size(), 300u);
  EXPECT_EQ(gist_->stats().optimistic_visits.load(), 0u)
      << "optimistic path taken despite optimistic_reads=false";
  EXPECT_EQ(gist_->stats().read_restarts.load(), 0u);

  // Reopen the same tree with the knob on: same result set, and the
  // optimistic path is actually used.
  db_.reset();
  DatabaseOptions opts;
  opts.path = path_;
  auto db_or = Database::Open(opts);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  GistOptions gopts;
  gopts.protocol = ConcurrencyProtocol::kLink;
  gopts.max_entries = 8;
  gopts.optimistic_reads = true;
  ASSERT_OK(db_->OpenIndex(1, &ext_, gopts));
  gist_ = db_->GetIndex(1).value();

  // Read-committed: repeatable-read searches attach hybrid predicate locks
  // during the traversal, which (by design) routes through the latched
  // path; only RC searches exercise the snapshot path.
  txn = db_->Begin(IsolationLevel::kReadCommitted);
  std::vector<SearchResult> optimistic;
  ASSERT_OK(
      gist_->Search(txn, BtreeExtension::MakeRange(0, 299), &optimistic));
  ASSERT_OK(db_->Commit(txn));
  std::set<int64_t> a, b;
  for (const auto& res : latched) a.insert(BtreeExtension::Lo(res.key));
  for (const auto& res : optimistic) b.insert(BtreeExtension::Lo(res.key));
  EXPECT_EQ(a, b);
  EXPECT_GT(gist_->stats().optimistic_visits.load(), 0u);
}

// ---------------------------------------------------------------------
// Root-grow publication: the race OptimisticReadTortureVsSplitsDeletesEviction
// occasionally reproduced under TSan load. GrowRoot appends the NSN-assigning
// Split record and only later repoints the meta page; a reader that memorized
// the global NSN counter AFTER the append but read the root pointer BEFORE
// the repoint would descend into the shrunken old root with memorized >= the
// new NSN — the strict `nsn > memorized` rightlink test then hides the moved
// half and the reader loses committed keys. The fix X-latches the meta page
// across the whole window (append → SetRoot), so any root-pointer read that
// completes after the append also sees the new root. The `during_root_grow`
// hook fires inside that window and makes the interleaving deterministic.
// ---------------------------------------------------------------------

TEST_F(OptimisticReadTest, OptimisticReadRootGrowPublishesNewRoot) {
  SetUpDb(/*pool_pages=*/512, /*max_entries=*/4);

  std::atomic<bool> fired{false};
  std::atomic<int64_t> committed{0};
  std::thread reader;
  std::atomic<bool> reader_ok{true};
  std::string reader_msg;

  gist_->test_hooks().during_root_grow = [&] {
    // First root grow only: the window exists on every grow, but one
    // deterministic interleaving is all the regression needs.
    if (fired.exchange(true)) return;
    reader = std::thread([&] {
      // Runs strictly inside the window: the Split record (and its NSN) is
      // already logged, the meta page still points at the old root. The
      // search memorizes the counter, then blocks on the meta latch until
      // GrowRoot finishes — and must then see every committed key via the
      // new root. Pre-fix it read the stale root pointer here and lost the
      // moved half.
      const int64_t n = committed.load();
      Transaction* txn = db_->Begin(IsolationLevel::kReadCommitted);
      std::vector<SearchResult> results;
      Status st = gist_->Search(txn, BtreeExtension::MakeRange(0, n - 1),
                                &results);
      if (st.ok()) st = db_->Commit(txn);
      if (!st.ok()) {
        reader_ok = false;
        reader_msg = st.ToString();
        return;
      }
      std::set<int64_t> got;
      for (const auto& res : results) got.insert(BtreeExtension::Lo(res.key));
      for (int64_t k = 0; k < n; k++) {
        if (!got.count(k)) {
          reader_ok = false;
          reader_msg = "lost key " + std::to_string(k) + " of " +
                       std::to_string(n) + " across root grow";
          return;
        }
      }
    });
    // Give the reader time to memorize the NSN counter and reach the root
    // pointer read while this thread still holds the meta X-latch.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  };

  // One committed key per transaction until the first root grow fires
  // (max_entries=4: a handful of inserts suffice).
  for (int64_t k = 0; k < 64 && !fired.load(); k++) {
    WithTxnRetry([&](Transaction* txn) {
      return db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(k), "v")
          .status();
    });
    committed.store(k + 1);
  }
  ASSERT_TRUE(fired.load()) << "root never grew";
  reader.join();
  gist_->test_hooks().during_root_grow = nullptr;
  EXPECT_TRUE(reader_ok.load()) << reader_msg;
  ASSERT_OK(gist_->CheckInvariants());
}

// ---------------------------------------------------------------------
// Root-grow soak: repeated root growth under optimistic readers. Every
// search over the committed prefix must return it in full — the torture
// configuration that reproduced the lost-key race, promoted to a focused
// always-on leg (suite name carries "OptimisticRead" for the TSan regex).
// ---------------------------------------------------------------------

TEST_F(OptimisticReadTest, OptimisticReadRootGrowSoak) {
  // max_entries=4 keeps the fanout tiny so the root grows many times as
  // the key space fills; a modest pool keeps everything resident.
  SetUpDb(/*pool_pages=*/2048, /*max_entries=*/4);
  constexpr int64_t kKeys = 1500;

  std::atomic<int64_t> committed{0};
  std::thread writer([&] {
    for (int64_t k = 0; k < kKeys;) {
      const int64_t hi = std::min<int64_t>(k + 5, kKeys);
      WithTxnRetry([&](Transaction* txn) {
        for (int64_t o = k; o < hi; o++) {
          auto rid = db_->InsertRecord(txn, gist_,
                                       BtreeExtension::MakeKey(o), "v");
          if (!rid.ok()) return rid.status();
        }
        return Status::OK();
      });
      k = hi;
      committed.store(hi);
    }
  });

  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  std::atomic<uint64_t> checked{0};
  for (int r = 0; r < kReaders; r++) {
    readers.emplace_back([&, r] {
      Random rng(static_cast<uint64_t>(r) * 31 + 7);
      while (committed.load() < kKeys) {
        const int64_t n = committed.load();
        if (n == 0) continue;
        // Whole prefix or a window of it — both must come back complete.
        int64_t a = 0, b = n;
        if (!rng.OneIn(3) && n > 40) {
          a = rng.UniformRange(0, n - 40);
          b = a + 40;
        }
        std::vector<SearchResult> results;
        WithTxnRetry([&](Transaction* txn) {
          results.clear();
          return gist_->Search(txn, BtreeExtension::MakeRange(a, b - 1),
                               &results);
        });
        std::set<int64_t> got;
        for (const auto& res : results) got.insert(BtreeExtension::Lo(res.key));
        ASSERT_EQ(got.size(), results.size()) << "duplicate entries";
        for (int64_t k = a; k < b; k++) {
          ASSERT_TRUE(got.count(k))
              << "lost key " << k << " (committed=" << n << ")";
        }
        checked.fetch_add(1);
      }
    });
  }

  writer.join();
  for (auto& th : readers) th.join();

  ASSERT_OK(gist_->CheckInvariants());
  EXPECT_GT(checked.load(), 10u);
  // The soak is pointless unless the root actually grew repeatedly and the
  // optimistic path was exercised.
  EXPECT_GT(gist_->stats().splits.load(), 20u);
  EXPECT_GT(gist_->stats().optimistic_visits.load(), 0u);
}

}  // namespace
}  // namespace gistcr
