#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "access/btree_extension.h"
#include "tests/test_util.h"

namespace gistcr {
namespace {

using namespace std::chrono_literals;

/// Repeatable-read (Degree 3) isolation per paper section 4: 2PL on data
/// records plus node-attached predicate locks. These tests exercise the
/// blocking semantics directly with short, deterministic waits.
class IsolationTest : public ::testing::Test {
 protected:
  void SetUp() override { SetUpMode(PredicateMode::kHybrid); }

  void SetUpMode(PredicateMode mode) {
    path_ = TestPath("iso");
    RemoveDbFiles(path_);
    DatabaseOptions opts;
    opts.path = path_;
    opts.buffer_pool_pages = 512;
    auto db_or = Database::Create(opts);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    GistOptions gopts;
    gopts.max_entries = 8;
    gopts.pred_mode = mode;
    ASSERT_OK(db_->CreateIndex(1, &ext_, gopts));
    gist_ = db_->GetIndex(1).value();
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }

  Rid MustInsert(Transaction* txn, int64_t key) {
    auto rid =
        db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(key), "v");
    EXPECT_OK(rid.status());
    return rid.ok() ? rid.value() : Rid{};
  }

  std::vector<int64_t> Scan(Transaction* txn, int64_t lo, int64_t hi,
                            Status* out_st = nullptr) {
    std::vector<SearchResult> results;
    Status st = gist_->Search(txn, BtreeExtension::MakeRange(lo, hi), &results);
    if (out_st != nullptr) {
      *out_st = st;
    } else {
      EXPECT_OK(st);
    }
    std::vector<int64_t> keys;
    for (const auto& r : results) keys.push_back(BtreeExtension::Lo(r.key));
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  std::string path_;
  std::unique_ptr<Database> db_;
  BtreeExtension ext_;
  Gist* gist_ = nullptr;
};

TEST_F(IsolationTest, PhantomInsertBlocksUntilScannerEnds) {
  // T1 (RR) scans an empty range; T2's insert into that range must block
  // on T1's predicate until T1 terminates (section 4.3).
  Transaction* t1 = db_->Begin(IsolationLevel::kRepeatableRead);
  EXPECT_TRUE(Scan(t1, 10, 20).empty());

  std::atomic<bool> insert_done{false};
  std::thread inserter([&] {
    Transaction* t2 = db_->Begin(IsolationLevel::kReadCommitted);
    ASSERT_OK(db_->InsertRecord(t2, gist_, BtreeExtension::MakeKey(15), "v")
                  .status());
    insert_done = true;
    ASSERT_OK(db_->Commit(t2));
  });

  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(insert_done.load()) << "insert did not block on the predicate";
  // (Re-scanning here would meet the inserter's X record lock — the
  // paper's designed scan/insert deadlock, tested separately. The scan is
  // repeatable because the insert cannot commit while T1 lives.)
  ASSERT_OK(db_->Commit(t1));
  inserter.join();
  EXPECT_TRUE(insert_done.load());

  Transaction* t3 = db_->Begin();
  EXPECT_EQ(Scan(t3, 10, 20), (std::vector<int64_t>{15}));
  ASSERT_OK(db_->Commit(t3));
}

TEST_F(IsolationTest, InsertOutsideScannedRangeDoesNotBlock) {
  Transaction* t1 = db_->Begin(IsolationLevel::kRepeatableRead);
  EXPECT_TRUE(Scan(t1, 10, 20).empty());
  Transaction* t2 = db_->Begin(IsolationLevel::kReadCommitted);
  // Disjoint key: no predicate conflict, completes immediately.
  ASSERT_OK(db_->InsertRecord(t2, gist_, BtreeExtension::MakeKey(500), "v")
                .status());
  ASSERT_OK(db_->Commit(t2));
  ASSERT_OK(db_->Commit(t1));
}

TEST_F(IsolationTest, ReadCommittedAdmitsPhantoms) {
  Transaction* t1 = db_->Begin(IsolationLevel::kReadCommitted);
  EXPECT_TRUE(Scan(t1, 10, 20).empty());
  Transaction* t2 = db_->Begin(IsolationLevel::kReadCommitted);
  ASSERT_OK(db_->InsertRecord(t2, gist_, BtreeExtension::MakeKey(15), "v")
                .status());
  ASSERT_OK(db_->Commit(t2));  // does not block: T1 left no predicates
  EXPECT_EQ(Scan(t1, 10, 20), (std::vector<int64_t>{15}));  // phantom
  ASSERT_OK(db_->Commit(t1));
}

TEST_F(IsolationTest, DeleteOfScannedRecordBlocksOnRecordLock) {
  Transaction* t0 = db_->Begin();
  const Rid rid = MustInsert(t0, 7);
  ASSERT_OK(db_->Commit(t0));

  Transaction* t1 = db_->Begin(IsolationLevel::kRepeatableRead);
  EXPECT_EQ(Scan(t1, 0, 100), (std::vector<int64_t>{7}));  // S lock on rid

  std::atomic<bool> delete_done{false};
  std::thread deleter([&] {
    Transaction* t2 = db_->Begin(IsolationLevel::kReadCommitted);
    ASSERT_OK(db_->DeleteRecord(t2, gist_, BtreeExtension::MakeKey(7), rid));
    delete_done = true;
    ASSERT_OK(db_->Commit(t2));
  });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(delete_done.load()) << "delete did not block on the S lock";
  EXPECT_EQ(Scan(t1, 0, 100), (std::vector<int64_t>{7}));  // repeatable
  ASSERT_OK(db_->Commit(t1));
  deleter.join();
}

TEST_F(IsolationTest, ScanBlocksOnUncommittedInsert) {
  Transaction* t1 = db_->Begin(IsolationLevel::kReadCommitted);
  MustInsert(t1, 42);  // holds X on the record until commit

  std::atomic<bool> scan_done{false};
  std::vector<int64_t> scanned;
  std::thread scanner([&] {
    Transaction* t2 = db_->Begin(IsolationLevel::kRepeatableRead);
    scanned = Scan(t2, 0, 100);
    scan_done = true;
    ASSERT_OK(db_->Commit(t2));
  });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(scan_done.load()) << "scan did not block on uncommitted insert";
  ASSERT_OK(db_->Commit(t1));
  scanner.join();
  EXPECT_EQ(scanned, (std::vector<int64_t>{42}));
}

TEST_F(IsolationTest, ScanBlocksOnUncommittedDeleteThenSkips) {
  Transaction* t0 = db_->Begin();
  const Rid rid = MustInsert(t0, 42);
  ASSERT_OK(db_->Commit(t0));

  Transaction* t1 = db_->Begin(IsolationLevel::kReadCommitted);
  ASSERT_OK(db_->DeleteRecord(t1, gist_, BtreeExtension::MakeKey(42), rid));

  std::atomic<bool> scan_done{false};
  std::vector<int64_t> scanned;
  std::thread scanner([&] {
    Transaction* t2 = db_->Begin(IsolationLevel::kRepeatableRead);
    scanned = Scan(t2, 0, 100);
    scan_done = true;
    ASSERT_OK(db_->Commit(t2));
  });
  std::this_thread::sleep_for(100ms);
  // The logically deleted entry is physically present, so the scan blocks
  // on the deleter's X lock (section 7).
  EXPECT_FALSE(scan_done.load());
  ASSERT_OK(db_->Commit(t1));
  scanner.join();
  EXPECT_TRUE(scanned.empty());  // delete committed: entry logically gone
}

TEST_F(IsolationTest, ScanSeesReinsertAfterDeleterAborts) {
  Transaction* t0 = db_->Begin();
  const Rid rid = MustInsert(t0, 42);
  ASSERT_OK(db_->Commit(t0));

  Transaction* t1 = db_->Begin(IsolationLevel::kReadCommitted);
  ASSERT_OK(db_->DeleteRecord(t1, gist_, BtreeExtension::MakeKey(42), rid));

  std::atomic<bool> scan_done{false};
  std::vector<int64_t> scanned;
  std::thread scanner([&] {
    Transaction* t2 = db_->Begin(IsolationLevel::kRepeatableRead);
    scanned = Scan(t2, 0, 100);
    scan_done = true;
    ASSERT_OK(db_->Commit(t2));
  });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(scan_done.load());
  ASSERT_OK(db_->Abort(t1));  // rollback unmarks the entry
  scanner.join();
  EXPECT_EQ(scanned, (std::vector<int64_t>{42}));
}

TEST_F(IsolationTest, ScanInsertScanDeadlockIsDetected) {
  // T1 scans [10,20]; T2 inserts 15 (blocks on T1's predicate); T1 then
  // rescans and hits T2's inserted entry's X lock -> cycle -> one victim.
  Transaction* t1 = db_->Begin(IsolationLevel::kRepeatableRead);
  EXPECT_TRUE(Scan(t1, 10, 20).empty());

  std::atomic<int> t2_result{0};  // 1 ok, 2 deadlock
  std::thread inserter([&] {
    Transaction* t2 = db_->Begin(IsolationLevel::kRepeatableRead);
    Status st =
        db_->InsertRecord(t2, gist_, BtreeExtension::MakeKey(15), "v")
            .status();
    if (st.ok()) {
      t2_result = 1;
      ASSERT_OK(db_->Commit(t2));
    } else {
      t2_result = st.IsDeadlock() ? 2 : 3;
      ASSERT_OK(db_->Abort(t2));
    }
  });
  std::this_thread::sleep_for(100ms);

  Status scan_st;
  auto keys = Scan(t1, 10, 20, &scan_st);
  if (scan_st.ok()) {
    ASSERT_OK(db_->Commit(t1));
  } else {
    EXPECT_TRUE(scan_st.IsDeadlock()) << scan_st.ToString();
    ASSERT_OK(db_->Abort(t1));
  }
  inserter.join();
  // Exactly one side must have been the deadlock victim.
  const bool t1_victim = !scan_st.ok();
  const bool t2_victim = t2_result.load() == 2;
  EXPECT_TRUE(t1_victim || t2_victim);
  EXPECT_FALSE(t1_victim && t2_victim);
}

TEST_F(IsolationTest, UniqueInsertRaceYieldsOneWinner) {
  std::atomic<int> winners{0}, losers{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&] {
      for (int attempt = 0; attempt < 50; attempt++) {
        Transaction* txn = db_->Begin(IsolationLevel::kRepeatableRead);
        auto rid = db_->InsertRecord(txn, gist_,
                                     BtreeExtension::MakeKey(777), "v",
                                     /*unique=*/true);
        if (rid.ok()) {
          winners++;
          ASSERT_OK(db_->Commit(txn));
          return;
        }
        if (rid.status().IsDuplicateKey()) {
          losers++;
          ASSERT_OK(db_->Commit(txn));
          return;
        }
        // Deadlock victim: abort and retry.
        ASSERT_OK(db_->Abort(txn));
      }
      FAIL() << "unique-insert retries exhausted";
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(losers.load(), 3);
  Transaction* txn = db_->Begin();
  EXPECT_EQ(Scan(txn, 777, 777).size(), 1u);
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(IsolationTest, DuplicateErrorIsRepeatable) {
  Transaction* t0 = db_->Begin();
  ASSERT_OK(db_->InsertRecord(t0, gist_, BtreeExtension::MakeKey(5), "a",
                              true)
                .status());
  ASSERT_OK(db_->Commit(t0));

  Transaction* t1 = db_->Begin(IsolationLevel::kRepeatableRead);
  EXPECT_TRUE(db_->InsertRecord(t1, gist_, BtreeExtension::MakeKey(5), "b",
                                true)
                  .status()
                  .IsDuplicateKey());

  // A concurrent deleter of the existing record must block on T1's S lock,
  // keeping the error repeatable.
  std::atomic<bool> delete_done{false};
  std::thread deleter([&] {
    Transaction* t2 = db_->Begin(IsolationLevel::kReadCommitted);
    std::vector<SearchResult> results;
    ASSERT_OK(gist_->Search(t2, BtreeExtension::MakeRange(5, 5), &results));
    ASSERT_EQ(results.size(), 1u);
    ASSERT_OK(db_->DeleteRecord(t2, gist_, BtreeExtension::MakeKey(5),
                                results[0].rid));
    delete_done = true;
    ASSERT_OK(db_->Commit(t2));
  });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(delete_done.load());
  EXPECT_TRUE(db_->InsertRecord(t1, gist_, BtreeExtension::MakeKey(5), "c",
                                true)
                  .status()
                  .IsDuplicateKey());
  ASSERT_OK(db_->Commit(t1));
  deleter.join();
}

TEST_F(IsolationTest, PredicatesReplicatedAcrossSplits) {
  // T1 scans [0, 10000] while the range is small; T2 then inserts many
  // keys in [200,300] (outside nothing — all conflict!). Use a narrower
  // scan instead: T1 scans [10,20]; T2 grows the tree with keys outside
  // the range so the scanned leaf splits; then an insert INTO the range
  // must still block (the predicate followed the split).
  Transaction* t0 = db_->Begin();
  for (int64_t k = 12; k <= 18; k += 2) MustInsert(t0, k);
  ASSERT_OK(db_->Commit(t0));

  Transaction* t1 = db_->Begin(IsolationLevel::kRepeatableRead);
  EXPECT_EQ(Scan(t1, 10, 20).size(), 4u);

  // Outside inserts proceed and split the leaves that hold [10,20].
  Transaction* t2 = db_->Begin(IsolationLevel::kReadCommitted);
  for (int64_t k = 100; k < 160; k++) MustInsert(t2, k);
  for (int64_t k = 0; k < 10; k++) MustInsert(t2, k);
  ASSERT_OK(db_->Commit(t2));
  EXPECT_GT(gist_->stats().splits.load(), 0u);

  // An insert into the scanned range must still block.
  std::atomic<bool> insert_done{false};
  std::thread inserter([&] {
    Transaction* t3 = db_->Begin(IsolationLevel::kReadCommitted);
    ASSERT_OK(db_->InsertRecord(t3, gist_, BtreeExtension::MakeKey(15), "v")
                  .status());
    insert_done = true;
    ASSERT_OK(db_->Commit(t3));
  });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(insert_done.load())
      << "predicate was lost across node splits";
  ASSERT_OK(db_->Commit(t1));
  inserter.join();
}

TEST_F(IsolationTest, PredicatesPercolateOnBpExpansion) {
  // T1 scans [100, 200] (empty region, predicate attached along the
  // then-existing paths). T2 inserts key 150: the target leaf's BP must
  // expand to cover 150, percolating T1's predicate down — and then T2
  // must block on it.
  Transaction* t0 = db_->Begin();
  for (int64_t k = 0; k < 40; k++) MustInsert(t0, k);
  ASSERT_OK(db_->Commit(t0));

  Transaction* t1 = db_->Begin(IsolationLevel::kRepeatableRead);
  EXPECT_TRUE(Scan(t1, 100, 200).empty());

  std::atomic<bool> insert_done{false};
  std::thread inserter([&] {
    Transaction* t2 = db_->Begin(IsolationLevel::kReadCommitted);
    ASSERT_OK(
        db_->InsertRecord(t2, gist_, BtreeExtension::MakeKey(150), "v")
            .status());
    insert_done = true;
    ASSERT_OK(db_->Commit(t2));
  });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(insert_done.load()) << "phantom slipped past BP expansion";
  ASSERT_OK(db_->Commit(t1));
  inserter.join();
}

// --- snapshot isolation (MVCC, DESIGN.md section 14) ----------------------
//
// Read-only transactions at IsolationLevel::kSnapshot read a commit-stamped
// version store instead of locking. These tests pin down the three promises
// that matter: stability (the snapshot never moves), zero lock-manager
// traffic, and unchanged 2PL semantics for read-write transactions.
using SnapshotIsolationTest = IsolationTest;

TEST_F(SnapshotIsolationTest, ScanIsStableAcrossConcurrentCommits) {
  Transaction* setup = db_->Begin();
  std::vector<Rid> rids;
  for (int64_t k = 1; k <= 5; k++) rids.push_back(MustInsert(setup, k));
  ASSERT_OK(db_->Commit(setup));

  Transaction* snap = db_->Begin(IsolationLevel::kSnapshot);
  ASSERT_TRUE(snap->is_snapshot());
  EXPECT_EQ(Scan(snap, 0, 100), (std::vector<int64_t>{1, 2, 3, 4, 5}));

  // A writer commits an insert and a delete while the snapshot is open. It
  // must not block on the reader (the reader left no locks or predicates).
  Transaction* w = db_->Begin();
  MustInsert(w, 6);
  ASSERT_OK(db_->DeleteRecord(w, gist_, BtreeExtension::MakeKey(2), rids[1]));
  ASSERT_OK(db_->Commit(w));

  // A fresh transaction sees the new state; the snapshot still sees the old.
  Transaction* after = db_->Begin();
  EXPECT_EQ(Scan(after, 0, 100), (std::vector<int64_t>{1, 3, 4, 5, 6}));
  ASSERT_OK(db_->Commit(after));
  EXPECT_EQ(Scan(snap, 0, 100), (std::vector<int64_t>{1, 2, 3, 4, 5}));
  ASSERT_OK(db_->Commit(snap));
}

TEST_F(SnapshotIsolationTest, UncommittedAndLaterCommitsAreInvisible) {
  Transaction* w = db_->Begin();
  MustInsert(w, 42);

  // The uncommitted insert is invisible — and the scan does not block on
  // the writer's X record lock, because it takes no locks at all.
  Transaction* snap = db_->Begin(IsolationLevel::kSnapshot);
  EXPECT_TRUE(Scan(snap, 0, 100).empty());

  ASSERT_OK(db_->Commit(w));
  // Committed after the snapshot began: still invisible to it.
  EXPECT_TRUE(Scan(snap, 0, 100).empty());
  ASSERT_OK(db_->Commit(snap));

  // A snapshot begun after the commit flushed sees it.
  Transaction* snap2 = db_->Begin(IsolationLevel::kSnapshot);
  EXPECT_EQ(Scan(snap2, 0, 100), (std::vector<int64_t>{42}));
  ASSERT_OK(db_->Commit(snap2));
}

TEST_F(SnapshotIsolationTest, SnapshotReadsMakeZeroLockManagerCalls) {
  Transaction* setup = db_->Begin();
  for (int64_t k = 1; k <= 20; k++) MustInsert(setup, k);
  ASSERT_OK(db_->Commit(setup));

  obs::Counter* acquires = db_->metrics()->GetCounter("lock.acquires");
  obs::Counter* reads = db_->metrics()->GetCounter("mvcc.snapshot_reads");
  const uint64_t acquires_before = acquires->value();
  const uint64_t reads_before = reads->value();

  Transaction* snap = db_->Begin(IsolationLevel::kSnapshot);
  EXPECT_EQ(Scan(snap, 0, 100).size(), 20u);
  ASSERT_OK(db_->Commit(snap));

  // No other transaction ran: any delta is the snapshot path's own.
  EXPECT_EQ(acquires->value(), acquires_before)
      << "snapshot read path called into the lock manager";
  EXPECT_EQ(reads->value(), reads_before + 1);
}

TEST_F(SnapshotIsolationTest, SnapshotTransactionsAreReadOnly) {
  Transaction* snap = db_->Begin(IsolationLevel::kSnapshot);
  EXPECT_EQ(db_->InsertRecord(snap, gist_, BtreeExtension::MakeKey(1), "v")
                .status()
                .code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(db_->DeleteRecord(snap, gist_, BtreeExtension::MakeKey(1), Rid{})
                .code(),
            Status::Code::kInvalidArgument);
  ASSERT_OK(db_->Commit(snap));
}

TEST_F(SnapshotIsolationTest, AbortedSnapshotReaderCountsAsAbort) {
  obs::Counter* commits = db_->metrics()->GetCounter("txn.commits");
  obs::Counter* aborts = db_->metrics()->GetCounter("txn.aborts");
  const uint64_t commits_before = commits->value();
  const uint64_t aborts_before = aborts->value();

  Transaction* snap = db_->Begin(IsolationLevel::kSnapshot);
  EXPECT_EQ(Scan(snap, 0, 100).size(), 0u);
  ASSERT_OK(db_->Abort(snap));

  // An aborted reader must not masquerade as a commit in the lifecycle
  // metrics.
  EXPECT_EQ(commits->value(), commits_before);
  EXPECT_EQ(aborts->value(), aborts_before + 1);
}

TEST_F(SnapshotIsolationTest, WriteSkewStillPreventedForReadWrite) {
  // The classic write-skew shape: each transaction scans the range the
  // other inserts into. Under 2PL + predicate locking this deadlocks with
  // exactly one victim — MVCC must not have weakened the read-write path.
  std::atomic<int> scanned{0};
  std::atomic<int> committed{0};
  std::atomic<int> deadlocked{0};
  auto run = [&](int64_t scan_lo, int64_t insert_key) {
    Transaction* t = db_->Begin(IsolationLevel::kRepeatableRead);
    EXPECT_TRUE(Scan(t, scan_lo, scan_lo + 10).empty());
    scanned++;
    while (scanned.load() < 2) std::this_thread::yield();
    Status st =
        db_->InsertRecord(t, gist_, BtreeExtension::MakeKey(insert_key), "v")
            .status();
    if (st.ok()) {
      committed++;
      EXPECT_OK(db_->Commit(t));
    } else {
      EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
      deadlocked++;
      EXPECT_OK(db_->Abort(t));
    }
  };
  std::thread a([&] { run(100, 205); });
  std::thread b([&] { run(200, 105); });
  a.join();
  b.join();
  EXPECT_EQ(deadlocked.load(), 1) << "write skew was not prevented";
  EXPECT_EQ(committed.load(), 1);
}

TEST_F(SnapshotIsolationTest, DowngradesToRepeatableReadWithoutMvcc) {
  const std::string path2 = TestPath("iso_nomvcc");
  RemoveDbFiles(path2);
  DatabaseOptions opts;
  opts.path = path2;
  opts.buffer_pool_pages = 512;
  opts.mvcc_enabled = false;
  auto db_or = Database::Create(opts);
  ASSERT_OK(db_or.status());
  auto db2 = db_or.MoveValue();
  EXPECT_EQ(db2->mvcc(), nullptr);
  Transaction* t = db2->Begin(IsolationLevel::kSnapshot);
  EXPECT_FALSE(t->is_snapshot());  // silently downgraded
  ASSERT_OK(db2->Commit(t));
  db2.reset();
  RemoveDbFiles(path2);
}

// The pure-predicate-locking mode (section 4.2 / ablation C2) must provide
// the same isolation, checked before traversal.
class GlobalPredicateTest : public IsolationTest {
 protected:
  void SetUp() override { SetUpMode(PredicateMode::kGlobal); }
};

TEST_F(GlobalPredicateTest, PhantomInsertBlocksGlobally) {
  Transaction* t1 = db_->Begin(IsolationLevel::kRepeatableRead);
  EXPECT_TRUE(Scan(t1, 10, 20).empty());
  std::atomic<bool> insert_done{false};
  std::thread inserter([&] {
    Transaction* t2 = db_->Begin(IsolationLevel::kReadCommitted);
    ASSERT_OK(db_->InsertRecord(t2, gist_, BtreeExtension::MakeKey(15), "v")
                  .status());
    insert_done = true;
    ASSERT_OK(db_->Commit(t2));
  });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(insert_done.load());
  ASSERT_OK(db_->Commit(t1));
  inserter.join();
}

TEST_F(GlobalPredicateTest, SearchBlocksOnRegisteredInsertKey) {
  // Pure predicate locking: a scan must check registered insert keys
  // before starting (section 4.2).
  Transaction* t1 = db_->Begin(IsolationLevel::kReadCommitted);
  MustInsert(t1, 15);  // key registered globally, X lock held

  std::atomic<bool> scan_done{false};
  std::thread scanner([&] {
    Transaction* t2 = db_->Begin(IsolationLevel::kRepeatableRead);
    std::vector<SearchResult> results;
    ASSERT_OK(
        gist_->Search(t2, BtreeExtension::MakeRange(10, 20), &results));
    scan_done = true;
    EXPECT_EQ(results.size(), 1u);
    ASSERT_OK(db_->Commit(t2));
  });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(scan_done.load());
  ASSERT_OK(db_->Commit(t1));
  scanner.join();
}

}  // namespace
}  // namespace gistcr
