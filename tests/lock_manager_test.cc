#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "tests/test_util.h"
#include "txn/lock_manager.h"
#include "util/random.h"

namespace gistcr {
namespace {

LockName Rec(uint64_t k) { return LockName{LockSpace::kRecord, k}; }
LockName Node(uint64_t k) { return LockName{LockSpace::kNode, k}; }
LockName Txn(uint64_t k) { return LockName{LockSpace::kTxn, k}; }

TEST(LockManagerTest, SharedLocksCompatible) {
  LockManager lm;
  ASSERT_OK(lm.Lock(1, Rec(5), LockMode::kShared));
  ASSERT_OK(lm.Lock(2, Rec(5), LockMode::kShared));
  EXPECT_TRUE(lm.Holds(1, Rec(5), LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, Rec(5), LockMode::kShared));
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
  EXPECT_EQ(lm.TableSize(), 0u);
}

TEST(LockManagerTest, ExclusiveConflictsNoWait) {
  LockManager lm;
  ASSERT_OK(lm.Lock(1, Rec(5), LockMode::kExclusive));
  EXPECT_TRUE(lm.Lock(2, Rec(5), LockMode::kShared, false).IsBusy());
  EXPECT_TRUE(lm.Lock(2, Rec(5), LockMode::kExclusive, false).IsBusy());
  lm.ReleaseAll(1);
  EXPECT_OK(lm.Lock(2, Rec(5), LockMode::kExclusive, false));
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, ReentrantCountsBalance) {
  LockManager lm;
  ASSERT_OK(lm.Lock(1, Rec(1), LockMode::kShared));
  ASSERT_OK(lm.Lock(1, Rec(1), LockMode::kShared));
  lm.Unlock(1, Rec(1));
  EXPECT_TRUE(lm.Holds(1, Rec(1), LockMode::kShared));
  lm.Unlock(1, Rec(1));
  EXPECT_FALSE(lm.Holds(1, Rec(1), LockMode::kShared));
}

TEST(LockManagerTest, SharedUnderExclusiveIsNoOpGrant) {
  LockManager lm;
  ASSERT_OK(lm.Lock(1, Rec(1), LockMode::kExclusive));
  ASSERT_OK(lm.Lock(1, Rec(1), LockMode::kShared));  // count=2, stays X
  EXPECT_TRUE(lm.Holds(1, Rec(1), LockMode::kExclusive));
  lm.Unlock(1, Rec(1));
  EXPECT_TRUE(lm.Holds(1, Rec(1), LockMode::kExclusive));
  lm.Unlock(1, Rec(1));
  EXPECT_FALSE(lm.Holds(1, Rec(1), LockMode::kShared));
}

TEST(LockManagerTest, UpgradeWhenSoleHolder) {
  LockManager lm;
  ASSERT_OK(lm.Lock(1, Rec(2), LockMode::kShared));
  ASSERT_OK(lm.Lock(1, Rec(2), LockMode::kExclusive));
  EXPECT_TRUE(lm.Holds(1, Rec(2), LockMode::kExclusive));
}

TEST(LockManagerTest, UpgradeWaitsForOtherReader) {
  LockManager lm;
  ASSERT_OK(lm.Lock(1, Rec(2), LockMode::kShared));
  ASSERT_OK(lm.Lock(2, Rec(2), LockMode::kShared));
  std::atomic<bool> upgraded{false};
  std::thread t([&] {
    ASSERT_OK(lm.Lock(1, Rec(2), LockMode::kExclusive));
    upgraded = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(upgraded.load());
  lm.ReleaseAll(2);
  t.join();
  EXPECT_TRUE(upgraded.load());
  EXPECT_TRUE(lm.Holds(1, Rec(2), LockMode::kExclusive));
}

TEST(LockManagerTest, BlockedWaiterWakesOnRelease) {
  LockManager lm;
  ASSERT_OK(lm.Lock(1, Rec(9), LockMode::kExclusive));
  std::atomic<bool> got{false};
  std::thread t([&] {
    ASSERT_OK(lm.Lock(2, Rec(9), LockMode::kShared));
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(got.load());
  lm.ReleaseAll(1);
  t.join();
  EXPECT_TRUE(got.load());
}

TEST(LockManagerTest, DeadlockDetectedAndRequesterVictimized) {
  LockManager lm;
  ASSERT_OK(lm.Lock(1, Rec(1), LockMode::kExclusive));
  ASSERT_OK(lm.Lock(2, Rec(2), LockMode::kExclusive));
  std::atomic<bool> t1_done{false};
  // Txn 1 blocks on rec 2 (held by 2).
  std::thread t([&] {
    Status st = lm.Lock(1, Rec(2), LockMode::kShared);
    t1_done = true;
    EXPECT_OK(st);  // eventually granted after 2 is victimized
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Txn 2 requesting rec 1 closes the cycle: 2 -> 1 -> 2.
  Status st = lm.Lock(2, Rec(1), LockMode::kShared);
  EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
  lm.ReleaseAll(2);  // victim aborts
  t.join();
  EXPECT_TRUE(t1_done.load());
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, UpgradeDeadlockBetweenTwoUpgraders) {
  LockManager lm;
  ASSERT_OK(lm.Lock(1, Rec(3), LockMode::kShared));
  ASSERT_OK(lm.Lock(2, Rec(3), LockMode::kShared));
  std::atomic<int> outcome{0};
  std::thread t([&] {
    Status st = lm.Lock(1, Rec(3), LockMode::kExclusive);
    outcome = st.ok() ? 1 : (st.IsDeadlock() ? 2 : 3);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Status st = lm.Lock(2, Rec(3), LockMode::kExclusive);
  // One of the two upgraders must be told "deadlock".
  if (st.IsDeadlock()) {
    lm.ReleaseAll(2);
    t.join();
    EXPECT_EQ(outcome.load(), 1);
  } else {
    t.join();
    EXPECT_EQ(outcome.load(), 2);
    lm.ReleaseAll(1);
  }
}

TEST(LockManagerTest, FifoFairnessWriterNotStarved) {
  LockManager lm;
  ASSERT_OK(lm.Lock(1, Rec(4), LockMode::kShared));
  std::atomic<bool> writer_got{false};
  std::thread writer([&] {
    ASSERT_OK(lm.Lock(2, Rec(4), LockMode::kExclusive));
    writer_got = true;
    lm.ReleaseAll(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // A reader arriving after the writer must queue behind it.
  std::thread reader([&] {
    ASSERT_OK(lm.Lock(3, Rec(4), LockMode::kShared));
    EXPECT_TRUE(writer_got.load());
    lm.ReleaseAll(3);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  lm.ReleaseAll(1);
  writer.join();
  reader.join();
}

TEST(LockManagerTest, ReplicateSharedHoldersCopiesSignalingLocks) {
  LockManager lm;
  ASSERT_OK(lm.Lock(1, Node(10), LockMode::kShared));
  ASSERT_OK(lm.Lock(2, Node(10), LockMode::kShared));
  lm.ReplicateSharedHolders(Node(10), Node(11));
  EXPECT_TRUE(lm.Holds(1, Node(11), LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, Node(11), LockMode::kShared));
  // Node deleter's try-X fails while signaling locks exist.
  EXPECT_TRUE(lm.Lock(3, Node(11), LockMode::kExclusive, false).IsBusy());
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
  EXPECT_OK(lm.Lock(3, Node(11), LockMode::kExclusive, false));
  lm.ReleaseAll(3);
}

TEST(LockManagerTest, WaitForTxnBlocksUntilOwnerEnds) {
  LockManager lm;
  ASSERT_OK(lm.Lock(7, Txn(7), LockMode::kExclusive));  // owner startup
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    ASSERT_OK(lm.WaitForTxn(8, 7));
    EXPECT_TRUE(released.load());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  released = true;
  lm.ReleaseAll(7);
  waiter.join();
  // The waiter released its S immediately; table should be clean.
  EXPECT_EQ(lm.TableSize(), 0u);
}

TEST(LockManagerTest, ReleaseAllDropsOnlyOwnLocks) {
  LockManager lm;
  ASSERT_OK(lm.Lock(1, Rec(1), LockMode::kShared));
  ASSERT_OK(lm.Lock(2, Rec(1), LockMode::kShared));
  ASSERT_OK(lm.Lock(1, Rec(2), LockMode::kExclusive));
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.Holds(2, Rec(1), LockMode::kShared));
  EXPECT_FALSE(lm.Holds(1, Rec(2), LockMode::kExclusive));
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, ManyConcurrentLockersStress) {
  LockManager lm;
  constexpr int kThreads = 8;
  constexpr int kOps = 300;
  std::atomic<int> deadlocks{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      const TxnId me = static_cast<TxnId>(t + 1);
      Random rng(static_cast<uint64_t>(t) * 7919 + 13);
      for (int i = 0; i < kOps; i++) {
        const uint64_t k1 = rng.Uniform(16);
        const uint64_t k2 = rng.Uniform(16);
        Status st = lm.Lock(me, Rec(k1), LockMode::kShared);
        if (st.ok()) {
          st = lm.Lock(me, Rec(k2), LockMode::kExclusive);
          if (st.IsDeadlock()) deadlocks++;
        } else if (st.IsDeadlock()) {
          deadlocks++;
        }
        lm.ReleaseAll(me);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(lm.TableSize(), 0u);  // everything released, no hangs
}

}  // namespace
}  // namespace gistcr
