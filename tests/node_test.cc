#include <gtest/gtest.h>

#include <vector>

#include "gist/node.h"
#include "tests/test_util.h"

namespace gistcr {
namespace {

IndexEntry MakeEntry(const std::string& key, uint64_t value,
                     TxnId del = kInvalidTxnId) {
  IndexEntry e;
  e.key = key;
  e.value = value;
  e.del_txn = del;
  return e;
}

class NodeTest : public ::testing::Test {
 protected:
  NodeTest() : node_(buf_) { node_.Init(42, 0); }
  char buf_[kPageSize] = {};
  NodeView node_;
};

TEST_F(NodeTest, InitSetsHeader) {
  EXPECT_EQ(PageView(buf_).page_id(), 42u);
  EXPECT_EQ(PageView(buf_).page_type(), PageType::kGistNode);
  EXPECT_EQ(node_.nsn(), 0u);
  EXPECT_EQ(node_.rightlink(), kInvalidPageId);
  EXPECT_TRUE(node_.is_leaf());
  EXPECT_EQ(node_.count(), 0);
  EXPECT_TRUE(node_.bp().empty());
}

TEST_F(NodeTest, InsertAndReadBack) {
  ASSERT_OK(node_.InsertEntry(MakeEntry("alpha", 11)));
  ASSERT_OK(node_.InsertEntry(MakeEntry("beta", 22, 7)));
  ASSERT_EQ(node_.count(), 2);
  EXPECT_EQ(node_.entry_key(0), Slice("alpha"));
  EXPECT_EQ(node_.entry_value(0), 11u);
  EXPECT_EQ(node_.entry_del_txn(0), kInvalidTxnId);
  EXPECT_EQ(node_.entry_key(1), Slice("beta"));
  EXPECT_EQ(node_.entry_del_txn(1), 7u);
}

TEST_F(NodeTest, DeleteMarkInPlace) {
  ASSERT_OK(node_.InsertEntry(MakeEntry("k", 1)));
  node_.set_entry_del_txn(0, 99);
  EXPECT_EQ(node_.entry_del_txn(0), 99u);
  node_.set_entry_del_txn(0, kInvalidTxnId);
  EXPECT_EQ(node_.entry_del_txn(0), kInvalidTxnId);
}

TEST_F(NodeTest, RemoveShiftsSlots) {
  ASSERT_OK(node_.InsertEntry(MakeEntry("a", 1)));
  ASSERT_OK(node_.InsertEntry(MakeEntry("b", 2)));
  ASSERT_OK(node_.InsertEntry(MakeEntry("c", 3)));
  node_.RemoveEntry(1);
  ASSERT_EQ(node_.count(), 2);
  EXPECT_EQ(node_.entry_key(0), Slice("a"));
  EXPECT_EQ(node_.entry_key(1), Slice("c"));
  EXPECT_EQ(node_.entry_value(1), 3u);
}

TEST_F(NodeTest, FindByValueAndKeyValue) {
  ASSERT_OK(node_.InsertEntry(MakeEntry("a", 1)));
  ASSERT_OK(node_.InsertEntry(MakeEntry("b", 2)));
  EXPECT_EQ(node_.FindByValue(2), 1);
  EXPECT_EQ(node_.FindByValue(9), -1);
  EXPECT_EQ(node_.FindByKeyValue(Slice("a"), 1), 0);
  EXPECT_EQ(node_.FindByKeyValue(Slice("a"), 2), -1);
}

TEST_F(NodeTest, BpSetGrowShrink) {
  ASSERT_OK(node_.SetBp(Slice("medium-bp")));
  EXPECT_EQ(node_.bp(), Slice("medium-bp"));
  ASSERT_OK(node_.SetBp(Slice("tiny")));  // shrink in place
  EXPECT_EQ(node_.bp(), Slice("tiny"));
  ASSERT_OK(node_.SetBp(Slice("a-considerably-longer-bounding-predicate")));
  EXPECT_EQ(node_.bp(), Slice("a-considerably-longer-bounding-predicate"));
}

TEST_F(NodeTest, SetEntryKeyInPlaceAndGrow) {
  ASSERT_OK(node_.InsertEntry(MakeEntry("abcdef", 5, 3)));
  ASSERT_OK(node_.SetEntryKey(0, Slice("xyz")));
  EXPECT_EQ(node_.entry_key(0), Slice("xyz"));
  EXPECT_EQ(node_.entry_value(0), 5u);   // payload preserved
  EXPECT_EQ(node_.entry_del_txn(0), 3u);
  ASSERT_OK(node_.SetEntryKey(0, Slice("a-much-longer-key-than-before")));
  EXPECT_EQ(node_.entry_key(0), Slice("a-much-longer-key-than-before"));
  EXPECT_EQ(node_.entry_value(0), 5u);
}

TEST_F(NodeTest, FillUntilNoSpaceThenCompactionReclaims) {
  const std::string key(100, 'k');
  int inserted = 0;
  while (true) {
    IndexEntry e = MakeEntry(key, static_cast<uint64_t>(inserted));
    if (!node_.HasSpaceFor(e)) break;
    ASSERT_OK(node_.InsertEntry(e));
    inserted++;
  }
  EXPECT_GT(inserted, 50);
  IndexEntry extra = MakeEntry(key, 999999);
  EXPECT_TRUE(node_.InsertEntry(extra).IsNoSpace());
  // Remove half the entries; the space is fragmented but reusable.
  const int before = node_.count();
  for (int i = 0; i < before / 2; i++) node_.RemoveEntry(0);
  for (int i = 0; i < before / 2; i++) {
    ASSERT_OK(node_.InsertEntry(
        MakeEntry(key, static_cast<uint64_t>(100000 + i))));
  }
}

TEST_F(NodeTest, CompactPreservesContent) {
  for (int i = 0; i < 20; i++) {
    ASSERT_OK(node_.InsertEntry(
        MakeEntry("key-" + std::to_string(i), static_cast<uint64_t>(i), i % 3 == 0 ? 5u : kInvalidTxnId)));
  }
  ASSERT_OK(node_.SetBp(Slice("some-bp")));
  for (int i = 0; i < 5; i++) node_.RemoveEntry(3);
  auto before = node_.GetAllEntries(true);
  node_.Compact();
  auto after = node_.GetAllEntries(true);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); i++) {
    EXPECT_EQ(before[i].key, after[i].key);
    EXPECT_EQ(before[i].value, after[i].value);
    EXPECT_EQ(before[i].del_txn, after[i].del_txn);
  }
  EXPECT_EQ(node_.bp(), Slice("some-bp"));
}

TEST_F(NodeTest, GetAllEntriesFiltersDeleted) {
  ASSERT_OK(node_.InsertEntry(MakeEntry("live", 1)));
  ASSERT_OK(node_.InsertEntry(MakeEntry("dead", 2, 9)));
  EXPECT_EQ(node_.GetAllEntries(true).size(), 2u);
  EXPECT_EQ(node_.GetAllEntries(false).size(), 1u);
  EXPECT_EQ(node_.GetAllEntries(false)[0].key, "live");
}

TEST_F(NodeTest, HeaderFieldsIndependent) {
  node_.set_nsn(0xABCDEF);
  node_.set_rightlink(77);
  EXPECT_EQ(node_.nsn(), 0xABCDEFu);
  EXPECT_EQ(node_.rightlink(), 77u);
  char buf2[kPageSize];
  NodeView internal(buf2);
  internal.Init(5, 3);
  EXPECT_FALSE(internal.is_leaf());
  EXPECT_EQ(internal.level(), 3);
}

TEST_F(NodeTest, TotalFreeAccountsForEverything) {
  const uint32_t before = node_.TotalFree();
  ASSERT_OK(node_.InsertEntry(MakeEntry("12345", 1)));
  const uint32_t after = node_.TotalFree();
  EXPECT_EQ(before - after,
            NodeView::kEntryOverhead + 5 + NodeView::kSlotSize);
}

}  // namespace
}  // namespace gistcr
