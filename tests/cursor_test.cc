#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "access/btree_extension.h"
#include "gist/cursor.h"
#include "tests/test_util.h"

namespace gistcr {
namespace {

using namespace std::chrono_literals;

class CursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("cursor");
    RemoveDbFiles(path_);
    DatabaseOptions opts;
    opts.path = path_;
    opts.buffer_pool_pages = 256;
    auto db_or = Database::Create(opts);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    GistOptions gopts;
    gopts.max_entries = 8;
    ASSERT_OK(db_->CreateIndex(1, &ext_, gopts));
    gist_ = db_->GetIndex(1).value();
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }

  void Preload(int64_t n) {
    Transaction* txn = db_->Begin();
    for (int64_t k = 0; k < n; k++) {
      ASSERT_OK(db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(k), "v")
                    .status());
    }
    ASSERT_OK(db_->Commit(txn));
  }

  std::string path_;
  std::unique_ptr<Database> db_;
  BtreeExtension ext_;
  Gist* gist_ = nullptr;
};

TEST_F(CursorTest, IteratesAllMatchesOnce) {
  Preload(200);
  Transaction* txn = db_->Begin();
  GistCursor cursor(gist_, txn, BtreeExtension::MakeRange(50, 149));
  ASSERT_OK(cursor.Open());
  std::set<int64_t> found;
  for (;;) {
    SearchResult r;
    bool done = false;
    ASSERT_OK(cursor.Next(&r, &done));
    if (done) break;
    EXPECT_TRUE(found.insert(BtreeExtension::Lo(r.key)).second)
        << "duplicate " << BtreeExtension::Lo(r.key);
  }
  EXPECT_EQ(found.size(), 100u);
  EXPECT_EQ(*found.begin(), 50);
  EXPECT_EQ(*found.rbegin(), 149);
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(CursorTest, EmptyRangeTerminatesImmediately) {
  Preload(20);
  Transaction* txn = db_->Begin();
  GistCursor cursor(gist_, txn, BtreeExtension::MakeRange(1000, 2000));
  ASSERT_OK(cursor.Open());
  SearchResult r;
  bool done = false;
  ASSERT_OK(cursor.Next(&r, &done));
  EXPECT_TRUE(done);
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(CursorTest, MatchesBatchSearchResults) {
  Preload(300);
  Transaction* txn = db_->Begin();
  std::vector<SearchResult> batch;
  ASSERT_OK(gist_->Search(txn, BtreeExtension::MakeRange(0, 299), &batch));
  GistCursor cursor(gist_, txn, BtreeExtension::MakeRange(0, 299));
  ASSERT_OK(cursor.Open());
  size_t n = 0;
  for (;;) {
    SearchResult r;
    bool done = false;
    ASSERT_OK(cursor.Next(&r, &done));
    if (done) break;
    n++;
  }
  EXPECT_EQ(n, batch.size());
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(CursorTest, SaveRestoreReplaysFromSavepoint) {
  Preload(100);
  Transaction* txn = db_->Begin();
  GistCursor cursor(gist_, txn, BtreeExtension::MakeRange(0, 99));
  ASSERT_OK(cursor.Open());

  // Consume 30 entries, then establish a savepoint.
  std::vector<int64_t> first30;
  for (int i = 0; i < 30; i++) {
    SearchResult r;
    bool done = false;
    ASSERT_OK(cursor.Next(&r, &done));
    ASSERT_FALSE(done);
    first30.push_back(BtreeExtension::Lo(r.key));
  }
  auto pos_or = cursor.Save();
  ASSERT_OK(pos_or.status());

  // Consume 20 more, then roll back to the savepoint.
  std::vector<int64_t> after_save_1;
  for (int i = 0; i < 20; i++) {
    SearchResult r;
    bool done = false;
    ASSERT_OK(cursor.Next(&r, &done));
    ASSERT_FALSE(done);
    after_save_1.push_back(BtreeExtension::Lo(r.key));
  }
  ASSERT_OK(cursor.Restore(pos_or.MoveValue()));

  // The replayed stream matches and completes the full range.
  std::vector<int64_t> after_save_2;
  for (;;) {
    SearchResult r;
    bool done = false;
    ASSERT_OK(cursor.Next(&r, &done));
    if (done) break;
    after_save_2.push_back(BtreeExtension::Lo(r.key));
  }
  ASSERT_GE(after_save_2.size(), after_save_1.size());
  for (size_t i = 0; i < after_save_1.size(); i++) {
    EXPECT_EQ(after_save_2[i], after_save_1[i]) << i;
  }
  std::set<int64_t> all(first30.begin(), first30.end());
  all.insert(after_save_2.begin(), after_save_2.end());
  EXPECT_EQ(all.size(), 100u);
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(CursorTest, SavedPositionBlocksNodeDeletion) {
  Preload(100);
  // Delete everything so GC would retire nodes.
  {
    Transaction* txn = db_->Begin();
    std::vector<SearchResult> all;
    ASSERT_OK(gist_->Search(txn, BtreeExtension::MakeRange(0, 99), &all));
    for (const auto& r : all) {
      ASSERT_OK(db_->DeleteRecord(txn, gist_, r.key, r.rid));
    }
    ASSERT_OK(db_->Commit(txn));
  }
  Transaction* txn = db_->Begin(IsolationLevel::kReadCommitted);
  GistCursor cursor(gist_, txn, BtreeExtension::MakeRange(0, 99));
  ASSERT_OK(cursor.Open());
  // Advance a little so the stack holds mid-tree pointers, then save.
  SearchResult r;
  bool done = false;
  ASSERT_OK(cursor.Next(&r, &done));  // exhausts or advances; either way
  auto pos_or = cursor.Save();
  ASSERT_OK(pos_or.status());

  // GC in another transaction: nodes referenced by the saved position are
  // protected by its retained signaling locks.
  Transaction* gc = db_->Begin(IsolationLevel::kReadCommitted);
  uint64_t removed = 0, deleted_nodes = 0;
  ASSERT_OK(gist_->GarbageCollect(gc, &removed, &deleted_nodes));
  ASSERT_OK(db_->Commit(gc));
  ASSERT_OK(gist_->CheckInvariants());

  // Restoring still works: every stacked page is alive.
  ASSERT_OK(cursor.Restore(pos_or.MoveValue()));
  for (;;) {
    bool d = false;
    ASSERT_OK(cursor.Next(&r, &d));
    if (d) break;
  }
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(CursorTest, CursorAttachesPredicatesGradually) {
  Preload(50);
  Transaction* txn = db_->Begin(IsolationLevel::kRepeatableRead);
  GistCursor cursor(gist_, txn, BtreeExtension::MakeRange(0, 49));
  ASSERT_OK(cursor.Open());
  // Before any Next(), no predicates are attached (gradual expansion).
  EXPECT_EQ(db_->preds()->TotalAttachments(), 0u);
  SearchResult r;
  bool done = false;
  ASSERT_OK(cursor.Next(&r, &done));
  ASSERT_FALSE(done);
  EXPECT_GT(db_->preds()->TotalAttachments(), 0u);
  const int64_t visited_key = BtreeExtension::Lo(r.key);

  // An insert into the ALREADY-VISITED region (same key, new record — the
  // index is non-unique) hits the leaf the cursor's predicate is attached
  // to, so it blocks until the cursor's transaction ends. An insert into a
  // leaf the cursor has not reached yet would proceed — the gradual
  // expansion the paper describes in section 4.3: "the insertion will only
  // be blocked if it requires BP updates in ancestor nodes where the
  // search predicate is already attached".
  std::atomic<bool> insert_done{false};
  std::thread inserter([&] {
    Transaction* t2 = db_->Begin(IsolationLevel::kReadCommitted);
    ASSERT_OK(db_->InsertRecord(t2, gist_,
                                BtreeExtension::MakeKey(visited_key), "v")
                  .status());
    insert_done = true;
    ASSERT_OK(db_->Commit(t2));
  });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(insert_done.load());
  ASSERT_OK(db_->Commit(txn));
  inserter.join();
}

}  // namespace
}  // namespace gistcr
