#include "net/wire.h"

#include <gtest/gtest.h>

#include "util/coding.h"

namespace gistcr {
namespace net {
namespace {

Frame MakeFrame(Opcode op, uint64_t id, const std::string& payload) {
  Frame f;
  f.opcode = op;
  f.request_id = id;
  f.payload = payload;
  return f;
}

TEST(WireTest, RoundTripSingleFrame) {
  std::string wire;
  EncodeFrame(MakeFrame(Opcode::kInsert, 42, "hello"), &wire);
  EXPECT_EQ(wire.size(), 4 + kHeaderLen + 5);

  FrameReader r(kMaxRequestPayload);
  r.Feed(wire.data(), wire.size());
  Frame out;
  ASSERT_EQ(r.Next(&out), FrameReader::Result::kFrame);
  EXPECT_EQ(out.opcode, Opcode::kInsert);
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.payload, "hello");
  EXPECT_EQ(r.Next(&out), FrameReader::Result::kNeedMore);
}

TEST(WireTest, PipelinedFramesParseInOrder) {
  std::string wire;
  for (uint64_t id = 1; id <= 5; id++) {
    EncodeFrame(MakeFrame(Opcode::kPing, id, std::string(id, 'x')), &wire);
  }
  FrameReader r(kMaxRequestPayload);
  r.Feed(wire.data(), wire.size());
  for (uint64_t id = 1; id <= 5; id++) {
    Frame out;
    ASSERT_EQ(r.Next(&out), FrameReader::Result::kFrame);
    EXPECT_EQ(out.request_id, id);
    EXPECT_EQ(out.payload.size(), id);
  }
}

TEST(WireTest, ByteAtATimeDelivery) {
  std::string wire;
  EncodeFrame(MakeFrame(Opcode::kSearch, 7, "query-bytes"), &wire);
  FrameReader r(kMaxRequestPayload);
  Frame out;
  for (size_t i = 0; i + 1 < wire.size(); i++) {
    r.Feed(wire.data() + i, 1);
    ASSERT_EQ(r.Next(&out), FrameReader::Result::kNeedMore) << "byte " << i;
  }
  r.Feed(wire.data() + wire.size() - 1, 1);
  ASSERT_EQ(r.Next(&out), FrameReader::Result::kFrame);
  EXPECT_EQ(out.payload, "query-bytes");
}

TEST(WireTest, BadMagicRejected) {
  std::string wire;
  EncodeFrame(MakeFrame(Opcode::kPing, 1, ""), &wire);
  wire[4] = 'Z';  // corrupt the magic byte
  FrameReader r(kMaxRequestPayload);
  r.Feed(wire.data(), wire.size());
  Frame out;
  EXPECT_EQ(r.Next(&out), FrameReader::Result::kBadMagic);
}

TEST(WireTest, BadVersionRejected) {
  std::string wire;
  EncodeFrame(MakeFrame(Opcode::kPing, 1, ""), &wire);
  wire[5] = 99;
  FrameReader r(kMaxRequestPayload);
  r.Feed(wire.data(), wire.size());
  Frame out;
  EXPECT_EQ(r.Next(&out), FrameReader::Result::kBadVersion);
}

TEST(WireTest, OversizedLengthRejectedBeforePayloadArrives) {
  std::string wire;
  PutFixed32(&wire, kHeaderLen + kMaxRequestPayload + 1);
  wire.push_back(static_cast<char>(kMagic));
  wire.push_back(static_cast<char>(kVersion));
  FrameReader r(kMaxRequestPayload);
  r.Feed(wire.data(), wire.size());
  Frame out;
  // Rejected from the length field alone — no attacker-controlled
  // allocation of the announced size.
  EXPECT_EQ(r.Next(&out), FrameReader::Result::kTooLarge);
}

TEST(WireTest, UndersizedLengthRejected) {
  std::string wire;
  PutFixed32(&wire, kHeaderLen - 1);  // cannot hold a header
  wire.append(16, '\0');
  FrameReader r(kMaxRequestPayload);
  r.Feed(wire.data(), wire.size());
  Frame out;
  EXPECT_EQ(r.Next(&out), FrameReader::Result::kBadMagic);
}

TEST(WireTest, ErrorPayloadRoundTrip) {
  std::string payload;
  EncodeErrorPayload(ErrorCode::kDeadlock, true, "victim txn 12", &payload);
  ErrorCode code;
  bool txn_aborted;
  std::string msg;
  ASSERT_TRUE(DecodeErrorPayload(payload, &code, &txn_aborted, &msg));
  EXPECT_EQ(code, ErrorCode::kDeadlock);
  EXPECT_TRUE(txn_aborted);
  EXPECT_EQ(msg, "victim txn 12");

  EXPECT_FALSE(DecodeErrorPayload(Slice("ab", 2), &code, &txn_aborted, &msg));
  EXPECT_FALSE(DecodeErrorPayload(Slice(), &code, &txn_aborted, &msg));
}

TEST(WireTest, StatusErrorCodeMapping) {
  EXPECT_EQ(ErrorCodeFromStatus(Status::DuplicateKey("k")),
            ErrorCode::kDuplicateKey);
  EXPECT_EQ(ErrorCodeFromStatus(Status::Deadlock()), ErrorCode::kDeadlock);
  EXPECT_TRUE(StatusFromError(ErrorCode::kDuplicateKey, "k").IsDuplicateKey());
  EXPECT_TRUE(StatusFromError(ErrorCode::kDeadlock, "").IsDeadlock());
  EXPECT_TRUE(StatusFromError(ErrorCode::kTimeout, "").IsBusy());
  EXPECT_TRUE(StatusFromError(ErrorCode::kShuttingDown, "").IsAborted());
}

TEST(WireTest, OpcodeClassification) {
  EXPECT_TRUE(IsRequestOpcode(static_cast<uint8_t>(Opcode::kPing)));
  EXPECT_TRUE(IsRequestOpcode(static_cast<uint8_t>(Opcode::kStats)));
  EXPECT_FALSE(IsRequestOpcode(static_cast<uint8_t>(Opcode::kOk)));
  EXPECT_FALSE(IsRequestOpcode(0));
  EXPECT_FALSE(IsRequestOpcode(0x40));
}

TEST(WireTest, ReaderCompactionKeepsParsing) {
  // Push enough frames through to force internal buffer compaction.
  FrameReader r(kMaxRequestPayload);
  const std::string payload(8000, 'p');
  for (int i = 0; i < 50; i++) {
    std::string wire;
    EncodeFrame(MakeFrame(Opcode::kInsert, static_cast<uint64_t>(i), payload),
                &wire);
    r.Feed(wire.data(), wire.size());
    Frame out;
    ASSERT_EQ(r.Next(&out), FrameReader::Result::kFrame);
    ASSERT_EQ(out.request_id, static_cast<uint64_t>(i));
    ASSERT_EQ(out.payload, payload);
  }
  EXPECT_EQ(r.buffered(), 0u);
}

}  // namespace
}  // namespace net
}  // namespace gistcr
