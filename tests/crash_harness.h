#ifndef GISTCR_TESTS_CRASH_HARNESS_H_
#define GISTCR_TESTS_CRASH_HARNESS_H_

/// Fork-based crash-torture harness (ISSUE 2 tentpole).
///
/// Shape of every matrix case:
///   1. Parent forks. The child builds a fresh database, arms one named
///      crash point in kExit mode (AFTER setup, so bootstrap commits do not
///      trip txn/wal points), and runs a deterministic single-threaded
///      mixed insert/delete/GC/checkpoint workload until the point fires
///      and _Exit(42)s the process mid-operation — a simulated power cut.
///   2. The parent computes the ground-truth visible set by scanning the
///      durable WAL tail exactly as recovery will (committed Add-Leaf-Entry
///      records minus committed Mark-Leaf-Entry records; a transaction is
///      committed iff its Commit record is durable).
///   3. The parent re-opens the database (restart recovery runs), then
///      asserts full tree integrity (CheckInvariants: BP containment,
///      level sanity, rightlink acyclicity, RID uniqueness) and exact
///      atomicity (search result set == oracle, and every visible rid's
///      heap record is readable).
///
/// The WAL oracle is sound because the workload keys are unique and never
/// reinserted, and the child never uses savepoint rollback — so a committed
/// transaction's record set is order-insensitive and CLR-free.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "access/btree_extension.h"
#include "db/database.h"
#include "storage/fault_injector.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "wal/log_payloads.h"

namespace gistcr {
namespace crash {

struct TortureOptions {
  uint64_t seed = 7;
  int txns = 48;
  uint16_t max_entries = 5;  ///< Per-node cap: splits with few keys.
  size_t buffer_pool_pages = 512;
  /// Keys inserted (committed) before the crash point is armed. Use with a
  /// small pool to make the armed phase eviction-heavy.
  int preload_keys = 0;
};

[[noreturn]] inline void ChildDie(const char* what, const Status& st) {
  std::fprintf(stderr, "crash-harness child: %s: %s\n", what,
               st.ToString().c_str());
  std::_Exit(3);
}

#define GISTCR_CHILD_OK(what, expr)            \
  do {                                         \
    ::gistcr::Status _st = (expr);             \
    if (!_st.ok()) ChildDie(what, _st);        \
  } while (0)

/// Child body: build, arm, torture. Never returns — exits 42 when the
/// armed point fires, 0 when the workload drains without firing, 3 on an
/// unexpected error.
[[noreturn]] inline void RunTortureChild(const std::string& path,
                                         const std::string& point, int skip,
                                         const TortureOptions& opt) {
  static BtreeExtension ext;  // outlives the Database
  DatabaseOptions dopts;
  dopts.path = path;
  dopts.buffer_pool_pages = opt.buffer_pool_pages;
  auto db_or = Database::Create(dopts);
  if (!db_or.ok()) ChildDie("create", db_or.status());
  std::unique_ptr<Database> db = db_or.MoveValue();
  GistOptions gopts;
  gopts.index_id = 1;
  gopts.max_entries = opt.max_entries;
  GISTCR_CHILD_OK("create index", db->CreateIndex(1, &ext, gopts));
  auto gist_or = db->GetIndex(1);
  if (!gist_or.ok()) ChildDie("get index", gist_or.status());
  Gist* gist = gist_or.value();

  Random rng(opt.seed);
  std::map<int64_t, uint64_t> live;  // committed live keys -> packed rid
  int64_t next_key = 0;

  for (int i = 0; i < opt.preload_keys; i += 16) {
    Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
    for (int j = i; j < i + 16 && j < opt.preload_keys; j++) {
      const int64_t k = next_key++;
      auto rid_or = db->InsertRecord(txn, gist, BtreeExtension::MakeKey(k),
                                     "v" + std::to_string(k));
      if (!rid_or.ok()) ChildDie("preload insert", rid_or.status());
      live[k] = rid_or.value().Pack();
    }
    GISTCR_CHILD_OK("preload commit", db->Commit(txn));
  }

  // Setup is done: everything after this line can die at the armed point.
  FaultInjector::Global().Reset();
  FaultInjector::Global().ArmCrashPoint(point, skip,
                                        FaultInjector::CrashAction::kExit);

  for (int t = 0; t < opt.txns; t++) {
    if (t == opt.txns / 3) {
      // Mass delete two thirds of the live keys, then garbage-collect:
      // empties leaves and exercises GC / node-deletion crash points.
      Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
      std::vector<int64_t> doomed;
      int i = 0;
      for (const auto& [k, rid] : live) {
        if (i++ % 3 != 2) doomed.push_back(k);
      }
      for (int64_t k : doomed) {
        GISTCR_CHILD_OK("mass delete",
                        db->DeleteRecord(txn, gist, BtreeExtension::MakeKey(k),
                                         Rid::Unpack(live[k])));
      }
      GISTCR_CHILD_OK("mass delete commit", db->Commit(txn));
      for (int64_t k : doomed) live.erase(k);
    }
    if (t == opt.txns / 3 || t == 2 * opt.txns / 3) {
      Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
      uint64_t removed = 0, nodes = 0;
      GISTCR_CHILD_OK("gc", gist->GarbageCollect(txn, &removed, &nodes));
      GISTCR_CHILD_OK("gc commit", db->Commit(txn));
    }
    if (t == opt.txns / 2) {
      GISTCR_CHILD_OK("checkpoint", db->Checkpoint());
    }

    Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
    std::vector<std::pair<int64_t, uint64_t>> added;
    std::set<int64_t> removed;
    const int ops = 2 + static_cast<int>(rng.Uniform(5));
    for (int i = 0; i < ops; i++) {
      const bool do_delete =
          !live.empty() && removed.size() < live.size() && rng.Uniform(3) == 0;
      if (do_delete) {
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng.Uniform(live.size())));
        if (removed.count(it->first) != 0) continue;
        GISTCR_CHILD_OK(
            "delete", db->DeleteRecord(txn, gist,
                                       BtreeExtension::MakeKey(it->first),
                                       Rid::Unpack(it->second)));
        removed.insert(it->first);
      } else {
        const int64_t k = next_key++;
        auto rid_or = db->InsertRecord(txn, gist, BtreeExtension::MakeKey(k),
                                       "v" + std::to_string(k));
        if (!rid_or.ok()) ChildDie("insert", rid_or.status());
        added.emplace_back(k, rid_or.value().Pack());
      }
    }
    if (rng.Uniform(6) == 0) {
      GISTCR_CHILD_OK("abort", db->Abort(txn));
    } else {
      GISTCR_CHILD_OK("commit", db->Commit(txn));
      for (const auto& [k, rid] : added) live[k] = rid;
      for (int64_t k : removed) live.erase(k);
    }
  }
  std::_Exit(0);  // the armed point never fired
}

/// Forks, runs RunTortureChild in the child, returns the child's exit code
/// (-1 if it died on a signal or the fork failed).
inline int ForkTorture(const std::string& path, const std::string& point,
                       int skip, const TortureOptions& opt) {
  std::fflush(nullptr);  // don't duplicate buffered gtest output
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    RunTortureChild(path, point, skip, opt);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (!WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

/// Ground truth computed from the durable WAL — the same prefix restart
/// recovery will see.
struct Oracle {
  std::map<int64_t, uint64_t> visible;  // key -> packed rid
};

inline Status ComputeOracle(const std::string& path, Oracle* out) {
  struct TxnAgg {
    bool committed = false;
    std::vector<std::pair<int64_t, uint64_t>> adds;
    std::vector<int64_t> marks;
  };
  LogManager log;
  GISTCR_RETURN_IF_ERROR(log.Open(path + ".wal"));
  std::unordered_map<TxnId, TxnAgg> txns;
  GISTCR_RETURN_IF_ERROR(log.Scan(kInvalidLsn, [&](const LogRecord& rec) {
    if (rec.txn_id == kInvalidTxnId) return true;
    TxnAgg& agg = txns[rec.txn_id];
    EntryOpPayload pl;
    switch (rec.type) {
      case LogRecordType::kCommit:
        agg.committed = true;
        break;
      case LogRecordType::kAddLeafEntry:
        if (pl.DecodeFrom(rec.payload)) {
          agg.adds.emplace_back(BtreeExtension::Lo(pl.entry.key),
                                pl.entry.value);
        }
        break;
      case LogRecordType::kMarkLeafEntry:
        if (pl.DecodeFrom(rec.payload)) {
          agg.marks.push_back(BtreeExtension::Lo(pl.entry.key));
        }
        break;
      default:
        break;
    }
    return true;
  }));
  out->visible.clear();
  for (const auto& [id, agg] : txns) {
    (void)id;
    if (!agg.committed) continue;
    for (const auto& [k, rid] : agg.adds) out->visible[k] = rid;
  }
  for (const auto& [id, agg] : txns) {
    (void)id;
    if (!agg.committed) continue;
    for (int64_t k : agg.marks) out->visible.erase(k);
  }
  return Status::OK();
}

/// Sanity-checks the flight-recorder sidecar an induced crash must leave
/// behind (ISSUE 6 tentpole): the file exists, is one JSON object, and
/// carries the reason plus the metrics/slow-op/trace sections. Call after
/// ForkTorture returned kCrashExitCode, before re-opening the database.
inline void VerifyFlightArtifact(const std::string& path) {
  const std::string flight = path + ".flight";
  FILE* f = std::fopen(flight.c_str(), "r");
  ASSERT_NE(f, nullptr) << "crash left no flight artifact at " << flight;
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  ASSERT_FALSE(contents.empty()) << flight << " is empty";
  EXPECT_EQ(contents.front(), '{') << flight << " is not a JSON object";
  EXPECT_NE(contents.find("\"reason\":\""), std::string::npos);
  EXPECT_NE(contents.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(contents.find("\"slow_ops\":"), std::string::npos);
  EXPECT_NE(contents.find("\"trace\":"), std::string::npos);
}

/// Restart recovery + full integrity and atomicity verification. Gtest
/// assertions fire inside, so call from a TEST body.
inline void RecoverAndVerify(const std::string& path,
                             const TortureOptions& opt) {
  Oracle oracle;
  ASSERT_OK(ComputeOracle(path, &oracle));

  static BtreeExtension ext;
  DatabaseOptions dopts;
  dopts.path = path;
  dopts.buffer_pool_pages = opt.buffer_pool_pages;
  auto db_or = Database::Open(dopts);
  ASSERT_OK(db_or.status());
  std::unique_ptr<Database> db = db_or.MoveValue();
  // Under instant restart the open returns mid-recovery; the oracle
  // describes the *final* state, so drain before verifying.
  ASSERT_OK(db->WaitForRecovery());
  GistOptions gopts;
  gopts.index_id = 1;
  gopts.max_entries = opt.max_entries;
  ASSERT_OK(db->OpenIndex(1, &ext, gopts));
  auto gist_or = db->GetIndex(1);
  ASSERT_OK(gist_or.status());
  Gist* gist = gist_or.value();

  // Structural integrity: BP containment, levels, rightlink chain, RID
  // uniqueness.
  ASSERT_OK(gist->CheckInvariants());

  // Atomicity: the live set equals the WAL oracle exactly.
  Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
  std::vector<SearchResult> results;
  ASSERT_OK(gist->Search(txn, BtreeExtension::MakeRange(0, 1 << 20),
                         &results));
  ASSERT_OK(db->Commit(txn));
  std::map<int64_t, uint64_t> found;
  for (const SearchResult& r : results) {
    const int64_t k = BtreeExtension::Lo(r.key);
    EXPECT_EQ(found.count(k), 0u) << "duplicate visible key " << k;
    found[k] = r.rid.Pack();
  }
  EXPECT_EQ(found, oracle.visible);

  // Durability reaches the heap too: every visible rid must resolve.
  for (const auto& [k, rid] : oracle.visible) {
    auto rec_or = db->ReadRecord(Rid::Unpack(rid));
    EXPECT_TRUE(rec_or.ok()) << "heap record for key " << k << " lost: "
                             << rec_or.status().ToString();
    if (rec_or.ok()) {
      EXPECT_EQ(rec_or.value(), "v" + std::to_string(k));
    }
  }
}

}  // namespace crash
}  // namespace gistcr

#endif  // GISTCR_TESTS_CRASH_HARNESS_H_
