/// The crash matrix (ISSUE 2 tentpole): for every registered crash point,
/// kill a child process mid-workload at that point, recover, and assert
/// tree integrity plus transaction atomicity against a WAL-derived oracle —
/// Table 1's redo/undo taxonomy as an executable matrix. The recovery-phase
/// points get a dedicated crash-during-recovery idempotence test below.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "access/btree_extension.h"
#include "db/database.h"
#include "db/meta_page.h"
#include "storage/fault_injector.h"
#include "tests/crash_harness.h"
#include "tests/test_util.h"

namespace gistcr {
namespace {

using crash::ChildDie;  // GISTCR_CHILD_OK expands to an unqualified call
using crash::ForkTorture;
using crash::RecoverAndVerify;
using crash::TortureOptions;

#if GISTCR_LONG_TESTS
constexpr int kWorkloadTxns = 120;
#else
constexpr int kWorkloadTxns = 48;
#endif

struct PointSpec {
  const char* point;
  int skip;  ///< Fire on the (skip+1)-th execution of the site.
  bool eviction_profile;  ///< Tiny pool + preload: eviction-heavy phase.
  /// Some sites depend on workload shape that cannot be forced cheaply
  /// (e.g. node deletion needs an empty node with a same-parent rightlink
  /// owner). Exit 0 (point never fired) is tolerated for those; exit 42
  /// still verifies recovery when it does fire.
  bool allow_no_fire;
};

class CrashMatrixTest : public ::testing::TestWithParam<PointSpec> {};

TEST_P(CrashMatrixTest, KillRecoverVerify) {
  if (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "built with GISTCR_FAULT_INJECTION=OFF";
  }
  const PointSpec& spec = GetParam();
  const std::string path = TestPath("crash");
  RemoveDbFiles(path);

  TortureOptions opt;
  opt.txns = kWorkloadTxns;
  if (spec.eviction_profile) {
    opt.buffer_pool_pages = 64;
    opt.preload_keys = 400;
  }

  const int exit_code = ForkTorture(path, spec.point, spec.skip, opt);
  if (spec.allow_no_fire && exit_code == 0) {
    RemoveDbFiles(path);
    GTEST_SKIP() << spec.point << " did not fire under this workload";
  }
  ASSERT_EQ(exit_code, FaultInjector::kCrashExitCode)
      << "child did not die at crash point " << spec.point;

  // The induced crash must have dumped a readable flight-recorder
  // artifact before dying (checked before recovery touches the files).
  crash::VerifyFlightArtifact(path);
  RecoverAndVerify(path, opt);
  RemoveDbFiles(path);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoints, CrashMatrixTest,
    ::testing::Values(
        PointSpec{"insert.before_leaf_log", 0, false, false},
        PointSpec{"insert.before_leaf_log", 20, false, false},
        PointSpec{"insert.after_leaf_apply", 5, false, false},
        PointSpec{"delete.after_mark", 2, false, false},
        PointSpec{"split.after_log_append", 1, false, false},
        PointSpec{"split.before_parent_install", 1, false, false},
        PointSpec{"split.before_nta_commit", 2, false, false},
        PointSpec{"root.before_meta_update", 0, false, false},
        PointSpec{"gc.before_nta_end", 0, false, false},
        PointSpec{"gc.node_delete.before_rightlink_rewire", 0, false, true},
        PointSpec{"bp.before_evict_write", 0, true, false},
        PointSpec{"wal.before_fsync", 8, false, false},
        PointSpec{"wal.after_fsync", 8, false, false},
        PointSpec{"txn.commit.before_log_force", 10, false, false},
        PointSpec{"txn.commit.after_log_force", 10, false, false},
        PointSpec{"ckpt.before_master_update", 0, false, false}),
    [](const ::testing::TestParamInfo<PointSpec>& info) {
      std::string name = info.param.point;
      name += "_skip" + std::to_string(info.param.skip);
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

int ForkAndWait(const std::function<void()>& child_body) {
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    child_body();
    std::_Exit(0);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

// ---------------------------------------------------------------------
// Crash during an optimistic read restart (DESIGN.md section 13): the
// child dies at "search.optimistic_restart" — mid latch-free traversal,
// with a writer transaction in flight — and recovery must come back to a
// tree whose re-seeded version words serve correct optimistic reads.
// ---------------------------------------------------------------------

/// Child: preload, arm the restart crash point, then run optimistic
/// searches against a concurrent writer plus a root-latch toggler (a held
/// write latch makes the seqlock version odd, so a search that lands in
/// the window fails validation, restarts, and trips the point).
[[noreturn]] void RunOptimisticReaderCrashChild(const std::string& path,
                                                const TortureOptions& opt) {
  static BtreeExtension ext;
  DatabaseOptions dopts;
  dopts.path = path;
  dopts.buffer_pool_pages = opt.buffer_pool_pages;
  auto db_or = Database::Create(dopts);
  if (!db_or.ok()) crash::ChildDie("create", db_or.status());
  std::unique_ptr<Database> db = db_or.MoveValue();
  GistOptions gopts;
  gopts.index_id = 1;
  gopts.max_entries = opt.max_entries;
  GISTCR_CHILD_OK("create index", db->CreateIndex(1, &ext, gopts));
  auto gist_or = db->GetIndex(1);
  if (!gist_or.ok()) crash::ChildDie("get index", gist_or.status());
  Gist* gist = gist_or.value();

  int64_t next_key = 0;
  for (int i = 0; i < 300; i += 16) {
    Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
    for (int j = 0; j < 16; j++) {
      const int64_t k = next_key++;
      auto rid_or = db->InsertRecord(txn, gist, BtreeExtension::MakeKey(k),
                                     "v" + std::to_string(k));
      if (!rid_or.ok()) crash::ChildDie("preload insert", rid_or.status());
    }
    GISTCR_CHILD_OK("preload commit", db->Commit(txn));
  }

  FaultInjector::Global().Reset();
  FaultInjector::Global().ArmCrashPoint("search.optimistic_restart", 0,
                                        FaultInjector::CrashAction::kExit);

  std::atomic<bool> stop{false};
  // Writer: keeps splitting and version-bumping nodes; some of its
  // transactions will be in flight (durable but uncommitted) at the crash.
  std::thread writer([&] {
    while (!stop.load()) {
      Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
      bool ok = true;
      for (int j = 0; j < 4 && ok; j++) {
        const int64_t k = 1000 + next_key++;
        ok = db->InsertRecord(txn, gist, BtreeExtension::MakeKey(k),
                              "v" + std::to_string(k))
                 .ok();
      }
      if (ok) {
        (void)db->Commit(txn);
      } else {
        (void)db->Abort(txn);
      }
    }
  });
  // Latch toggler: holds the root write latch in short pulses so a search
  // reliably lands in an odd-version window.
  std::thread toggler([&] {
    auto meta_or = db->pool()->Fetch(MetaView::kMetaPageId);
    if (!meta_or.ok()) return;
    PageGuard mg(db->pool(), meta_or.value());
    mg.RLatch();
    const PageId root = MetaView(mg.view().data()).GetRoot(1);
    mg.Unlatch();
    while (!stop.load()) {
      auto fr = db->pool()->Fetch(root);
      if (!fr.ok()) return;
      {
        PageGuard g(db->pool(), fr.value());
        g.WLatch();
        for (int y = 0; y < 3; y++) std::this_thread::yield();
        g.Unlatch();
      }
      std::this_thread::yield();
    }
  });

  // Optimistic searches until the restart point fires and kills us.
  for (int i = 0; i < 50000; i++) {
    Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
    std::vector<SearchResult> results;
    (void)gist->Search(txn, BtreeExtension::MakeRange(0, 299), &results);
    (void)db->Commit(txn);
  }
  stop = true;
  writer.join();
  toggler.join();
  std::_Exit(0);  // the restart point never fired
}

TEST(CrashMatrixInflightReaders, CrashAtOptimisticRestartRecovers) {
  if (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "built with GISTCR_FAULT_INJECTION=OFF";
  }
  const std::string path = TestPath("optcrash");
  RemoveDbFiles(path);
  TortureOptions opt;

  const int exit_code =
      ForkAndWait([&] { RunOptimisticReaderCrashChild(path, opt); });
  if (exit_code == 0) {
    RemoveDbFiles(path);
    GTEST_SKIP() << "search.optimistic_restart did not fire";
  }
  ASSERT_EQ(exit_code, FaultInjector::kCrashExitCode)
      << "child did not die at search.optimistic_restart";
  crash::VerifyFlightArtifact(path);

  // Integrity + atomicity against the WAL oracle; the verification search
  // itself runs optimistically (kLink + optimistic_reads default on).
  RecoverAndVerify(path, opt);

  // Post-recovery, version words are re-seeded from the recovered page
  // LSNs: a fresh optimistic scan must serve from snapshots (visits move,
  // no fallbacks) and see exactly the oracle-visible keys again.
  static BtreeExtension ext;
  DatabaseOptions dopts;
  dopts.path = path;
  auto db_or = Database::Open(dopts);
  ASSERT_OK(db_or.status());
  std::unique_ptr<Database> db = db_or.MoveValue();
  GistOptions gopts;
  gopts.index_id = 1;
  gopts.max_entries = opt.max_entries;
  ASSERT_OK(db->OpenIndex(1, &ext, gopts));
  Gist* gist = db->GetIndex(1).value();
  crash::Oracle oracle;
  ASSERT_OK(crash::ComputeOracle(path, &oracle));
  Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
  std::vector<SearchResult> results;
  ASSERT_OK(gist->Search(txn, BtreeExtension::MakeRange(0, 1 << 20),
                         &results));
  ASSERT_OK(db->Commit(txn));
  EXPECT_EQ(results.size(), oracle.visible.size());
  EXPECT_GT(gist->stats().optimistic_visits.load(), 0u);
  EXPECT_EQ(gist->stats().read_fallbacks.load(), 0u);
  RemoveDbFiles(path);
}

// ---------------------------------------------------------------------
// Recovery idempotence: crash during recovery itself, recover twice,
// assert the trees are identical (satellite task).
// ---------------------------------------------------------------------

// Builds a database whose WAL ends with a guaranteed *durable loser*: a
// transaction whose updates (including splits) are flushed but whose
// Commit record is not — the shape that forces real undo work at restart.
[[noreturn]] void RunLoserBuilderChild(const std::string& path) {
  static BtreeExtension ext;
  DatabaseOptions dopts;
  dopts.path = path;
  auto db_or = Database::Create(dopts);
  if (!db_or.ok()) crash::ChildDie("create", db_or.status());
  std::unique_ptr<Database> db = db_or.MoveValue();
  GistOptions gopts;
  gopts.index_id = 1;
  gopts.max_entries = 5;
  GISTCR_CHILD_OK("create index", db->CreateIndex(1, &ext, gopts));
  auto gist_or = db->GetIndex(1);
  if (!gist_or.ok()) crash::ChildDie("get index", gist_or.status());
  Gist* gist = gist_or.value();

  int64_t key = 0;
  for (int t = 0; t < 20; t++) {
    Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
    for (int i = 0; i < 4; i++) {
      const int64_t k = key++;
      auto rid_or = db->InsertRecord(txn, gist, BtreeExtension::MakeKey(k),
                                     "v" + std::to_string(k));
      if (!rid_or.ok()) crash::ChildDie("insert", rid_or.status());
    }
    GISTCR_CHILD_OK("commit", db->Commit(txn));
  }

  // The loser: enough inserts to split, records forced durable mid-txn,
  // then die before the Commit record reaches the log.
  Transaction* loser = db->Begin(IsolationLevel::kReadCommitted);
  for (int i = 0; i < 15; i++) {
    const int64_t k = key++;
    auto rid_or = db->InsertRecord(loser, gist, BtreeExtension::MakeKey(k),
                                   "v" + std::to_string(k));
    if (!rid_or.ok()) crash::ChildDie("loser insert", rid_or.status());
  }
  GISTCR_CHILD_OK("loser flush", db->log()->FlushAll());
  FaultInjector::Global().Reset();
  FaultInjector::Global().ArmCrashPoint("txn.commit.before_log_force", 0,
                                        FaultInjector::CrashAction::kExit);
  (void)db->Commit(loser);  // dies at the crash point
  std::_Exit(3);            // should be unreachable
}

// Opens the database with a recovery-phase crash point armed; dies mid
// restart.
[[noreturn]] void RunRecoveryCrashChild(const std::string& path,
                                        const char* point, int skip) {
  FaultInjector::Global().Reset();
  FaultInjector::Global().ArmCrashPoint(point, skip,
                                        FaultInjector::CrashAction::kExit);
  DatabaseOptions dopts;
  dopts.path = path;
  // The offline pass-structure points (after_redo etc.) only exist in the
  // classic sequence; instant restart's own phases get their instant.*
  // points in instant_restart_test.cc.
  dopts.instant_restart = false;
  auto db_or = Database::Open(dopts);
  // Reaching here means the point never fired during restart.
  std::_Exit(db_or.ok() ? 0 : 3);
}

std::vector<IndexEntry> DumpSortedEntries(const std::string& path) {
  static BtreeExtension ext;
  DatabaseOptions dopts;
  dopts.path = path;
  auto db_or = Database::Open(dopts);
  EXPECT_TRUE(db_or.ok()) << db_or.status().ToString();
  if (!db_or.ok()) return {};
  std::unique_ptr<Database> db = db_or.MoveValue();
  EXPECT_OK(db->WaitForRecovery());
  GistOptions gopts;
  gopts.index_id = 1;
  gopts.max_entries = 5;
  EXPECT_OK(db->OpenIndex(1, &ext, gopts));
  auto gist_or = db->GetIndex(1);
  EXPECT_TRUE(gist_or.ok());
  std::vector<IndexEntry> entries;
  EXPECT_OK(gist_or.value()->CheckInvariants());
  EXPECT_OK(gist_or.value()->DumpEntries(&entries));
  std::sort(entries.begin(), entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              return std::tie(a.key, a.value, a.del_txn) <
                     std::tie(b.key, b.value, b.del_txn);
            });
  // Crash mid-recovery before the next Open: volatile state must not leak
  // into the second recovery via the destructor's flush.
  db->SimulateCrash();
  return entries;
}

class RecoveryIdempotenceTest
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(RecoveryIdempotenceTest, CrashDuringRecoveryThenRecoverTwice) {
  if (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "built with GISTCR_FAULT_INJECTION=OFF";
  }
  const auto& [point, skip] = GetParam();
  const std::string path = TestPath("idem");
  RemoveDbFiles(path);

  // 1. Build a WAL with winners and one durable loser.
  ASSERT_EQ(ForkAndWait([&] { RunLoserBuilderChild(path); }),
            FaultInjector::kCrashExitCode);

  // 2. Crash in the middle of restart recovery.
  ASSERT_EQ(ForkAndWait([&] { RunRecoveryCrashChild(path, point, skip); }),
            FaultInjector::kCrashExitCode)
      << point << " did not fire during restart";

  // 3. Recover fully, twice; both passes must produce the identical tree
  //    (page-LSN test + CLR backchain make redo and undo idempotent).
  std::vector<IndexEntry> first = DumpSortedEntries(path);
  ASSERT_FALSE(first.empty());
  std::vector<IndexEntry> second = DumpSortedEntries(path);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); i++) {
    EXPECT_EQ(first[i].key, second[i].key) << "entry " << i;
    EXPECT_EQ(first[i].value, second[i].value) << "entry " << i;
    EXPECT_EQ(first[i].del_txn, second[i].del_txn) << "entry " << i;
  }

  // The loser's keys must not be visible: its Commit never became durable.
  crash::Oracle oracle;
  ASSERT_OK(crash::ComputeOracle(path, &oracle));
  // Keys 0..79 are the 20 winner txns' inserts; 80..94 are the loser's.
  EXPECT_EQ(oracle.visible.size(), 80u);
  for (const auto& [k, rid] : oracle.visible) {
    (void)rid;
    EXPECT_LT(k, 80);
  }
  RemoveDbFiles(path);
}

INSTANTIATE_TEST_SUITE_P(
    RecoveryPhases, RecoveryIdempotenceTest,
    ::testing::Values(std::make_pair("recovery.after_analysis", 0),
                      std::make_pair("recovery.after_redo", 0),
                      std::make_pair("recovery.mid_undo", 3)),
    [](const ::testing::TestParamInfo<std::pair<const char*, int>>& info) {
      std::string name = info.param.first;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

// Every matrix point (and the recovery-phase points) must be a registered
// name — catches typos between call sites, catalogue, and tests.
TEST(CrashPointCatas, MatrixPointsAreCatalogued) {
  auto in_catalogue = [](const std::string& p) {
    for (const char* name : kCrashPointCatalogue) {
      if (p == name) return true;
    }
    return false;
  };
  for (const char* p :
       {"insert.before_leaf_log", "insert.after_leaf_apply",
        "delete.after_mark", "split.after_log_append",
        "split.before_parent_install", "split.before_nta_commit",
        "root.before_meta_update", "gc.before_nta_end",
        "gc.node_delete.before_rightlink_rewire", "bp.before_evict_write",
        "wal.before_fsync", "wal.after_fsync", "txn.commit.before_log_force",
        "txn.commit.after_log_force", "ckpt.before_master_update",
        "recovery.after_analysis", "recovery.after_redo",
        "recovery.mid_undo", "search.optimistic_restart"}) {
    EXPECT_TRUE(in_catalogue(p)) << p;
  }
}

}  // namespace
}  // namespace gistcr
