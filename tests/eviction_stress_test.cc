#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "access/btree_extension.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace gistcr {
namespace {

/// The headline structural property — "completely avoids holding node
/// locks [latches] during I/Os" — only matters when there ARE I/Os. These
/// tests run the full protocol with a pathologically small buffer pool so
/// that nearly every node visit misses, evicts a dirty victim (forcing the
/// WAL rule) and re-reads from disk.
class EvictionStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("evict");
    RemoveDbFiles(path_);
    opts_.path = path_;
    opts_.buffer_pool_pages = 64;  // the enforced minimum: constant eviction
    auto db_or = Database::Create(opts_);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    GistOptions gopts;
    gopts.max_entries = 8;
    ASSERT_OK(db_->CreateIndex(1, &ext_, gopts));
    gist_ = db_->GetIndex(1).value();
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }
  std::string path_;
  DatabaseOptions opts_;
  std::unique_ptr<Database> db_;
  BtreeExtension ext_;
  Gist* gist_ = nullptr;
};

TEST_F(EvictionStressTest, LargeTreeThroughTinyPool) {
  Transaction* txn = db_->Begin();
  for (int64_t k = 0; k < 2000; k++) {
    ASSERT_OK(db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(k), "v")
                  .status());
  }
  ASSERT_OK(db_->Commit(txn));
  ASSERT_OK(gist_->CheckInvariants());
  EXPECT_LE(db_->pool()->ResidentCount(), 64u);

  Transaction* t2 = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(
      gist_->Search(t2, BtreeExtension::MakeRange(0, 2000), &results));
  EXPECT_EQ(results.size(), 2000u);
  ASSERT_OK(db_->Commit(t2));
}

TEST_F(EvictionStressTest, ConcurrentOpsUnderEviction) {
  {
    Transaction* txn = db_->Begin();
    for (int64_t k = 0; k < 500; k++) {
      ASSERT_OK(
          db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(k), "v")
              .status());
    }
    ASSERT_OK(db_->Commit(txn));
  }
  std::atomic<int> next{500};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      Random rng(static_cast<uint64_t>(t) + 77);
      for (int i = 0; i < 100; i++) {
        for (int attempt = 0; attempt < 50; attempt++) {
          Transaction* txn = db_->Begin(IsolationLevel::kReadCommitted);
          Status st;
          if (rng.OneIn(2)) {
            st = db_->InsertRecord(txn, gist_,
                                   BtreeExtension::MakeKey(next.fetch_add(1)),
                                   "v")
                     .status();
          } else {
            std::vector<SearchResult> results;
            const int64_t lo = rng.UniformRange(0, 400);
            st = gist_->Search(txn, BtreeExtension::MakeRange(lo, lo + 50),
                               &results);
          }
          if (st.ok() && db_->Commit(txn).ok()) break;
          (void)db_->Abort(txn);
          if (!st.IsDeadlock() && !st.IsBusy() && !st.IsNoSpace()) {
            failures++;
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_OK(gist_->CheckInvariants());
}

TEST_F(EvictionStressTest, RecoveryWithTinyPool) {
  Transaction* txn = db_->Begin();
  for (int64_t k = 0; k < 800; k++) {
    ASSERT_OK(db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(k), "v")
                  .status());
  }
  ASSERT_OK(db_->Commit(txn));
  Transaction* loser = db_->Begin();
  for (int64_t k = 1000; k < 1100; k++) {
    ASSERT_OK(
        db_->InsertRecord(loser, gist_, BtreeExtension::MakeKey(k), "v")
            .status());
  }
  ASSERT_OK(db_->log()->FlushAll());
  db_->SimulateCrash();
  db_.reset();
  auto db_or = Database::Open(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  GistOptions gopts;
  gopts.max_entries = 8;
  ASSERT_OK(db_->OpenIndex(1, &ext_, gopts));
  gist_ = db_->GetIndex(1).value();
  ASSERT_OK(gist_->CheckInvariants());
  Transaction* t2 = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(gist_->Search(t2, BtreeExtension::MakeRange(0, 2000), &results));
  EXPECT_EQ(results.size(), 800u);
  ASSERT_OK(db_->Commit(t2));
}

}  // namespace
}  // namespace gistcr
