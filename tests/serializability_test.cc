#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "access/btree_extension.h"
#include "tests/test_util.h"
#include "util/coding.h"
#include "util/random.h"

namespace gistcr {
namespace {

/// End-to-end isolation smoke test in the style of a bank-transfer
/// workload: accounts are records keyed by account id; a "transfer" reads
/// two balances at repeatable read, deletes both records and re-inserts
/// them with updated balances, all in one transaction. Concurrent auditors
/// sum every balance at repeatable read.
///
/// Invariants checked:
///   - every auditor snapshot sums to the initial total (no partial
///     transfers visible, no phantoms, no lost records);
///   - the final state sums to the initial total;
///   - account count is constant.
/// Degree-3 isolation (paper section 4) is exactly what makes this hold.
class SerializabilityTest : public ::testing::Test {
 protected:
  static constexpr int64_t kAccounts = 40;
  static constexpr int64_t kInitialBalance = 1000;

  void SetUp() override {
    path_ = TestPath("bank");
    RemoveDbFiles(path_);
    DatabaseOptions opts;
    opts.path = path_;
    opts.buffer_pool_pages = 512;
    auto db_or = Database::Create(opts);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    GistOptions gopts;
    gopts.max_entries = 8;
    ASSERT_OK(db_->CreateIndex(1, &ext_, gopts));
    gist_ = db_->GetIndex(1).value();
    Transaction* txn = db_->Begin();
    for (int64_t a = 0; a < kAccounts; a++) {
      ASSERT_OK(db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(a),
                                  EncodeBalance(kInitialBalance))
                    .status());
    }
    ASSERT_OK(db_->Commit(txn));
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }

  static std::string EncodeBalance(int64_t b) {
    std::string s;
    PutFixed64(&s, static_cast<uint64_t>(b));
    return s;
  }
  static int64_t DecodeBalance(const std::string& s) {
    return static_cast<int64_t>(DecodeFixed64(s.data()));
  }

  /// One transfer transaction; returns the final status (commit result or
  /// the error that caused the abort).
  Status TryTransfer(int64_t from, int64_t to, int64_t amount) {
    Transaction* txn = db_->Begin(IsolationLevel::kRepeatableRead);
    auto fail = [&](Status st) {
      (void)db_->Abort(txn);
      return st;
    };
    std::vector<SearchResult> src, dst;
    Status st =
        gist_->Search(txn, BtreeExtension::MakeRange(from, from), &src);
    if (st.ok()) {
      st = gist_->Search(txn, BtreeExtension::MakeRange(to, to), &dst);
    }
    if (!st.ok()) return fail(st);
    if (src.size() != 1 || dst.size() != 1) {
      return fail(Status::Corruption("account record count wrong"));
    }
    auto src_rec = db_->ReadRecord(src[0].rid);
    auto dst_rec = db_->ReadRecord(dst[0].rid);
    if (!src_rec.ok() || !dst_rec.ok()) {
      return fail(Status::Corruption("account body missing"));
    }
    const int64_t src_bal = DecodeBalance(src_rec.value());
    const int64_t dst_bal = DecodeBalance(dst_rec.value());
    st = db_->DeleteRecord(txn, gist_, src[0].key, src[0].rid);
    if (st.ok()) st = db_->DeleteRecord(txn, gist_, dst[0].key, dst[0].rid);
    if (st.ok()) {
      st = db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(from),
                             EncodeBalance(src_bal - amount))
               .status();
    }
    if (st.ok()) {
      st = db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(to),
                             EncodeBalance(dst_bal + amount))
               .status();
    }
    if (!st.ok()) return fail(st);
    return db_->Commit(txn);
  }

  /// Repeatable-read audit; returns the balance sum, or nullopt on
  /// deadlock victimhood.
  StatusOr<int64_t> Audit() {
    Transaction* txn = db_->Begin(IsolationLevel::kRepeatableRead);
    std::vector<SearchResult> all;
    Status st = gist_->Search(
        txn, BtreeExtension::MakeRange(0, kAccounts - 1), &all);
    if (!st.ok()) {
      (void)db_->Abort(txn);
      return st;
    }
    int64_t sum = 0;
    for (const auto& r : all) {
      auto rec = db_->ReadRecord(r.rid);
      if (!rec.ok()) {
        (void)db_->Abort(txn);
        return rec.status();
      }
      sum += DecodeBalance(rec.value());
    }
    if (all.size() != static_cast<size_t>(kAccounts)) {
      (void)db_->Abort(txn);
      return Status::Corruption("audit saw " + std::to_string(all.size()) +
                                " accounts");
    }
    GISTCR_RETURN_IF_ERROR(db_->Commit(txn));
    return sum;
  }

  std::string path_;
  std::unique_ptr<Database> db_;
  BtreeExtension ext_;
  Gist* gist_ = nullptr;
};

TEST_F(SerializabilityTest, ConcurrentTransfersPreserveTotal) {
  constexpr int kWorkers = 4;
  constexpr int kTransfersPerWorker = 60;
  std::atomic<int> committed{0};
  std::atomic<int> audits_ok{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; w++) {
    workers.emplace_back([&, w] {
      Random rng(static_cast<uint64_t>(w) * 101 + 7);
      int done = 0;
      while (done < kTransfersPerWorker) {
        const int64_t from = rng.UniformRange(0, kAccounts - 1);
        int64_t to = rng.UniformRange(0, kAccounts - 1);
        if (to == from) to = (to + 1) % kAccounts;
        Status st = TryTransfer(from, to, rng.UniformRange(1, 10));
        if (st.ok()) {
          committed++;
          done++;
        } else if (!st.IsDeadlock() && !st.IsBusy()) {
          ADD_FAILURE() << "transfer failed: " << st.ToString();
          violation = true;
          return;
        }
      }
    });
  }
  std::thread auditor([&] {
    while (!stop.load()) {
      auto sum = Audit();
      if (sum.ok()) {
        audits_ok++;
        if (sum.value() != kAccounts * kInitialBalance) {
          ADD_FAILURE() << "audit saw inconsistent total " << sum.value();
          violation = true;
          return;
        }
      } else if (!sum.status().IsDeadlock() && !sum.status().IsBusy()) {
        ADD_FAILURE() << "audit failed: " << sum.status().ToString();
        violation = true;
        return;
      }
    }
  });
  for (auto& t : workers) t.join();
  stop = true;
  auditor.join();
  ASSERT_FALSE(violation.load());
  EXPECT_EQ(committed.load(), kWorkers * kTransfersPerWorker);
  EXPECT_GT(audits_ok.load(), 0);

  // Final state: exact total, exact account count, invariants hold.
  auto final_sum = Audit();
  ASSERT_OK(final_sum.status());
  EXPECT_EQ(final_sum.value(), kAccounts * kInitialBalance);
  ASSERT_OK(gist_->CheckInvariants());

  // GC after the churn keeps everything consistent.
  Transaction* gc = db_->Begin(IsolationLevel::kReadCommitted);
  uint64_t removed = 0, nodes = 0;
  ASSERT_OK(gist_->GarbageCollect(gc, &removed, &nodes));
  ASSERT_OK(db_->Commit(gc));
  EXPECT_GT(removed, 0u);
  auto after_gc = Audit();
  ASSERT_OK(after_gc.status());
  EXPECT_EQ(after_gc.value(), kAccounts * kInitialBalance);
}

TEST_F(SerializabilityTest, TransfersSurviveCrashAtomically) {
  Random rng(17);
  for (int i = 0; i < 40; i++) {
    const int64_t from = rng.UniformRange(0, kAccounts - 1);
    int64_t to = rng.UniformRange(0, kAccounts - 1);
    if (to == from) to = (to + 1) % kAccounts;
    Status st = TryTransfer(from, to, rng.UniformRange(1, 50));
    ASSERT_TRUE(st.ok() || st.IsDeadlock()) << st.ToString();
  }
  // A transfer in flight when the lights go out...
  Transaction* txn = db_->Begin(IsolationLevel::kRepeatableRead);
  std::vector<SearchResult> src;
  ASSERT_OK(gist_->Search(txn, BtreeExtension::MakeRange(0, 0), &src));
  ASSERT_EQ(src.size(), 1u);
  ASSERT_OK(db_->DeleteRecord(txn, gist_, src[0].key, src[0].rid));
  // (debit applied, credit never written)
  ASSERT_OK(db_->log()->FlushAll());
  db_->SimulateCrash();
  db_.reset();

  DatabaseOptions opts;
  opts.path = path_;
  opts.buffer_pool_pages = 512;
  auto db_or = Database::Open(opts);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  GistOptions gopts;
  gopts.max_entries = 8;
  ASSERT_OK(db_->OpenIndex(1, &ext_, gopts));
  gist_ = db_->GetIndex(1).value();
  ASSERT_OK(gist_->CheckInvariants());
  auto sum = Audit();
  ASSERT_OK(sum.status());
  EXPECT_EQ(sum.value(), kAccounts * kInitialBalance);
}

}  // namespace
}  // namespace gistcr
