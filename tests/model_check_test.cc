#include <gtest/gtest.h>

#include <map>
#include <set>

#include "access/btree_extension.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace gistcr {
namespace {

/// Model-based end-to-end check: a long random stream of transactions
/// (insert / delete / range-search / abort / GC / crash-recover) executed
/// against both the engine and an in-memory oracle (std::map). After every
/// search the result set must equal the oracle's range view; after every
/// crash-recovery cycle the full contents must match the oracle exactly.
///
/// Equivalence mode (DESIGN.md section 13): every operation is mirrored
/// into a second index that has optimistic reads disabled, and every
/// search runs against both. The optimistic (latch-free) read path must be
/// observationally identical to the latched one on the same history —
/// same result sets step by step, same post-recovery contents.
class ModelCheckTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    path_ = TestPath("model");
    RemoveDbFiles(path_);
    opts_.path = path_;
    opts_.buffer_pool_pages = 256;
    OpenFresh();
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }

  GistOptions IndexOptions(bool optimistic) {
    GistOptions gopts;
    gopts.max_entries = 8;
    gopts.optimistic_reads = optimistic;
    return gopts;
  }

  void OpenFresh() {
    auto db_or = Database::Create(opts_);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    ASSERT_OK(db_->CreateIndex(1, &ext_, IndexOptions(true)));
    gist_ = db_->GetIndex(1).value();
    ASSERT_OK(db_->CreateIndex(2, &ext_latched_, IndexOptions(false)));
    gist_latched_ = db_->GetIndex(2).value();
  }

  void CrashRecover() {
    ASSERT_OK(db_->log()->FlushAll());
    db_->SimulateCrash();
    db_.reset();
    auto db_or = Database::Open(opts_);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    ASSERT_OK(db_->OpenIndex(1, &ext_, IndexOptions(true)));
    gist_ = db_->GetIndex(1).value();
    ASSERT_OK(db_->OpenIndex(2, &ext_latched_, IndexOptions(false)));
    gist_latched_ = db_->GetIndex(2).value();
  }

  /// Runs the same range search through the optimistic index and the
  /// latched mirror; the two must agree before either is compared to the
  /// oracle.
  std::set<int64_t> SearchBoth(Transaction* txn, int64_t lo, int64_t hi) {
    std::vector<SearchResult> results;
    EXPECT_OK(gist_->Search(txn, BtreeExtension::MakeRange(lo, hi), &results));
    std::set<int64_t> got;
    for (const auto& r : results) got.insert(BtreeExtension::Lo(r.key));
    std::vector<SearchResult> latched;
    EXPECT_OK(gist_latched_->Search(txn, BtreeExtension::MakeRange(lo, hi),
                                    &latched));
    std::set<int64_t> got_latched;
    for (const auto& r : latched) got_latched.insert(BtreeExtension::Lo(r.key));
    EXPECT_EQ(got, got_latched)
        << "optimistic and latched reads diverge on [" << lo << "," << hi
        << "]";
    return got;
  }

  std::string path_;
  DatabaseOptions opts_;
  std::unique_ptr<Database> db_;
  BtreeExtension ext_;
  BtreeExtension ext_latched_;
  Gist* gist_ = nullptr;
  Gist* gist_latched_ = nullptr;
};

TEST_P(ModelCheckTest, RandomOpsMatchOracle) {
  Random rng(GetParam());
  std::map<int64_t, Rid> oracle;          // committed state (optimistic index)
  std::map<int64_t, Rid> oracle_latched;  // rids of the latched mirror
  int64_t next_key_base = 0;

  for (int step = 0; step < 120; step++) {
    const uint64_t dice = rng.Uniform(100);
    if (dice < 45) {
      // Transaction with 1..8 inserts (mirrored into both indexes);
      // 20% abort.
      Transaction* txn = db_->Begin(IsolationLevel::kReadCommitted);
      std::vector<std::tuple<int64_t, Rid, Rid>> staged;
      const int n = 1 + static_cast<int>(rng.Uniform(8));
      for (int i = 0; i < n; i++) {
        const int64_t k = next_key_base++;
        auto rid =
            db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(k), "v");
        ASSERT_OK(rid.status());
        auto rid_latched = db_->InsertRecord(txn, gist_latched_,
                                             BtreeExtension::MakeKey(k), "v");
        ASSERT_OK(rid_latched.status());
        staged.emplace_back(k, rid.value(), rid_latched.value());
      }
      if (rng.OneIn(5)) {
        ASSERT_OK(db_->Abort(txn));
      } else {
        ASSERT_OK(db_->Commit(txn));
        for (auto& [k, r, rl] : staged) {
          oracle[k] = r;
          oracle_latched[k] = rl;
        }
      }
    } else if (dice < 65 && !oracle.empty()) {
      // Transaction with 1..4 deletes (mirrored); 20% abort.
      Transaction* txn = db_->Begin(IsolationLevel::kReadCommitted);
      std::vector<int64_t> staged;
      const int n = 1 + static_cast<int>(rng.Uniform(4));
      for (int i = 0; i < n && !oracle.empty(); i++) {
        auto it = oracle.lower_bound(
            static_cast<int64_t>(rng.Uniform(next_key_base + 1)));
        if (it == oracle.end()) it = oracle.begin();
        if (std::find(staged.begin(), staged.end(), it->first) !=
            staged.end()) {
          continue;
        }
        ASSERT_OK(db_->DeleteRecord(txn, gist_,
                                    BtreeExtension::MakeKey(it->first),
                                    it->second));
        ASSERT_OK(db_->DeleteRecord(txn, gist_latched_,
                                    BtreeExtension::MakeKey(it->first),
                                    oracle_latched[it->first]));
        staged.push_back(it->first);
      }
      if (rng.OneIn(5)) {
        ASSERT_OK(db_->Abort(txn));
      } else {
        ASSERT_OK(db_->Commit(txn));
        for (int64_t k : staged) {
          oracle.erase(k);
          oracle_latched.erase(k);
        }
      }
    } else if (dice < 90) {
      // Range search: optimistic vs latched vs oracle.
      const int64_t lo = rng.UniformRange(0, next_key_base + 10);
      const int64_t hi = lo + rng.UniformRange(0, 200);
      Transaction* txn = db_->Begin(IsolationLevel::kReadCommitted);
      const std::set<int64_t> got = SearchBoth(txn, lo, hi);
      ASSERT_OK(db_->Commit(txn));
      std::set<int64_t> want;
      for (auto it = oracle.lower_bound(lo);
           it != oracle.end() && it->first <= hi; ++it) {
        want.insert(it->first);
      }
      ASSERT_EQ(got, want) << "range [" << lo << "," << hi << "] at step "
                           << step;
    } else if (dice < 95) {
      // GC sweep (both indexes).
      Transaction* txn = db_->Begin(IsolationLevel::kReadCommitted);
      uint64_t r = 0, n = 0;
      ASSERT_OK(gist_->GarbageCollect(txn, &r, &n));
      ASSERT_OK(gist_latched_->GarbageCollect(txn, &r, &n));
      ASSERT_OK(db_->Commit(txn));
    } else {
      // Crash + recover; then verify the full state against the oracle.
      // Post-recovery optimistic searches run against version words
      // re-seeded from the recovered page LSNs, so this leg also checks
      // the version/NSN unification across restarts.
      CrashRecover();
      ASSERT_OK(gist_->CheckInvariants());
      ASSERT_OK(gist_latched_->CheckInvariants());
      Transaction* txn = db_->Begin(IsolationLevel::kReadCommitted);
      const std::set<int64_t> got = SearchBoth(txn, 0, next_key_base + 10);
      ASSERT_OK(db_->Commit(txn));
      std::set<int64_t> want;
      for (auto& [k, rid] : oracle) {
        (void)rid;
        want.insert(k);
      }
      ASSERT_EQ(got, want) << "post-recovery divergence at step " << step;
    }
  }
  ASSERT_OK(gist_->CheckInvariants());
  ASSERT_OK(gist_latched_->CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelCheckTest,
                         ::testing::Values(1, 42, 777, 31415, 271828));

}  // namespace
}  // namespace gistcr
