#include <gtest/gtest.h>

#include <vector>

#include "access/btree_extension.h"
#include "tests/test_util.h"

namespace gistcr {
namespace {

/// Version-store garbage collection (DESIGN.md section 14.4): chains are
/// pinned while a snapshot can observe them and shrink once it ends, and
/// the leaf/node GC sweep defers physical removal to active snapshots.
class MvccGcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("mvcc_gc");
    RemoveDbFiles(path_);
    DatabaseOptions opts;
    opts.path = path_;
    opts.buffer_pool_pages = 512;
    auto db_or = Database::Create(opts);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    GistOptions gopts;
    gopts.max_entries = 8;
    ASSERT_OK(db_->CreateIndex(1, &ext_, gopts));
    gist_ = db_->GetIndex(1).value();
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }

  Rid MustInsert(Transaction* txn, int64_t key) {
    auto rid =
        db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(key), "v");
    EXPECT_OK(rid.status());
    return rid.ok() ? rid.value() : Rid{};
  }

  std::vector<int64_t> Scan(Transaction* txn, int64_t lo, int64_t hi) {
    std::vector<SearchResult> results;
    EXPECT_OK(gist_->Search(txn, BtreeExtension::MakeRange(lo, hi), &results));
    std::vector<int64_t> keys;
    for (const auto& r : results) keys.push_back(BtreeExtension::Lo(r.key));
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  std::string path_;
  std::unique_ptr<Database> db_;
  BtreeExtension ext_;
  Gist* gist_ = nullptr;
};

TEST_F(MvccGcTest, PruneShrinksChainsOnceUnpinned) {
  MvccManager* mvcc = db_->mvcc();
  ASSERT_NE(mvcc, nullptr);

  Transaction* setup = db_->Begin();
  std::vector<Rid> rids;
  for (int64_t k = 1; k <= 4; k++) rids.push_back(MustInsert(setup, k));
  ASSERT_OK(db_->Commit(setup));

  Transaction* snap = db_->Begin(IsolationLevel::kSnapshot);
  EXPECT_EQ(Scan(snap, 0, 100), (std::vector<int64_t>{1, 2, 3, 4}));

  // Churn under the snapshot: delete + reinsert every key, twice. Each
  // round adds delete stamps and fresh insert records the snapshot must
  // not see, so history accumulates.
  for (int round = 0; round < 2; round++) {
    Transaction* w = db_->Begin();
    for (size_t i = 0; i < rids.size(); i++) {
      const int64_t key = static_cast<int64_t>(i) + 1;
      ASSERT_OK(db_->DeleteRecord(w, gist_, BtreeExtension::MakeKey(key),
                                  rids[i]));
      rids[i] = MustInsert(w, key);
    }
    ASSERT_OK(db_->Commit(w));
  }
  const size_t populated = mvcc->StoreSize();
  EXPECT_GT(populated, 0u);

  // Pruning with the snapshot still active must keep everything it can
  // observe: the scan stays byte-for-byte stable.
  mvcc->Prune();
  EXPECT_EQ(Scan(snap, 0, 100), (std::vector<int64_t>{1, 2, 3, 4}));
  ASSERT_OK(db_->Commit(snap));

  // Unpinned: everything is below the horizon, chains collapse entirely
  // (a missing record means "ancient", which answers correctly for all
  // committed history).
  const size_t pruned = mvcc->Prune();
  EXPECT_GT(pruned, 0u);
  EXPECT_EQ(mvcc->StoreSize(), 0u);
  for (const Rid& rid : rids) EXPECT_EQ(mvcc->ChainLength(rid.Pack()), 0u);
  EXPECT_GE(db_->metrics()->GetCounter("mvcc.versions_pruned")->value(),
            pruned);
}

TEST_F(MvccGcTest, LeafGcDefersToActiveSnapshots) {
  Transaction* setup = db_->Begin();
  const Rid rid = MustInsert(setup, 7);
  ASSERT_OK(db_->Commit(setup));

  Transaction* snap = db_->Begin(IsolationLevel::kSnapshot);
  EXPECT_EQ(Scan(snap, 0, 100), (std::vector<int64_t>{7}));

  Transaction* w = db_->Begin();
  ASSERT_OK(db_->DeleteRecord(w, gist_, BtreeExtension::MakeKey(7), rid));
  ASSERT_OK(db_->Commit(w));

  // The deleter terminated, so without MVCC this sweep would physically
  // remove the entry. The active snapshot still needs it.
  ASSERT_OK(db_->RunMaintenancePass());
  EXPECT_EQ(Scan(snap, 0, 100), (std::vector<int64_t>{7}));
  ASSERT_OK(db_->Commit(snap));

  // Snapshot gone: the next sweep reclaims it.
  const uint64_t removed_before = gist_->stats().gc_removed.load();
  ASSERT_OK(db_->RunMaintenancePass());
  EXPECT_GT(gist_->stats().gc_removed.load(), removed_before);
  Transaction* after = db_->Begin();
  EXPECT_TRUE(Scan(after, 0, 100).empty());
  ASSERT_OK(db_->Commit(after));
}

TEST_F(MvccGcTest, NodeRetirementDefersWhileSnapshotsActive) {
  MvccManager* mvcc = db_->mvcc();
  ASSERT_NE(mvcc, nullptr);
  EXPECT_TRUE(mvcc->CanRetireNodes());

  Transaction* snap = db_->Begin(IsolationLevel::kSnapshot);
  EXPECT_FALSE(mvcc->CanRetireNodes());
  EXPECT_GT(db_->metrics()->GetCounter("mvcc.node_retire_deferred")->value(),
            0u);
  ASSERT_OK(db_->Commit(snap));
  EXPECT_TRUE(mvcc->CanRetireNodes());
}

TEST_F(MvccGcTest, SavepointRollbackUnstampsVersions) {
  MvccManager* mvcc = db_->mvcc();
  ASSERT_NE(mvcc, nullptr);

  // Roll an insert back to a savepoint while the transaction stays alive;
  // its pending version must vanish rather than get stamped at commit.
  Transaction* txn = db_->Begin();
  const Rid keep = MustInsert(txn, 1);
  ASSERT_OK(db_->txns()->Savepoint(txn, "sp"));
  const Rid undone = MustInsert(txn, 2);
  ASSERT_OK(db_->txns()->RollbackToSavepoint(txn, "sp"));
  ASSERT_OK(db_->Commit(txn));

  EXPECT_EQ(mvcc->ChainLength(undone.Pack()), 0u);
  EXPECT_EQ(mvcc->ChainLength(keep.Pack()), 1u);

  Transaction* snap = db_->Begin(IsolationLevel::kSnapshot);
  EXPECT_EQ(Scan(snap, 0, 100), (std::vector<int64_t>{1}));
  ASSERT_OK(db_->Commit(snap));
}

}  // namespace
}  // namespace gistcr
