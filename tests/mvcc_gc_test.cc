#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "access/btree_extension.h"
#include "tests/test_util.h"

namespace gistcr {
namespace {

/// Version-store garbage collection (DESIGN.md section 14.4): chains are
/// pinned while a snapshot can observe them and shrink once it ends, and
/// the leaf/node GC sweep defers physical removal to active snapshots.
class MvccGcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("mvcc_gc");
    RemoveDbFiles(path_);
    DatabaseOptions opts;
    opts.path = path_;
    opts.buffer_pool_pages = 512;
    auto db_or = Database::Create(opts);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    GistOptions gopts;
    gopts.max_entries = 8;
    ASSERT_OK(db_->CreateIndex(1, &ext_, gopts));
    gist_ = db_->GetIndex(1).value();
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }

  Rid MustInsert(Transaction* txn, int64_t key) {
    auto rid =
        db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(key), "v");
    EXPECT_OK(rid.status());
    return rid.ok() ? rid.value() : Rid{};
  }

  std::vector<int64_t> Scan(Transaction* txn, int64_t lo, int64_t hi) {
    std::vector<SearchResult> results;
    EXPECT_OK(gist_->Search(txn, BtreeExtension::MakeRange(lo, hi), &results));
    std::vector<int64_t> keys;
    for (const auto& r : results) keys.push_back(BtreeExtension::Lo(r.key));
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  std::string path_;
  std::unique_ptr<Database> db_;
  BtreeExtension ext_;
  Gist* gist_ = nullptr;
};

TEST_F(MvccGcTest, PruneShrinksChainsOnceUnpinned) {
  MvccManager* mvcc = db_->mvcc();
  ASSERT_NE(mvcc, nullptr);

  Transaction* setup = db_->Begin();
  std::vector<Rid> rids;
  for (int64_t k = 1; k <= 4; k++) rids.push_back(MustInsert(setup, k));
  ASSERT_OK(db_->Commit(setup));

  Transaction* snap = db_->Begin(IsolationLevel::kSnapshot);
  EXPECT_EQ(Scan(snap, 0, 100), (std::vector<int64_t>{1, 2, 3, 4}));

  // Churn under the snapshot: delete + reinsert every key, twice. Each
  // round adds delete stamps and fresh insert records the snapshot must
  // not see, so history accumulates.
  for (int round = 0; round < 2; round++) {
    Transaction* w = db_->Begin();
    for (size_t i = 0; i < rids.size(); i++) {
      const int64_t key = static_cast<int64_t>(i) + 1;
      ASSERT_OK(db_->DeleteRecord(w, gist_, BtreeExtension::MakeKey(key),
                                  rids[i]));
      rids[i] = MustInsert(w, key);
    }
    ASSERT_OK(db_->Commit(w));
  }
  const size_t populated = mvcc->StoreSize();
  EXPECT_GT(populated, 0u);

  // Pruning with the snapshot still active must keep everything it can
  // observe: the scan stays byte-for-byte stable.
  mvcc->Prune();
  EXPECT_EQ(Scan(snap, 0, 100), (std::vector<int64_t>{1, 2, 3, 4}));
  ASSERT_OK(db_->Commit(snap));

  // Unpinned: everything is below the horizon, chains collapse entirely
  // (a missing record means "ancient", which answers correctly for all
  // committed history).
  const size_t pruned = mvcc->Prune();
  EXPECT_GT(pruned, 0u);
  EXPECT_EQ(mvcc->StoreSize(), 0u);
  for (const Rid& rid : rids) EXPECT_EQ(mvcc->ChainLength(rid.Pack()), 0u);
  EXPECT_GE(db_->metrics()->GetCounter("mvcc.versions_pruned")->value(),
            pruned);
}

TEST_F(MvccGcTest, LeafGcDefersToActiveSnapshots) {
  Transaction* setup = db_->Begin();
  const Rid rid = MustInsert(setup, 7);
  ASSERT_OK(db_->Commit(setup));

  Transaction* snap = db_->Begin(IsolationLevel::kSnapshot);
  EXPECT_EQ(Scan(snap, 0, 100), (std::vector<int64_t>{7}));

  Transaction* w = db_->Begin();
  ASSERT_OK(db_->DeleteRecord(w, gist_, BtreeExtension::MakeKey(7), rid));
  ASSERT_OK(db_->Commit(w));

  // The deleter terminated, so without MVCC this sweep would physically
  // remove the entry. The active snapshot still needs it.
  ASSERT_OK(db_->RunMaintenancePass());
  EXPECT_EQ(Scan(snap, 0, 100), (std::vector<int64_t>{7}));
  ASSERT_OK(db_->Commit(snap));

  // Snapshot gone: the next sweep reclaims it.
  const uint64_t removed_before = gist_->stats().gc_removed.load();
  ASSERT_OK(db_->RunMaintenancePass());
  EXPECT_GT(gist_->stats().gc_removed.load(), removed_before);
  Transaction* after = db_->Begin();
  EXPECT_TRUE(Scan(after, 0, 100).empty());
  ASSERT_OK(db_->Commit(after));
}

TEST_F(MvccGcTest, NodeRetirementDefersWhileSnapshotsActive) {
  MvccManager* mvcc = db_->mvcc();
  ASSERT_NE(mvcc, nullptr);
  EXPECT_TRUE(mvcc->CanRetireNodes());

  Transaction* snap = db_->Begin(IsolationLevel::kSnapshot);
  EXPECT_FALSE(mvcc->CanRetireNodes());
  EXPECT_GT(db_->metrics()->GetCounter("mvcc.node_retire_deferred")->value(),
            0u);
  ASSERT_OK(db_->Commit(snap));
  EXPECT_TRUE(mvcc->CanRetireNodes());
}

TEST_F(MvccGcTest, SavepointRollbackUnstampsVersions) {
  MvccManager* mvcc = db_->mvcc();
  ASSERT_NE(mvcc, nullptr);

  // Roll an insert back to a savepoint while the transaction stays alive;
  // its pending version must vanish rather than get stamped at commit.
  Transaction* txn = db_->Begin();
  const Rid keep = MustInsert(txn, 1);
  ASSERT_OK(db_->txns()->Savepoint(txn, "sp"));
  const Rid undone = MustInsert(txn, 2);
  ASSERT_OK(db_->txns()->RollbackToSavepoint(txn, "sp"));
  ASSERT_OK(db_->Commit(txn));

  EXPECT_EQ(mvcc->ChainLength(undone.Pack()), 0u);
  EXPECT_EQ(mvcc->ChainLength(keep.Pack()), 1u);

  Transaction* snap = db_->Begin(IsolationLevel::kSnapshot);
  EXPECT_EQ(Scan(snap, 0, 100), (std::vector<int64_t>{1}));
  ASSERT_OK(db_->Commit(snap));
}

// --- MvccManager race regressions (store-level, no database) ---------------

// A reader validates its page copy while the entry is live, then a
// concurrent writer delete-marks the only version record (stamp pending).
// The newest-undeleted scan finds nothing — visibility must still consult
// the newest record's insert stamp instead of defaulting to visible, or a
// snapshot sees an insert that committed after it began.
TEST(MvccVisibilityTest, PendingDeleteDoesNotExposeUncommittedInsert) {
  MvccManager mvcc;
  mvcc.AdvanceDurable(50);
  const Lsn snap = mvcc.BeginSnapshot(/*txn_id=*/100);
  ASSERT_EQ(snap, 50u);

  // Writer 2 inserts rid 7 and commits at LSN 80 (> snap).
  mvcc.NoteInsert(7, /*txn=*/2);
  mvcc.BeginStamping(2);
  mvcc.StampCommit(2, /*commit_lsn=*/80);
  // Writer 3 delete-marks it; its stamp is still pending.
  mvcc.NoteDelete(7, /*txn=*/3);

  EXPECT_FALSE(mvcc.Visible(7, kInvalidTxnId, snap));

  // A snapshot begun after the insert's commit durably landed sees the
  // entry despite the pending delete mark.
  mvcc.AdvanceDurable(90);
  const Lsn snap2 = mvcc.BeginSnapshot(/*txn_id=*/101);
  EXPECT_TRUE(mvcc.Visible(7, kInvalidTxnId, snap2));
}

// The flusher's durable fan-out must not publish a snapshot stamp covering
// a commit whose versions are still being stamped: AdvanceDurable drains
// stamping epochs opened before it (the group-commit batch may contain
// their Commit records even though the committing threads have not reached
// their own Flush call yet).
TEST(MvccStampingEpochTest, DurableFanOutWaitsForOpenEpochs) {
  MvccManager mvcc;
  mvcc.NoteInsert(9, /*txn=*/1);
  mvcc.BeginStamping(1);

  std::atomic<bool> advanced{false};
  std::thread flusher([&] {
    mvcc.AdvanceDurable(100);
    advanced.store(true);
  });
  // Give a broken implementation time to race past the open epoch.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(advanced.load());
  EXPECT_EQ(mvcc.SnapshotStamp(), kInvalidLsn);

  mvcc.StampCommit(1, /*commit_lsn=*/100);
  flusher.join();
  EXPECT_TRUE(advanced.load());
  EXPECT_EQ(mvcc.SnapshotStamp(), 100u);
  // The stamp a snapshot gets now covers a fully stamped version.
  EXPECT_TRUE(mvcc.Visible(9, kInvalidTxnId, mvcc.BeginSnapshot(100)));
}

TEST(MvccStampingEpochTest, CancelStampingReleasesTheFanOut) {
  MvccManager mvcc;
  mvcc.BeginStamping(1);
  std::thread flusher([&] { mvcc.AdvanceDurable(10); });
  mvcc.CancelStamping(1);  // append failed: no commit to wait for
  flusher.join();
  EXPECT_EQ(mvcc.SnapshotStamp(), 10u);
}

// Commits with no pending versions (read-only RR transactions, pure
// predicate work) still open and close an epoch; the fan-out must not hang
// on them.
TEST(MvccStampingEpochTest, StampCommitWithoutVersionsClosesTheEpoch) {
  MvccManager mvcc;
  mvcc.BeginStamping(4);
  mvcc.StampCommit(4, 20);
  mvcc.AdvanceDurable(20);  // would deadlock if the epoch stayed open
  EXPECT_EQ(mvcc.SnapshotStamp(), 20u);
}

}  // namespace
}  // namespace gistcr
