#include <gtest/gtest.h>

#include "access/btree_extension.h"
#include "access/rtree_extension.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace gistcr {
namespace {

// ---------------------------------------------------------------------
// B-tree extension
// ---------------------------------------------------------------------

class BtreeExtTest : public ::testing::Test {
 protected:
  BtreeExtension ext_;
};

TEST_F(BtreeExtTest, ConsistentIsIntervalOverlap) {
  const std::string a = BtreeExtension::MakeRange(10, 20);
  EXPECT_TRUE(ext_.Consistent(a, BtreeExtension::MakeRange(15, 30)));
  EXPECT_TRUE(ext_.Consistent(a, BtreeExtension::MakeRange(20, 25)));
  EXPECT_FALSE(ext_.Consistent(a, BtreeExtension::MakeRange(21, 25)));
  EXPECT_TRUE(ext_.Consistent(a, BtreeExtension::MakeKey(10)));
  EXPECT_FALSE(ext_.Consistent(a, BtreeExtension::MakeKey(9)));
}

TEST_F(BtreeExtTest, EmptyPredNeverConsistent) {
  EXPECT_FALSE(ext_.Consistent(Slice(), BtreeExtension::MakeKey(1)));
}

TEST_F(BtreeExtTest, PenaltyIsExpansionDistance) {
  const std::string bp = BtreeExtension::MakeRange(10, 20);
  EXPECT_EQ(ext_.Penalty(bp, BtreeExtension::MakeKey(15)), 0.0);
  EXPECT_EQ(ext_.Penalty(bp, BtreeExtension::MakeKey(25)), 5.0);
  EXPECT_EQ(ext_.Penalty(bp, BtreeExtension::MakeKey(2)), 8.0);
  EXPECT_GT(ext_.Penalty(Slice(), BtreeExtension::MakeKey(2)), 1e17);
}

TEST_F(BtreeExtTest, UnionAndContains) {
  const std::string a = BtreeExtension::MakeRange(5, 10);
  const std::string b = BtreeExtension::MakeRange(8, 30);
  const std::string u = ext_.Union(a, b);
  EXPECT_EQ(BtreeExtension::Lo(u), 5);
  EXPECT_EQ(BtreeExtension::Hi(u), 30);
  EXPECT_TRUE(ext_.Contains(u, a));
  EXPECT_TRUE(ext_.Contains(u, b));
  EXPECT_FALSE(ext_.Contains(a, u));
  EXPECT_EQ(ext_.Union(Slice(), a), a);
  EXPECT_EQ(ext_.Union(a, Slice()), a);
}

TEST_F(BtreeExtTest, PickSplitIsMedianCut) {
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 10; i++) {
    entries.push_back({BtreeExtension::MakeKey(i * 10), 0, kInvalidTxnId});
  }
  std::vector<bool> to_right;
  ext_.PickSplit(entries, &to_right);
  int right = 0;
  for (size_t i = 0; i < entries.size(); i++) {
    if (to_right[i]) {
      right++;
      // Everything on the right has keys >= everything on the left.
      EXPECT_GE(BtreeExtension::Lo(entries[i].key), 50);
    }
  }
  EXPECT_EQ(right, 5);
}

TEST_F(BtreeExtTest, UnionAllProperty) {
  Random rng(77);
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 50; i++) {
    entries.push_back({BtreeExtension::MakeKey(rng.UniformRange(-1000, 1000)),
                       0, kInvalidTxnId});
  }
  const std::string u = ext_.UnionAll(entries, Slice());
  for (const auto& e : entries) {
    EXPECT_TRUE(ext_.Contains(u, e.key));
  }
}

TEST_F(BtreeExtTest, DescribeReadable) {
  EXPECT_EQ(ext_.Describe(BtreeExtension::MakeRange(3, 9)), "[3,9]");
}

// Property sweep: Consistent must never produce a false negative compared
// with brute-force interval math.
class BtreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BtreePropertyTest, OverlapMatchesBruteForce) {
  BtreeExtension ext;
  Random rng(GetParam());
  for (int i = 0; i < 500; i++) {
    int64_t alo = rng.UniformRange(-100, 100);
    int64_t ahi = alo + rng.UniformRange(0, 50);
    int64_t blo = rng.UniformRange(-100, 100);
    int64_t bhi = blo + rng.UniformRange(0, 50);
    const bool expect = alo <= bhi && blo <= ahi;
    EXPECT_EQ(ext.Consistent(BtreeExtension::MakeRange(alo, ahi),
                             BtreeExtension::MakeRange(blo, bhi)),
              expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BtreePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------
// R-tree extension
// ---------------------------------------------------------------------

class RtreeExtTest : public ::testing::Test {
 protected:
  RtreeExtension ext_;
};

TEST_F(RtreeExtTest, RectEncodingRoundTrip) {
  Rect r{1.5, -2.25, 3.75, 4.0};
  Rect d = Rect::Decode(r.Encode());
  EXPECT_EQ(d.xlo, 1.5);
  EXPECT_EQ(d.ylo, -2.25);
  EXPECT_EQ(d.xhi, 3.75);
  EXPECT_EQ(d.yhi, 4.0);
}

TEST_F(RtreeExtTest, ConsistentIsOverlap) {
  const std::string a = Rect{0, 0, 10, 10}.Encode();
  EXPECT_TRUE(ext_.Consistent(a, Rect{5, 5, 15, 15}.Encode()));
  EXPECT_TRUE(ext_.Consistent(a, Rect{10, 10, 20, 20}.Encode()));  // touch
  EXPECT_FALSE(ext_.Consistent(a, Rect{11, 0, 20, 10}.Encode()));
  EXPECT_TRUE(ext_.Consistent(a, Rect::Point(3, 3).Encode()));
}

TEST_F(RtreeExtTest, PenaltyIsAreaEnlargement) {
  const std::string bp = Rect{0, 0, 10, 10}.Encode();
  EXPECT_EQ(ext_.Penalty(bp, Rect::Point(5, 5).Encode()), 0.0);
  // Extending to (20,10) doubles the area: +100.
  EXPECT_EQ(ext_.Penalty(bp, Rect::Point(20, 10).Encode()), 100.0);
}

TEST_F(RtreeExtTest, UnionIsBoundingBox) {
  const std::string u =
      ext_.Union(Rect{0, 0, 1, 1}.Encode(), Rect{5, -2, 6, 3}.Encode());
  Rect r = Rect::Decode(u);
  EXPECT_EQ(r.xlo, 0);
  EXPECT_EQ(r.ylo, -2);
  EXPECT_EQ(r.xhi, 6);
  EXPECT_EQ(r.yhi, 3);
}

TEST_F(RtreeExtTest, ContainsIsRectContainment) {
  const std::string big = Rect{0, 0, 10, 10}.Encode();
  EXPECT_TRUE(ext_.Contains(big, Rect{1, 1, 9, 9}.Encode()));
  EXPECT_FALSE(ext_.Contains(big, Rect{1, 1, 11, 9}.Encode()));
}

TEST_F(RtreeExtTest, QuadraticSplitRespectsMinFill) {
  Random rng(5);
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 40; i++) {
    const double x = rng.NextDouble() * 100;
    const double y = rng.NextDouble() * 100;
    entries.push_back({Rect::Point(x, y).Encode(), 0, kInvalidTxnId});
  }
  std::vector<bool> to_right;
  ext_.PickSplit(entries, &to_right);
  size_t right = 0;
  for (bool b : to_right) right += b ? 1 : 0;
  EXPECT_GE(right, entries.size() / 4);
  EXPECT_GE(entries.size() - right, entries.size() / 4);
}

TEST_F(RtreeExtTest, SplitSeparatesClusters) {
  // Two well separated clusters must not be mixed by a quadratic split.
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 10; i++) {
    entries.push_back(
        {Rect::Point(i * 0.1, i * 0.1).Encode(), 0, kInvalidTxnId});
  }
  for (int i = 0; i < 10; i++) {
    entries.push_back(
        {Rect::Point(1000 + i * 0.1, 1000 + i * 0.1).Encode(), 0,
         kInvalidTxnId});
  }
  std::vector<bool> to_right;
  ext_.PickSplit(entries, &to_right);
  // All of cluster 1 lands in one group, all of cluster 2 in the other.
  for (int i = 1; i < 10; i++) {
    EXPECT_EQ(to_right[i], to_right[0]);
    EXPECT_EQ(to_right[10 + i], to_right[10]);
  }
  EXPECT_NE(to_right[0], to_right[10]);
}

class RtreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RtreePropertyTest, UnionContainsBothOperands) {
  RtreeExtension ext;
  Random rng(GetParam());
  for (int i = 0; i < 300; i++) {
    Rect a{rng.NextDouble() * 100, rng.NextDouble() * 100, 0, 0};
    a.xhi = a.xlo + rng.NextDouble() * 20;
    a.yhi = a.ylo + rng.NextDouble() * 20;
    Rect b{rng.NextDouble() * 100, rng.NextDouble() * 100, 0, 0};
    b.xhi = b.xlo + rng.NextDouble() * 20;
    b.yhi = b.ylo + rng.NextDouble() * 20;
    const std::string u = ext.Union(a.Encode(), b.Encode());
    EXPECT_TRUE(ext.Contains(u, a.Encode()));
    EXPECT_TRUE(ext.Contains(u, b.Encode()));
    // Penalty of re-adding either side into the union is zero.
    EXPECT_EQ(ext.Penalty(u, a.Encode()), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtreePropertyTest,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace gistcr
