#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "tests/test_util.h"

namespace gistcr {
namespace {

class DiskManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("disk") + ".db";
    std::remove(path_.c_str());
    ASSERT_OK(disk_.Open(path_));
  }
  void TearDown() override {
    disk_.Close();
    std::remove(path_.c_str());
  }
  std::string path_;
  DiskManager disk_;
};

TEST_F(DiskManagerTest, WriteThenReadBack) {
  char out[kPageSize], in[kPageSize];
  std::memset(out, 0xAB, sizeof(out));
  ASSERT_OK(disk_.WritePage(3, out));
  ASSERT_OK(disk_.ReadPage(3, in));
  // WritePage stamps the CRC into the header's checksum field; everything
  // around it must round-trip byte-identically.
  EXPECT_EQ(std::memcmp(out, in, PageView::kChecksumOffset), 0);
  EXPECT_EQ(std::memcmp(out + PageView::kChecksumOffset + 4,
                        in + PageView::kChecksumOffset + 4,
                        kPageSize - PageView::kChecksumOffset - 4),
            0);
  EXPECT_EQ(PageView(in).checksum(), ComputePageChecksum(in));
}

TEST_F(DiskManagerTest, ReadPastEofIsZeroed) {
  char in[kPageSize];
  std::memset(in, 0xFF, sizeof(in));
  ASSERT_OK(disk_.ReadPage(99, in));
  for (size_t i = 0; i < kPageSize; i++) ASSERT_EQ(in[i], 0);
}

TEST_F(DiskManagerTest, PageCountTracksWrites) {
  EXPECT_EQ(disk_.PageCountOnDisk(), 0u);
  char buf[kPageSize] = {0};
  ASSERT_OK(disk_.WritePage(4, buf));
  EXPECT_EQ(disk_.PageCountOnDisk(), 5u);
}

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("pool") + ".db";
    std::remove(path_.c_str());
    ASSERT_OK(disk_.Open(path_));
  }
  void TearDown() override {
    pool_.reset();
    disk_.Close();
    std::remove(path_.c_str());
  }

  void MakePool(size_t frames, BufferPool::WalFlushFn fn = nullptr) {
    pool_ = std::make_unique<BufferPool>(&disk_, frames, std::move(fn));
  }

  std::string path_;
  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BufferPoolTest, FetchMissReadsFromDisk) {
  char buf[kPageSize];
  std::memset(buf, 0x5A, sizeof(buf));
  ASSERT_OK(disk_.WritePage(7, buf));
  MakePool(4);
  auto f = pool_->Fetch(7);
  ASSERT_OK(f.status());
  EXPECT_EQ(f.value()->data()[100], 0x5A);
  pool_->Unpin(f.value());
}

TEST_F(BufferPoolTest, DirtyPageSurvivesEviction) {
  MakePool(2);
  {
    auto f = pool_->NewPage(1);
    ASSERT_OK(f.status());
    f.value()->data()[100] = 'x';
    PageView(f.value()->data()).set_page_lsn(5);
    f.value()->MarkDirty(5);
    pool_->Unpin(f.value());
  }
  // Evict by touching two other pages.
  for (PageId p = 2; p <= 3; p++) {
    auto f = pool_->Fetch(p);
    ASSERT_OK(f.status());
    pool_->Unpin(f.value());
  }
  auto f = pool_->Fetch(1);
  ASSERT_OK(f.status());
  EXPECT_EQ(f.value()->data()[100], 'x');
  pool_->Unpin(f.value());
}

TEST_F(BufferPoolTest, WalRuleInvokedBeforeDirtyWriteback) {
  std::atomic<Lsn> flushed{0};
  MakePool(1, [&](Lsn lsn) {
    flushed = lsn;
    return Status::OK();
  });
  {
    auto f = pool_->NewPage(1);
    ASSERT_OK(f.status());
    PageView(f.value()->data()).set_page_lsn(42);
    f.value()->MarkDirty(42);
    pool_->Unpin(f.value());
  }
  auto f = pool_->Fetch(2);  // forces eviction of page 1
  ASSERT_OK(f.status());
  pool_->Unpin(f.value());
  EXPECT_EQ(flushed.load(), 42u);
}

TEST_F(BufferPoolTest, AllFramesPinnedYieldsNoSpace) {
  MakePool(2);
  auto a = pool_->Fetch(1);
  auto b = pool_->Fetch(2);
  ASSERT_OK(a.status());
  ASSERT_OK(b.status());
  auto c = pool_->Fetch(3);
  EXPECT_TRUE(c.status().IsNoSpace());
  pool_->Unpin(a.value());
  pool_->Unpin(b.value());
  auto d = pool_->Fetch(3);
  EXPECT_OK(d.status());
  pool_->Unpin(d.value());
}

TEST_F(BufferPoolTest, DirtyPageTableTracksRecLsn) {
  MakePool(4);
  auto f = pool_->NewPage(1);
  ASSERT_OK(f.status());
  f.value()->MarkDirty(100);
  f.value()->MarkDirty(90);   // earlier update wins as rec_lsn
  f.value()->MarkDirty(120);  // later does not raise it
  auto dpt = pool_->DirtyPageTable();
  ASSERT_EQ(dpt.size(), 1u);
  EXPECT_EQ(dpt[0].first, 1u);
  EXPECT_EQ(dpt[0].second, 90u);
  pool_->Unpin(f.value());
}

TEST_F(BufferPoolTest, FlushPageClearsDirty) {
  MakePool(4);
  {
    auto f = pool_->NewPage(1);
    ASSERT_OK(f.status());
    f.value()->data()[10] = 'q';
    f.value()->MarkDirty(7);
    pool_->Unpin(f.value());
  }
  ASSERT_OK(pool_->FlushPage(1));
  EXPECT_TRUE(pool_->DirtyPageTable().empty());
  char buf[kPageSize];
  ASSERT_OK(disk_.ReadPage(1, buf));
  EXPECT_EQ(buf[10], 'q');
}

TEST_F(BufferPoolTest, DiscardAllLosesUnflushedChanges) {
  MakePool(4);
  {
    auto f = pool_->NewPage(1);
    ASSERT_OK(f.status());
    f.value()->data()[10] = 'q';
    f.value()->MarkDirty(7);
    pool_->Unpin(f.value());
  }
  pool_->DiscardAll();
  EXPECT_EQ(pool_->ResidentCount(), 0u);
  auto f = pool_->Fetch(1);
  ASSERT_OK(f.status());
  EXPECT_EQ(f.value()->data()[10], 0);  // never reached disk
  pool_->Unpin(f.value());
}

TEST_F(BufferPoolTest, ConcurrentFetchersShareFrame) {
  MakePool(8);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; i++) {
        auto f = pool_->Fetch(static_cast<PageId>(i % 4));
        if (!f.ok()) {
          failures++;
          continue;
        }
        {
          SharedLock l(f.value()->latch());
        }
        pool_->Unpin(f.value());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(pool_->ResidentCount(), 8u);
}

}  // namespace
}  // namespace gistcr
