#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "access/btree_extension.h"
#include "tests/test_util.h"

namespace gistcr {
namespace {

/// The drain technique of paper section 7.2: a node may only be retired
/// when no traversal holds a direct or indirect pointer to it, tracked by
/// S-mode signaling locks and checked with a try-X lock.
class NodeDeletionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("nodedel");
    RemoveDbFiles(path_);
    DatabaseOptions opts;
    opts.path = path_;
    opts.buffer_pool_pages = 512;
    auto db_or = Database::Create(opts);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    GistOptions gopts;
    gopts.max_entries = 8;
    ASSERT_OK(db_->CreateIndex(1, &ext_, gopts));
    gist_ = db_->GetIndex(1).value();
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }

  /// Insert keys 0..n-1, then delete them all (committed).
  void FillAndDeleteAll(int64_t n) {
    Transaction* t1 = db_->Begin();
    std::vector<Rid> rids;
    for (int64_t k = 0; k < n; k++) {
      auto rid =
          db_->InsertRecord(t1, gist_, BtreeExtension::MakeKey(k), "v");
      ASSERT_OK(rid.status());
      rids.push_back(rid.value());
    }
    ASSERT_OK(db_->Commit(t1));
    Transaction* t2 = db_->Begin();
    for (int64_t k = 0; k < n; k++) {
      ASSERT_OK(db_->DeleteRecord(t2, gist_, BtreeExtension::MakeKey(k),
                                  rids[static_cast<size_t>(k)]));
    }
    ASSERT_OK(db_->Commit(t2));
  }

  std::string path_;
  std::unique_ptr<Database> db_;
  BtreeExtension ext_;
  Gist* gist_ = nullptr;
};

TEST_F(NodeDeletionTest, EmptyNodesRetiredAndPagesReused) {
  FillAndDeleteAll(200);
  Transaction* txn = db_->Begin();
  uint64_t removed = 0, deleted = 0, removed2 = 0, deleted2 = 0;
  ASSERT_OK(gist_->GarbageCollect(txn, &removed, &deleted));
  ASSERT_OK(gist_->GarbageCollect(txn, &removed2, &deleted2));
  ASSERT_OK(db_->Commit(txn));
  EXPECT_EQ(removed, 200u);
  const uint64_t total_deleted = deleted + deleted2;
  EXPECT_GT(total_deleted, 5u);
  ASSERT_OK(gist_->CheckInvariants());

  // Freed pages are reallocated by later splits.
  Transaction* t3 = db_->Begin();
  for (int64_t k = 0; k < 200; k++) {
    ASSERT_OK(db_->InsertRecord(t3, gist_, BtreeExtension::MakeKey(k), "v")
                  .status());
  }
  ASSERT_OK(db_->Commit(t3));
  ASSERT_OK(gist_->CheckInvariants());
}

TEST_F(NodeDeletionTest, SignalingLockDefersDeletion) {
  FillAndDeleteAll(200);

  // A searcher pauses mid-traversal, holding signaling locks on every
  // stacked (yet-to-be-visited) node pointer.
  std::mutex mu;
  std::condition_variable cv;
  bool paused = false, resume = false;
  std::atomic<bool> hook_armed{true};
  std::atomic<int> visits{0};
  // Pause deep into the depth-first traversal: by the fifth visit a
  // leaf-level parent has been processed, so several *leaf* pointers sit
  // on the searcher's stack, each protected by an S-mode signaling lock.
  gist_->test_hooks().before_visit_node = [&](PageId) {
    if (!hook_armed.load()) return;
    if (visits.fetch_add(1) != 4) return;
    std::unique_lock<std::mutex> l(mu);
    paused = true;
    cv.notify_all();
    cv.wait(l, [&] { return resume; });
  };

  std::thread searcher([&] {
    Transaction* txn = db_->Begin(IsolationLevel::kReadCommitted);
    std::vector<SearchResult> results;
    ASSERT_OK(gist_->Search(txn, BtreeExtension::MakeRange(0, 200),
                            &results));
    EXPECT_TRUE(results.empty());
    ASSERT_OK(db_->Commit(txn));
  });
  {
    std::unique_lock<std::mutex> l(mu);
    cv.wait(l, [&] { return paused; });
  }
  hook_armed = false;

  // GC while the searcher holds its stack: leaf entries can be collected,
  // but nodes the searcher points to must not be retired. The searcher's
  // first pending pointer is the root, whose children are all stack
  // candidates; deletion of at least those is deferred.
  Transaction* t1 = db_->Begin();
  uint64_t removed = 0, deleted_during = 0;
  ASSERT_OK(gist_->GarbageCollect(t1, &removed, &deleted_during));
  ASSERT_OK(db_->Commit(t1));
  EXPECT_EQ(removed, 200u);

  // Resume the searcher; it drains its stack and releases the locks.
  {
    std::lock_guard<std::mutex> l(mu);
    resume = true;
    cv.notify_all();
  }
  searcher.join();
  gist_->test_hooks().before_visit_node = nullptr;

  Transaction* t2 = db_->Begin();
  uint64_t removed2 = 0, deleted_after = 0, r3 = 0, d3 = 0;
  ASSERT_OK(gist_->GarbageCollect(t2, &removed2, &deleted_after));
  ASSERT_OK(gist_->GarbageCollect(t2, &r3, &d3));
  ASSERT_OK(db_->Commit(t2));
  // The nodes whose deletion the signaling locks deferred become
  // retirable only after the searcher drained its stack.
  EXPECT_GT(deleted_after + d3, 0u);
  ASSERT_OK(gist_->CheckInvariants());
}

TEST_F(NodeDeletionTest, RootNeverDeleted) {
  FillAndDeleteAll(8);  // single-leaf tree, root is that leaf
  Transaction* txn = db_->Begin();
  uint64_t removed = 0, deleted = 0;
  ASSERT_OK(gist_->GarbageCollect(txn, &removed, &deleted));
  ASSERT_OK(db_->Commit(txn));
  EXPECT_EQ(removed, 8u);
  EXPECT_EQ(deleted, 0u);
  // Root still present and usable.
  Transaction* t2 = db_->Begin();
  ASSERT_OK(db_->InsertRecord(t2, gist_, BtreeExtension::MakeKey(1), "v")
                .status());
  ASSERT_OK(db_->Commit(t2));
  ASSERT_OK(gist_->CheckInvariants());
}

TEST_F(NodeDeletionTest, ActiveDeleterMarksBlockGc) {
  // Entries marked by a still-active transaction are not collectible.
  Transaction* t1 = db_->Begin();
  std::vector<Rid> rids;
  for (int64_t k = 0; k < 20; k++) {
    auto rid = db_->InsertRecord(t1, gist_, BtreeExtension::MakeKey(k), "v");
    ASSERT_OK(rid.status());
    rids.push_back(rid.value());
  }
  ASSERT_OK(db_->Commit(t1));
  Transaction* deleter = db_->Begin();
  for (int64_t k = 0; k < 20; k++) {
    ASSERT_OK(db_->DeleteRecord(deleter, gist_, BtreeExtension::MakeKey(k),
                                rids[static_cast<size_t>(k)]));
  }
  Transaction* gc_txn = db_->Begin();
  uint64_t removed = 0, deleted = 0;
  ASSERT_OK(gist_->GarbageCollect(gc_txn, &removed, &deleted));
  EXPECT_EQ(removed, 0u);  // deleter still active
  ASSERT_OK(db_->Commit(deleter));
  uint64_t removed2 = 0;
  ASSERT_OK(gist_->GarbageCollect(gc_txn, &removed2, &deleted));
  ASSERT_OK(db_->Commit(gc_txn));
  EXPECT_EQ(removed2, 20u);
}

}  // namespace
}  // namespace gistcr
