#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "access/btree_extension.h"
#include "obs/trace.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace gistcr {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUpDb(ConcurrencyProtocol protocol, uint16_t max_entries = 16) {
    path_ = TestPath("db");
    RemoveDbFiles(path_);
    DatabaseOptions opts;
    opts.path = path_;
    opts.buffer_pool_pages = 2048;
    auto db_or = Database::Create(opts);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    GistOptions gopts;
    gopts.protocol = protocol;
    gopts.max_entries = max_entries;
    ASSERT_OK(db_->CreateIndex(1, &ext_, gopts));
    gist_ = db_->GetIndex(1).value();
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }

  /// Runs \p fn in a retry loop, beginning a fresh transaction each time;
  /// deadlock victims retry (standard application behaviour).
  void WithTxnRetry(IsolationLevel iso,
                    const std::function<Status(Transaction*)>& fn) {
    for (int attempt = 0; attempt < 100; attempt++) {
      Transaction* txn = db_->Begin(iso);
      Status st = fn(txn);
      if (st.ok()) {
        st = db_->Commit(txn);
        if (st.ok()) return;
        continue;
      }
      (void)db_->Abort(txn);
      if (st.IsDeadlock() || st.IsBusy()) continue;
      FAIL() << "operation failed: " << st.ToString();
      return;
    }
    FAIL() << "retries exhausted";
  }

  std::string path_;
  std::unique_ptr<Database> db_;
  BtreeExtension ext_;
  Gist* gist_ = nullptr;
};

TEST_F(ConcurrencyTest, ParallelDisjointInsertsAllFound) {
  SetUpDb(ConcurrencyProtocol::kLink);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        const int64_t key = static_cast<int64_t>(t) * 100000 + i;
        WithTxnRetry(IsolationLevel::kReadCommitted, [&](Transaction* txn) {
          return db_
              ->InsertRecord(txn, gist_, BtreeExtension::MakeKey(key), "v")
              .status();
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_OK(gist_->CheckInvariants());
  Transaction* txn = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(gist_->Search(
      txn, BtreeExtension::MakeRange(0, kThreads * 100000), &results));
  EXPECT_EQ(results.size(), static_cast<size_t>(kThreads * kPerThread));
  ASSERT_OK(db_->Commit(txn));
  EXPECT_GT(gist_->stats().splits.load(), 0u);
}

// End-to-end observability: a concurrent insert+scan workload must leave
// its footprint in the database's metrics registry, and the trace export
// must produce a chrome://tracing-loadable file.
TEST_F(ConcurrencyTest, MetricsAndTraceCaptureConcurrentWorkload) {
  SetUpDb(ConcurrencyProtocol::kLink, 8);
  obs::Tracer::Global().Clear();
  constexpr int kThreads = 4;
  constexpr int kKeysPerRound = 800;
  obs::MetricsRegistry* reg = db_->metrics();
  // Interleaved keys from a shared counter keep all threads splitting the
  // same leaves; a handful of rounds reliably produces at least one
  // traversal that races a split and follows the rightlink.
  std::atomic<int64_t> next_key{0};
  for (int round = 0; round < 5; round++) {
    const int64_t limit = next_key.load() + kKeysPerRound;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
      threads.emplace_back([&, t] {
        Random rng(static_cast<uint64_t>(t) * 131 + 7);
        for (;;) {
          const int64_t key = next_key.fetch_add(1);
          if (key >= limit) return;
          WithTxnRetry(IsolationLevel::kReadCommitted,
                       [&](Transaction* txn) {
                         return db_
                             ->InsertRecord(txn, gist_,
                                            BtreeExtension::MakeKey(key), "v")
                             .status();
                       });
          if (key % 8 == 0) {
            const int64_t lo = rng.UniformRange(0, limit);
            WithTxnRetry(IsolationLevel::kReadCommitted,
                         [&](Transaction* txn) {
                           std::vector<SearchResult> results;
                           return gist_->Search(
                               txn, BtreeExtension::MakeRange(lo, lo + 50),
                               &results);
                         });
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    if (reg->GetCounter("gist.rightlink_follows")->value() > 0) break;
  }

  // GistStats now lives in the registry: both views see the same numbers.
  EXPECT_EQ(reg->GetCounter("gist.splits")->value(),
            gist_->stats().splits.load());
  EXPECT_GT(reg->GetCounter("gist.inserts")->value(),
            static_cast<uint64_t>(kKeysPerRound) - 1);
  EXPECT_GT(reg->GetCounter("gist.splits")->value(), 0u);
  // With 4 threads splitting 8-entry nodes, some traversal must have hit a
  // concurrent split and compensated via the rightlink.
  EXPECT_GT(reg->GetCounter("gist.rightlink_follows")->value(), 0u);
  // Every Fetch in the tree path records its latch acquisition.
  EXPECT_GT(reg->GetHistogram("gist.latch_wait_ns")->GetSnapshot().count, 0u);
  EXPECT_GT(reg->GetCounter("bp.hits")->value(), 0u);
  EXPECT_GT(reg->GetCounter("wal.appends")->value(), 0u);
  EXPECT_GT(reg->GetCounter("txn.commits")->value(), 0u);
  // Thousands of commit-path flushes spread over several powers of two.
  EXPECT_GE(reg->GetHistogram("wal.fsync_ns")->GetSnapshot().PopulatedBuckets(),
            3u);

  const std::string text = db_->DumpMetrics();
  EXPECT_NE(text.find("gist.rightlink_follows"), std::string::npos);
  EXPECT_NE(text.find("bp.hits"), std::string::npos);
  EXPECT_NE(text.find("wal.fsync_ns"), std::string::npos);
  const std::string json = db_->DumpMetrics(/*as_json=*/true);
  EXPECT_NE(json.find("\"gist.splits\""), std::string::npos);
  EXPECT_NE(json.find("\"bp.hit_rate\""), std::string::npos);

  const std::string trace_path = path_ + ".trace.json";
  ASSERT_OK(db_->ExportTrace(trace_path));
  std::string trace;
  {
    FILE* f = std::fopen(trace_path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) trace.append(buf, n);
    std::fclose(f);
  }
  std::remove(trace_path.c_str());
  EXPECT_EQ(trace.front(), '[');
#ifdef GISTCR_TRACING
  // With tracing compiled in, the workload's scopes must be present.
  EXPECT_NE(trace.find("\"name\":\"gist.search\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"txn.commit\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
#endif
}

TEST_F(ConcurrencyTest, ConcurrentOverlappingInsertsNoLostKeys) {
  SetUpDb(ConcurrencyProtocol::kLink, 8);
  constexpr int kThreads = 6;
  constexpr int kKeys = 600;
  std::atomic<int> next{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (;;) {
        const int k = next.fetch_add(1);
        if (k >= kKeys) return;
        WithTxnRetry(IsolationLevel::kReadCommitted, [&](Transaction* txn) {
          return db_
              ->InsertRecord(txn, gist_, BtreeExtension::MakeKey(k), "v")
              .status();
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_OK(gist_->CheckInvariants());
  Transaction* txn = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(
      gist_->Search(txn, BtreeExtension::MakeRange(0, kKeys), &results));
  std::set<int64_t> found;
  for (const auto& r : results) found.insert(BtreeExtension::Lo(r.key));
  EXPECT_EQ(found.size(), static_cast<size_t>(kKeys));
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(ConcurrencyTest, ReadersRunConcurrentlyWithWriters) {
  SetUpDb(ConcurrencyProtocol::kLink, 16);
  // Preload.
  {
    Transaction* txn = db_->Begin();
    for (int64_t k = 0; k < 500; k++) {
      ASSERT_OK(
          db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(k), "v")
              .status());
    }
    ASSERT_OK(db_->Commit(txn));
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; t++) {
    readers.emplace_back([&, t] {
      Random rng(static_cast<uint64_t>(t) + 1);
      while (!stop.load()) {
        const int64_t lo = rng.UniformRange(0, 400);
        WithTxnRetry(IsolationLevel::kReadCommitted, [&](Transaction* txn) {
          std::vector<SearchResult> results;
          Status st = gist_->Search(
              txn, BtreeExtension::MakeRange(lo, lo + 50), &results);
          if (st.ok()) reads++;
          return st;
        });
      }
    });
  }
  for (int64_t k = 500; k < 900; k++) {
    WithTxnRetry(IsolationLevel::kReadCommitted, [&](Transaction* txn) {
      return db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(k), "v")
          .status();
    });
  }
  stop = true;
  for (auto& th : readers) th.join();
  EXPECT_GT(reads.load(), 0u);
  ASSERT_OK(gist_->CheckInvariants());
}

TEST_F(ConcurrencyTest, MixedInsertDeleteSearchStress) {
  SetUpDb(ConcurrencyProtocol::kLink, 12);
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 150;
  std::mutex live_mu;
  std::map<int64_t, Rid> live;  // committed live keys

  // Preload 200 keys.
  {
    Transaction* txn = db_->Begin();
    for (int64_t k = 0; k < 200; k++) {
      auto rid =
          db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(k), "v");
      ASSERT_OK(rid.status());
      live[k] = rid.value();
    }
    ASSERT_OK(db_->Commit(txn));
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Random rng(static_cast<uint64_t>(t) * 31 + 7);
      for (int i = 0; i < kOpsPerThread; i++) {
        const uint64_t dice = rng.Uniform(10);
        if (dice < 5) {
          // Insert a fresh key.
          const int64_t k = 1000 + static_cast<int64_t>(t) * 100000 +
                            static_cast<int64_t>(rng.Uniform(1000000));
          Rid rid;
          bool inserted = false;
          WithTxnRetry(IsolationLevel::kReadCommitted, [&](Transaction* txn) {
            auto r = db_->InsertRecord(txn, gist_,
                                       BtreeExtension::MakeKey(k), "v");
            if (r.ok()) {
              rid = r.value();
              inserted = true;
            }
            return r.status();
          });
          if (inserted) {
            std::lock_guard<std::mutex> l(live_mu);
            live[k] = rid;
          }
        } else if (dice < 7) {
          // Delete a random live key.
          int64_t k = 0;
          Rid rid;
          bool have = false;
          {
            std::lock_guard<std::mutex> l(live_mu);
            if (!live.empty()) {
              auto it = live.lower_bound(
                  static_cast<int64_t>(rng.Uniform(1000000)));
              if (it == live.end()) it = live.begin();
              k = it->first;
              rid = it->second;
              live.erase(it);
              have = true;
            }
          }
          if (have) {
            WithTxnRetry(IsolationLevel::kReadCommitted,
                         [&](Transaction* txn) {
                           Status st = db_->DeleteRecord(
                               txn, gist_, BtreeExtension::MakeKey(k), rid);
                           if (st.IsNotFound()) return Status::OK();
                           return st;
                         });
          }
        } else {
          const int64_t lo = static_cast<int64_t>(rng.Uniform(1000));
          WithTxnRetry(IsolationLevel::kReadCommitted,
                       [&](Transaction* txn) {
                         std::vector<SearchResult> results;
                         return gist_->Search(
                             txn, BtreeExtension::MakeRange(lo, lo + 100),
                             &results);
                       });
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_OK(gist_->CheckInvariants());

  // Every committed-live key is findable; no committed-deleted key is.
  Transaction* txn = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(gist_->Search(
      txn, BtreeExtension::MakeRange(INT64_MIN / 2, INT64_MAX / 2),
      &results));
  std::set<int64_t> found;
  for (const auto& r : results) found.insert(BtreeExtension::Lo(r.key));
  ASSERT_OK(db_->Commit(txn));
  std::lock_guard<std::mutex> l(live_mu);
  EXPECT_EQ(found.size(), live.size());
  for (const auto& [k, rid] : live) {
    (void)rid;
    EXPECT_TRUE(found.count(k)) << "lost key " << k;
  }
}

TEST_F(ConcurrencyTest, CoarseProtocolProducesSameResults) {
  SetUpDb(ConcurrencyProtocol::kCoarse, 8);
  constexpr int kThreads = 4;
  constexpr int kKeys = 300;
  std::atomic<int> next{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (;;) {
        const int k = next.fetch_add(1);
        if (k >= kKeys) return;
        WithTxnRetry(IsolationLevel::kReadCommitted, [&](Transaction* txn) {
          return db_
              ->InsertRecord(txn, gist_, BtreeExtension::MakeKey(k), "v")
              .status();
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_OK(gist_->CheckInvariants());
  Transaction* txn = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(
      gist_->Search(txn, BtreeExtension::MakeRange(0, kKeys), &results));
  EXPECT_EQ(results.size(), static_cast<size_t>(kKeys));
  ASSERT_OK(db_->Commit(txn));
}

// Optimistic reads racing structure modifications (DESIGN.md section 13):
// read-committed scans over a stable committed prefix must return exactly
// that prefix — no torn entries, no duplicates, no lost keys — while
// writers split nodes and delete volatile keys underneath them, and the
// version-validation restart rate must stay under a fixed per-search
// bound.
TEST_F(ConcurrencyTest, OptimisticReadExactResultsRacingSMOs) {
  SetUpDb(ConcurrencyProtocol::kLink, 6);
  constexpr int64_t kStable = 300;    // keys [0, kStable) are never touched
  constexpr int64_t kVolatile = 400;  // keys [kStable, kStable+kVolatile)
  {
    Transaction* txn = db_->Begin();
    for (int64_t k = 0; k < kStable; k++) {
      ASSERT_OK(db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(k), "v")
                    .status());
    }
    ASSERT_OK(db_->Commit(txn));
  }

  std::atomic<bool> stop{false};
  // Writer: inserts then deletes volatile keys adjacent to the stable
  // prefix, keeping the leaves that border it splitting and shrinking.
  std::thread writer([&] {
    std::vector<std::pair<int64_t, Rid>> rids;
    while (!stop.load()) {
      rids.clear();
      for (int64_t k = kStable; k < kStable + kVolatile && !stop.load();
           k += 40) {
        WithTxnRetry(IsolationLevel::kReadCommitted, [&](Transaction* txn) {
          for (int64_t o = 0; o < 40; o++) {
            auto rid = db_->InsertRecord(txn, gist_,
                                         BtreeExtension::MakeKey(k + o), "v");
            if (!rid.ok()) return rid.status();
            rids.emplace_back(k + o, rid.value());
          }
          return Status::OK();
        });
      }
      for (auto& [k, rid] : rids) {
        if (stop.load()) break;
        WithTxnRetry(IsolationLevel::kReadCommitted, [&](Transaction* txn) {
          Status st = db_->DeleteRecord(txn, gist_,
                                        BtreeExtension::MakeKey(k), rid);
          if (st.IsNotFound()) return Status::OK();
          return st;
        });
      }
    }
  });

  constexpr int kReaders = 3;
  constexpr int kSearchesPerReader = 250;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; r++) {
    readers.emplace_back([&, r] {
      Random rng(static_cast<uint64_t>(r) * 53 + 11);
      for (int i = 0; i < kSearchesPerReader; i++) {
        const int64_t lo = rng.UniformRange(0, kStable - 30);
        const int64_t hi = lo + 29;
        std::vector<SearchResult> results;
        WithTxnRetry(IsolationLevel::kReadCommitted, [&](Transaction* txn) {
          results.clear();
          return gist_->Search(txn, BtreeExtension::MakeRange(lo, hi),
                               &results);
        });
        std::set<int64_t> got;
        for (const auto& res : results) {
          const int64_t k = BtreeExtension::Lo(res.key);
          ASSERT_GE(k, lo) << "torn/foreign key " << k;
          ASSERT_LE(k, hi) << "torn/foreign key " << k;
          ASSERT_TRUE(got.insert(k).second) << "duplicate key " << k;
        }
        ASSERT_EQ(got.size(), 30u)
            << "lost stable keys in [" << lo << "," << hi << "]";
      }
    });
  }
  for (auto& th : readers) th.join();
  stop = true;
  writer.join();

  ASSERT_OK(gist_->CheckInvariants());
  EXPECT_GT(gist_->stats().splits.load(), 0u);
  EXPECT_GT(gist_->stats().optimistic_visits.load(), 0u);
  constexpr uint64_t kTotalSearches = kReaders * kSearchesPerReader;
  EXPECT_LE(gist_->stats().read_restarts.load(), 2 * kTotalSearches)
      << "optimistic restarts exceed the per-search bound";
}

// ---------------------------------------------------------------------
// Figure 1 / Figure 2: the lost-key anomaly and its link-protocol fix,
// reproduced deterministically.
// ---------------------------------------------------------------------

class Figure1Test : public ConcurrencyTest,
                    public ::testing::WithParamInterface<ConcurrencyProtocol> {
};

TEST_P(Figure1Test, SearchRacingWithSplit) {
  SetUpDb(GetParam(), /*max_entries=*/4);
  // Build a full root leaf: [900, 910, 920, 1000].
  {
    Transaction* txn = db_->Begin();
    for (int64_t k : {1000, 900, 910, 920}) {
      ASSERT_OK(
          db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(k), "v")
              .status());
    }
    ASSERT_OK(db_->Commit(txn));
  }

  std::mutex mu;
  std::condition_variable cv;
  bool searcher_paused = false;
  bool split_done = false;

  // The searcher memorizes the global counter and the root pointer, then
  // pauses before visiting the root — exactly the Figure 1 window.
  gist_->test_hooks().after_root_push = [&] {
    std::unique_lock<std::mutex> l(mu);
    searcher_paused = true;
    cv.notify_all();
    cv.wait(l, [&] { return split_done; });
  };

  std::vector<SearchResult> results;
  Status search_status;
  std::thread searcher([&] {
    Transaction* txn = db_->Begin(IsolationLevel::kReadCommitted);
    search_status =
        gist_->Search(txn, BtreeExtension::MakeRange(1000, 1000), &results);
    ASSERT_OK(db_->Commit(txn));
  });

  {
    std::unique_lock<std::mutex> l(mu);
    cv.wait(l, [&] { return searcher_paused; });
  }
  // Disable the hook for the splitting insert's own operations.
  gist_->test_hooks().after_root_push = nullptr;

  // Insert 930: the root leaf is full, so it splits; keys {920, 1000}
  // move to the right sibling (median cut), i.e. key 1000 migrates.
  {
    Transaction* txn = db_->Begin(IsolationLevel::kReadCommitted);
    ASSERT_OK(
        db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(930), "v")
            .status());
    ASSERT_OK(db_->Commit(txn));
  }
  EXPECT_GT(gist_->stats().splits.load() + gist_->stats().root_grows.load(),
            0u);

  {
    std::lock_guard<std::mutex> l(mu);
    split_done = true;
    cv.notify_all();
  }
  searcher.join();
  ASSERT_OK(search_status);

  if (GetParam() == ConcurrencyProtocol::kUnsafeNoLink) {
    // The anomaly: the committed key 1000 is missed (Figure 1).
    EXPECT_TRUE(results.empty())
        << "expected the lost-key anomaly without the link protocol";
  } else {
    // The link protocol compensates via NSN + rightlink (Figure 2).
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(BtreeExtension::Lo(results[0].key), 1000);
    EXPECT_GT(gist_->stats().rightlink_follows.load(), 0u);
  }
}

// kCoarse is excluded: its tree-wide latch makes the interleaving window
// unobtainable by construction (the paused searcher would hold the latch
// and the splitting insert could never run — serialization, not
// compensation, is how the baseline avoids the anomaly).
INSTANTIATE_TEST_SUITE_P(Protocols, Figure1Test,
                         ::testing::Values(ConcurrencyProtocol::kLink,
                                           ConcurrencyProtocol::kUnsafeNoLink));

}  // namespace
}  // namespace gistcr
