// Prometheus text-exposition tests (ISSUE 6 satellite): metric-name
// sanitization, label escaping, and a structural validation of
// MetricsRegistry::DumpPrometheus — every sample line must parse, every
// histogram's `le` buckets must be cumulative and end in `+Inf` equal to
// `_count`, and `# TYPE` lines must precede their series.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace gistcr {
namespace obs {
namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto ok_first = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  };
  auto ok_rest = [&](char c) {
    return ok_first(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!ok_first(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!ok_rest(c)) return false;
  }
  return true;
}

TEST(PrometheusNameTest, SanitizeProducesValidNames) {
  EXPECT_EQ(PrometheusSanitizeName("bp.io_read_ns"), "gistcr_bp_io_read_ns");
  EXPECT_EQ(PrometheusSanitizeName("server.latency.search"),
            "gistcr_server_latency_search");
  EXPECT_EQ(PrometheusSanitizeName("rpc.stage.walwait"),
            "gistcr_rpc_stage_walwait");
  // Hostile names still come out valid.
  const char* hostile[] = {"9lives", "a-b", "a b", "per/s", "", "äöü",
                           "x..y", "{quantile}"};
  for (const char* n : hostile) {
    const std::string s = PrometheusSanitizeName(n);
    EXPECT_TRUE(ValidMetricName(s)) << "'" << n << "' -> '" << s << "'";
  }
}

TEST(PrometheusNameTest, EscapeLabelHandlesSpecials) {
  EXPECT_EQ(PrometheusEscapeLabel("plain"), "plain");
  EXPECT_EQ(PrometheusEscapeLabel("a\"b"), "a\\\"b");
  EXPECT_EQ(PrometheusEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeLabel("a\nb"), "a\\nb");
}

// Minimal exposition-format parser: returns false (with a message) on any
// structurally invalid line. Collects histogram bucket series.
struct Sample {
  std::string name;
  std::string le;  ///< value of the `le` label, if present
  double value = 0;
};

bool ParseExposition(const std::string& text, std::vector<Sample>* samples,
                     std::map<std::string, std::string>* types,
                     std::string* err) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, name, type;
      ls >> hash >> kind >> name >> type;
      if (kind == "TYPE") {
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          *err = "bad TYPE: " + line;
          return false;
        }
        (*types)[name] = type;
      }
      continue;
    }
    // <name>[{labels}] <value>
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) {
      *err = "no value: " + line;
      return false;
    }
    Sample s;
    s.name = line.substr(0, name_end);
    if (!ValidMetricName(s.name)) {
      *err = "invalid name: " + s.name;
      return false;
    }
    size_t value_start = name_end;
    if (line[name_end] == '{') {
      const size_t close = line.find('}', name_end);
      if (close == std::string::npos) {
        *err = "unclosed labels: " + line;
        return false;
      }
      const std::string labels =
          line.substr(name_end + 1, close - name_end - 1);
      const size_t le = labels.find("le=\"");
      if (le != std::string::npos) {
        const size_t end = labels.find('"', le + 4);
        if (end == std::string::npos) {
          *err = "bad le label: " + line;
          return false;
        }
        s.le = labels.substr(le + 4, end - le - 4);
      }
      value_start = close + 1;
    }
    const std::string value_str = line.substr(value_start);
    char* endp = nullptr;
    s.value = std::strtod(value_str.c_str(), &endp);
    if (endp == value_str.c_str()) {
      *err = "unparseable value: " + line;
      return false;
    }
    samples->push_back(std::move(s));
  }
  return true;
}

TEST(PrometheusDumpTest, OutputParsesAndBucketsAreCumulative) {
  MetricsRegistry reg;
  reg.GetCounter("test.ops")->Add(41);
  reg.GetGauge("test.rate")->Set(0.25);
  Histogram* h = reg.GetHistogram("test.lat_ns");
  for (uint64_t v = 1; v <= 1000; v++) h->Record(v);
  h->Record(0);

  std::string out;
  reg.DumpPrometheus(&out);

  std::vector<Sample> samples;
  std::map<std::string, std::string> types;
  std::string err;
  ASSERT_TRUE(ParseExposition(out, &samples, &types, &err)) << err;

  EXPECT_EQ(types["gistcr_test_ops"], "counter");
  EXPECT_EQ(types["gistcr_test_rate"], "gauge");
  EXPECT_EQ(types["gistcr_test_lat_ns"], "histogram");

  double count = -1, sum = -1, inf = -1;
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
  for (const auto& s : samples) {
    if (s.name == "gistcr_test_ops") {
      EXPECT_DOUBLE_EQ(s.value, 41.0);
    }
    if (s.name == "gistcr_test_rate") {
      EXPECT_DOUBLE_EQ(s.value, 0.25);
    }
    if (s.name == "gistcr_test_lat_ns_count") count = s.value;
    if (s.name == "gistcr_test_lat_ns_sum") sum = s.value;
    if (s.name == "gistcr_test_lat_ns_bucket") {
      ASSERT_FALSE(s.le.empty()) << "bucket sample without le label";
      if (s.le == "+Inf") {
        inf = s.value;
      } else {
        char* endp = nullptr;
        const double bound = std::strtod(s.le.c_str(), &endp);
        ASSERT_NE(endp, s.le.c_str()) << "non-numeric le: " << s.le;
        buckets.emplace_back(bound, s.value);
      }
    }
  }
  EXPECT_DOUBLE_EQ(count, 1001.0);
  EXPECT_DOUBLE_EQ(sum, 500500.0);
  EXPECT_DOUBLE_EQ(inf, count) << "+Inf bucket must equal _count";
  ASSERT_FALSE(buckets.empty());
  // Bounds strictly increasing, cumulative counts non-decreasing.
  for (size_t i = 1; i < buckets.size(); i++) {
    EXPECT_LT(buckets[i - 1].first, buckets[i].first);
    EXPECT_LE(buckets[i - 1].second, buckets[i].second);
  }
  EXPECT_LE(buckets.back().second, inf);
}

TEST(PrometheusDumpTest, EmptyRegistryDumpIsValid) {
  MetricsRegistry reg;
  std::string out;
  reg.DumpPrometheus(&out);
  std::vector<Sample> samples;
  std::map<std::string, std::string> types;
  std::string err;
  EXPECT_TRUE(ParseExposition(out, &samples, &types, &err)) << err;
  EXPECT_TRUE(samples.empty());
}

TEST(PrometheusDumpTest, HostileMetricNamesStillExposeValidly) {
  MetricsRegistry reg;
  reg.GetCounter("1.weird-name with spaces")->Add(1);
  reg.GetHistogram("2nd/histogram")->Record(5);
  std::string out;
  reg.DumpPrometheus(&out);
  std::vector<Sample> samples;
  std::map<std::string, std::string> types;
  std::string err;
  ASSERT_TRUE(ParseExposition(out, &samples, &types, &err)) << err;
  EXPECT_FALSE(samples.empty());
}

}  // namespace
}  // namespace obs
}  // namespace gistcr
