#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "access/btree_extension.h"
#include "access/rtree_extension.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace gistcr {
namespace {

/// Fixture: fresh database with one B-tree-emulating GiST. max_entries=8
/// keeps trees deep with few keys so splits and root growth are exercised
/// constantly.
class GistBasicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("db");
    RemoveDbFiles(path_);
    DatabaseOptions opts;
    opts.path = path_;
    opts.buffer_pool_pages = 256;
    auto db_or = Database::Create(opts);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    GistOptions gopts;
    gopts.max_entries = 8;
    ASSERT_OK(db_->CreateIndex(1, &ext_, gopts));
    auto idx = db_->GetIndex(1);
    ASSERT_OK(idx.status());
    gist_ = idx.value();
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }

  Rid Insert(Transaction* txn, int64_t key) {
    auto rid = db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(key),
                                 "rec-" + std::to_string(key));
    EXPECT_OK(rid.status());
    return rid.value();
  }

  std::vector<int64_t> SearchRange(Transaction* txn, int64_t lo, int64_t hi) {
    std::vector<SearchResult> results;
    EXPECT_OK(gist_->Search(txn, BtreeExtension::MakeRange(lo, hi), &results));
    std::vector<int64_t> keys;
    for (const auto& r : results) keys.push_back(BtreeExtension::Lo(r.key));
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  std::string path_;
  std::unique_ptr<Database> db_;
  BtreeExtension ext_;
  Gist* gist_ = nullptr;
};

TEST_F(GistBasicTest, EmptyTreeSearchReturnsNothing) {
  Transaction* txn = db_->Begin();
  EXPECT_TRUE(SearchRange(txn, -1000, 1000).empty());
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(GistBasicTest, SingleInsertIsFound) {
  Transaction* txn = db_->Begin();
  const Rid rid = Insert(txn, 42);
  auto keys = SearchRange(txn, 42, 42);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], 42);
  auto rec = db_->ReadRecord(rid);
  ASSERT_OK(rec.status());
  EXPECT_EQ(rec.value(), "rec-42");
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(GistBasicTest, ManyInsertsSplitAndStayFindable) {
  Transaction* txn = db_->Begin();
  for (int64_t k = 0; k < 500; k++) Insert(txn, k);
  ASSERT_OK(db_->Commit(txn));
  ASSERT_OK(gist_->CheckInvariants());
  auto h = gist_->Height();
  ASSERT_OK(h.status());
  EXPECT_GE(h.value(), 3u);  // max_entries=8 forces a deep tree
  EXPECT_GT(gist_->stats().splits.load(), 50u);
  EXPECT_GT(gist_->stats().root_grows.load(), 0u);

  Transaction* txn2 = db_->Begin();
  auto keys = SearchRange(txn2, 0, 499);
  ASSERT_EQ(keys.size(), 500u);
  for (int64_t k = 0; k < 500; k++) EXPECT_EQ(keys[k], k);
  ASSERT_OK(db_->Commit(txn2));
}

TEST_F(GistBasicTest, RandomOrderInsertsFindable) {
  Random rng(99);
  std::set<int64_t> keys;
  Transaction* txn = db_->Begin();
  for (int i = 0; i < 400; i++) {
    const int64_t k = rng.UniformRange(-100000, 100000);
    if (keys.insert(k).second) Insert(txn, k);
  }
  ASSERT_OK(db_->Commit(txn));
  ASSERT_OK(gist_->CheckInvariants());
  Transaction* txn2 = db_->Begin();
  auto found = SearchRange(txn2, -100000, 100000);
  EXPECT_EQ(found.size(), keys.size());
  ASSERT_OK(db_->Commit(txn2));
}

TEST_F(GistBasicTest, RangeSearchReturnsExactlyTheRange) {
  Transaction* txn = db_->Begin();
  for (int64_t k = 0; k < 200; k += 2) Insert(txn, k);
  ASSERT_OK(db_->Commit(txn));
  Transaction* txn2 = db_->Begin();
  auto keys = SearchRange(txn2, 50, 99);
  std::vector<int64_t> expect;
  for (int64_t k = 50; k <= 99; k += 2) expect.push_back(k);
  EXPECT_EQ(keys, expect);
  ASSERT_OK(db_->Commit(txn2));
}

TEST_F(GistBasicTest, DeleteHidesKeyFromLaterTransactions) {
  Transaction* t1 = db_->Begin();
  const Rid rid = Insert(t1, 7);
  ASSERT_OK(db_->Commit(t1));

  Transaction* t2 = db_->Begin();
  ASSERT_OK(db_->DeleteRecord(t2, gist_, BtreeExtension::MakeKey(7), rid));
  ASSERT_OK(db_->Commit(t2));

  Transaction* t3 = db_->Begin();
  EXPECT_TRUE(SearchRange(t3, 7, 7).empty());
  EXPECT_TRUE(db_->ReadRecord(rid).status().IsNotFound());
  ASSERT_OK(db_->Commit(t3));
}

TEST_F(GistBasicTest, DeletedEntryIsLogicalUntilGc) {
  Transaction* t1 = db_->Begin();
  const Rid rid = Insert(t1, 7);
  ASSERT_OK(db_->Commit(t1));
  Transaction* t2 = db_->Begin();
  ASSERT_OK(db_->DeleteRecord(t2, gist_, BtreeExtension::MakeKey(7), rid));
  ASSERT_OK(db_->Commit(t2));

  // The entry is still physically present (mark-only delete)...
  std::vector<IndexEntry> entries;
  ASSERT_OK(gist_->DumpEntries(&entries));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_NE(entries[0].del_txn, kInvalidTxnId);

  // ...until a GC sweep collects it.
  Transaction* t3 = db_->Begin();
  uint64_t removed = 0, deleted = 0;
  ASSERT_OK(gist_->GarbageCollect(t3, &removed, &deleted));
  ASSERT_OK(db_->Commit(t3));
  EXPECT_EQ(removed, 1u);
  entries.clear();
  ASSERT_OK(gist_->DumpEntries(&entries));
  EXPECT_TRUE(entries.empty());
}

TEST_F(GistBasicTest, DeleteNonexistentKeyIsNotFound) {
  Transaction* txn = db_->Begin();
  Rid fake;
  fake.page_id = 5;
  fake.slot = 0;
  EXPECT_TRUE(
      gist_->Delete(txn, BtreeExtension::MakeKey(123), fake).IsNotFound());
  ASSERT_OK(db_->Abort(txn));
}

TEST_F(GistBasicTest, AbortRollsBackInsertions) {
  Transaction* t1 = db_->Begin();
  for (int64_t k = 0; k < 50; k++) Insert(t1, k);
  ASSERT_OK(db_->Abort(t1));
  ASSERT_OK(gist_->CheckInvariants());
  Transaction* t2 = db_->Begin();
  EXPECT_TRUE(SearchRange(t2, 0, 50).empty());
  ASSERT_OK(db_->Commit(t2));
}

TEST_F(GistBasicTest, AbortRollsBackDeleteMark) {
  Transaction* t1 = db_->Begin();
  const Rid rid = Insert(t1, 7);
  ASSERT_OK(db_->Commit(t1));
  Transaction* t2 = db_->Begin();
  ASSERT_OK(db_->DeleteRecord(t2, gist_, BtreeExtension::MakeKey(7), rid));
  ASSERT_OK(db_->Abort(t2));
  Transaction* t3 = db_->Begin();
  auto keys = SearchRange(t3, 7, 7);
  ASSERT_EQ(keys.size(), 1u);
  auto rec = db_->ReadRecord(rid);
  EXPECT_OK(rec.status());
  ASSERT_OK(db_->Commit(t3));
}

TEST_F(GistBasicTest, UniqueInsertRejectsDuplicates) {
  Transaction* t1 = db_->Begin();
  auto r1 = db_->InsertRecord(t1, gist_, BtreeExtension::MakeKey(5), "a",
                              /*unique=*/true);
  ASSERT_OK(r1.status());
  ASSERT_OK(db_->Commit(t1));
  Transaction* t2 = db_->Begin();
  auto r2 = db_->InsertRecord(t2, gist_, BtreeExtension::MakeKey(5), "b",
                              /*unique=*/true);
  EXPECT_TRUE(r2.status().IsDuplicateKey());
  // The transaction is still usable and a different key succeeds.
  auto r3 = db_->InsertRecord(t2, gist_, BtreeExtension::MakeKey(6), "c",
                              /*unique=*/true);
  EXPECT_OK(r3.status());
  ASSERT_OK(db_->Commit(t2));
  // The duplicate's heap record was rolled back to the savepoint.
  Transaction* t3 = db_->Begin();
  auto keys = SearchRange(t3, 5, 6);
  EXPECT_EQ(keys.size(), 2u);
  ASSERT_OK(db_->Commit(t3));
}

TEST_F(GistBasicTest, SavepointPartialRollback) {
  Transaction* txn = db_->Begin();
  Insert(txn, 1);
  ASSERT_OK(db_->txns()->Savepoint(txn, "sp1"));
  Insert(txn, 2);
  Insert(txn, 3);
  ASSERT_OK(db_->txns()->RollbackToSavepoint(txn, "sp1"));
  Insert(txn, 4);
  ASSERT_OK(db_->Commit(txn));
  Transaction* t2 = db_->Begin();
  auto keys = SearchRange(t2, 0, 10);
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 4}));
  ASSERT_OK(db_->Commit(t2));
}

TEST_F(GistBasicTest, OwnDeleteInvisibleToOwnSearch) {
  Transaction* t1 = db_->Begin();
  const Rid rid = Insert(t1, 9);
  ASSERT_OK(db_->Commit(t1));
  Transaction* t2 = db_->Begin();
  ASSERT_OK(db_->DeleteRecord(t2, gist_, BtreeExtension::MakeKey(9), rid));
  EXPECT_TRUE(SearchRange(t2, 9, 9).empty());
  ASSERT_OK(db_->Commit(t2));
}

TEST_F(GistBasicTest, OwnInsertVisibleToOwnSearch) {
  Transaction* txn = db_->Begin();
  Insert(txn, 11);
  auto keys = SearchRange(txn, 11, 11);
  EXPECT_EQ(keys.size(), 1u);
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(GistBasicTest, GcShrinksBoundingPredicates) {
  Transaction* t1 = db_->Begin();
  std::vector<Rid> rids;
  for (int64_t k = 0; k < 100; k++) rids.push_back(Insert(t1, k));
  ASSERT_OK(db_->Commit(t1));
  // Delete the top half.
  Transaction* t2 = db_->Begin();
  for (int64_t k = 50; k < 100; k++) {
    ASSERT_OK(db_->DeleteRecord(t2, gist_, BtreeExtension::MakeKey(k),
                                rids[static_cast<size_t>(k)]));
  }
  ASSERT_OK(db_->Commit(t2));
  Transaction* t3 = db_->Begin();
  uint64_t removed = 0, deleted = 0;
  ASSERT_OK(gist_->GarbageCollect(t3, &removed, &deleted));
  ASSERT_OK(db_->Commit(t3));
  EXPECT_EQ(removed, 50u);
  ASSERT_OK(gist_->CheckInvariants());
  Transaction* t4 = db_->Begin();
  auto keys = SearchRange(t4, 0, 200);
  EXPECT_EQ(keys.size(), 50u);
  ASSERT_OK(db_->Commit(t4));
}

TEST_F(GistBasicTest, NodeDeletionReclaimsEmptyLeaves) {
  Transaction* t1 = db_->Begin();
  std::vector<Rid> rids;
  for (int64_t k = 0; k < 200; k++) rids.push_back(Insert(t1, k));
  ASSERT_OK(db_->Commit(t1));
  Transaction* t2 = db_->Begin();
  for (int64_t k = 0; k < 200; k++) {
    ASSERT_OK(db_->DeleteRecord(t2, gist_, BtreeExtension::MakeKey(k),
                                rids[static_cast<size_t>(k)]));
  }
  ASSERT_OK(db_->Commit(t2));
  Transaction* t3 = db_->Begin();
  uint64_t removed = 0, deleted = 0;
  ASSERT_OK(gist_->GarbageCollect(t3, &removed, &deleted));
  // A second sweep cascades deletions upward.
  uint64_t removed2 = 0, deleted2 = 0;
  ASSERT_OK(gist_->GarbageCollect(t3, &removed2, &deleted2));
  ASSERT_OK(db_->Commit(t3));
  EXPECT_EQ(removed, 200u);
  EXPECT_GT(deleted + deleted2, 0u);
  ASSERT_OK(gist_->CheckInvariants());
  Transaction* t4 = db_->Begin();
  EXPECT_TRUE(SearchRange(t4, 0, 200).empty());
  ASSERT_OK(db_->Commit(t4));
}

// R-tree specialization: the same protocol over 2-D data.
class RtreeBasicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("rtree");
    RemoveDbFiles(path_);
    DatabaseOptions opts;
    opts.path = path_;
    opts.buffer_pool_pages = 256;
    auto db_or = Database::Create(opts);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    GistOptions gopts;
    gopts.max_entries = 8;
    ASSERT_OK(db_->CreateIndex(1, &ext_, gopts));
    gist_ = db_->GetIndex(1).value();
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }
  std::string path_;
  std::unique_ptr<Database> db_;
  RtreeExtension ext_;
  Gist* gist_ = nullptr;
};

TEST_F(RtreeBasicTest, WindowQueriesFindPoints) {
  Transaction* txn = db_->Begin();
  Random rng(3);
  int in_window = 0;
  for (int i = 0; i < 300; i++) {
    const double x = rng.NextDouble() * 100;
    const double y = rng.NextDouble() * 100;
    if (x >= 25 && x <= 75 && y >= 25 && y <= 75) in_window++;
    auto rid = db_->InsertRecord(txn, gist_,
                                 RtreeExtension::MakeKey(Rect::Point(x, y)),
                                 "pt");
    ASSERT_OK(rid.status());
  }
  ASSERT_OK(db_->Commit(txn));
  ASSERT_OK(gist_->CheckInvariants());
  Transaction* t2 = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(t2 != nullptr ? gist_->Search(
                                t2,
                                RtreeExtension::MakeWindowQuery(
                                    Rect{25, 25, 75, 75}),
                                &results)
                          : Status::InvalidArgument(""));
  EXPECT_EQ(results.size(), static_cast<size_t>(in_window));
  ASSERT_OK(db_->Commit(t2));
}

TEST_F(RtreeBasicTest, DeleteAndGcOnRects) {
  Transaction* txn = db_->Begin();
  std::vector<Rid> rids;
  std::vector<std::string> keys;
  for (int i = 0; i < 100; i++) {
    keys.push_back(RtreeExtension::MakeKey(
        Rect::Point(static_cast<double>(i), static_cast<double>(i))));
    auto rid = db_->InsertRecord(txn, gist_, keys.back(), "pt");
    ASSERT_OK(rid.status());
    rids.push_back(rid.value());
  }
  ASSERT_OK(db_->Commit(txn));
  Transaction* t2 = db_->Begin();
  for (int i = 0; i < 100; i += 2) {
    ASSERT_OK(db_->DeleteRecord(t2, gist_, keys[static_cast<size_t>(i)],
                                rids[static_cast<size_t>(i)]));
  }
  ASSERT_OK(db_->Commit(t2));
  Transaction* t3 = db_->Begin();
  uint64_t removed = 0, deleted = 0;
  ASSERT_OK(gist_->GarbageCollect(t3, &removed, &deleted));
  ASSERT_OK(db_->Commit(t3));
  EXPECT_EQ(removed, 50u);
  ASSERT_OK(gist_->CheckInvariants());
  Transaction* t4 = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(gist_->Search(
      t4, RtreeExtension::MakeWindowQuery(Rect{-1, -1, 101, 101}),
      &results));
  EXPECT_EQ(results.size(), 50u);
  ASSERT_OK(db_->Commit(t4));
}

}  // namespace
}  // namespace gistcr
