#include <gtest/gtest.h>

#include <set>

#include "util/coding.h"
#include "util/crc32.h"
#include "util/random.h"
#include "util/slice.h"
#include "util/status.h"

namespace gistcr {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, AllCodesRoundTrip) {
  EXPECT_TRUE(Status::Corruption("").IsCorruption());
  EXPECT_TRUE(Status::Deadlock("").IsDeadlock());
  EXPECT_TRUE(Status::DuplicateKey("").IsDuplicateKey());
  EXPECT_TRUE(Status::Aborted("").IsAborted());
  EXPECT_TRUE(Status::NoSpace("").IsNoSpace());
  EXPECT_TRUE(Status::Busy("").IsBusy());
  EXPECT_TRUE(Status::IOError("").IsIOError());
}

TEST(StatusOrTest, ValueAndStatus) {
  StatusOr<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  StatusOr<int> err(Status::NotFound("x"));
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsNotFound());
}

TEST(SliceTest, CompareAndEquality) {
  Slice a("abc");
  Slice b("abd");
  EXPECT_LT(a.compare(b), 0);
  EXPECT_GT(b.compare(a), 0);
  EXPECT_EQ(a.compare(Slice("abc")), 0);
  EXPECT_TRUE(a == Slice("abc"));
  EXPECT_TRUE(a != b);
  EXPECT_LT(Slice("ab").compare(a), 0);  // prefix sorts first
}

TEST(SliceTest, EmptySlices) {
  Slice e;
  EXPECT_TRUE(e.empty());
  EXPECT_TRUE(e == Slice(""));
  EXPECT_EQ(e.compare(Slice("a")), -1);
}

TEST(CodingTest, FixedIntsRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  Decoder d(buf);
  uint16_t a;
  uint32_t b;
  uint64_t c;
  ASSERT_TRUE(d.GetFixed16(&a));
  ASSERT_TRUE(d.GetFixed32(&b));
  ASSERT_TRUE(d.GetFixed64(&c));
  EXPECT_EQ(a, 0xBEEF);
  EXPECT_EQ(b, 0xDEADBEEFu);
  EXPECT_EQ(c, 0x0123456789ABCDEFull);
  EXPECT_TRUE(d.Done());
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("hello"));
  PutLengthPrefixed(&buf, Slice(""));
  Decoder d(buf);
  std::string a, b;
  ASSERT_TRUE(d.GetLengthPrefixed(&a));
  ASSERT_TRUE(d.GetLengthPrefixed(&b));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
}

TEST(CodingTest, DecoderUnderflowDetected) {
  std::string buf;
  PutFixed32(&buf, 7);
  Decoder d(buf);
  uint64_t v;
  EXPECT_FALSE(d.GetFixed64(&v));
  std::string s;
  Decoder d2(buf);  // claims 7 bytes follow but none do
  EXPECT_FALSE(d2.GetLengthPrefixed(&s));
}

TEST(Crc32Test, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, ChainingMatchesOneShot) {
  const char* data = "the quick brown fox jumps over the lazy dog";
  const size_t n = strlen(data);
  const uint32_t whole = Crc32(data, n);
  const uint32_t part = Crc32(data + 10, n - 10, Crc32(data, 10));
  EXPECT_EQ(whole, part);
}

TEST(Crc32Test, DetectsBitFlip) {
  std::string s = "some log record payload";
  const uint32_t before = Crc32(s.data(), s.size());
  s[5] ^= 0x40;
  EXPECT_NE(before, Crc32(s.data(), s.size()));
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformRangeBounds) {
  Random r(7);
  for (int i = 0; i < 1000; i++) {
    const int64_t v = r.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(ZipfianTest, SkewsTowardLowRanks) {
  ZipfianGenerator z(1000, 0.99, 1234);
  uint64_t low = 0, total = 20000;
  for (uint64_t i = 0; i < total; i++) {
    if (z.Next() < 100) low++;
  }
  // With theta=0.99, the top decile of ranks draws well over half the mass.
  EXPECT_GT(low, total / 2);
}

TEST(ZipfianTest, StaysInRange) {
  ZipfianGenerator z(50, 0.8, 99);
  for (int i = 0; i < 5000; i++) EXPECT_LT(z.Next(), 50u);
}

}  // namespace
}  // namespace gistcr
