// Unit tests for the observability subsystem (src/obs): histogram bucket
// boundaries and percentile math, concurrent counter/histogram recording
// (run under TSan in CI), trace-ring wraparound and Chrome-JSON export.

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/op_context.h"
#include "obs/slow_op_log.h"
#include "obs/trace.h"

namespace gistcr {
namespace obs {
namespace {

// ---------------------------------------------------------------------
// Histogram buckets
// ---------------------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketFor(0), 0u);
  EXPECT_EQ(Histogram::BucketFor(1), 1u);
  EXPECT_EQ(Histogram::BucketFor(2), 2u);
  EXPECT_EQ(Histogram::BucketFor(3), 2u);
  EXPECT_EQ(Histogram::BucketFor(4), 3u);
  EXPECT_EQ(Histogram::BucketFor(7), 3u);
  EXPECT_EQ(Histogram::BucketFor(8), 4u);
  EXPECT_EQ(Histogram::BucketFor(1023), 10u);
  EXPECT_EQ(Histogram::BucketFor(1024), 11u);
  // Everything past the last bound lands in the final bucket.
  EXPECT_EQ(Histogram::BucketFor(UINT64_MAX), Histogram::kNumBuckets - 1);

  for (size_t i = 1; i + 1 < Histogram::kNumBuckets; i++) {
    const uint64_t lo = Histogram::BucketLowerBound(i);
    const uint64_t hi = Histogram::BucketUpperBound(i);
    EXPECT_EQ(hi, lo * 2) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketFor(lo), i);
    EXPECT_EQ(Histogram::BucketFor(hi - 1), i);
    EXPECT_EQ(Histogram::BucketFor(hi), i + 1);
  }
}

TEST(HistogramTest, SnapshotCountsSumMinMax) {
  Histogram h;
  h.Record(0);
  h.Record(5);
  h.Record(5);
  h.Record(1000);
  const auto s = h.GetSnapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 1010u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 252.5);
  EXPECT_EQ(s.buckets[0], 1u);                         // the 0
  EXPECT_EQ(s.buckets[Histogram::BucketFor(5)], 2u);   // the 5s
  EXPECT_EQ(s.buckets[Histogram::BucketFor(1000)], 1u);
  EXPECT_EQ(s.PopulatedBuckets(), 3u);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  const auto s = h.GetSnapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(HistogramTest, PercentilesOnUniformData) {
  // 1..1000 uniformly: every percentile estimate must stay within the
  // resolution of a power-of-two bucket (a factor of two of the exact
  // rank), and the defining quantile ordering must hold.
  Histogram h;
  for (uint64_t v = 1; v <= 1000; v++) h.Record(v);
  const auto s = h.GetSnapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_GE(s.Percentile(0.5), 250.0);
  EXPECT_LE(s.Percentile(0.5), 1000.0);
  EXPECT_LE(s.Percentile(0.5), s.Percentile(0.95));
  EXPECT_LE(s.Percentile(0.95), s.Percentile(0.99));
  EXPECT_LE(s.Percentile(1.0), 1000.0);  // clamped to observed max
  EXPECT_GE(s.Percentile(0.001), 1.0);   // clamped to observed min
  // Snapshot pre-computes the common three.
  EXPECT_DOUBLE_EQ(s.p50, s.Percentile(0.5));
  EXPECT_DOUBLE_EQ(s.p95, s.Percentile(0.95));
  EXPECT_DOUBLE_EQ(s.p99, s.Percentile(0.99));
}

TEST(HistogramTest, SingleValuePercentiles) {
  Histogram h;
  for (int i = 0; i < 100; i++) h.Record(42);
  const auto s = h.GetSnapshot();
  // With min == max == 42 the clamp pins every percentile to 42.
  EXPECT_DOUBLE_EQ(s.p50, 42.0);
  EXPECT_DOUBLE_EQ(s.p99, 42.0);
}

// ---------------------------------------------------------------------
// Concurrency (meaningful under TSan; exact counts always checked)
// ---------------------------------------------------------------------

TEST(MetricsConcurrencyTest, CountersAndHistogramsAreExactUnderThreads) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&reg, t] {
      Counter* c = reg.GetCounter("test.ops");
      Histogram* h = reg.GetHistogram("test.lat_ns");
      for (int i = 0; i < kPerThread; i++) {
        c->Add(1);
        h->Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.GetCounter("test.ops")->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const auto s = reg.GetHistogram("test.lat_ns")->GetSnapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, static_cast<uint64_t>(kThreads) * kPerThread - 1);
}

TEST(MetricsRegistryTest, SameNameSameObjectDumpsContainEverything) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x.count");
  Counter* b = reg.GetCounter("x.count");
  EXPECT_EQ(a, b);
  a->Add(3);
  reg.GetGauge("x.rate")->Set(0.5);
  reg.GetHistogram("x.lat_ns")->Record(7);

  std::string text;
  reg.DumpText(&text);
  EXPECT_NE(text.find("x.count"), std::string::npos);
  EXPECT_NE(text.find("x.rate"), std::string::npos);
  EXPECT_NE(text.find("x.lat_ns"), std::string::npos);

  std::string json;
  reg.DumpJson(&json);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"x.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"x.lat_ns\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

TEST(TracerTest, RingWrapsKeepingNewestEvents) {
  Tracer& tr = Tracer::Global();
  tr.Clear();
  // Overfill this thread's ring: the first kRingCapacity/2 "early" events
  // must be overwritten by the following "late" ones.
  for (size_t i = 0; i < Tracer::kRingCapacity / 2; i++) {
    tr.RecordComplete("early", /*ts_us=*/i, /*dur_us=*/1);
  }
  for (size_t i = 0; i < Tracer::kRingCapacity; i++) {
    tr.RecordComplete("late", /*ts_us=*/Tracer::kRingCapacity + i,
                      /*dur_us=*/1);
  }
  const auto events = tr.Snapshot();
  ASSERT_EQ(events.size(), Tracer::kRingCapacity);
  for (const auto& e : events) {
    EXPECT_STREQ(e.name, "late");
  }
  tr.Clear();
  EXPECT_EQ(tr.EventCount(), 0u);
}

TEST(TracerTest, ExportIsChromeTraceJson) {
  Tracer& tr = Tracer::Global();
  tr.Clear();
  tr.RecordComplete("unit.scope", 100, 25);
  tr.RecordInstant("unit.mark");
  const std::string json = tr.ExportJsonString();
  // An array of {"name", "cat", "ph", "ts", "dur", "pid", "tid"} objects.
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"unit.scope\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":25"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit.mark\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);

  const std::string path = "/tmp/gistcr_obs_test_trace.json";
  ASSERT_TRUE(tr.ExportJson(path).ok());
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, json);
  tr.Clear();
}

TEST(TracerTest, EventsFromManyThreadsAllSurface) {
  Tracer& tr = Tracer::Global();
  tr.Clear();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;  // well under ring capacity
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&tr] {
      for (int i = 0; i < kPerThread; i++) {
        tr.RecordComplete("mt.event", static_cast<uint64_t>(i), 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tr.EventCount(), static_cast<size_t>(kThreads) * kPerThread);
  tr.Clear();
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer& tr = Tracer::Global();
  tr.Clear();
  tr.SetEnabled(false);
  tr.RecordComplete("off", 1, 1);
  tr.RecordInstant("off");
  EXPECT_EQ(tr.EventCount(), 0u);
  tr.SetEnabled(true);
}

TEST(TracerTest, DisabledExportIsEmptyButValidJson) {
  // Regression (ISSUE 6 satellite): tracing compiled in but runtime-
  // disabled must export an empty-but-valid JSON array — not stale
  // pre-disable events, not invalid output.
  Tracer& tr = Tracer::Global();
  tr.Clear();
  tr.RecordComplete("stale", 1, 1);
  tr.SetEnabled(false);
  const std::string json = tr.ExportJsonString();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.find("stale"), std::string::npos);
  EXPECT_NE(json.find(']'), std::string::npos);
  tr.SetEnabled(true);
  tr.Clear();
}

TEST(TracerTest, ScopeArgumentsSurviveExport) {
  Tracer& tr = Tracer::Global();
  tr.Clear();
  tr.RecordComplete("argful", 10, 5, "rid", 4242);
  const auto events = tr.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_NE(events[0].arg_name, nullptr);
  EXPECT_STREQ(events[0].arg_name, "rid");
  EXPECT_EQ(events[0].arg, 4242u);
  const std::string json = tr.ExportJsonString();
  EXPECT_NE(json.find("\"args\":{\"rid\":4242}"), std::string::npos);
  tr.Clear();
}

TEST(TracerTest, RingCapacityAppliesToNewThreads) {
  Tracer& tr = Tracer::Global();
  tr.Clear();
  tr.SetRingCapacity(8);
  std::thread t([&tr] {
    for (int i = 0; i < 100; i++) {
      tr.RecordComplete("cap", static_cast<uint64_t>(i), 1);
    }
  });
  t.join();
  // Fresh thread got an 8-slot ring: only the newest 8 events survive.
  size_t cap_events = 0;
  for (const auto& e : tr.Snapshot()) {
    if (std::string(e.name) == "cap") cap_events++;
  }
  EXPECT_EQ(cap_events, 8u);
  tr.SetRingCapacity(0);  // restore the default for later tests
  EXPECT_EQ(tr.ring_capacity(), Tracer::kRingCapacity);
  tr.Clear();
}

// ---------------------------------------------------------------------
// OpContext / stage attribution
// ---------------------------------------------------------------------

TEST(OpContextTest, ScopeInstallsAndRestores) {
  EXPECT_EQ(CurrentOp(), nullptr);
  AddStage(Stage::kLock, 100);  // no-op outside a span
  BumpRestarts();
  OpContext ctx;
  {
    OpScope scope(&ctx);
    EXPECT_EQ(CurrentOp(), &ctx);
    AddStage(Stage::kLock, 100);
    AddStage(Stage::kLock, 50);
    AddStage(Stage::kFsync, 7);
    BumpRestarts();
  }
  EXPECT_EQ(CurrentOp(), nullptr);
  EXPECT_EQ(ctx.Get(Stage::kLock), 150u);
  EXPECT_EQ(ctx.Get(Stage::kFsync), 7u);
  EXPECT_EQ(ctx.restarts, 1u);
}

TEST(OpContextTest, StageNamesAreDistinct) {
  for (size_t i = 0; i < kNumStages; i++) {
    for (size_t j = i + 1; j < kNumStages; j++) {
      EXPECT_STRNE(StageName(static_cast<Stage>(i)),
                   StageName(static_cast<Stage>(j)));
    }
  }
}

TEST(OpContextTest, TreeScopeExcludesInnerWaits) {
  OpContext ctx;
  OpScope scope(&ctx);
  {
    TreeScope tree;
    // A lock wait inside the traversal must not double-count as tree time.
    AddStage(Stage::kLock, 60'000'000);
  }
  EXPECT_EQ(ctx.Get(Stage::kLock), 60'000'000u);
  // Tree time is the (tiny) real elapsed time, not elapsed + the wait.
  EXPECT_LT(ctx.Get(Stage::kTree), 60'000'000u);
}

TEST(OpContextTest, NestedTreeScopesRecordOnce) {
  OpContext ctx;
  OpScope scope(&ctx);
  {
    TreeScope outer;
    { TreeScope inner; }
    EXPECT_EQ(ctx.Get(Stage::kTree), 0u) << "inner scope must not record";
  }
  EXPECT_EQ(ctx.tree_depth, 0u);
}

// ---------------------------------------------------------------------
// SlowOpLog
// ---------------------------------------------------------------------

TEST(SlowOpLogTest, ThresholdGatesCapture) {
  SlowOpLog log;
  log.Configure(/*capacity=*/4, /*threshold_ns=*/1000);
  OpContext ctx;
  ctx.request_id = 7;
  ctx.op_name = "insert";
  log.MaybeRecord(ctx, /*total_ns=*/999, "ok");
  EXPECT_EQ(log.size(), 0u);
  log.MaybeRecord(ctx, /*total_ns=*/1001, "ok");
  EXPECT_EQ(log.size(), 1u);
  log.SetThresholdNs(0);  // disables capture entirely
  log.MaybeRecord(ctx, /*total_ns=*/5'000'000, "ok");
  EXPECT_EQ(log.size(), 1u);
}

TEST(SlowOpLogTest, RingWrapsOldestFirst) {
  SlowOpLog log;
  log.Configure(/*capacity=*/3, /*threshold_ns=*/1);
  OpContext ctx;
  for (uint64_t i = 1; i <= 5; i++) {
    ctx.request_id = i;
    log.MaybeRecord(ctx, /*total_ns=*/100 + i, "ok");
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  const auto records = log.Snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].request_id, 3u);  // oldest surviving
  EXPECT_EQ(records[2].request_id, 5u);  // newest
}

TEST(SlowOpLogTest, DumpJsonEscapesHostileStatus) {
  SlowOpLog log;
  log.Configure(/*capacity=*/4, /*threshold_ns=*/1);
  OpContext ctx;
  ctx.request_id = 1;
  ctx.op_name = "search";
  ctx.Add(Stage::kQueue, 10);
  ctx.Add(Stage::kOther, 90);
  log.MaybeRecord(ctx, 100, "bad \"quote\" and \\ backslash\nnewline");
  const std::string json = log.DumpJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"rid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"search\""), std::string::npos);
  EXPECT_NE(json.find("\"queue\":10"), std::string::npos);
  // No raw quote/backslash/control character may survive inside status.
  const size_t status_pos = json.find("\"status\":\"");
  ASSERT_NE(status_pos, std::string::npos);
  const size_t open = status_pos + 10;
  const size_t close = json.find('"', open);
  ASSERT_NE(close, std::string::npos);
  const std::string status = json.substr(open, close - open);
  EXPECT_EQ(status.find('\\'), std::string::npos);
  EXPECT_EQ(status.find('\n'), std::string::npos);
}

// ---------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------

TEST(FlightRecorderTest, DumpWritesArtifactOnceWhileArmed) {
  const std::string path = "/tmp/gistcr_obs_test.flight";
  std::remove(path.c_str());
  MetricsRegistry reg;
  reg.GetCounter("fr.test")->Add(3);
  SlowOpLog slow;
  FlightRecorder& fr = FlightRecorder::Global();

  // Disarmed: nothing happens.
  fr.Disarm();
  EXPECT_TRUE(fr.Dump("early").IsNotFound());

  fr.Arm(path, &reg, &slow);
  ASSERT_TRUE(fr.armed());
  ASSERT_TRUE(fr.Dump("unit-test").ok());
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  EXPECT_EQ(contents.front(), '{');
  EXPECT_NE(contents.find("\"reason\":\"unit-test\""), std::string::npos);
  EXPECT_NE(contents.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(contents.find("fr.test"), std::string::npos);
  EXPECT_NE(contents.find("\"slow_ops\":"), std::string::npos);
  EXPECT_NE(contents.find("\"trace\":"), std::string::npos);

  // Second dump in the same arming is a no-op (first crash wins).
  std::remove(path.c_str());
  EXPECT_TRUE(fr.Dump("second").ok());
  f = std::fopen(path.c_str(), "r");
  EXPECT_EQ(f, nullptr) << "second Dump must not rewrite the artifact";
  if (f != nullptr) std::fclose(f);

  // Re-arming resets the one-shot.
  fr.Arm(path, &reg, &slow);
  EXPECT_TRUE(fr.Dump("rearmed").ok());
  f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr);
  if (f != nullptr) std::fclose(f);
  fr.Disarm();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace gistcr
