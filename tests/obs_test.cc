// Unit tests for the observability subsystem (src/obs): histogram bucket
// boundaries and percentile math, concurrent counter/histogram recording
// (run under TSan in CI), trace-ring wraparound and Chrome-JSON export.

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gistcr {
namespace obs {
namespace {

// ---------------------------------------------------------------------
// Histogram buckets
// ---------------------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketFor(0), 0u);
  EXPECT_EQ(Histogram::BucketFor(1), 1u);
  EXPECT_EQ(Histogram::BucketFor(2), 2u);
  EXPECT_EQ(Histogram::BucketFor(3), 2u);
  EXPECT_EQ(Histogram::BucketFor(4), 3u);
  EXPECT_EQ(Histogram::BucketFor(7), 3u);
  EXPECT_EQ(Histogram::BucketFor(8), 4u);
  EXPECT_EQ(Histogram::BucketFor(1023), 10u);
  EXPECT_EQ(Histogram::BucketFor(1024), 11u);
  // Everything past the last bound lands in the final bucket.
  EXPECT_EQ(Histogram::BucketFor(UINT64_MAX), Histogram::kNumBuckets - 1);

  for (size_t i = 1; i + 1 < Histogram::kNumBuckets; i++) {
    const uint64_t lo = Histogram::BucketLowerBound(i);
    const uint64_t hi = Histogram::BucketUpperBound(i);
    EXPECT_EQ(hi, lo * 2) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketFor(lo), i);
    EXPECT_EQ(Histogram::BucketFor(hi - 1), i);
    EXPECT_EQ(Histogram::BucketFor(hi), i + 1);
  }
}

TEST(HistogramTest, SnapshotCountsSumMinMax) {
  Histogram h;
  h.Record(0);
  h.Record(5);
  h.Record(5);
  h.Record(1000);
  const auto s = h.GetSnapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 1010u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 252.5);
  EXPECT_EQ(s.buckets[0], 1u);                         // the 0
  EXPECT_EQ(s.buckets[Histogram::BucketFor(5)], 2u);   // the 5s
  EXPECT_EQ(s.buckets[Histogram::BucketFor(1000)], 1u);
  EXPECT_EQ(s.PopulatedBuckets(), 3u);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  const auto s = h.GetSnapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(HistogramTest, PercentilesOnUniformData) {
  // 1..1000 uniformly: every percentile estimate must stay within the
  // resolution of a power-of-two bucket (a factor of two of the exact
  // rank), and the defining quantile ordering must hold.
  Histogram h;
  for (uint64_t v = 1; v <= 1000; v++) h.Record(v);
  const auto s = h.GetSnapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_GE(s.Percentile(0.5), 250.0);
  EXPECT_LE(s.Percentile(0.5), 1000.0);
  EXPECT_LE(s.Percentile(0.5), s.Percentile(0.95));
  EXPECT_LE(s.Percentile(0.95), s.Percentile(0.99));
  EXPECT_LE(s.Percentile(1.0), 1000.0);  // clamped to observed max
  EXPECT_GE(s.Percentile(0.001), 1.0);   // clamped to observed min
  // Snapshot pre-computes the common three.
  EXPECT_DOUBLE_EQ(s.p50, s.Percentile(0.5));
  EXPECT_DOUBLE_EQ(s.p95, s.Percentile(0.95));
  EXPECT_DOUBLE_EQ(s.p99, s.Percentile(0.99));
}

TEST(HistogramTest, SingleValuePercentiles) {
  Histogram h;
  for (int i = 0; i < 100; i++) h.Record(42);
  const auto s = h.GetSnapshot();
  // With min == max == 42 the clamp pins every percentile to 42.
  EXPECT_DOUBLE_EQ(s.p50, 42.0);
  EXPECT_DOUBLE_EQ(s.p99, 42.0);
}

// ---------------------------------------------------------------------
// Concurrency (meaningful under TSan; exact counts always checked)
// ---------------------------------------------------------------------

TEST(MetricsConcurrencyTest, CountersAndHistogramsAreExactUnderThreads) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&reg, t] {
      Counter* c = reg.GetCounter("test.ops");
      Histogram* h = reg.GetHistogram("test.lat_ns");
      for (int i = 0; i < kPerThread; i++) {
        c->Add(1);
        h->Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.GetCounter("test.ops")->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const auto s = reg.GetHistogram("test.lat_ns")->GetSnapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, static_cast<uint64_t>(kThreads) * kPerThread - 1);
}

TEST(MetricsRegistryTest, SameNameSameObjectDumpsContainEverything) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x.count");
  Counter* b = reg.GetCounter("x.count");
  EXPECT_EQ(a, b);
  a->Add(3);
  reg.GetGauge("x.rate")->Set(0.5);
  reg.GetHistogram("x.lat_ns")->Record(7);

  std::string text;
  reg.DumpText(&text);
  EXPECT_NE(text.find("x.count"), std::string::npos);
  EXPECT_NE(text.find("x.rate"), std::string::npos);
  EXPECT_NE(text.find("x.lat_ns"), std::string::npos);

  std::string json;
  reg.DumpJson(&json);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"x.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"x.lat_ns\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

TEST(TracerTest, RingWrapsKeepingNewestEvents) {
  Tracer& tr = Tracer::Global();
  tr.Clear();
  // Overfill this thread's ring: the first kRingCapacity/2 "early" events
  // must be overwritten by the following "late" ones.
  for (size_t i = 0; i < Tracer::kRingCapacity / 2; i++) {
    tr.RecordComplete("early", /*ts_us=*/i, /*dur_us=*/1);
  }
  for (size_t i = 0; i < Tracer::kRingCapacity; i++) {
    tr.RecordComplete("late", /*ts_us=*/Tracer::kRingCapacity + i,
                      /*dur_us=*/1);
  }
  const auto events = tr.Snapshot();
  ASSERT_EQ(events.size(), Tracer::kRingCapacity);
  for (const auto& e : events) {
    EXPECT_STREQ(e.name, "late");
  }
  tr.Clear();
  EXPECT_EQ(tr.EventCount(), 0u);
}

TEST(TracerTest, ExportIsChromeTraceJson) {
  Tracer& tr = Tracer::Global();
  tr.Clear();
  tr.RecordComplete("unit.scope", 100, 25);
  tr.RecordInstant("unit.mark");
  const std::string json = tr.ExportJsonString();
  // An array of {"name", "cat", "ph", "ts", "dur", "pid", "tid"} objects.
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"unit.scope\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":25"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit.mark\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);

  const std::string path = "/tmp/gistcr_obs_test_trace.json";
  ASSERT_TRUE(tr.ExportJson(path).ok());
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, json);
  tr.Clear();
}

TEST(TracerTest, EventsFromManyThreadsAllSurface) {
  Tracer& tr = Tracer::Global();
  tr.Clear();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;  // well under ring capacity
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&tr] {
      for (int i = 0; i < kPerThread; i++) {
        tr.RecordComplete("mt.event", static_cast<uint64_t>(i), 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tr.EventCount(), static_cast<size_t>(kThreads) * kPerThread);
  tr.Clear();
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer& tr = Tracer::Global();
  tr.Clear();
  tr.SetEnabled(false);
  tr.RecordComplete("off", 1, 1);
  tr.RecordInstant("off");
  EXPECT_EQ(tr.EventCount(), 0u);
  tr.SetEnabled(true);
}

}  // namespace
}  // namespace obs
}  // namespace gistcr
