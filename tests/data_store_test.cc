#include <gtest/gtest.h>

#include <set>

#include "db/data_store.h"
#include "db/heap_page.h"
#include "tests/test_util.h"

namespace gistcr {
namespace {

TEST(HeapPageTest, InitAndAppend) {
  char buf[kPageSize] = {};
  HeapPageView hv(buf);
  hv.Init(7);
  EXPECT_TRUE(hv.IsFormatted());
  EXPECT_EQ(hv.count(), 0);
  EXPECT_EQ(hv.next(), kInvalidPageId);
  const uint16_t s0 = hv.Append("hello");
  const uint16_t s1 = hv.Append("world!");
  EXPECT_EQ(s0, 0);
  EXPECT_EQ(s1, 1);
  EXPECT_EQ(hv.Record(0), Slice("hello"));
  EXPECT_EQ(hv.Record(1), Slice("world!"));
}

TEST(HeapPageTest, TombstoneFlag) {
  char buf[kPageSize] = {};
  HeapPageView hv(buf);
  hv.Init(7);
  hv.Append("rec");
  EXPECT_FALSE(hv.IsDeleted(0));
  hv.SetDeleted(0, true);
  EXPECT_TRUE(hv.IsDeleted(0));
  EXPECT_EQ(hv.Record(0), Slice("rec"));  // bytes remain for undo
  hv.SetDeleted(0, false);
  EXPECT_FALSE(hv.IsDeleted(0));
}

TEST(HeapPageTest, SpaceAccounting) {
  char buf[kPageSize] = {};
  HeapPageView hv(buf);
  hv.Init(7);
  const std::string rec(100, 'x');
  int n = 0;
  while (hv.HasSpaceFor(rec.size())) {
    hv.Append(rec);
    n++;
  }
  EXPECT_GT(n, 70);  // ~8K / (100+6)
  EXPECT_FALSE(hv.HasSpaceFor(rec.size()));
}

TEST(HeapPageTest, ChainPointer) {
  char buf[kPageSize] = {};
  HeapPageView hv(buf);
  hv.Init(7);
  hv.set_next(42);
  EXPECT_EQ(hv.next(), 42u);
}

class DataStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("ds");
    RemoveDbFiles(path_);
    opts_.path = path_;
    opts_.buffer_pool_pages = 256;
    auto db_or = Database::Create(opts_);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }
  std::string path_;
  DatabaseOptions opts_;
  std::unique_ptr<Database> db_;
};

TEST_F(DataStoreTest, InsertReadRoundTrip) {
  Transaction* txn = db_->Begin();
  auto rid = db_->data()->Insert(txn, "record-body");
  ASSERT_OK(rid.status());
  ASSERT_OK(db_->Commit(txn));
  auto rec = db_->data()->Read(rid.value());
  ASSERT_OK(rec.status());
  EXPECT_EQ(rec.value(), "record-body");
}

TEST_F(DataStoreTest, ReadOfNeverWrittenSlotIsNotFound) {
  Rid bogus;
  bogus.page_id = db_->data()->head();
  bogus.slot = 999;
  EXPECT_TRUE(db_->data()->Read(bogus).status().IsNotFound());
}

TEST_F(DataStoreTest, DeleteTombstonesAndUndoRestores) {
  Transaction* t1 = db_->Begin();
  auto rid = db_->data()->Insert(t1, "r");
  ASSERT_OK(rid.status());
  ASSERT_OK(db_->Commit(t1));

  Transaction* t2 = db_->Begin();
  ASSERT_OK(db_->data()->Delete(t2, rid.value()));
  EXPECT_TRUE(db_->data()->Read(rid.value()).status().IsNotFound());
  ASSERT_OK(db_->Abort(t2));  // Heap-Delete undo: unmark
  EXPECT_OK(db_->data()->Read(rid.value()).status());
}

TEST_F(DataStoreTest, InsertUndoTombstones) {
  Transaction* txn = db_->Begin();
  auto rid = db_->data()->Insert(txn, "r");
  ASSERT_OK(rid.status());
  ASSERT_OK(db_->Abort(txn));  // Heap-Insert undo: mark slot free
  EXPECT_TRUE(db_->data()->Read(rid.value()).status().IsNotFound());
}

TEST_F(DataStoreTest, DoubleDeleteIsNotFound) {
  Transaction* t1 = db_->Begin();
  auto rid = db_->data()->Insert(t1, "r");
  ASSERT_OK(rid.status());
  ASSERT_OK(db_->data()->Delete(t1, rid.value()));
  EXPECT_TRUE(db_->data()->Delete(t1, rid.value()).IsNotFound());
  ASSERT_OK(db_->Commit(t1));
}

TEST_F(DataStoreTest, OversizedRecordRejected) {
  Transaction* txn = db_->Begin();
  const std::string huge(kPageSize, 'x');
  EXPECT_TRUE(db_->data()->Insert(txn, huge).status().code() == Status::Code::kInvalidArgument);
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(DataStoreTest, ChainGrowsAndRidsStayUnique) {
  Transaction* txn = db_->Begin();
  const std::string rec(1000, 'z');
  std::set<uint64_t> rids;
  for (int i = 0; i < 50; i++) {  // > 6 pages of 1000-byte records
    auto rid = db_->data()->Insert(txn, rec);
    ASSERT_OK(rid.status());
    EXPECT_TRUE(rids.insert(rid.value().Pack()).second);
  }
  ASSERT_OK(db_->Commit(txn));
  std::set<PageId> pages;
  for (uint64_t r : rids) pages.insert(Rid::Unpack(r).page_id);
  EXPECT_GT(pages.size(), 5u);
  for (uint64_t r : rids) {
    EXPECT_OK(db_->data()->Read(Rid::Unpack(r)).status());
  }
}

class PageAllocatorTest : public DataStoreTest {};

TEST_F(PageAllocatorTest, SequentialDistinctAllocations) {
  Transaction* txn = db_->Begin();
  std::set<PageId> pids;
  for (int i = 0; i < 300; i++) {
    auto pid = db_->allocator()->Allocate(txn);
    ASSERT_OK(pid.status());
    EXPECT_TRUE(pids.insert(pid.value()).second) << "dup " << pid.value();
    EXPECT_GE(pid.value(), PageAllocator::kFirstAllocatablePage);
  }
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(PageAllocatorTest, FreeMakesPageReallocatable) {
  Transaction* txn = db_->Begin();
  auto a = db_->allocator()->Allocate(txn);
  ASSERT_OK(a.status());
  auto b = db_->allocator()->Allocate(txn);
  ASSERT_OK(b.status());
  ASSERT_OK(db_->allocator()->Free(txn, a.value()));
  auto c = db_->allocator()->Allocate(txn);
  ASSERT_OK(c.status());
  EXPECT_EQ(c.value(), a.value());  // hint rewinds to freed pages
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(PageAllocatorTest, ApplyBitIdempotentUnderPageLsnTest) {
  Transaction* txn = db_->Begin();
  auto a = db_->allocator()->Allocate(txn);
  ASSERT_OK(a.status());
  ASSERT_OK(db_->Commit(txn));
  // Re-applying an older "set" with check enabled is a no-op; with a newer
  // LSN it applies.
  ASSERT_OK(db_->allocator()->ApplyBit(a.value(), false, /*lsn=*/1,
                                       /*check_page_lsn=*/true));
  EXPECT_TRUE(db_->allocator()->IsAllocated(a.value()).value());
  const Lsn high = db_->log()->last_lsn() + 1000;
  ASSERT_OK(db_->allocator()->ApplyBit(a.value(), false, high, true));
  EXPECT_FALSE(db_->allocator()->IsAllocated(a.value()).value());
}

TEST_F(PageAllocatorTest, BitmapPageMapping) {
  EXPECT_EQ(PageAllocator::BitmapPageFor(0), PageAllocator::kFirstBitmapPage);
  EXPECT_EQ(PageAllocator::BitmapPageFor(PageAllocator::kBitsPerPage - 1),
            PageAllocator::kFirstBitmapPage);
  EXPECT_EQ(PageAllocator::BitmapPageFor(PageAllocator::kBitsPerPage),
            PageAllocator::kFirstBitmapPage + 1);
}

}  // namespace
}  // namespace gistcr
