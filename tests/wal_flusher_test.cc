// Group-commit semantics of the dedicated WAL flusher (DESIGN.md section
// 11): durable_lsn monotonicity under concurrent committers, flush-error
// fan-out to every blocked waiter, and DiscardTail racing the flusher.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "storage/fault_injector.h"
#include "tests/test_util.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace gistcr {
namespace {

class WalFlusherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if constexpr (kFaultInjectionCompiled) {
      FaultInjector::Global().Reset();
    }
    path_ = TestPath("flusher") + ".wal";
    std::remove(path_.c_str());
    // Attach before Open: Open starts the flusher thread, which reads the
    // cached metric pointers from then on.
    log_.AttachMetrics(&reg_);
    ASSERT_OK(log_.Open(path_));
  }
  void TearDown() override {
    log_.Close();
    std::remove(path_.c_str());
    if constexpr (kFaultInjectionCompiled) {
      FaultInjector::Global().Reset();
    }
  }

  Lsn AppendCommit(TxnId txn) {
    LogRecord rec;
    rec.type = LogRecordType::kCommit;
    rec.txn_id = txn;
    rec.payload = "c";
    EXPECT_OK(log_.Append(&rec));
    return rec.lsn;
  }

  std::string path_;
  obs::MetricsRegistry reg_;
  LogManager log_;
};

// The commit contract: after Flush(lsn) returns OK, durable_lsn() covers
// lsn — and durable_lsn never moves backwards, no matter how many
// committers race and how the flusher batches them.
TEST_F(WalFlusherTest, DurableLsnMonotoneUnderConcurrentCommitters) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> regressions{0};
  std::thread monitor([&] {
    Lsn prev = kInvalidLsn;
    while (!stop.load(std::memory_order_acquire)) {
      const Lsn d = log_.durable_lsn();
      if (prev != kInvalidLsn && d != kInvalidLsn && d < prev) {
        regressions.fetch_add(1);
      }
      if (d != kInvalidLsn) prev = d;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> committers;
  for (int t = 0; t < kThreads; t++) {
    committers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        const Lsn lsn =
            AppendCommit(static_cast<TxnId>(t * kPerThread + i + 1));
        EXPECT_OK(log_.Flush(lsn));
        EXPECT_GE(log_.durable_lsn(), lsn);
      }
    });
  }
  for (auto& th : committers) th.join();
  stop.store(true, std::memory_order_release);
  monitor.join();
  EXPECT_EQ(regressions.load(), 0u);
  EXPECT_EQ(log_.durable_lsn(), log_.last_lsn());
  // 1600 flush requests must not mean 1600 fsyncs; the exact batching is
  // timing-dependent but at least one flush must have retired >1 request
  // on any real machine. Keep the hard bound loose: no more flushes than
  // requests.
  EXPECT_GE(reg_.GetCounter("wal.flushes")->value(), 1u);
  EXPECT_LE(reg_.GetCounter("wal.flushes")->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// A failing fsync must reach every waiter blocked on the attempt — not
// just the one whose Flush call triggered it — and the batch must remain
// in the tail buffer so a later flush retries it successfully.
TEST_F(WalFlusherTest, FlushErrorFansOutToBlockedWaiters) {
  if constexpr (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "fault injection not compiled in";
  }
  constexpr int kWaiters = 8;
  std::vector<Lsn> lsns;
  for (int i = 0; i < kWaiters; i++) {
    lsns.push_back(AppendCommit(static_cast<TxnId>(i + 1)));
  }
  FaultInjector::Global().FailNextSyncs(1);
  std::atomic<int> errors{0};
  std::atomic<int> oks{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; i++) {
    waiters.emplace_back([&, i] {
      const Status st = log_.Flush(lsns[i]);
      if (st.ok()) {
        oks.fetch_add(1);
      } else {
        EXPECT_TRUE(st.IsIOError()) << st.ToString();
        errors.fetch_add(1);
      }
    });
  }
  for (auto& t : waiters) t.join();
  // At least the waiter whose request triggered the failing attempt (plus
  // everyone parked on the condvar at that moment) observed the error;
  // waiters that arrived after the failure was published re-requested and
  // succeeded on the retry.
  EXPECT_GE(errors.load(), 1);
  EXPECT_EQ(errors.load() + oks.load(), kWaiters);
  EXPECT_GE(reg_.GetCounter("wal.flusher.errors")->value(), 1u);

  // The failed batch was spliced back: a later flush retries it, and the
  // records are intact.
  ASSERT_OK(log_.FlushAll());
  EXPECT_EQ(log_.durable_lsn(), log_.last_lsn());
  LogRecord rec;
  ASSERT_OK(log_.ReadRecord(lsns.front(), &rec));
  EXPECT_EQ(rec.type, LogRecordType::kCommit);
  ASSERT_OK(log_.ReadRecord(lsns.back(), &rec));
  EXPECT_EQ(rec.type, LogRecordType::kCommit);
}

// DiscardTail (the crash simulation) racing appenders and the flusher:
// no hang, no torn state. A Flush caller either committed before the
// discard (OK) or had its records dropped (Aborted, like a flush error).
TEST_F(WalFlusherTest, DiscardTailRacesFlusher) {
  constexpr int kWriters = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> discarded{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; t++) {
    writers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_acquire)) {
        const Lsn lsn = AppendCommit(static_cast<TxnId>(t + 1));
        const Status st = log_.Flush(lsn);
        if (st.ok()) {
          committed.fetch_add(1);
        } else {
          EXPECT_TRUE(st.IsAborted()) << st.ToString();
          discarded.fetch_add(1);
        }
      }
    });
  }
  for (int i = 0; i < 50; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    log_.DiscardTail();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();
  EXPECT_GT(committed.load(), 0u);

  // Quiesced: one final discard leaves the volatile tail empty and the
  // log well-formed — every record at or below durable_lsn is readable.
  log_.DiscardTail();
  EXPECT_EQ(log_.last_lsn(), log_.durable_lsn());
  uint64_t scanned = 0;
  ASSERT_OK(log_.Scan(kInvalidLsn, [&](const LogRecord& rec) {
    EXPECT_EQ(rec.type, LogRecordType::kCommit);
    scanned++;
    return true;
  }));
  EXPECT_GE(scanned, committed.load());
}

// Unforced appends stay volatile: the flusher must not eagerly sync
// records nobody asked to make durable (wal_test relies on this for
// crash simulation; here we pin the contract directly).
TEST_F(WalFlusherTest, FlusherDoesNotFlushUnrequestedRecords) {
  const Lsn a = AppendCommit(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_LT(log_.durable_lsn() == kInvalidLsn ? 0 : log_.durable_lsn(), a);
  ASSERT_OK(log_.Flush(a));
  EXPECT_GE(log_.durable_lsn(), a);
}

// Adaptive pacing (SetPacing): when the pending commit group is smaller
// than min_commits, the flusher holds the batch open for the pacing window
// so concurrent committers pile on. The paced windows are observable via
// wal.flusher.pace_waits, and grouping must actually happen: with 8
// committers racing, flushes retire multi-commit batches.
TEST_F(WalFlusherTest, PacingHoldsSmallBatchesOpenAndGrowsGroups) {
  log_.SetPacing(/*wait_us=*/2000, /*min_commits=*/8);

  // Deterministic engagement check first: a lone commit is always below
  // min_commits, so its flush must ride through exactly one paced window.
  ASSERT_OK(log_.Flush(AppendCommit(1000)));
  EXPECT_GT(reg_.GetCounter("wal.flusher.pace_waits")->value(), 0u);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::thread> committers;
  for (int t = 0; t < kThreads; t++) {
    committers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        const Lsn lsn =
            AppendCommit(static_cast<TxnId>(t * kPerThread + i + 1));
        EXPECT_OK(log_.Flush(lsn));
      }
    });
  }
  for (auto& th : committers) th.join();
  EXPECT_EQ(log_.durable_lsn(), log_.last_lsn());

  // Small groups existed (8 threads can have at most 8 commits pending, and
  // they rarely all arrive inside one window), so pacing engaged...
  EXPECT_GT(reg_.GetCounter("wal.flusher.pace_waits")->value(), 0u);
  // ...and it worked: the held-open batches absorbed concurrent commits, so
  // the mean group is comfortably above one commit per fsync.
  const auto groups =
      reg_.GetHistogram("wal.group_commit_commits")->GetSnapshot();
  ASSERT_GT(groups.count, 0u);
  EXPECT_GT(static_cast<double>(groups.sum) /
                static_cast<double>(groups.count),
            1.5);
  EXPECT_LT(reg_.GetCounter("wal.flushes")->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// Pacing is opt-in: with the default knobs (0), no flush is ever delayed
// and the pace counter stays at zero.
TEST_F(WalFlusherTest, PacingDisabledByDefault) {
  for (int i = 0; i < 10; i++) {
    const Lsn lsn = AppendCommit(static_cast<TxnId>(i + 1));
    ASSERT_OK(log_.Flush(lsn));
  }
  EXPECT_EQ(reg_.GetCounter("wal.flusher.pace_waits")->value(), 0u);
}

}  // namespace
}  // namespace gistcr
