// Group-commit semantics of the dedicated WAL flusher (DESIGN.md section
// 11): durable_lsn monotonicity under concurrent committers, flush-error
// fan-out to every blocked waiter, and DiscardTail racing the flusher.

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <thread>
#include <vector>

#include "storage/fault_injector.h"
#include "tests/test_util.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace gistcr {
namespace {

class WalFlusherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if constexpr (kFaultInjectionCompiled) {
      FaultInjector::Global().Reset();
    }
    path_ = TestPath("flusher") + ".wal";
    std::remove(path_.c_str());
    // Attach before Open: Open starts the flusher thread, which reads the
    // cached metric pointers from then on.
    log_.AttachMetrics(&reg_);
    ASSERT_OK(log_.Open(path_));
  }
  void TearDown() override {
    log_.Close();
    std::remove(path_.c_str());
    if constexpr (kFaultInjectionCompiled) {
      FaultInjector::Global().Reset();
    }
  }

  Lsn AppendCommit(TxnId txn) {
    LogRecord rec;
    rec.type = LogRecordType::kCommit;
    rec.txn_id = txn;
    rec.payload = "c";
    EXPECT_OK(log_.Append(&rec));
    return rec.lsn;
  }

  std::string path_;
  obs::MetricsRegistry reg_;
  LogManager log_;
};

// The commit contract: after Flush(lsn) returns OK, durable_lsn() covers
// lsn — and durable_lsn never moves backwards, no matter how many
// committers race and how the flusher batches them.
TEST_F(WalFlusherTest, DurableLsnMonotoneUnderConcurrentCommitters) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> regressions{0};
  std::thread monitor([&] {
    Lsn prev = kInvalidLsn;
    while (!stop.load(std::memory_order_acquire)) {
      const Lsn d = log_.durable_lsn();
      if (prev != kInvalidLsn && d != kInvalidLsn && d < prev) {
        regressions.fetch_add(1);
      }
      if (d != kInvalidLsn) prev = d;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> committers;
  for (int t = 0; t < kThreads; t++) {
    committers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        const Lsn lsn =
            AppendCommit(static_cast<TxnId>(t * kPerThread + i + 1));
        EXPECT_OK(log_.Flush(lsn));
        EXPECT_GE(log_.durable_lsn(), lsn);
      }
    });
  }
  for (auto& th : committers) th.join();
  stop.store(true, std::memory_order_release);
  monitor.join();
  EXPECT_EQ(regressions.load(), 0u);
  EXPECT_EQ(log_.durable_lsn(), log_.last_lsn());
  // 1600 flush requests must not mean 1600 fsyncs; the exact batching is
  // timing-dependent but at least one flush must have retired >1 request
  // on any real machine. Keep the hard bound loose: no more flushes than
  // requests.
  EXPECT_GE(reg_.GetCounter("wal.flushes")->value(), 1u);
  EXPECT_LE(reg_.GetCounter("wal.flushes")->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// The deterministic half of the error contract: a lone waiter blocked on
// a failing attempt MUST observe the error. With no second Flush caller
// around, nothing can re-arm the dropped request after the failure, so
// durable_lsn can never advance and the waiter's only way out of the
// wait loop is the error-generation bump.
TEST_F(WalFlusherTest, FlushErrorReachesTheBlockedWaiter) {
  if constexpr (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "fault injection not compiled in";
  }
  const Lsn lsn = AppendCommit(1);
  FaultInjector::Global().FailNextSyncs(1);
  const Status st = log_.Flush(lsn);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_GE(reg_.GetCounter("wal.flusher.errors")->value(), 1u);

  // The failed batch was spliced back: a later flush retries it, and the
  // record is intact.
  ASSERT_OK(log_.FlushAll());
  EXPECT_EQ(log_.durable_lsn(), log_.last_lsn());
  LogRecord rec;
  ASSERT_OK(log_.ReadRecord(lsn, &rec));
  EXPECT_EQ(rec.type, LogRecordType::kCommit);
}

// The racy half: with many waiters, a failing fsync fans out to everyone
// parked on the attempt — but a waiter that arrives *after* the failure
// re-arms the request, and its successful retry may legitimately rescue
// a pre-failure waiter before that waiter wakes (its records ARE durable
// then, so OK is the truthful answer). The invariant that holds under
// every interleaving: each waiter returns exactly once, an error is
// always IOError, an OK always means the waiter's LSN was durable by
// then, and the flusher recorded the injected failure.
TEST_F(WalFlusherTest, FlushErrorFansOutToBlockedWaiters) {
  if constexpr (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "fault injection not compiled in";
  }
  constexpr int kWaiters = 8;
  std::vector<Lsn> lsns;
  for (int i = 0; i < kWaiters; i++) {
    lsns.push_back(AppendCommit(static_cast<TxnId>(i + 1)));
  }
  FaultInjector::Global().FailNextSyncs(1);
  std::atomic<int> errors{0};
  std::atomic<int> oks{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; i++) {
    waiters.emplace_back([&, i] {
      const Status st = log_.Flush(lsns[i]);
      if (st.ok()) {
        EXPECT_GE(log_.durable_lsn(), lsns[i]);
        oks.fetch_add(1);
      } else {
        EXPECT_TRUE(st.IsIOError()) << st.ToString();
        errors.fetch_add(1);
      }
    });
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(errors.load() + oks.load(), kWaiters);
  EXPECT_GE(reg_.GetCounter("wal.flusher.errors")->value(), 1u);

  // The failed batch was spliced back: a later flush retries it, and the
  // records are intact.
  ASSERT_OK(log_.FlushAll());
  EXPECT_EQ(log_.durable_lsn(), log_.last_lsn());
  LogRecord rec;
  ASSERT_OK(log_.ReadRecord(lsns.front(), &rec));
  EXPECT_EQ(rec.type, LogRecordType::kCommit);
  ASSERT_OK(log_.ReadRecord(lsns.back(), &rec));
  EXPECT_EQ(rec.type, LogRecordType::kCommit);
}

// DiscardTail (the crash simulation) racing appenders and the flusher:
// no hang, no torn state. A Flush caller either committed before the
// discard (OK) or had its records dropped (Aborted, like a flush error).
TEST_F(WalFlusherTest, DiscardTailRacesFlusher) {
  constexpr int kWriters = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> discarded{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; t++) {
    writers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_acquire)) {
        const Lsn lsn = AppendCommit(static_cast<TxnId>(t + 1));
        const Status st = log_.Flush(lsn);
        if (st.ok()) {
          // LSNs are byte offsets and DiscardTail rewinds next_lsn_, so a
          // discard between our append and this flush can drop our record
          // and hand its LSN to a competitor's append; once that batch
          // syncs, Flush truthfully reports the LSN durable — with the
          // other writer's record behind it. (Real crashes leave no
          // surviving waiters, so only this simulation can observe it.)
          // Authenticate the OK: the durable bytes are ours only if they
          // carry our txn id; otherwise we were a discard victim.
          LogRecord rec;
          if (log_.ReadRecord(lsn, &rec).ok() &&
              rec.txn_id == static_cast<TxnId>(t + 1)) {
            committed.fetch_add(1);
          } else {
            discarded.fetch_add(1);
          }
        } else {
          EXPECT_TRUE(st.IsAborted()) << st.ToString();
          discarded.fetch_add(1);
        }
      }
    });
  }
  // Pace the discards off observed flush outcomes rather than wall-clock
  // sleeps: each discard waits (bounded) until at least one more Flush
  // call resolved, so every iteration races live traffic even when a
  // sanitizer or a loaded scheduler stalls the writers.
  const auto outcomes = [&] { return committed.load() + discarded.load(); };
  for (int i = 0; i < 50; i++) {
    const uint64_t before = outcomes();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (outcomes() == before &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    log_.DiscardTail();
  }
  // With the discards done the writers run unopposed, so a commit must
  // land; wait for it instead of hoping one slipped through the races.
  const auto commit_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (committed.load() == 0 &&
         std::chrono::steady_clock::now() < commit_deadline) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();
  EXPECT_GT(committed.load(), 0u);

  // Quiesced: one final discard leaves the volatile tail empty and the
  // log well-formed — every record at or below durable_lsn is readable.
  log_.DiscardTail();
  EXPECT_EQ(log_.last_lsn(), log_.durable_lsn());
  uint64_t scanned = 0;
  ASSERT_OK(log_.Scan(kInvalidLsn, [&](const LogRecord& rec) {
    EXPECT_EQ(rec.type, LogRecordType::kCommit);
    scanned++;
    return true;
  }));
  EXPECT_GE(scanned, committed.load());
}

// Unforced appends stay volatile: the flusher must not eagerly sync
// records nobody asked to make durable (wal_test relies on this for
// crash simulation; here we pin the contract directly).
TEST_F(WalFlusherTest, FlusherDoesNotFlushUnrequestedRecords) {
  const uint64_t flushes_before = reg_.GetCounter("wal.flushes")->value();
  const Lsn a = AppendCommit(1);
  // Give the flusher thread many scheduling quanta to misbehave; an eager
  // flusher would wake and sync within a handful of them. Polling the
  // flush counter (instead of sleeping a fixed 20ms) keeps the check
  // meaningful under sanitizers and makes any violation observable the
  // moment it happens.
  for (int i = 0; i < 200; i++) {
    std::this_thread::yield();
    ASSERT_EQ(reg_.GetCounter("wal.flushes")->value(), flushes_before);
    ASSERT_LT(log_.durable_lsn() == kInvalidLsn ? 0 : log_.durable_lsn(), a);
  }
  ASSERT_OK(log_.Flush(a));
  EXPECT_GE(log_.durable_lsn(), a);
}

// Adaptive pacing (SetPacing): when the pending commit group is smaller
// than min_commits, the flusher holds the batch open for the pacing window
// so concurrent committers pile on. The paced windows are observable via
// wal.flusher.pace_waits, and grouping must actually happen: with 8
// committers racing, flushes retire multi-commit batches.
TEST_F(WalFlusherTest, PacingHoldsSmallBatchesOpenAndGrowsGroups) {
  log_.SetPacing(/*wait_us=*/2000, /*min_commits=*/8);

  // Deterministic engagement check first: a lone commit is always below
  // min_commits, so its flush must ride through exactly one paced window.
  ASSERT_OK(log_.Flush(AppendCommit(1000)));
  EXPECT_GT(reg_.GetCounter("wal.flusher.pace_waits")->value(), 0u);

  // Grouping check, in lockstep rounds: all committers append before any
  // of them flushes, so every flush wave finds a full group pending and
  // the flusher retires ~kThreads commits per fsync no matter how slowly
  // a sanitizer schedules the threads. (The old free-running version left
  // group sizes to scheduler luck and flaked under TSan.)
  constexpr int kThreads = 8;
  constexpr int kRounds = 25;
  std::barrier round_barrier(kThreads);
  std::vector<std::thread> committers;
  for (int t = 0; t < kThreads; t++) {
    committers.emplace_back([&, t] {
      for (int i = 0; i < kRounds; i++) {
        const Lsn lsn = AppendCommit(static_cast<TxnId>(t * kRounds + i + 1));
        round_barrier.arrive_and_wait();  // everyone appended this round
        EXPECT_OK(log_.Flush(lsn));
        round_barrier.arrive_and_wait();  // everyone durable this round
      }
    });
  }
  for (auto& th : committers) th.join();
  EXPECT_EQ(log_.durable_lsn(), log_.last_lsn());

  // The lone-commit window above keeps this cumulative counter non-zero
  // even if every full round flushed without pacing.
  EXPECT_GT(reg_.GetCounter("wal.flusher.pace_waits")->value(), 0u);
  // Grouping worked: each round's first fsync covers the whole pending
  // wave, so the mean group sits near kThreads; 1.5 leaves a wide margin
  // for stragglers that miss their wave's batch.
  const auto groups =
      reg_.GetHistogram("wal.group_commit_commits")->GetSnapshot();
  ASSERT_GT(groups.count, 0u);
  EXPECT_GT(static_cast<double>(groups.sum) /
                static_cast<double>(groups.count),
            1.5);
  EXPECT_LT(reg_.GetCounter("wal.flushes")->value(),
            static_cast<uint64_t>(kThreads) * kRounds);
}

// Pacing is opt-in: with the default knobs (0), no flush is ever delayed
// and the pace counter stays at zero.
TEST_F(WalFlusherTest, PacingDisabledByDefault) {
  for (int i = 0; i < 10; i++) {
    const Lsn lsn = AppendCommit(static_cast<TxnId>(i + 1));
    ASSERT_OK(log_.Flush(lsn));
  }
  EXPECT_EQ(reg_.GetCounter("wal.flusher.pace_waits")->value(), 0u);
}

}  // namespace
}  // namespace gistcr
