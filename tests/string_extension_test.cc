#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "access/string_extension.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace gistcr {
namespace {

class StringExtTest : public ::testing::Test {
 protected:
  StringExtension ext_;
};

TEST_F(StringExtTest, RangeEncodingRoundTrip) {
  const std::string p = StringExtension::MakeRange("apple", "banana");
  EXPECT_EQ(StringExtension::Lo(p), "apple");
  EXPECT_EQ(StringExtension::Hi(p), "banana");
}

TEST_F(StringExtTest, ConsistentIsLexOverlap) {
  const std::string p = StringExtension::MakeRange("b", "d");
  EXPECT_TRUE(ext_.Consistent(p, StringExtension::MakeRange("c", "e")));
  EXPECT_TRUE(ext_.Consistent(p, StringExtension::MakeKey("d")));
  EXPECT_FALSE(ext_.Consistent(p, StringExtension::MakeRange("da", "e")));
  EXPECT_FALSE(ext_.Consistent(p, StringExtension::MakeKey("a")));
}

TEST_F(StringExtTest, PrefixQueryMatchesPrefixedKeys) {
  const std::string q = StringExtension::MakePrefixQuery("app");
  EXPECT_TRUE(ext_.Consistent(StringExtension::MakeKey("apple"), q));
  EXPECT_TRUE(ext_.Consistent(StringExtension::MakeKey("app"), q));
  EXPECT_FALSE(ext_.Consistent(StringExtension::MakeKey("apz"), q));
  EXPECT_FALSE(ext_.Consistent(StringExtension::MakeKey("ap"), q));
}

TEST_F(StringExtTest, UnionAndContains) {
  const std::string u = ext_.Union(StringExtension::MakeRange("c", "f"),
                                   StringExtension::MakeRange("a", "d"));
  EXPECT_EQ(StringExtension::Lo(u), "a");
  EXPECT_EQ(StringExtension::Hi(u), "f");
  EXPECT_TRUE(ext_.Contains(u, StringExtension::MakeKey("e")));
  EXPECT_FALSE(ext_.Contains(StringExtension::MakeRange("a", "d"), u));
}

TEST_F(StringExtTest, PenaltyZeroInsideGrowsOutside) {
  const std::string bp = StringExtension::MakeRange("m", "p");
  EXPECT_EQ(ext_.Penalty(bp, StringExtension::MakeKey("n")), 0.0);
  EXPECT_GT(ext_.Penalty(bp, StringExtension::MakeKey("z")), 0.0);
  EXPECT_GT(ext_.Penalty(bp, StringExtension::MakeKey("a")),
            ext_.Penalty(bp, StringExtension::MakeKey("l")));
}

TEST_F(StringExtTest, PickSplitIsOrderedMedianCut) {
  std::vector<IndexEntry> entries;
  for (char c = 'a'; c <= 'j'; c++) {
    entries.push_back(
        {StringExtension::MakeKey(std::string(1, c)), 0, kInvalidTxnId});
  }
  std::vector<bool> to_right;
  ext_.PickSplit(entries, &to_right);
  for (size_t i = 0; i < entries.size(); i++) {
    EXPECT_EQ(to_right[i], i >= 5) << i;
  }
}

/// End-to-end: a text index with variable-length keys — exercises BP
/// relocation and variable-size split payloads through the whole engine,
/// including crash recovery.
class StringIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("strdb");
    RemoveDbFiles(path_);
    opts_.path = path_;
    opts_.buffer_pool_pages = 512;
    auto db_or = Database::Create(opts_);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    GistOptions gopts;
    gopts.max_entries = 16;
    ASSERT_OK(db_->CreateIndex(1, &ext_, gopts));
    gist_ = db_->GetIndex(1).value();
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }

  static std::string Word(Random* rng) {
    const size_t len = 3 + rng->Uniform(20);
    std::string s;
    for (size_t i = 0; i < len; i++) {
      s.push_back(static_cast<char>('a' + rng->Uniform(26)));
    }
    return s;
  }

  std::string path_;
  DatabaseOptions opts_;
  std::unique_ptr<Database> db_;
  StringExtension ext_;
  Gist* gist_ = nullptr;
};

TEST_F(StringIndexTest, InsertSearchDeleteWords) {
  Random rng(2026);
  std::set<std::string> words;
  Transaction* txn = db_->Begin();
  while (words.size() < 500) {
    const std::string w = Word(&rng);
    if (!words.insert(w).second) continue;
    ASSERT_OK(db_->InsertRecord(txn, gist_, StringExtension::MakeKey(w), w)
                  .status());
  }
  ASSERT_OK(db_->Commit(txn));
  ASSERT_OK(gist_->CheckInvariants());

  // Every word findable by equality.
  Transaction* t2 = db_->Begin();
  for (const std::string& w : words) {
    std::vector<SearchResult> results;
    ASSERT_OK(gist_->Search(t2, StringExtension::MakeKey(w), &results));
    bool found = false;
    for (const auto& r : results) {
      if (StringExtension::Lo(r.key) == w) found = true;
    }
    EXPECT_TRUE(found) << w;
  }
  ASSERT_OK(db_->Commit(t2));
}

TEST_F(StringIndexTest, PrefixScanReturnsExactlyPrefixedWords) {
  Transaction* txn = db_->Begin();
  const std::vector<std::string> words = {
      "car", "card", "care", "cargo", "carp", "cat", "dog", "cab", "ca"};
  std::vector<Rid> rids;
  for (const auto& w : words) {
    auto rid = db_->InsertRecord(txn, gist_, StringExtension::MakeKey(w), w);
    ASSERT_OK(rid.status());
    rids.push_back(rid.value());
  }
  ASSERT_OK(db_->Commit(txn));
  Transaction* t2 = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(gist_->Search(t2, StringExtension::MakePrefixQuery("car"),
                          &results));
  std::set<std::string> found;
  for (const auto& r : results) found.insert(StringExtension::Lo(r.key));
  EXPECT_EQ(found, (std::set<std::string>{"car", "card", "care", "cargo",
                                          "carp"}));
  ASSERT_OK(db_->Commit(t2));
}

TEST_F(StringIndexTest, SurvivesCrashRecovery) {
  Random rng(7);
  std::set<std::string> committed;
  Transaction* txn = db_->Begin();
  while (committed.size() < 300) {
    const std::string w = Word(&rng);
    if (!committed.insert(w).second) continue;
    ASSERT_OK(db_->InsertRecord(txn, gist_, StringExtension::MakeKey(w), w)
                  .status());
  }
  ASSERT_OK(db_->Commit(txn));
  // A loser with more words, flushed but uncommitted.
  Transaction* loser = db_->Begin();
  for (int i = 0; i < 50; i++) {
    const std::string w = "LOSER" + std::to_string(i);
    ASSERT_OK(db_->InsertRecord(loser, gist_, StringExtension::MakeKey(w), w)
                  .status());
  }
  ASSERT_OK(db_->log()->FlushAll());
  db_->SimulateCrash();
  db_.reset();
  auto db_or = Database::Open(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  GistOptions gopts;
  gopts.max_entries = 16;
  ASSERT_OK(db_->OpenIndex(1, &ext_, gopts));
  gist_ = db_->GetIndex(1).value();
  ASSERT_OK(gist_->CheckInvariants());
  Transaction* t2 = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(gist_->Search(
      t2, StringExtension::MakeRange(std::string(1, '\0'), "~~~~~~~~~~~~"),
      &results));
  EXPECT_EQ(results.size(), committed.size());
  for (const auto& r : results) {
    EXPECT_TRUE(committed.count(StringExtension::Lo(r.key)));
  }
  ASSERT_OK(db_->Commit(t2));
}

TEST_F(StringIndexTest, UniqueStringsEnforced) {
  Transaction* t1 = db_->Begin();
  ASSERT_OK(db_->InsertRecord(t1, gist_, StringExtension::MakeKey("alice"),
                              "v", true)
                .status());
  ASSERT_OK(db_->Commit(t1));
  Transaction* t2 = db_->Begin();
  EXPECT_TRUE(db_->InsertRecord(t2, gist_,
                                StringExtension::MakeKey("alice"), "v", true)
                  .status()
                  .IsDuplicateKey());
  EXPECT_OK(db_->InsertRecord(t2, gist_, StringExtension::MakeKey("alicia"),
                              "v", true)
                .status());
  ASSERT_OK(db_->Commit(t2));
}

}  // namespace
}  // namespace gistcr
