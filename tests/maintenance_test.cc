#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "access/btree_extension.h"
#include "tests/test_util.h"

namespace gistcr {
namespace {

using namespace std::chrono_literals;

class MaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("maint");
    RemoveDbFiles(path_);
    opts_.path = path_;
    opts_.buffer_pool_pages = 512;
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }
  std::string path_;
  DatabaseOptions opts_;
  std::unique_ptr<Database> db_;
  BtreeExtension ext_;
};

TEST_F(MaintenanceTest, ManualPassCheckpointsAndCollects) {
  auto db_or = Database::Create(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  GistOptions gopts;
  gopts.max_entries = 8;
  ASSERT_OK(db_->CreateIndex(1, &ext_, gopts));
  Gist* gist = db_->GetIndex(1).value();

  Transaction* t1 = db_->Begin();
  std::vector<Rid> rids;
  for (int64_t k = 0; k < 100; k++) {
    auto rid = db_->InsertRecord(t1, gist, BtreeExtension::MakeKey(k), "v");
    ASSERT_OK(rid.status());
    rids.push_back(rid.value());
  }
  ASSERT_OK(db_->Commit(t1));
  Transaction* t2 = db_->Begin();
  for (int64_t k = 0; k < 100; k++) {
    ASSERT_OK(db_->DeleteRecord(t2, gist, BtreeExtension::MakeKey(k),
                                rids[static_cast<size_t>(k)]));
  }
  ASSERT_OK(db_->Commit(t2));

  ASSERT_OK(db_->RunMaintenancePass());
  EXPECT_GT(gist->stats().gc_removed.load(), 0u);
  // The checkpoint landed in the master pointer.
  FILE* f = fopen((path_ + ".ckpt").c_str(), "r");
  ASSERT_NE(f, nullptr);
  fclose(f);
  ASSERT_OK(gist->CheckInvariants());
}

TEST_F(MaintenanceTest, BackgroundDaemonCollectsWhileRunning) {
  opts_.maintenance_interval_ms = 30;
  auto db_or = Database::Create(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  GistOptions gopts;
  gopts.max_entries = 8;
  ASSERT_OK(db_->CreateIndex(1, &ext_, gopts));
  Gist* gist = db_->GetIndex(1).value();

  // Churn for a while: insert + delete; the daemon collects in parallel.
  for (int round = 0; round < 8; round++) {
    Transaction* txn = db_->Begin(IsolationLevel::kReadCommitted);
    std::vector<Rid> rids;
    for (int64_t k = 0; k < 50; k++) {
      const int64_t key = round * 1000 + k;
      auto rid =
          db_->InsertRecord(txn, gist, BtreeExtension::MakeKey(key), "v");
      ASSERT_OK(rid.status());
      rids.push_back(rid.value());
    }
    Status st = db_->Commit(txn);
    ASSERT_OK(st);
    Transaction* del = db_->Begin(IsolationLevel::kReadCommitted);
    for (int64_t k = 0; k < 50; k++) {
      const int64_t key = round * 1000 + k;
      ASSERT_OK(db_->DeleteRecord(del, gist, BtreeExtension::MakeKey(key),
                                  rids[static_cast<size_t>(k)]));
    }
    ASSERT_OK(db_->Commit(del));
    std::this_thread::sleep_for(40ms);
  }
  std::this_thread::sleep_for(100ms);
  EXPECT_GT(gist->stats().gc_removed.load(), 0u);
  ASSERT_OK(gist->CheckInvariants());
  // Clean teardown stops the daemon (no hang, no use-after-free).
  db_.reset();
}

TEST_F(MaintenanceTest, WalSpaceReclaimedAfterCheckpoint) {
  opts_.sync_commit = false;
  auto db_or = Database::Create(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  ASSERT_OK(db_->CreateIndex(1, &ext_));
  Gist* gist = db_->GetIndex(1).value();

  Transaction* txn = db_->Begin();
  for (int64_t k = 0; k < 5000; k++) {
    ASSERT_OK(db_->InsertRecord(txn, gist, BtreeExtension::MakeKey(k), "v")
                  .status());
  }
  ASSERT_OK(db_->Commit(txn));
  ASSERT_OK(db_->FlushAll());
  const Lsn before = db_->log()->reclaimed_before();
  ASSERT_OK(db_->Checkpoint());
  const Lsn after = db_->log()->reclaimed_before();
  // Hole punching is best effort; when supported, the horizon advances.
  if (after > before) {
    EXPECT_GT(after, 1u << 20);  // >1 MiB of log reclaimed
  }
  // Recovery still works from the reclaimed log.
  db_->SimulateCrash();
  db_.reset();
  auto re_or = Database::Open(opts_);
  ASSERT_OK(re_or.status());
  db_ = re_or.MoveValue();
  ASSERT_OK(db_->OpenIndex(1, &ext_));
  gist = db_->GetIndex(1).value();
  ASSERT_OK(gist->CheckInvariants());
  Transaction* t2 = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(
      gist->Search(t2, BtreeExtension::MakeRange(0, 5000), &results));
  EXPECT_EQ(results.size(), 5000u);
  ASSERT_OK(db_->Commit(t2));
}

TEST_F(MaintenanceTest, ReclaimKeepsActiveTxnBackchain) {
  opts_.sync_commit = false;
  auto db_or = Database::Create(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  ASSERT_OK(db_->CreateIndex(1, &ext_));
  Gist* gist = db_->GetIndex(1).value();

  // A long-running transaction starts early...
  Transaction* old_txn = db_->Begin();
  ASSERT_OK(db_->InsertRecord(old_txn, gist, BtreeExtension::MakeKey(-1),
                              "old")
                .status());
  // ...lots of committed traffic follows, then a checkpoint.
  Transaction* bulk = db_->Begin();
  for (int64_t k = 0; k < 3000; k++) {
    ASSERT_OK(db_->InsertRecord(bulk, gist, BtreeExtension::MakeKey(k), "v")
                  .status());
  }
  ASSERT_OK(db_->Commit(bulk));
  ASSERT_OK(db_->FlushAll());
  ASSERT_OK(db_->Checkpoint());
  // The old transaction can still roll back: its backchain (below the
  // checkpoint) must not have been reclaimed.
  ASSERT_OK(db_->Abort(old_txn));
  Transaction* t2 = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(gist->Search(t2, BtreeExtension::MakeRange(-10, -1), &results));
  EXPECT_TRUE(results.empty());
  ASSERT_OK(db_->Commit(t2));
}

}  // namespace
}  // namespace gistcr
