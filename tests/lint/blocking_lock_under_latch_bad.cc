// Negative fixture for gistcr_lint rule `blocking-lock-under-latch`: a
// blocking lock-manager wait while holding a page latch deadlocks
// undetectably (the lock manager's waits-for graph cannot see latches;
// paper section 4 and DESIGN.md section 10). Only the try-only
// `/*wait=*/false` form is permitted under a latch.
//
// Not compiled; consumed by `gistcr_lint.py --self-test tests/lint`.

#include "storage/buffer_pool.h"
#include "txn/lock_manager.h"

namespace gistcr {

Status BadBlockingLockUnderLatch(BufferPool* pool, LockManager* locks,
                                 Transaction* txn, PageId pid) {
  auto f = pool->Fetch(pid);
  GISTCR_RETURN_IF_ERROR(f.status());
  PageGuard g(pool, f.value());
  g.WLatch();
  // VIOLATION: blocking acquire while `g` is latched.
  GISTCR_RETURN_IF_ERROR(locks->Lock(txn->id(),
                                     LockName{LockSpace::kNode, pid},
                                     LockMode::kExclusive, /*wait=*/true));
  g.Unlatch();
  return Status::OK();
}

}  // namespace gistcr
