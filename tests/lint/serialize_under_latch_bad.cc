// Negative fixture for gistcr_lint rule `serialize-under-latch`: building
// a metrics/slow-op/trace dump while a PageGuard latch is held stretches a
// nanosecond-scale node hold to a stats-scrape-scale one and takes the
// observability mutexes under a latch, inverting the intended ordering.
//
// Not compiled; consumed by `gistcr_lint.py --self-test tests/lint`.

#include "db/database.h"
#include "storage/buffer_pool.h"

namespace gistcr {

Status BadDumpUnderLatch(Database* db, BufferPool* pool, PageId a,
                         std::string* out) {
  auto fa = pool->Fetch(a);
  GISTCR_RETURN_IF_ERROR(fa.status());
  PageGuard g(pool, fa.value());
  g.WLatch();
  // VIOLATION: full metrics serialization while `g` is write-latched.
  *out = db->DumpMetricsPrometheus();
  g.Unlatch();
  return Status::OK();
}

}  // namespace gistcr
