// Negative fixture for gistcr_lint rule `sync-under-mutex`: an fdatasync
// (or DiskManager::Sync) while holding a Mutex from common/mutex.h parks
// every thread that needs that mutex behind a multi-millisecond disk
// flush — the exact pathology the dedicated WAL flusher exists to remove
// (DESIGN.md section 11). The fix is always the flusher's shape: publish
// state, Unlock(), sync, Lock(), re-publish.
//
// Not compiled; consumed by `gistcr_lint.py --self-test tests/lint`.

#include <unistd.h>

#include "common/mutex.h"
#include "storage/disk_manager.h"

namespace gistcr {

Status BadSyncUnderMutex(Mutex& mu, int fd) {
  MutexLock l(mu);
  // VIOLATION: fdatasync with `l` held.
  if (::fdatasync(fd) != 0) {
    return Status::IOError("fdatasync");
  }
  return Status::OK();
}

Status BadDiskSyncUnderMutex(Mutex& mu, DiskManager* disk) {
  MutexLock l(mu);
  // VIOLATION: DiskManager::Sync (itself an fdatasync) with `l` held.
  return disk->Sync();
}

Status OkSyncInUnlockedWindow(Mutex& mu, int fd) {
  MutexLock l(mu);
  l.Unlock();
  // Fine: the mutex is released across the sync (the flusher pattern).
  const int rc = ::fdatasync(fd);
  l.Lock();
  if (rc != 0) return Status::IOError("fdatasync");
  return Status::OK();
}

}  // namespace gistcr
