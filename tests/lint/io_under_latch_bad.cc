// Negative fixture for gistcr_lint rule `io-under-latch`: fetching a page
// through the buffer pool while a PageGuard latch is held can block on
// disk I/O (or on eviction) with the latch pinned — the protocol requires
// dropping or try-latching first (DESIGN.md section 10).
//
// Not compiled; consumed by `gistcr_lint.py --self-test tests/lint`.

#include "storage/buffer_pool.h"

namespace gistcr {

Status BadFetchUnderLatch(BufferPool* pool, PageId a, PageId b) {
  auto fa = pool->Fetch(a);
  GISTCR_RETURN_IF_ERROR(fa.status());
  PageGuard g(pool, fa.value());
  g.WLatch();
  // VIOLATION: blocking fetch while `g` is write-latched.
  auto fb = pool->Fetch(b);
  GISTCR_RETURN_IF_ERROR(fb.status());
  g.Unlatch();
  return Status::OK();
}

}  // namespace gistcr
