// Negative fixture for gistcr_lint rule `unchecked-status`: a
// Status-returning call whose result is dropped on the floor silently
// swallows I/O, corruption, and deadlock errors. Assign it, test it,
// GISTCR_RETURN_IF_ERROR it, or cast to (void) with a comment.
//
// Not compiled; consumed by `gistcr_lint.py --self-test tests/lint`.

#include "db/database.h"

namespace gistcr {

void BadIgnoredStatus(Database* db) {
  // VIOLATION: Database::Checkpoint() returns Status; the result is
  // silently discarded.
  db->Checkpoint();
}

}  // namespace gistcr
