// Positive fixture: the compliant counterparts of every rule in
// gistcr_lint, including both escape hatches. Must lint clean.
//
// Not compiled; consumed by `gistcr_lint.py --self-test tests/lint`.

// gistcr-lint: allow-file(raw-latch-primitive)
// (File-level hatch exercised: the std::mutex below would otherwise fire.)

#include <mutex>

#include "db/database.h"
#include "gist/node.h"
#include "storage/buffer_pool.h"
#include "txn/lock_manager.h"

namespace gistcr {

std::mutex g_suppressed_by_file_allow;

Status GoodLatchDiscipline(BufferPool* pool, LockManager* locks,
                           Transaction* txn, PageId a, PageId b, Lsn* out) {
  // Drop the latch before the next blocking fetch: compliant.
  auto fa = pool->Fetch(a);
  GISTCR_RETURN_IF_ERROR(fa.status());
  PageGuard g(pool, fa.value());
  g.WLatch();
  NodeView node(g.view().data());
  *out = node.nsn();  // latched: nsn read is fine
  g.Unlatch();
  auto fb = pool->Fetch(b);
  GISTCR_RETURN_IF_ERROR(fb.status());

  // Try-only lock under a latch: compliant (cannot block).
  g.WLatch();
  const Status try_lock = locks->Lock(txn->id(),
                                      LockName{LockSpace::kNode, b},
                                      LockMode::kExclusive, /*wait=*/false);
  if (!try_lock.ok() && !try_lock.IsBusy()) return try_lock;

  // Line-level hatch exercised: a deliberate fetch under latch with a
  // documented justification. gistcr-lint: allow(io-under-latch)
  auto fc = pool->Fetch(a);
  GISTCR_RETURN_IF_ERROR(fc.status());
  g.Unlatch();

  // Status result consumed explicitly: compliant.
  (void)pool->FlushAll();
  return Status::OK();
}

}  // namespace gistcr
