// Negative fixture for gistcr_lint rule `lock-order`: the PR-7 allocator
// ABBA shape. Allocate takes the allocator mutex and then latches a
// bitmap page; Free latches the bitmap page first and then takes the
// mutex. Each function is locally consistent — only the merged
// acquisition graph shows the cycle (alloc mutex -> bitmap latch ->
// alloc mutex), which is exactly the deadlock the original bug produced
// under eviction pressure.
//
// Not compiled; consumed by `gistcr_lint.py --self-test tests/lint`.
//
// gistcr-lint: page-latch-class(bitmap)

#include "storage/buffer_pool.h"

namespace gistcr {

class BadAllocator {
 public:
  Status Allocate(PageId pid);
  Status Free(PageId pid);

 private:
  BufferPool* pool_ = nullptr;
  Mutex mu_{GISTCR_LOCK_RANK(kAllocator, "fixture.alloc.mu")};
};

Status BadAllocator::Allocate(PageId pid) {
  MutexLock l(mu_);
  auto frame_or = pool_->Fetch(pid);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard guard(pool_, frame_or.value());
  guard.WLatch();  // mutex -> bitmap latch
  guard.Unlatch();
  return Status::OK();
}

Status BadAllocator::Free(PageId pid) {
  auto frame_or = pool_->Fetch(pid);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard guard(pool_, frame_or.value());
  guard.WLatch();
  // VIOLATION: bitmap latch -> mutex closes the cycle against Allocate.
  MutexLock l(mu_);
  guard.Unlatch();
  return Status::OK();
}

}  // namespace gistcr
