// Negative fixture for gistcr_lint rule `nsn-outside-node`: reading the
// NSN or rightlink of a node without holding its latch races concurrent
// splits — the B-link invariant (nsn, rightlink) is only stable under a
// latch (paper section 3; DESIGN.md section 10). Access is allowed only
// in node.h/node.cc or with a latch held in scope.
//
// Not compiled; consumed by `gistcr_lint.py --self-test tests/lint`.

#include "gist/node.h"
#include "storage/buffer_pool.h"

namespace gistcr {

Status BadUnlatchedNsnRead(BufferPool* pool, PageId pid, Lsn* out) {
  auto f = pool->Fetch(pid);
  GISTCR_RETURN_IF_ERROR(f.status());
  PageGuard g(pool, f.value());
  NodeView node(g.view().data());
  // VIOLATION: no latch has been taken on `g` yet.
  *out = node.nsn();
  if (node.rightlink() != kInvalidPageId) {  // VIOLATION: same, rightlink
    *out = kInvalidLsn;
  }
  return Status::OK();
}

}  // namespace gistcr
