// Negative fixture for gistcr_lint rule `latch-inside-optimistic-section`:
// a blocking latch acquisition while an OptimisticReadScope is live breaks
// the optimistic read protocol's promise that readers never wait on
// writers (DESIGN.md section 13) and can deadlock against a writer that
// is spinning on the reader's pin. The only legal moves inside the scope
// are version-validated snapshot copies, try-acquires, and lock-manager
// waits (which hold no latch). To latch, fall back: let the scope end,
// then take the latched path.
//
// Not compiled; consumed by `gistcr_lint.py --self-test tests/lint`.

#include "common/optimistic.h"
#include "gist/node.h"
#include "storage/buffer_pool.h"

namespace gistcr {

Status BadLatchInsideOptimisticSection(BufferPool* pool, PageId pid,
                                       uint16_t* out) {
  auto f = pool->Fetch(pid);
  GISTCR_RETURN_IF_ERROR(f.status());
  PageGuard g(pool, f.value());
  OptimisticReadScope optimistic;
  // VIOLATION: blocking latch acquisition inside the optimistic section.
  g.RLatch();
  NodeView node(g.view().data());
  *out = node.count();
  g.Unlatch();
  return Status::OK();
}

}  // namespace gistcr
