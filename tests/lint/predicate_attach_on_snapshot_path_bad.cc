// Negative fixture for gistcr_lint rule `predicate-attach-on-snapshot-path`:
// the MVCC snapshot read path (the distinctly named Snapshot* functions)
// promises read-only transactions that traverse it touch zero lock-manager
// state — no predicate attach, no signal lock, no record S locks
// (DESIGN.md section 14.3). Attaching a predicate here would re-introduce
// exactly the shared-state mutation the subsystem exists to avoid, and a
// blocking lock call could park a reader that writers are not required to
// wake. The lock.acquires counter catches this dynamically in
// SnapshotIsolationTest; this rule catches it at lint time.
//
// Not compiled; consumed by `gistcr_lint.py --self-test tests/lint`.

#include "gist/gist.h"

namespace gistcr {

Status Gist::ProcessStackEntrySnapshot(Transaction* txn, PageId page,
                                       std::vector<SearchResult>* out) {
  // VIOLATION: predicate attach on the snapshot read path.
  GISTCR_RETURN_IF_ERROR(ctx_.preds->Attach(txn->id(), page));
  // VIOLATION: signal lock (a lock-manager S lock) on the snapshot path.
  GISTCR_RETURN_IF_ERROR(SignalLock(txn, page));
  // VIOLATION: blocking record lock on the snapshot path.
  GISTCR_RETURN_IF_ERROR(
      ctx_.locks->Lock(txn, LockId::Record(1), LockMode::kShared));
  return Status::OK();
}

}  // namespace gistcr
