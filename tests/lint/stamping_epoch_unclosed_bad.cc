// Negative fixture for gistcr_lint rule `stamping-epoch-unclosed`: a
// commit path that opens the MVCC stamping epoch and then returns through
// GISTCR_RETURN_IF_ERROR without StampCommit/CancelStamping. The leaked
// epoch blocks snapshot-stamp publication forever (DESIGN.md section
// 14.6) — every error path between BeginStamping and StampCommit must
// cancel.
//
// Not compiled; consumed by `gistcr_lint.py --self-test tests/lint`.

#include "mvcc/mvcc_manager.h"
#include "txn/transaction_manager.h"

namespace gistcr {

Status BadCommit(MvccManager* mvcc, LogManager* log, Transaction* txn) {
  LogRecord commit;
  commit.type = LogRecordType::kCommit;
  mvcc->BeginStamping(txn->id());
  // VIOLATION: an append failure returns with the epoch still open; the
  // correct shape cancels the epoch before propagating the error.
  GISTCR_RETURN_IF_ERROR(log->Append(&commit));
  mvcc->StampCommit(txn->id(), commit.lsn);
  return Status::OK();
}

}  // namespace gistcr
