// Negative fixture for gistcr_lint rule `wal-append-after-unlatch`: a
// redo-logged page mutation whose WAL record is appended *after* the page
// latch was dropped. The append assigns the LSN that must be stamped into
// the page under the same latch hold; releasing first lets a concurrent
// writer interleave, leaving the page image and its page_lsn describing
// different histories after a crash.
//
// Not compiled; consumed by `gistcr_lint.py --self-test tests/lint`.

#include "storage/buffer_pool.h"
#include "txn/transaction_manager.h"

namespace gistcr {

Status BadDeferredAppend(BufferPool* pool, TransactionManager* txns,
                         Transaction* txn, PageId pid) {
  auto frame_or = pool->Fetch(pid);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard guard(pool, frame_or.value());
  guard.WLatch();
  LogRecord rec;
  rec.type = LogRecordType::kEntryInsert;
  guard.Drop();
  // VIOLATION: the mutation record is appended latch-free after the
  // guard was dropped; the page can change under a second writer before
  // this LSN exists.
  Status st = txns->AppendTxnLog(txn, &rec);
  return st;
}

}  // namespace gistcr
