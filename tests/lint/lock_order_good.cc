// Positive fixture for the lock-hierarchy analyzer: the corrected PR-7
// allocator shape. Both paths take the allocator mutex *before* latching
// the bitmap page, so the merged graph has a single edge direction and
// every acquisition runs up the declared ranks. Must produce zero
// findings under every rule.
//
// Not compiled; consumed by `gistcr_lint.py --self-test tests/lint`.
//
// gistcr-lint: page-latch-class(bitmap)

#include "storage/buffer_pool.h"

namespace gistcr {

class GoodAllocator {
 public:
  Status Allocate(PageId pid);
  Status Free(PageId pid);

 private:
  BufferPool* pool_ = nullptr;
  Mutex mu_{GISTCR_LOCK_RANK(kAllocator, "fixture.good.alloc.mu")};
};

Status GoodAllocator::Allocate(PageId pid) {
  MutexLock l(mu_);
  auto frame_or = pool_->Fetch(pid);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard guard(pool_, frame_or.value());
  guard.WLatch();  // mutex -> bitmap latch, the declared direction
  guard.Unlatch();
  return Status::OK();
}

Status GoodAllocator::Free(PageId pid) {
  MutexLock l(mu_);  // same direction as Allocate: no cycle
  auto frame_or = pool_->Fetch(pid);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard guard(pool_, frame_or.value());
  guard.WLatch();
  guard.Unlatch();
  return Status::OK();
}

}  // namespace gistcr
