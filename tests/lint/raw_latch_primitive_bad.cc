// Negative fixture for gistcr_lint rule `raw-latch-primitive`: bare
// std::mutex / pthread primitives bypass the annotated wrappers in
// common/mutex.h, so Clang's thread-safety analysis (and the GUARDED_BY
// annotations) cannot see them.
//
// Not compiled; consumed by `gistcr_lint.py --self-test tests/lint`.

#include <mutex>

namespace gistcr {

class BadRawMutex {
 public:
  void Touch() {
    std::lock_guard<std::mutex> l(mu_);  // VIOLATION: raw lock_guard
    ++n_;
  }

  void TouchManually() {
    mu_.lock();  // VIOLATION: manual lock()
    ++n_;
    mu_.unlock();  // VIOLATION: manual unlock()
  }

 private:
  std::mutex mu_;  // VIOLATION: raw std::mutex member
  int n_ = 0;
};

}  // namespace gistcr
