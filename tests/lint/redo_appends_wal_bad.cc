// Negative fixture for gistcr_lint rule `redo-appends-wal`: a redo
// applier that appends a WAL record of its own. Redo replays logged
// history behind the page-LSN test; an append inside it would assign
// fresh LSNs during recovery, corrupting the instant-restart plan
// ordering and making a second recovery of the same log non-idempotent
// (DESIGN.md section 16.6). Only undo may log — CLRs, from Undo*-named
// functions.
//
// Not compiled; consumed by `gistcr_lint.py --self-test tests/lint`.

#include "storage/buffer_pool.h"
#include "wal/log_manager.h"

namespace gistcr {

Status RedoEntryInsert(BufferPool* pool, LogManager* log,
                       const LogRecord& rec, PageId pid) {
  auto frame_or = pool->Fetch(pid);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard guard(pool, frame_or.value());
  guard.WLatch();
  if (guard.view().page_lsn() >= rec.lsn) return Status::OK();
  // ... apply the logged image ...
  guard.view().set_page_lsn(rec.lsn);
  guard.frame()->MarkDirty(rec.lsn);
  // VIOLATION: redo creating new history — a fresh record (and LSN)
  // appended from inside a redo applier.
  LogRecord note;
  note.type = LogRecordType::kEntryInsert;
  Status st = log->Append(&note);
  return st;
}

}  // namespace gistcr
