// Negative fixture for gistcr_lint rule `lock-rank-inversion`: the WAL
// mutex (kWal, rank 700) is the innermost protocol lock; taking the
// allocator-ranked mutex (kAllocator, rank 420) underneath it runs the
// declared hierarchy backwards even though no second function ever closes
// a cycle.
//
// Not compiled; consumed by `gistcr_lint.py --self-test tests/lint`.

#include "common/mutex.h"

namespace gistcr {

class BadRankNesting {
 public:
  void Log();

 private:
  Mutex wal_mu_{GISTCR_LOCK_RANK(kWal, "fixture.wal.mu")};
  Mutex low_mu_{GISTCR_LOCK_RANK(kAllocator, "fixture.low.mu")};
};

void BadRankNesting::Log() {
  MutexLock l(wal_mu_);
  // VIOLATION: rank 420 acquired while rank 700 is held.
  MutexLock inner(low_mu_);
}

}  // namespace gistcr
