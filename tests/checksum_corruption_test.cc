/// Page-checksum and torn-write detection (ISSUE 2 satellites): every page
/// carries a CRC32 stamped by DiskManager::WritePage and verified on
/// ReadPage; corruption surfaces as Status::Corruption plus the
/// storage.torn_pages_detected counter, never as a crash or silent
/// wrong answer.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "access/btree_extension.h"
#include "db/database.h"
#include "db/meta_page.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/fault_injector.h"
#include "storage/page.h"
#include "tests/test_util.h"
#include "util/coding.h"

namespace gistcr {
namespace {

// XORs one byte of a file in place — bit rot applied behind the
// DiskManager's back.
void FlipByteOnDisk(const std::string& file, long offset) {
  FILE* f = std::fopen(file.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  ASSERT_NE(std::fputc(c ^ 0xFF, f), EOF);
  ASSERT_EQ(std::fclose(f), 0);
}

class ChecksumTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (kFaultInjectionCompiled) FaultInjector::Global().Reset();
    path_ = TestPath("cksum") + ".db";
    std::remove(path_.c_str());
    disk_.AttachMetrics(&metrics_);
    ASSERT_OK(disk_.Open(path_));
  }
  void TearDown() override {
    if (kFaultInjectionCompiled) FaultInjector::Global().Reset();
    disk_.Close();
    std::remove(path_.c_str());
  }

  uint64_t TornDetected() {
    return metrics_.GetCounter("storage.torn_pages_detected")->value();
  }

  std::string path_;
  obs::MetricsRegistry metrics_;
  DiskManager disk_;
};

TEST_F(ChecksumTest, FlippedBodyByteIsCorruption) {
  char out[kPageSize], in[kPageSize];
  std::memset(out, 0xAB, sizeof(out));
  ASSERT_OK(disk_.WritePage(3, out));
  ASSERT_OK(disk_.ReadPage(3, in));  // intact round-trip first
  EXPECT_EQ(TornDetected(), 0u);

  FlipByteOnDisk(path_, 3L * kPageSize + 1000);
  Status st = disk_.ReadPage(3, in);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_EQ(TornDetected(), 1u);
}

TEST_F(ChecksumTest, FlippedHeaderByteIsCorruption) {
  char out[kPageSize], in[kPageSize];
  std::memset(out, 0x11, sizeof(out));
  ASSERT_OK(disk_.WritePage(2, out));
  // Corrupt the page_lsn field: header bytes are covered by the CRC too.
  FlipByteOnDisk(path_, 2L * kPageSize + 4);
  Status st = disk_.ReadPage(2, in);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_EQ(TornDetected(), 1u);
}

TEST_F(ChecksumTest, AllZeroPageIsValidFresh) {
  // An all-zero on-disk page (filesystem hole, zero-torn write, or space
  // past the last checksummed write) reads back without a corruption error
  // even though its stored checksum (0) does not match the CRC of zeroes:
  // "fresh page" is a legal state, and WAL redo reconstructs its contents
  // (page_lsn 0 loses every page-LSN test).
  FILE* f = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  char zero[kPageSize] = {0};
  ASSERT_EQ(std::fseek(f, 5L * kPageSize, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(zero, 1, kPageSize, f), kPageSize);
  ASSERT_EQ(std::fclose(f), 0);

  char in[kPageSize];
  std::memset(in, 0xFF, sizeof(in));
  ASSERT_OK(disk_.ReadPage(5, in));
  for (size_t i = 0; i < kPageSize; i++) ASSERT_EQ(in[i], 0);
  EXPECT_EQ(TornDetected(), 0u);
}

TEST_F(ChecksumTest, TornFirstHalfWriteDetected) {
  if (!kFaultInjectionCompiled) GTEST_SKIP();
  char out[kPageSize], in[kPageSize];
  std::memset(out, 0x22, sizeof(out));
  ASSERT_OK(disk_.WritePage(4, out));  // full image on disk

  std::memset(out, 0x33, sizeof(out));
  FaultInjector::Global().ArmTornWrite(FaultInjector::TornMode::kFirstHalfOnly);
  ASSERT_OK(disk_.WritePage(4, out));  // only the first half lands
  Status st = disk_.ReadPage(4, in);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_EQ(TornDetected(), 1u);
}

TEST_F(ChecksumTest, TornLastHalfWriteDetected) {
  if (!kFaultInjectionCompiled) GTEST_SKIP();
  char out[kPageSize], in[kPageSize];
  std::memset(out, 0x44, sizeof(out));
  ASSERT_OK(disk_.WritePage(4, out));

  std::memset(out, 0x55, sizeof(out));
  FaultInjector::Global().ArmTornWrite(FaultInjector::TornMode::kLastHalfOnly);
  ASSERT_OK(disk_.WritePage(4, out));
  Status st = disk_.ReadPage(4, in);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_EQ(TornDetected(), 1u);
}

TEST_F(ChecksumTest, ZeroTornWriteReadsAsFresh) {
  if (!kFaultInjectionCompiled) GTEST_SKIP();
  // The kZeroPage tear is checksum-invisible by design: all-zero equals a
  // fresh page, and the lost write is exactly what WAL redo repairs.
  char out[kPageSize], in[kPageSize];
  std::memset(out, 0x66, sizeof(out));
  FaultInjector::Global().ArmTornWrite(FaultInjector::TornMode::kZeroPage);
  ASSERT_OK(disk_.WritePage(6, out));
  ASSERT_OK(disk_.ReadPage(6, in));
  for (size_t i = 0; i < kPageSize; i++) ASSERT_EQ(in[i], 0);
  EXPECT_EQ(TornDetected(), 0u);
}

TEST_F(ChecksumTest, TransientFaultsAbsorbedByRetry) {
  if (!kFaultInjectionCompiled) GTEST_SKIP();
  // Bursts of 1..2 synthetic failures stay under the 4-attempt budget:
  // every operation still succeeds, and the retries are counted.
  FaultInjector::Global().ConfigureTransientFaults(/*seed=*/99,
                                                   /*read_prob=*/0.5,
                                                   /*write_prob=*/0.5,
                                                   /*max_burst=*/2);
  char out[kPageSize], in[kPageSize];
  std::memset(out, 0x77, sizeof(out));
  for (PageId p = 1; p <= 16; p++) {
    ASSERT_OK(disk_.WritePage(p, out));
    ASSERT_OK(disk_.ReadPage(p, in));
  }
  FaultInjector::Global().Reset();
  EXPECT_GT(metrics_.GetCounter("storage.io_retries")->value(), 0u);
  EXPECT_EQ(TornDetected(), 0u);
}

TEST_F(ChecksumTest, LongBurstsExhaustRetryBudget) {
  if (!kFaultInjectionCompiled) GTEST_SKIP();
  // With bursts of up to 8, some operations draw >= 4 consecutive failures
  // and must surface IOError instead of retrying forever. Seeded, so the
  // split between absorbed and surfaced is reproducible.
  FaultInjector::Global().ConfigureTransientFaults(/*seed=*/7,
                                                   /*read_prob=*/0.0,
                                                   /*write_prob=*/1.0,
                                                   /*max_burst=*/8);
  char out[kPageSize];
  std::memset(out, 0x88, sizeof(out));
  int failed = 0, succeeded = 0;
  for (PageId p = 1; p <= 24; p++) {
    Status st = disk_.WritePage(p, out);
    if (st.ok()) {
      succeeded++;
    } else {
      EXPECT_TRUE(st.IsIOError()) << st.ToString();
      failed++;
    }
  }
  FaultInjector::Global().Reset();
  EXPECT_GT(failed, 0);
  EXPECT_GT(succeeded, 0);
  EXPECT_GT(metrics_.GetCounter("storage.io_retries")->value(), 0u);
}

TEST_F(ChecksumTest, InjectedSyncFailureSurfaces) {
  if (!kFaultInjectionCompiled) GTEST_SKIP();
  FaultInjector::Global().FailNextSyncs(1);
  Status st = disk_.Sync();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_OK(disk_.Sync());  // one-shot
}

// End-to-end: corrupt a cold GiST node on disk, reopen, and assert the
// corruption surfaces as Status::Corruption from Search — not a crash,
// not a silently wrong result — with the metric incremented.
TEST(ChecksumDatabaseTest, ColdPageCorruptionSurfacesOnSearch) {
  if (kFaultInjectionCompiled) FaultInjector::Global().Reset();
  static BtreeExtension ext;
  const std::string path = TestPath("colddb");
  RemoveDbFiles(path);

  DatabaseOptions dopts;
  dopts.path = path;
  {
    auto db_or = Database::Create(dopts);
    ASSERT_OK(db_or.status());
    std::unique_ptr<Database> db = db_or.MoveValue();
    GistOptions gopts;
    gopts.index_id = 1;
    gopts.max_entries = 5;
    ASSERT_OK(db->CreateIndex(1, &ext, gopts));
    auto gist_or = db->GetIndex(1);
    ASSERT_OK(gist_or.status());
    for (int t = 0; t < 10; t++) {
      Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
      for (int i = 0; i < 10; i++) {
        const int64_t k = t * 10 + i;
        ASSERT_OK(db->InsertRecord(txn, gist_or.value(),
                                   BtreeExtension::MakeKey(k),
                                   "v" + std::to_string(k))
                      .status());
      }
      ASSERT_OK(db->Commit(txn));
    }
    // Flush THEN checkpoint: the checkpoint's dirty-page table is empty, so
    // the reopen below redoes nothing and every data page stays cold until
    // the search fetches it.
    ASSERT_OK(db->FlushAll());
    ASSERT_OK(db->Checkpoint());
  }

  // Find a non-root GiST node and flip one byte in its entry area.
  const std::string data_file = path + ".db";
  PageId root = kInvalidPageId;
  PageId victim = kInvalidPageId;
  {
    FILE* f = std::fopen(data_file.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[kPageSize];
    ASSERT_EQ(std::fread(buf, 1, kPageSize, f), kPageSize);
    root = MetaView(buf).GetRoot(1);
    ASSERT_NE(root, kInvalidPageId);
    for (PageId p = 1; victim == kInvalidPageId; p++) {
      if (std::fread(buf, 1, kPageSize, f) != kPageSize) break;
      if (PageView(buf).page_type() == PageType::kGistNode && p != root) {
        victim = p;
      }
    }
    std::fclose(f);
  }
  ASSERT_NE(victim, kInvalidPageId) << "workload built a single-node tree";
  FlipByteOnDisk(data_file, static_cast<long>(victim) * kPageSize + 100);

  // Reopen: recovery touches no data pages, so Open succeeds; the search
  // is what faults the corrupt node in.
  auto db_or = Database::Open(dopts);
  ASSERT_OK(db_or.status());
  std::unique_ptr<Database> db = db_or.MoveValue();
  GistOptions gopts;
  gopts.index_id = 1;
  gopts.max_entries = 5;
  ASSERT_OK(db->OpenIndex(1, &ext, gopts));
  auto gist_or = db->GetIndex(1);
  ASSERT_OK(gist_or.status());

  Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
  std::vector<SearchResult> results;
  Status st = gist_or.value()->Search(
      txn, BtreeExtension::MakeRange(0, 1 << 20), &results);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_GE(db->metrics()->GetCounter("storage.torn_pages_detected")->value(),
            1u);
  RemoveDbFiles(path);
}

}  // namespace
}  // namespace gistcr
