#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "txn/transaction_manager.h"

namespace gistcr {
namespace {

/// Transaction-manager unit tests against a real log but a stub undo
/// applier that records which LSNs it was asked to undo.
class RecordingApplier : public UndoApplier {
 public:
  Status UndoRecord(Transaction* txn, const LogRecord& rec) override {
    undone.push_back(rec.lsn);
    // Emit a CLR like the real applier so the backchain stays correct.
    LogRecord clr;
    clr.type = LogRecordType::kClr;
    clr.undo_next = rec.prev_lsn;
    return txns->AppendTxnLog(txn, &clr);
  }
  TransactionManager* txns = nullptr;
  std::vector<Lsn> undone;
};

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("txn") + ".wal";
    std::remove(path_.c_str());
    ASSERT_OK(log_.Open(path_));
    txns_ = std::make_unique<TransactionManager>(&log_, &locks_, &preds_);
    applier_.txns = txns_.get();
    txns_->SetUndoApplier(&applier_);
  }
  void TearDown() override {
    txns_.reset();
    log_.Close();
    std::remove(path_.c_str());
  }

  Lsn AppendUpdate(Transaction* txn) {
    LogRecord rec;
    rec.type = LogRecordType::kHeapInsert;
    rec.payload = "update";
    EXPECT_OK(txns_->AppendTxnLog(txn, &rec));
    return rec.lsn;
  }

  std::string path_;
  LogManager log_;
  LockManager locks_;
  PredicateManager preds_;
  std::unique_ptr<TransactionManager> txns_;
  RecordingApplier applier_;
};

TEST_F(TxnTest, BeginAssignsIdsAndSelfLock) {
  Transaction* a = txns_->Begin();
  Transaction* b = txns_->Begin();
  EXPECT_LT(a->id(), b->id());
  EXPECT_TRUE(locks_.Holds(a->id(), LockName{LockSpace::kTxn, a->id()},
                           LockMode::kExclusive));
  EXPECT_TRUE(txns_->IsActive(a->id()));
  ASSERT_OK(txns_->Commit(a));
  ASSERT_OK(txns_->Commit(b));
}

TEST_F(TxnTest, CommitForcesLogAndReleases) {
  Transaction* t = txns_->Begin();
  const TxnId id = t->id();
  AppendUpdate(t);
  ASSERT_OK(txns_->Commit(t));
  EXPECT_FALSE(txns_->IsActive(id));
  EXPECT_FALSE(locks_.Holds(id, LockName{LockSpace::kTxn, id},
                            LockMode::kExclusive));
  // Everything through the commit record is durable.
  EXPECT_GE(log_.durable_lsn(), LogManager::kFirstLsn);
}

TEST_F(TxnTest, AbortUndoesInReverseOrder) {
  Transaction* t = txns_->Begin();
  const Lsn a = AppendUpdate(t);
  const Lsn b = AppendUpdate(t);
  const Lsn c = AppendUpdate(t);
  ASSERT_OK(txns_->Abort(t));
  ASSERT_EQ(applier_.undone.size(), 3u);
  EXPECT_EQ(applier_.undone[0], c);
  EXPECT_EQ(applier_.undone[1], b);
  EXPECT_EQ(applier_.undone[2], a);
}

TEST_F(TxnTest, NtaSkippedDuringUndo) {
  Transaction* t = txns_->Begin();
  const Lsn before = AppendUpdate(t);
  const Lsn nta_begin = txns_->NtaBegin(t);
  AppendUpdate(t);  // structure modification inside the NTA
  AppendUpdate(t);
  ASSERT_OK(txns_->NtaEnd(t, nta_begin));
  const Lsn after = AppendUpdate(t);
  ASSERT_OK(txns_->Abort(t));
  // Only the two content updates are undone; the NTA body is skipped.
  ASSERT_EQ(applier_.undone.size(), 2u);
  EXPECT_EQ(applier_.undone[0], after);
  EXPECT_EQ(applier_.undone[1], before);
}

TEST_F(TxnTest, IncompleteNtaIsUndone) {
  Transaction* t = txns_->Begin();
  txns_->NtaBegin(t);
  const Lsn inside = AppendUpdate(t);  // NTA never closed (crashed op)
  ASSERT_OK(txns_->Abort(t));
  ASSERT_EQ(applier_.undone.size(), 1u);
  EXPECT_EQ(applier_.undone[0], inside);
}

TEST_F(TxnTest, SavepointPartialUndoKeepsTxnActive) {
  Transaction* t = txns_->Begin();
  AppendUpdate(t);
  ASSERT_OK(txns_->Savepoint(t, "sp"));
  const Lsn x = AppendUpdate(t);
  const Lsn y = AppendUpdate(t);
  ASSERT_OK(txns_->RollbackToSavepoint(t, "sp"));
  EXPECT_EQ(applier_.undone, (std::vector<Lsn>{y, x}));
  EXPECT_TRUE(txns_->IsActive(t->id()));
  // Rolling back to the same savepoint again is a no-op (work already
  // compensated; the CLR chain jumps it).
  applier_.undone.clear();
  ASSERT_OK(txns_->RollbackToSavepoint(t, "sp"));
  EXPECT_TRUE(applier_.undone.empty());
  ASSERT_OK(txns_->Commit(t));
}

TEST_F(TxnTest, UnknownSavepointIsNotFound) {
  Transaction* t = txns_->Begin();
  EXPECT_TRUE(txns_->RollbackToSavepoint(t, "nope").IsNotFound());
  ASSERT_OK(txns_->Commit(t));
}

TEST_F(TxnTest, OldestActiveFirstLsnTracksBackchains) {
  EXPECT_EQ(txns_->OldestActiveFirstLsn(), kInvalidLsn);
  Transaction* a = txns_->Begin();
  Transaction* b = txns_->Begin();
  const Lsn fa = a->first_lsn();
  ASSERT_OK(txns_->Commit(a));
  EXPECT_GT(txns_->OldestActiveFirstLsn(), fa);  // b began later
  ASSERT_OK(txns_->Commit(b));
  EXPECT_EQ(txns_->OldestActiveFirstLsn(), kInvalidLsn);
}

TEST_F(TxnTest, ActiveTxnsSnapshot) {
  Transaction* a = txns_->Begin();
  AppendUpdate(a);
  auto att = txns_->ActiveTxns();
  ASSERT_EQ(att.size(), 1u);
  EXPECT_EQ(att[0].first, a->id());
  EXPECT_EQ(att[0].second, a->last_lsn());
  ASSERT_OK(txns_->Commit(a));
}

TEST_F(TxnTest, ResurrectedLoserUndoesFromLastLsn) {
  Transaction* t = txns_->Begin();
  const TxnId id = t->id();
  const Lsn a = AppendUpdate(t);
  const Lsn b = AppendUpdate(t);
  // Pretend a crash: forget the txn object, then resurrect and abort.
  Transaction* z = txns_->ResurrectForUndo(id, b);
  ASSERT_OK(txns_->Abort(z));
  EXPECT_EQ(applier_.undone, (std::vector<Lsn>{b, a}));
}

TEST_F(TxnTest, RedoOnlyRecordsSkippedInUndo) {
  Transaction* t = txns_->Begin();
  LogRecord peu;
  peu.type = LogRecordType::kParentEntryUpdate;
  ASSERT_OK(txns_->AppendTxnLog(t, &peu));
  const Lsn upd = AppendUpdate(t);
  ASSERT_OK(txns_->Abort(t));
  // Parent-Entry-Update is redo-only (Table 1): applier sees only the
  // content update... actually the applier *is* called for it; the real
  // applier no-ops it. The stub records everything undoable it was given.
  // TransactionManager routes kParentEntryUpdate to the applier too, which
  // in production returns immediately. Here we assert order only.
  ASSERT_GE(applier_.undone.size(), 1u);
  EXPECT_EQ(applier_.undone[0], upd);
}

}  // namespace
}  // namespace gistcr
