#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "access/btree_extension.h"
#include "client/client.h"
#include "db/database.h"
#include "server/server.h"
#include "tests/test_util.h"

namespace gistcr {
namespace {

/// Satellite: a client that vanishes mid-transaction must not leave locks,
/// predicates, or an active transaction behind — the server aborts the
/// orphan when it reaps the dead connection.
class ServerDisconnectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("disconnect");
    RemoveDbFiles(path_);
    opts_.path = path_;
    opts_.buffer_pool_pages = 512;
    auto db_or = Database::Create(opts_);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    ASSERT_OK(db_->CreateIndex(1, &bt_));
    server_ = std::make_unique<Server>(db_.get(), ServerOptions{});
    ASSERT_OK(server_->Start());
  }

  void TearDown() override {
    if (server_) ASSERT_OK(server_->Shutdown());
    server_.reset();
    db_.reset();
    RemoveDbFiles(path_);
  }

  Client MakeClient() {
    ClientOptions copts;
    copts.port = server_->port();
    copts.auto_reconnect = false;
    return Client(copts);
  }

  /// The reap is asynchronous (EOF lands on the event loop); poll until
  /// the session count and transaction table reflect it.
  void WaitForAbortReap() {
    for (int i = 0; i < 500; i++) {
      if (server_->active_sessions() == 0 && db_->txns()->ActiveTxns().empty())
        return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "server never reaped the dead session: "
           << server_->active_sessions() << " sessions, "
           << db_->txns()->ActiveTxns().size() << " txns";
  }

  std::string path_;
  DatabaseOptions opts_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
  BtreeExtension bt_;
};

TEST_F(ServerDisconnectTest, DisconnectMidTxnAbortsAndReleasesLocks) {
  {
    Client a = MakeClient();
    ASSERT_OK(a.Begin().status());
    for (int i = 0; i < 20; i++) {
      ASSERT_OK(a.Insert(1, BtreeExtension::MakeKey(i), "orphan").status());
    }
    EXPECT_TRUE(a.txn_open());
    a.Close();  // hard close: no COMMIT, no ABORT, just EOF
  }
  WaitForAbortReap();

  // Client B must see none of A's writes...
  Client b = MakeClient();
  auto hits = b.Search(1, BtreeExtension::MakeRange(0, 19));
  ASSERT_OK(hits.status());
  EXPECT_TRUE(hits.value().empty());

  // ...and must be able to take the same keys immediately — if A's X locks
  // or predicates leaked, these inserts would block past the deadline and
  // the whole test would hang or time out.
  for (int i = 0; i < 20; i++) {
    ASSERT_OK(b.Insert(1, BtreeExtension::MakeKey(i), "fresh").status());
  }
  auto after = b.Search(1, BtreeExtension::MakeRange(0, 19),
                        /*with_records=*/true);
  ASSERT_OK(after.status());
  ASSERT_EQ(after.value().size(), 20u);
  for (const auto& r : after.value()) EXPECT_EQ(r.record, "fresh");

  ASSERT_OK(db_->GetIndex(1).value()->CheckInvariants());
}

TEST_F(ServerDisconnectTest, DisconnectCounterAndGaugeTrack) {
  Client a = MakeClient();
  ASSERT_OK(a.Begin().status());
  ASSERT_OK(a.Insert(1, BtreeExtension::MakeKey(500), "x").status());
  a.Close();
  WaitForAbortReap();

  Client b = MakeClient();
  auto stats = b.Stats();
  ASSERT_OK(stats.status());
  // The abort-on-disconnect path must be visible in the metrics dump.
  EXPECT_NE(stats.value().find("server.disconnect_aborts"), std::string::npos);
}

TEST_F(ServerDisconnectTest, ManyAbruptDisconnectsLeakNothing) {
  for (int round = 0; round < 10; round++) {
    Client c = MakeClient();
    ASSERT_OK(c.Begin().status());
    ASSERT_OK(
        c.Insert(1, BtreeExtension::MakeKey(1000 + round), "tmp").status());
    c.Close();
  }
  WaitForAbortReap();
  EXPECT_TRUE(db_->txns()->ActiveTxns().empty());

  Client b = MakeClient();
  auto hits = b.Search(1, BtreeExtension::MakeRange(1000, 1009));
  ASSERT_OK(hits.status());
  EXPECT_TRUE(hits.value().empty());
}

}  // namespace
}  // namespace gistcr
