#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "access/btree_extension.h"
#include "client/client.h"
#include "db/database.h"
#include "net/socket.h"
#include "net/wire.h"
#include "server/server.h"
#include "tests/test_util.h"
#include "util/coding.h"
#include "util/random.h"

namespace gistcr {
namespace {

/// Satellite: hostile bytes on the wire. Whatever arrives — garbage,
/// truncated frames, oversized lengths, bad opcodes, bogus payloads — the
/// server must answer with a typed error or close the connection cleanly,
/// never crash (these tests run under ASan in CI) and never leak a
/// transaction.
class ProtocolFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("fuzz");
    RemoveDbFiles(path_);
    opts_.path = path_;
    opts_.buffer_pool_pages = 512;
    auto db_or = Database::Create(opts_);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    ASSERT_OK(db_->CreateIndex(1, &bt_));
    server_ = std::make_unique<Server>(db_.get(), ServerOptions{});
    ASSERT_OK(server_->Start());
  }

  void TearDown() override {
    // The server must still shut down gracefully after all the abuse.
    if (server_) ASSERT_OK(server_->Shutdown());
    server_.reset();
    EXPECT_TRUE(db_->txns()->ActiveTxns().empty())
        << "fuzzing leaked a transaction";
    db_.reset();
    RemoveDbFiles(path_);
  }

  /// Non-blocking raw socket so the drain loops below cannot hang.
  net::Socket RawConnect() {
    net::Socket s;
    EXPECT_OK(net::TcpConnect("127.0.0.1", server_->port(), &s));
    if (s.valid()) EXPECT_OK(net::SetNonBlocking(s.fd(), true));
    return s;
  }

  /// Sends raw bytes, then reads until EOF or a short idle timeout. The
  /// assertion is implicit: the server side must survive (checked by the
  /// sanity probe and TearDown).
  void SendRaw(const std::string& bytes) {
    net::Socket s = RawConnect();
    ASSERT_TRUE(s.valid());
    (void)net::WriteFully(s.fd(), bytes.data(), bytes.size());
    char buf[4096];
    bool got_any = false;
    for (int i = 0; i < 20; i++) {
      size_t n = 0;
      Status st = net::ReadSome(s.fd(), buf, sizeof(buf), &n);
      if (!st.ok()) {
        if (!st.IsBusy()) return;  // reset by peer — a clean outcome
        if (got_any) return;       // reply read; nothing more expected
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      if (n == 0) return;  // orderly EOF
      got_any = true;
    }
  }

  /// A well-formed client must still get service after each attack.
  void SanityProbe() {
    ClientOptions copts;
    copts.port = server_->port();
    Client c(copts);
    ASSERT_OK(c.Ping());
    ASSERT_OK(c.Insert(1, BtreeExtension::MakeKey(1), "alive").status());
  }

  std::string Header(uint32_t len, uint8_t magic, uint8_t version, uint8_t op,
                     uint8_t flags, uint64_t id) {
    std::string out;
    PutFixed32(&out, len);
    out.push_back(static_cast<char>(magic));
    out.push_back(static_cast<char>(version));
    out.push_back(static_cast<char>(op));
    out.push_back(static_cast<char>(flags));
    PutFixed64(&out, id);
    return out;
  }

  std::string path_;
  DatabaseOptions opts_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
  BtreeExtension bt_;
};

TEST_F(ProtocolFuzzTest, PureGarbage) {
  Random rnd(20260806);
  for (int i = 0; i < 20; i++) {
    std::string junk;
    const size_t n = 1 + rnd.Uniform(2000);
    for (size_t j = 0; j < n; j++) {
      junk.push_back(static_cast<char>(rnd.Uniform(256)));
    }
    SendRaw(junk);
  }
  SanityProbe();
}

TEST_F(ProtocolFuzzTest, TruncatedFrameThenEof) {
  // A valid INSERT frame cut off at every possible byte boundary.
  std::string payload;
  PutFixed32(&payload, 1);
  PutLengthPrefixed(&payload, BtreeExtension::MakeKey(9));
  PutLengthPrefixed(&payload, "rec");
  PutFixed16(&payload, 0);
  std::string frame =
      Header(net::kHeaderLen + static_cast<uint32_t>(payload.size()),
             net::kMagic, net::kVersion,
             static_cast<uint8_t>(net::Opcode::kInsert), 0, 7) +
      payload;
  for (size_t cut = 1; cut < frame.size(); cut += 3) {
    SendRaw(frame.substr(0, cut));
  }
  SanityProbe();
}

TEST_F(ProtocolFuzzTest, OversizedLength) {
  // Announces far more than kMaxRequestPayload; server must reject from
  // the header alone without allocating the announced size.
  SendRaw(Header(0xFFFFFFFFu, net::kMagic, net::kVersion,
                 static_cast<uint8_t>(net::Opcode::kInsert), 0, 1));
  SendRaw(Header(net::kHeaderLen + net::kMaxRequestPayload + 1, net::kMagic,
                 net::kVersion, static_cast<uint8_t>(net::Opcode::kPing), 0,
                 2));
  SanityProbe();
}

TEST_F(ProtocolFuzzTest, UndersizedLength) {
  SendRaw(Header(0, net::kMagic, net::kVersion, 0x01, 0, 1));
  SendRaw(Header(net::kHeaderLen - 1, net::kMagic, net::kVersion, 0x01, 0, 1));
  SanityProbe();
}

TEST_F(ProtocolFuzzTest, BadMagicAndVersion) {
  SendRaw(Header(net::kHeaderLen, 0x00, net::kVersion,
                 static_cast<uint8_t>(net::Opcode::kPing), 0, 1));
  SendRaw(Header(net::kHeaderLen, net::kMagic, 200,
                 static_cast<uint8_t>(net::Opcode::kPing), 0, 1));
  SanityProbe();
}

TEST_F(ProtocolFuzzTest, UnknownAndResponseOpcodes) {
  for (uint8_t op : {0x00, 0x0A, 0x40, 0x7F, 0x81, 0x82, 0x83, 0xFF}) {
    SendRaw(Header(net::kHeaderLen, net::kMagic, net::kVersion, op, 0, op));
  }
  SanityProbe();
}

TEST_F(ProtocolFuzzTest, MalformedPayloads) {
  Random rnd(42);
  // Every request opcode with random payload bytes of assorted sizes —
  // decode must fail typed, not crash, and the txn-state machine must not
  // wedge (BEGIN garbage may open a txn; the final EOF aborts it).
  for (uint8_t op = 0x01; op <= 0x09; op++) {
    for (size_t size : {size_t{1}, size_t{3}, size_t{17}, size_t{300}}) {
      std::string payload;
      for (size_t j = 0; j < size; j++) {
        payload.push_back(static_cast<char>(rnd.Uniform(256)));
      }
      SendRaw(Header(net::kHeaderLen + static_cast<uint32_t>(payload.size()),
                     net::kMagic, net::kVersion, op, 0, op) +
              payload);
    }
  }
  SanityProbe();
}

TEST_F(ProtocolFuzzTest, StatsAndInspectDecodeFuzz) {
  // Targeted fuzz of the new admin opcodes (ISSUE 6 satellite): every
  // format/kind byte value plus oversized payloads. Well-formed selectors
  // must produce a reply frame; everything else a typed error — never a
  // crash, never a wedged session.
  for (int v = 0; v < 256; v += 17) {
    std::string one(1, static_cast<char>(v));
    SendRaw(Header(net::kHeaderLen + 1, net::kMagic, net::kVersion,
                   static_cast<uint8_t>(net::Opcode::kStats), 0, 1) +
            one);
    SendRaw(Header(net::kHeaderLen + 1, net::kMagic, net::kVersion,
                   static_cast<uint8_t>(net::Opcode::kInspect), 0, 2) +
            one);
  }
  // Empty inspect payload and multi-byte selectors.
  SendRaw(Header(net::kHeaderLen, net::kMagic, net::kVersion,
                 static_cast<uint8_t>(net::Opcode::kInspect), 0, 3));
  for (size_t size : {size_t{2}, size_t{9}, size_t{200}}) {
    std::string payload(size, '\x01');
    SendRaw(Header(net::kHeaderLen + static_cast<uint32_t>(size), net::kMagic,
                   net::kVersion, static_cast<uint8_t>(net::Opcode::kStats),
                   0, 4) +
            payload);
    SendRaw(Header(net::kHeaderLen + static_cast<uint32_t>(size), net::kMagic,
                   net::kVersion, static_cast<uint8_t>(net::Opcode::kInspect),
                   0, 5) +
            payload);
  }
  SanityProbe();
}

TEST_F(ProtocolFuzzTest, TruncatedLengthPrefixInsidePayload) {
  // INSERT whose inner length-prefixed key claims more bytes than the
  // frame carries — the Decoder must bounds-check, not read past the end.
  std::string payload;
  PutFixed32(&payload, 1);            // index id
  PutFixed32(&payload, 0xFFFFFF00u);  // key length prefix: absurd
  payload.append("abc");
  SendRaw(Header(net::kHeaderLen + static_cast<uint32_t>(payload.size()),
                 net::kMagic, net::kVersion,
                 static_cast<uint8_t>(net::Opcode::kInsert), 0, 3) +
          payload);
  SanityProbe();
}

TEST_F(ProtocolFuzzTest, GarbageAfterOpenTransaction) {
  // Open a real transaction first, then poison the same connection; the
  // fatal framing error must abort that transaction on teardown.
  net::Socket s = RawConnect();
  ASSERT_TRUE(s.valid());

  std::string begin_payload;
  PutFixed16(&begin_payload, 1);  // repeatable read
  std::string begin =
      Header(net::kHeaderLen + 2, net::kMagic, net::kVersion,
             static_cast<uint8_t>(net::Opcode::kBegin), 0, 1) +
      begin_payload;
  ASSERT_OK(net::WriteFully(s.fd(), begin.data(), begin.size()));

  // Wait for the OK so the txn is definitely open server-side.
  net::FrameReader reader(net::kMaxResponsePayload);
  char buf[1024];
  net::Frame reply;
  bool got = false;
  for (int i = 0; i < 200 && !got; i++) {
    size_t n = 0;
    Status st = net::ReadSome(s.fd(), buf, sizeof(buf), &n);
    if (!st.ok()) {
      ASSERT_TRUE(st.IsBusy()) << st.ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    ASSERT_GT(n, 0u);
    reader.Feed(buf, n);
    got = (reader.Next(&reply) == net::FrameReader::Result::kFrame);
  }
  ASSERT_TRUE(got);
  ASSERT_EQ(reply.opcode, net::Opcode::kOk);
  ASSERT_FALSE(db_->txns()->ActiveTxns().empty());

  std::string junk(64, '\xEE');
  ASSERT_OK(net::WriteFully(s.fd(), junk.data(), junk.size()));
  s.Close();

  for (int i = 0; i < 500; i++) {
    if (db_->txns()->ActiveTxns().empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(db_->txns()->ActiveTxns().empty())
      << "poisoned connection leaked its transaction";
  SanityProbe();
}

TEST_F(ProtocolFuzzTest, RandomFrameFuzz) {
  Random rnd(7777);
  for (int i = 0; i < 60; i++) {
    // Mostly-valid headers with randomized fields and payloads: the
    // nastiest inputs are the nearly-correct ones.
    const uint8_t magic = rnd.OneIn(4) ? static_cast<uint8_t>(rnd.Uniform(256))
                                       : net::kMagic;
    const uint8_t version = rnd.OneIn(4)
                                ? static_cast<uint8_t>(rnd.Uniform(256))
                                : net::kVersion;
    const uint8_t op = static_cast<uint8_t>(rnd.Uniform(256));
    const size_t payload_len = rnd.Uniform(512);
    std::string payload;
    for (size_t j = 0; j < payload_len; j++) {
      payload.push_back(static_cast<char>(rnd.Uniform(256)));
    }
    uint32_t len = net::kHeaderLen + static_cast<uint32_t>(payload_len);
    if (rnd.OneIn(8)) len = rnd.Uniform(0xFFFFFFFFu);  // lie about length
    SendRaw(Header(len, magic, version, op,
                   static_cast<uint8_t>(rnd.Uniform(256)), i) +
            payload);
  }
  SanityProbe();
  EXPECT_TRUE(db_->txns()->ActiveTxns().empty());
}

}  // namespace
}  // namespace gistcr
