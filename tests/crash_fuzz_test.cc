#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <set>

#include "access/btree_extension.h"
#include "storage/fault_injector.h"
#include "tests/crash_harness.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "wal/log_manager.h"

namespace gistcr {
namespace {

// GISTCR_LONG_TESTS (nightly CI) runs the same tests at soak sizes: a
// longer workload, every log-record boundary as a cut point, and more
// crash-point fuzz iterations.
#if GISTCR_LONG_TESTS
constexpr int kFuzzTxns = 120;
constexpr uint64_t kCutStride = 1;
constexpr int kPointFuzzIters = 40;
#else
constexpr int kFuzzTxns = 40;
constexpr uint64_t kCutStride = 7;
constexpr int kPointFuzzIters = 10;
#endif

/// Crash-point fuzzing: run a workload with everything forced to the log,
/// remember each transaction's commit LSN, then truncate the durable log
/// at many different record boundaries and recover. At every cut point:
///   - recovery must succeed and the tree must satisfy its invariants;
///   - a transaction's keys are visible iff its Commit record survived
///     the cut (atomicity + durability at arbitrary crash points).
/// This exercises redo/undo of every record type the workload produced,
/// including splits, root growth, GC and CLRs at partial cut points.
class CrashFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("fuzz");
    RemoveDbFiles(path_);
    opts_.path = path_;
    opts_.buffer_pool_pages = 512;
  }
  void TearDown() override { RemoveDbFiles(path_); }

  struct TxnOutcome {
    Lsn commit_lsn;             // kInvalidLsn: aborted or never committed
    std::vector<int64_t> keys;  // inserted by this txn
    std::vector<std::pair<int64_t, Rid>> deleted;  // deletes by this txn
  };

  std::string path_;
  DatabaseOptions opts_;
  BtreeExtension ext_;
};

TEST_F(CrashFuzzTest, EveryLogPrefixRecoversConsistently) {
  // ---- Phase 1: generate a workload and record per-txn commit LSNs ----
  std::vector<TxnOutcome> outcomes;
  std::vector<Lsn> record_lsns;  // candidate cut points
  {
    auto db_or = Database::Create(opts_);
    ASSERT_OK(db_or.status());
    auto db = db_or.MoveValue();
    GistOptions gopts;
    gopts.max_entries = 8;  // deep tree: plenty of structure records
    ASSERT_OK(db->CreateIndex(1, &ext_, gopts));
    Gist* gist = db->GetIndex(1).value();

    Random rng(555);
    std::map<int64_t, Rid> live;
    int64_t next_key = 0;
    for (int t = 0; t < kFuzzTxns; t++) {
      TxnOutcome out;
      out.commit_lsn = kInvalidLsn;
      Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
      const int ops = 3 + static_cast<int>(rng.Uniform(10));
      for (int i = 0; i < ops; i++) {
        if (!live.empty() && rng.OneIn(4)) {
          auto it = live.begin();
          std::advance(it, rng.Uniform(live.size()));
          ASSERT_OK(db->DeleteRecord(txn, gist,
                                     BtreeExtension::MakeKey(it->first),
                                     it->second));
          out.deleted.emplace_back(it->first, it->second);
          live.erase(it);
        } else {
          const int64_t k = next_key++;
          auto rid =
              db->InsertRecord(txn, gist, BtreeExtension::MakeKey(k), "v");
          ASSERT_OK(rid.status());
          out.keys.push_back(k);
          live[k] = rid.value();
        }
      }
      if (rng.OneIn(5)) {
        ASSERT_OK(db->Abort(txn));
        // Aborted: its deletes are rolled back, the records come back —
        // except records it inserted itself, which the rollback removes
        // (reinstate first, then erase own inserts).
        for (const auto& [k, rid] : out.deleted) live[k] = rid;
        for (int64_t k : out.keys) live.erase(k);
        out.keys.clear();
        out.deleted.clear();
      } else {
        ASSERT_OK(db->Commit(txn));
        out.commit_lsn = db->log()->durable_lsn();
      }
      outcomes.push_back(out);
      if (t == (kFuzzTxns * 5) / 8) {
        Transaction* gc = db->Begin(IsolationLevel::kReadCommitted);
        uint64_t r = 0, n = 0;
        ASSERT_OK(gist->GarbageCollect(gc, &r, &n));
        ASSERT_OK(db->Commit(gc));
      }
    }
    // Force only the LOG. Data pages must stay unflushed: flushing them
    // and then cutting the log below their page LSNs would fabricate a
    // state the WAL rule makes impossible (a data page on disk ahead of
    // the durable log). The buffer pool is large enough that nothing was
    // evicted, so the .db file holds only the formatted skeleton and every
    // cut is a state a real crash could produce.
    ASSERT_OK(db->log()->FlushAll());
    // Collect record boundaries for cut points.
    ASSERT_OK(db->log()->Scan(kInvalidLsn, [&](const LogRecord& rec) {
      record_lsns.push_back(rec.lsn + rec.SerializedSize());
      return true;
    }));
    db->SimulateCrash();  // discard volatile state; files stay
  }

  const std::string wal = path_ + ".wal";
  const std::string wal_backup = path_ + ".walbak";
  const std::string dbf = path_ + ".db";
  const std::string db_backup = path_ + ".dbbak";
  ASSERT_EQ(0, std::rename(wal.c_str(), wal_backup.c_str()));
  ASSERT_EQ(0, std::rename(dbf.c_str(), db_backup.c_str()));

  auto copy_file = [](const std::string& from, const std::string& to) {
    FILE* in = fopen(from.c_str(), "rb");
    FILE* out = fopen(to.c_str(), "wb");
    ASSERT_NE(in, nullptr);
    ASSERT_NE(out, nullptr);
    char buf[1 << 16];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), in)) > 0) fwrite(buf, 1, n, out);
    fclose(in);
    fclose(out);
  };

  // ---- Phase 2: recover from many prefixes of the log ----
  Random rng(99);
  std::vector<Lsn> cuts;
  for (size_t i = 0; i < record_lsns.size();
       i += (kCutStride == 1 ? 1 : 1 + rng.Uniform(kCutStride))) {
    cuts.push_back(record_lsns[i]);
  }
  cuts.push_back(record_lsns.back());

  for (Lsn cut : cuts) {
    copy_file(wal_backup, wal);
    copy_file(db_backup, dbf);
    ASSERT_EQ(0, truncate(wal.c_str(), static_cast<off_t>(cut)));
    std::remove((path_ + ".ckpt").c_str());

    auto db_or = Database::Open(opts_);
    ASSERT_OK(db_or.status());
    auto db = db_or.MoveValue();
    ASSERT_OK(db->WaitForRecovery());
    GistOptions gopts;
    gopts.max_entries = 8;
    ASSERT_OK(db->OpenIndex(1, &ext_, gopts));
    Gist* gist = db->GetIndex(1).value();
    Status inv = gist->CheckInvariants();
    ASSERT_TRUE(inv.ok()) << inv.ToString() << " (cut at " << cut << ")";

    // Visibility: keys of txns whose commit survived the cut are present;
    // keys of txns whose commit did not are absent (unless re-deleted by a
    // later committed txn that also survived).
    std::set<int64_t> expect;
    for (const auto& out : outcomes) {
      if (out.commit_lsn == kInvalidLsn || out.commit_lsn >= cut) continue;
      for (int64_t k : out.keys) expect.insert(k);
      for (const auto& [k, rid] : out.deleted) {
        (void)rid;
        expect.erase(k);
      }
    }
    Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
    std::vector<SearchResult> results;
    ASSERT_OK(gist->Search(
        txn, BtreeExtension::MakeRange(0, 1 << 20), &results));
    std::set<int64_t> found;
    for (const auto& r : results) found.insert(BtreeExtension::Lo(r.key));
    ASSERT_OK(db->Commit(txn));
    EXPECT_EQ(found, expect) << "cut at " << cut;
  }
  std::remove(wal_backup.c_str());
  std::remove(db_backup.c_str());
}

/// Randomized companion to the deterministic crash matrix: rotate through
/// a set of high-traffic crash points with random skip counts, kill a real
/// process at each, and verify recovery. Unlike the matrix, a skip count
/// past the end of the workload is fine — the child exits 0 and the
/// iteration just shrinks to a no-crash round trip.
TEST(CrashPointFuzzTest, RandomSkipsAcrossHotPoints) {
  if (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "built with GISTCR_FAULT_INJECTION=OFF";
  }
  constexpr const char* kPoints[] = {
      "insert.after_leaf_apply", "split.after_log_append",
      "wal.before_fsync",        "txn.commit.before_log_force",
      "delete.after_mark",
  };
  const std::string path = TestPath("pointfuzz");
  Random rng(2024);
  int crashed = 0;
  for (int iter = 0; iter < kPointFuzzIters; iter++) {
    RemoveDbFiles(path);
    const char* point = kPoints[iter % std::size(kPoints)];
    const int skip = static_cast<int>(rng.Uniform(12));
    crash::TortureOptions opt;
    opt.seed = 1000 + static_cast<uint64_t>(iter);
    opt.txns = 24;
    const int exit_code = crash::ForkTorture(path, point, skip, opt);
    ASSERT_TRUE(exit_code == 0 ||
                exit_code == FaultInjector::kCrashExitCode)
        << point << " skip=" << skip << " exited " << exit_code;
    if (exit_code == FaultInjector::kCrashExitCode) {
      crashed++;
      crash::VerifyFlightArtifact(path);
    }
    crash::RecoverAndVerify(path, opt);
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "at " << point << " skip=" << skip;
      break;
    }
  }
  EXPECT_GT(crashed, 0) << "no iteration ever reached its crash point";
  RemoveDbFiles(path);
}

}  // namespace
}  // namespace gistcr
