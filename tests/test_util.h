#ifndef GISTCR_TESTS_TEST_UTIL_H_
#define GISTCR_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "db/database.h"

namespace gistcr {

/// Unique temp path per test (files cleaned up on TearDown).
inline std::string TestPath(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string base = "/tmp/gistcr_test_";
  if (info != nullptr) {
    base += info->test_suite_name();
    base += "_";
    base += info->name();
  }
  for (char& c : base) {
    if (c == '/') c = '_';
  }
  return base + "_" + name;
}

inline void RemoveDbFiles(const std::string& path) {
  std::remove((path + ".db").c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".ckpt").c_str());
  std::remove((path + ".flight").c_str());
}

#define ASSERT_OK(expr)                                 \
  do {                                                  \
    ::gistcr::Status _st = (expr);                      \
    ASSERT_TRUE(_st.ok()) << _st.ToString();            \
  } while (0)

#define EXPECT_OK(expr)                                 \
  do {                                                  \
    ::gistcr::Status _st = (expr);                      \
    EXPECT_TRUE(_st.ok()) << _st.ToString();            \
  } while (0)

}  // namespace gistcr

#endif  // GISTCR_TESTS_TEST_UTIL_H_
