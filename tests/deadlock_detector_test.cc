// Unit tests for the runtime lock-order detector (common/deadlock_detector.h).
//
// The cycle tests are death tests: the detector's only reporting channel is
// a CHECK-style abort with both acquisition stacks, so each scenario runs in
// a forked child and the parent matches the report on stderr. All scenarios
// are single-threaded — the detector works off the cumulative acquisition
// graph, so taking A->B and then B->A from one thread is exactly as fatal
// as the interleaved two-thread deadlock it predicts.
//
// Scratch mutexes use LockRank::kScratch, the designated coupling-allowed
// test rank, so same-rank nesting is legal and ordering violations surface
// as graph cycles rather than rank-inversion failures. Every test leaks its
// mutexes: node identity in the detector graph is the object address, and a
// recycled stack slot would alias edges from an earlier test.

#include "common/deadlock_detector.h"

#include <gtest/gtest.h>

#include "common/lock_rank.h"
#include "common/mutex.h"

namespace gistcr {
namespace {

#if GISTCR_DEADLOCK_DETECTOR

Mutex* NewScratch(const char* name) {
  return new Mutex(LockRank::kScratch, name);  // leaked: stable graph identity
}

TEST(DeadlockDetectorTest, CorrectOrderIsQuiet) {
  Mutex* a = NewScratch("test.quiet.a");
  Mutex* b = NewScratch("test.quiet.b");
  for (int i = 0; i < 3; ++i) {
    MutexLock la(*a);
    MutexLock lb(*b);  // always a before b: consistent order, no report
  }
  SUCCEED();
}

TEST(DeadlockDetectorTest, HeldCountTracksScope) {
  Mutex* a = NewScratch("test.held.a");
  const size_t base = deadlock::HeldCount();
  {
    MutexLock l(*a);
    EXPECT_EQ(deadlock::HeldCount(), base + 1);
  }
  EXPECT_EQ(deadlock::HeldCount(), base);
}

TEST(DeadlockDetectorTest, NestingRecordsEdges) {
  Mutex* a = NewScratch("test.edge.a");
  Mutex* b = NewScratch("test.edge.b");
  const size_t before = deadlock::EdgeCount();
  MutexLock la(*a);
  MutexLock lb(*b);
  EXPECT_GT(deadlock::EdgeCount(), before);
}

TEST(DeadlockDetectorDeathTest, TwoLockCycleAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex* a = NewScratch("test.cycle2.a");
        Mutex* b = NewScratch("test.cycle2.b");
        {
          MutexLock la(*a);
          MutexLock lb(*b);  // records a -> b
        }
        MutexLock lb(*b);
        MutexLock la(*a);  // b -> a closes the cycle
      },
      "lock-order cycle");
}

TEST(DeadlockDetectorDeathTest, ThreeLockCycleAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex* a = NewScratch("test.cycle3.a");
        Mutex* b = NewScratch("test.cycle3.b");
        Mutex* c = NewScratch("test.cycle3.c");
        {
          MutexLock la(*a);
          MutexLock lb(*b);  // a -> b
        }
        {
          MutexLock lb(*b);
          MutexLock lc(*c);  // b -> c
        }
        MutexLock lc(*c);
        MutexLock la(*a);  // c -> a closes the three-edge cycle
      },
      "lock-order cycle");
}

TEST(DeadlockDetectorDeathTest, CycleReportNamesBothStacks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex* a = NewScratch("test.report.a");
        Mutex* b = NewScratch("test.report.b");
        {
          MutexLock la(*a);
          MutexLock lb(*b);
        }
        MutexLock lb(*b);
        MutexLock la(*a);
      },
      "conflicting hold.*test\\.report\\.a");
}

TEST(DeadlockDetectorDeathTest, RankInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex* hi = new Mutex(LockRank::kWal, "test.inv.wal");
        Mutex* lo = new Mutex(LockRank::kAllocator, "test.inv.alloc");
        MutexLock lh(*hi);
        MutexLock ll(*lo);  // 420 under 700: declared order violated
      },
      "lock rank inversion");
}

TEST(DeadlockDetectorDeathTest, SameRankWithoutCouplingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex* a = new Mutex(LockRank::kWal, "test.same.a");
        Mutex* b = new Mutex(LockRank::kWal, "test.same.b");
        MutexLock la(*a);
        MutexLock lb(*b);  // kWal is not a coupling rank
      },
      "same-rank acquisition");
}

TEST(DeadlockDetectorTest, TryLockIsExemptFromOrderChecks) {
  Mutex* hi = new Mutex(LockRank::kWal, "test.try.wal");
  Mutex* lo = new Mutex(LockRank::kAllocator, "test.try.alloc");
  MutexLock lh(*hi);
  // A try-acquire cannot block, so taking a lower rank this way is legal.
  ASSERT_TRUE(lo->try_lock());
  lo->unlock();
}

TEST(DeadlockDetectorTest, UnrankedMutexesAreInvisible) {
  Mutex* plain = new Mutex();
  const size_t base = deadlock::HeldCount();
  MutexLock l(*plain);
  EXPECT_EQ(deadlock::HeldCount(), base);
}

#else  // !GISTCR_DEADLOCK_DETECTOR

TEST(DeadlockDetectorTest, CompiledOut) {
  GTEST_SKIP() << "detector disabled in this build "
                  "(-DGISTCR_DEADLOCK_DETECTOR=ON to enable)";
}

#endif  // GISTCR_DEADLOCK_DETECTOR

}  // namespace
}  // namespace gistcr
