/// Instant restart (DESIGN.md section 16): the database opens for business
/// right after log analysis, redo happens per page (inline on first touch
/// or from the background drainer), and loser undo runs as ordinary
/// aborting transactions concurrent with new work. These tests pin the
/// three load-bearing properties:
///   1. the reopened database serves new transactions while recovery is
///      still draining, and the drained state matches the WAL oracle;
///   2. instant and offline recovery converge to byte-identical trees from
///      the same crash image;
///   3. a crash *during* instant recovery (inline redo, background drain,
///      concurrent undo) recovers idempotently — two further restarts
///      produce identical trees with no loser leakage.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "access/btree_extension.h"
#include "db/database.h"
#include "storage/fault_injector.h"
#include "tests/crash_harness.h"
#include "tests/test_util.h"

namespace gistcr {
namespace {

using crash::ChildDie;  // GISTCR_CHILD_OK expands to an unqualified call
using crash::ForkTorture;
using crash::TortureOptions;

int ForkAndWait(const std::function<void()>& child_body) {
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    child_body();
    std::_Exit(0);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

void CopyFile(const std::string& from, const std::string& to) {
  FILE* in = std::fopen(from.c_str(), "rb");
  ASSERT_NE(in, nullptr) << from;
  FILE* out = std::fopen(to.c_str(), "wb");
  ASSERT_NE(out, nullptr) << to;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    ASSERT_EQ(std::fwrite(buf, 1, n, out), n);
  }
  std::fclose(in);
  std::fclose(out);
}

/// Recovers the database at \p path in the requested mode, drains the
/// background phase, verifies invariants, and returns the sorted entry
/// dump. Ends with SimulateCrash so no destructor flush leaks volatile
/// state into a later recovery of the same files.
std::vector<IndexEntry> RecoverDump(const std::string& path, bool instant,
                                    uint16_t max_entries) {
  static BtreeExtension ext;
  DatabaseOptions dopts;
  dopts.path = path;
  dopts.instant_restart = instant;
  auto db_or = Database::Open(dopts);
  EXPECT_TRUE(db_or.ok()) << db_or.status().ToString();
  if (!db_or.ok()) return {};
  std::unique_ptr<Database> db = db_or.MoveValue();
  EXPECT_OK(db->WaitForRecovery());
  GistOptions gopts;
  gopts.index_id = 1;
  gopts.max_entries = max_entries;
  EXPECT_OK(db->OpenIndex(1, &ext, gopts));
  auto gist_or = db->GetIndex(1);
  EXPECT_TRUE(gist_or.ok());
  std::vector<IndexEntry> entries;
  EXPECT_OK(gist_or.value()->CheckInvariants());
  EXPECT_OK(gist_or.value()->DumpEntries(&entries));
  std::sort(entries.begin(), entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              return std::tie(a.key, a.value, a.del_txn) <
                     std::tie(b.key, b.value, b.del_txn);
            });
  db->SimulateCrash();
  return entries;
}

// ---------------------------------------------------------------------
// 1. Serve during recovery.
// ---------------------------------------------------------------------

TEST(InstantRestartTest, ServesNewWorkWhileRecoveryDrains) {
  if (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "built with GISTCR_FAULT_INJECTION=OFF";
  }
  const std::string path = TestPath("instant_serve");
  RemoveDbFiles(path);
  TortureOptions opt;
  ASSERT_EQ(ForkTorture(path, "txn.commit.before_log_force", 10, opt),
            FaultInjector::kCrashExitCode);
  crash::Oracle oracle;
  ASSERT_OK(crash::ComputeOracle(path, &oracle));

  static BtreeExtension ext;
  DatabaseOptions dopts;
  dopts.path = path;
  dopts.instant_restart = true;
  auto db_or = Database::Open(dopts);
  ASSERT_OK(db_or.status());
  std::unique_ptr<Database> db = db_or.MoveValue();
  GistOptions gopts;
  gopts.index_id = 1;
  gopts.max_entries = opt.max_entries;
  ASSERT_OK(db->OpenIndex(1, &ext, gopts));
  Gist* gist = db->GetIndex(1).value();

  // First commit BEFORE waiting for recovery: the whole point of instant
  // restart. The hybrid protocol orders us behind any loser that still
  // X-holds conflicting records; a fresh disjoint key conflicts with none.
  const int64_t fresh = 5'000'000;
  Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
  auto rid_or = db->InsertRecord(txn, gist, BtreeExtension::MakeKey(fresh),
                                 "fresh");
  ASSERT_OK(rid_or.status());
  ASSERT_OK(db->Commit(txn));

  // Drain progress is observable while (and after) recovery runs.
  auto view_or = db->InspectJson("recovery");
  ASSERT_OK(view_or.status());
  EXPECT_NE(view_or.value().find("\"instant_active\":"), std::string::npos);
  EXPECT_NE(view_or.value().find("\"pages_pending\":"), std::string::npos);

  ASSERT_OK(db->WaitForRecovery());
  ASSERT_OK(gist->CheckInvariants());

  // Drained state = WAL oracle + the transaction we ran mid-recovery.
  Transaction* reader = db->Begin(IsolationLevel::kReadCommitted);
  std::vector<SearchResult> results;
  ASSERT_OK(gist->Search(reader, BtreeExtension::MakeRange(0, 1 << 24),
                         &results));
  ASSERT_OK(db->Commit(reader));
  std::map<int64_t, uint64_t> found;
  for (const SearchResult& r : results) {
    found[BtreeExtension::Lo(r.key)] = r.rid.Pack();
  }
  crash::Oracle expect = oracle;
  expect.visible[fresh] = rid_or.value().Pack();
  EXPECT_EQ(found, expect.visible);

  // The instant machinery actually ran: something was redone through the
  // gate (inline or background), and the open-time gauge was stamped.
  const uint64_t inline_redos =
      db->metrics()->GetCounter("recovery.inline_redos")->value();
  const uint64_t background_redos =
      db->metrics()->GetCounter("recovery.background_redos")->value();
  EXPECT_GT(inline_redos + background_redos, 0u);
  RemoveDbFiles(path);
}

// ---------------------------------------------------------------------
// 2. Offline and instant recovery converge from the same crash image.
// ---------------------------------------------------------------------

class InstantOfflineEquivalenceTest
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(InstantOfflineEquivalenceTest, SameCrashImageSameTree) {
  if (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "built with GISTCR_FAULT_INJECTION=OFF";
  }
  const auto& [point, skip] = GetParam();
  const std::string path = TestPath("instant_equiv");
  RemoveDbFiles(path);
  TortureOptions opt;
  const int exit_code = ForkTorture(path, point, skip, opt);
  if (exit_code == 0) {
    RemoveDbFiles(path);
    GTEST_SKIP() << point << " did not fire under this workload";
  }
  ASSERT_EQ(exit_code, FaultInjector::kCrashExitCode);

  // Preserve the crash image: recovery mutates the files.
  CopyFile(path + ".db", path + ".bak.db");
  CopyFile(path + ".wal", path + ".bak.wal");

  std::vector<IndexEntry> instant =
      RecoverDump(path, /*instant=*/true, opt.max_entries);
  ASSERT_FALSE(instant.empty());

  CopyFile(path + ".bak.db", path + ".db");
  CopyFile(path + ".bak.wal", path + ".wal");

  std::vector<IndexEntry> offline =
      RecoverDump(path, /*instant=*/false, opt.max_entries);

  ASSERT_EQ(instant.size(), offline.size());
  for (size_t i = 0; i < instant.size(); i++) {
    EXPECT_EQ(instant[i].key, offline[i].key) << "entry " << i;
    EXPECT_EQ(instant[i].value, offline[i].value) << "entry " << i;
    EXPECT_EQ(instant[i].del_txn, offline[i].del_txn) << "entry " << i;
  }
  std::remove((path + ".bak.db").c_str());
  std::remove((path + ".bak.wal").c_str());
  RemoveDbFiles(path);
}

INSTANTIATE_TEST_SUITE_P(
    CrashShapes, InstantOfflineEquivalenceTest,
    ::testing::Values(std::make_pair("txn.commit.before_log_force", 10),
                      std::make_pair("split.after_log_append", 2),
                      std::make_pair("split.before_nta_commit", 1),
                      std::make_pair("ckpt.before_master_update", 0),
                      std::make_pair("wal.after_fsync", 8)),
    [](const ::testing::TestParamInfo<std::pair<const char*, int>>& info) {
      std::string name = info.param.first;
      name += "_skip" + std::to_string(info.param.second);
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// 3. Crash during instant recovery itself, then recover twice.
// ---------------------------------------------------------------------

/// Builds a database whose WAL ends with a guaranteed durable loser (its
/// updates flushed, its Commit not), with a checkpoint in the middle so
/// instant analysis exercises the heap-tail hint path.
[[noreturn]] void RunDurableLoserBuilder(const std::string& path) {
  static BtreeExtension ext;
  DatabaseOptions dopts;
  dopts.path = path;
  auto db_or = Database::Create(dopts);
  if (!db_or.ok()) crash::ChildDie("create", db_or.status());
  std::unique_ptr<Database> db = db_or.MoveValue();
  GistOptions gopts;
  gopts.index_id = 1;
  gopts.max_entries = 5;
  GISTCR_CHILD_OK("create index", db->CreateIndex(1, &ext, gopts));
  Gist* gist = db->GetIndex(1).value();

  int64_t key = 0;
  for (int t = 0; t < 24; t++) {
    Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
    for (int i = 0; i < 4; i++) {
      const int64_t k = key++;
      auto rid_or = db->InsertRecord(txn, gist, BtreeExtension::MakeKey(k),
                                     "v" + std::to_string(k));
      if (!rid_or.ok()) crash::ChildDie("insert", rid_or.status());
    }
    GISTCR_CHILD_OK("commit", db->Commit(txn));
    if (t == 12) GISTCR_CHILD_OK("checkpoint", db->Checkpoint());
  }

  Transaction* loser = db->Begin(IsolationLevel::kReadCommitted);
  for (int i = 0; i < 15; i++) {
    const int64_t k = key++;
    auto rid_or = db->InsertRecord(loser, gist, BtreeExtension::MakeKey(k),
                                   "v" + std::to_string(k));
    if (!rid_or.ok()) crash::ChildDie("loser insert", rid_or.status());
  }
  GISTCR_CHILD_OK("loser flush", db->log()->FlushAll());
  FaultInjector::Global().Reset();
  FaultInjector::Global().ArmCrashPoint("txn.commit.before_log_force", 0,
                                        FaultInjector::CrashAction::kExit);
  (void)db->Commit(loser);  // dies at the crash point
  std::_Exit(3);            // should be unreachable
}

/// Opens with instant restart and an instant.* crash point armed, then
/// waits for the background phase so the drain/undo points can fire.
[[noreturn]] void RunInstantRecoveryCrashChild(const std::string& path,
                                               const char* point, int skip) {
  FaultInjector::Global().Reset();
  FaultInjector::Global().ArmCrashPoint(point, skip,
                                        FaultInjector::CrashAction::kExit);
  DatabaseOptions dopts;
  dopts.path = path;
  dopts.instant_restart = true;
  auto db_or = Database::Open(dopts);
  if (!db_or.ok()) std::_Exit(3);
  Status st = db_or.value()->WaitForRecovery();
  // Reaching here means the point never fired during instant recovery.
  std::_Exit(st.ok() ? 0 : 3);
}

class InstantRestartCrashTest
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(InstantRestartCrashTest, CrashMidInstantRecoveryThenRecoverTwice) {
  if (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "built with GISTCR_FAULT_INJECTION=OFF";
  }
  const auto& [point, skip] = GetParam();
  const std::string path = TestPath("instant_idem");
  RemoveDbFiles(path);

  ASSERT_EQ(ForkAndWait([&] { RunDurableLoserBuilder(path); }),
            FaultInjector::kCrashExitCode);

  ASSERT_EQ(ForkAndWait([&] {
              RunInstantRecoveryCrashChild(path, point, skip);
            }),
            FaultInjector::kCrashExitCode)
      << point << " did not fire during instant recovery";

  std::vector<IndexEntry> first = RecoverDump(path, /*instant=*/true, 5);
  ASSERT_FALSE(first.empty());
  std::vector<IndexEntry> second = RecoverDump(path, /*instant=*/true, 5);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); i++) {
    EXPECT_EQ(first[i].key, second[i].key) << "entry " << i;
    EXPECT_EQ(first[i].value, second[i].value) << "entry " << i;
    EXPECT_EQ(first[i].del_txn, second[i].del_txn) << "entry " << i;
  }

  // Keys 0..95 belong to the 24 winner txns; 96..110 to the loser. The
  // loser must have been fully undone despite the mid-recovery crash.
  crash::Oracle oracle;
  ASSERT_OK(crash::ComputeOracle(path, &oracle));
  EXPECT_EQ(oracle.visible.size(), 96u);
  for (const auto& [k, rid] : oracle.visible) {
    (void)rid;
    EXPECT_LT(k, 96);
  }
  RemoveDbFiles(path);
}

INSTANTIATE_TEST_SUITE_P(
    InstantPhases, InstantRestartCrashTest,
    ::testing::Values(std::make_pair("instant.inline_redo", 0),
                      std::make_pair("instant.bg_drain", 0),
                      std::make_pair("instant.undo", 0)),
    [](const ::testing::TestParamInfo<std::pair<const char*, int>>& info) {
      std::string name = info.param.first;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

// The instant crash points must be registered catalogue names.
TEST(InstantRestartCatalogue, PointsAreCatalogued) {
  auto in_catalogue = [](const std::string& p) {
    for (const char* name : kCrashPointCatalogue) {
      if (p == name) return true;
    }
    return false;
  };
  for (const char* p :
       {"instant.inline_redo", "instant.bg_drain", "instant.undo"}) {
    EXPECT_TRUE(in_catalogue(p)) << p;
  }
}

// ---------------------------------------------------------------------
// Bounded log scans (the analysis substrate for per-page plans).
// ---------------------------------------------------------------------

TEST(InstantRestartScanRange, StopsAtUpperBound) {
  const std::string path = TestPath("instant_scan");
  RemoveDbFiles(path);
  DatabaseOptions opts;
  opts.path = path;
  auto db_or = Database::Create(opts);
  ASSERT_OK(db_or.status());
  auto db = db_or.MoveValue();
  static BtreeExtension ext;
  ASSERT_OK(db->CreateIndex(1, &ext));
  Gist* gist = db->GetIndex(1).value();
  Transaction* txn = db->Begin();
  for (int64_t k = 0; k < 20; k++) {
    ASSERT_OK(
        db->InsertRecord(txn, gist, BtreeExtension::MakeKey(k), "v").status());
  }
  ASSERT_OK(db->Commit(txn));
  ASSERT_OK(db->log()->FlushAll());

  // Collect every record LSN, then re-scan bounded at the midpoint: the
  // bounded scan must yield exactly the prefix.
  std::vector<Lsn> lsns;
  ASSERT_OK(db->log()->Scan(kInvalidLsn, [&](const LogRecord& rec) {
    lsns.push_back(rec.lsn);
    return true;
  }));
  ASSERT_GT(lsns.size(), 4u);
  const Lsn upto = lsns[lsns.size() / 2];
  std::vector<Lsn> bounded;
  ASSERT_OK(db->log()->ScanRange(kInvalidLsn, upto, [&](const LogRecord& rec) {
    bounded.push_back(rec.lsn);
    return true;
  }));
  ASSERT_EQ(bounded.size(), lsns.size() / 2 + 1);
  EXPECT_EQ(bounded.back(), upto);
  EXPECT_TRUE(std::equal(bounded.begin(), bounded.end(), lsns.begin()));
  RemoveDbFiles(path);
}

}  // namespace
}  // namespace gistcr
