#include <gtest/gtest.h>

#include "access/btree_extension.h"
#include "access/rtree_extension.h"
#include "tests/test_util.h"

namespace gistcr {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("dbfacade");
    RemoveDbFiles(path_);
    opts_.path = path_;
    opts_.buffer_pool_pages = 512;
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }
  std::string path_;
  DatabaseOptions opts_;
  std::unique_ptr<Database> db_;
  BtreeExtension bt_;
  RtreeExtension rt_;
};

TEST_F(DatabaseTest, CreateOpenLifecycle) {
  {
    auto db_or = Database::Create(opts_);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    ASSERT_OK(db_->CreateIndex(1, &bt_));
    Transaction* txn = db_->Begin();
    ASSERT_OK(db_->InsertRecord(txn, db_->GetIndex(1).value(),
                                BtreeExtension::MakeKey(5), "hello")
                  .status());
    ASSERT_OK(db_->Commit(txn));
    db_.reset();  // clean shutdown flushes
  }
  auto db_or = Database::Open(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  ASSERT_OK(db_->OpenIndex(1, &bt_));
  Gist* gist = db_->GetIndex(1).value();
  Transaction* txn = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(gist->Search(txn, BtreeExtension::MakeRange(5, 5), &results));
  ASSERT_EQ(results.size(), 1u);
  auto rec = db_->ReadRecord(results[0].rid);
  ASSERT_OK(rec.status());
  EXPECT_EQ(rec.value(), "hello");
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(DatabaseTest, MultipleIndexesCoexist) {
  auto db_or = Database::Create(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  ASSERT_OK(db_->CreateIndex(1, &bt_));
  ASSERT_OK(db_->CreateIndex(2, &rt_));
  Gist* btree = db_->GetIndex(1).value();
  Gist* rtree = db_->GetIndex(2).value();

  Transaction* txn = db_->Begin();
  for (int i = 0; i < 50; i++) {
    ASSERT_OK(db_->InsertRecord(txn, btree, BtreeExtension::MakeKey(i),
                                "b" + std::to_string(i))
                  .status());
    ASSERT_OK(db_->InsertRecord(
                    txn, rtree,
                    RtreeExtension::MakeKey(Rect::Point(i, i)),
                    "r" + std::to_string(i))
                  .status());
  }
  ASSERT_OK(db_->Commit(txn));
  ASSERT_OK(btree->CheckInvariants());
  ASSERT_OK(rtree->CheckInvariants());

  Transaction* t2 = db_->Begin();
  std::vector<SearchResult> b_results, r_results;
  ASSERT_OK(btree->Search(t2, BtreeExtension::MakeRange(0, 100), &b_results));
  ASSERT_OK(rtree->Search(
      t2, RtreeExtension::MakeWindowQuery(Rect{-1, -1, 100, 100}),
      &r_results));
  EXPECT_EQ(b_results.size(), 50u);
  EXPECT_EQ(r_results.size(), 50u);
  ASSERT_OK(db_->Commit(t2));
}

TEST_F(DatabaseTest, GetUnknownIndexIsNotFound) {
  auto db_or = Database::Create(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  EXPECT_TRUE(db_->GetIndex(99).status().IsNotFound());
}

TEST_F(DatabaseTest, OpenMissingIndexFails) {
  auto db_or = Database::Create(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  EXPECT_TRUE(db_->OpenIndex(7, &bt_).IsNotFound());
}

TEST_F(DatabaseTest, ManyRecordsAcrossHeapPages) {
  auto db_or = Database::Create(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  ASSERT_OK(db_->CreateIndex(1, &bt_));
  Gist* gist = db_->GetIndex(1).value();
  const std::string big(512, 'x');
  Transaction* txn = db_->Begin();
  std::vector<Rid> rids;
  for (int i = 0; i < 200; i++) {  // > one heap page of 512-byte records
    auto rid =
        db_->InsertRecord(txn, gist, BtreeExtension::MakeKey(i), big);
    ASSERT_OK(rid.status());
    rids.push_back(rid.value());
  }
  ASSERT_OK(db_->Commit(txn));
  std::set<PageId> heap_pages;
  for (const Rid& r : rids) heap_pages.insert(r.page_id);
  EXPECT_GT(heap_pages.size(), 1u);
  for (const Rid& r : rids) {
    auto rec = db_->ReadRecord(r);
    ASSERT_OK(rec.status());
    EXPECT_EQ(rec.value(), big);
  }
}

TEST_F(DatabaseTest, HeapChainSurvivesReopen) {
  {
    auto db_or = Database::Create(opts_);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    ASSERT_OK(db_->CreateIndex(1, &bt_));
    Gist* gist = db_->GetIndex(1).value();
    const std::string big(1024, 'y');
    Transaction* txn = db_->Begin();
    for (int i = 0; i < 100; i++) {
      ASSERT_OK(db_->InsertRecord(txn, gist, BtreeExtension::MakeKey(i), big)
                    .status());
    }
    ASSERT_OK(db_->Commit(txn));
    db_.reset();
  }
  auto db_or = Database::Open(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  ASSERT_OK(db_->OpenIndex(1, &bt_));
  Gist* gist = db_->GetIndex(1).value();
  Transaction* txn = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(gist->Search(txn, BtreeExtension::MakeRange(0, 100), &results));
  EXPECT_EQ(results.size(), 100u);
  for (const auto& r : results) {
    EXPECT_OK(db_->ReadRecord(r.rid).status());
  }
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(DatabaseTest, PageAllocatorRoundTrip) {
  auto db_or = Database::Create(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  Transaction* txn = db_->Begin();
  auto a = db_->allocator()->Allocate(txn);
  auto b = db_->allocator()->Allocate(txn);
  ASSERT_OK(a.status());
  ASSERT_OK(b.status());
  EXPECT_NE(a.value(), b.value());
  EXPECT_TRUE(db_->allocator()->IsAllocated(a.value()).value());
  ASSERT_OK(db_->allocator()->Free(txn, a.value()));
  EXPECT_FALSE(db_->allocator()->IsAllocated(a.value()).value());
  // Freed page is handed out again.
  auto c = db_->allocator()->Allocate(txn);
  ASSERT_OK(c.status());
  EXPECT_EQ(c.value(), a.value());
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(DatabaseTest, AllocatorUndoneOnAbort) {
  auto db_or = Database::Create(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  Transaction* txn = db_->Begin();
  auto a = db_->allocator()->Allocate(txn);
  ASSERT_OK(a.status());
  ASSERT_OK(db_->Abort(txn));
  // Get-Page undo (Table 1) returned the page.
  EXPECT_FALSE(db_->allocator()->IsAllocated(a.value()).value());
}

TEST_F(DatabaseTest, PrepareShutdownStopsMaintenance) {
  opts_.maintenance_interval_ms = 10;  // fast daemon to race against
  auto db_or = Database::Create(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  ASSERT_OK(db_->CreateIndex(1, &bt_));

  Transaction* txn = db_->Begin();
  ASSERT_OK(db_->InsertRecord(txn, db_->GetIndex(1).value(),
                              BtreeExtension::MakeKey(1), "v")
                .status());
  ASSERT_OK(db_->Commit(txn));

  // The latch joins the daemon and refuses further passes...
  db_->PrepareShutdown();
  EXPECT_TRUE(db_->RunMaintenancePass().IsAborted());
  // ...but an explicit checkpoint (the drain sequence's final act) still
  // works, and the latch is idempotent.
  ASSERT_OK(db_->Checkpoint());
  db_->PrepareShutdown();
  EXPECT_TRUE(db_->RunMaintenancePass().IsAborted());

  // The database remains fully usable for in-flight work.
  txn = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(db_->GetIndex(1).value()->Search(
      txn, BtreeExtension::MakeRange(1, 1), &results));
  EXPECT_EQ(results.size(), 1u);
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(DatabaseTest, CheckpointWritesMasterPointer) {
  auto db_or = Database::Create(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  ASSERT_OK(db_->Checkpoint());
  FILE* f = fopen((path_ + ".ckpt").c_str(), "r");
  ASSERT_NE(f, nullptr);
  unsigned long long v = 0;
  ASSERT_EQ(fscanf(f, "%llu", &v), 1);
  fclose(f);
  EXPECT_GT(v, 0u);
}

}  // namespace
}  // namespace gistcr
