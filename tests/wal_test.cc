#include <gtest/gtest.h>

#include <vector>

#include "tests/test_util.h"
#include "wal/log_manager.h"
#include "wal/log_payloads.h"
#include "wal/log_record.h"

namespace gistcr {
namespace {

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  LogRecord rec;
  rec.type = LogRecordType::kAddLeafEntry;
  rec.txn_id = 9;
  rec.prev_lsn = 100;
  rec.undo_next = 50;
  rec.payload = "payload-bytes";
  std::string wire;
  rec.EncodeTo(&wire);
  LogRecord out;
  uint32_t consumed = 0;
  ASSERT_OK(out.DecodeFrom(wire, &consumed));
  EXPECT_EQ(consumed, rec.SerializedSize());
  EXPECT_EQ(out.type, rec.type);
  EXPECT_EQ(out.txn_id, rec.txn_id);
  EXPECT_EQ(out.prev_lsn, rec.prev_lsn);
  EXPECT_EQ(out.undo_next, rec.undo_next);
  EXPECT_EQ(out.payload, rec.payload);
}

TEST(LogRecordTest, CrcCatchesCorruption) {
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn_id = 1;
  std::string wire;
  rec.EncodeTo(&wire);
  wire[10] ^= 0x01;
  LogRecord out;
  uint32_t consumed;
  EXPECT_TRUE(out.DecodeFrom(wire, &consumed).IsCorruption());
}

TEST(LogRecordTest, ShortBufferIsCorruption) {
  LogRecord out;
  uint32_t consumed;
  EXPECT_TRUE(out.DecodeFrom(Slice("abc"), &consumed).IsCorruption());
}

TEST(LogRecordTest, TypeNamesCoverTable1) {
  EXPECT_STREQ(LogRecordTypeName(LogRecordType::kParentEntryUpdate),
               "Parent-Entry-Update");
  EXPECT_STREQ(LogRecordTypeName(LogRecordType::kSplit), "Split");
  EXPECT_STREQ(LogRecordTypeName(LogRecordType::kGarbageCollection),
               "Garbage-Collection");
  EXPECT_STREQ(LogRecordTypeName(LogRecordType::kGetPage), "Get-Page");
  EXPECT_STREQ(LogRecordTypeName(LogRecordType::kFreePage), "Free-Page");
  EXPECT_STREQ(LogRecordTypeName(LogRecordType::kAddLeafEntry),
               "Add-Leaf-Entry");
  EXPECT_STREQ(LogRecordTypeName(LogRecordType::kMarkLeafEntry),
               "Mark-Leaf-Entry");
}

TEST(LogPayloadTest, SplitPayloadRoundTrip) {
  SplitPayload pl;
  pl.orig_page = 5;
  pl.new_page = 9;
  pl.level = 2;
  pl.old_nsn = 77;
  pl.new_nsn = 99;
  pl.old_rightlink = 6;
  pl.moved.push_back({"key-a", 1, kInvalidTxnId});
  pl.moved.push_back({"key-b", 2, 42});
  pl.orig_bp_before = "before";
  pl.orig_bp_after = "after";
  pl.new_bp = "new";
  std::string blob;
  pl.EncodeTo(&blob);
  SplitPayload out;
  ASSERT_TRUE(out.DecodeFrom(blob));
  EXPECT_EQ(out.orig_page, 5u);
  EXPECT_EQ(out.new_page, 9u);
  EXPECT_EQ(out.level, 2);
  EXPECT_EQ(out.old_nsn, 77u);
  EXPECT_EQ(out.new_nsn, 99u);
  EXPECT_EQ(out.old_rightlink, 6u);
  ASSERT_EQ(out.moved.size(), 2u);
  EXPECT_EQ(out.moved[1].key, "key-b");
  EXPECT_EQ(out.moved[1].del_txn, 42u);
  EXPECT_EQ(out.orig_bp_before, "before");
  EXPECT_EQ(out.new_bp, "new");
}

TEST(LogPayloadTest, CheckpointPayloadRoundTrip) {
  CheckpointPayload pl;
  pl.active_txns.push_back({3, 300});
  pl.active_txns.push_back({7, 700});
  pl.dirty_pages.push_back({11, 110});
  pl.next_txn_id = 8;
  pl.nsn_counter = 1234;
  std::string blob;
  pl.EncodeTo(&blob);
  CheckpointPayload out;
  ASSERT_TRUE(out.DecodeFrom(blob));
  ASSERT_EQ(out.active_txns.size(), 2u);
  EXPECT_EQ(out.active_txns[1].txn_id, 7u);
  ASSERT_EQ(out.dirty_pages.size(), 1u);
  EXPECT_EQ(out.dirty_pages[0].rec_lsn, 110u);
  EXPECT_EQ(out.next_txn_id, 8u);
  EXPECT_EQ(out.nsn_counter, 1234u);
}

TEST(LogPayloadTest, ClrPayloadRoundTrip) {
  ClrPayload pl;
  pl.compensated_type = LogRecordType::kAddLeafEntry;
  pl.override_page = 17;
  pl.original = "original-bytes";
  std::string blob;
  pl.EncodeTo(&blob);
  ClrPayload out;
  ASSERT_TRUE(out.DecodeFrom(blob));
  EXPECT_EQ(out.compensated_type, LogRecordType::kAddLeafEntry);
  EXPECT_EQ(out.override_page, 17u);
  EXPECT_EQ(out.original, "original-bytes");
}

class LogManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("wal") + ".wal";
    std::remove(path_.c_str());
    ASSERT_OK(log_.Open(path_));
  }
  void TearDown() override {
    log_.Close();
    std::remove(path_.c_str());
  }
  std::string path_;
  LogManager log_;
};

TEST_F(LogManagerTest, AppendAssignsMonotonicLsns) {
  LogRecord a, b;
  a.type = b.type = LogRecordType::kBegin;
  ASSERT_OK(log_.Append(&a));
  ASSERT_OK(log_.Append(&b));
  EXPECT_EQ(a.lsn, LogManager::kFirstLsn);
  EXPECT_EQ(b.lsn, a.lsn + a.SerializedSize());
  EXPECT_EQ(log_.last_lsn(), b.lsn);
}

TEST_F(LogManagerTest, ReadRecordFromBufferAndFile) {
  LogRecord a;
  a.type = LogRecordType::kCommit;
  a.txn_id = 4;
  a.payload = "zzz";
  ASSERT_OK(log_.Append(&a));
  LogRecord out;
  ASSERT_OK(log_.ReadRecord(a.lsn, &out));  // from the tail buffer
  EXPECT_EQ(out.payload, "zzz");
  ASSERT_OK(log_.FlushAll());
  LogRecord out2;
  ASSERT_OK(log_.ReadRecord(a.lsn, &out2));  // from the durable file
  EXPECT_EQ(out2.txn_id, 4u);
}

TEST_F(LogManagerTest, FlushAdvancesDurableLsn) {
  LogRecord a;
  a.type = LogRecordType::kBegin;
  ASSERT_OK(log_.Append(&a));
  EXPECT_LT(log_.durable_lsn(), a.lsn);
  ASSERT_OK(log_.Flush(a.lsn));
  EXPECT_GE(log_.durable_lsn(), a.lsn);
}

TEST_F(LogManagerTest, ScanVisitsAllInOrder) {
  std::vector<Lsn> lsns;
  for (int i = 0; i < 10; i++) {
    LogRecord r;
    r.type = LogRecordType::kBegin;
    r.txn_id = static_cast<TxnId>(i + 1);
    ASSERT_OK(log_.Append(&r));
    lsns.push_back(r.lsn);
  }
  std::vector<Lsn> seen;
  ASSERT_OK(log_.Scan(kInvalidLsn, [&](const LogRecord& rec) {
    seen.push_back(rec.lsn);
    return true;
  }));
  EXPECT_EQ(seen, lsns);
}

TEST_F(LogManagerTest, DiscardTailLosesUnflushedRecords) {
  LogRecord a, b;
  a.type = b.type = LogRecordType::kBegin;
  ASSERT_OK(log_.Append(&a));
  ASSERT_OK(log_.Flush(a.lsn));
  ASSERT_OK(log_.Append(&b));
  log_.DiscardTail();  // crash: b was never forced
  int count = 0;
  ASSERT_OK(log_.Scan(kInvalidLsn, [&](const LogRecord&) {
    count++;
    return true;
  }));
  EXPECT_EQ(count, 1);
  // New appends continue from the durable end.
  LogRecord c;
  c.type = LogRecordType::kBegin;
  ASSERT_OK(log_.Append(&c));
  EXPECT_EQ(c.lsn, b.lsn);
}

TEST_F(LogManagerTest, ReopenContinuesLsnSequence) {
  LogRecord a;
  a.type = LogRecordType::kBegin;
  ASSERT_OK(log_.Append(&a));
  ASSERT_OK(log_.FlushAll());
  log_.Close();
  LogManager log2;
  ASSERT_OK(log2.Open(path_));
  LogRecord b;
  b.type = LogRecordType::kCommit;
  ASSERT_OK(log2.Append(&b));
  EXPECT_EQ(b.lsn, a.lsn + a.SerializedSize());
  log2.Close();
}

TEST_F(LogManagerTest, ScanStopsAtTornTail) {
  LogRecord a;
  a.type = LogRecordType::kBegin;
  ASSERT_OK(log_.Append(&a));
  ASSERT_OK(log_.FlushAll());
  log_.Close();
  // Append garbage bytes simulating a torn write.
  FILE* f = fopen(path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char junk[13] = "junkjunkjunk";
  fwrite(junk, 1, sizeof(junk), f);
  fclose(f);
  LogManager log2;
  ASSERT_OK(log2.Open(path_));
  int count = 0;
  ASSERT_OK(log2.Scan(kInvalidLsn, [&](const LogRecord&) {
    count++;
    return true;
  }));
  EXPECT_EQ(count, 1);
  log2.Close();
}

TEST_F(LogManagerTest, TotalBytesTracksVolume) {
  EXPECT_EQ(log_.TotalBytes(), 0u);
  LogRecord a;
  a.type = LogRecordType::kBegin;
  a.payload = std::string(100, 'x');
  ASSERT_OK(log_.Append(&a));
  EXPECT_EQ(log_.TotalBytes(), a.SerializedSize());
}

}  // namespace
}  // namespace gistcr
