#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "access/btree_extension.h"
#include "client/client.h"
#include "db/database.h"
#include "obs/op_context.h"
#include "tests/test_util.h"

namespace gistcr {
namespace {

/// End-to-end tests: a real Server on an ephemeral port over a real
/// Database, driven through the Client library.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("server");
    RemoveDbFiles(path_);
    opts_.path = path_;
    opts_.buffer_pool_pages = 512;
    auto db_or = Database::Create(opts_);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    ASSERT_OK(db_->CreateIndex(1, &bt_));

    server_ = std::make_unique<Server>(db_.get(), ServerOptions{});
    ASSERT_OK(server_->Start());
  }

  void TearDown() override {
    if (server_) ASSERT_OK(server_->Shutdown());
    server_.reset();
    db_.reset();
    RemoveDbFiles(path_);
  }

  Client MakeClient() {
    ClientOptions copts;
    copts.port = server_->port();
    return Client(copts);
  }

  std::string path_;
  DatabaseOptions opts_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
  BtreeExtension bt_;
};

TEST_F(ServerTest, PingAndStats) {
  Client c = MakeClient();
  ASSERT_OK(c.Connect());
  ASSERT_OK(c.Ping());
  auto stats = c.Stats();
  ASSERT_OK(stats.status());
  // The dump must carry the server-side metrics (acceptance criterion).
  EXPECT_NE(stats.value().find("server.request_latency"), std::string::npos);
  EXPECT_NE(stats.value().find("server.op.ping"), std::string::npos);
}

TEST_F(ServerTest, AutoCommitInsertAndSearch) {
  Client c = MakeClient();
  // No explicit Connect: the first call dials lazily.
  auto rid = c.Insert(1, BtreeExtension::MakeKey(10), "ten");
  ASSERT_OK(rid.status());
  EXPECT_NE(rid.value(), 0u);

  auto hits = c.Search(1, BtreeExtension::MakeRange(10, 10),
                       /*with_records=*/true);
  ASSERT_OK(hits.status());
  ASSERT_EQ(hits.value().size(), 1u);
  EXPECT_EQ(hits.value()[0].record, "ten");
  EXPECT_EQ(hits.value()[0].rid, rid.value());
}

TEST_F(ServerTest, ExplicitTransactionVisibility) {
  Client writer = MakeClient();
  Client reader = MakeClient();

  ASSERT_OK(writer.Begin().status());
  ASSERT_OK(writer.Insert(1, BtreeExtension::MakeKey(1), "one").status());
  EXPECT_TRUE(writer.txn_open());

  // Uncommitted writes hold X locks; a reader searching the same range
  // would block, so probe a disjoint range to prove the connection works.
  auto miss = reader.Search(1, BtreeExtension::MakeRange(100, 200));
  ASSERT_OK(miss.status());
  EXPECT_TRUE(miss.value().empty());

  ASSERT_OK(writer.Commit());
  EXPECT_FALSE(writer.txn_open());

  auto hit = reader.Search(1, BtreeExtension::MakeRange(1, 1));
  ASSERT_OK(hit.status());
  EXPECT_EQ(hit.value().size(), 1u);
}

TEST_F(ServerTest, AbortDiscardsWrites) {
  Client c = MakeClient();
  ASSERT_OK(c.Begin().status());
  ASSERT_OK(c.Insert(1, BtreeExtension::MakeKey(7), "seven").status());
  ASSERT_OK(c.Abort());

  auto hits = c.Search(1, BtreeExtension::MakeRange(7, 7));
  ASSERT_OK(hits.status());
  EXPECT_TRUE(hits.value().empty());
}

TEST_F(ServerTest, DeleteRemovesEntry) {
  Client c = MakeClient();
  auto rid = c.Insert(1, BtreeExtension::MakeKey(3), "three");
  ASSERT_OK(rid.status());
  ASSERT_OK(c.Delete(1, BtreeExtension::MakeKey(3), rid.value()));
  auto hits = c.Search(1, BtreeExtension::MakeRange(3, 3));
  ASSERT_OK(hits.status());
  EXPECT_TRUE(hits.value().empty());
}

TEST_F(ServerTest, UniqueDuplicateReportsTypedError) {
  Client c = MakeClient();
  ASSERT_OK(
      c.Insert(1, BtreeExtension::MakeKey(5), "a", /*unique=*/true).status());
  auto dup = c.Insert(1, BtreeExtension::MakeKey(5), "b", /*unique=*/true);
  EXPECT_TRUE(dup.status().IsDuplicateKey()) << dup.status().ToString();
  // The connection and any session state survive a non-fatal error.
  ASSERT_OK(c.Ping());
}

TEST_F(ServerTest, TxnStateErrors) {
  Client c = MakeClient();
  Status no_txn = c.Commit();  // no transaction open
  EXPECT_EQ(no_txn.code(), Status::Code::kInvalidArgument)
      << no_txn.ToString();
  ASSERT_OK(c.Begin().status());
  auto again = c.Begin();
  EXPECT_FALSE(again.ok());  // nested BEGIN rejected
  ASSERT_OK(c.Abort());
}

TEST_F(ServerTest, LargeResultStreamsInBatches) {
  Client c = MakeClient();
  ASSERT_OK(c.Begin().status());
  const int kRows = 500;
  for (int i = 0; i < kRows; i++) {
    ASSERT_OK(c.Insert(1, BtreeExtension::MakeKey(i),
                       "row-" + std::to_string(i))
                  .status());
  }
  ASSERT_OK(c.Commit());

  // Tiny batch size forces many kSearchBatch frames for one request.
  auto hits = c.Search(1, BtreeExtension::MakeRange(0, kRows - 1),
                       /*with_records=*/true, /*batch_size=*/16);
  ASSERT_OK(hits.status());
  EXPECT_EQ(hits.value().size(), static_cast<size_t>(kRows));
}

TEST_F(ServerTest, PipelinedBatch) {
  Client c = MakeClient();
  std::vector<Client::BatchOp> ops;
  for (int i = 0; i < 32; i++) {
    Client::BatchOp op;
    op.kind = Client::BatchOp::Kind::kInsert;
    op.index_id = 1;
    op.key = BtreeExtension::MakeKey(1000 + i);
    op.record = "batch-" + std::to_string(i);
    ops.push_back(op);
  }
  Client::BatchOp search;
  search.kind = Client::BatchOp::Kind::kSearch;
  search.index_id = 1;
  search.key = BtreeExtension::MakeRange(1000, 1031);
  search.with_records = true;
  ops.push_back(search);

  std::vector<Client::BatchResult> results;
  ASSERT_OK(c.ExecuteBatch(ops, &results));
  ASSERT_EQ(results.size(), ops.size());
  for (size_t i = 0; i + 1 < results.size(); i++) {
    ASSERT_OK(results[i].status);
    EXPECT_NE(results[i].rid, 0u);
  }
  // Each batch op auto-commits, so the trailing search sees all 32.
  ASSERT_OK(results.back().status);
  EXPECT_EQ(results.back().results.size(), 32u);
}

TEST_F(ServerTest, ConcurrentClients) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; t++) {
    threads.emplace_back([&, t] {
      Client c = MakeClient();
      for (int i = 0; i < kPerClient; i++) {
        int64_t k = t * 10000 + i;
        if (!c.Insert(1, BtreeExtension::MakeKey(k), "v").ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  Client c = MakeClient();
  for (int t = 0; t < kClients; t++) {
    auto hits = c.Search(
        1, BtreeExtension::MakeRange(t * 10000, t * 10000 + kPerClient - 1));
    ASSERT_OK(hits.status());
    EXPECT_EQ(hits.value().size(), static_cast<size_t>(kPerClient));
  }
  ASSERT_OK(db_->GetIndex(1).value()->CheckInvariants());
}

TEST_F(ServerTest, GracefulShutdownLeavesRecoverableDatabase) {
  {
    Client c = MakeClient();
    for (int i = 0; i < 100; i++) {
      ASSERT_OK(
          c.Insert(1, BtreeExtension::MakeKey(i), "x" + std::to_string(i))
              .status());
    }
  }
  // Shutdown drains, checkpoints, and must leave the on-disk state
  // reopenable with intact invariants (acceptance criterion).
  ASSERT_OK(server_->Shutdown());
  server_.reset();
  db_.reset();

  auto db_or = Database::Open(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  ASSERT_OK(db_->OpenIndex(1, &bt_));
  Gist* gist = db_->GetIndex(1).value();
  ASSERT_OK(gist->CheckInvariants());
  Transaction* txn = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(gist->Search(txn, BtreeExtension::MakeRange(0, 99), &results));
  EXPECT_EQ(results.size(), 100u);
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(ServerTest, ShutdownRejectsNewTransactions) {
  Client c = MakeClient();
  ASSERT_OK(c.Ping());
  ASSERT_OK(server_->Shutdown());
  // The drained server has closed the connection (or refuses the txn);
  // either way no new work may start.
  auto begin = c.Begin();
  EXPECT_FALSE(begin.ok());
  server_.reset();
}

TEST_F(ServerTest, ClientReconnectsAfterServerSideClose) {
  Client c = MakeClient();
  ASSERT_OK(c.Ping());
  // Hard-close our socket; auto_reconnect must transparently re-dial for
  // the next idle-state call.
  c.Close();
  ASSERT_OK(c.Ping());
}

TEST_F(ServerTest, UnknownIndexIsTypedError) {
  Client c = MakeClient();
  auto st = c.Insert(99, BtreeExtension::MakeKey(1), "v").status();
  // kUnknownIndex surfaces as InvalidArgument on the client side.
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument) << st.ToString();
  ASSERT_OK(c.Ping());
}

TEST_F(ServerTest, PrometheusStatsOverTheWire) {
  Client c = MakeClient();
  ASSERT_OK(c.Insert(1, BtreeExtension::MakeKey(5), "five").status());
  auto prom = c.Stats(/*prometheus=*/true);
  ASSERT_OK(prom.status());
  const std::string& text = prom.value();
  // Sanitized, prefixed names with TYPE lines and histogram series.
  EXPECT_NE(text.find("# TYPE gistcr_server_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("gistcr_rpc_request_total_count"), std::string::npos);
  EXPECT_NE(text.find("gistcr_rpc_stage_queue_bucket"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  // Raw dotted registry names must not leak through.
  EXPECT_EQ(text.find("server.requests"), std::string::npos);
  // The JSON form still works and is distinct.
  auto json = c.Stats(/*prometheus=*/false);
  ASSERT_OK(json.status());
  EXPECT_EQ(json.value().front(), '{');
}

TEST_F(ServerTest, RequestDecomposesIntoStagesSummingToTotal) {
  // Tentpole acceptance criterion: a request's end-to-end latency
  // decomposes into named stages whose sum is within 10% of the measured
  // total. Stage sums are exact by construction (kOther is the remainder),
  // so the histogram sums must match to rounding.
  Client c = MakeClient();
  for (int i = 0; i < 50; i++) {
    ASSERT_OK(
        c.Insert(1, BtreeExtension::MakeKey(1000 + i), "payload").status());
  }
  auto* reg = db_->metrics();
  const uint64_t total_sum =
      reg->GetHistogram("rpc.request_total")->GetSnapshot().sum;
  ASSERT_GT(total_sum, 0u);
  uint64_t stage_sum = 0;
  size_t stages_with_data = 0;
  for (size_t s = 0; s < obs::kNumStages; s++) {
    const auto snap =
        reg->GetHistogram(std::string("rpc.stage.") +
                          obs::StageName(static_cast<obs::Stage>(s)))
            ->GetSnapshot();
    stage_sum += snap.sum;
    if (snap.count > 0) stages_with_data++;
  }
  // Every request records every stage (zeros included), so at least 5
  // named stages have samples: queue, lock, tree, walwait/fsync, other.
  EXPECT_GE(stages_with_data, 5u);
  const double lo = 0.9 * static_cast<double>(total_sum);
  const double hi = 1.1 * static_cast<double>(total_sum);
  EXPECT_GE(static_cast<double>(stage_sum), lo);
  EXPECT_LE(static_cast<double>(stage_sum), hi);
}

TEST_F(ServerTest, InspectViewsReturnJson) {
  // Force slow-op capture for everything so the ring has content.
  db_->slow_ops()->SetThresholdNs(1);
  Client c = MakeClient();
  ASSERT_OK(c.Insert(1, BtreeExtension::MakeKey(77), "slow").status());

  auto slow = c.Inspect(net::InspectKind::kSlowOps);
  ASSERT_OK(slow.status());
  EXPECT_EQ(slow.value().front(), '[');
  EXPECT_NE(slow.value().find("\"stages\""), std::string::npos);
  EXPECT_NE(slow.value().find("\"op\":\"insert\""), std::string::npos);

  auto wait = c.Inspect(net::InspectKind::kWaitGraph);
  ASSERT_OK(wait.status());
  EXPECT_NE(wait.value().find("\"edges\""), std::string::npos);

  auto bp = c.Inspect(net::InspectKind::kBufferPool);
  ASSERT_OK(bp.status());
  EXPECT_NE(bp.value().find("\"shards\""), std::string::npos);
  EXPECT_NE(bp.value().find("\"resident\""), std::string::npos);

  auto wal = c.Inspect(net::InspectKind::kWal);
  ASSERT_OK(wal.status());
  EXPECT_NE(wal.value().find("\"durable_lsn\""), std::string::npos);

  // Out-of-range kind: typed error, session survives.
  auto bad = c.Inspect(static_cast<net::InspectKind>(200));
  EXPECT_FALSE(bad.ok());
  ASSERT_OK(c.Ping());
}

TEST_F(ServerTest, SlowOpRingCapturesStageBreakdown) {
  db_->slow_ops()->SetThresholdNs(1);
  Client c = MakeClient();
  ASSERT_OK(c.Insert(1, BtreeExtension::MakeKey(88), "x").status());
  for (int i = 0; i < 100 && db_->slow_ops()->size() == 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto records = db_->slow_ops()->Snapshot();
  ASSERT_FALSE(records.empty());
  bool found_insert = false;
  for (const auto& r : records) {
    if (std::string(r.op_name) != "insert") continue;
    found_insert = true;
    EXPECT_GT(r.total_ns, 0u);
    uint64_t sum = 0;
    for (size_t s = 0; s < obs::kNumStages; s++) sum += r.stage_ns[s];
    EXPECT_EQ(sum, r.total_ns) << "stage sums must equal the total exactly";
    EXPECT_GT(r.request_id, 0u);
  }
  EXPECT_TRUE(found_insert);
}

}  // namespace
}  // namespace gistcr
