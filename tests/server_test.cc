#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "access/btree_extension.h"
#include "client/client.h"
#include "db/database.h"
#include "tests/test_util.h"

namespace gistcr {
namespace {

/// End-to-end tests: a real Server on an ephemeral port over a real
/// Database, driven through the Client library.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("server");
    RemoveDbFiles(path_);
    opts_.path = path_;
    opts_.buffer_pool_pages = 512;
    auto db_or = Database::Create(opts_);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    ASSERT_OK(db_->CreateIndex(1, &bt_));

    server_ = std::make_unique<Server>(db_.get(), ServerOptions{});
    ASSERT_OK(server_->Start());
  }

  void TearDown() override {
    if (server_) ASSERT_OK(server_->Shutdown());
    server_.reset();
    db_.reset();
    RemoveDbFiles(path_);
  }

  Client MakeClient() {
    ClientOptions copts;
    copts.port = server_->port();
    return Client(copts);
  }

  std::string path_;
  DatabaseOptions opts_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
  BtreeExtension bt_;
};

TEST_F(ServerTest, PingAndStats) {
  Client c = MakeClient();
  ASSERT_OK(c.Connect());
  ASSERT_OK(c.Ping());
  auto stats = c.Stats();
  ASSERT_OK(stats.status());
  // The dump must carry the server-side metrics (acceptance criterion).
  EXPECT_NE(stats.value().find("server.request_latency"), std::string::npos);
  EXPECT_NE(stats.value().find("server.op.ping"), std::string::npos);
}

TEST_F(ServerTest, AutoCommitInsertAndSearch) {
  Client c = MakeClient();
  // No explicit Connect: the first call dials lazily.
  auto rid = c.Insert(1, BtreeExtension::MakeKey(10), "ten");
  ASSERT_OK(rid.status());
  EXPECT_NE(rid.value(), 0u);

  auto hits = c.Search(1, BtreeExtension::MakeRange(10, 10),
                       /*with_records=*/true);
  ASSERT_OK(hits.status());
  ASSERT_EQ(hits.value().size(), 1u);
  EXPECT_EQ(hits.value()[0].record, "ten");
  EXPECT_EQ(hits.value()[0].rid, rid.value());
}

TEST_F(ServerTest, ExplicitTransactionVisibility) {
  Client writer = MakeClient();
  Client reader = MakeClient();

  ASSERT_OK(writer.Begin().status());
  ASSERT_OK(writer.Insert(1, BtreeExtension::MakeKey(1), "one").status());
  EXPECT_TRUE(writer.txn_open());

  // Uncommitted writes hold X locks; a reader searching the same range
  // would block, so probe a disjoint range to prove the connection works.
  auto miss = reader.Search(1, BtreeExtension::MakeRange(100, 200));
  ASSERT_OK(miss.status());
  EXPECT_TRUE(miss.value().empty());

  ASSERT_OK(writer.Commit());
  EXPECT_FALSE(writer.txn_open());

  auto hit = reader.Search(1, BtreeExtension::MakeRange(1, 1));
  ASSERT_OK(hit.status());
  EXPECT_EQ(hit.value().size(), 1u);
}

TEST_F(ServerTest, AbortDiscardsWrites) {
  Client c = MakeClient();
  ASSERT_OK(c.Begin().status());
  ASSERT_OK(c.Insert(1, BtreeExtension::MakeKey(7), "seven").status());
  ASSERT_OK(c.Abort());

  auto hits = c.Search(1, BtreeExtension::MakeRange(7, 7));
  ASSERT_OK(hits.status());
  EXPECT_TRUE(hits.value().empty());
}

TEST_F(ServerTest, DeleteRemovesEntry) {
  Client c = MakeClient();
  auto rid = c.Insert(1, BtreeExtension::MakeKey(3), "three");
  ASSERT_OK(rid.status());
  ASSERT_OK(c.Delete(1, BtreeExtension::MakeKey(3), rid.value()));
  auto hits = c.Search(1, BtreeExtension::MakeRange(3, 3));
  ASSERT_OK(hits.status());
  EXPECT_TRUE(hits.value().empty());
}

TEST_F(ServerTest, UniqueDuplicateReportsTypedError) {
  Client c = MakeClient();
  ASSERT_OK(
      c.Insert(1, BtreeExtension::MakeKey(5), "a", /*unique=*/true).status());
  auto dup = c.Insert(1, BtreeExtension::MakeKey(5), "b", /*unique=*/true);
  EXPECT_TRUE(dup.status().IsDuplicateKey()) << dup.status().ToString();
  // The connection and any session state survive a non-fatal error.
  ASSERT_OK(c.Ping());
}

TEST_F(ServerTest, TxnStateErrors) {
  Client c = MakeClient();
  Status no_txn = c.Commit();  // no transaction open
  EXPECT_EQ(no_txn.code(), Status::Code::kInvalidArgument)
      << no_txn.ToString();
  ASSERT_OK(c.Begin().status());
  auto again = c.Begin();
  EXPECT_FALSE(again.ok());  // nested BEGIN rejected
  ASSERT_OK(c.Abort());
}

TEST_F(ServerTest, LargeResultStreamsInBatches) {
  Client c = MakeClient();
  ASSERT_OK(c.Begin().status());
  const int kRows = 500;
  for (int i = 0; i < kRows; i++) {
    ASSERT_OK(c.Insert(1, BtreeExtension::MakeKey(i),
                       "row-" + std::to_string(i))
                  .status());
  }
  ASSERT_OK(c.Commit());

  // Tiny batch size forces many kSearchBatch frames for one request.
  auto hits = c.Search(1, BtreeExtension::MakeRange(0, kRows - 1),
                       /*with_records=*/true, /*batch_size=*/16);
  ASSERT_OK(hits.status());
  EXPECT_EQ(hits.value().size(), static_cast<size_t>(kRows));
}

TEST_F(ServerTest, PipelinedBatch) {
  Client c = MakeClient();
  std::vector<Client::BatchOp> ops;
  for (int i = 0; i < 32; i++) {
    Client::BatchOp op;
    op.kind = Client::BatchOp::Kind::kInsert;
    op.index_id = 1;
    op.key = BtreeExtension::MakeKey(1000 + i);
    op.record = "batch-" + std::to_string(i);
    ops.push_back(op);
  }
  Client::BatchOp search;
  search.kind = Client::BatchOp::Kind::kSearch;
  search.index_id = 1;
  search.key = BtreeExtension::MakeRange(1000, 1031);
  search.with_records = true;
  ops.push_back(search);

  std::vector<Client::BatchResult> results;
  ASSERT_OK(c.ExecuteBatch(ops, &results));
  ASSERT_EQ(results.size(), ops.size());
  for (size_t i = 0; i + 1 < results.size(); i++) {
    ASSERT_OK(results[i].status);
    EXPECT_NE(results[i].rid, 0u);
  }
  // Each batch op auto-commits, so the trailing search sees all 32.
  ASSERT_OK(results.back().status);
  EXPECT_EQ(results.back().results.size(), 32u);
}

TEST_F(ServerTest, ConcurrentClients) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; t++) {
    threads.emplace_back([&, t] {
      Client c = MakeClient();
      for (int i = 0; i < kPerClient; i++) {
        int64_t k = t * 10000 + i;
        if (!c.Insert(1, BtreeExtension::MakeKey(k), "v").ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  Client c = MakeClient();
  for (int t = 0; t < kClients; t++) {
    auto hits = c.Search(
        1, BtreeExtension::MakeRange(t * 10000, t * 10000 + kPerClient - 1));
    ASSERT_OK(hits.status());
    EXPECT_EQ(hits.value().size(), static_cast<size_t>(kPerClient));
  }
  ASSERT_OK(db_->GetIndex(1).value()->CheckInvariants());
}

TEST_F(ServerTest, GracefulShutdownLeavesRecoverableDatabase) {
  {
    Client c = MakeClient();
    for (int i = 0; i < 100; i++) {
      ASSERT_OK(
          c.Insert(1, BtreeExtension::MakeKey(i), "x" + std::to_string(i))
              .status());
    }
  }
  // Shutdown drains, checkpoints, and must leave the on-disk state
  // reopenable with intact invariants (acceptance criterion).
  ASSERT_OK(server_->Shutdown());
  server_.reset();
  db_.reset();

  auto db_or = Database::Open(opts_);
  ASSERT_OK(db_or.status());
  db_ = db_or.MoveValue();
  ASSERT_OK(db_->OpenIndex(1, &bt_));
  Gist* gist = db_->GetIndex(1).value();
  ASSERT_OK(gist->CheckInvariants());
  Transaction* txn = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(gist->Search(txn, BtreeExtension::MakeRange(0, 99), &results));
  EXPECT_EQ(results.size(), 100u);
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(ServerTest, ShutdownRejectsNewTransactions) {
  Client c = MakeClient();
  ASSERT_OK(c.Ping());
  ASSERT_OK(server_->Shutdown());
  // The drained server has closed the connection (or refuses the txn);
  // either way no new work may start.
  auto begin = c.Begin();
  EXPECT_FALSE(begin.ok());
  server_.reset();
}

TEST_F(ServerTest, ClientReconnectsAfterServerSideClose) {
  Client c = MakeClient();
  ASSERT_OK(c.Ping());
  // Hard-close our socket; auto_reconnect must transparently re-dial for
  // the next idle-state call.
  c.Close();
  ASSERT_OK(c.Ping());
}

TEST_F(ServerTest, UnknownIndexIsTypedError) {
  Client c = MakeClient();
  auto st = c.Insert(99, BtreeExtension::MakeKey(1), "v").status();
  // kUnknownIndex surfaces as InvalidArgument on the client side.
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument) << st.ToString();
  ASSERT_OK(c.Ping());
}

}  // namespace
}  // namespace gistcr
