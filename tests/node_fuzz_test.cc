#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gist/node.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace gistcr {
namespace {

/// Property test: the slotted node layout against a shadow model under a
/// random mix of inserts, removals, BP rewrites and entry-key rewrites of
/// varying sizes (what splits, GC, parent-entry updates and BP expansion
/// actually do to a page). Guards against slot-directory/heap collisions —
/// the class of bug where growing the slot array tramples a blob that was
/// allocated flush against it.
struct ShadowEntry {
  std::string key;
  uint64_t value;
  uint64_t del;
};

class NodeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NodeFuzzTest, MatchesShadowModel) {
  Random rng(GetParam());
  for (int round = 0; round < 300; round++) {
    char buf[kPageSize] = {};
    NodeView node(buf);
    node.Init(1, 0);
    std::vector<ShadowEntry> shadow;
    std::string bp;
    uint64_t next_val = 1;
    for (int op = 0; op < 400; op++) {
      const uint64_t dice = rng.Uniform(10);
      if (dice < 4) {
        IndexEntry e;
        e.key.resize(8 + rng.Uniform(30));
        for (auto& c : e.key) c = static_cast<char>('a' + rng.Uniform(26));
        e.value = next_val++;
        e.del_txn = rng.OneIn(3) ? rng.Uniform(100) : 0;
        if (node.HasSpaceFor(e)) {
          ASSERT_OK(node.InsertEntry(e));
          shadow.push_back({e.key, e.value, e.del_txn});
        }
      } else if (dice < 6 && !shadow.empty()) {
        const uint16_t i = static_cast<uint16_t>(rng.Uniform(shadow.size()));
        node.RemoveEntry(i);
        shadow.erase(shadow.begin() + i);
      } else if (dice < 8) {
        std::string nb(rng.Uniform(60), 0);
        for (auto& c : nb) c = static_cast<char>('A' + rng.Uniform(26));
        if (node.TotalFree() > nb.size() + 64) {
          ASSERT_OK(node.SetBp(nb));
          bp = nb;
        }
      } else if (!shadow.empty()) {
        const uint16_t i = static_cast<uint16_t>(rng.Uniform(shadow.size()));
        std::string nk(4 + rng.Uniform(40), 0);
        for (auto& c : nk) c = static_cast<char>('0' + rng.Uniform(10));
        if (node.TotalFree() > nk.size() + 64) {
          ASSERT_OK(node.SetEntryKey(i, nk));
          shadow[i].key = nk;
        }
      }
      // Full-state comparison after every operation.
      ASSERT_EQ(node.count(), shadow.size()) << "round " << round
                                             << " op " << op;
      ASSERT_TRUE(node.bp() == Slice(bp)) << "round " << round << " op "
                                          << op;
      for (size_t i = 0; i < shadow.size(); i++) {
        ASSERT_TRUE(node.entry_key(i) == Slice(shadow[i].key))
            << "round " << round << " op " << op << " slot " << i;
        ASSERT_EQ(node.entry_value(i), shadow[i].value);
        ASSERT_EQ(node.entry_del_txn(i), shadow[i].del);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NodeFuzzTest,
                         ::testing::Values(12345, 999, 31337, 2026));

}  // namespace
}  // namespace gistcr
