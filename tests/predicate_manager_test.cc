#include <gtest/gtest.h>

#include "access/btree_extension.h"
#include "tests/test_util.h"
#include "txn/predicate_manager.h"

namespace gistcr {
namespace {

class PredicateManagerTest : public ::testing::Test {
 protected:
  PredicateManager pm_;
  BtreeExtension ext_;

  PredicateManager::ConflictFn InsertConflicts(const std::string& key) {
    return [this, key](const PredAttachment& a) {
      return a.kind != PredKind::kInsert &&
             ext_.Consistent(key, a.pred);
    };
  }
};

TEST_F(PredicateManagerTest, AttachIsIdempotent) {
  const std::string q = BtreeExtension::MakeRange(1, 10);
  pm_.Attach(5, 1, 1, PredKind::kSearch, q);
  pm_.Attach(5, 1, 1, PredKind::kSearch, q);  // scan revisits after split
  EXPECT_EQ(pm_.GetAttached(5).size(), 1u);
}

TEST_F(PredicateManagerTest, InsertSeesConflictingSearchPred) {
  const std::string q = BtreeExtension::MakeRange(1, 10);
  pm_.Attach(5, 1, 1, PredKind::kSearch, q);
  auto conflicts = pm_.AttachAndFindConflicts(
      5, 2, 1, PredKind::kInsert, BtreeExtension::MakeKey(7),
      InsertConflicts(BtreeExtension::MakeKey(7)));
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0], 1u);
}

TEST_F(PredicateManagerTest, InsertOutsideRangeDoesNotConflict) {
  pm_.Attach(5, 1, 1, PredKind::kSearch, BtreeExtension::MakeRange(1, 10));
  auto conflicts = pm_.AttachAndFindConflicts(
      5, 2, 1, PredKind::kInsert, BtreeExtension::MakeKey(50),
      InsertConflicts(BtreeExtension::MakeKey(50)));
  EXPECT_TRUE(conflicts.empty());
}

TEST_F(PredicateManagerTest, OwnPredicatesNeverConflict) {
  pm_.Attach(5, 1, 1, PredKind::kSearch, BtreeExtension::MakeRange(1, 10));
  auto conflicts = pm_.AttachAndFindConflicts(
      5, 1, 2, PredKind::kInsert, BtreeExtension::MakeKey(5),
      InsertConflicts(BtreeExtension::MakeKey(5)));
  EXPECT_TRUE(conflicts.empty());
}

TEST_F(PredicateManagerTest, FifoOrderOnlyChecksAhead) {
  // An insert attaches its key first; a later scan conflicts with it.
  pm_.AttachAndFindConflicts(5, 1, 1, PredKind::kInsert,
                             BtreeExtension::MakeKey(7),
                             [](const PredAttachment&) { return false; });
  const std::string q = BtreeExtension::MakeRange(1, 10);
  auto conflicts = pm_.AttachAndFindConflicts(
      5, 2, 1, PredKind::kSearch, q, [&](const PredAttachment& a) {
        return a.kind == PredKind::kInsert &&
               ext_.Consistent(a.pred, q);
      });
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0], 1u);
}

TEST_F(PredicateManagerTest, DetachOpRemovesInsertAndProbeOnly) {
  pm_.Attach(5, 1, 3, PredKind::kSearch, BtreeExtension::MakeRange(1, 2));
  pm_.Attach(5, 1, 3, PredKind::kInsert, BtreeExtension::MakeKey(1));
  pm_.Attach(6, 1, 3, PredKind::kUniqueProbe,
             BtreeExtension::MakeRange(1, 1));
  pm_.DetachOp(1, 3);
  EXPECT_EQ(pm_.GetAttached(5).size(), 1u);  // search pred survives
  EXPECT_EQ(pm_.GetAttached(5)[0].kind, PredKind::kSearch);
  EXPECT_TRUE(pm_.GetAttached(6).empty());
}

TEST_F(PredicateManagerTest, ReleaseTxnClearsEverything) {
  pm_.Attach(5, 1, 1, PredKind::kSearch, BtreeExtension::MakeRange(1, 2));
  pm_.Attach(6, 1, 2, PredKind::kInsert, BtreeExtension::MakeKey(3));
  pm_.Attach(5, 2, 1, PredKind::kSearch, BtreeExtension::MakeRange(4, 9));
  pm_.ReleaseTxn(1);
  EXPECT_EQ(pm_.TotalAttachments(), 1u);
  EXPECT_EQ(pm_.GetAttached(5)[0].txn, 2u);
}

TEST_F(PredicateManagerTest, ReplicateOnSplitCopiesConsistentPreds) {
  // Node 5 holds scans over [1,10] and [90,95]; after a split where the
  // new sibling covers [50,100], only the second must be replicated.
  pm_.Attach(5, 1, 1, PredKind::kSearch, BtreeExtension::MakeRange(1, 10));
  pm_.Attach(5, 2, 1, PredKind::kSearch, BtreeExtension::MakeRange(90, 95));
  const std::string new_bp = BtreeExtension::MakeRange(50, 100);
  pm_.ReplicateOnSplit(5, 9, [&](const PredAttachment& a) {
    return ext_.Consistent(new_bp, a.pred);
  });
  auto on_new = pm_.GetAttached(9);
  ASSERT_EQ(on_new.size(), 1u);
  EXPECT_EQ(on_new[0].txn, 2u);
  // Originals stay on node 5.
  EXPECT_EQ(pm_.GetAttached(5).size(), 2u);
}

TEST_F(PredicateManagerTest, PercolateMovesNewlyConsistentPreds) {
  // Parent has a scan over [40,60]; child BP expands from [1,10] to
  // [1,50]: the scan now overlaps the child and must come down.
  pm_.Attach(3, 1, 1, PredKind::kSearch, BtreeExtension::MakeRange(40, 60));
  pm_.Attach(3, 2, 1, PredKind::kSearch, BtreeExtension::MakeRange(2, 4));
  const std::string old_bp = BtreeExtension::MakeRange(1, 10);
  const std::string new_bp = BtreeExtension::MakeRange(1, 50);
  pm_.Percolate(3, 8, [&](const PredAttachment& a) {
    return ext_.Consistent(new_bp, a.pred) &&
           !ext_.Consistent(old_bp, a.pred);
  });
  auto on_child = pm_.GetAttached(8);
  ASSERT_EQ(on_child.size(), 1u);
  EXPECT_EQ(on_child[0].txn, 1u);
}

TEST_F(PredicateManagerTest, GlobalTableModeAccumulates) {
  pm_.Attach(PredicateManager::kGlobalTable, 1, 1, PredKind::kSearch,
             BtreeExtension::MakeRange(1, 100));
  auto conflicts = pm_.FindConflicts(
      PredicateManager::kGlobalTable, 2,
      InsertConflicts(BtreeExtension::MakeKey(42)));
  ASSERT_EQ(conflicts.size(), 1u);
}

TEST_F(PredicateManagerTest, StatsCountScans) {
  pm_.ResetStats();
  pm_.Attach(5, 1, 1, PredKind::kSearch, BtreeExtension::MakeRange(1, 10));
  pm_.AttachAndFindConflicts(5, 2, 1, PredKind::kInsert,
                             BtreeExtension::MakeKey(5),
                             InsertConflicts(BtreeExtension::MakeKey(5)));
  auto stats = pm_.GetStats();
  EXPECT_EQ(stats.attaches, 2u);
  EXPECT_EQ(stats.conflict_checks, 1u);
  EXPECT_EQ(stats.predicates_scanned, 1u);
}

TEST_F(PredicateManagerTest, DistinctOwnersDeduplicated) {
  pm_.Attach(5, 1, 1, PredKind::kSearch, BtreeExtension::MakeRange(1, 10));
  pm_.Attach(5, 1, 2, PredKind::kSearch, BtreeExtension::MakeRange(5, 20));
  auto conflicts = pm_.AttachAndFindConflicts(
      5, 2, 1, PredKind::kInsert, BtreeExtension::MakeKey(7),
      InsertConflicts(BtreeExtension::MakeKey(7)));
  EXPECT_EQ(conflicts.size(), 1u);  // same owner appears once
}

}  // namespace
}  // namespace gistcr
