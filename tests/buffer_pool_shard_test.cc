// The sharded buffer pool and the background page writer: partitioning
// invariants, cross-shard stress, FlushAll vs. concurrent eviction
// (previously correct-but-untested), and WriteBackSome/writer-daemon
// behavior (DESIGN.md section 11).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "access/btree_extension.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace gistcr {
namespace {

class BufferPoolShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("shard") + ".db";
    std::remove(path_.c_str());
    ASSERT_OK(disk_.Open(path_));
  }
  void TearDown() override {
    pool_.reset();
    disk_.Close();
    std::remove(path_.c_str());
  }

  void MakePool(size_t frames, size_t shards,
                BufferPool::WalFlushFn fn = nullptr) {
    pool_ = std::make_unique<BufferPool>(&disk_, frames, std::move(fn),
                                         shards);
  }

  /// Seeds page \p pid on disk with a recognizable stamp.
  void SeedPage(PageId pid) {
    char buf[kPageSize];
    std::memset(buf, 0, sizeof(buf));
    std::memcpy(buf + kPageSize / 2, &pid, sizeof(pid));
    ASSERT_OK(disk_.WritePage(pid, buf));
  }

  static PageId StampOf(const Frame* f) {
    PageId pid;
    std::memcpy(&pid, f->data() + kPageSize / 2, sizeof(pid));
    return pid;
  }

  std::string path_;
  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BufferPoolShardTest, AutoShardCountScalesWithPoolSize) {
  MakePool(64, 0);
  EXPECT_EQ(pool_->num_shards(), 1u);  // tiny test pools stay unsharded
  pool_.reset();
  MakePool(4096, 0);
  EXPECT_EQ(pool_->num_shards(), 16u);
  pool_.reset();
  MakePool(300, 5);  // explicit counts pass through
  EXPECT_EQ(pool_->num_shards(), 5u);
}

// Pages must stay correct while many threads fetch/dirty/unpin across all
// shards with constant eviction (4x more pages than frames).
TEST_F(BufferPoolShardTest, CrossShardFetchStress) {
  constexpr PageId kPages = 512;
  constexpr size_t kFrames = 128;
  for (PageId p = 1; p <= kPages; p++) SeedPage(p);
  MakePool(kFrames, 4);
  ASSERT_EQ(pool_->num_shards(), 4u);

  constexpr int kThreads = 8;
  std::atomic<uint64_t> fetches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Random rng(static_cast<uint64_t>(t) * 7919 + 17);
      for (int i = 0; i < 2000; i++) {
        const PageId pid =
            static_cast<PageId>(rng.UniformRange(1, kPages));
        auto f = pool_->Fetch(pid);
        ASSERT_OK(f.status());
        EXPECT_EQ(f.value()->page_id(), pid);
        EXPECT_EQ(StampOf(f.value()), pid);
        pool_->Unpin(f.value());
        fetches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fetches.load(), static_cast<uint64_t>(kThreads) * 2000);
  EXPECT_LE(pool_->ResidentCount(), kFrames);
}

// Satellite: FlushAll must tolerate a page being evicted between its
// dirty-scan and the per-page FlushPage call. The eviction already wrote
// the page under the same WAL rule, so FlushPage's no-op is correct —
// this pins that contract under a racing eviction workload.
TEST_F(BufferPoolShardTest, FlushAllToleratesConcurrentEviction) {
  constexpr PageId kPages = 256;
  constexpr size_t kFrames = 64;
  for (PageId p = 1; p <= kPages; p++) SeedPage(p);
  MakePool(kFrames, 2);

  std::atomic<bool> stop{false};
  std::thread churner([&] {
    Random rng(99);
    while (!stop.load(std::memory_order_acquire)) {
      const PageId pid = static_cast<PageId>(rng.UniformRange(1, kPages));
      auto f = pool_->Fetch(pid);
      ASSERT_OK(f.status());
      {
        PageGuard g(pool_.get(), f.value());
        g.WLatch();
        g.frame()->MarkDirty(1);
      }
    }
  });
  for (int i = 0; i < 30; i++) {
    ASSERT_OK(pool_->FlushAll());
  }
  stop.store(true, std::memory_order_release);
  churner.join();
  ASSERT_OK(pool_->FlushAll());
}

// The deterministic core of the same contract: flushing a page that is
// not resident (e.g. already evicted) is an OK no-op.
TEST_F(BufferPoolShardTest, FlushPageOnEvictedPageIsOkNoop) {
  MakePool(64, 1);
  SeedPage(7);
  ASSERT_OK(pool_->FlushPage(7));         // never resident
  ASSERT_OK(pool_->FlushPage(999999));    // never existed
}

// WriteBackSome cleans dirty pages ahead of the clock hand without
// evicting them; the dirty page table drains to empty.
TEST_F(BufferPoolShardTest, WriteBackSomeCleansDirtyPages) {
  constexpr PageId kPages = 48;
  MakePool(64, 2);
  for (PageId p = 1; p <= kPages; p++) {
    auto f = pool_->NewPage(p);
    ASSERT_OK(f.status());
    PageGuard g(pool_.get(), f.value());
    g.WLatch();
    std::memcpy(g.frame()->data() + kPageSize / 2, &p, sizeof(p));
    g.frame()->MarkDirty(1);
  }
  ASSERT_EQ(pool_->DirtyPageTable().size(), static_cast<size_t>(kPages));

  size_t total = 0;
  for (int pass = 0; pass < 100 && !pool_->DirtyPageTable().empty();
       pass++) {
    auto n = pool_->WriteBackSome(8);
    ASSERT_OK(n.status());
    total += n.value();
  }
  EXPECT_TRUE(pool_->DirtyPageTable().empty());
  EXPECT_EQ(total, static_cast<size_t>(kPages));
  // All resident and clean — and the writes actually landed on disk.
  EXPECT_EQ(pool_->ResidentCount(), static_cast<size_t>(kPages));
  char buf[kPageSize];
  ASSERT_OK(disk_.ReadPage(17, buf));
  PageId stamp;
  std::memcpy(&stamp, buf + kPageSize / 2, sizeof(stamp));
  EXPECT_EQ(stamp, static_cast<PageId>(17));
}

// The writer daemon end to end: with writer_interval_ms set, dirty pages
// from committed transactions get cleaned in the background, and shutdown
// joins the thread cleanly.
TEST(BackgroundWriterTest, DaemonCleansDirtyPagesAndShutsDown) {
  const std::string path = TestPath("writer");
  RemoveDbFiles(path);
  DatabaseOptions opts;
  opts.path = path;
  opts.buffer_pool_pages = 256;
  opts.writer_interval_ms = 2;
  BtreeExtension ext;
  {
    auto db_or = Database::Create(opts);
    ASSERT_OK(db_or.status());
    auto db = db_or.MoveValue();
    ASSERT_OK(db->CreateIndex(1, &ext));
    Gist* gist = db->GetIndex(1).value();
    Transaction* txn = db->Begin();
    for (int64_t k = 0; k < 500; k++) {
      ASSERT_OK(db->InsertRecord(txn, gist, BtreeExtension::MakeKey(k), "v")
                    .status());
    }
    ASSERT_OK(db->Commit(txn));

    // The writer drains the dirty set without any checkpoint/FlushAll.
    size_t dirty = db->pool()->DirtyPageTable().size();
    for (int i = 0; i < 500 && dirty > 0; i++) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      dirty = db->pool()->DirtyPageTable().size();
    }
    EXPECT_EQ(dirty, 0u);
    EXPECT_GT(db->metrics()->GetCounter("writer.passes")->value(), 0u);
    EXPECT_GT(db->metrics()->GetCounter("writer.pages_written")->value(),
              0u);
  }
  // Reopen: everything the writer flushed must be consistent on disk.
  {
    auto db_or = Database::Open(opts);
    ASSERT_OK(db_or.status());
    auto db = db_or.MoveValue();
    ASSERT_OK(db->OpenIndex(1, &ext));
    Gist* gist = db->GetIndex(1).value();
    Transaction* txn = db->Begin();
    std::vector<SearchResult> results;
    ASSERT_OK(gist->Search(txn, BtreeExtension::MakeRange(0, 500), &results));
    EXPECT_EQ(results.size(), 500u);
    ASSERT_OK(db->Commit(txn));
  }
  RemoveDbFiles(path);
}

}  // namespace
}  // namespace gistcr
