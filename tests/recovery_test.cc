#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "access/btree_extension.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace gistcr {
namespace {

/// Crash/restart scenarios for the recovery protocol of paper section 9.
/// A "crash" drops the buffer pool and the unflushed log tail (volatile
/// state), exactly the WAL failure model; the database is then re-Opened,
/// which runs analysis / redo / undo.
class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("rec");
    RemoveDbFiles(path_);
    opts_.path = path_;
    opts_.buffer_pool_pages = 512;
    auto db_or = Database::Create(opts_);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    GistOptions gopts;
    gopts.max_entries = 8;
    ASSERT_OK(db_->CreateIndex(1, &ext_, gopts));
    gist_ = db_->GetIndex(1).value();
  }
  void TearDown() override {
    db_.reset();
    RemoveDbFiles(path_);
  }

  /// Crash and reopen; reattaches gist_.
  void CrashAndRecover() {
    db_->SimulateCrash();
    db_.reset();
    auto db_or = Database::Open(opts_);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    // These tests assert the settled post-recovery state (and restart
    // stats), so drain instant restart's background phase first.
    ASSERT_OK(db_->WaitForRecovery());
    GistOptions gopts;
    gopts.max_entries = 8;
    ASSERT_OK(db_->OpenIndex(1, &ext_, gopts));
    gist_ = db_->GetIndex(1).value();
  }

  Rid MustInsert(Transaction* txn, int64_t key) {
    auto rid =
        db_->InsertRecord(txn, gist_, BtreeExtension::MakeKey(key), "v");
    EXPECT_OK(rid.status());
    return rid.ok() ? rid.value() : Rid{};
  }

  std::vector<int64_t> ScanAll() {
    Transaction* txn = db_->Begin(IsolationLevel::kReadCommitted);
    std::vector<SearchResult> results;
    EXPECT_OK(gist_->Search(
        txn, BtreeExtension::MakeRange(INT64_MIN / 2, INT64_MAX / 2),
        &results));
    EXPECT_OK(db_->Commit(txn));
    std::vector<int64_t> keys;
    for (const auto& r : results) keys.push_back(BtreeExtension::Lo(r.key));
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  std::string path_;
  DatabaseOptions opts_;
  std::unique_ptr<Database> db_;
  BtreeExtension ext_;
  Gist* gist_ = nullptr;
};

TEST_F(RecoveryTest, CommittedInsertsSurviveCrash) {
  Transaction* txn = db_->Begin();
  for (int64_t k = 0; k < 100; k++) MustInsert(txn, k);
  ASSERT_OK(db_->Commit(txn));  // commit forces the log
  CrashAndRecover();
  ASSERT_OK(gist_->CheckInvariants());
  auto keys = ScanAll();
  ASSERT_EQ(keys.size(), 100u);
  for (int64_t k = 0; k < 100; k++) EXPECT_EQ(keys[static_cast<size_t>(k)], k);
  // Heap records intact too.
  Transaction* t2 = db_->Begin();
  std::vector<SearchResult> results;
  ASSERT_OK(gist_->Search(t2, BtreeExtension::MakeRange(7, 7), &results));
  ASSERT_EQ(results.size(), 1u);
  auto rec = db_->ReadRecord(results[0].rid);
  ASSERT_OK(rec.status());
  EXPECT_EQ(rec.value(), "v");
  ASSERT_OK(db_->Commit(t2));
}

TEST_F(RecoveryTest, UncommittedInsertsUndoneOnRestart) {
  Transaction* committed = db_->Begin();
  for (int64_t k = 0; k < 50; k++) MustInsert(committed, k);
  ASSERT_OK(db_->Commit(committed));

  Transaction* loser = db_->Begin();
  for (int64_t k = 100; k < 150; k++) MustInsert(loser, k);
  // Force the loser's records to disk, then crash before it commits.
  ASSERT_OK(db_->log()->FlushAll());
  CrashAndRecover();
  EXPECT_GT(db_->recovery()->restart_stats().loser_txns, 0u);
  EXPECT_GT(db_->recovery()->restart_stats().records_undone, 0u);
  ASSERT_OK(gist_->CheckInvariants());
  auto keys = ScanAll();
  ASSERT_EQ(keys.size(), 50u);
  EXPECT_EQ(keys.back(), 49);
}

TEST_F(RecoveryTest, UnflushedUncommittedWorkSimplyVanishes) {
  Transaction* committed = db_->Begin();
  MustInsert(committed, 1);
  ASSERT_OK(db_->Commit(committed));
  Transaction* loser = db_->Begin();
  MustInsert(loser, 2);  // never flushed, never committed
  CrashAndRecover();
  EXPECT_EQ(ScanAll(), (std::vector<int64_t>{1}));
}

TEST_F(RecoveryTest, CommittedDeleteSurvivesCrash) {
  Transaction* t1 = db_->Begin();
  const Rid rid = MustInsert(t1, 7);
  MustInsert(t1, 8);
  ASSERT_OK(db_->Commit(t1));
  Transaction* t2 = db_->Begin();
  ASSERT_OK(db_->DeleteRecord(t2, gist_, BtreeExtension::MakeKey(7), rid));
  ASSERT_OK(db_->Commit(t2));
  CrashAndRecover();
  EXPECT_EQ(ScanAll(), (std::vector<int64_t>{8}));
  EXPECT_TRUE(db_->ReadRecord(rid).status().IsNotFound());
}

TEST_F(RecoveryTest, UncommittedDeleteUnmarkedOnRestart) {
  Transaction* t1 = db_->Begin();
  const Rid rid = MustInsert(t1, 7);
  ASSERT_OK(db_->Commit(t1));
  Transaction* loser = db_->Begin();
  ASSERT_OK(db_->DeleteRecord(loser, gist_, BtreeExtension::MakeKey(7), rid));
  ASSERT_OK(db_->log()->FlushAll());
  CrashAndRecover();
  EXPECT_EQ(ScanAll(), (std::vector<int64_t>{7}));
  EXPECT_OK(db_->ReadRecord(rid).status());
}

TEST_F(RecoveryTest, InterruptedSplitRolledBack) {
  // Fill a leaf, then crash an insert right before its split NTA commits:
  // the half-done structure modification must be reversed by restart undo
  // (paper section 9: "a node split interrupted by a system crash before a
  // parent entry could be installed").
  Transaction* t1 = db_->Begin();
  for (int64_t k = 0; k < 8; k++) MustInsert(t1, k * 10);
  ASSERT_OK(db_->Commit(t1));
  const auto splits_before = gist_->stats().splits.load();

  gist_->test_hooks().before_split_nta_end = [&]() -> Status {
    // Make sure the partial NTA is durable, then "crash" the operation.
    GISTCR_CHECK(db_->log()->FlushAll().ok());
    return Status::IOError("injected crash before NTA end");
  };
  Transaction* loser = db_->Begin();
  auto st = db_->InsertRecord(loser, gist_, BtreeExtension::MakeKey(45), "v")
                .status();
  EXPECT_TRUE(st.IsIOError());
  EXPECT_GT(gist_->stats().splits.load(), splits_before);  // split happened
  gist_->test_hooks().before_split_nta_end = nullptr;
  CrashAndRecover();

  ASSERT_OK(gist_->CheckInvariants());
  auto keys = ScanAll();
  ASSERT_EQ(keys.size(), 8u);  // 45 gone, split reversed
  // The tree still works: the freed sibling page is reusable.
  Transaction* t2 = db_->Begin();
  for (int64_t k = 0; k < 50; k++) MustInsert(t2, 1000 + k);
  ASSERT_OK(db_->Commit(t2));
  ASSERT_OK(gist_->CheckInvariants());
  EXPECT_EQ(ScanAll().size(), 58u);
}

TEST_F(RecoveryTest, CompletedSplitSurvivesSurroundingAbort) {
  // An aborted transaction's completed splits stay (nested top actions are
  // individually committed); only its content changes are undone.
  Transaction* t1 = db_->Begin();
  for (int64_t k = 0; k < 8; k++) MustInsert(t1, k * 10);
  ASSERT_OK(db_->Commit(t1));
  Transaction* loser = db_->Begin();
  for (int64_t k = 0; k < 30; k++) MustInsert(loser, 100 + k);  // splits!
  const auto splits = gist_->stats().splits.load();
  EXPECT_GT(splits, 0u);
  ASSERT_OK(db_->Abort(loser));
  ASSERT_OK(gist_->CheckInvariants());
  EXPECT_EQ(ScanAll().size(), 8u);
  // Same thing across a crash.
  Transaction* loser2 = db_->Begin();
  for (int64_t k = 0; k < 30; k++) MustInsert(loser2, 200 + k);
  ASSERT_OK(db_->log()->FlushAll());
  CrashAndRecover();
  ASSERT_OK(gist_->CheckInvariants());
  EXPECT_EQ(ScanAll().size(), 8u);
}

TEST_F(RecoveryTest, LogicalUndoChasesRightlinks) {
  // Loser inserts a key, then committed traffic splits that leaf so the
  // entry migrates right of its logged page. Restart undo must locate it
  // by rightlink traversal (section 9.2).
  Transaction* loser = db_->Begin();
  MustInsert(loser, 500);
  ASSERT_OK(db_->log()->FlushAll());

  Transaction* t2 = db_->Begin();
  for (int64_t k = 400; k < 499; k += 2) MustInsert(t2, k);
  ASSERT_OK(db_->Commit(t2));
  EXPECT_GT(gist_->stats().splits.load(), 0u);

  CrashAndRecover();
  ASSERT_OK(gist_->CheckInvariants());
  auto keys = ScanAll();
  EXPECT_EQ(keys.size(), 50u);
  EXPECT_TRUE(std::find(keys.begin(), keys.end(), 500) == keys.end());
}

TEST_F(RecoveryTest, AbortedTransactionStaysAbortedAfterCrash) {
  // CLRs are redo-only: replaying them must not resurrect the work.
  Transaction* t1 = db_->Begin();
  MustInsert(t1, 1);
  ASSERT_OK(db_->Commit(t1));
  Transaction* t2 = db_->Begin();
  MustInsert(t2, 2);
  ASSERT_OK(db_->Abort(t2));
  ASSERT_OK(db_->log()->FlushAll());
  CrashAndRecover();
  EXPECT_EQ(ScanAll(), (std::vector<int64_t>{1}));
  // Crash again with no new work: recovery is idempotent.
  CrashAndRecover();
  EXPECT_EQ(ScanAll(), (std::vector<int64_t>{1}));
}

TEST_F(RecoveryTest, CheckpointBoundsRedoAndPreservesState) {
  Transaction* t1 = db_->Begin();
  for (int64_t k = 0; k < 60; k++) MustInsert(t1, k);
  ASSERT_OK(db_->Commit(t1));
  ASSERT_OK(db_->Checkpoint());
  Transaction* t2 = db_->Begin();
  for (int64_t k = 60; k < 120; k++) MustInsert(t2, k);
  ASSERT_OK(db_->Commit(t2));
  CrashAndRecover();
  ASSERT_OK(gist_->CheckInvariants());
  EXPECT_EQ(ScanAll().size(), 120u);
}

TEST_F(RecoveryTest, CheckpointWithActiveLoserStillUndoes) {
  Transaction* loser = db_->Begin();
  for (int64_t k = 0; k < 20; k++) MustInsert(loser, k);
  // Fuzzy checkpoint while the loser is active: its ATT entry carries the
  // undo starting point.
  ASSERT_OK(db_->Checkpoint());
  for (int64_t k = 20; k < 40; k++) MustInsert(loser, k);
  ASSERT_OK(db_->log()->FlushAll());
  CrashAndRecover();
  ASSERT_OK(gist_->CheckInvariants());
  EXPECT_TRUE(ScanAll().empty());
}

TEST_F(RecoveryTest, SavepointRollbackSurvivesCrash) {
  Transaction* txn = db_->Begin();
  MustInsert(txn, 1);
  ASSERT_OK(db_->txns()->Savepoint(txn, "sp"));
  MustInsert(txn, 2);
  ASSERT_OK(db_->txns()->RollbackToSavepoint(txn, "sp"));
  MustInsert(txn, 3);
  ASSERT_OK(db_->Commit(txn));
  CrashAndRecover();
  EXPECT_EQ(ScanAll(), (std::vector<int64_t>{1, 3}));
}

TEST_F(RecoveryTest, GarbageCollectionRedone) {
  Transaction* t1 = db_->Begin();
  std::vector<Rid> rids;
  for (int64_t k = 0; k < 40; k++) rids.push_back(MustInsert(t1, k));
  ASSERT_OK(db_->Commit(t1));
  Transaction* t2 = db_->Begin();
  for (int64_t k = 0; k < 40; k += 2) {
    ASSERT_OK(db_->DeleteRecord(t2, gist_, BtreeExtension::MakeKey(k),
                                rids[static_cast<size_t>(k)]));
  }
  ASSERT_OK(db_->Commit(t2));
  Transaction* t3 = db_->Begin();
  uint64_t removed = 0, deleted = 0;
  ASSERT_OK(gist_->GarbageCollect(t3, &removed, &deleted));
  ASSERT_OK(db_->Commit(t3));
  EXPECT_EQ(removed, 20u);
  CrashAndRecover();
  ASSERT_OK(gist_->CheckInvariants());
  EXPECT_EQ(ScanAll().size(), 20u);
  // Physically gone, not just marked: dump shows 20 entries.
  std::vector<IndexEntry> entries;
  ASSERT_OK(gist_->DumpEntries(&entries));
  EXPECT_EQ(entries.size(), 20u);
}

TEST_F(RecoveryTest, NodeDeletionRedone) {
  Transaction* t1 = db_->Begin();
  std::vector<Rid> rids;
  for (int64_t k = 0; k < 100; k++) rids.push_back(MustInsert(t1, k));
  ASSERT_OK(db_->Commit(t1));
  Transaction* t2 = db_->Begin();
  for (int64_t k = 0; k < 100; k++) {
    ASSERT_OK(db_->DeleteRecord(t2, gist_, BtreeExtension::MakeKey(k),
                                rids[static_cast<size_t>(k)]));
  }
  ASSERT_OK(db_->Commit(t2));
  Transaction* t3 = db_->Begin();
  uint64_t removed = 0, deleted = 0;
  ASSERT_OK(gist_->GarbageCollect(t3, &removed, &deleted));
  ASSERT_OK(db_->Commit(t3));
  CrashAndRecover();
  ASSERT_OK(gist_->CheckInvariants());
  EXPECT_TRUE(ScanAll().empty());
  // The tree remains fully usable after node deletions + crash.
  Transaction* t4 = db_->Begin();
  for (int64_t k = 0; k < 100; k++) MustInsert(t4, k);
  ASSERT_OK(db_->Commit(t4));
  ASSERT_OK(gist_->CheckInvariants());
  EXPECT_EQ(ScanAll().size(), 100u);
}

TEST_F(RecoveryTest, RepeatedCrashRecoverCycles) {
  Random rng(31);
  std::set<int64_t> expect;
  for (int round = 0; round < 5; round++) {
    Transaction* txn = db_->Begin();
    for (int i = 0; i < 30; i++) {
      const int64_t k = rng.UniformRange(0, 10000);
      if (expect.insert(k).second) {
        MustInsert(txn, k);
      } else {
        expect.erase(k);  // don't double-insert; keep the model simple
        expect.insert(k);
      }
    }
    ASSERT_OK(db_->Commit(txn));
    Transaction* loser = db_->Begin();
    for (int i = 0; i < 10; i++) {
      MustInsert(loser, 100000 + rng.UniformRange(0, 1000));
    }
    ASSERT_OK(db_->log()->FlushAll());
    if (round % 2 == 0) ASSERT_OK(db_->Checkpoint());
    CrashAndRecover();
    ASSERT_OK(gist_->CheckInvariants());
  }
  auto keys = ScanAll();
  std::set<int64_t> found(keys.begin(), keys.end());
  EXPECT_EQ(found, expect);
}

TEST_F(RecoveryTest, RestartStatsPopulated) {
  Transaction* t1 = db_->Begin();
  for (int64_t k = 0; k < 30; k++) MustInsert(t1, k);
  ASSERT_OK(db_->Commit(t1));
  CrashAndRecover();
  const auto& stats = db_->recovery()->restart_stats();
  EXPECT_GT(stats.records_analyzed, 0u);
  EXPECT_GT(stats.records_redone, 0u);
}

// The dedicated-counter NSN mode must also recover its counter (ablation
// C3 / paper section 10.1).
class CounterNsnRecoveryTest : public RecoveryTest {
 protected:
  void SetUp() override {
    path_ = TestPath("rec_counter");
    RemoveDbFiles(path_);
    opts_.path = path_;
    opts_.buffer_pool_pages = 512;
    opts_.nsn_source = NsnSource::kCounter;
    auto db_or = Database::Create(opts_);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    GistOptions gopts;
    gopts.max_entries = 8;
    ASSERT_OK(db_->CreateIndex(1, &ext_, gopts));
    gist_ = db_->GetIndex(1).value();
  }
  void CrashAndRecoverCounter() {
    db_->SimulateCrash();
    db_.reset();
    auto db_or = Database::Open(opts_);
    ASSERT_OK(db_or.status());
    db_ = db_or.MoveValue();
    ASSERT_OK(db_->WaitForRecovery());
    GistOptions gopts;
    gopts.max_entries = 8;
    ASSERT_OK(db_->OpenIndex(1, &ext_, gopts));
    gist_ = db_->GetIndex(1).value();
  }
};

TEST_F(CounterNsnRecoveryTest, CounterRestoredAboveAllNsns) {
  Transaction* t1 = db_->Begin();
  for (int64_t k = 0; k < 200; k++) MustInsert(t1, k);
  ASSERT_OK(db_->Commit(t1));
  const Nsn counter_before = db_->nsn()->CounterValue();
  EXPECT_GT(counter_before, 0u);
  CrashAndRecoverCounter();
  EXPECT_GE(db_->nsn()->CounterValue(), counter_before);
  ASSERT_OK(gist_->CheckInvariants());
  // Splitting keeps working with monotone NSNs after restart.
  Transaction* t2 = db_->Begin();
  for (int64_t k = 200; k < 400; k++) MustInsert(t2, k);
  ASSERT_OK(db_->Commit(t2));
  ASSERT_OK(gist_->CheckInvariants());
  EXPECT_EQ(ScanAll().size(), 400u);
}

}  // namespace
}  // namespace gistcr
