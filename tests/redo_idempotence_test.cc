#include <gtest/gtest.h>

#include "access/btree_extension.h"
#include "tests/test_util.h"
#include "wal/log_manager.h"

namespace gistcr {
namespace {

/// Redo idempotence (ARIES page-LSN test): replaying the entire log —
/// once, twice, over a fully current database, or over any mix of stale
/// and current pages — must always converge to the same state. This is
/// the property that makes "repeat history" safe regardless of which
/// dirty pages reached disk before the crash.
class RedoIdempotenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("redo");
    RemoveDbFiles(path_);
    opts_.path = path_;
    opts_.buffer_pool_pages = 256;
  }
  void TearDown() override { RemoveDbFiles(path_); }

  std::vector<IndexEntry> Snapshot(Database* db, Gist* gist) {
    (void)db;
    std::vector<IndexEntry> entries;
    EXPECT_OK(gist->DumpEntries(&entries));
    std::sort(entries.begin(), entries.end(),
              [](const IndexEntry& a, const IndexEntry& b) {
                return a.value < b.value;
              });
    return entries;
  }

  std::string path_;
  DatabaseOptions opts_;
  BtreeExtension ext_;
};

TEST_F(RedoIdempotenceTest, DoubleRedoConvergesToSameState) {
  // Build a workload with splits, deletes, GC, an abort.
  {
    auto db_or = Database::Create(opts_);
    ASSERT_OK(db_or.status());
    auto db = db_or.MoveValue();
    GistOptions gopts;
    gopts.max_entries = 8;
    ASSERT_OK(db->CreateIndex(1, &ext_, gopts));
    Gist* gist = db->GetIndex(1).value();
    Transaction* t1 = db->Begin();
    std::vector<Rid> rids;
    for (int64_t k = 0; k < 80; k++) {
      auto rid = db->InsertRecord(t1, gist, BtreeExtension::MakeKey(k), "v");
      ASSERT_OK(rid.status());
      rids.push_back(rid.value());
    }
    ASSERT_OK(db->Commit(t1));
    Transaction* t2 = db->Begin();
    for (int64_t k = 0; k < 40; k += 2) {
      ASSERT_OK(db->DeleteRecord(t2, gist, BtreeExtension::MakeKey(k),
                                 rids[static_cast<size_t>(k)]));
    }
    ASSERT_OK(db->Commit(t2));
    Transaction* t3 = db->Begin();
    uint64_t r = 0, n = 0;
    ASSERT_OK(gist->GarbageCollect(t3, &r, &n));
    ASSERT_OK(db->Commit(t3));
    Transaction* t4 = db->Begin();
    for (int64_t k = 100; k < 120; k++) {
      ASSERT_OK(db->InsertRecord(t4, gist, BtreeExtension::MakeKey(k), "v")
                    .status());
    }
    ASSERT_OK(db->Abort(t4));
    ASSERT_OK(db->log()->FlushAll());
    db->SimulateCrash();
  }

  // Recover once; snapshot; replay the whole log AGAIN over the fully
  // recovered pages; snapshot must be identical and invariants hold.
  auto db_or = Database::Open(opts_);
  ASSERT_OK(db_or.status());
  auto db = db_or.MoveValue();
  ASSERT_OK(db->WaitForRecovery());
  GistOptions gopts;
  gopts.max_entries = 8;
  ASSERT_OK(db->OpenIndex(1, &ext_, gopts));
  Gist* gist = db->GetIndex(1).value();
  auto snap1 = Snapshot(db.get(), gist);
  ASSERT_OK(gist->CheckInvariants());

  int redone = 0;
  ASSERT_OK(db->log()->Scan(kInvalidLsn, [&](const LogRecord& rec) {
    EXPECT_OK(db->recovery()->RedoRecord(rec));
    redone++;
    return true;
  }));
  EXPECT_GT(redone, 100);

  auto snap2 = Snapshot(db.get(), gist);
  ASSERT_OK(gist->CheckInvariants());
  ASSERT_EQ(snap1.size(), snap2.size());
  for (size_t i = 0; i < snap1.size(); i++) {
    EXPECT_EQ(snap1[i].key, snap2[i].key);
    EXPECT_EQ(snap1[i].value, snap2[i].value);
    EXPECT_EQ(snap1[i].del_txn, snap2[i].del_txn);
  }
}

TEST_F(RedoIdempotenceTest, RecoverTwiceWithoutNewWork) {
  {
    auto db_or = Database::Create(opts_);
    ASSERT_OK(db_or.status());
    auto db = db_or.MoveValue();
    ASSERT_OK(db->CreateIndex(1, &ext_));
    Gist* gist = db->GetIndex(1).value();
    Transaction* txn = db->Begin();
    for (int64_t k = 0; k < 50; k++) {
      ASSERT_OK(db->InsertRecord(txn, gist, BtreeExtension::MakeKey(k), "v")
                    .status());
    }
    ASSERT_OK(db->Commit(txn));
    Transaction* loser = db->Begin();
    ASSERT_OK(db->InsertRecord(loser, gist, BtreeExtension::MakeKey(999),
                               "v")
                  .status());
    ASSERT_OK(db->log()->FlushAll());
    db->SimulateCrash();
  }
  std::vector<IndexEntry> snaps[2];
  for (int round = 0; round < 2; round++) {
    auto db_or = Database::Open(opts_);
    ASSERT_OK(db_or.status());
    auto db = db_or.MoveValue();
    ASSERT_OK(db->WaitForRecovery());
    ASSERT_OK(db->OpenIndex(1, &ext_));
    Gist* gist = db->GetIndex(1).value();
    ASSERT_OK(gist->CheckInvariants());
    snaps[round] = Snapshot(db.get(), gist);
    db->SimulateCrash();  // drop volatile state; recover again next round
  }
  ASSERT_EQ(snaps[0].size(), snaps[1].size());
  ASSERT_EQ(snaps[0].size(), 50u);
  for (size_t i = 0; i < snaps[0].size(); i++) {
    EXPECT_EQ(snaps[0][i].value, snaps[1][i].value);
  }
}

}  // namespace
}  // namespace gistcr
