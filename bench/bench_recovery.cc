// Experiment C5 (DESIGN.md): recovery cost (paper section 9 / Table 1).
// Series: (a) log volume per operation for each operation class;
// (b) restart time (analysis + redo + undo) as a function of workload
// size and loser fraction; (c) restart time with a mid-workload fuzzy
// checkpoint. Expected shape: restart time linear in the redo span;
// checkpoints cut it; losers add an undo component proportional to their
// update count.

#include <chrono>

#include "bench/bench_util.h"

namespace gistcr {
namespace bench {
namespace {

void BM_RestartTime(benchmark::State& state) {
  const int64_t ops = state.range(0);
  const int loser_pct = static_cast<int>(state.range(1));
  const bool checkpoint_mid = state.range(2) != 0;
  const std::string path = "/tmp/gistcr_bench_c5";
  BtreeExtension ext;

  uint64_t log_bytes = 0;
  uint64_t undone = 0;
  for (auto _ : state) {
    RemoveDbFiles(path);
    DatabaseOptions opts;
    opts.path = path;
    opts.buffer_pool_pages = 16384;
    opts.sync_commit = false;
    auto db_or = Database::Create(opts);
    BENCH_CHECK_OK(db_or.status());
    auto db = db_or.MoveValue();
    BENCH_CHECK_OK(db->CreateIndex(1, &ext));
    Gist* gist = db->GetIndex(1).value();

    const int64_t committed_ops = ops * (100 - loser_pct) / 100;
    Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
    for (int64_t k = 0; k < committed_ops; k++) {
      BENCH_CHECK_OK(
          db->InsertRecord(txn, gist, BtreeExtension::MakeKey(k), "v")
              .status());
      if (checkpoint_mid && k == committed_ops / 2) {
        BENCH_CHECK_OK(db->Commit(txn));
        BENCH_CHECK_OK(db->Checkpoint());
        txn = db->Begin(IsolationLevel::kReadCommitted);
      }
    }
    BENCH_CHECK_OK(db->Commit(txn));

    Transaction* loser = db->Begin(IsolationLevel::kReadCommitted);
    for (int64_t k = 0; k < ops * loser_pct / 100; k++) {
      BENCH_CHECK_OK(db->InsertRecord(loser, gist,
                                      BtreeExtension::MakeKey(1000000 + k),
                                      "v")
                         .status());
    }
    BENCH_CHECK_OK(db->log()->FlushAll());
    log_bytes = db->log()->TotalBytes();
    db->SimulateCrash();
    db.reset();

    // Timed region: restart recovery only.
    const auto start = std::chrono::steady_clock::now();
    auto reopened_or = Database::Open(opts);
    const auto end = std::chrono::steady_clock::now();
    BENCH_CHECK_OK(reopened_or.status());
    auto reopened = reopened_or.MoveValue();
    undone = reopened->recovery()->restart_stats().records_undone;
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
    reopened.reset();
  }
  state.counters["log_MiB"] =
      static_cast<double>(log_bytes) / (1024.0 * 1024.0);
  state.counters["log_bytes_per_op"] =
      static_cast<double>(log_bytes) / static_cast<double>(ops);
  state.counters["records_undone"] = static_cast<double>(undone);
  state.SetLabel(std::to_string(ops) + "ops/" + std::to_string(loser_pct) +
                 "%loser" + (checkpoint_mid ? "/ckpt" : ""));
  RemoveDbFiles(path);
}

// {ops, loser_pct, mid_checkpoint}
BENCHMARK(BM_RestartTime)
    ->Args({2000, 0, 0})
    ->Args({10000, 0, 0})
    ->Args({30000, 0, 0})
    ->Args({10000, 10, 0})
    ->Args({10000, 50, 0})
    ->Args({30000, 0, 1})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Log volume per operation class (paper Table 1 record set in action).
void BM_LogVolumePerOpClass(benchmark::State& state) {
  const std::string path = "/tmp/gistcr_bench_c5v";
  BtreeExtension ext;
  const int op_class = static_cast<int>(state.range(0));
  uint64_t bytes_per_op = 0;
  for (auto _ : state) {
    RemoveDbFiles(path);
    DatabaseOptions opts;
    opts.path = path;
    opts.buffer_pool_pages = 8192;
    opts.sync_commit = false;
    auto db_or = Database::Create(opts);
    BENCH_CHECK_OK(db_or.status());
    auto db = db_or.MoveValue();
    BENCH_CHECK_OK(db->CreateIndex(1, &ext));
    Gist* gist = db->GetIndex(1).value();
    constexpr int64_t kN = 5000;
    std::vector<Rid> rids;
    {
      Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
      for (int64_t k = 0; k < kN; k++) {
        auto rid =
            db->InsertRecord(txn, gist, BtreeExtension::MakeKey(k), "v");
        BENCH_CHECK_OK(rid.status());
        rids.push_back(rid.value());
      }
      BENCH_CHECK_OK(db->Commit(txn));
    }
    const uint64_t after_insert = db->log()->TotalBytes();
    if (op_class == 0) {
      bytes_per_op = after_insert / kN;
    } else if (op_class == 1) {
      Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
      for (int64_t k = 0; k < kN; k++) {
        BENCH_CHECK_OK(db->DeleteRecord(txn, gist,
                                        BtreeExtension::MakeKey(k),
                                        rids[static_cast<size_t>(k)]));
      }
      BENCH_CHECK_OK(db->Commit(txn));
      bytes_per_op = (db->log()->TotalBytes() - after_insert) / kN;
    } else {
      Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
      for (int64_t k = 0; k < kN; k++) {
        BENCH_CHECK_OK(db->DeleteRecord(txn, gist,
                                        BtreeExtension::MakeKey(k),
                                        rids[static_cast<size_t>(k)]));
      }
      BENCH_CHECK_OK(db->Commit(txn));
      const uint64_t after_delete = db->log()->TotalBytes();
      Transaction* gc = db->Begin(IsolationLevel::kReadCommitted);
      uint64_t r = 0, n = 0;
      BENCH_CHECK_OK(gist->GarbageCollect(gc, &r, &n));
      BENCH_CHECK_OK(db->Commit(gc));
      bytes_per_op = (db->log()->TotalBytes() - after_delete) / kN;
    }
  }
  state.counters["log_bytes_per_op"] = static_cast<double>(bytes_per_op);
  state.SetLabel(op_class == 0 ? "insert"
                               : (op_class == 1 ? "logical-delete" : "gc"));
  RemoveDbFiles(path);
}

BENCHMARK(BM_LogVolumePerOpClass)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace gistcr

BENCHMARK_MAIN();
