#!/usr/bin/env sh
# Runs the concurrency benchmark with registry metrics attached to every
# series and writes the combined result to BENCH_observability.json (in the
# current directory, or $1 if given). Each benchmark entry carries the
# registry-derived counters from bench_util.h ReportRegistryMetrics:
# rightlink_follows, splits, predicate_waits, deadlocks, bp_hit_rate,
# latch_wait_p99_us, wal_flush_p99_us, commit_p99_us.
#
# Usage: run_observability.sh [out.json] (expects bench_concurrency on
# PATH or next to this script's build tree: build/bench/bench_concurrency)
set -e

out="${1:-BENCH_observability.json}"
here="$(dirname "$0")"

for cand in ./bench_concurrency \
            "$here/../build/bench/bench_concurrency" \
            "$here/bench_concurrency"; do
  if [ -x "$cand" ]; then
    bin="$cand"
    break
  fi
done
if [ -z "${bin:-}" ] && command -v bench_concurrency > /dev/null 2>&1; then
  bin=bench_concurrency
fi
if [ -z "${bin:-}" ]; then
  echo "run_observability.sh: bench_concurrency binary not found" >&2
  echo "build it first: cmake -B build -S . && cmake --build build" >&2
  exit 1
fi

# Keep the sweep short: one rep, link protocol only, 1 and 4 threads of
# the mixed workload (enough concurrency to populate the contention
# metrics). Full sweeps stay with the EXPERIMENTS.md commands.
"$bin" \
  --benchmark_filter='BM_Mixed80_20/0/(real_time/)?threads:[14]$' \
  --benchmark_repetitions=1 \
  --benchmark_out="$out" \
  --benchmark_out_format=json

echo "wrote $out"
