#!/usr/bin/env sh
# Observability bench driver (ISSUE 6). Exercises the full introspection
# surface and enforces the overhead budget:
#
#   1. bench_server --obs-report: identical workload with tracing +
#      slow-op capture OFF then ON; writes BENCH_obs.json and fails if
#      the instrumented run is >5% slower or the per-stage histograms do
#      not sum to end-to-end latency within 10%.
#   2. The same run scrapes kStats mid-load in Prometheus format
#      (--stats-dump) so CI can upload the exposition text as an artifact.
#   3. bench_concurrency BM_TraceOverhead: engine-layer obs_off/obs_on
#      rows (localizes a budget regression to the engine vs the server).
#
# Usage: run_observability.sh [outdir]
#   outdir          where reports land (default: current directory)
#   GISTCR_BIN_DIR  directory holding bench_server / bench_concurrency
#                   (default: <repo>/build/bench)
#   GISTCR_BENCH_SECONDS  per-phase duration for bench_server (default 5)
set -e

outdir="${1:-.}"
here="$(cd "$(dirname "$0")" && pwd)"
bindir="${GISTCR_BIN_DIR:-$here/../build/bench}"
seconds="${GISTCR_BENCH_SECONDS:-5}"

for bin in bench_server bench_concurrency; do
  if [ ! -x "$bindir/$bin" ]; then
    echo "run_observability.sh: $bindir/$bin not found or not executable" >&2
    echo "build it first (cmake -B build -S . && cmake --build build)," >&2
    echo "or point GISTCR_BIN_DIR at the directory containing it" >&2
    exit 1
  fi
done
mkdir -p "$outdir"

echo "== bench_server obs report (OFF vs ON, ${seconds}s per phase) =="
"$bindir/bench_server" \
  --clients=4 --seconds="$seconds" --read-pct=50 \
  --db=/tmp/gistcr_bench_obs_server \
  --report="$outdir/BENCH_server_latency.json" \
  --obs-report="$outdir/BENCH_obs.json" \
  --stats-dump="$outdir/stats_prometheus.txt"

echo "== bench_concurrency trace-overhead series =="
"$bindir/bench_concurrency" \
  --benchmark_filter='BM_TraceOverhead/[01]/(real_time/)?threads:[14]$' \
  --benchmark_repetitions=1 \
  --benchmark_out="$outdir/BENCH_observability.json" \
  --benchmark_out_format=json

echo "wrote $outdir/BENCH_obs.json, $outdir/stats_prometheus.txt," \
     "$outdir/BENCH_observability.json"
