// Closed-loop load driver for the network server (ISSUE: tentpole bench).
//
// Spawns an in-process Server over a fresh Database, then N client threads
// each running a closed loop of auto-commit operations (insert / search mix)
// until the deadline. Reports throughput and p50/p95/p99 latency per op
// class, writes a JSON report for CI artifacts, and exits non-zero if any
// protocol error occurred (lock contention — Deadlock/Busy — is counted
// separately: that is the engine working, not the protocol failing).
//
//   bench_server --clients=8 --seconds=10 --read-pct=50
//                --report=BENCH_server_latency.json
//
// After the run the server is shut down gracefully and the database is
// reopened with a full invariant check, so every bench run also exercises
// the drain-then-recover path end to end.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "access/btree_extension.h"
#include "bench/commit_report.h"
#include "client/client.h"
#include "db/database.h"
#include "obs/op_context.h"
#include "obs/trace.h"
#include "server/server.h"
#include "util/random.h"

namespace gistcr {
namespace {

struct BenchConfig {
  int clients = 8;
  int seconds = 5;
  int read_pct = 50;
  int64_t keyspace = 100000;
  std::string report = "BENCH_server_latency.json";
  /// When nonempty, the durable-commit pipeline stats (commits/s, commit
  /// latency percentiles, group-commit batch size) are written there in
  /// the same format bench_concurrency uses for BENCH_commit.json.
  std::string commit_report;
  /// fdatasync on every commit — the configuration under which the commit
  /// report measures true group commit. Off by default: the latency bench
  /// measures protocol scaling, not durability.
  bool sync_commit = false;
  std::string db_path = "/tmp/gistcr_bench_server";
  /// When nonempty, a scrape client connects halfway through the run,
  /// issues kStats in Prometheus format, and writes the exposition text
  /// there (CI uploads it as an artifact). The run fails if the dump does
  /// not look like valid exposition text.
  std::string stats_dump;
  /// When nonempty, the bench runs interleaved pairs — tracing + slow-op
  /// capture disabled, then enabled — and writes an observability
  /// overhead report there (median per-pair throughput ratio). Exits
  /// non-zero if the instrumented arm is more than kObsOverheadLimitPct
  /// slower, or if the per-stage latency histograms do not sum to the
  /// end-to-end request histogram within 10%.
  std::string obs_report;
  /// Internal: whether this phase runs with tracing/slow-op capture on.
  bool obs_enabled = true;
};

/// ISSUE 6 acceptance gate: observability overhead budget, percent.
constexpr double kObsOverheadLimitPct = 5.0;

struct OpStats {
  std::vector<uint64_t> latencies_ns;
  uint64_t ops = 0;
  uint64_t contention = 0;  ///< Deadlock/Busy answers (expected under load)
  uint64_t protocol_errors = 0;
};

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double PercentileMs(std::vector<uint64_t>& v, double p) {
  if (v.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<long>(idx), v.end());
  return static_cast<double>(v[idx]) / 1e6;
}

void ClientLoop(const BenchConfig& cfg, uint16_t port, int id,
                std::atomic<bool>* stop, OpStats* inserts, OpStats* searches) {
  ClientOptions copts;
  copts.port = port;
  Client c(copts);
  if (!c.Connect().ok()) {
    inserts->protocol_errors++;
    return;
  }
  Random rnd(0x5EED0000u + static_cast<uint64_t>(id));
  while (!stop->load(std::memory_order_relaxed)) {
    const bool is_read =
        static_cast<int>(rnd.Uniform(100)) < cfg.read_pct;
    const int64_t k = static_cast<int64_t>(rnd.Uniform(
        static_cast<uint64_t>(cfg.keyspace)));
    const uint64_t t0 = NowNs();
    Status st;
    if (is_read) {
      st = c.Search(1, BtreeExtension::MakeRange(k, k + 9)).status();
    } else {
      st = c.Insert(1, BtreeExtension::MakeKey(k),
                    "v" + std::to_string(k))
               .status();
    }
    const uint64_t dt = NowNs() - t0;
    OpStats* s = is_read ? searches : inserts;
    if (st.ok()) {
      s->ops++;
      s->latencies_ns.push_back(dt);
    } else if (st.IsDeadlock() || st.IsBusy()) {
      s->contention++;
    } else {
      s->protocol_errors++;
      std::fprintf(stderr, "[client %d] protocol error: %s\n", id,
                   st.ToString().c_str());
    }
  }
}

/// Aggregates a single phase needs by the observability report: raw
/// throughput plus the server-side stage/total histogram sums captured
/// before shutdown.
struct RunResult {
  double throughput = 0;
  uint64_t requests = 0;
  uint64_t stage_sum_ns = 0;
  uint64_t total_sum_ns = 0;
  std::string stats_text;  ///< mid-run Prometheus scrape, if requested
};

/// Mid-run admin scrape: wait half the bench, then ask the server for its
/// metrics in Prometheus exposition format over the same wire protocol the
/// load clients use.
void ScrapeLoop(const BenchConfig& cfg, uint16_t port, std::string* out) {
  std::this_thread::sleep_for(
      std::chrono::milliseconds(cfg.seconds * 1000 / 2));
  ClientOptions copts;
  copts.port = port;
  Client c(copts);
  if (!c.Connect().ok()) return;
  auto stats = c.Stats(/*prometheus=*/true);
  if (stats.ok()) *out = stats.MoveValue();
}

int Run(const BenchConfig& cfg, RunResult* result = nullptr) {
  for (const char* suffix : {".db", ".wal", ".ckpt", ".flight"}) {
    std::remove((cfg.db_path + suffix).c_str());
  }
  obs::Tracer::Global().SetEnabled(cfg.obs_enabled);
  DatabaseOptions dopts;
  dopts.path = cfg.db_path;
  dopts.buffer_pool_pages = 4096;
  dopts.sync_commit = cfg.sync_commit;
  auto db_or = Database::Create(dopts);
  if (!db_or.ok()) {
    std::fprintf(stderr, "Create: %s\n", db_or.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<Database> db = db_or.MoveValue();
  if (!cfg.obs_enabled) db->slow_ops()->SetThresholdNs(0);
  BtreeExtension bt;
  if (!db->CreateIndex(1, &bt).ok()) return 2;

  ServerOptions sopts;
  sopts.num_workers = 4;
  Server server(db.get(), sopts);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 2;
  }
  std::printf("bench_server: %d clients, %ds, %d%% reads, port %u\n",
              cfg.clients, cfg.seconds, cfg.read_pct, server.port());

  std::atomic<bool> stop{false};
  std::vector<OpStats> ins(static_cast<size_t>(cfg.clients));
  std::vector<OpStats> sea(static_cast<size_t>(cfg.clients));
  std::vector<std::thread> threads;
  const uint64_t bench_start = NowNs();
  for (int i = 0; i < cfg.clients; i++) {
    threads.emplace_back(ClientLoop, std::cref(cfg), server.port(), i, &stop,
                         &ins[static_cast<size_t>(i)],
                         &sea[static_cast<size_t>(i)]);
  }
  std::string stats_text;
  std::thread scraper;
  if (!cfg.stats_dump.empty()) {
    scraper = std::thread(ScrapeLoop, std::cref(cfg), server.port(),
                          &stats_text);
  }
  std::this_thread::sleep_for(std::chrono::seconds(cfg.seconds));
  stop.store(true);
  for (auto& t : threads) t.join();
  if (scraper.joinable()) scraper.join();
  const double elapsed_s =
      static_cast<double>(NowNs() - bench_start) / 1e9;

  OpStats insert_all, search_all;
  for (int i = 0; i < cfg.clients; i++) {
    auto& is = ins[static_cast<size_t>(i)];
    auto& ss = sea[static_cast<size_t>(i)];
    insert_all.ops += is.ops;
    insert_all.contention += is.contention;
    insert_all.protocol_errors += is.protocol_errors;
    insert_all.latencies_ns.insert(insert_all.latencies_ns.end(),
                                   is.latencies_ns.begin(),
                                   is.latencies_ns.end());
    search_all.ops += ss.ops;
    search_all.contention += ss.contention;
    search_all.protocol_errors += ss.protocol_errors;
    search_all.latencies_ns.insert(search_all.latencies_ns.end(),
                                   ss.latencies_ns.begin(),
                                   ss.latencies_ns.end());
  }

  const uint64_t total_ops = insert_all.ops + search_all.ops;
  const uint64_t errors =
      insert_all.protocol_errors + search_all.protocol_errors;
  const double tput = static_cast<double>(total_ops) / elapsed_s;

  struct Row {
    const char* name;
    OpStats* s;
  } rows[] = {{"insert", &insert_all}, {"search", &search_all}};
  std::string json = "{\n";
  json += "  \"clients\": " + std::to_string(cfg.clients) + ",\n";
  json += "  \"seconds\": " + std::to_string(elapsed_s) + ",\n";
  json += "  \"throughput_ops_per_s\": " + std::to_string(tput) + ",\n";
  json += "  \"protocol_errors\": " + std::to_string(errors) + ",\n";
  for (auto& row : rows) {
    const double p50 = PercentileMs(row.s->latencies_ns, 0.50);
    const double p95 = PercentileMs(row.s->latencies_ns, 0.95);
    const double p99 = PercentileMs(row.s->latencies_ns, 0.99);
    std::printf(
        "%-7s ops=%-8llu contention=%-6llu p50=%.3fms p95=%.3fms "
        "p99=%.3fms\n",
        row.name, static_cast<unsigned long long>(row.s->ops),
        static_cast<unsigned long long>(row.s->contention), p50, p95, p99);
    json += std::string("  \"") + row.name + "\": {\"ops\": " +
            std::to_string(row.s->ops) + ", \"contention\": " +
            std::to_string(row.s->contention) + ", \"p50_ms\": " +
            std::to_string(p50) + ", \"p95_ms\": " + std::to_string(p95) +
            ", \"p99_ms\": " + std::to_string(p99) + "},\n";
  }
  json += "  \"total_ops\": " + std::to_string(total_ops) + "\n}\n";
  std::printf("total   %llu ops in %.1fs = %.0f ops/s, %llu protocol errors\n",
              static_cast<unsigned long long>(total_ops), elapsed_s, tput,
              static_cast<unsigned long long>(errors));

  FILE* f = std::fopen(cfg.report.c_str(), "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("report: %s\n", cfg.report.c_str());
  }

  if (!cfg.commit_report.empty()) {
    // Every server-side write is an auto-commit transaction, so the
    // registry's txn.commits is the commit count for this run (the preload
    // is zero here, unlike bench_concurrency).
    const uint64_t commits =
        db->metrics()->GetCounter("txn.commits")->value();
    bench::WriteCommitReport(cfg.commit_report, cfg.clients, elapsed_s,
                             commits, db.get());
    std::printf("commit report: %s (%llu commits, sync_commit=%d)\n",
                cfg.commit_report.c_str(),
                static_cast<unsigned long long>(commits),
                cfg.sync_commit ? 1 : 0);
  }

  if (!cfg.stats_dump.empty()) {
    // The scrape ran mid-load; an empty or non-exposition answer means the
    // admin surface broke under concurrency, which is exactly what this
    // flag exists to catch.
    if (stats_text.find("# TYPE ") == std::string::npos ||
        stats_text.find("gistcr_server_requests") == std::string::npos) {
      std::fprintf(stderr, "FAIL: mid-run kStats scrape not valid "
                           "Prometheus text (%zu bytes)\n",
                   stats_text.size());
      return 1;
    }
    FILE* sf = std::fopen(cfg.stats_dump.c_str(), "w");
    if (sf != nullptr) {
      std::fwrite(stats_text.data(), 1, stats_text.size(), sf);
      std::fclose(sf);
      std::printf("stats dump: %s (%zu bytes)\n", cfg.stats_dump.c_str(),
                  stats_text.size());
    }
  }

  if (result != nullptr) {
    result->throughput = tput;
    result->requests = total_ops;
    result->stats_text = stats_text;
    for (size_t s = 0; s < obs::kNumStages; s++) {
      const std::string name = std::string("rpc.stage.") +
                               obs::StageName(static_cast<obs::Stage>(s));
      result->stage_sum_ns +=
          db->metrics()->GetHistogram(name)->GetSnapshot().sum;
    }
    result->total_sum_ns =
        db->metrics()->GetHistogram("rpc.request_total")->GetSnapshot().sum;
  }

  // Drain, checkpoint, reopen, verify: the bench doubles as a soak test of
  // the graceful-shutdown acceptance criterion.
  if (!server.Shutdown().ok()) {
    std::fprintf(stderr, "graceful shutdown failed\n");
    return 2;
  }
  db.reset();
  auto reopen = Database::Open(dopts);
  if (!reopen.ok()) {
    std::fprintf(stderr, "reopen: %s\n", reopen.status().ToString().c_str());
    return 2;
  }
  db = reopen.MoveValue();
  if (!db->OpenIndex(1, &bt).ok()) return 2;
  Status inv = db->GetIndex(1).value()->CheckInvariants();
  if (!inv.ok()) {
    std::fprintf(stderr, "post-shutdown invariants: %s\n",
                 inv.ToString().c_str());
    return 2;
  }
  std::printf("post-shutdown reopen + invariant check: OK\n");

  if (errors != 0) {
    std::fprintf(stderr, "FAIL: %llu protocol errors\n",
                 static_cast<unsigned long long>(errors));
    return 1;
  }
  if (total_ops == 0) {
    std::fprintf(stderr, "FAIL: no operations completed\n");
    return 1;
  }
  return 0;
}

/// Per-arm accounting for the interleaved overhead measurement.
struct ObsArm {
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> latency_ns{0};
};

/// Closed-loop client that attributes every completed op to whichever arm
/// (0 = tracing off, 1 = tracing on) was active when the op started.
void ObsClientLoop(const BenchConfig& cfg, uint16_t port, int id,
                   std::atomic<bool>* stop, std::atomic<int>* arm,
                   ObsArm* arms, std::atomic<uint64_t>* errors) {
  ClientOptions copts;
  copts.port = port;
  Client c(copts);
  if (!c.Connect().ok()) {
    errors->fetch_add(1);
    return;
  }
  Random rnd(0x0B5EED00u + static_cast<uint64_t>(id));
  while (!stop->load(std::memory_order_relaxed)) {
    const int a = arm->load(std::memory_order_relaxed);
    const bool is_read =
        static_cast<int>(rnd.Uniform(100)) < cfg.read_pct;
    const int64_t k = static_cast<int64_t>(rnd.Uniform(
        static_cast<uint64_t>(cfg.keyspace)));
    const uint64_t t0 = NowNs();
    Status st;
    if (is_read) {
      st = c.Search(1, BtreeExtension::MakeRange(k, k + 9)).status();
    } else {
      st = c.Insert(1, BtreeExtension::MakeKey(k),
                    "v" + std::to_string(k))
               .status();
    }
    if (st.ok()) {
      if (a >= 0) {
        arms[a].ops.fetch_add(1, std::memory_order_relaxed);
        arms[a].latency_ns.fetch_add(NowNs() - t0,
                                     std::memory_order_relaxed);
      }
    } else if (!st.IsDeadlock() && !st.IsBusy()) {
      errors->fetch_add(1);
      std::fprintf(stderr, "[obs client %d] protocol error: %s\n", id,
                   st.ToString().c_str());
    }
  }
}

/// Observability overhead report (ISSUE 6 satellite): one continuous
/// server run during which tracing + slow-op capture are toggled every
/// 250 ms, with each completed op attributed to the arm active at its
/// start. Coarse A/B phases cannot resolve a 5% budget on a shared box
/// (identical back-to-back runs swing ~20% with ambient load); the
/// fine-grained interleave exposes both arms to the same noise, so the
/// per-arm op counts — accumulated over equal total time — compare the
/// instrumentation cost itself. Writes BENCH_obs.json; fails if the
/// instrumented arm is more than kObsOverheadLimitPct slower, or if the
/// per-stage histograms do not sum to the end-to-end request histogram
/// within 10%.
int RunObsReport(const BenchConfig& cfg) {
  for (const char* suffix : {".db", ".wal", ".ckpt", ".flight"}) {
    std::remove((cfg.db_path + suffix).c_str());
  }
  obs::Tracer::Global().SetEnabled(true);
  DatabaseOptions dopts;
  dopts.path = cfg.db_path;
  dopts.buffer_pool_pages = 4096;
  dopts.sync_commit = cfg.sync_commit;
  auto db_or = Database::Create(dopts);
  if (!db_or.ok()) {
    std::fprintf(stderr, "Create: %s\n", db_or.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<Database> db = db_or.MoveValue();
  const uint64_t slow_threshold = db->slow_ops()->threshold_ns();
  BtreeExtension bt;
  if (!db->CreateIndex(1, &bt).ok()) return 2;
  ServerOptions sopts;
  sopts.num_workers = 4;
  Server server(db.get(), sopts);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 2;
  }
  std::printf(
      "obs-report: %d clients, %ds per arm, 250ms interleave, port %u\n",
      cfg.clients, cfg.seconds, server.port());

  std::atomic<bool> stop{false};
  std::atomic<int> arm{-1};  // -1 = warmup (uncounted)
  ObsArm arms[2];
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < cfg.clients; i++) {
    threads.emplace_back(ObsClientLoop, std::cref(cfg), server.port(), i,
                         &stop, &arm, arms, &errors);
  }

  std::string stats_text;
  std::thread scraper;
  constexpr int kSliceMs = 250;
  const int slices = std::max(4, cfg.seconds * 2000 / kSliceMs) & ~3;
  // Warmup outside the measurement: the first second decays steeply
  // (page cache, allocator, tree fanout) and ABBA only cancels drift
  // that is linear across a slice quartet.
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  for (int i = 0; i < slices; i++) {
    // ABBA ordering (off,on,on,off): throughput drifts monotonically
    // within a run as the tree grows, and strict alternation would hand
    // the leading arm the faster moment of every pair. The mirrored
    // pattern cancels linear drift exactly.
    const int a = (i % 4 == 1 || i % 4 == 2) ? 1 : 0;
    obs::Tracer::Global().SetEnabled(a == 1);
    db->slow_ops()->SetThresholdNs(a == 1 ? slow_threshold : 0);
    arm.store(a, std::memory_order_relaxed);
    if (i == slices / 2 && !cfg.stats_dump.empty()) {
      // Mid-run Prometheus scrape, concurrent with the load.
      BenchConfig scfg = cfg;
      scfg.seconds = 0;
      scraper = std::thread(ScrapeLoop, scfg, server.port(), &stats_text);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(kSliceMs));
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  if (scraper.joinable()) scraper.join();
  obs::Tracer::Global().SetEnabled(true);  // leave the process sane
  db->slow_ops()->SetThresholdNs(slow_threshold);

  const uint64_t ops_off = arms[0].ops.load();
  const uint64_t ops_on = arms[1].ops.load();
  const double mean_lat_off_us =
      ops_off == 0 ? 0.0
                   : static_cast<double>(arms[0].latency_ns.load()) /
                         static_cast<double>(ops_off) / 1e3;
  const double mean_lat_on_us =
      ops_on == 0 ? 0.0
                  : static_cast<double>(arms[1].latency_ns.load()) /
                        static_cast<double>(ops_on) / 1e3;
  const double overhead_pct =
      ops_off == 0 ? 0.0
                   : (static_cast<double>(ops_off) -
                      static_cast<double>(ops_on)) *
                         100.0 / static_cast<double>(ops_off);

  uint64_t stage_sum_ns = 0;
  for (size_t s = 0; s < obs::kNumStages; s++) {
    const std::string name = std::string("rpc.stage.") +
                             obs::StageName(static_cast<obs::Stage>(s));
    stage_sum_ns += db->metrics()->GetHistogram(name)->GetSnapshot().sum;
  }
  const uint64_t total_sum_ns =
      db->metrics()->GetHistogram("rpc.request_total")->GetSnapshot().sum;
  const double stage_ratio =
      total_sum_ns == 0 ? 0.0
                        : static_cast<double>(stage_sum_ns) /
                              static_cast<double>(total_sum_ns);

  if (!cfg.stats_dump.empty()) {
    if (stats_text.find("# TYPE ") == std::string::npos ||
        stats_text.find("gistcr_server_requests") == std::string::npos) {
      std::fprintf(stderr, "FAIL: mid-run kStats scrape not valid "
                           "Prometheus text (%zu bytes)\n",
                   stats_text.size());
      return 1;
    }
    FILE* sf = std::fopen(cfg.stats_dump.c_str(), "w");
    if (sf != nullptr) {
      std::fwrite(stats_text.data(), 1, stats_text.size(), sf);
      std::fclose(sf);
      std::printf("stats dump: %s (%zu bytes)\n", cfg.stats_dump.c_str(),
                  stats_text.size());
    }
  }

  std::string json = "{\n";
  json += "  \"clients\": " + std::to_string(cfg.clients) + ",\n";
  json += "  \"seconds_per_arm\": " + std::to_string(cfg.seconds) + ",\n";
  json += "  \"read_pct\": " + std::to_string(cfg.read_pct) + ",\n";
  json += "  \"interleave_ms\": " + std::to_string(kSliceMs) + ",\n";
  json += "  \"tracing_off\": {\"ops\": " + std::to_string(ops_off) +
          ", \"mean_latency_us\": " + std::to_string(mean_lat_off_us) +
          "},\n";
  json += "  \"tracing_on\": {\"ops\": " + std::to_string(ops_on) +
          ", \"mean_latency_us\": " + std::to_string(mean_lat_on_us) +
          ", \"stage_sum_ns\": " + std::to_string(stage_sum_ns) +
          ", \"request_total_sum_ns\": " + std::to_string(total_sum_ns) +
          "},\n";
  json += "  \"overhead_pct\": " + std::to_string(overhead_pct) + ",\n";
  json += "  \"overhead_limit_pct\": " +
          std::to_string(kObsOverheadLimitPct) + ",\n";
  json += "  \"stage_to_total_ratio\": " + std::to_string(stage_ratio) +
          "\n}\n";
  FILE* f = std::fopen(cfg.obs_report.c_str(), "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  std::printf(
      "obs report: %s (overhead %.2f%%, off %llu ops / on %llu ops, "
      "stage/total ratio %.4f)\n",
      cfg.obs_report.c_str(), overhead_pct,
      static_cast<unsigned long long>(ops_off),
      static_cast<unsigned long long>(ops_on), stage_ratio);

  // Same graceful epilogue as Run: drain, reopen, verify.
  if (!server.Shutdown().ok()) {
    std::fprintf(stderr, "graceful shutdown failed\n");
    return 2;
  }
  db.reset();
  auto reopen = Database::Open(dopts);
  if (!reopen.ok()) {
    std::fprintf(stderr, "reopen: %s\n", reopen.status().ToString().c_str());
    return 2;
  }
  db = reopen.MoveValue();
  if (!db->OpenIndex(1, &bt).ok()) return 2;
  Status inv = db->GetIndex(1).value()->CheckInvariants();
  if (!inv.ok()) {
    std::fprintf(stderr, "post-shutdown invariants: %s\n",
                 inv.ToString().c_str());
    return 2;
  }

  if (errors.load() != 0) {
    std::fprintf(stderr, "FAIL: %llu protocol errors\n",
                 static_cast<unsigned long long>(errors.load()));
    return 1;
  }
  if (ops_off == 0 || ops_on == 0) {
    std::fprintf(stderr, "FAIL: an arm completed no operations\n");
    return 1;
  }
  if (stage_ratio < 0.9 || stage_ratio > 1.1) {
    std::fprintf(stderr,
                 "FAIL: stage histograms sum to %.1f%% of end-to-end "
                 "latency (must be within 10%%)\n",
                 stage_ratio * 100.0);
    return 1;
  }
  if (overhead_pct > kObsOverheadLimitPct) {
    std::fprintf(stderr,
                 "FAIL: observability overhead %.2f%% exceeds %.1f%% "
                 "budget\n",
                 overhead_pct, kObsOverheadLimitPct);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace gistcr

int main(int argc, char** argv) {
  gistcr::BenchConfig cfg;
  for (int i = 1; i < argc; i++) {
    const char* a = argv[i];
    if (std::strncmp(a, "--clients=", 10) == 0) {
      cfg.clients = std::atoi(a + 10);
    } else if (std::strncmp(a, "--seconds=", 10) == 0) {
      cfg.seconds = std::atoi(a + 10);
    } else if (std::strncmp(a, "--read-pct=", 11) == 0) {
      cfg.read_pct = std::atoi(a + 11);
    } else if (std::strncmp(a, "--keyspace=", 11) == 0) {
      cfg.keyspace = std::atoll(a + 11);
    } else if (std::strncmp(a, "--report=", 9) == 0) {
      cfg.report = a + 9;
    } else if (std::strncmp(a, "--commit-report=", 16) == 0) {
      cfg.commit_report = a + 16;
    } else if (std::strncmp(a, "--sync-commit=", 14) == 0) {
      cfg.sync_commit = std::atoi(a + 14) != 0;
    } else if (std::strncmp(a, "--db=", 5) == 0) {
      cfg.db_path = a + 5;
    } else if (std::strncmp(a, "--stats-dump=", 13) == 0) {
      cfg.stats_dump = a + 13;
    } else if (std::strncmp(a, "--obs-report=", 13) == 0) {
      cfg.obs_report = a + 13;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--clients=N] [--seconds=S] [--read-pct=P]\n"
                   "          [--keyspace=K] [--report=PATH] [--db=PATH]\n"
                   "          [--commit-report=PATH] [--sync-commit=0|1]\n"
                   "          [--stats-dump=PATH] [--obs-report=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (cfg.clients < 1 || cfg.seconds < 1) {
    std::fprintf(stderr, "bad --clients/--seconds\n");
    return 2;
  }
  if (!cfg.obs_report.empty()) return gistcr::RunObsReport(cfg);
  return gistcr::Run(cfg);
}
