// Closed-loop load driver for the network server (ISSUE: tentpole bench).
//
// Spawns an in-process Server over a fresh Database, then N client threads
// each running a closed loop of auto-commit operations (insert / search mix)
// until the deadline. Reports throughput and p50/p95/p99 latency per op
// class, writes a JSON report for CI artifacts, and exits non-zero if any
// protocol error occurred (lock contention — Deadlock/Busy — is counted
// separately: that is the engine working, not the protocol failing).
//
//   bench_server --clients=8 --seconds=10 --read-pct=50
//                --report=BENCH_server_latency.json
//
// After the run the server is shut down gracefully and the database is
// reopened with a full invariant check, so every bench run also exercises
// the drain-then-recover path end to end.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "access/btree_extension.h"
#include "bench/commit_report.h"
#include "client/client.h"
#include "db/database.h"
#include "server/server.h"
#include "util/random.h"

namespace gistcr {
namespace {

struct BenchConfig {
  int clients = 8;
  int seconds = 5;
  int read_pct = 50;
  int64_t keyspace = 100000;
  std::string report = "BENCH_server_latency.json";
  /// When nonempty, the durable-commit pipeline stats (commits/s, commit
  /// latency percentiles, group-commit batch size) are written there in
  /// the same format bench_concurrency uses for BENCH_commit.json.
  std::string commit_report;
  /// fdatasync on every commit — the configuration under which the commit
  /// report measures true group commit. Off by default: the latency bench
  /// measures protocol scaling, not durability.
  bool sync_commit = false;
  std::string db_path = "/tmp/gistcr_bench_server";
};

struct OpStats {
  std::vector<uint64_t> latencies_ns;
  uint64_t ops = 0;
  uint64_t contention = 0;  ///< Deadlock/Busy answers (expected under load)
  uint64_t protocol_errors = 0;
};

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double PercentileMs(std::vector<uint64_t>& v, double p) {
  if (v.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<long>(idx), v.end());
  return static_cast<double>(v[idx]) / 1e6;
}

void ClientLoop(const BenchConfig& cfg, uint16_t port, int id,
                std::atomic<bool>* stop, OpStats* inserts, OpStats* searches) {
  ClientOptions copts;
  copts.port = port;
  Client c(copts);
  if (!c.Connect().ok()) {
    inserts->protocol_errors++;
    return;
  }
  Random rnd(0x5EED0000u + static_cast<uint64_t>(id));
  while (!stop->load(std::memory_order_relaxed)) {
    const bool is_read =
        static_cast<int>(rnd.Uniform(100)) < cfg.read_pct;
    const int64_t k = static_cast<int64_t>(rnd.Uniform(
        static_cast<uint64_t>(cfg.keyspace)));
    const uint64_t t0 = NowNs();
    Status st;
    if (is_read) {
      st = c.Search(1, BtreeExtension::MakeRange(k, k + 9)).status();
    } else {
      st = c.Insert(1, BtreeExtension::MakeKey(k),
                    "v" + std::to_string(k))
               .status();
    }
    const uint64_t dt = NowNs() - t0;
    OpStats* s = is_read ? searches : inserts;
    if (st.ok()) {
      s->ops++;
      s->latencies_ns.push_back(dt);
    } else if (st.IsDeadlock() || st.IsBusy()) {
      s->contention++;
    } else {
      s->protocol_errors++;
      std::fprintf(stderr, "[client %d] protocol error: %s\n", id,
                   st.ToString().c_str());
    }
  }
}

int Run(const BenchConfig& cfg) {
  for (const char* suffix : {".db", ".wal", ".ckpt"}) {
    std::remove((cfg.db_path + suffix).c_str());
  }
  DatabaseOptions dopts;
  dopts.path = cfg.db_path;
  dopts.buffer_pool_pages = 4096;
  dopts.sync_commit = cfg.sync_commit;
  auto db_or = Database::Create(dopts);
  if (!db_or.ok()) {
    std::fprintf(stderr, "Create: %s\n", db_or.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<Database> db = db_or.MoveValue();
  BtreeExtension bt;
  if (!db->CreateIndex(1, &bt).ok()) return 2;

  ServerOptions sopts;
  sopts.num_workers = 4;
  Server server(db.get(), sopts);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 2;
  }
  std::printf("bench_server: %d clients, %ds, %d%% reads, port %u\n",
              cfg.clients, cfg.seconds, cfg.read_pct, server.port());

  std::atomic<bool> stop{false};
  std::vector<OpStats> ins(static_cast<size_t>(cfg.clients));
  std::vector<OpStats> sea(static_cast<size_t>(cfg.clients));
  std::vector<std::thread> threads;
  const uint64_t bench_start = NowNs();
  for (int i = 0; i < cfg.clients; i++) {
    threads.emplace_back(ClientLoop, std::cref(cfg), server.port(), i, &stop,
                         &ins[static_cast<size_t>(i)],
                         &sea[static_cast<size_t>(i)]);
  }
  std::this_thread::sleep_for(std::chrono::seconds(cfg.seconds));
  stop.store(true);
  for (auto& t : threads) t.join();
  const double elapsed_s =
      static_cast<double>(NowNs() - bench_start) / 1e9;

  OpStats insert_all, search_all;
  for (int i = 0; i < cfg.clients; i++) {
    auto& is = ins[static_cast<size_t>(i)];
    auto& ss = sea[static_cast<size_t>(i)];
    insert_all.ops += is.ops;
    insert_all.contention += is.contention;
    insert_all.protocol_errors += is.protocol_errors;
    insert_all.latencies_ns.insert(insert_all.latencies_ns.end(),
                                   is.latencies_ns.begin(),
                                   is.latencies_ns.end());
    search_all.ops += ss.ops;
    search_all.contention += ss.contention;
    search_all.protocol_errors += ss.protocol_errors;
    search_all.latencies_ns.insert(search_all.latencies_ns.end(),
                                   ss.latencies_ns.begin(),
                                   ss.latencies_ns.end());
  }

  const uint64_t total_ops = insert_all.ops + search_all.ops;
  const uint64_t errors =
      insert_all.protocol_errors + search_all.protocol_errors;
  const double tput = static_cast<double>(total_ops) / elapsed_s;

  struct Row {
    const char* name;
    OpStats* s;
  } rows[] = {{"insert", &insert_all}, {"search", &search_all}};
  std::string json = "{\n";
  json += "  \"clients\": " + std::to_string(cfg.clients) + ",\n";
  json += "  \"seconds\": " + std::to_string(elapsed_s) + ",\n";
  json += "  \"throughput_ops_per_s\": " + std::to_string(tput) + ",\n";
  json += "  \"protocol_errors\": " + std::to_string(errors) + ",\n";
  for (auto& row : rows) {
    const double p50 = PercentileMs(row.s->latencies_ns, 0.50);
    const double p95 = PercentileMs(row.s->latencies_ns, 0.95);
    const double p99 = PercentileMs(row.s->latencies_ns, 0.99);
    std::printf(
        "%-7s ops=%-8llu contention=%-6llu p50=%.3fms p95=%.3fms "
        "p99=%.3fms\n",
        row.name, static_cast<unsigned long long>(row.s->ops),
        static_cast<unsigned long long>(row.s->contention), p50, p95, p99);
    json += std::string("  \"") + row.name + "\": {\"ops\": " +
            std::to_string(row.s->ops) + ", \"contention\": " +
            std::to_string(row.s->contention) + ", \"p50_ms\": " +
            std::to_string(p50) + ", \"p95_ms\": " + std::to_string(p95) +
            ", \"p99_ms\": " + std::to_string(p99) + "},\n";
  }
  json += "  \"total_ops\": " + std::to_string(total_ops) + "\n}\n";
  std::printf("total   %llu ops in %.1fs = %.0f ops/s, %llu protocol errors\n",
              static_cast<unsigned long long>(total_ops), elapsed_s, tput,
              static_cast<unsigned long long>(errors));

  FILE* f = std::fopen(cfg.report.c_str(), "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("report: %s\n", cfg.report.c_str());
  }

  if (!cfg.commit_report.empty()) {
    // Every server-side write is an auto-commit transaction, so the
    // registry's txn.commits is the commit count for this run (the preload
    // is zero here, unlike bench_concurrency).
    const uint64_t commits =
        db->metrics()->GetCounter("txn.commits")->value();
    bench::WriteCommitReport(cfg.commit_report, cfg.clients, elapsed_s,
                             commits, db.get());
    std::printf("commit report: %s (%llu commits, sync_commit=%d)\n",
                cfg.commit_report.c_str(),
                static_cast<unsigned long long>(commits),
                cfg.sync_commit ? 1 : 0);
  }

  // Drain, checkpoint, reopen, verify: the bench doubles as a soak test of
  // the graceful-shutdown acceptance criterion.
  if (!server.Shutdown().ok()) {
    std::fprintf(stderr, "graceful shutdown failed\n");
    return 2;
  }
  db.reset();
  auto reopen = Database::Open(dopts);
  if (!reopen.ok()) {
    std::fprintf(stderr, "reopen: %s\n", reopen.status().ToString().c_str());
    return 2;
  }
  db = reopen.MoveValue();
  if (!db->OpenIndex(1, &bt).ok()) return 2;
  Status inv = db->GetIndex(1).value()->CheckInvariants();
  if (!inv.ok()) {
    std::fprintf(stderr, "post-shutdown invariants: %s\n",
                 inv.ToString().c_str());
    return 2;
  }
  std::printf("post-shutdown reopen + invariant check: OK\n");

  if (errors != 0) {
    std::fprintf(stderr, "FAIL: %llu protocol errors\n",
                 static_cast<unsigned long long>(errors));
    return 1;
  }
  if (total_ops == 0) {
    std::fprintf(stderr, "FAIL: no operations completed\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace gistcr

int main(int argc, char** argv) {
  gistcr::BenchConfig cfg;
  for (int i = 1; i < argc; i++) {
    const char* a = argv[i];
    if (std::strncmp(a, "--clients=", 10) == 0) {
      cfg.clients = std::atoi(a + 10);
    } else if (std::strncmp(a, "--seconds=", 10) == 0) {
      cfg.seconds = std::atoi(a + 10);
    } else if (std::strncmp(a, "--read-pct=", 11) == 0) {
      cfg.read_pct = std::atoi(a + 11);
    } else if (std::strncmp(a, "--keyspace=", 11) == 0) {
      cfg.keyspace = std::atoll(a + 11);
    } else if (std::strncmp(a, "--report=", 9) == 0) {
      cfg.report = a + 9;
    } else if (std::strncmp(a, "--commit-report=", 16) == 0) {
      cfg.commit_report = a + 16;
    } else if (std::strncmp(a, "--sync-commit=", 14) == 0) {
      cfg.sync_commit = std::atoi(a + 14) != 0;
    } else if (std::strncmp(a, "--db=", 5) == 0) {
      cfg.db_path = a + 5;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--clients=N] [--seconds=S] [--read-pct=P]\n"
                   "          [--keyspace=K] [--report=PATH] [--db=PATH]\n"
                   "          [--commit-report=PATH] [--sync-commit=0|1]\n",
                   argv[0]);
      return 2;
    }
  }
  if (cfg.clients < 1 || cfg.seconds < 1) {
    std::fprintf(stderr, "bad --clients/--seconds\n");
    return 2;
  }
  return gistcr::Run(cfg);
}
