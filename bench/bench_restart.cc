// Instant-restart benchmark (ISSUE PR 10 acceptance gate).
//
// Builds one crashed database image — a long redo span past the last
// checkpoint plus an in-flight loser transaction — then recovers the same
// image twice, once with the classic offline three-pass restart
// (instant_restart = false) and once with the page-granular on-demand
// scheme (instant_restart = true, the default). For each mode it measures
//
//   time_to_open_ms          Database::Open wall clock
//   time_to_first_commit_ms  Open + one fresh-key insert committed
//   ramp_commits_1s          commits completed in the first second after
//                            the first commit (recovery drains underneath
//                            in instant mode)
//   drain_ms                 Open until WaitForRecovery returns
//
// and writes BENCH_restart.json. Exits non-zero if the instant mode's
// time-to-first-commit is not at least --min-speedup (default 10) times
// lower than offline's, or if the two modes disagree on the recovered
// entry count — the bench doubles as an end-to-end equivalence check.
//
//   bench_restart --ops=60000 --loser-ops=3000 --report=BENCH_restart.json

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "access/btree_extension.h"
#include "db/database.h"
#include "gist/gist.h"
#include "util/status.h"

namespace gistcr {
namespace {

#define RESTART_CHECK_OK(expr)                                         \
  do {                                                                 \
    ::gistcr::Status _st = (expr);                                     \
    if (!_st.ok()) {                                                   \
      std::fprintf(stderr, "bench_restart: %s:%d: %s\n", __FILE__,     \
                   __LINE__, _st.ToString().c_str());                  \
      std::exit(1);                                                    \
    }                                                                  \
  } while (0)

struct Config {
  int64_t ops = 200000;        ///< committed inserts before the crash
  int64_t loser_ops = 100000;  ///< uncommitted (loser) inserts: the classic
                               ///< restart nightmare, a bulk load that has
                               ///< to roll back
  int64_t ckpt_at = -1;        ///< checkpoint after this many ops
                               ///< (default: 90% of ops)
  int64_t value_bytes = 64;    ///< heap record payload size
  /// Buffer pool at recovery time, deliberately smaller than the working
  /// set: the restart-bound regime instant restart targets. Offline redo
  /// walks the log in LSN order — random page order for a random-key
  /// workload — so it faults (checksum-verify + evict + write back) on
  /// nearly every record. Page-granular replay touches each page once.
  int64_t recover_pool = 512;
  double min_speedup = 10.0;  ///< acceptance: instant ttfc advantage
  std::string path = "/tmp/gistcr_bench_restart";
  std::string report = "BENCH_restart.json";
};

struct ModeResult {
  std::string mode;
  double time_to_open_ms = 0;
  double time_to_first_commit_ms = 0;
  uint64_t ramp_commits_1s = 0;
  double drain_ms = 0;
  uint64_t records_redone = 0;
  uint64_t records_undone = 0;
  uint64_t entries = 0;  ///< final recovered entry count (equivalence)
};

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void RemoveDbFiles(const std::string& path) {
  std::remove((path + ".db").c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".ckpt").c_str());
}

void CopyFile(const std::string& from, const std::string& to) {
  FILE* in = std::fopen(from.c_str(), "rb");
  if (in == nullptr) {
    std::remove(to.c_str());
    return;  // source absent (e.g. no .ckpt yet): absent on both sides
  }
  FILE* out = std::fopen(to.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_restart: cannot write %s\n", to.c_str());
    std::exit(1);
  }
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    if (std::fwrite(buf, 1, n, out) != n) {
      std::fprintf(stderr, "bench_restart: short write to %s\n", to.c_str());
      std::exit(1);
    }
  }
  std::fclose(in);
  std::fclose(out);
}

void CopyDbFiles(const std::string& from, const std::string& to) {
  CopyFile(from + ".db", to + ".db");
  CopyFile(from + ".wal", to + ".wal");
  CopyFile(from + ".ckpt", to + ".ckpt");
}

/// Builds the crashed image at cfg.path: cfg.ops committed single-row
/// transactions (checkpoint after cfg.ckpt_at of them, so the redo span
/// covers the rest), then one loser with cfg.loser_ops inserts whose log
/// is durable but whose commit never happens.
uint64_t BuildCrashImage(const Config& cfg, BtreeExtension* ext) {
  RemoveDbFiles(cfg.path);
  DatabaseOptions opts;
  opts.path = cfg.path;
  opts.buffer_pool_pages = 16384;
  opts.sync_commit = false;
  auto db_or = Database::Create(opts);
  RESTART_CHECK_OK(db_or.status());
  auto db = db_or.MoveValue();
  RESTART_CHECK_OK(db->CreateIndex(1, ext));
  Gist* gist = db->GetIndex(1).value();

  // Random key order: consecutive log records land on unrelated pages,
  // the access pattern recovery has to cope with.
  std::vector<int64_t> keys(static_cast<size_t>(cfg.ops));
  for (size_t i = 0; i < keys.size(); i++) keys[i] = static_cast<int64_t>(i);
  std::mt19937_64 rng(42);
  std::shuffle(keys.begin(), keys.end(), rng);
  const std::string value(static_cast<size_t>(cfg.value_bytes), 'v');

  for (int64_t k = 0; k < cfg.ops; k++) {
    Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
    RESTART_CHECK_OK(
        db->InsertRecord(txn, gist,
                         BtreeExtension::MakeKey(keys[static_cast<size_t>(k)]),
                         value)
            .status());
    RESTART_CHECK_OK(db->Commit(txn));
    if (k == (cfg.ckpt_at >= 0 ? cfg.ckpt_at : cfg.ops * 9 / 10)) {
      // Model a steady-state system whose writer keeps up: pages are
      // clean at the checkpoint, so the redo span starts there and the
      // restart cost is dominated by what comes after — the tail of
      // committed work and the loser's long undo.
      RESTART_CHECK_OK(db->FlushAll());
      RESTART_CHECK_OK(db->Checkpoint());
    }
  }

  // The loser: a bulk load over its own key range, random order so its
  // undo (like the winners' redo) walks leaves in no helpful order.
  std::vector<int64_t> loser_keys(static_cast<size_t>(cfg.loser_ops));
  for (size_t i = 0; i < loser_keys.size(); i++) {
    loser_keys[i] = 1000000 + static_cast<int64_t>(i);
  }
  std::shuffle(loser_keys.begin(), loser_keys.end(), rng);
  Transaction* loser = db->Begin(IsolationLevel::kReadCommitted);
  for (int64_t k = 0; k < cfg.loser_ops; k++) {
    RESTART_CHECK_OK(
        db->InsertRecord(loser, gist,
                         BtreeExtension::MakeKey(
                             loser_keys[static_cast<size_t>(k)]),
                         value)
            .status());
  }
  RESTART_CHECK_OK(db->log()->FlushAll());
  const uint64_t log_bytes = db->log()->TotalBytes();
  db->SimulateCrash();
  return log_bytes;
}

ModeResult RecoverOnce(const Config& cfg, BtreeExtension* ext,
                       bool instant) {
  CopyDbFiles(cfg.path + ".orig", cfg.path);
  DatabaseOptions opts;
  opts.path = cfg.path;
  opts.buffer_pool_pages = static_cast<size_t>(cfg.recover_pool);
  opts.sync_commit = false;
  opts.instant_restart = instant;

  ModeResult r;
  r.mode = instant ? "instant" : "offline";

  const auto t0 = std::chrono::steady_clock::now();
  auto db_or = Database::Open(opts);
  RESTART_CHECK_OK(db_or.status());
  auto db = db_or.MoveValue();
  r.time_to_open_ms = MsSince(t0);

  RESTART_CHECK_OK(db->OpenIndex(1, ext));
  Gist* gist = db->GetIndex(1).value();

  // First fresh commit: a key disjoint from both winners and losers, so
  // under instant restart it only waits for the pages on its own descent.
  int64_t fresh = 9000000;
  {
    Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
    RESTART_CHECK_OK(
        db->InsertRecord(txn, gist, BtreeExtension::MakeKey(fresh), "v")
            .status());
    RESTART_CHECK_OK(db->Commit(txn));
  }
  r.time_to_first_commit_ms = MsSince(t0);
  fresh++;

  // Throughput ramp: one second of fresh-key commits while (in instant
  // mode) the background drain and loser undo run underneath.
  const auto ramp_start = std::chrono::steady_clock::now();
  while (MsSince(ramp_start) < 1000.0) {
    Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
    RESTART_CHECK_OK(
        db->InsertRecord(txn, gist, BtreeExtension::MakeKey(fresh++), "v")
            .status());
    RESTART_CHECK_OK(db->Commit(txn));
    r.ramp_commits_1s++;
  }

  RESTART_CHECK_OK(db->WaitForRecovery());
  r.drain_ms = MsSince(t0);
  r.records_redone = db->recovery()->restart_stats().records_redone.load();
  r.records_undone = db->recovery()->restart_stats().records_undone.load();

  // Equivalence input: count every surviving entry. The ramp key range is
  // identical across modes, so equal counts mean equal recovered states
  // (winners present, losers gone) plus the same bench traffic.
  {
    std::vector<IndexEntry> entries;
    RESTART_CHECK_OK(gist->DumpEntries(&entries));
    r.entries = entries.size();
  }
  RESTART_CHECK_OK(gist->CheckInvariants());
  db->SimulateCrash();  // drop volatile state; next mode restores files
  return r;
}

void WriteReport(const Config& cfg, uint64_t log_bytes,
                 const std::vector<ModeResult>& modes, double speedup) {
  FILE* f = std::fopen(cfg.report.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_restart: cannot write %s\n",
                 cfg.report.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"instant_restart\",\n"
               "  \"workload\": {\"ops\": %lld, \"loser_ops\": %lld, "
               "\"ckpt_at\": %lld, \"log_mib\": %.1f},\n  \"modes\": [\n",
               static_cast<long long>(cfg.ops),
               static_cast<long long>(cfg.loser_ops),
               static_cast<long long>(cfg.ckpt_at),
               static_cast<double>(log_bytes) / (1024.0 * 1024.0));
  for (size_t i = 0; i < modes.size(); i++) {
    const ModeResult& m = modes[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"time_to_open_ms\": %.2f, "
        "\"time_to_first_commit_ms\": %.2f, \"ramp_commits_1s\": %llu, "
        "\"drain_ms\": %.2f, \"records_redone\": %llu, "
        "\"records_undone\": %llu, \"entries\": %llu}%s\n",
        m.mode.c_str(), m.time_to_open_ms, m.time_to_first_commit_ms,
        static_cast<unsigned long long>(m.ramp_commits_1s), m.drain_ms,
        static_cast<unsigned long long>(m.records_redone),
        static_cast<unsigned long long>(m.records_undone),
        static_cast<unsigned long long>(m.entries),
        i + 1 < modes.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"ttfc_speedup\": %.1f\n}\n", speedup);
  std::fclose(f);
  std::printf("bench_restart: wrote %s\n", cfg.report.c_str());
}

int Run(const Config& cfg) {
  BtreeExtension ext;
  std::printf("bench_restart: building crash image (%lld ops, %lld loser)\n",
              static_cast<long long>(cfg.ops),
              static_cast<long long>(cfg.loser_ops));
  const uint64_t log_bytes = BuildCrashImage(cfg, &ext);
  CopyDbFiles(cfg.path, cfg.path + ".orig");

  std::vector<ModeResult> modes;
  modes.push_back(RecoverOnce(cfg, &ext, /*instant=*/false));
  modes.push_back(RecoverOnce(cfg, &ext, /*instant=*/true));
  RemoveDbFiles(cfg.path);
  RemoveDbFiles(cfg.path + ".orig");

  const ModeResult& offline = modes[0];
  const ModeResult& instant = modes[1];
  const double speedup =
      instant.time_to_first_commit_ms > 0
          ? offline.time_to_first_commit_ms / instant.time_to_first_commit_ms
          : 0.0;
  for (const ModeResult& m : modes) {
    std::printf(
        "  %-8s open %8.2f ms  first-commit %8.2f ms  ramp %6llu/s  "
        "drain %8.2f ms  redone %llu  undone %llu  entries %llu\n",
        m.mode.c_str(), m.time_to_open_ms, m.time_to_first_commit_ms,
        static_cast<unsigned long long>(m.ramp_commits_1s), m.drain_ms,
        static_cast<unsigned long long>(m.records_redone),
        static_cast<unsigned long long>(m.records_undone),
        static_cast<unsigned long long>(m.entries));
  }
  std::printf("bench_restart: time-to-first-commit speedup %.1fx\n", speedup);
  WriteReport(cfg, log_bytes, modes, speedup);

  int rc = 0;
  // Both runs inserted the same ramp-key range only if ramp counts match;
  // compare the pre-ramp recovered population instead: entries minus this
  // run's own traffic (1 first commit + ramp commits).
  const uint64_t off_base = offline.entries - 1 - offline.ramp_commits_1s;
  const uint64_t ins_base = instant.entries - 1 - instant.ramp_commits_1s;
  if (off_base != ins_base) {
    std::fprintf(stderr,
                 "bench_restart: FAIL recovered-state mismatch "
                 "(offline %llu vs instant %llu entries)\n",
                 static_cast<unsigned long long>(off_base),
                 static_cast<unsigned long long>(ins_base));
    rc = 1;
  }
  if (speedup < cfg.min_speedup) {
    std::fprintf(stderr,
                 "bench_restart: FAIL speedup %.1fx below the %.1fx gate\n",
                 speedup, cfg.min_speedup);
    rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace gistcr

int main(int argc, char** argv) {
  gistcr::Config cfg;
  for (int i = 1; i < argc; i++) {
    const char* a = argv[i];
    auto val = [&](const char* flag) -> const char* {
      size_t n = std::strlen(flag);
      return std::strncmp(a, flag, n) == 0 ? a + n : nullptr;
    };
    if (const char* v = val("--ops=")) {
      cfg.ops = std::atoll(v);
    } else if (const char* v = val("--loser-ops=")) {
      cfg.loser_ops = std::atoll(v);
    } else if (const char* v = val("--ckpt-at=")) {
      cfg.ckpt_at = std::atoll(v);
    } else if (const char* v = val("--value-bytes=")) {
      cfg.value_bytes = std::atoll(v);
    } else if (const char* v = val("--recover-pool=")) {
      cfg.recover_pool = std::atoll(v);
    } else if (const char* v = val("--min-speedup=")) {
      cfg.min_speedup = std::atof(v);
    } else if (const char* v = val("--path=")) {
      cfg.path = v;
    } else if (const char* v = val("--report=")) {
      cfg.report = v;
    } else {
      std::fprintf(stderr, "bench_restart: unknown flag %s\n", a);
      return 2;
    }
  }
  return gistcr::Run(cfg);
}
