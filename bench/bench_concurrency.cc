// Experiment C1 (DESIGN.md): the paper's headline performance claim —
// the link-based protocol with NSNs "results in a degree of concurrency
// that should match that of the best B-tree concurrency protocols"
// (sections 1, 12), against a coarse tree-latch baseline standing in for
// the subtree-locking protocols of [BS77].
//
// Series: search-only / insert-only / 80-20 mixed throughput over a
// 100k-key B-tree GiST, threads x {link, coarse}. Expected shape: both
// protocols comparable at 1 thread; the link protocol scales with
// threads while coarse flattens (reads) or collapses (writes).

#include <atomic>
#include <chrono>
#include <thread>

#include "bench/bench_util.h"
#include "bench/mvcc_report.h"
#include "bench/read_report.h"
#include "obs/op_context.h"
#include "obs/slow_op_log.h"
#include "obs/trace.h"

namespace gistcr {
namespace bench {
namespace {

constexpr int64_t kPreload = 100000;
BenchEnv g_env;
std::atomic<int64_t> g_next_key{kPreload};

ConcurrencyProtocol ProtocolArg(const benchmark::State& state) {
  return state.range(0) == 0 ? ConcurrencyProtocol::kLink
                             : ConcurrencyProtocol::kCoarse;
}

void BM_SearchOnly(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_env.BuildBtree("/tmp/gistcr_bench_c1", ProtocolArg(state),
                     PredicateMode::kHybrid, NsnSource::kLsn, kPreload);
  }
  Random rng(static_cast<uint64_t>(state.thread_index()) * 977 + 3);
  int64_t items = 0;
  for (auto _ : state) {
    const int64_t lo = rng.UniformRange(0, kPreload - 100);
    RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                    [&](Transaction* txn) {
                      std::vector<SearchResult> results;
                      return g_env.gist->Search(
                          txn, BtreeExtension::MakeRange(lo, lo + 99),
                          &results);
                    });
    items++;
  }
  state.SetItemsProcessed(items);
  if (state.thread_index() == 0) {
    ReportRegistryMetrics(state, g_env.db.get());
    state.SetLabel(state.range(0) == 0 ? "link" : "coarse");
  }
}

void BM_InsertOnly(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_env.BuildBtree("/tmp/gistcr_bench_c1", ProtocolArg(state),
                     PredicateMode::kHybrid, NsnSource::kLsn, kPreload);
    g_next_key.store(kPreload);
  }
  int64_t items = 0;
  for (auto _ : state) {
    const int64_t k = g_next_key.fetch_add(1);
    RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                    [&](Transaction* txn) {
                      return g_env.db
                          ->InsertRecord(txn, g_env.gist,
                                         BtreeExtension::MakeKey(k), "v")
                          .status();
                    });
    items++;
  }
  state.SetItemsProcessed(items);
  if (state.thread_index() == 0) {
    ReportRegistryMetrics(state, g_env.db.get());
    state.SetLabel(state.range(0) == 0 ? "link" : "coarse");
  }
}

void BM_Mixed80_20(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_env.BuildBtree("/tmp/gistcr_bench_c1", ProtocolArg(state),
                     PredicateMode::kHybrid, NsnSource::kLsn, kPreload);
    g_next_key.store(kPreload);
  }
  Random rng(static_cast<uint64_t>(state.thread_index()) * 31 + 11);
  int64_t items = 0;
  for (auto _ : state) {
    if (rng.Uniform(10) < 8) {
      const int64_t lo = rng.UniformRange(0, kPreload - 100);
      RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                      [&](Transaction* txn) {
                        std::vector<SearchResult> results;
                        return g_env.gist->Search(
                            txn, BtreeExtension::MakeRange(lo, lo + 99),
                            &results);
                      });
    } else {
      const int64_t k = g_next_key.fetch_add(1);
      RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                      [&](Transaction* txn) {
                        return g_env.db
                            ->InsertRecord(txn, g_env.gist,
                                           BtreeExtension::MakeKey(k), "v")
                            .status();
                      });
    }
    items++;
  }
  state.SetItemsProcessed(items);
  if (state.thread_index() == 0) {
    ReportRegistryMetrics(state, g_env.db.get());
    state.SetLabel(state.range(0) == 0 ? "link" : "coarse");
  }
}

// Durable-commit throughput: every transaction fdatasyncs the WAL (the
// real commit path, unlike the other series which measure protocol cost
// with sync off). This is where group commit shows up: with one fsync
// retiring many commits, throughput at 8 threads should far exceed
// threads x single-fsync latency. Thread 0 writes BENCH_commit.json
// (threads, commits/s, p50/p99 commit latency, mean group-commit batch)
// so the perf trajectory is machine-readable; bench/BENCH_commit.seed.json
// holds the checked-in seed baseline.
std::atomic<uint64_t> g_commit_bench_t0{0};
std::atomic<uint64_t> g_commit_bench_commits0{0};

void BM_DurableCommit(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_env.BuildBtree("/tmp/gistcr_bench_commit", ConcurrencyProtocol::kLink,
                     PredicateMode::kHybrid, NsnSource::kLsn,
                     /*preload=*/1000, /*max_entries=*/0,
                     /*sync_commit=*/true);
    g_next_key.store(1000);
    g_commit_bench_commits0.store(
        g_env.db->metrics()->GetCounter("txn.commits")->value());
    g_commit_bench_t0.store(obs::NowNanos());
  }
  int64_t items = 0;
  for (auto _ : state) {
    const int64_t k = g_next_key.fetch_add(1);
    RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                    [&](Transaction* txn) {
                      return g_env.db
                          ->InsertRecord(txn, g_env.gist,
                                         BtreeExtension::MakeKey(k), "v")
                          .status();
                    });
    items++;
  }
  state.SetItemsProcessed(items);
  if (state.thread_index() == 0) {
    const double elapsed_s =
        static_cast<double>(obs::NowNanos() - g_commit_bench_t0.load()) / 1e9;
    const uint64_t commits =
        g_env.db->metrics()->GetCounter("txn.commits")->value() -
        g_commit_bench_commits0.load();
    WriteCommitReport("BENCH_commit.json", state.threads(), elapsed_s,
                      commits, g_env.db.get());
    ReportRegistryMetrics(state, g_env.db.get());
    state.counters["group_commit_mean_records"] =
        g_env.db->metrics()
            ->GetHistogram("wal.group_commit_records")
            ->GetSnapshot()
            .mean();
  }
}

// Read-mostly mixes for the optimistic read path (DESIGN.md section 13):
// 95/5 and 99/1 search/insert, Arg 0 = latched reads (the seed baseline
// checked in as bench/BENCH_read.seed.json), Arg 1 = optimistic reads.
// Narrow 10-key range scans over a fanout-64 tree keep the traversal
// (where the latch-vs-snapshot difference lives) the dominant per-op
// cost rather than leaf entry scanning. Thread 0 writes BENCH_read.json
// with throughput plus the restart accounting that proves the latch-free
// arm converges (restarts_per_search stays far below the per-op restart
// budget of kOptimisticMaxAttempts).
std::atomic<uint64_t> g_read_bench_t0{0};
std::atomic<uint64_t> g_read_bench_searches0{0};

void ReadMostlyLoop(benchmark::State& state, int write_pct,
                    const char* mix_label) {
  const bool optimistic = state.range(0) != 0;
  if (state.thread_index() == 0) {
    g_env.BuildBtree("/tmp/gistcr_bench_read", ConcurrencyProtocol::kLink,
                     PredicateMode::kHybrid, NsnSource::kLsn, kPreload,
                     /*max_entries=*/64, /*sync_commit=*/false, optimistic);
    g_next_key.store(kPreload);
    g_read_bench_searches0.store(
        g_env.db->metrics()->GetCounter("gist.searches")->value());
    g_read_bench_t0.store(obs::NowNanos());
  }
  Random rng(static_cast<uint64_t>(state.thread_index()) * 613 + 29);
  int64_t items = 0;
  for (auto _ : state) {
    if (rng.Uniform(100) < static_cast<uint32_t>(write_pct)) {
      const int64_t k = g_next_key.fetch_add(1);
      RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                      [&](Transaction* txn) {
                        return g_env.db
                            ->InsertRecord(txn, g_env.gist,
                                           BtreeExtension::MakeKey(k), "v")
                            .status();
                      });
    } else {
      const int64_t lo = rng.UniformRange(0, kPreload - 10);
      RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                      [&](Transaction* txn) {
                        std::vector<SearchResult> results;
                        return g_env.gist->Search(
                            txn, BtreeExtension::MakeRange(lo, lo + 9),
                            &results);
                      });
    }
    items++;
  }
  state.SetItemsProcessed(items);
  if (state.thread_index() == 0) {
    const double elapsed_s =
        static_cast<double>(obs::NowNanos() - g_read_bench_t0.load()) / 1e9;
    const uint64_t searches =
        g_env.db->metrics()->GetCounter("gist.searches")->value() -
        g_read_bench_searches0.load();
    WriteReadReport("BENCH_read.json", mix_label,
                    optimistic ? "optimistic" : "latched", state.threads(),
                    elapsed_s, searches, g_env.db.get());
    ReportRegistryMetrics(state, g_env.db.get());
    state.SetLabel(optimistic ? "optimistic" : "latched");
  }
}

void BM_ReadMostly95_5(benchmark::State& state) {
  ReadMostlyLoop(state, 5, "95/5");
}

void BM_ReadMostly99_1(benchmark::State& state) {
  ReadMostlyLoop(state, 1, "99/1");
}

// The paper's "no latches during I/Os / no subtree locking" property shows
// up most directly as *interference*: how long can one operation stall
// another? Here a background thread runs full-range scans (which hold the
// coarse baseline's tree latch for their whole duration) while the timed
// loop inserts. Expected shape: with the link protocol insert latency is
// flat; with the coarse baseline worst-case insert latency approaches the
// scan duration. This signal survives even a single-core testbed, where
// throughput scaling cannot manifest.
void BM_InsertLatencyUnderScan(benchmark::State& state) {
  g_env.BuildBtree("/tmp/gistcr_bench_c1", ProtocolArg(state),
                   PredicateMode::kHybrid, NsnSource::kLsn, kPreload);
  g_next_key.store(kPreload);
  std::atomic<bool> stop{false};
  std::thread scanner([&] {
    while (!stop.load()) {
      RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                      [&](Transaction* txn) {
                        std::vector<SearchResult> results;
                        return g_env.gist->Search(
                            txn, BtreeExtension::MakeRange(0, kPreload),
                            &results);
                      });
    }
  });
  double max_us = 0;
  int64_t items = 0;
  for (auto _ : state) {
    const int64_t k = g_next_key.fetch_add(1);
    const auto start = std::chrono::steady_clock::now();
    RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                    [&](Transaction* txn) {
                      return g_env.db
                          ->InsertRecord(txn, g_env.gist,
                                         BtreeExtension::MakeKey(k), "v")
                          .status();
                    });
    const auto end = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(end - start).count();
    if (us > max_us) max_us = us;
    items++;
  }
  stop = true;
  scanner.join();
  state.SetItemsProcessed(items);
  state.counters["max_insert_latency_us"] = max_us;
  ReportRegistryMetrics(state, g_env.db.get());
  state.SetLabel(state.range(0) == 0 ? "link" : "coarse");
}

// Observability overhead at the engine layer (ISSUE 6 satellite): the
// 80/20 mixed workload with the tracer + slow-op capture toggled by
// Arg (0 = off, 1 = on). Both arms run the link protocol; comparing the
// two rows in BENCH_concurrency output bounds the cost of the per-op
// instrumentation (trace ring writes, stage timers) without any server
// in the way. bench_server --obs-report enforces the 5% budget end to
// end; this series localizes a regression to the engine if it trips.
void BM_TraceOverhead(benchmark::State& state) {
  const bool obs_on = state.range(0) != 0;
  if (state.thread_index() == 0) {
    g_env.BuildBtree("/tmp/gistcr_bench_obs", ConcurrencyProtocol::kLink,
                     PredicateMode::kHybrid, NsnSource::kLsn, kPreload);
    g_next_key.store(kPreload);
    obs::Tracer::Global().SetEnabled(obs_on);
    g_env.db->slow_ops()->SetThresholdNs(
        obs_on ? obs::SlowOpLog::kDefaultThresholdNs : 0);
  }
  Random rng(static_cast<uint64_t>(state.thread_index()) * 131 + 7);
  int64_t items = 0;
  for (auto _ : state) {
    GISTCR_TRACE_SCOPE("bench.op");
    obs::OpContext ctx;
    ctx.op_name = "bench.op";
    ctx.start_ns = obs::NowNanos();
    obs::OpScope scope(&ctx);
    if (rng.Uniform(10) < 8) {
      const int64_t lo = rng.UniformRange(0, kPreload - 100);
      RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                      [&](Transaction* txn) {
                        std::vector<SearchResult> results;
                        return g_env.gist->Search(
                            txn, BtreeExtension::MakeRange(lo, lo + 99),
                            &results);
                      });
    } else {
      const int64_t k = g_next_key.fetch_add(1);
      RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                      [&](Transaction* txn) {
                        return g_env.db
                            ->InsertRecord(txn, g_env.gist,
                                           BtreeExtension::MakeKey(k), "v")
                            .status();
                      });
    }
    g_env.db->slow_ops()->MaybeRecord(ctx, obs::NowNanos() - ctx.start_ns,
                                      "ok");
    items++;
  }
  state.SetItemsProcessed(items);
  if (state.thread_index() == 0) {
    obs::Tracer::Global().SetEnabled(true);
    g_env.db->slow_ops()->SetThresholdNs(obs::SlowOpLog::kDefaultThresholdNs);
    ReportRegistryMetrics(state, g_env.db.get());
    state.SetLabel(obs_on ? "obs_on" : "obs_off");
  }
}

// MVCC snapshot reads under write churn (DESIGN.md section 14.6): mixed
// OLTP + long-scan workload, reported to BENCH_mvcc.json. Two series,
// each with a solo and a contended arm:
//
//   BM_MvccLongScan      full-range snapshot scans; Arg 1 adds 4 writer
//                        threads churning insert+delete. Snapshot scans
//                        take no locks and attach no predicates, so the
//                        contended arm should lose only what cache and
//                        version-chain filtering cost — not block.
//   BM_MvccWriterCommit  insert+delete commit loop; Arg 1 adds 2 long
//                        snapshot-scan threads, Arg 2 adds 2 long
//                        repeatable-read (2PL) scan threads over the same
//                        range. The acceptance gate is that snapshot
//                        scans cost writers no more than their fair CPU
//                        share (<= ~10% beyond it on multicore hosts; on
//                        a single-core runner the share itself dominates)
//                        while the 2PL arm shows what MVCC buys: those
//                        scans predicate-lock the writers' key range and
//                        S-lock every record, so writers stall for whole
//                        scan durations and deadlock-retry.
//
// Writers emulate the maintenance daemon's version-GC cadence with a
// periodic Prune, so chains stay short (chain_length_p99 in the report)
// instead of growing for the benchmark's whole lifetime.
constexpr int kMvccWriters = 4;
constexpr int kMvccScanners = 2;

void MvccWriterChurn(std::atomic<bool>* stop) {
  while (!stop->load(std::memory_order_acquire)) {
    const int64_t k = g_next_key.fetch_add(1);
    Rid rid;
    RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                    [&](Transaction* txn) {
                      auto r = g_env.db->InsertRecord(
                          txn, g_env.gist, BtreeExtension::MakeKey(k), "v");
                      if (r.ok()) rid = r.value();
                      return r.status();
                    });
    RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                    [&](Transaction* txn) {
                      return g_env.db->DeleteRecord(
                          txn, g_env.gist, BtreeExtension::MakeKey(k), rid);
                    });
    if ((k & 0x3FF) == 0) g_env.db->mvcc()->Prune();
  }
}

// The scan range deliberately covers the churn keys (which start at
// kPreload and rise), so a 2PL scan's predicates conflict with every
// writer insert while a snapshot scan conflicts with nothing.
Status MvccLongScanOnce(Transaction* txn) {
  std::vector<SearchResult> results;
  return g_env.gist->Search(txn, BtreeExtension::MakeRange(0, kPreload * 8),
                            &results);
}

void BM_MvccLongScan(benchmark::State& state) {
  const bool with_writers = state.range(0) != 0;
  g_env.BuildBtree("/tmp/gistcr_bench_mvcc", ConcurrencyProtocol::kLink,
                   PredicateMode::kHybrid, NsnSource::kLsn, kPreload);
  g_next_key.store(kPreload);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  if (with_writers) {
    for (int w = 0; w < kMvccWriters; w++) {
      writers.emplace_back(MvccWriterChurn, &stop);
    }
  }
  const uint64_t t0 = obs::NowNanos();
  int64_t items = 0;
  for (auto _ : state) {
    RunTxnWithRetry(g_env.db.get(), IsolationLevel::kSnapshot,
                    MvccLongScanOnce);
    items++;
  }
  const double elapsed_s = static_cast<double>(obs::NowNanos() - t0) / 1e9;
  stop.store(true, std::memory_order_release);
  for (auto& w : writers) w.join();
  state.SetItemsProcessed(items);
  WriteMvccReport("BENCH_mvcc.json", "scan",
                  with_writers ? "with_writers" : "solo", elapsed_s,
                  static_cast<uint64_t>(items), g_env.db.get());
  ReportRegistryMetrics(state, g_env.db.get());
  state.counters["chain_length_p99"] =
      g_env.db->metrics()->GetHistogram("mvcc.chain_length")->GetSnapshot()
          .Percentile(0.99);
  state.SetLabel(with_writers ? "with_writers" : "solo");
}

void BM_MvccWriterCommit(benchmark::State& state) {
  // Arg: 0 = solo, 1 = concurrent snapshot scans, 2 = concurrent 2PL
  // (repeatable-read) scans — the baseline MVCC replaces.
  const int arm = static_cast<int>(state.range(0));
  const char* arm_label =
      arm == 0 ? "solo" : arm == 1 ? "with_scans" : "with_rr_scans";
  g_env.BuildBtree("/tmp/gistcr_bench_mvcc", ConcurrencyProtocol::kLink,
                   PredicateMode::kHybrid, NsnSource::kLsn, kPreload);
  g_next_key.store(kPreload);
  std::atomic<bool> stop{false};
  std::vector<std::thread> scanners;
  if (arm != 0) {
    const IsolationLevel scan_iso = arm == 1 ? IsolationLevel::kSnapshot
                                             : IsolationLevel::kRepeatableRead;
    for (int s = 0; s < kMvccScanners; s++) {
      scanners.emplace_back([&, scan_iso] {
        while (!stop.load(std::memory_order_acquire)) {
          RunTxnWithRetry(g_env.db.get(), scan_iso, MvccLongScanOnce);
        }
      });
    }
  }
  const uint64_t commits0 =
      g_env.db->metrics()->GetCounter("txn.commits")->value();
  const uint64_t t0 = obs::NowNanos();
  int64_t items = 0;
  for (auto _ : state) {
    const int64_t k = g_next_key.fetch_add(1);
    Rid rid;
    RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                    [&](Transaction* txn) {
                      auto r = g_env.db->InsertRecord(
                          txn, g_env.gist, BtreeExtension::MakeKey(k), "v");
                      if (r.ok()) rid = r.value();
                      return r.status();
                    });
    RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                    [&](Transaction* txn) {
                      return g_env.db->DeleteRecord(
                          txn, g_env.gist, BtreeExtension::MakeKey(k), rid);
                    });
    if ((k & 0x3FF) == 0) g_env.db->mvcc()->Prune();
    items++;
  }
  const double elapsed_s = static_cast<double>(obs::NowNanos() - t0) / 1e9;
  const uint64_t commits =
      g_env.db->metrics()->GetCounter("txn.commits")->value() - commits0;
  stop.store(true, std::memory_order_release);
  for (auto& s : scanners) s.join();
  state.SetItemsProcessed(items);
  WriteMvccReport("BENCH_mvcc.json", "writer", arm_label, elapsed_s, commits,
                  g_env.db.get());
  ReportRegistryMetrics(state, g_env.db.get());
  state.SetLabel(arm_label);
}

// Arg 0 = link protocol, 1 = coarse baseline.
BENCHMARK(BM_SearchOnly)->Arg(0)->Arg(1)->ThreadRange(1, 8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InsertOnly)->Arg(0)->Arg(1)->ThreadRange(1, 8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Mixed80_20)->Arg(0)->Arg(1)->ThreadRange(1, 8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);
// Arg 0 = latched reads (baseline), 1 = optimistic reads.
BENCHMARK(BM_ReadMostly95_5)->Arg(0)->Arg(1)->ThreadRange(1, 8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ReadMostly99_1)->Arg(0)->Arg(1)->ThreadRange(1, 8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InsertLatencyUnderScan)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DurableCommit)->ThreadRange(1, 8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);
// Arg 0 = tracing/slow-op capture off, 1 = on.
BENCHMARK(BM_TraceOverhead)->Arg(0)->Arg(1)->ThreadRange(1, 4)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);
// Arg 0 = solo, 1 = contended (writers for the scan series, long scans
// for the writer series). Single benchmark thread; the contention is
// supplied by dedicated background threads.
BENCHMARK(BM_MvccLongScan)->Arg(0)->Arg(1)
    ->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MvccWriterCommit)->Arg(0)->Arg(1)->Arg(2)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace gistcr

BENCHMARK_MAIN();
