#ifndef GISTCR_BENCH_COMMIT_REPORT_H_
#define GISTCR_BENCH_COMMIT_REPORT_H_

// Machine-readable durable-commit report (BENCH_commit.json), shared by
// bench_concurrency (google-benchmark harness) and bench_server (plain
// load driver). Deliberately free of any google-benchmark dependency.

#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "db/database.h"

namespace gistcr {
namespace bench {

/// One thread-count row of the durable-commit report (BENCH_commit.json):
/// the perf trajectory's machine-readable record of commit throughput and
/// group-commit batch size. Rows accumulate across thread counts; the file
/// is rewritten whole each time so a partial sweep still leaves valid JSON.
struct CommitReportRow {
  double commits_per_s = 0;
  uint64_t commits = 0;
  double elapsed_s = 0;
  double commit_p50_us = 0;
  double commit_p99_us = 0;
  double group_commit_mean_records = 0;
  uint64_t wal_flushes = 0;
};

inline void WriteCommitReport(const std::string& out_path, int threads,
                              double elapsed_s, uint64_t commits,
                              Database* db) {
  static std::mutex mu;
  static std::map<int, CommitReportRow> rows;
  obs::MetricsRegistry* reg = db->metrics();
  CommitReportRow row;
  row.commits = commits;
  row.elapsed_s = elapsed_s;
  row.commits_per_s =
      elapsed_s > 0 ? static_cast<double>(commits) / elapsed_s : 0.0;
  const auto commit_snap = reg->GetHistogram("txn.commit_ns")->GetSnapshot();
  row.commit_p50_us = commit_snap.Percentile(0.50) / 1e3;
  row.commit_p99_us = commit_snap.Percentile(0.99) / 1e3;
  const auto batch_snap =
      reg->GetHistogram("wal.group_commit_records")->GetSnapshot();
  row.group_commit_mean_records = batch_snap.mean();
  row.wal_flushes = reg->GetCounter("wal.flushes")->value();

  std::lock_guard<std::mutex> l(mu);
  rows[threads] = row;
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", out_path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"durable_commit\",\n  \"runs\": [\n");
  size_t i = 0;
  for (const auto& [t, r] : rows) {
    std::fprintf(
        f,
        "    {\"threads\": %d, \"commits\": %llu, \"elapsed_s\": %.3f, "
        "\"commits_per_s\": %.1f, \"commit_p50_us\": %.1f, "
        "\"commit_p99_us\": %.1f, \"group_commit_mean_records\": %.2f, "
        "\"wal_flushes\": %llu}%s\n",
        t, static_cast<unsigned long long>(r.commits), r.elapsed_s,
        r.commits_per_s, r.commit_p50_us, r.commit_p99_us,
        r.group_commit_mean_records,
        static_cast<unsigned long long>(r.wal_flushes),
        ++i < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace bench
}  // namespace gistcr

#endif  // GISTCR_BENCH_COMMIT_REPORT_H_
