// Experiment C6 (DESIGN.md): GiST generality — the same protocol over
// R-tree (2-D rectangle) data, where the concurrency techniques of
// B-trees fundamentally do not apply (paper sections 3, 11: no key order,
// no key-space partitioning). Series: window-query and point-insert
// throughput over 50k uniform points, threads x {link, coarse}.
// Expected shape: same as C1 — the protocol is key-semantics-free.

#include <atomic>

#include "bench/bench_util.h"

namespace gistcr {
namespace bench {
namespace {

constexpr int64_t kPreload = 50000;
BenchEnv g_env;
std::atomic<uint64_t> g_seed{1};

ConcurrencyProtocol ProtocolArg(const benchmark::State& state) {
  return state.range(0) == 0 ? ConcurrencyProtocol::kLink
                             : ConcurrencyProtocol::kCoarse;
}

void BM_WindowQuery(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_env.BuildRtree("/tmp/gistcr_bench_c6", ProtocolArg(state), kPreload);
  }
  Random rng(static_cast<uint64_t>(state.thread_index()) * 131 + 17);
  int64_t items = 0;
  for (auto _ : state) {
    const double x = rng.NextDouble() * 950.0;
    const double y = rng.NextDouble() * 950.0;
    RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                    [&](Transaction* txn) {
                      std::vector<SearchResult> results;
                      return g_env.gist->Search(
                          txn,
                          RtreeExtension::MakeWindowQuery(
                              Rect{x, y, x + 50, y + 50}),
                          &results);
                    });
    items++;
  }
  state.SetItemsProcessed(items);
  if (state.thread_index() == 0) {
    state.SetLabel(state.range(0) == 0 ? "link" : "coarse");
  }
}

void BM_PointInsert(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_env.BuildRtree("/tmp/gistcr_bench_c6", ProtocolArg(state), kPreload);
  }
  Random rng(g_seed.fetch_add(0x9E3779B9) + 1);
  int64_t items = 0;
  for (auto _ : state) {
    const Rect pt =
        Rect::Point(rng.NextDouble() * 1000.0, rng.NextDouble() * 1000.0);
    RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                    [&](Transaction* txn) {
                      return g_env.db
                          ->InsertRecord(txn, g_env.gist,
                                         RtreeExtension::MakeKey(pt), "v")
                          .status();
                    });
    items++;
  }
  state.SetItemsProcessed(items);
  if (state.thread_index() == 0) {
    state.counters["splits"] =
        static_cast<double>(g_env.gist->stats().splits.load());
    state.SetLabel(state.range(0) == 0 ? "link" : "coarse");
  }
}

BENCHMARK(BM_WindowQuery)->Arg(0)->Arg(1)->ThreadRange(1, 8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PointInsert)->Arg(0)->Arg(1)->ThreadRange(1, 8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace gistcr

BENCHMARK_MAIN();
