#ifndef GISTCR_BENCH_MVCC_REPORT_H_
#define GISTCR_BENCH_MVCC_REPORT_H_

// Machine-readable MVCC snapshot-read report (BENCH_mvcc.json), written by
// the BM_Mvcc* series in bench_concurrency. Same shape as read_report.h:
// rows accumulate across (series, arm) combinations and the file is
// rewritten whole each time, so a partial sweep still leaves valid JSON.
// The two series answer the two headline questions of DESIGN.md section
// 14.6: does concurrent write churn slow snapshot scans (series "scan":
// solo vs with_writers), and do long snapshot scans tax writer commit
// throughput (series "writer": solo vs with_scans — the PR acceptance
// gate is <= ~10% degradation, checked against the checked-in
// bench/BENCH_mvcc.seed.json baseline).

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <tuple>

#include "db/database.h"

namespace gistcr {
namespace bench {

/// One (series, arm) row. chain_length_p99 is the proof-of-boundedness
/// half: snapshot reads only stay cheap if version chains stay short,
/// which is the GC pass's job.
struct MvccReportRow {
  double ops_per_s = 0;
  uint64_t ops = 0;
  double elapsed_s = 0;
  uint64_t snapshot_reads = 0;
  uint64_t versions_stamped = 0;
  uint64_t versions_pruned = 0;
  uint64_t store_size = 0;
  double chain_length_p99 = 0;
};

inline void WriteMvccReport(const std::string& out_path,
                            const std::string& series, const std::string& arm,
                            double elapsed_s, uint64_t ops, Database* db) {
  static std::mutex mu;
  static std::map<std::tuple<std::string, std::string>, MvccReportRow> rows;
  obs::MetricsRegistry* reg = db->metrics();
  MvccReportRow row;
  row.ops = ops;
  row.elapsed_s = elapsed_s;
  row.ops_per_s = elapsed_s > 0 ? static_cast<double>(ops) / elapsed_s : 0.0;
  row.snapshot_reads = reg->GetCounter("mvcc.snapshot_reads")->value();
  row.versions_stamped = reg->GetCounter("mvcc.versions_stamped")->value();
  row.versions_pruned = reg->GetCounter("mvcc.versions_pruned")->value();
  row.store_size = db->mvcc() != nullptr ? db->mvcc()->StoreSize() : 0;
  const auto chains = reg->GetHistogram("mvcc.chain_length")->GetSnapshot();
  row.chain_length_p99 = chains.count == 0 ? 0.0 : chains.Percentile(0.99);

  std::lock_guard<std::mutex> l(mu);
  rows[{series, arm}] = row;
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", out_path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"mvcc_snapshot\",\n  \"runs\": [\n");
  size_t i = 0;
  for (const auto& [key, r] : rows) {
    std::fprintf(
        f,
        "    {\"series\": \"%s\", \"arm\": \"%s\", \"ops\": %llu, "
        "\"elapsed_s\": %.3f, \"ops_per_s\": %.1f, "
        "\"snapshot_reads\": %llu, \"versions_stamped\": %llu, "
        "\"versions_pruned\": %llu, \"store_size\": %llu, "
        "\"chain_length_p99\": %.2f}%s\n",
        std::get<0>(key).c_str(), std::get<1>(key).c_str(),
        static_cast<unsigned long long>(r.ops), r.elapsed_s, r.ops_per_s,
        static_cast<unsigned long long>(r.snapshot_reads),
        static_cast<unsigned long long>(r.versions_stamped),
        static_cast<unsigned long long>(r.versions_pruned),
        static_cast<unsigned long long>(r.store_size), r.chain_length_p99,
        ++i < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace bench
}  // namespace gistcr

#endif  // GISTCR_BENCH_MVCC_REPORT_H_
