// Experiment FIG1 (DESIGN.md): paper Figures 1-2 at scale. Repeatedly
// stage the search/split race — a searcher memorizes the global counter
// and the target pointer, a concurrent insert splits the node moving the
// searched key right — and measure the committed-key miss rate with the
// link protocol on vs off. Expected: 100% misses without split detection,
// 0% with NSN + rightlink compensation.

#include <condition_variable>
#include <mutex>
#include <thread>

#include "bench/bench_util.h"

namespace gistcr {
namespace bench {
namespace {

/// One staged race; returns true if the searcher found the key.
bool RunOneRace(ConcurrencyProtocol protocol, const std::string& path) {
  RemoveDbFiles(path);
  DatabaseOptions opts;
  opts.path = path;
  opts.buffer_pool_pages = 256;
  opts.sync_commit = false;
  auto db_or = Database::Create(opts);
  BENCH_CHECK_OK(db_or.status());
  auto db = db_or.MoveValue();
  BtreeExtension ext;
  GistOptions gopts;
  gopts.protocol = protocol;
  gopts.max_entries = 4;
  BENCH_CHECK_OK(db->CreateIndex(1, &ext, gopts));
  Gist* gist = db->GetIndex(1).value();

  {
    Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
    for (int64_t k : {1000, 900, 910, 920}) {
      BENCH_CHECK_OK(
          db->InsertRecord(txn, gist, BtreeExtension::MakeKey(k), "v")
              .status());
    }
    BENCH_CHECK_OK(db->Commit(txn));
  }

  std::mutex mu;
  std::condition_variable cv;
  bool paused = false, resume = false;
  gist->test_hooks().after_root_push = [&] {
    std::unique_lock<std::mutex> l(mu);
    paused = true;
    cv.notify_all();
    cv.wait(l, [&] { return resume; });
  };

  std::vector<SearchResult> results;
  std::thread searcher([&] {
    Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
    BENCH_CHECK_OK(
        gist->Search(txn, BtreeExtension::MakeRange(1000, 1000), &results));
    BENCH_CHECK_OK(db->Commit(txn));
  });
  {
    std::unique_lock<std::mutex> l(mu);
    cv.wait(l, [&] { return paused; });
  }
  gist->test_hooks().after_root_push = nullptr;
  {
    Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
    BENCH_CHECK_OK(
        db->InsertRecord(txn, gist, BtreeExtension::MakeKey(930), "v")
            .status());
    BENCH_CHECK_OK(db->Commit(txn));
  }
  {
    std::lock_guard<std::mutex> l(mu);
    resume = true;
    cv.notify_all();
  }
  searcher.join();
  db.reset();
  RemoveDbFiles(path);
  return !results.empty();
}

void BM_Fig1Race(benchmark::State& state) {
  const ConcurrencyProtocol protocol =
      state.range(0) == 0 ? ConcurrencyProtocol::kLink
                          : ConcurrencyProtocol::kUnsafeNoLink;
  uint64_t races = 0, lost = 0;
  for (auto _ : state) {
    if (!RunOneRace(protocol, "/tmp/gistcr_bench_fig1")) lost++;
    races++;
  }
  state.SetItemsProcessed(static_cast<int64_t>(races));
  state.counters["lost_key_rate"] =
      races == 0 ? 0.0 : static_cast<double>(lost) / static_cast<double>(races);
  state.SetLabel(protocol == ConcurrencyProtocol::kLink
                     ? "link-protocol (Figure 2 fix)"
                     : "no-link (Figure 1 anomaly)");
}

BENCHMARK(BM_Fig1Race)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(25);

}  // namespace
}  // namespace bench
}  // namespace gistcr

BENCHMARK_MAIN();
