#ifndef GISTCR_BENCH_BENCH_UTIL_H_
#define GISTCR_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "access/btree_extension.h"
#include "access/rtree_extension.h"
#include "bench/commit_report.h"
#include "db/database.h"
#include "util/random.h"

namespace gistcr {
namespace bench {

inline void RemoveDbFiles(const std::string& path) {
  std::remove((path + ".db").c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".ckpt").c_str());
}

#define BENCH_CHECK_OK(expr)                                       \
  do {                                                             \
    ::gistcr::Status _st = (expr);                                 \
    if (!_st.ok()) {                                               \
      std::fprintf(stderr, "bench fatal at %s:%d: %s\n", __FILE__, \
                   __LINE__, _st.ToString().c_str());              \
      std::abort();                                                \
    }                                                              \
  } while (0)

/// Shared-environment helper for multithreaded benchmarks: thread 0
/// rebuilds the database before the timing loop (google-benchmark
/// synchronizes all threads on a barrier between that setup block and the
/// first iteration).
struct BenchEnv {
  std::unique_ptr<Database> db;
  Gist* gist = nullptr;
  BtreeExtension btree;
  RtreeExtension rtree;
  std::string path;

  /// Fresh database with one B-tree index preloaded with \p preload keys
  /// 0..preload-1 (payload "v"). With \p sync_commit the WAL fdatasyncs on
  /// commit — the configuration the durable-commit benchmarks measure.
  /// \p optimistic_reads toggles the latch-free read path (DESIGN.md
  /// section 13); the read-mostly series runs both arms.
  void BuildBtree(const std::string& p, ConcurrencyProtocol protocol,
                  PredicateMode pred_mode, NsnSource nsn, int64_t preload,
                  uint16_t max_entries = 0, bool sync_commit = false,
                  bool optimistic_reads = true) {
    path = p;
    db.reset();
    RemoveDbFiles(path);
    DatabaseOptions opts;
    opts.path = path;
    opts.buffer_pool_pages = 16384;  // 128 MiB: benchmarks run in memory
    opts.nsn_source = nsn;
    opts.sync_commit = sync_commit;
    auto db_or = Database::Create(opts);
    BENCH_CHECK_OK(db_or.status());
    db = db_or.MoveValue();
    GistOptions gopts;
    gopts.protocol = protocol;
    gopts.pred_mode = pred_mode;
    gopts.max_entries = max_entries;
    gopts.optimistic_reads = optimistic_reads;
    BENCH_CHECK_OK(db->CreateIndex(1, &btree, gopts));
    gist = db->GetIndex(1).value();
    if (preload > 0) {
      Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
      for (int64_t k = 0; k < preload; k++) {
        BENCH_CHECK_OK(
            db->InsertRecord(txn, gist, BtreeExtension::MakeKey(k), "v")
                .status());
      }
      BENCH_CHECK_OK(db->Commit(txn));
    }
  }

  /// Fresh database with one R-tree index preloaded with \p preload
  /// uniform points on [0,1000)^2.
  void BuildRtree(const std::string& p, ConcurrencyProtocol protocol,
                  int64_t preload) {
    path = p;
    db.reset();
    RemoveDbFiles(path);
    DatabaseOptions opts;
    opts.path = path;
    opts.buffer_pool_pages = 16384;
    opts.sync_commit = false;
    auto db_or = Database::Create(opts);
    BENCH_CHECK_OK(db_or.status());
    db = db_or.MoveValue();
    GistOptions gopts;
    gopts.protocol = protocol;
    BENCH_CHECK_OK(db->CreateIndex(1, &rtree, gopts));
    gist = db->GetIndex(1).value();
    Random rng(42);
    Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
    for (int64_t i = 0; i < preload; i++) {
      const Rect pt =
          Rect::Point(rng.NextDouble() * 1000.0, rng.NextDouble() * 1000.0);
      BENCH_CHECK_OK(
          db->InsertRecord(txn, gist, RtreeExtension::MakeKey(pt), "v")
              .status());
    }
    BENCH_CHECK_OK(db->Commit(txn));
  }

  void Destroy() {
    db.reset();
    RemoveDbFiles(path);
  }
};

/// Publishes the registry metrics most relevant to the paper's protocol
/// claims as google-benchmark counters, so they land in the console table
/// and --benchmark_out JSON next to the throughput numbers. Call from
/// thread 0 after the timing loop, while the database is still alive.
inline void ReportRegistryMetrics(benchmark::State& state, Database* db) {
  obs::MetricsRegistry* reg = db->metrics();
  const auto counter = [&](const char* bench_name, const char* metric) {
    state.counters[bench_name] =
        static_cast<double>(reg->GetCounter(metric)->value());
  };
  counter("rightlink_follows", "gist.rightlink_follows");
  counter("splits", "gist.splits");
  counter("predicate_waits", "gist.predicate_waits");
  counter("deadlocks", "lock.deadlocks");
  counter("optimistic_visits", "gist.read.optimistic_visits");
  counter("read_restarts", "gist.read.restarts");
  counter("read_fallbacks", "gist.read.fallbacks");

  const double hits = static_cast<double>(reg->GetCounter("bp.hits")->value());
  const double misses =
      static_cast<double>(reg->GetCounter("bp.misses")->value());
  state.counters["bp_hit_rate"] =
      hits + misses == 0 ? 0.0 : hits / (hits + misses);

  const auto p99_us = [&](const char* bench_name, const char* metric) {
    const auto snap = reg->GetHistogram(metric)->GetSnapshot();
    state.counters[bench_name] = snap.count == 0 ? 0.0
                                                 : snap.Percentile(0.99) / 1e3;
  };
  p99_us("latch_wait_p99_us", "gist.latch_wait_ns");
  p99_us("wal_flush_p99_us", "wal.fsync_ns");
  p99_us("commit_p99_us", "txn.commit_ns");
}

/// Retry wrapper: runs \p fn in fresh transactions until it commits
/// (deadlock victims retry). Returns number of retries.
inline int RunTxnWithRetry(Database* db, IsolationLevel iso,
                           const std::function<Status(Transaction*)>& fn) {
  for (int attempt = 0;; attempt++) {
    Transaction* txn = db->Begin(iso);
    Status st = fn(txn);
    if (st.ok()) {
      st = db->Commit(txn);
      if (st.ok()) return attempt;
      continue;
    }
    (void)db->Abort(txn);
    if (!st.IsDeadlock() && !st.IsBusy()) {
      std::fprintf(stderr, "bench txn failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
}

}  // namespace bench
}  // namespace gistcr

#endif  // GISTCR_BENCH_BENCH_UTIL_H_
