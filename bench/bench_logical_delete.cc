// Experiment C4 (DESIGN.md): logical deletion + deferred garbage
// collection (paper section 7). Deletes only mark entries; a GC sweep
// reclaims committed-deleted entries and retires empty nodes. Series:
// steady-state delete+insert churn throughput and space amplification
// (physical entries / live entries) under different GC cadences.
// Expected shape: without GC, space amplification grows with churn and
// scans slow down; periodic GC bounds both at a small sweep cost.

#include <deque>

#include "bench/bench_util.h"

namespace gistcr {
namespace bench {
namespace {

constexpr int64_t kPreload = 20000;
BenchEnv g_env;

void BM_ChurnWithGc(benchmark::State& state) {
  const int gc_every = static_cast<int>(state.range(0));  // 0 = never
  g_env.BuildBtree("/tmp/gistcr_bench_c4", ConcurrencyProtocol::kLink,
                   PredicateMode::kHybrid, NsnSource::kLsn, kPreload);
  Database* db = g_env.db.get();
  Gist* gist = g_env.gist;

  // Track live rids so deletes hit real entries.
  std::deque<std::pair<int64_t, Rid>> live;
  {
    Transaction* txn = db->Begin(IsolationLevel::kReadCommitted);
    std::vector<SearchResult> results;
    BENCH_CHECK_OK(gist->Search(
        txn, BtreeExtension::MakeRange(0, kPreload), &results));
    BENCH_CHECK_OK(db->Commit(txn));
    for (const auto& r : results) {
      live.emplace_back(BtreeExtension::Lo(r.key), r.rid);
    }
  }

  int64_t next_key = kPreload;
  int64_t ops = 0;
  for (auto _ : state) {
    // One churn op = delete the oldest live key + insert a fresh one +
    // a 100-wide scan (so dead entries' scan cost shows up).
    auto [dk, drid] = live.front();
    live.pop_front();
    Rid new_rid;
    RunTxnWithRetry(db, IsolationLevel::kReadCommitted,
                    [&](Transaction* txn) {
                      GISTCR_RETURN_IF_ERROR(db->DeleteRecord(
                          txn, gist, BtreeExtension::MakeKey(dk), drid));
                      auto rid = db->InsertRecord(
                          txn, gist, BtreeExtension::MakeKey(next_key), "v");
                      GISTCR_RETURN_IF_ERROR(rid.status());
                      new_rid = rid.value();
                      std::vector<SearchResult> results;
                      return gist->Search(
                          txn,
                          BtreeExtension::MakeRange(next_key - 100,
                                                    next_key),
                          &results);
                    });
    live.emplace_back(next_key, new_rid);
    next_key++;
    ops++;
    if (gc_every != 0 && ops % gc_every == 0) {
      RunTxnWithRetry(db, IsolationLevel::kReadCommitted,
                      [&](Transaction* txn) {
                        uint64_t r = 0, n = 0;
                        return gist->GarbageCollect(txn, &r, &n);
                      });
    }
  }
  state.SetItemsProcessed(ops);

  // Space amplification: physical (incl. marked) entries vs live.
  std::vector<IndexEntry> entries;
  BENCH_CHECK_OK(gist->DumpEntries(&entries));
  state.counters["space_amp"] =
      static_cast<double>(entries.size()) / static_cast<double>(kPreload);
  state.counters["gc_reclaimed"] =
      static_cast<double>(gist->stats().gc_removed.load());
  state.counters["nodes_deleted"] =
      static_cast<double>(gist->stats().nodes_deleted.load());
  state.SetLabel(gc_every == 0 ? "gc-never"
                               : "gc-every-" + std::to_string(gc_every));
}

BENCHMARK(BM_ChurnWithGc)->Arg(0)->Arg(2000)->Arg(500)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace gistcr

BENCHMARK_MAIN();
