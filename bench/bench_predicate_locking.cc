// Experiment C2 (DESIGN.md): hybrid locking vs pure predicate locking
// (paper sections 4.2-4.3). With predicates attached to nodes, an insert
// checks only its target leaf's list; with a tree-global table it scans
// every registered predicate. Series: insert cost and predicates examined
// per conflict check as the number of open scanner transactions grows.
// Expected shape: hybrid stays flat; global grows linearly with scanners.

#include "bench/bench_util.h"

namespace gistcr {
namespace bench {
namespace {

constexpr int64_t kPreload = 50000;
BenchEnv g_env;

void BM_InsertWithScanners(benchmark::State& state) {
  const PredicateMode mode = state.range(0) == 0 ? PredicateMode::kHybrid
                                                 : PredicateMode::kGlobal;
  const int num_scanners = static_cast<int>(state.range(1));

  g_env.BuildBtree("/tmp/gistcr_bench_c2", ConcurrencyProtocol::kLink, mode,
                   NsnSource::kLsn, kPreload);
  Database* db = g_env.db.get();
  Gist* gist = g_env.gist;

  // Open repeatable-read scanners over disjoint low ranges; their
  // predicates stay attached (hybrid: on the visited nodes; global: in the
  // tree-global table) until they commit in teardown.
  std::vector<Transaction*> scanners;
  for (int s = 0; s < num_scanners; s++) {
    Transaction* txn = db->Begin(IsolationLevel::kRepeatableRead);
    std::vector<SearchResult> results;
    const int64_t lo = static_cast<int64_t>(s) * 100;
    BENCH_CHECK_OK(
        gist->Search(txn, BtreeExtension::MakeRange(lo, lo + 49), &results));
    scanners.push_back(txn);
  }
  db->preds()->ResetStats();

  // Inserts land far above every scanned range: no conflicts, so we
  // measure pure conflict-check overhead.
  int64_t k = kPreload * 10;
  int64_t items = 0;
  for (auto _ : state) {
    RunTxnWithRetry(db, IsolationLevel::kReadCommitted,
                    [&](Transaction* txn) {
                      return db->InsertRecord(txn, gist,
                                              BtreeExtension::MakeKey(k),
                                              "v")
                          .status();
                    });
    k++;
    items++;
  }
  state.SetItemsProcessed(items);

  const auto stats = db->preds()->GetStats();
  state.counters["preds_scanned_per_check"] =
      stats.conflict_checks == 0
          ? 0.0
          : static_cast<double>(stats.predicates_scanned) /
                static_cast<double>(stats.conflict_checks);
  state.counters["attached_total"] =
      static_cast<double>(db->preds()->TotalAttachments());
  state.SetLabel(std::string(mode == PredicateMode::kHybrid ? "hybrid"
                                                            : "global") +
                 "/" + std::to_string(num_scanners) + "scanners");

  for (Transaction* txn : scanners) BENCH_CHECK_OK(db->Commit(txn));
}

BENCHMARK(BM_InsertWithScanners)
    ->ArgsProduct({{0, 1}, {0, 4, 16, 64, 256}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace gistcr

BENCHMARK_MAIN();
