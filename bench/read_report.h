#ifndef GISTCR_BENCH_READ_REPORT_H_
#define GISTCR_BENCH_READ_REPORT_H_

// Machine-readable read-mostly report (BENCH_read.json) for the optimistic
// read path (DESIGN.md section 13), written by the BM_ReadMostly series in
// bench_concurrency. Same shape as commit_report.h: rows accumulate across
// (mix, mode, threads) combinations and the file is rewritten whole each
// time, so a partial sweep still leaves valid JSON. The checked-in
// bench/BENCH_read.seed.json holds the latched-read baseline rows the
// optimistic arm is compared against.

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <tuple>

#include "db/database.h"

namespace gistcr {
namespace bench {

/// One (mix, mode, threads) row of the read-mostly report. The restart
/// columns are the proof-of-boundedness half of the story: throughput
/// gains from latch-free reads are only real if restarts stay a small
/// fraction of optimistic visits.
struct ReadReportRow {
  double searches_per_s = 0;
  uint64_t searches = 0;
  double elapsed_s = 0;
  uint64_t optimistic_visits = 0;
  uint64_t read_restarts = 0;
  uint64_t read_fallbacks = 0;
  double restarts_per_search = 0;
};

inline void WriteReadReport(const std::string& out_path,
                            const std::string& mix, const std::string& mode,
                            int threads, double elapsed_s, uint64_t searches,
                            Database* db) {
  static std::mutex mu;
  static std::map<std::tuple<std::string, std::string, int>, ReadReportRow>
      rows;
  obs::MetricsRegistry* reg = db->metrics();
  ReadReportRow row;
  row.searches = searches;
  row.elapsed_s = elapsed_s;
  row.searches_per_s =
      elapsed_s > 0 ? static_cast<double>(searches) / elapsed_s : 0.0;
  row.optimistic_visits =
      reg->GetCounter("gist.read.optimistic_visits")->value();
  row.read_restarts = reg->GetCounter("gist.read.restarts")->value();
  row.read_fallbacks = reg->GetCounter("gist.read.fallbacks")->value();
  row.restarts_per_search =
      searches > 0
          ? static_cast<double>(row.read_restarts) / static_cast<double>(searches)
          : 0.0;

  std::lock_guard<std::mutex> l(mu);
  rows[{mix, mode, threads}] = row;
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", out_path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"read_mostly\",\n  \"runs\": [\n");
  size_t i = 0;
  for (const auto& [key, r] : rows) {
    std::fprintf(
        f,
        "    {\"mix\": \"%s\", \"mode\": \"%s\", \"threads\": %d, "
        "\"searches\": %llu, \"elapsed_s\": %.3f, \"searches_per_s\": %.1f, "
        "\"optimistic_visits\": %llu, \"read_restarts\": %llu, "
        "\"read_fallbacks\": %llu, \"restarts_per_search\": %.4f}%s\n",
        std::get<0>(key).c_str(), std::get<1>(key).c_str(), std::get<2>(key),
        static_cast<unsigned long long>(r.searches), r.elapsed_s,
        r.searches_per_s, static_cast<unsigned long long>(r.optimistic_visits),
        static_cast<unsigned long long>(r.read_restarts),
        static_cast<unsigned long long>(r.read_fallbacks),
        r.restarts_per_search, ++i < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace bench
}  // namespace gistcr

#endif  // GISTCR_BENCH_READ_REPORT_H_
