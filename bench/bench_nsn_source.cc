// Experiment C3 (DESIGN.md): NSN source ablation (paper section 10.1).
// The paper proposes using the last log LSN as the tree-global counter so
// that split detection needs no separate recoverable counter and
// descending operations avoid extra synchronization on a high-frequency
// counter. Series: split-heavy insert throughput, threads x {LSN source,
// dedicated atomic counter}.
//
// Expected shape: comparable or slightly better for the LSN source; the
// LSN variant additionally writes no counter state at checkpoints. (In
// this implementation both reads are single atomic loads, so the residual
// difference is small — the recoverability advantage is the main point,
// covered by CounterNsnRecoveryTest.)

#include <atomic>

#include "bench/bench_util.h"

namespace gistcr {
namespace bench {
namespace {

BenchEnv g_env;
std::atomic<int64_t> g_next_key{0};

void BM_SplitHeavyInserts(benchmark::State& state) {
  const NsnSource source =
      state.range(0) == 0 ? NsnSource::kLsn : NsnSource::kCounter;
  if (state.thread_index() == 0) {
    // Small fanout => frequent splits => frequent counter bumps and reads.
    g_env.BuildBtree("/tmp/gistcr_bench_c3", ConcurrencyProtocol::kLink,
                     PredicateMode::kHybrid, source, /*preload=*/0,
                     /*max_entries=*/16);
    g_next_key.store(0);
  }
  int64_t items = 0;
  for (auto _ : state) {
    const int64_t k = g_next_key.fetch_add(1);
    RunTxnWithRetry(g_env.db.get(), IsolationLevel::kReadCommitted,
                    [&](Transaction* txn) {
                      return g_env.db
                          ->InsertRecord(txn, g_env.gist,
                                         BtreeExtension::MakeKey(k), "v")
                          .status();
                    });
    items++;
  }
  state.SetItemsProcessed(items);
  if (state.thread_index() == 0) {
    state.counters["splits"] =
        static_cast<double>(g_env.gist->stats().splits.load());
    state.SetLabel(source == NsnSource::kLsn ? "lsn-as-nsn"
                                             : "dedicated-counter");
  }
}

BENCHMARK(BM_SplitHeavyInserts)->Arg(0)->Arg(1)->ThreadRange(1, 8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace gistcr

BENCHMARK_MAIN();
