#ifndef GISTCR_DB_DATA_STORE_H_
#define GISTCR_DB_DATA_STORE_H_

#include <string>
#include <vector>

#include "common/mutex.h"
#include "db/heap_page.h"
#include "db/page_allocator.h"
#include "storage/buffer_pool.h"
#include "txn/transaction_manager.h"
#include "util/status.h"

namespace gistcr {

/// Heap file of data records. The GiST is a secondary index: leaf entries
/// carry Rids pointing here, and the hybrid locking protocol two-phase
/// locks these Rids (paper section 4.3). Inserts append; deletes set a
/// tombstone (undo clears it; undo of an insert sets it) — both logged as
/// Heap-Insert / Heap-Delete records with page-oriented redo/undo.
class DataStore {
 public:
  DataStore(BufferPool* pool, TransactionManager* txns, PageAllocator* alloc)
      : pool_(pool), txns_(txns), alloc_(alloc) {}
  GISTCR_DISALLOW_COPY_AND_ASSIGN(DataStore);

  /// mkfs: allocates and formats the first heap page. Returns its id for
  /// the meta page (unlogged; runs before the first log record).
  StatusOr<PageId> CreateFresh(PageId first_page);

  /// Opens an existing store: walks the chain from \p head to find the
  /// tail. Instant restart passes \p tail_hint (the tail computed by log
  /// analysis) to skip the walk entirely — fetching every chain page here
  /// would force their inline redo and defeat the instant open — and
  /// \p doomed, the page a still-pending loser undo is about to unlink
  /// from the chain: the walk must stop short of it so no new record
  /// lands on a page that is about to be freed.
  Status Open(PageId head, PageId tail_hint = kInvalidPageId,
              const std::vector<PageId>& doomed = {});

  /// Appends a record on behalf of \p txn. Does not lock the Rid (the
  /// Database facade X-locks it *before* initiating the index insertion,
  /// paper section 6 step 1).
  StatusOr<Rid> Insert(Transaction* txn, Slice record);

  /// Tombstones the record.
  Status Delete(Transaction* txn, Rid rid);

  /// Reads a record; NotFound for tombstoned or never-written slots.
  StatusOr<std::string> Read(Rid rid);

  /// Physical appliers shared by forward execution, redo and CLR redo.
  /// When \p check_page_lsn, the update is skipped if page_lsn >= lsn.
  Status ApplyInsert(PageId page, uint16_t slot, Slice record, Lsn lsn,
                     bool check_page_lsn);
  Status ApplyDeleteMark(PageId page, uint16_t slot, bool deleted, Lsn lsn,
                         bool check_page_lsn);

  PageId head() const { return head_; }
  /// Current chain tail (checkpoints persist it as the instant-restart
  /// tail hint).
  PageId tail() {
    MutexLock l(mu_);
    return tail_;
  }

 private:
  /// Extends the chain with a freshly allocated page (runs as a nested top
  /// action: Get-Page + Rightlink-Update + NTA-End).
  Status GrowChain(Transaction* txn) GISTCR_REQUIRES(mu_);

  BufferPool* pool_;
  TransactionManager* txns_;
  PageAllocator* alloc_;

  Mutex mu_{GISTCR_LOCK_RANK(kDataStore, "data.mu")};  ///< Serializes tail maintenance.
  /// Set once by CreateFresh/Open before concurrent use; read-only after.
  PageId head_ = kInvalidPageId;
  PageId tail_ GISTCR_GUARDED_BY(mu_) = kInvalidPageId;
};

}  // namespace gistcr

#endif  // GISTCR_DB_DATA_STORE_H_
