#include "db/data_store.h"

#include <algorithm>

#include "wal/log_payloads.h"

// Every PageGuard in this file latches a heap-chain page (kHeapLatch,
// coupling-allowed for the tail hand-over during chain growth).
// gistcr-lint: page-latch-class(heap)

namespace gistcr {

StatusOr<PageId> DataStore::CreateFresh(PageId first_page) {
  auto frame_or = pool_->NewPage(first_page);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard guard(pool_, frame_or.value());
  guard.WLatch();
  HeapPageView(guard.view().data()).Init(first_page);
  guard.frame()->MarkDirty(kInvalidLsn + 1);
  head_ = tail_ = first_page;
  return first_page;
}

Status DataStore::Open(PageId head, PageId tail_hint,
                       const std::vector<PageId>& doomed) {
  head_ = head;
  if (tail_hint != kInvalidPageId) {
    // Instant restart: analysis already followed the chain's
    // Rightlink-Update records, so trust its tail and touch no pages. A
    // stale-but-on-chain hint would self-heal (Insert grows past a full
    // page), but the analysis accounts for every link in the recovered
    // window, so the hint is exact.
    tail_ = tail_hint;
    return Status::OK();
  }
  PageId cur = head;
  PageId last = head;
  while (cur != kInvalidPageId) {
    auto frame_or = pool_->Fetch(cur);
    GISTCR_RETURN_IF_ERROR(frame_or.status());
    PageGuard guard(pool_, frame_or.value());
    guard.RLatch();
    HeapPageView hv(guard.view().data());
    last = cur;
    cur = hv.IsFormatted() ? hv.next() : kInvalidPageId;
    if (cur != kInvalidPageId &&
        std::find(doomed.begin(), doomed.end(), cur) != doomed.end()) {
      // The link to this page belongs to a loser whose undo has not run
      // yet: it will be unlinked and freed. Stop short so no new record
      // lands there.
      cur = kInvalidPageId;
    }
  }
  tail_ = last;
  return Status::OK();
}

Status DataStore::GrowChain(Transaction* txn) {
  // Nested top action: allocate + link are committed atomically and survive
  // a later abort of the surrounding transaction.
  const Lsn nta_begin = txns_->NtaBegin(txn);
  auto pid_or = alloc_->Allocate(txn);
  GISTCR_RETURN_IF_ERROR(pid_or.status());
  const PageId new_pid = pid_or.value();

  auto old_tail_or = pool_->Fetch(tail_);
  GISTCR_RETURN_IF_ERROR(old_tail_or.status());
  PageGuard old_guard(pool_, old_tail_or.value());
  old_guard.WLatch();

  LogRecord rec;
  rec.type = LogRecordType::kRightlinkUpdate;
  RightlinkUpdatePayload pl;
  pl.page = tail_;
  pl.old_rightlink = kInvalidPageId;
  pl.new_rightlink = new_pid;
  pl.EncodeTo(&rec.payload);
  GISTCR_RETURN_IF_ERROR(txns_->AppendTxnLog(txn, &rec));
  HeapPageView(old_guard.view().data()).set_next(new_pid);
  old_guard.view().set_page_lsn(rec.lsn);
  old_guard.frame()->MarkDirty(rec.lsn);
  old_guard.Drop();

  // Format the new tail in memory; redo reformats lazily if needed.
  auto frame_or = pool_->NewPage(new_pid);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard guard(pool_, frame_or.value());
  guard.WLatch();
  HeapPageView(guard.view().data()).Init(new_pid);
  guard.frame()->MarkDirty(rec.lsn);
  guard.Drop();

  GISTCR_RETURN_IF_ERROR(txns_->NtaEnd(txn, nta_begin));
  tail_ = new_pid;
  return Status::OK();
}

StatusOr<Rid> DataStore::Insert(Transaction* txn, Slice record) {
  if (record.size() > kPageSize / 4) {
    return Status::InvalidArgument("record too large");
  }
  MutexLock l(mu_);
  for (;;) {
    auto frame_or = pool_->Fetch(tail_);
    GISTCR_RETURN_IF_ERROR(frame_or.status());
    PageGuard guard(pool_, frame_or.value());
    guard.WLatch();
    HeapPageView hv(guard.view().data());
    if (!hv.IsFormatted()) {
      // Chain was grown but the fresh tail never reached disk formatted
      // (crash between link and first use); format it now.
      hv.Init(tail_);
    }
    if (!hv.HasSpaceFor(record.size())) {
      guard.Drop();
      GISTCR_RETURN_IF_ERROR(GrowChain(txn));
      continue;
    }
    const uint16_t slot = hv.count();
    LogRecord rec;
    rec.type = LogRecordType::kHeapInsert;
    HeapOpPayload pl;
    pl.page = tail_;
    pl.slot = slot;
    pl.record = record.ToString();
    pl.EncodeTo(&rec.payload);
    GISTCR_RETURN_IF_ERROR(txns_->AppendTxnLog(txn, &rec));
    hv.Append(record);
    guard.view().set_page_lsn(rec.lsn);
    guard.frame()->MarkDirty(rec.lsn);
    Rid rid;
    rid.page_id = tail_;
    rid.slot = slot;
    return rid;
  }
}

Status DataStore::Delete(Transaction* txn, Rid rid) {
  auto frame_or = pool_->Fetch(rid.page_id);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard guard(pool_, frame_or.value());
  guard.WLatch();
  HeapPageView hv(guard.view().data());
  if (!hv.IsFormatted() || !hv.SlotExists(rid.slot)) {
    return Status::NotFound("heap record");
  }
  if (hv.IsDeleted(rid.slot)) {
    return Status::NotFound("heap record already deleted");
  }
  LogRecord rec;
  rec.type = LogRecordType::kHeapDelete;
  HeapOpPayload pl;
  pl.page = rid.page_id;
  pl.slot = rid.slot;
  pl.EncodeTo(&rec.payload);
  GISTCR_RETURN_IF_ERROR(txns_->AppendTxnLog(txn, &rec));
  hv.SetDeleted(rid.slot, true);
  guard.view().set_page_lsn(rec.lsn);
  guard.frame()->MarkDirty(rec.lsn);
  return Status::OK();
}

StatusOr<std::string> DataStore::Read(Rid rid) {
  auto frame_or = pool_->Fetch(rid.page_id);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard guard(pool_, frame_or.value());
  guard.RLatch();
  HeapPageView hv(guard.view().data());
  if (!hv.IsFormatted() || !hv.SlotExists(rid.slot) ||
      hv.IsDeleted(rid.slot)) {
    return Status::NotFound("heap record");
  }
  return hv.Record(rid.slot).ToString();
}

Status DataStore::ApplyInsert(PageId page, uint16_t slot, Slice record,
                              Lsn lsn, bool check_page_lsn) {
  auto frame_or = pool_->Fetch(page);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard guard(pool_, frame_or.value());
  guard.WLatch();
  HeapPageView hv(guard.view().data());
  if (!hv.IsFormatted()) hv.Init(page);
  if (check_page_lsn && guard.view().page_lsn() >= lsn) return Status::OK();
  hv.AppendAt(slot, record);
  guard.view().set_page_lsn(lsn);
  guard.frame()->MarkDirty(lsn);
  return Status::OK();
}

Status DataStore::ApplyDeleteMark(PageId page, uint16_t slot, bool deleted,
                                  Lsn lsn, bool check_page_lsn) {
  auto frame_or = pool_->Fetch(page);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard guard(pool_, frame_or.value());
  guard.WLatch();
  HeapPageView hv(guard.view().data());
  if (!hv.IsFormatted() || !hv.SlotExists(slot)) {
    return Status::Corruption("heap redo: missing slot");
  }
  if (check_page_lsn && guard.view().page_lsn() >= lsn) return Status::OK();
  hv.SetDeleted(slot, deleted);
  guard.view().set_page_lsn(lsn);
  guard.frame()->MarkDirty(lsn);
  return Status::OK();
}

}  // namespace gistcr
