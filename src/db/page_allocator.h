#ifndef GISTCR_DB_PAGE_ALLOCATOR_H_
#define GISTCR_DB_PAGE_ALLOCATOR_H_

#include <vector>

#include "common/mutex.h"
#include "storage/buffer_pool.h"
#include "txn/transaction_manager.h"
#include "util/status.h"
#include "wal/log_payloads.h"

namespace gistcr {

/// Recoverable page allocation. Allocation state is a bitmap spread over
/// kNumBitmapPages fixed pages (ids 1..kNumBitmapPages); every allocate /
/// free writes a Get-Page / Free-Page record (paper Table 1 rows 9-10)
/// against the owning bitmap page, so page-oriented redo and undo
/// reconstruct the allocation state exactly.
///
/// Allocate/Free are always called from inside a nested top action of the
/// surrounding structure modification (node split, root growth, node
/// deletion), matching the paper's recovery protocol.
class PageAllocator {
 public:
  static constexpr PageId kFirstBitmapPage = 1;
  static constexpr uint32_t kNumBitmapPages = 4;
  static constexpr uint32_t kBitsPerPage =
      (kPageSize - PageView::kHeaderSize) * 8;
  static constexpr PageId kFirstAllocatablePage =
      kFirstBitmapPage + kNumBitmapPages;  // 5
  static constexpr PageId kMaxPages = kNumBitmapPages * kBitsPerPage;

  PageAllocator(BufferPool* pool, TransactionManager* txns)
      : pool_(pool), txns_(txns) {}
  GISTCR_DISALLOW_COPY_AND_ASSIGN(PageAllocator);

  /// Formats the bitmap pages for a fresh database and marks the meta and
  /// bitmap pages allocated. Unlogged (database creation precedes the
  /// first log record; the formatted pages are flushed before use).
  Status FormatFresh();

  /// Allocates a page on behalf of \p txn, logging Get-Page.
  StatusOr<PageId> Allocate(Transaction* txn);

  /// Frees \p page_id on behalf of \p txn, logging Free-Page.
  Status Free(Transaction* txn, PageId page_id);

  /// Redo/undo entry points (recovery and rollback). \p set_allocated
  /// applies the bit; page-LSN testing is done by the caller-independent
  /// helper here.
  Status ApplyBit(PageId target, bool set_allocated, Lsn lsn,
                  bool check_page_lsn);

  /// True if the bit for \p page_id is set (tests).
  StatusOr<bool> IsAllocated(PageId page_id);

  static PageId BitmapPageFor(PageId target) {
    return kFirstBitmapPage + target / kBitsPerPage;
  }

  /// Instant restart: pages freed by loser transactions must not be
  /// handed out again before the concurrent undo re-sets their bits —
  /// otherwise the same page would briefly have two owners. Analysis
  /// quarantines them; undo completion clears the set.
  void SetQuarantine(std::vector<PageId> pages);
  void ClearQuarantine();

 private:
  BufferPool* pool_;
  TransactionManager* txns_;
  Mutex mu_{GISTCR_LOCK_RANK(kAllocator, "alloc.mu")};  ///< Serializes the free-bit search.
  PageId hint_ GISTCR_GUARDED_BY(mu_) = kFirstAllocatablePage;
  std::vector<PageId> quarantine_ GISTCR_GUARDED_BY(mu_);
};

}  // namespace gistcr

#endif  // GISTCR_DB_PAGE_ALLOCATOR_H_
