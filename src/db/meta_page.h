#ifndef GISTCR_DB_META_PAGE_H_
#define GISTCR_DB_META_PAGE_H_

#include "common/types.h"
#include "storage/page.h"
#include "util/coding.h"
#include "util/macros.h"

namespace gistcr {

/// Accessor for the database meta page (page 0). Layout after the common
/// page header:
///   [0..3]   magic
///   [4..7]   num_bitmap_pages
///   [8..11]  heap_head (first heap data page; fixed at creation)
///   [12..]   index root table: kMaxIndexes x {index_id u32, root u32}
///
/// Root pointers move when a root grows (paper: root split); those updates
/// are logged as Root-Change records, so the meta page participates in
/// page-oriented redo like any other page.
class MetaView {
 public:
  static constexpr uint32_t kMagic = 0x47495354;  // "GIST"
  static constexpr PageId kMetaPageId = 0;
  static constexpr uint32_t kMaxIndexes = 64;

  explicit MetaView(char* page_data) : d_(page_data) {}

  /// Frame::SnapshotBoundsFn for the meta page (optimistic root lookup,
  /// DESIGN.md section 13): the used bytes are a fixed-size prefix — page
  /// header + magic/bitmap/heap-head words + the root table — so the
  /// bounds are constants and nothing racy is read.
  static void SnapshotBounds(const char* /*page*/, uint32_t* head_len,
                             uint32_t* tail_begin) {
    *head_len = PageView::kHeaderSize + 12 + kMaxIndexes * 8;
    *tail_begin = kPageSize;
  }

  void Format(uint32_t num_bitmap_pages) {
    PageView pv(d_);
    pv.Format(kMetaPageId, PageType::kMeta);
    EncodeFixed32(p(), kMagic);
    EncodeFixed32(p() + 4, num_bitmap_pages);
    EncodeFixed32(p() + 8, kInvalidPageId);
    for (uint32_t i = 0; i < kMaxIndexes; i++) {
      EncodeFixed32(p() + 12 + i * 8, 0);
      EncodeFixed32(p() + 12 + i * 8 + 4, kInvalidPageId);
    }
  }

  bool valid() const { return DecodeFixed32(p()) == kMagic; }
  uint32_t num_bitmap_pages() const { return DecodeFixed32(p() + 4); }

  PageId heap_head() const { return DecodeFixed32(p() + 8); }
  void set_heap_head(PageId pid) { EncodeFixed32(p() + 8, pid); }

  /// Root page of \p index_id, or kInvalidPageId if the index is absent.
  PageId GetRoot(uint32_t index_id) const {
    for (uint32_t i = 0; i < kMaxIndexes; i++) {
      if (DecodeFixed32(p() + 12 + i * 8) == index_id) {
        return DecodeFixed32(p() + 12 + i * 8 + 4);
      }
    }
    return kInvalidPageId;
  }

  /// Sets (or installs) the root pointer of \p index_id.
  void SetRoot(uint32_t index_id, PageId root) {
    GISTCR_CHECK(index_id != 0);
    int free_slot = -1;
    for (uint32_t i = 0; i < kMaxIndexes; i++) {
      const uint32_t id = DecodeFixed32(p() + 12 + i * 8);
      if (id == index_id) {
        EncodeFixed32(p() + 12 + i * 8 + 4, root);
        return;
      }
      if (id == 0 && free_slot < 0) free_slot = static_cast<int>(i);
    }
    GISTCR_CHECK(free_slot >= 0);
    EncodeFixed32(p() + 12 + free_slot * 8, index_id);
    EncodeFixed32(p() + 12 + free_slot * 8 + 4, root);
  }

 private:
  char* p() const { return d_ + PageView::kHeaderSize; }
  char* d_;
};

}  // namespace gistcr

#endif  // GISTCR_DB_META_PAGE_H_
