#ifndef GISTCR_DB_HEAP_PAGE_H_
#define GISTCR_DB_HEAP_PAGE_H_

#include "common/types.h"
#include "storage/page.h"
#include "util/coding.h"
#include "util/macros.h"
#include "util/slice.h"

namespace gistcr {

/// Heap data-store page layout (after the common page header):
///   [0..1] slot_count
///   [2..3] heap_begin (page offset of the low end of the record heap)
///   [4..7] next_page  (heap pages form a singly linked chain)
///   slot array (6 bytes/slot): off u16 | len u16 | flags u16
///   record heap grows down from the page end.
/// Records are immutable; deletes set the kDeletedFlag tombstone (undo of a
/// delete simply clears it, undo of an insert sets it).
class HeapPageView {
 public:
  static constexpr uint32_t kHeapHeaderOffset = PageView::kHeaderSize;
  static constexpr uint32_t kHeapHeaderSize = 8;
  static constexpr uint32_t kSlotArrayOffset =
      kHeapHeaderOffset + kHeapHeaderSize;  // 24
  static constexpr uint32_t kSlotSize = 6;
  static constexpr uint16_t kDeletedFlag = 1;

  explicit HeapPageView(char* page_data) : d_(page_data) {}

  void Init(PageId self) {
    PageView pv(d_);
    pv.Format(self, PageType::kHeap);
    set_count(0);
    set_heap_begin(static_cast<uint16_t>(kPageSize));
    set_next(kInvalidPageId);
  }

  bool IsFormatted() const {
    return PageView(d_).page_type() == PageType::kHeap;
  }

  uint16_t count() const { return DecodeFixed16(d_ + kHeapHeaderOffset); }
  PageId next() const { return DecodeFixed32(d_ + kHeapHeaderOffset + 4); }
  void set_next(PageId p) { EncodeFixed32(d_ + kHeapHeaderOffset + 4, p); }

  bool HasSpaceFor(size_t len) const {
    const uint32_t slots_end = kSlotArrayOffset + count() * kSlotSize;
    return heap_begin() >= slots_end + kSlotSize + len;
  }

  /// Appends a record; returns its slot. Caller checked HasSpaceFor.
  uint16_t Append(Slice record) {
    GISTCR_CHECK(HasSpaceFor(record.size()));
    const uint16_t slot = count();
    const uint16_t off =
        static_cast<uint16_t>(heap_begin() - record.size());
    std::memcpy(d_ + off, record.data(), record.size());
    set_heap_begin(off);
    set_slot(slot, off, static_cast<uint16_t>(record.size()), 0);
    set_count(slot + 1);
    return slot;
  }

  /// Places a record at a specific slot (redo path; slots appear in LSN
  /// order, so slot == count() when the record is replayed).
  void AppendAt(uint16_t slot, Slice record) {
    GISTCR_CHECK(slot == count());
    Append(record);
  }

  bool SlotExists(uint16_t slot) const { return slot < count(); }
  bool IsDeleted(uint16_t slot) const {
    return (slot_flags(slot) & kDeletedFlag) != 0;
  }
  void SetDeleted(uint16_t slot, bool deleted) {
    uint16_t f = slot_flags(slot);
    f = deleted ? static_cast<uint16_t>(f | kDeletedFlag)
                : static_cast<uint16_t>(f & ~kDeletedFlag);
    EncodeFixed16(d_ + kSlotArrayOffset + slot * kSlotSize + 4, f);
  }
  Slice Record(uint16_t slot) const {
    return Slice(d_ + slot_off(slot), slot_len(slot));
  }

 private:
  uint16_t heap_begin() const {
    return DecodeFixed16(d_ + kHeapHeaderOffset + 2);
  }
  void set_heap_begin(uint16_t v) {
    EncodeFixed16(d_ + kHeapHeaderOffset + 2, v);
  }
  void set_count(uint16_t c) { EncodeFixed16(d_ + kHeapHeaderOffset, c); }
  uint16_t slot_off(uint16_t i) const {
    return DecodeFixed16(d_ + kSlotArrayOffset + i * kSlotSize);
  }
  uint16_t slot_len(uint16_t i) const {
    return DecodeFixed16(d_ + kSlotArrayOffset + i * kSlotSize + 2);
  }
  uint16_t slot_flags(uint16_t i) const {
    return DecodeFixed16(d_ + kSlotArrayOffset + i * kSlotSize + 4);
  }
  void set_slot(uint16_t i, uint16_t off, uint16_t len, uint16_t flags) {
    EncodeFixed16(d_ + kSlotArrayOffset + i * kSlotSize, off);
    EncodeFixed16(d_ + kSlotArrayOffset + i * kSlotSize + 2, len);
    EncodeFixed16(d_ + kSlotArrayOffset + i * kSlotSize + 4, flags);
  }

  char* d_;
};

}  // namespace gistcr

#endif  // GISTCR_DB_HEAP_PAGE_H_
