#ifndef GISTCR_DB_DATABASE_H_
#define GISTCR_DB_DATABASE_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/mutex.h"
#include "db/data_store.h"
#include "db/page_allocator.h"
#include "gist/gist.h"
#include "mvcc/mvcc_manager.h"
#include "obs/metrics.h"
#include "obs/slow_op_log.h"
#include "recovery/recovery_manager.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "txn/lock_manager.h"
#include "txn/predicate_manager.h"
#include "txn/transaction_manager.h"
#include "wal/log_manager.h"

namespace gistcr {

struct DatabaseOptions {
  std::string path;  ///< Base path: <path>.db, <path>.wal, <path>.ckpt.
  size_t buffer_pool_pages = 4096;
  /// Buffer pool partitions (page table + clock + mutex each). 0 picks
  /// automatically from the pool size (BufferPool::AutoShards).
  size_t buffer_pool_shards = 0;
  NsnSource nsn_source = NsnSource::kLsn;
  /// fdatasync the log on commit/flush. Benchmarks measuring protocol
  /// scaling may disable it; anything testing durability must not.
  bool sync_commit = true;
  /// When non-zero, a background maintenance thread runs every this many
  /// milliseconds: fuzzy checkpoint (+ WAL space reclamation) and a
  /// garbage-collection sweep over every open index (paper section 7.1:
  /// physical removal "performed as garbage collection by other
  /// operations" — here, a dedicated daemon, like PostgreSQL's vacuum).
  uint32_t maintenance_interval_ms = 0;
  /// When non-zero, a background writer thread runs every this many
  /// milliseconds, cleaning dirty pages just ahead of each shard's clock
  /// hand (BufferPool::WriteBackSome) so Fetch rarely has to write a dirty
  /// victim inline. Off by default: deterministic tests arm one-shot fault
  /// injection points that a concurrent writer could consume. Eviction
  /// always falls back to the synchronous write when the writer is behind
  /// (or disabled), so this is purely a latency optimization.
  uint32_t writer_interval_ms = 0;
  /// Dirty pages the writer may clean per shard per pass. 0 picks
  /// automatically (1/8 of a shard's frames).
  size_t writer_pages_per_pass = 0;
  /// Per-thread trace ring capacity (events). 0 keeps the tracer default
  /// (Tracer::kRingCapacity). Applies to rings created after this Database
  /// initializes; env GISTCR_TRACE_RING_CAPACITY overrides.
  size_t trace_ring_capacity = 0;
  /// Requests slower than this end-to-end are captured in the slow-op
  /// ring (0 disables capture). Env GISTCR_SLOW_OP_THRESHOLD_US overrides.
  uint64_t slow_op_threshold_us = 10'000;
  /// Slow-op ring capacity (records). 0 keeps the default
  /// (SlowOpLog::kDefaultCapacity). Env GISTCR_SLOW_OP_RING overrides.
  size_t slow_op_ring_capacity = 0;
  /// Multiversion snapshot reads (DESIGN.md section 14): when on,
  /// Begin(kSnapshot) produces a lock-free read-only transaction served
  /// from the versioned leaf store. When off, kSnapshot silently downgrades
  /// to repeatable read and the version store costs nothing. Env
  /// GISTCR_MVCC_ENABLED (0/1) overrides.
  bool mvcc_enabled = true;
  /// Version-store GC cadence: prune obsolete version records every Nth
  /// maintenance pass (1 = every pass; 0 disables pruning). Env
  /// GISTCR_MVCC_GC_PASSES overrides.
  uint32_t mvcc_gc_interval_passes = 1;
  /// Adaptive WAL group-commit pacing (LogManager::SetPacing): hold a
  /// commit-driven flush open up to this many microseconds while fewer
  /// than wal_pace_min_commits commits are batched. 0 disables (default).
  /// Env GISTCR_WAL_PACE_US / GISTCR_WAL_PACE_MIN_COMMITS override.
  uint64_t wal_pace_wait_us = 0;
  uint64_t wal_pace_min_commits = 0;
  /// Instant restart (DESIGN.md section 16): Open returns right after log
  /// analysis — redo happens per page, inline on first touch or from a
  /// background drainer, and loser undo runs as ordinary aborting
  /// transactions concurrent with new work. When off, Open runs the
  /// classic offline analysis/redo/undo sequence with the database closed
  /// throughout. Env GISTCR_INSTANT_RESTART (0/1) overrides.
  bool instant_restart = true;
};

/// The engine facade: wires disk, buffer pool, WAL, transactions, locks,
/// predicates, recovery and the heap data store; owns the GiST indexes.
///
/// Lifecycle:
///   auto db = Database::Create(opts);            // mkfs
///   db->CreateIndex(1, &ext);                    // register + format
///   ... workload ...
///   db->Checkpoint(); db.reset();                // clean shutdown
///   auto db2 = Database::Open(opts);             // restart recovery runs
///   db2->OpenIndex(1, &ext);
///
/// Crash testing: SimulateCrash() drops all volatile state (buffer pool
/// contents and the unflushed log tail) exactly as a power failure would;
/// the Database object is then dead and must be re-Opened.
class Database {
 public:
  ~Database();
  GISTCR_DISALLOW_COPY_AND_ASSIGN(Database);

  /// Creates a fresh database (truncating any existing files at the path).
  static StatusOr<std::unique_ptr<Database>> Create(
      const DatabaseOptions& opts);

  /// Opens an existing database and runs restart recovery.
  static StatusOr<std::unique_ptr<Database>> Open(
      const DatabaseOptions& opts);

  /// Formats a new GiST index. The extension must outlive the Database.
  Status CreateIndex(uint32_t index_id, const GistExtension* ext,
                     GistOptions opts = GistOptions());

  /// Attaches to an index that exists on disk.
  Status OpenIndex(uint32_t index_id, const GistExtension* ext,
                   GistOptions opts = GistOptions());

  StatusOr<Gist*> GetIndex(uint32_t index_id);

  Transaction* Begin(IsolationLevel iso = IsolationLevel::kRepeatableRead);
  Status Commit(Transaction* txn);
  Status Abort(Transaction* txn);

  /// Inserts a data record and indexes it: heap insert, X lock on the new
  /// Rid (paper section 6 step 1), then the GiST insertion. With \p unique
  /// a DuplicateKey rolls the heap insert back to a savepoint and leaves
  /// the transaction usable.
  StatusOr<Rid> InsertRecord(Transaction* txn, Gist* index, Slice key,
                             Slice record, bool unique = false);

  /// Logically deletes the index entry and tombstones the data record.
  Status DeleteRecord(Transaction* txn, Gist* index, Slice key, Rid rid);

  /// Reads a data record (no locking; use inside a transaction that
  /// S-locked the rid via Search for repeatable reads).
  StatusOr<std::string> ReadRecord(Rid rid) { return data_->Read(rid); }

  /// Blocks until background instant recovery (loser undo + page drain)
  /// has finished and returns its status. Immediate OK when the database
  /// was opened offline (or recovery already drained). Tests use this to
  /// compare final states; normal operation never needs to wait.
  Status WaitForRecovery();

  /// Fuzzy checkpoint + master-pointer update.
  Status Checkpoint();

  /// Flush everything (clean shutdown aid).
  Status FlushAll();

  /// Drops all volatile state — simulates a crash. The object becomes
  /// unusable except for destruction; re-Open to recover.
  void SimulateCrash();

  /// One maintenance pass (what the background thread runs): checkpoint,
  /// reclaim WAL space, garbage-collect every open index. Callable
  /// directly when no daemon is configured. Refuses with Status::Aborted
  /// once PrepareShutdown() has been called.
  Status RunMaintenancePass();

  /// Shutdown latch: joins the background maintenance thread and prevents
  /// any further maintenance passes (and with them background checkpoints)
  /// from starting. The network server calls this when it begins draining
  /// sessions, so no checkpoint races the drain; explicit Checkpoint()
  /// calls still work — the drain sequence ends with one. Idempotent.
  void PrepareShutdown();

  /// Snapshot of every metric this instance's components recorded — all
  /// "gist.*", "bp.*", "wal.*", "lock.*", "pred.*", "txn.*" and
  /// "recovery.*" names (DESIGN.md "Observability" has the catalogue).
  /// Derived gauges (bp.hit_rate) are refreshed first. \p as_json selects
  /// machine-readable output; the default is an aligned text table.
  std::string DumpMetrics(bool as_json = false);

  /// Same metric snapshot in Prometheus text exposition format (names
  /// prefixed "gistcr_"; histograms with cumulative `le` buckets).
  std::string DumpMetricsPrometheus();

  /// Live introspection views (the kInspect wire surface), each a JSON
  /// object/array: "slow" (slow-op ring), "waitgraph" (lock-manager
  /// wait-for edges), "bp" (buffer-pool shard occupancy), "wal" (flusher
  /// queue depth), "recovery" (instant-restart drain progress).
  /// InvalidArgument for anything else.
  StatusOr<std::string> InspectJson(const std::string& what);

  /// Writes every buffered trace event as a chrome://tracing JSON array.
  /// Events are only recorded when built with -DGISTCR_TRACING=ON; without
  /// it the file holds an empty array.
  Status ExportTrace(const std::string& path);

  // Component access (tests, benchmarks).
  BufferPool* pool() { return pool_.get(); }
  LogManager* log() { return &log_; }
  TransactionManager* txns() { return txns_.get(); }
  LockManager* locks() { return &locks_; }
  PredicateManager* preds() { return &preds_; }
  PageAllocator* allocator() { return alloc_.get(); }
  DataStore* data() { return data_.get(); }
  RecoveryManager* recovery() { return recovery_.get(); }
  MvccManager* mvcc() { return mvcc_.get(); }  ///< null when mvcc_enabled=0
  GlobalNsn* nsn() { return nsn_.get(); }
  obs::MetricsRegistry* metrics() { return &metrics_; }
  obs::SlowOpLog* slow_ops() { return &slow_ops_; }

 private:
  explicit Database(const DatabaseOptions& opts);

  Status InitCommon();
  Status ReadMasterPointer(Lsn* lsn);
  Status WriteMasterPointer(Lsn lsn);
  GistContext MakeContext();

  /// Refreshes derived gauges (bp.hit_rate) so dumps are self-contained.
  void RefreshDerivedGauges();

  DatabaseOptions opts_;
  /// Declared before the components so it outlives everything that caches
  /// pointers into it.
  obs::MetricsRegistry metrics_;
  obs::SlowOpLog slow_ops_;
  DiskManager disk_;
  LogManager log_;
  std::unique_ptr<BufferPool> pool_;
  LockManager locks_;
  PredicateManager preds_;
  std::unique_ptr<TransactionManager> txns_;
  std::unique_ptr<GlobalNsn> nsn_;
  std::unique_ptr<PageAllocator> alloc_;
  std::unique_ptr<DataStore> data_;
  std::unique_ptr<RecoveryManager> recovery_;
  /// Version store + timestamp oracle; null when MVCC is disabled.
  std::unique_ptr<MvccManager> mvcc_;
  /// Maintenance passes run so far (drives the version-GC cadence).
  uint64_t maint_passes_ = 0;

  void StartMaintenance();
  void StopMaintenance();
  void StartWriter();
  void StopWriter();
  void StartRecovery();
  void StopRecovery();

  Mutex indexes_mu_{GISTCR_LOCK_RANK(kDbIndexes, "db.indexes.mu")};
  std::unordered_map<uint32_t, std::unique_ptr<Gist>> indexes_
      GISTCR_GUARDED_BY(indexes_mu_);

  std::thread maint_thread_;
  Mutex maint_mu_{GISTCR_LOCK_RANK(kDbMaintenance, "db.maint.mu")};
  CondVar maint_cv_;
  bool maint_stop_ GISTCR_GUARDED_BY(maint_mu_) = false;

  std::thread writer_thread_;
  Mutex writer_mu_{GISTCR_LOCK_RANK(kDbWriter, "db.writer.mu")};
  CondVar writer_cv_;
  bool writer_stop_ GISTCR_GUARDED_BY(writer_mu_) = false;

  /// Background instant-recovery thread (loser undo + page drain).
  std::thread recovery_thread_ GISTCR_GUARDED_BY(recovery_mu_);
  Mutex recovery_mu_{GISTCR_LOCK_RANK(kDbRecovery, "db.recovery.mu")};
  CondVar recovery_cv_;
  /// Starts true so WaitForRecovery is a no-op after an offline Open.
  bool recovery_done_ GISTCR_GUARDED_BY(recovery_mu_) = true;
  Status recovery_status_ GISTCR_GUARDED_BY(recovery_mu_);
  std::atomic<bool> recovery_stop_{false};
  /// One-way latch; set by PrepareShutdown (see above).
  std::atomic<bool> shutting_down_{false};

  bool crashed_ = false;
};

}  // namespace gistcr

#endif  // GISTCR_DB_DATABASE_H_
