#include "db/page_allocator.h"

#include <algorithm>

// Every PageGuard in this file latches an allocation-bitmap page, which
// ranks above alloc.mu (kAllocator < kBitmapLatch) in the lock hierarchy.
// gistcr-lint: page-latch-class(bitmap)

namespace gistcr {

namespace {

inline bool GetBit(const char* payload, uint32_t bit) {
  return (payload[bit / 8] >> (bit % 8)) & 1;
}
inline void SetBit(char* payload, uint32_t bit, bool v) {
  if (v) {
    payload[bit / 8] = static_cast<char>(payload[bit / 8] | (1 << (bit % 8)));
  } else {
    payload[bit / 8] =
        static_cast<char>(payload[bit / 8] & ~(1 << (bit % 8)));
  }
}

}  // namespace

Status PageAllocator::FormatFresh() {
  for (uint32_t i = 0; i < kNumBitmapPages; i++) {
    const PageId pid = kFirstBitmapPage + i;
    auto frame_or = pool_->NewPage(pid);
    GISTCR_RETURN_IF_ERROR(frame_or.status());
    PageGuard guard(pool_, frame_or.value());
    guard.WLatch();
    guard.view().Format(pid, PageType::kAllocMap);
    if (i == 0) {
      // Meta page + bitmap pages themselves are permanently allocated.
      char* payload = guard.view().payload();
      for (PageId p = 0; p < kFirstAllocatablePage; p++) {
        SetBit(payload, p, true);
      }
    }
    guard.frame()->MarkDirty(kInvalidLsn + 1);  // force checkpoint flush
  }
  return Status::OK();
}

StatusOr<PageId> PageAllocator::Allocate(Transaction* txn) {
  MutexLock l(mu_);
  if (hint_ < kFirstAllocatablePage || hint_ >= kMaxPages) {
    hint_ = kFirstAllocatablePage;
  }
  // Two passes: [hint_, kMaxPages) then [kFirstAllocatablePage, hint_).
  for (int pass = 0; pass < 2; pass++) {
    PageId target = pass == 0 ? hint_ : kFirstAllocatablePage;
    const PageId limit = pass == 0 ? kMaxPages : hint_;
    while (target < limit) {
      const PageId bitmap_pid = BitmapPageFor(target);
      auto frame_or = pool_->Fetch(bitmap_pid);
      GISTCR_RETURN_IF_ERROR(frame_or.status());
      PageGuard guard(pool_, frame_or.value());
      guard.WLatch();
      char* payload = guard.view().payload();
      const uint32_t bit_start = target % kBitsPerPage;
      const uint32_t span =
          static_cast<uint32_t>(std::min<uint64_t>(kBitsPerPage - bit_start,
                                                   limit - target));
      for (uint32_t i = 0; i < span; i++) {
        const uint32_t bit = bit_start + i;
        if (GetBit(payload, bit)) continue;
        const PageId found =
            (bitmap_pid - kFirstBitmapPage) * kBitsPerPage + bit;
        if (std::find(quarantine_.begin(), quarantine_.end(), found) !=
            quarantine_.end()) {
          // Freed by a loser the instant-restart undo has not rolled back
          // yet; its bit is about to be re-set. Skip it.
          continue;
        }
        // Log Get-Page, then apply under the X latch we hold.
        LogRecord rec;
        rec.type = LogRecordType::kGetPage;
        PageAllocPayload pl;
        pl.target_page = found;
        pl.bitmap_page = bitmap_pid;
        pl.EncodeTo(&rec.payload);
        GISTCR_RETURN_IF_ERROR(txns_->AppendTxnLog(txn, &rec));
        SetBit(payload, bit, true);
        guard.view().set_page_lsn(rec.lsn);
        guard.frame()->MarkDirty(rec.lsn);
        hint_ = found + 1;
        return found;
      }
      target += span;
    }
  }
  return Status::NoSpace("page allocator exhausted");
}

Status PageAllocator::Free(Transaction* txn, PageId page_id) {
  GISTCR_CHECK(page_id >= kFirstAllocatablePage);
  const PageId bitmap_pid = BitmapPageFor(page_id);
  {
    auto frame_or = pool_->Fetch(bitmap_pid);
    GISTCR_RETURN_IF_ERROR(frame_or.status());
    PageGuard guard(pool_, frame_or.value());
    guard.WLatch();
    LogRecord rec;
    rec.type = LogRecordType::kFreePage;
    PageAllocPayload pl;
    pl.target_page = page_id;
    pl.bitmap_page = bitmap_pid;
    pl.EncodeTo(&rec.payload);
    GISTCR_RETURN_IF_ERROR(txns_->AppendTxnLog(txn, &rec));
    SetBit(guard.view().payload(), page_id % kBitsPerPage, false);
    guard.view().set_page_lsn(rec.lsn);
    guard.frame()->MarkDirty(rec.lsn);
  }
  // Take mu_ only after the bitmap latch is released: Allocate holds mu_
  // while it WLatches bitmap pages, so latch-then-mu_ here would invert the
  // order and deadlock against a concurrent allocation.
  MutexLock l(mu_);
  if (page_id < hint_) hint_ = page_id;
  return Status::OK();
}

Status PageAllocator::ApplyBit(PageId target, bool set_allocated, Lsn lsn,
                               bool check_page_lsn) {
  const PageId bitmap_pid = BitmapPageFor(target);
  auto frame_or = pool_->Fetch(bitmap_pid);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard guard(pool_, frame_or.value());
  guard.WLatch();
  if (check_page_lsn && guard.view().page_lsn() >= lsn) {
    return Status::OK();  // already applied
  }
  SetBit(guard.view().payload(), target % kBitsPerPage, set_allocated);
  guard.view().set_page_lsn(lsn);
  guard.frame()->MarkDirty(lsn);
  return Status::OK();
}

void PageAllocator::SetQuarantine(std::vector<PageId> pages) {
  MutexLock l(mu_);
  quarantine_ = std::move(pages);
}

void PageAllocator::ClearQuarantine() {
  MutexLock l(mu_);
  quarantine_.clear();
}

StatusOr<bool> PageAllocator::IsAllocated(PageId page_id) {
  const PageId bitmap_pid = BitmapPageFor(page_id);
  auto frame_or = pool_->Fetch(bitmap_pid);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  PageGuard guard(pool_, frame_or.value());
  guard.RLatch();
  return static_cast<bool>(
      GetBit(guard.view().payload(), page_id % kBitsPerPage));
}

}  // namespace gistcr
