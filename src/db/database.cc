#include "db/database.h"

#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "db/meta_page.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "storage/fault_injector.h"

namespace gistcr {

namespace {

/// Environment override for an observability knob: a valid unsigned
/// integer in \p name wins over \p fallback (the DatabaseOptions value).
uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<uint64_t>(x);
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

}  // namespace

Database::Database(const DatabaseOptions& opts) : opts_(opts) {}

Database::~Database() {
  // Clean shutdown: no crash artifact wanted from here on.
  obs::FlightRecorder::Global().Disarm();
  // Background threads drain before the final flush so no writer pass or
  // checkpoint races the shutdown I/O. Recovery first: it behaves like a
  // user thread (aborts, page fetches) and needs the others alive.
  StopRecovery();
  StopWriter();
  StopMaintenance();
  if (!crashed_) {
    (void)FlushAll();
  }
  indexes_.clear();
  log_.Close();
  disk_.Close();
}

GistContext Database::MakeContext() {
  GistContext ctx;
  ctx.pool = pool_.get();
  ctx.log = &log_;
  ctx.txns = txns_.get();
  ctx.locks = &locks_;
  ctx.preds = &preds_;
  ctx.alloc = alloc_.get();
  ctx.nsn = nsn_.get();
  ctx.metrics = &metrics_;
  ctx.mvcc = mvcc_.get();
  return ctx;
}

Status Database::InitCommon() {
  // A floor on the frame count: concurrent structure modifications pin up
  // to ~2*height+4 frames each; starving them mid-modification is not a
  // recoverable condition (rollback itself needs frames).
  if (opts_.buffer_pool_pages < 64) {
    return Status::InvalidArgument("buffer_pool_pages must be >= 64");
  }
  GISTCR_RETURN_IF_ERROR(disk_.Open(opts_.path + ".db"));
  // The log's metrics must be re-pointed before Open: Open starts the
  // flusher thread, which reads the cached metric pointers from then on.
  disk_.AttachMetrics(&metrics_);
  log_.AttachMetrics(&metrics_);
  // The MVCC timestamp oracle must exist (and its fan-out hook be
  // registered) before the flusher thread starts: snapshot stamps ride on
  // the durable-LSN broadcast of every group commit.
  if (EnvU64("GISTCR_MVCC_ENABLED", opts_.mvcc_enabled ? 1 : 0) != 0) {
    mvcc_ = std::make_unique<MvccManager>();
    mvcc_->AttachMetrics(&metrics_);
    log_.SetDurableCallback([this](Lsn lsn) { mvcc_->AdvanceDurable(lsn); });
  }
  GISTCR_RETURN_IF_ERROR(log_.Open(opts_.path + ".wal"));
  log_.SetSyncOnFlush(opts_.sync_commit);
  log_.SetPacing(EnvU64("GISTCR_WAL_PACE_US", opts_.wal_pace_wait_us),
                 EnvU64("GISTCR_WAL_PACE_MIN_COMMITS",
                        opts_.wal_pace_min_commits));
  if (mvcc_ != nullptr) {
    // Seed the oracle with what is already durable so the first snapshot
    // (taken before any new commit flushes) sees the pre-restart state.
    mvcc_->AdvanceDurable(log_.durable_lsn());
  }
  pool_ = std::make_unique<BufferPool>(
      &disk_, opts_.buffer_pool_pages,
      [this](Lsn lsn) { return log_.Flush(lsn); }, opts_.buffer_pool_shards);
  txns_ = std::make_unique<TransactionManager>(&log_, &locks_, &preds_);
  nsn_ = std::make_unique<GlobalNsn>(opts_.nsn_source, &log_);
  alloc_ = std::make_unique<PageAllocator>(pool_.get(), txns_.get());
  data_ = std::make_unique<DataStore>(pool_.get(), txns_.get(), alloc_.get());
  recovery_ = std::make_unique<RecoveryManager>(
      pool_.get(), &log_, txns_.get(), alloc_.get(), data_.get(), nsn_.get());
  txns_->SetUndoApplier(recovery_.get());
  if (mvcc_ != nullptr) {
    txns_->SetMvcc(mvcc_.get());
    recovery_->SetMvcc(mvcc_.get());
  }
  // Re-point every remaining component at this instance's registry (they
  // start on the process fallback). Done before any of *their* worker
  // threads exist, so the cached metric pointers are safely published.
  locks_.AttachMetrics(&metrics_);
  preds_.AttachMetrics(&metrics_);
  pool_->AttachMetrics(&metrics_);
  txns_->AttachMetrics(&metrics_);
  recovery_->AttachMetrics(&metrics_);
  if constexpr (kFaultInjectionCompiled) {
    FaultInjector::Global().AttachMetrics(&metrics_);
  }
  // Observability knobs: environment overrides beat DatabaseOptions so a
  // deployed binary can be re-tuned without a rebuild (README knob table).
  obs::Tracer::Global().SetRingCapacity(static_cast<size_t>(
      EnvU64("GISTCR_TRACE_RING_CAPACITY", opts_.trace_ring_capacity)));
  slow_ops_.Configure(
      static_cast<size_t>(
          EnvU64("GISTCR_SLOW_OP_RING", opts_.slow_op_ring_capacity)),
      EnvU64("GISTCR_SLOW_OP_THRESHOLD_US", opts_.slow_op_threshold_us) *
          1000);
  // Crash flight recorder: armed for the life of this instance; a fatal
  // crash point (and, opt-in, a fatal signal) dumps to <path>.flight.
  obs::FlightRecorder::Global().Arm(opts_.path + ".flight", &metrics_,
                                    &slow_ops_);
  if (EnvU64("GISTCR_FLIGHT_SIGNALS", 0) != 0) {
    obs::FlightRecorder::InstallSignalHandlers();
  }
  return Status::OK();
}

void Database::RefreshDerivedGauges() {
  const uint64_t hits = metrics_.GetCounter("bp.hits")->value();
  const uint64_t misses = metrics_.GetCounter("bp.misses")->value();
  const uint64_t accesses = hits + misses;
  metrics_.GetGauge("bp.hit_rate")
      ->Set(accesses == 0
                ? 0.0
                : static_cast<double>(hits) / static_cast<double>(accesses));
}

std::string Database::DumpMetrics(bool as_json) {
  // Refresh derived gauges so a dump is self-contained.
  RefreshDerivedGauges();
  std::string out;
  if (as_json) {
    metrics_.DumpJson(&out);
  } else {
    metrics_.DumpText(&out);
  }
  return out;
}

std::string Database::DumpMetricsPrometheus() {
  RefreshDerivedGauges();
  std::string out;
  metrics_.DumpPrometheus(&out);
  return out;
}

StatusOr<std::string> Database::InspectJson(const std::string& what) {
  std::string out;
  if (what == "slow") {
    return slow_ops_.DumpJson();
  }
  if (what == "waitgraph") {
    out = "{\"edges\":[";
    bool first = true;
    for (const auto& [waiter, holder] : locks_.WaitEdges()) {
      AppendF(&out, "%s{\"waiter\":%" PRIu64 ",\"holder\":%" PRIu64 "}",
              first ? "" : ",", waiter, holder);
      first = false;
    }
    out.append("]}\n");
    return out;
  }
  if (what == "bp") {
    out = "{\"shards\":[";
    size_t frames = 0, resident = 0, dirty = 0, pinned = 0;
    uint64_t evictions = 0;
    bool first = true;
    for (const auto& s : pool_->ShardOccupancy()) {
      AppendF(&out,
              "%s{\"frames\":%zu,\"resident\":%zu,\"dirty\":%zu,"
              "\"pinned\":%zu,\"evictions\":%" PRIu64 "}",
              first ? "" : ",", s.frames, s.resident, s.dirty, s.pinned,
              s.evictions);
      first = false;
      frames += s.frames;
      resident += s.resident;
      dirty += s.dirty;
      pinned += s.pinned;
      evictions += s.evictions;
    }
    AppendF(&out,
            "],\"frames\":%zu,\"resident\":%zu,\"dirty\":%zu,"
            "\"pinned\":%zu,\"evictions\":%" PRIu64 "}\n",
            frames, resident, dirty, pinned, evictions);
    return out;
  }
  if (what == "recovery") {
    AppendF(&out, "{\"instant_active\":%s,\"pages_pending\":%zu}\n",
            recovery_->InstantActive() ? "true" : "false",
            recovery_->PendingPageCount());
    return out;
  }
  if (what == "wal") {
    const LogManager::FlusherStats s = log_.GetFlusherStats();
    AppendF(&out,
            "{\"tail_bytes\":%" PRIu64 ",\"inflight_bytes\":%" PRIu64
            ",\"pending_records\":%" PRIu64 ",\"pending_commits\":%" PRIu64
            ",\"flush_in_flight\":%s,\"last_flush_ns\":%" PRIu64
            ",\"durable_lsn\":%" PRIu64 ",\"last_lsn\":%" PRIu64 "}\n",
            s.tail_bytes, s.inflight_bytes, s.pending_records,
            s.pending_commits, s.flush_in_flight ? "true" : "false",
            s.last_flush_ns, s.durable_lsn, s.last_lsn);
    return out;
  }
  return Status::InvalidArgument("unknown inspect view: " + what);
}

Status Database::ExportTrace(const std::string& path) {
  return obs::Tracer::Global().ExportJson(path);
}

StatusOr<std::unique_ptr<Database>> Database::Create(
    const DatabaseOptions& opts) {
  // Truncate any previous incarnation.
  std::remove((opts.path + ".db").c_str());
  std::remove((opts.path + ".wal").c_str());
  std::remove((opts.path + ".ckpt").c_str());
  std::remove((opts.path + ".flight").c_str());

  std::unique_ptr<Database> db(new Database(opts));
  GISTCR_RETURN_IF_ERROR(db->InitCommon());

  // Format the meta page and the allocation bitmaps (mkfs; flushed below,
  // so restart recovery never needs to reconstruct them from scratch).
  {
    auto frame_or = db->pool_->NewPage(MetaView::kMetaPageId);
    GISTCR_RETURN_IF_ERROR(frame_or.status());
    PageGuard guard(db->pool_.get(), frame_or.value());
    guard.WLatch();
    MetaView meta(guard.view().data());
    meta.Format(PageAllocator::kNumBitmapPages);
    guard.frame()->MarkDirty(kInvalidLsn + 1);
  }
  GISTCR_RETURN_IF_ERROR(db->alloc_->FormatFresh());

  // First heap page, through a bootstrap transaction (the Get-Page record
  // is logged and harmless to redo).
  {
    Transaction* boot = db->txns_->Begin(IsolationLevel::kReadCommitted);
    auto pid_or = db->alloc_->Allocate(boot);
    GISTCR_RETURN_IF_ERROR(pid_or.status());
    auto head_or = db->data_->CreateFresh(pid_or.value());
    GISTCR_RETURN_IF_ERROR(head_or.status());
    {
      auto frame_or = db->pool_->Fetch(MetaView::kMetaPageId);
      GISTCR_RETURN_IF_ERROR(frame_or.status());
      PageGuard guard(db->pool_.get(), frame_or.value());
      guard.WLatch();
      MetaView(guard.view().data()).set_heap_head(head_or.value());
      guard.frame()->MarkDirty(boot->last_lsn());
    }
    GISTCR_RETURN_IF_ERROR(db->txns_->Commit(boot));
  }
  GISTCR_RETURN_IF_ERROR(db->FlushAll());
  db->StartMaintenance();
  db->StartWriter();
  return db;
}

StatusOr<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& opts) {
  std::unique_ptr<Database> db(new Database(opts));
  GISTCR_RETURN_IF_ERROR(db->InitCommon());
  const uint64_t t0 = obs::NowNanos();

  Lsn ckpt = kInvalidLsn;
  GISTCR_RETURN_IF_ERROR(db->ReadMasterPointer(&ckpt));
  const bool instant =
      EnvU64("GISTCR_INSTANT_RESTART", opts.instant_restart ? 1 : 0) != 0;
  if (instant) {
    // Log-only analysis: builds the per-page redo plans, re-acquires the
    // losers' locks and arms the buffer-pool hook. No page is redone yet;
    // everything after this point may touch pages (triggering their
    // inline redo) but never has to wait for the whole log.
    GISTCR_RETURN_IF_ERROR(db->recovery_->StartInstant(ckpt));
  } else {
    GISTCR_RETURN_IF_ERROR(db->recovery_->Restart(ckpt));
  }

  // Attach the heap store. Reading the meta page inline-redoes just that
  // page under instant restart; the analysis-computed tail hint keeps
  // DataStore::Open from walking (and so redoing) the whole heap chain.
  {
    auto frame_or = db->pool_->Fetch(MetaView::kMetaPageId);
    GISTCR_RETURN_IF_ERROR(frame_or.status());
    PageGuard guard(db->pool_.get(), frame_or.value());
    guard.RLatch();
    MetaView meta(guard.view().data());
    if (!meta.valid()) return Status::Corruption("bad meta page");
    const PageId head = meta.heap_head();
    guard.Drop();
    if (head != kInvalidPageId) {
      GISTCR_RETURN_IF_ERROR(db->data_->Open(
          head, db->recovery_->HeapTailHint(),
          db->recovery_->DoomedHeapPages()));
    }
  }
  db->metrics_.GetGauge("recovery.time_to_open_ns")
      ->Set(static_cast<double>(obs::NowNanos() - t0));
  db->StartMaintenance();
  db->StartWriter();
  if (instant) db->StartRecovery();
  return db;
}

Status Database::RunMaintenancePass() {
  if (shutting_down_.load(std::memory_order_acquire)) {
    return Status::Aborted("database shutting down");
  }
  GISTCR_RETURN_IF_ERROR(Checkpoint());
  std::vector<Gist*> gists;
  {
    MutexLock l(indexes_mu_);
    for (auto& [id, g] : indexes_) {
      (void)id;
      gists.push_back(g.get());
    }
  }
  for (Gist* gist : gists) {
    Transaction* txn = Begin(IsolationLevel::kReadCommitted);
    uint64_t removed = 0, nodes = 0;
    Status st = gist->GarbageCollect(txn, &removed, &nodes);
    if (st.ok()) {
      st = Commit(txn);
      if (!st.ok()) continue;
    } else {
      (void)Abort(txn);  // contention; the next pass retries
    }
  }
  // Version-store GC (DESIGN.md section 14): prune version records no
  // active snapshot can reach, on the configured cadence.
  maint_passes_++;
  const uint64_t gc_every =
      EnvU64("GISTCR_MVCC_GC_PASSES", opts_.mvcc_gc_interval_passes);
  if (mvcc_ != nullptr && gc_every != 0 && maint_passes_ % gc_every == 0) {
    (void)mvcc_->Prune();
  }
  return Status::OK();
}

void Database::PrepareShutdown() {
  shutting_down_.store(true, std::memory_order_release);
  StopRecovery();
  StopMaintenance();
  StopWriter();
}

void Database::StartMaintenance() {
  if (opts_.maintenance_interval_ms == 0) return;
  if (shutting_down_.load(std::memory_order_acquire)) return;
  {
    MutexLock l(maint_mu_);
    maint_stop_ = false;
  }
  maint_thread_ = std::thread([this] {
    MutexLock l(maint_mu_);
    while (!maint_stop_) {
      (void)maint_cv_.WaitFor(
          maint_mu_, std::chrono::milliseconds(opts_.maintenance_interval_ms));
      if (maint_stop_) break;
      l.Unlock();
      (void)RunMaintenancePass();  // best effort
      l.Lock();
    }
  });
}

void Database::StopMaintenance() {
  {
    MutexLock l(maint_mu_);
    if (!maint_thread_.joinable()) return;
    maint_stop_ = true;
    maint_cv_.NotifyAll();
  }
  maint_thread_.join();
}

void Database::StartWriter() {
  if (opts_.writer_interval_ms == 0) return;
  if (shutting_down_.load(std::memory_order_acquire)) return;
  {
    MutexLock l(writer_mu_);
    writer_stop_ = false;
  }
  writer_thread_ = std::thread([this] {
    obs::Counter* passes = metrics_.GetCounter("writer.passes");
    obs::Counter* pages = metrics_.GetCounter("writer.pages_written");
    obs::Counter* errors = metrics_.GetCounter("writer.errors");
    obs::Histogram* pass_ns = metrics_.GetHistogram("writer.pass_ns");
    size_t budget = opts_.writer_pages_per_pass;
    if (budget == 0) {
      budget = pool_->num_frames() / pool_->num_shards() / 8;
      if (budget == 0) budget = 1;
    }
    MutexLock l(writer_mu_);
    while (!writer_stop_) {
      (void)writer_cv_.WaitFor(
          writer_mu_, std::chrono::milliseconds(opts_.writer_interval_ms));
      if (writer_stop_) break;
      l.Unlock();
      {
        GISTCR_TRACE_SCOPE("writer.pass");
        const uint64_t t0 = obs::NowNanos();
        auto n_or = pool_->WriteBackSome(budget);
        if (n_or.ok()) {
          pages->Add(n_or.value());
        } else {
          // Best effort: eviction's synchronous fallback surfaces the
          // error to the operation that actually needs the page.
          errors->Add(1);
        }
        passes->Add(1);
        pass_ns->Record(obs::NowNanos() - t0);
      }
      l.Lock();
    }
  });
}

void Database::StopWriter() {
  {
    MutexLock l(writer_mu_);
    if (!writer_thread_.joinable()) return;
    writer_stop_ = true;
    writer_cv_.NotifyAll();
  }
  writer_thread_.join();
}

void Database::StartRecovery() {
  MutexLock l(recovery_mu_);
  recovery_done_ = false;
  recovery_status_ = Status::OK();
  recovery_stop_.store(false, std::memory_order_release);
  recovery_thread_ = std::thread([this] {
    Status st = recovery_->RunInstantBackground(recovery_stop_);
    MutexLock ll(recovery_mu_);
    recovery_done_ = true;
    recovery_status_ = st;
    recovery_cv_.NotifyAll();
  });
}

void Database::StopRecovery() {
  recovery_stop_.store(true, std::memory_order_release);
  std::thread t;
  {
    MutexLock l(recovery_mu_);
    if (!recovery_thread_.joinable()) return;
    t = std::move(recovery_thread_);
  }
  t.join();
}

Status Database::WaitForRecovery() {
  MutexLock l(recovery_mu_);
  while (!recovery_done_) {
    recovery_cv_.Wait(recovery_mu_);
  }
  return recovery_status_;
}

Status Database::CreateIndex(uint32_t index_id, const GistExtension* ext,
                             GistOptions opts) {
  opts.index_id = index_id;
  auto gist = std::make_unique<Gist>(MakeContext(), ext, opts);
  GISTCR_RETURN_IF_ERROR(gist->Create());
  GISTCR_RETURN_IF_ERROR(FlushAll());  // make the formatted root durable
  MutexLock l(indexes_mu_);
  indexes_[index_id] = std::move(gist);
  return Status::OK();
}

Status Database::OpenIndex(uint32_t index_id, const GistExtension* ext,
                           GistOptions opts) {
  opts.index_id = index_id;
  auto gist = std::make_unique<Gist>(MakeContext(), ext, opts);
  GISTCR_RETURN_IF_ERROR(gist->Open());
  MutexLock l(indexes_mu_);
  indexes_[index_id] = std::move(gist);
  return Status::OK();
}

StatusOr<Gist*> Database::GetIndex(uint32_t index_id) {
  MutexLock l(indexes_mu_);
  auto it = indexes_.find(index_id);
  if (it == indexes_.end()) {
    return Status::NotFound("index " + std::to_string(index_id));
  }
  return it->second.get();
}

Transaction* Database::Begin(IsolationLevel iso) { return txns_->Begin(iso); }
Status Database::Commit(Transaction* txn) { return txns_->Commit(txn); }
Status Database::Abort(Transaction* txn) { return txns_->Abort(txn); }

StatusOr<Rid> Database::InsertRecord(Transaction* txn, Gist* index, Slice key,
                                     Slice record, bool unique) {
  if (txn->is_snapshot()) {
    return Status::InvalidArgument("snapshot transactions are read-only");
  }
  if (unique) {
    GISTCR_RETURN_IF_ERROR(txns_->Savepoint(txn, "__insert_record"));
  }
  auto rid_or = data_->Insert(txn, record);
  GISTCR_RETURN_IF_ERROR(rid_or.status());
  const Rid rid = rid_or.value();
  // X lock before the index insertion begins (paper section 6, phase 1).
  GISTCR_RETURN_IF_ERROR(
      locks_.Lock(txn->id(), LockName{LockSpace::kRecord, rid.Pack()},
                  LockMode::kExclusive));
  Status st = unique ? index->InsertUnique(txn, key, rid)
                     : index->Insert(txn, key, rid);
  if (st.IsDuplicateKey()) {
    // Roll the heap insert back; the transaction stays usable and the
    // duplicate error is repeatable (S lock on the existing record).
    GISTCR_RETURN_IF_ERROR(
        txns_->RollbackToSavepoint(txn, "__insert_record"));
    return st;
  }
  GISTCR_RETURN_IF_ERROR(st);
  return rid;
}

Status Database::DeleteRecord(Transaction* txn, Gist* index, Slice key,
                              Rid rid) {
  if (txn->is_snapshot()) {
    return Status::InvalidArgument("snapshot transactions are read-only");
  }
  GISTCR_RETURN_IF_ERROR(
      locks_.Lock(txn->id(), LockName{LockSpace::kRecord, rid.Pack()},
                  LockMode::kExclusive));
  GISTCR_RETURN_IF_ERROR(index->Delete(txn, key, rid));
  return data_->Delete(txn, rid);
}

Status Database::Checkpoint() {
  auto lsn_or = recovery_->Checkpoint();
  GISTCR_RETURN_IF_ERROR(lsn_or.status());
  // Checkpoint record durable but the master pointer still names the
  // previous one: restart must work from the older (valid) checkpoint.
  GISTCR_CRASHPOINT("ckpt.before_master_update");
  GISTCR_RETURN_IF_ERROR(WriteMasterPointer(lsn_or.value()));
  // With the master pointer durable, everything below the redo/undo
  // horizon is dead weight: reclaim its disk space. The horizon is the
  // minimum of the checkpoint LSN, every dirty page's rec_lsn, and every
  // active transaction's first LSN (its undo backchain must stay
  // readable).
  Lsn keep = lsn_or.value();
  for (const auto& [pid, rec_lsn] : pool_->DirtyPageTable()) {
    (void)pid;
    if (rec_lsn != kInvalidLsn && rec_lsn < keep) keep = rec_lsn;
  }
  const Lsn oldest = txns_->OldestActiveFirstLsn();
  if (oldest != kInvalidLsn && oldest < keep) keep = oldest;
  // Instant restart: un-replayed page plans still read the log; never
  // reclaim below the oldest pending plan.
  const Lsn pending = recovery_->PendingMinRecLsn();
  if (pending != kInvalidLsn && pending < keep) keep = pending;
  (void)log_.ReclaimBefore(keep);  // best effort
  return Status::OK();
}

Status Database::FlushAll() {
  GISTCR_RETURN_IF_ERROR(log_.FlushAll());
  return pool_->FlushAll();
}

void Database::SimulateCrash() {
  // The writer must stop before volatile state is dropped: a pass holding
  // pins during DiscardAll would trip its no-pins invariant. Recovery
  // first for the same reason (it pins pages while replaying plans).
  StopRecovery();
  StopWriter();
  StopMaintenance();
  pool_->DisarmRecoveryHook();
  log_.DiscardTail();
  pool_->DiscardAll();
  crashed_ = true;
}

Status Database::ReadMasterPointer(Lsn* lsn) {
  *lsn = kInvalidLsn;
  FILE* f = std::fopen((opts_.path + ".ckpt").c_str(), "r");
  if (f == nullptr) return Status::OK();  // no checkpoint yet
  unsigned long long v = 0;
  const int n = std::fscanf(f, "%llu", &v);
  std::fclose(f);
  if (n == 1) *lsn = static_cast<Lsn>(v);
  return Status::OK();
}

Status Database::WriteMasterPointer(Lsn lsn) {
  const std::string tmp = opts_.path + ".ckpt.tmp";
  FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return Status::IOError("open master pointer");
  std::fprintf(f, "%llu\n", static_cast<unsigned long long>(lsn));
  std::fflush(f);
  std::fclose(f);
  if (std::rename(tmp.c_str(), (opts_.path + ".ckpt").c_str()) != 0) {
    return Status::IOError("rename master pointer");
  }
  return Status::OK();
}

}  // namespace gistcr
