#ifndef GISTCR_RECOVERY_RECOVERY_GATE_H_
#define GISTCR_RECOVERY_RECOVERY_GATE_H_

#include <atomic>
#include <functional>
#include <map>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "storage/page.h"
#include "util/status.h"

namespace gistcr {

/// Instant-restart recovery gate (DESIGN.md section 16).
///
/// After log analysis the gate holds one redo *plan* per not-yet-recovered
/// page: the LSNs of every log record in the recovered window whose redo
/// mutates that page, in log order. The buffer pool consults the gate on
/// every Fetch, so the first thread to touch a pending page replays its
/// plan inline — bounded work, one page — before the caller sees the
/// frame; a background drainer walks the remaining pages in recLSN order.
/// Each page moves through PageRecoveryState (storage/page.h):
/// kNeedsRedo -> kRedoing -> kClean (erased from the table).
///
/// Deadlock freedom: the gate mutex is never held across replay, and a
/// thread that *waits* for a page holds latches only on pages that are
/// already clean (every latched page was fetched through the gate), while
/// the replaying thread latches only the page it claimed — so no wait
/// cycle through the gate can close. A replayer re-entering the gate for
/// its own page (redo appliers fetch the page they are redoing) returns
/// immediately via the owner check.
class RecoveryGate {
 public:
  /// Replays one page's plan. Runs without the gate mutex held.
  using ReplayFn =
      std::function<Status(PageId, const std::vector<Lsn>& plan)>;

  RecoveryGate() = default;
  GISTCR_DISALLOW_COPY_AND_ASSIGN(RecoveryGate);

  void AttachMetrics(obs::MetricsRegistry* reg);

  /// Installs the per-page plans and the replay callback and opens the
  /// gate for business. Plans must be in log order; empty plans are
  /// dropped. Called once per restart, before the database serves.
  void Arm(std::unordered_map<PageId, std::vector<Lsn>> plans,
           ReplayFn replay);

  /// Drops all remaining state. Any still-pending plans are discarded, so
  /// only call once the drain is complete (or the database is crashing).
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Ensures \p pid is recovered: returns immediately for clean pages,
  /// replays the plan if this thread claims the page, waits for the owner
  /// otherwise. \p inline_caller distinguishes fetch-path redo from the
  /// background drainer for metrics and crash-point purposes.
  Status EnsureRecovered(PageId pid, bool inline_caller);

  /// NewPage path: \p pid is being re-created from scratch, so its redo
  /// prehistory is irrelevant — drop the plan (waiting out a concurrent
  /// replayer first) instead of replaying stale records into a page image
  /// the caller is about to overwrite.
  void CancelPage(PageId pid);

  /// Still-pending pages in recLSN (first planned LSN) order, for the
  /// background drainer.
  std::vector<PageId> PendingInOrder();

  /// (page, recLSN) of every still-pending page, for checkpoint DPT
  /// merging: a pending page's disk image predates its plan even if the
  /// buffer pool no longer considers the frame dirty.
  std::vector<std::pair<PageId, Lsn>> PendingPages();

  /// Smallest recLSN over pending pages (kInvalidLsn when none): a floor
  /// for log reclamation while recovery is still draining.
  Lsn PendingMinRecLsn();

  size_t pending_count();

 private:
  struct PageEntry {
    std::vector<Lsn> plan;
    PageRecoveryState state = PageRecoveryState::kNeedsRedo;
    std::thread::id owner;  ///< valid only while state == kRedoing
  };

  Mutex mu_{GISTCR_LOCK_RANK(kRecoveryGate, "recovery.gate.mu")};
  CondVar cv_;
  std::map<PageId, PageEntry> pages_ GISTCR_GUARDED_BY(mu_);
  ReplayFn replay_;
  std::atomic<bool> armed_{false};

  obs::Counter* m_inline_ = nullptr;
  obs::Counter* m_background_ = nullptr;
  obs::Gauge* m_pending_ = nullptr;
};

}  // namespace gistcr

#endif  // GISTCR_RECOVERY_RECOVERY_GATE_H_
