#include "recovery/recovery_manager.h"

#include <algorithm>
#include <map>

#include "db/heap_page.h"
#include "db/meta_page.h"
#include "gist/node.h"
#include "obs/trace.h"
#include "storage/fault_injector.h"

namespace gistcr {

namespace {

Status FetchX(BufferPool* pool, PageId pid, PageGuard* out) {
  auto frame_or = pool->Fetch(pid);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  *out = PageGuard(pool, frame_or.value());
  out->WLatch();
  return Status::OK();
}

void Stamp(PageGuard* g, Lsn lsn) {
  g->view().set_page_lsn(lsn);
  g->frame()->MarkDirty(lsn);
}

}  // namespace

void RecoveryManager::AttachMetrics(obs::MetricsRegistry* reg) {
  reg = obs::MetricsRegistry::OrFallback(reg);
  m_analyzed_ = reg->GetCounter("recovery.records_analyzed");
  m_redone_ = reg->GetCounter("recovery.records_redone");
  m_losers_ = reg->GetCounter("recovery.loser_txns");
  m_undone_ = reg->GetCounter("recovery.records_undone");
  m_checkpoints_ = reg->GetCounter("recovery.checkpoints");
  m_analysis_ns_ = reg->GetHistogram("recovery.analysis_ns");
  m_redo_ns_ = reg->GetHistogram("recovery.redo_ns");
  m_undo_ns_ = reg->GetHistogram("recovery.undo_ns");
  m_checkpoint_ns_ = reg->GetHistogram("recovery.checkpoint_ns");
}

// ---------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------

StatusOr<Lsn> RecoveryManager::Checkpoint() {
  GISTCR_TRACE_SCOPE("recovery.checkpoint");
  const uint64_t t0 = obs::NowNanos();
  CheckpointPayload pl;
  for (auto& [id, last] : txns_->ActiveTxns()) {
    pl.active_txns.push_back({id, last});
  }
  for (auto& [pid, rec] : pool_->DirtyPageTable()) {
    pl.dirty_pages.push_back({pid, rec});
  }
  pl.next_txn_id = txns_->NextTxnIdForCheckpoint();
  pl.nsn_counter = nsn_->CounterValue();
  LogRecord rec;
  rec.type = LogRecordType::kCheckpoint;
  pl.EncodeTo(&rec.payload);
  GISTCR_RETURN_IF_ERROR(log_->Append(&rec));
  GISTCR_RETURN_IF_ERROR(log_->Flush(rec.lsn));
  m_checkpoint_ns_->Record(obs::NowNanos() - t0);
  m_checkpoints_->Add(1);
  return rec.lsn;
}

// ---------------------------------------------------------------------
// Restart
// ---------------------------------------------------------------------

Status RecoveryManager::Restart(Lsn checkpoint_lsn) {
  GISTCR_TRACE_SCOPE("recovery.restart");
  // --- Analysis ---------------------------------------------------------
  uint64_t phase_t0 = obs::NowNanos();
  std::map<TxnId, Lsn> att;  // loser candidates -> last_lsn
  Lsn redo_start = checkpoint_lsn == kInvalidLsn ? LogManager::kFirstLsn
                                                 : checkpoint_lsn;
  TxnId max_txn = 0;

  if (checkpoint_lsn != kInvalidLsn) {
    LogRecord ckpt;
    GISTCR_RETURN_IF_ERROR(log_->ReadRecord(checkpoint_lsn, &ckpt));
    if (ckpt.type != LogRecordType::kCheckpoint) {
      return Corrupt("master pointer does not reference a checkpoint");
    }
    CheckpointPayload pl;
    if (!pl.DecodeFrom(ckpt.payload)) return Corrupt("bad checkpoint");
    for (const auto& t : pl.active_txns) {
      att[t.txn_id] = t.last_lsn;
      max_txn = std::max(max_txn, t.txn_id);
    }
    for (const auto& d : pl.dirty_pages) {
      if (d.rec_lsn != kInvalidLsn) redo_start = std::min(redo_start, d.rec_lsn);
    }
    nsn_->EnsureAtLeast(pl.nsn_counter);
    max_txn = std::max(max_txn, pl.next_txn_id - 1);
  }

  Status scan_st = log_->Scan(
      checkpoint_lsn == kInvalidLsn ? LogManager::kFirstLsn : checkpoint_lsn,
      [&](const LogRecord& rec) {
        stats_.records_analyzed++;
        m_analyzed_->Add(1);
        if (rec.txn_id != kInvalidTxnId) {
          max_txn = std::max(max_txn, rec.txn_id);
          switch (rec.type) {
            case LogRecordType::kCommit:
            case LogRecordType::kEnd:
              att.erase(rec.txn_id);
              break;
            default:
              att[rec.txn_id] = rec.lsn;
              break;
          }
        }
        if (rec.type == LogRecordType::kSplit) {
          SplitPayload pl;
          if (pl.DecodeFrom(rec.payload) && pl.new_nsn != 0) {
            nsn_->EnsureAtLeast(pl.new_nsn);
          }
        }
        return true;
      });
  GISTCR_RETURN_IF_ERROR(scan_st);
  txns_->SetNextTxnId(max_txn + 1);
  m_analysis_ns_->Record(obs::NowNanos() - phase_t0);
  // ATT/DPT reconstructed, no page touched yet: a crash here makes the
  // next restart re-run analysis from the same checkpoint (idempotence).
  GISTCR_CRASHPOINT("recovery.after_analysis");

  // --- Redo --------------------------------------------------------------
  phase_t0 = obs::NowNanos();
  GISTCR_RETURN_IF_ERROR(log_->Scan(redo_start, [&](const LogRecord& rec) {
    Status st = RedoRecord(rec);
    if (!st.ok()) {
      scan_st = st;
      return false;
    }
    stats_.records_redone++;
    m_redone_->Add(1);
    return true;
  }));
  GISTCR_RETURN_IF_ERROR(scan_st);
  m_redo_ns_->Record(obs::NowNanos() - phase_t0);
  // History repeated but losers not yet rolled back; the page-LSN test
  // must make a second redo pass a no-op.
  GISTCR_CRASHPOINT("recovery.after_redo");

  // --- Undo of losers -----------------------------------------------------
  phase_t0 = obs::NowNanos();
  for (const auto& [id, last] : att) {
    stats_.loser_txns++;
    m_losers_->Add(1);
    Transaction* txn = txns_->ResurrectForUndo(id, last);
    GISTCR_RETURN_IF_ERROR(txns_->Abort(txn));
  }
  m_undo_ns_->Record(obs::NowNanos() - phase_t0);
  return Status::OK();
}

// ---------------------------------------------------------------------
// Redo (page-oriented, page-LSN test)
// ---------------------------------------------------------------------

Status RecoveryManager::RedoRecord(const LogRecord& rec) {
  const Lsn lsn = rec.lsn;
  switch (rec.type) {
    case LogRecordType::kSplit: {
      SplitPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("split payload");
      const Nsn new_nsn = pl.new_nsn != 0 ? pl.new_nsn : lsn;
      {
        PageGuard g;
        GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.orig_page, &g));
        if (g.view().page_lsn() < lsn) {
          NodeView node(g.view().data());
          for (const IndexEntry& m : pl.moved) {
            const int idx = node.FindByKeyValue(m.key, m.value);
            if (idx < 0) return Corrupt("split redo: moved entry missing");
            node.RemoveEntry(static_cast<uint16_t>(idx));
          }
          GISTCR_RETURN_IF_ERROR(node.SetBp(pl.orig_bp_after));
          node.set_nsn(new_nsn);
          node.set_rightlink(pl.new_page);
          Stamp(&g, lsn);
        }
      }
      {
        PageGuard g;
        GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.new_page, &g));
        if (g.view().page_lsn() < lsn) {
          NodeView node(g.view().data());
          node.Init(pl.new_page, pl.level);
          for (const IndexEntry& m : pl.moved) {
            GISTCR_RETURN_IF_ERROR(node.InsertEntry(m));
          }
          GISTCR_RETURN_IF_ERROR(node.SetBp(pl.new_bp));
          node.set_nsn(pl.old_nsn);
          node.set_rightlink(pl.old_rightlink);
          Stamp(&g, lsn);
        }
      }
      return Status::OK();
    }
    case LogRecordType::kRootChange: {
      RootChangePayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("rootchange payload");
      {
        PageGuard g;
        GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.new_root, &g));
        if (g.view().page_lsn() < lsn) {
          NodeView node(g.view().data());
          node.Init(pl.new_root, pl.new_root_level);
          for (const IndexEntry& e : pl.root_entries) {
            GISTCR_RETURN_IF_ERROR(node.InsertEntry(e));
          }
          GISTCR_RETURN_IF_ERROR(node.SetBp(pl.root_bp));
          Stamp(&g, lsn);
        }
      }
      {
        PageGuard g;
        GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.meta_page, &g));
        if (g.view().page_lsn() < lsn) {
          MetaView meta(g.view().data());
          meta.SetRoot(pl.index_id, pl.new_root);
          Stamp(&g, lsn);
        }
      }
      return Status::OK();
    }
    case LogRecordType::kParentEntryUpdate: {
      ParentEntryUpdatePayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("peu payload");
      {
        PageGuard g;
        GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.child_page, &g));
        if (g.view().page_lsn() < lsn) {
          NodeView node(g.view().data());
          GISTCR_RETURN_IF_ERROR(node.SetBp(pl.new_bp));
          Stamp(&g, lsn);
        }
      }
      if (pl.parent_page != kInvalidPageId) {
        PageGuard g;
        GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.parent_page, &g));
        if (g.view().page_lsn() < lsn) {
          NodeView node(g.view().data());
          const int idx = node.FindByValue(pl.child_value);
          if (idx < 0) return Corrupt("peu redo: entry missing");
          GISTCR_RETURN_IF_ERROR(
              node.SetEntryKey(static_cast<uint16_t>(idx), pl.new_bp));
          Stamp(&g, lsn);
        }
      }
      return Status::OK();
    }
    case LogRecordType::kInternalEntryAdd:
    case LogRecordType::kInternalEntryUpdate:
    case LogRecordType::kInternalEntryDelete: {
      EntryOpPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("entryop payload");
      PageGuard g;
      GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.page, &g));
      if (g.view().page_lsn() >= lsn) return Status::OK();
      NodeView node(g.view().data());
      if (rec.type == LogRecordType::kInternalEntryAdd) {
        GISTCR_RETURN_IF_ERROR(node.InsertEntry(pl.entry));
      } else if (rec.type == LogRecordType::kInternalEntryUpdate) {
        const int idx = node.FindByValue(pl.entry.value);
        if (idx < 0) return Corrupt("ieu redo: entry missing");
        GISTCR_RETURN_IF_ERROR(
            node.SetEntryKey(static_cast<uint16_t>(idx), pl.entry.key));
      } else {
        const int idx = node.FindByValue(pl.entry.value);
        if (idx < 0) return Corrupt("ied redo: entry missing");
        node.RemoveEntry(static_cast<uint16_t>(idx));
      }
      Stamp(&g, lsn);
      return Status::OK();
    }
    case LogRecordType::kAddLeafEntry: {
      EntryOpPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("addleaf payload");
      PageGuard g;
      GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.page, &g));
      if (g.view().page_lsn() >= lsn) return Status::OK();
      NodeView node(g.view().data());
      GISTCR_RETURN_IF_ERROR(node.InsertEntry(pl.entry));
      Stamp(&g, lsn);
      return Status::OK();
    }
    case LogRecordType::kMarkLeafEntry: {
      EntryOpPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("markleaf payload");
      PageGuard g;
      GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.page, &g));
      if (g.view().page_lsn() >= lsn) return Status::OK();
      NodeView node(g.view().data());
      const int idx = node.FindByKeyValue(pl.entry.key, pl.entry.value);
      if (idx < 0) return Corrupt("markleaf redo: entry missing");
      node.set_entry_del_txn(static_cast<uint16_t>(idx), rec.txn_id);
      Stamp(&g, lsn);
      return Status::OK();
    }
    case LogRecordType::kGarbageCollection: {
      GarbageCollectionPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("gc payload");
      PageGuard g;
      GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.page, &g));
      if (g.view().page_lsn() >= lsn) return Status::OK();
      NodeView node(g.view().data());
      for (const IndexEntry& e : pl.removed) {
        const int idx = node.FindByKeyValue(e.key, e.value);
        if (idx < 0) return Corrupt("gc redo: entry missing");
        node.RemoveEntry(static_cast<uint16_t>(idx));
      }
      Stamp(&g, lsn);
      return Status::OK();
    }
    case LogRecordType::kGetPage:
    case LogRecordType::kFreePage: {
      PageAllocPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("alloc payload");
      return alloc_->ApplyBit(pl.target_page,
                              rec.type == LogRecordType::kGetPage, lsn,
                              /*check_page_lsn=*/true);
    }
    case LogRecordType::kRightlinkUpdate: {
      RightlinkUpdatePayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("rightlink payload");
      PageGuard g;
      GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.page, &g));
      if (g.view().page_lsn() >= lsn) return Status::OK();
      if (g.view().page_type() == PageType::kHeap) {
        HeapPageView(g.view().data()).set_next(pl.new_rightlink);
      } else if (g.view().page_type() == PageType::kGistNode) {
        NodeView(g.view().data()).set_rightlink(pl.new_rightlink);
      } else {
        return Corrupt("rightlink redo: unexpected page type");
      }
      Stamp(&g, lsn);
      return Status::OK();
    }
    case LogRecordType::kHeapInsert: {
      HeapOpPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("heap payload");
      return data_->ApplyInsert(pl.page, pl.slot, pl.record, lsn, true);
    }
    case LogRecordType::kHeapDelete: {
      HeapOpPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("heap payload");
      return data_->ApplyDeleteMark(pl.page, pl.slot, true, lsn, true);
    }
    case LogRecordType::kClr: {
      ClrPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("clr payload");
      return RedoClrAction(pl.compensated_type, pl.original,
                           pl.override_page, lsn);
    }
    default:
      return Status::OK();  // txn control, NTA-End, checkpoint: no page
  }
}

// ---------------------------------------------------------------------
// Undo (Table 1 right column); shared by live rollback and restart
// ---------------------------------------------------------------------

StatusOr<PageId> RecoveryManager::LocateLeafForUndo(PageId start, Nsn nsn,
                                                    const IndexEntry& entry) {
  PageId pid = start;
  for (int guard = 0; guard < 1 << 20; guard++) {
    PageGuard g;
    GISTCR_RETURN_IF_ERROR(FetchX(pool_, pid, &g));
    if (g.view().page_type() != PageType::kGistNode) {
      return Corrupt("logical undo: lost leaf chain");
    }
    NodeView node(g.view().data());
    if (node.FindByKeyValue(entry.key, entry.value) >= 0) {
      return pid;
    }
    if (node.nsn() <= nsn || node.rightlink() == kInvalidPageId) {
      return Corrupt("logical undo: entry not found");
    }
    pid = node.rightlink();
  }
  return Corrupt("logical undo: rightlink cycle");
}

Status RecoveryManager::ApplyRemoveLeafEntry(PageId page,
                                             const EntryOpPayload& pl,
                                             Lsn lsn, bool check_lsn) {
  PageId pid = page;
  for (int guard = 0; guard < 1 << 20; guard++) {
    PageGuard g;
    GISTCR_RETURN_IF_ERROR(FetchX(pool_, pid, &g));
    if (check_lsn && g.view().page_lsn() >= lsn) return Status::OK();
    NodeView node(g.view().data());
    const int idx = node.FindByKeyValue(pl.entry.key, pl.entry.value);
    if (idx >= 0) {
      node.RemoveEntry(static_cast<uint16_t>(idx));
      Stamp(&g, lsn);
      return Status::OK();
    }
    // The entry migrated right between locate and apply (live rollback
    // under concurrency); keep chasing.
    if (node.nsn() <= pl.nsn || node.rightlink() == kInvalidPageId) {
      return Corrupt("undo add-leaf: entry not found");
    }
    pid = node.rightlink();
  }
  return Corrupt("undo add-leaf: rightlink cycle");
}

Status RecoveryManager::ApplyUnmarkLeafEntry(PageId page,
                                             const EntryOpPayload& pl,
                                             Lsn lsn, bool check_lsn) {
  PageId pid = page;
  for (int guard = 0; guard < 1 << 20; guard++) {
    PageGuard g;
    GISTCR_RETURN_IF_ERROR(FetchX(pool_, pid, &g));
    if (check_lsn && g.view().page_lsn() >= lsn) return Status::OK();
    NodeView node(g.view().data());
    const int idx = node.FindByKeyValue(pl.entry.key, pl.entry.value);
    if (idx >= 0) {
      node.set_entry_del_txn(static_cast<uint16_t>(idx), kInvalidTxnId);
      Stamp(&g, lsn);
      return Status::OK();
    }
    if (node.nsn() <= pl.nsn || node.rightlink() == kInvalidPageId) {
      return Corrupt("undo mark-leaf: entry not found");
    }
    pid = node.rightlink();
  }
  return Corrupt("undo mark-leaf: rightlink cycle");
}

Status RecoveryManager::ApplyUndoSplit(const SplitPayload& pl, Lsn lsn,
                                       bool check_lsn) {
  PageGuard g;
  GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.orig_page, &g));
  if (check_lsn && g.view().page_lsn() >= lsn) return Status::OK();
  NodeView node(g.view().data());
  for (const IndexEntry& m : pl.moved) {
    GISTCR_RETURN_IF_ERROR(node.InsertEntry(m));
  }
  GISTCR_RETURN_IF_ERROR(node.SetBp(pl.orig_bp_before));
  node.set_nsn(pl.old_nsn);
  node.set_rightlink(pl.old_rightlink);
  Stamp(&g, lsn);
  // New page: "no action necessary" (Table 1) — the preceding Get-Page's
  // undo returns it to the allocator.
  return Status::OK();
}

Status RecoveryManager::ApplyUndoInternal(LogRecordType t,
                                          const EntryOpPayload& pl, Lsn lsn,
                                          bool check_lsn) {
  PageGuard g;
  GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.page, &g));
  if (check_lsn && g.view().page_lsn() >= lsn) return Status::OK();
  NodeView node(g.view().data());
  if (t == LogRecordType::kInternalEntryAdd) {
    const int idx = node.FindByValue(pl.entry.value);
    if (idx < 0) return Corrupt("undo iea: entry missing");
    node.RemoveEntry(static_cast<uint16_t>(idx));
  } else if (t == LogRecordType::kInternalEntryUpdate) {
    const int idx = node.FindByValue(pl.entry.value);
    if (idx < 0) return Corrupt("undo ieu: entry missing");
    GISTCR_RETURN_IF_ERROR(
        node.SetEntryKey(static_cast<uint16_t>(idx), pl.old_bp));
  } else {  // kInternalEntryDelete
    GISTCR_RETURN_IF_ERROR(node.InsertEntry(pl.entry));
  }
  Stamp(&g, lsn);
  return Status::OK();
}

Status RecoveryManager::ApplyUndoRightlink(const RightlinkUpdatePayload& pl,
                                           Lsn lsn, bool check_lsn) {
  PageGuard g;
  GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.page, &g));
  if (check_lsn && g.view().page_lsn() >= lsn) return Status::OK();
  if (g.view().page_type() == PageType::kHeap) {
    HeapPageView(g.view().data()).set_next(pl.old_rightlink);
  } else if (g.view().page_type() == PageType::kGistNode) {
    NodeView(g.view().data()).set_rightlink(pl.old_rightlink);
  } else {
    return Corrupt("undo rightlink: unexpected page type");
  }
  Stamp(&g, lsn);
  return Status::OK();
}

Status RecoveryManager::ApplyUndoRootChange(const RootChangePayload& pl,
                                            Lsn lsn, bool check_lsn) {
  PageGuard g;
  GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.meta_page, &g));
  if (check_lsn && g.view().page_lsn() >= lsn) return Status::OK();
  MetaView meta(g.view().data());
  meta.SetRoot(pl.index_id, pl.old_root);
  Stamp(&g, lsn);
  return Status::OK();
}

Status RecoveryManager::RedoClrAction(LogRecordType t, Slice original,
                                      PageId override_page, Lsn lsn) {
  switch (t) {
    case LogRecordType::kAddLeafEntry: {
      EntryOpPayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr addleaf payload");
      const PageId page =
          override_page != kInvalidPageId ? override_page : pl.page;
      return ApplyRemoveLeafEntry(page, pl, lsn, /*check_lsn=*/true);
    }
    case LogRecordType::kMarkLeafEntry: {
      EntryOpPayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr markleaf payload");
      const PageId page =
          override_page != kInvalidPageId ? override_page : pl.page;
      return ApplyUnmarkLeafEntry(page, pl, lsn, /*check_lsn=*/true);
    }
    case LogRecordType::kSplit: {
      SplitPayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr split payload");
      return ApplyUndoSplit(pl, lsn, true);
    }
    case LogRecordType::kInternalEntryAdd:
    case LogRecordType::kInternalEntryUpdate:
    case LogRecordType::kInternalEntryDelete: {
      EntryOpPayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr entryop payload");
      return ApplyUndoInternal(t, pl, lsn, true);
    }
    case LogRecordType::kGetPage:
    case LogRecordType::kFreePage: {
      PageAllocPayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr alloc payload");
      return alloc_->ApplyBit(pl.target_page,
                              t == LogRecordType::kFreePage, lsn, true);
    }
    case LogRecordType::kRightlinkUpdate: {
      RightlinkUpdatePayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr rightlink payload");
      return ApplyUndoRightlink(pl, lsn, true);
    }
    case LogRecordType::kRootChange: {
      RootChangePayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr rootchange payload");
      return ApplyUndoRootChange(pl, lsn, true);
    }
    case LogRecordType::kHeapInsert: {
      HeapOpPayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr heap payload");
      return data_->ApplyDeleteMark(pl.page, pl.slot, true, lsn, true);
    }
    case LogRecordType::kHeapDelete: {
      HeapOpPayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr heap payload");
      return data_->ApplyDeleteMark(pl.page, pl.slot, false, lsn, true);
    }
    default:
      return Corrupt("clr: uncompensatable type");
  }
}

Status RecoveryManager::UndoRecord(Transaction* txn, const LogRecord& rec) {
  // Fires once per record rolled back — crash-during-undo coverage (the
  // CLR chain must let a second restart skip already-compensated work).
  GISTCR_CRASHPOINT("recovery.mid_undo");
  // Redo-only records (Table 1): nothing to undo, no CLR.
  if (rec.type == LogRecordType::kParentEntryUpdate ||
      rec.type == LogRecordType::kGarbageCollection) {
    return Status::OK();
  }
  stats_.records_undone++;
  m_undone_->Add(1);

  ClrPayload clr;
  clr.compensated_type = rec.type;
  clr.override_page = kInvalidPageId;
  clr.original = rec.payload;

  // Logical undo needs the entry's *current* leaf for the CLR.
  if (rec.type == LogRecordType::kAddLeafEntry ||
      rec.type == LogRecordType::kMarkLeafEntry) {
    EntryOpPayload pl;
    if (!pl.DecodeFrom(rec.payload)) return Corrupt("undo payload");
    auto where = LocateLeafForUndo(pl.page, pl.nsn, pl.entry);
    GISTCR_RETURN_IF_ERROR(where.status());
    clr.override_page = where.value();
  }

  LogRecord crec;
  crec.type = LogRecordType::kClr;
  crec.undo_next = rec.prev_lsn;
  clr.EncodeTo(&crec.payload);
  GISTCR_RETURN_IF_ERROR(txns_->AppendTxnLog(txn, &crec));

  // Apply the undo action physically (no page-LSN test on the forward
  // path; the pages are current).
  switch (rec.type) {
    // Page first, version record second: while the aborted entry is still
    // on the leaf its pending record must exist, or a concurrent snapshot
    // scan finds no chain, treats the entry as ancient and emits the dirty
    // insert. Once ApplyRemoveLeafEntry has taken the entry off the page
    // (under the X latch, bumping the frame version) the record is
    // unreachable and safe to retract. Same order for unmark: the pending
    // delete mark outlives the page mark, and Visible() answers the
    // intermediate live-page/pending-mark state via the insert stamp.
    case LogRecordType::kAddLeafEntry: {
      EntryOpPayload pl;
      pl.DecodeFrom(rec.payload);
      Status st = ApplyRemoveLeafEntry(clr.override_page, pl, crec.lsn, false);
      if (st.ok() && mvcc_ != nullptr)
        mvcc_->UndoInsert(pl.entry.value, rec.txn_id);
      return st;
    }
    case LogRecordType::kMarkLeafEntry: {
      EntryOpPayload pl;
      pl.DecodeFrom(rec.payload);
      Status st = ApplyUnmarkLeafEntry(clr.override_page, pl, crec.lsn, false);
      if (st.ok() && mvcc_ != nullptr)
        mvcc_->UndoDelete(pl.entry.value, rec.txn_id);
      return st;
    }
    case LogRecordType::kSplit: {
      SplitPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("undo split payload");
      return ApplyUndoSplit(pl, crec.lsn, false);
    }
    case LogRecordType::kInternalEntryAdd:
    case LogRecordType::kInternalEntryUpdate:
    case LogRecordType::kInternalEntryDelete: {
      EntryOpPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("undo entry payload");
      return ApplyUndoInternal(rec.type, pl, crec.lsn, false);
    }
    case LogRecordType::kGetPage:
    case LogRecordType::kFreePage: {
      PageAllocPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("undo alloc payload");
      return alloc_->ApplyBit(pl.target_page,
                              rec.type == LogRecordType::kFreePage, crec.lsn,
                              false);
    }
    case LogRecordType::kRightlinkUpdate: {
      RightlinkUpdatePayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("undo rl payload");
      return ApplyUndoRightlink(pl, crec.lsn, false);
    }
    case LogRecordType::kRootChange: {
      RootChangePayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("undo root payload");
      return ApplyUndoRootChange(pl, crec.lsn, false);
    }
    case LogRecordType::kHeapInsert: {
      HeapOpPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("undo heap payload");
      return data_->ApplyDeleteMark(pl.page, pl.slot, true, crec.lsn, false);
    }
    case LogRecordType::kHeapDelete: {
      HeapOpPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("undo heap payload");
      return data_->ApplyDeleteMark(pl.page, pl.slot, false, crec.lsn, false);
    }
    default:
      return Status::OK();
  }
}

}  // namespace gistcr
