#include "recovery/recovery_manager.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "db/heap_page.h"
#include "db/meta_page.h"
#include "gist/node.h"
#include "obs/trace.h"
#include "storage/fault_injector.h"

namespace gistcr {

namespace {

Status FetchX(BufferPool* pool, PageId pid, PageGuard* out) {
  auto frame_or = pool->Fetch(pid);
  GISTCR_RETURN_IF_ERROR(frame_or.status());
  *out = PageGuard(pool, frame_or.value());
  out->WLatch();
  return Status::OK();
}

void Stamp(PageGuard* g, Lsn lsn) {
  g->view().set_page_lsn(lsn);
  g->frame()->MarkDirty(lsn);
}

/// The single page a CLR's redo mutates. UndoRecord appends leaf-entry
/// CLRs under the target leaf's X latch with override_page naming it, and
/// every other undo action is page-local by construction, so kClr always
/// decomposes to exactly one page in instant-restart plans.
PageId ClrTargetPage(const ClrPayload& clr) {
  switch (clr.compensated_type) {
    case LogRecordType::kAddLeafEntry:
    case LogRecordType::kMarkLeafEntry: {
      if (clr.override_page != kInvalidPageId) return clr.override_page;
      EntryOpPayload pl;
      return pl.DecodeFrom(clr.original) ? pl.page : kInvalidPageId;
    }
    case LogRecordType::kSplit: {
      SplitPayload pl;
      return pl.DecodeFrom(clr.original) ? pl.orig_page : kInvalidPageId;
    }
    case LogRecordType::kInternalEntryAdd:
    case LogRecordType::kInternalEntryUpdate:
    case LogRecordType::kInternalEntryDelete: {
      EntryOpPayload pl;
      return pl.DecodeFrom(clr.original) ? pl.page : kInvalidPageId;
    }
    case LogRecordType::kGetPage:
    case LogRecordType::kFreePage: {
      PageAllocPayload pl;
      if (!pl.DecodeFrom(clr.original)) return kInvalidPageId;
      return PageAllocator::BitmapPageFor(pl.target_page);
    }
    case LogRecordType::kRightlinkUpdate: {
      RightlinkUpdatePayload pl;
      return pl.DecodeFrom(clr.original) ? pl.page : kInvalidPageId;
    }
    case LogRecordType::kRootChange: {
      RootChangePayload pl;
      return pl.DecodeFrom(clr.original) ? pl.meta_page : kInvalidPageId;
    }
    case LogRecordType::kHeapInsert:
    case LogRecordType::kHeapDelete: {
      HeapOpPayload pl;
      return pl.DecodeFrom(clr.original) ? pl.page : kInvalidPageId;
    }
    default:
      return kInvalidPageId;
  }
}

/// Appends the ids of every page whose image \p rec's redo mutates —
/// the per-page decomposition instant restart plans with. Must stay in
/// lockstep with RedoRecordScoped's `only` checks.
///
/// Reads only the fixed leading fields of each payload (every layout in
/// log_payloads.h puts its page ids first, before any variable-length
/// data). Analysis calls this once per scanned record, and a full
/// DecodeFrom — entry lists, predicate strings — would dominate the
/// instant open. CLRs are the one exception (the target page depends on
/// the compensated payload) and are rare enough to decode fully.
void PagesOfRecord(const LogRecord& rec, std::vector<PageId>* out) {
  const char* p = rec.payload.data();
  const size_t n = rec.payload.size();
  switch (rec.type) {
    case LogRecordType::kSplit:  // {orig_page, new_page, ...}
      if (n >= 8) {
        out->push_back(DecodeFixed32(p));
        out->push_back(DecodeFixed32(p + 4));
      }
      return;
    case LogRecordType::kRootChange:  // {meta_page, index_id, old, new, ...}
      if (n >= 16) {
        out->push_back(DecodeFixed32(p + 12));  // new_root
        out->push_back(DecodeFixed32(p));       // meta_page
      }
      return;
    case LogRecordType::kParentEntryUpdate:  // {child_page, parent_page, ...}
      if (n >= 8) {
        out->push_back(DecodeFixed32(p));
        const PageId parent = DecodeFixed32(p + 4);
        if (parent != kInvalidPageId) out->push_back(parent);
      }
      return;
    case LogRecordType::kInternalEntryAdd:
    case LogRecordType::kInternalEntryUpdate:
    case LogRecordType::kInternalEntryDelete:
    case LogRecordType::kAddLeafEntry:
    case LogRecordType::kMarkLeafEntry:
    case LogRecordType::kGarbageCollection:  // all: {page, ...}
    case LogRecordType::kRightlinkUpdate:
    case LogRecordType::kHeapInsert:
    case LogRecordType::kHeapDelete:
      if (n >= 4) out->push_back(DecodeFixed32(p));
      return;
    case LogRecordType::kGetPage:
    case LogRecordType::kFreePage:  // {target_page, bitmap_page}
      if (n >= 4) {
        out->push_back(PageAllocator::BitmapPageFor(DecodeFixed32(p)));
      }
      return;
    case LogRecordType::kClr: {
      ClrPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return;
      const PageId pid = ClrTargetPage(pl);
      if (pid != kInvalidPageId) out->push_back(pid);
      return;
    }
    default:
      return;  // txn control, NTA-End, checkpoint: no page
  }
}

}  // namespace

void RecoveryManager::AttachMetrics(obs::MetricsRegistry* reg) {
  reg = obs::MetricsRegistry::OrFallback(reg);
  m_analyzed_ = reg->GetCounter("recovery.records_analyzed");
  m_redone_ = reg->GetCounter("recovery.records_redone");
  m_losers_ = reg->GetCounter("recovery.loser_txns");
  m_undone_ = reg->GetCounter("recovery.records_undone");
  m_checkpoints_ = reg->GetCounter("recovery.checkpoints");
  m_analysis_ns_ = reg->GetHistogram("recovery.analysis_ns");
  m_redo_ns_ = reg->GetHistogram("recovery.redo_ns");
  m_undo_ns_ = reg->GetHistogram("recovery.undo_ns");
  m_checkpoint_ns_ = reg->GetHistogram("recovery.checkpoint_ns");
  gate_.AttachMetrics(reg);
}

// ---------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------

StatusOr<Lsn> RecoveryManager::Checkpoint() {
  GISTCR_TRACE_SCOPE("recovery.checkpoint");
  const uint64_t t0 = obs::NowNanos();
  CheckpointPayload pl;
  for (auto& [id, last] : txns_->ActiveTxns()) {
    pl.active_txns.push_back({id, last});
  }
  // DPT = buffer-pool dirt plus any page whose instant-restart plan has
  // not been replayed yet: such a page's disk image predates its plan
  // even when no frame is dirty (it may never have been fetched), so a
  // crash mid-drain must re-plan it from this checkpoint.
  std::map<PageId, Lsn> dirty;
  for (auto& [pid, rec] : pool_->DirtyPageTable()) {
    dirty.emplace(pid, rec);
  }
  for (auto& [pid, rec] : gate_.PendingPages()) {
    auto it = dirty.find(pid);
    if (it == dirty.end()) {
      dirty.emplace(pid, rec);
    } else if (it->second == kInvalidLsn || rec < it->second) {
      it->second = rec;
    }
  }
  for (auto& [pid, rec] : dirty) {
    pl.dirty_pages.push_back({pid, rec});
  }
  pl.next_txn_id = txns_->NextTxnIdForCheckpoint();
  pl.nsn_counter = nsn_->CounterValue();
  pl.heap_tail = data_->tail();
  LogRecord rec;
  rec.type = LogRecordType::kCheckpoint;
  pl.EncodeTo(&rec.payload);
  GISTCR_RETURN_IF_ERROR(log_->Append(&rec));
  GISTCR_RETURN_IF_ERROR(log_->Flush(rec.lsn));
  m_checkpoint_ns_->Record(obs::NowNanos() - t0);
  m_checkpoints_->Add(1);
  return rec.lsn;
}

// ---------------------------------------------------------------------
// Restart
// ---------------------------------------------------------------------

Status RecoveryManager::Restart(Lsn checkpoint_lsn) {
  GISTCR_TRACE_SCOPE("recovery.restart");
  // --- Analysis ---------------------------------------------------------
  uint64_t phase_t0 = obs::NowNanos();
  std::map<TxnId, Lsn> att;  // loser candidates -> last_lsn
  Lsn redo_start = checkpoint_lsn == kInvalidLsn ? LogManager::kFirstLsn
                                                 : checkpoint_lsn;
  TxnId max_txn = 0;

  if (checkpoint_lsn != kInvalidLsn) {
    LogRecord ckpt;
    GISTCR_RETURN_IF_ERROR(log_->ReadRecord(checkpoint_lsn, &ckpt));
    if (ckpt.type != LogRecordType::kCheckpoint) {
      return Corrupt("master pointer does not reference a checkpoint");
    }
    CheckpointPayload pl;
    if (!pl.DecodeFrom(ckpt.payload)) return Corrupt("bad checkpoint");
    for (const auto& t : pl.active_txns) {
      att[t.txn_id] = t.last_lsn;
      max_txn = std::max(max_txn, t.txn_id);
    }
    for (const auto& d : pl.dirty_pages) {
      if (d.rec_lsn != kInvalidLsn) redo_start = std::min(redo_start, d.rec_lsn);
    }
    nsn_->EnsureAtLeast(pl.nsn_counter);
    max_txn = std::max(max_txn, pl.next_txn_id - 1);
  }

  Status scan_st = log_->Scan(
      checkpoint_lsn == kInvalidLsn ? LogManager::kFirstLsn : checkpoint_lsn,
      [&](const LogRecord& rec) {
        stats_.records_analyzed++;
        m_analyzed_->Add(1);
        if (rec.txn_id != kInvalidTxnId) {
          max_txn = std::max(max_txn, rec.txn_id);
          switch (rec.type) {
            case LogRecordType::kCommit:
            case LogRecordType::kEnd:
              att.erase(rec.txn_id);
              break;
            default:
              att[rec.txn_id] = rec.lsn;
              break;
          }
        }
        if (rec.type == LogRecordType::kSplit) {
          SplitPayload pl;
          if (pl.DecodeFrom(rec.payload) && pl.new_nsn != 0) {
            nsn_->EnsureAtLeast(pl.new_nsn);
          }
        }
        return true;
      });
  GISTCR_RETURN_IF_ERROR(scan_st);
  txns_->SetNextTxnId(max_txn + 1);
  m_analysis_ns_->Record(obs::NowNanos() - phase_t0);
  // ATT/DPT reconstructed, no page touched yet: a crash here makes the
  // next restart re-run analysis from the same checkpoint (idempotence).
  GISTCR_CRASHPOINT("recovery.after_analysis");

  // --- Redo --------------------------------------------------------------
  phase_t0 = obs::NowNanos();
  GISTCR_RETURN_IF_ERROR(log_->Scan(redo_start, [&](const LogRecord& rec) {
    Status st = RedoRecord(rec);
    if (!st.ok()) {
      scan_st = st;
      return false;
    }
    stats_.records_redone++;
    m_redone_->Add(1);
    return true;
  }));
  GISTCR_RETURN_IF_ERROR(scan_st);
  m_redo_ns_->Record(obs::NowNanos() - phase_t0);
  // History repeated but losers not yet rolled back; the page-LSN test
  // must make a second redo pass a no-op.
  GISTCR_CRASHPOINT("recovery.after_redo");

  // --- Undo of losers -----------------------------------------------------
  phase_t0 = obs::NowNanos();
  for (const auto& [id, last] : att) {
    stats_.loser_txns++;
    m_losers_->Add(1);
    Transaction* txn = txns_->ResurrectForUndo(id, last);
    GISTCR_RETURN_IF_ERROR(txns_->Abort(txn));
  }
  m_undo_ns_->Record(obs::NowNanos() - phase_t0);
  return Status::OK();
}

// ---------------------------------------------------------------------
// Instant restart (DESIGN.md section 16)
// ---------------------------------------------------------------------

Status RecoveryManager::StartInstant(Lsn checkpoint_lsn) {
  GISTCR_TRACE_SCOPE("recovery.start_instant");
  const uint64_t t0 = obs::NowNanos();

  // --- Analysis (log-only; no page is touched in this whole function) ---
  std::map<TxnId, Lsn> att;
  Lsn redo_start = checkpoint_lsn == kInvalidLsn ? LogManager::kFirstLsn
                                                 : checkpoint_lsn;
  TxnId max_txn = 0;
  PageId heap_tail = kInvalidPageId;

  if (checkpoint_lsn != kInvalidLsn) {
    LogRecord ckpt;
    GISTCR_RETURN_IF_ERROR(log_->ReadRecord(checkpoint_lsn, &ckpt));
    if (ckpt.type != LogRecordType::kCheckpoint) {
      return Corrupt("master pointer does not reference a checkpoint");
    }
    CheckpointPayload pl;
    if (!pl.DecodeFrom(ckpt.payload)) return Corrupt("bad checkpoint");
    for (const auto& t : pl.active_txns) {
      att[t.txn_id] = t.last_lsn;
      max_txn = std::max(max_txn, t.txn_id);
    }
    for (const auto& d : pl.dirty_pages) {
      if (d.rec_lsn != kInvalidLsn) {
        redo_start = std::min(redo_start, d.rec_lsn);
      }
    }
    nsn_->EnsureAtLeast(pl.nsn_counter);
    max_txn = std::max(max_txn, pl.next_txn_id - 1);
    heap_tail = pl.heap_tail;
  }

  // One bounded scan over [redo_start, end-of-log] builds everything at
  // once: the ATT (scanning [redo_start, checkpoint) too is harmless —
  // every transaction there either reaches its Commit/End in the scan or
  // is in the checkpoint's ATT anyway), the NSN floor, the per-page redo
  // plans, and the heap-chain links for the tail hint.
  const Lsn end_lsn = log_->last_lsn();
  // Hash-mapped plans with a last-page memo: the scan visits every record
  // in the redo span, and heap appends arrive in long same-page runs, so
  // most records hit the memo instead of the hash. (unordered_map keeps
  // references stable across inserts, so the memo survives growth.)
  std::unordered_map<PageId, std::vector<Lsn>> plans;
  plans.reserve(4096);
  std::vector<Lsn>* memo_plan = nullptr;
  PageId memo_pid = kInvalidPageId;
  std::map<PageId, PageId> heap_links;  // grow links: page -> next
  std::vector<PageId> pages_scratch;
  // Forward-collected undo footprints: every record the per-loser
  // backward walk would read inside [redo_start, end] passes through this
  // scan anyway, so gather rids / freed pages / grow links per active
  // transaction as we go (winners drop out at Commit/End) instead of
  // re-reading each loser's chain with one random log read per record.
  // CLR/NtaEnd truncation mirrors the undo_next jumps that walk takes:
  // items above undo_next are already compensated or absorbed by a
  // committed NTA, exactly the records undo will never revisit.
  struct FootItem {
    Lsn lsn;
    LogRecordType type;
    uint64_t arg;  // packed rid (leaf/heap ops) or page id (free/grow)
  };
  struct TxnFoot {
    Lsn first = kInvalidLsn;  // earliest chain record inside the span
    Lsn below = kInvalidLsn;  // chain continuation beneath the span
    std::vector<FootItem> items;
  };
  std::unordered_map<TxnId, TxnFoot> feet;
  Status scan_st = log_->ScanRange(redo_start, end_lsn, [&](
                                       const LogRecord& rec) {
    stats_.records_analyzed++;
    m_analyzed_->Add(1);
    if (rec.txn_id != kInvalidTxnId) {
      max_txn = std::max(max_txn, rec.txn_id);
      switch (rec.type) {
        case LogRecordType::kCommit:
        case LogRecordType::kEnd:
          att.erase(rec.txn_id);
          feet.erase(rec.txn_id);
          break;
        default: {
          att[rec.txn_id] = rec.lsn;
          TxnFoot& foot = feet[rec.txn_id];
          if (foot.first == kInvalidLsn) {
            foot.first = rec.lsn;
            foot.below = rec.prev_lsn;
          }
          const char* q = rec.payload.data();
          const size_t qn = rec.payload.size();
          switch (rec.type) {
            case LogRecordType::kClr:
            case LogRecordType::kNtaEnd:
              while (!foot.items.empty() &&
                     (rec.undo_next == kInvalidLsn ||
                      foot.items.back().lsn > rec.undo_next)) {
                foot.items.pop_back();
              }
              if (rec.undo_next == kInvalidLsn) {
                foot.below = kInvalidLsn;
              } else if (rec.undo_next < redo_start) {
                foot.below = rec.undo_next;
              }
              break;
            case LogRecordType::kAddLeafEntry:
            case LogRecordType::kMarkLeafEntry:
              // EntryOpPayload: page(4) nsn(8) keylen(4) key value(8) ...
              if (qn >= 16) {
                const uint32_t klen = DecodeFixed32(q + 12);
                if (qn >= 16 + static_cast<size_t>(klen) + 8) {
                  foot.items.push_back(
                      {rec.lsn, rec.type, DecodeFixed64(q + 16 + klen)});
                }
              }
              break;
            case LogRecordType::kHeapInsert:
            case LogRecordType::kHeapDelete:
              // HeapOpPayload: page(4) slot(2) ...
              if (qn >= 6) {
                Rid rid;
                rid.page_id = DecodeFixed32(q);
                rid.slot = DecodeFixed16(q + 4);
                foot.items.push_back({rec.lsn, rec.type, rid.Pack()});
              }
              break;
            case LogRecordType::kFreePage:
              if (qn >= 4) {
                foot.items.push_back(
                    {rec.lsn, rec.type, DecodeFixed32(q)});
              }
              break;
            case LogRecordType::kRightlinkUpdate:
              // Un-NtaEnd'd heap grow: undo will unlink new_rightlink.
              if (qn >= 12 && DecodeFixed32(q + 4) == kInvalidPageId) {
                foot.items.push_back(
                    {rec.lsn, rec.type, DecodeFixed32(q + 8)});
              }
              break;
            default:
              break;
          }
          break;
        }
      }
    }
    if (rec.type == LogRecordType::kSplit) {
      SplitPayload pl;
      if (pl.DecodeFrom(rec.payload) && pl.new_nsn != 0) {
        nsn_->EnsureAtLeast(pl.new_nsn);
      }
    } else if (rec.type == LogRecordType::kRightlinkUpdate) {
      // Heap-chain growth always logs old_rightlink == invalid (the tail
      // never had a successor); GiST sibling rewires never do.
      RightlinkUpdatePayload pl;
      if (pl.DecodeFrom(rec.payload) &&
          pl.old_rightlink == kInvalidPageId) {
        heap_links[pl.page] = pl.new_rightlink;
      }
    } else if (rec.type == LogRecordType::kClr) {
      // A previous crashed recovery may already have retracted a grow.
      ClrPayload clr;
      RightlinkUpdatePayload pl;
      if (clr.DecodeFrom(rec.payload) &&
          clr.compensated_type == LogRecordType::kRightlinkUpdate &&
          pl.DecodeFrom(clr.original)) {
        auto it = heap_links.find(pl.page);
        if (it != heap_links.end() && it->second == pl.new_rightlink) {
          heap_links.erase(it);
        }
      }
    }
    pages_scratch.clear();
    PagesOfRecord(rec, &pages_scratch);
    for (PageId pid : pages_scratch) {
      if (pid != memo_pid) {
        memo_plan = &plans[pid];
        memo_pid = pid;
      }
      memo_plan->push_back(rec.lsn);
    }
    return true;
  });
  GISTCR_RETURN_IF_ERROR(scan_st);
  txns_->SetNextTxnId(max_txn + 1);
  GISTCR_CRASHPOINT("recovery.after_analysis");

  // --- Losers: locks, quarantine, doomed chain links ---------------------
  // Re-acquire each loser's lock footprint before the database opens —
  // its uncommitted effects stay blocking for new transactions exactly as
  // live 2PL had them — and find what its undo will retract: pages it
  // freed (quarantined until the bits are re-set) and heap-chain links it
  // will unlink (the data store must not adopt those pages as its tail).
  // The span-resident part of every chain was collected by the forward
  // scan; only a chain segment that began before redo_start still needs
  // the backward walk (the same undo_next jumps Abort will take).
  losers_.clear();
  doomed_heap_.clear();
  std::vector<PageId> quarantine;
  for (const auto& [id, last] : att) {
    stats_.loser_txns++;
    m_losers_->Add(1);
    Lsn first = last;
    std::vector<uint64_t> rids;
    Lsn cur = last;
    auto fit = feet.find(id);
    if (fit != feet.end()) {
      const TxnFoot& foot = fit->second;
      first = foot.first;
      for (const FootItem& item : foot.items) {
        switch (item.type) {
          case LogRecordType::kAddLeafEntry:
          case LogRecordType::kMarkLeafEntry:
          case LogRecordType::kHeapInsert:
          case LogRecordType::kHeapDelete:
            rids.push_back(item.arg);
            break;
          case LogRecordType::kFreePage:
            quarantine.push_back(static_cast<PageId>(item.arg));
            break;
          case LogRecordType::kRightlinkUpdate:
            doomed_heap_.push_back(static_cast<PageId>(item.arg));
            break;
          default:
            break;
        }
      }
      cur = foot.below;
    }
    while (cur != kInvalidLsn) {
      LogRecord rec;
      GISTCR_RETURN_IF_ERROR(log_->ReadRecord(cur, &rec));
      first = rec.lsn;
      switch (rec.type) {
        case LogRecordType::kClr:
        case LogRecordType::kNtaEnd:
          cur = rec.undo_next;
          continue;
        case LogRecordType::kBegin:
          cur = kInvalidLsn;
          continue;
        case LogRecordType::kAddLeafEntry:
        case LogRecordType::kMarkLeafEntry: {
          EntryOpPayload pl;
          if (pl.DecodeFrom(rec.payload)) rids.push_back(pl.entry.value);
          break;
        }
        case LogRecordType::kHeapInsert:
        case LogRecordType::kHeapDelete: {
          HeapOpPayload pl;
          if (pl.DecodeFrom(rec.payload)) {
            Rid rid;
            rid.page_id = pl.page;
            rid.slot = pl.slot;
            rids.push_back(rid.Pack());
          }
          break;
        }
        case LogRecordType::kFreePage: {
          PageAllocPayload pl;
          if (pl.DecodeFrom(rec.payload)) {
            quarantine.push_back(pl.target_page);
          }
          break;
        }
        case LogRecordType::kRightlinkUpdate: {
          RightlinkUpdatePayload pl;
          if (pl.DecodeFrom(rec.payload) &&
              pl.old_rightlink == kInvalidPageId) {
            // Un-NtaEnd'd heap grow: undo will unlink this page.
            doomed_heap_.push_back(pl.new_rightlink);
          }
          break;
        }
        default:
          break;
      }
      cur = rec.prev_lsn;
    }
    GISTCR_RETURN_IF_ERROR(txns_->locks()->Lock(
        id, LockName{LockSpace::kTxn, id}, LockMode::kExclusive));
    for (uint64_t rid : rids) {
      GISTCR_RETURN_IF_ERROR(txns_->locks()->Lock(
          id, LockName{LockSpace::kRecord, rid}, LockMode::kExclusive));
    }
    Transaction* txn = txns_->ResurrectForUndo(id, last);
    txn->set_first_lsn(first);
    losers_.push_back(txn);
  }
  alloc_->SetQuarantine(std::move(quarantine));
  txns_->SetRecoveryUndoActive(true);

  // --- Heap tail hint: follow the grow links from the checkpoint's tail,
  // stopping short of any link the pending undo will retract.
  heap_tail_hint_ = heap_tail;
  if (heap_tail_hint_ != kInvalidPageId) {
    size_t hops = 0;
    for (;;) {
      auto it = heap_links.find(heap_tail_hint_);
      if (it == heap_links.end()) break;
      if (std::find(doomed_heap_.begin(), doomed_heap_.end(), it->second) !=
          doomed_heap_.end()) {
        break;
      }
      heap_tail_hint_ = it->second;
      if (++hops > heap_links.size()) {
        return Corrupt("heap link cycle in analysis");
      }
    }
  }

  // --- Arm the gate: the database opens for business now. ----------------
  gate_.Arm(std::move(plans),
            [this](PageId pid, const std::vector<Lsn>& plan) {
              return ReplayPagePlan(pid, plan);
            });
  pool_->SetRecoveryHook(
      [this](PageId pid) {
        return gate_.EnsureRecovered(pid, /*inline_caller=*/true);
      },
      [this](PageId pid) { gate_.CancelPage(pid); });
  pool_->ArmRecoveryHook();
  m_analysis_ns_->Record(obs::NowNanos() - t0);
  return Status::OK();
}

Status RecoveryManager::RunInstantBackground(const std::atomic<bool>& stop) {
  GISTCR_TRACE_SCOPE("recovery.instant_background");
  // --- Undo of losers: ordinary aborting transactions through the normal
  // lock/latch protocol, concurrent with new work.
  uint64_t phase_t0 = obs::NowNanos();
  Status st;
  std::vector<Transaction*> losers;
  losers.swap(losers_);
  for (Transaction* txn : losers) {
    if (stop.load(std::memory_order_acquire)) {
      return Status::Aborted("recovery interrupted");
    }
    st = FaultInjector::Global().CheckCrashPoint("instant.undo");
    if (st.ok()) st = txns_->Abort(txn);
    if (!st.ok()) return st;  // stay armed: losers keep their locks
  }
  // Loser effects are fully retracted: freed pages may circulate again
  // and snapshot reads no longer risk seeing un-retracted versions.
  alloc_->ClearQuarantine();
  txns_->SetRecoveryUndoActive(false);
  m_undo_ns_->Record(obs::NowNanos() - phase_t0);

  // --- Drain: replay still-pending pages oldest-recLSN first, so the
  // log-reclaim floor rises steadily even if nothing touches them.
  phase_t0 = obs::NowNanos();
  for (PageId pid : gate_.PendingInOrder()) {
    if (stop.load(std::memory_order_acquire)) {
      return Status::Aborted("recovery interrupted");
    }
    GISTCR_RETURN_IF_ERROR(
        gate_.EnsureRecovered(pid, /*inline_caller=*/false));
  }
  m_redo_ns_->Record(obs::NowNanos() - phase_t0);

  pool_->DisarmRecoveryHook();
  gate_.Disarm();
  return Status::OK();
}

Status RecoveryManager::ReplayPagePlan(PageId pid,
                                       const std::vector<Lsn>& plan) {
  GISTCR_TRACE_SCOPE("recovery.replay_page");
  // Hoisted page-LSN test: everything at or below the on-disk page LSN
  // already reached this page before the crash, and RedoRecordScoped
  // would skip it after reading the record. Skipping here instead saves
  // one log read per pre-flushed record — for hot pages (root, bitmap)
  // the plan spans the whole redo interval but the page was written back
  // moments before the crash, so nearly all of it prunes away. A fresh
  // or never-flushed page reads page_lsn 0 and keeps its full plan.
  Lsn page_lsn = 0;
  {
    PageGuard g;
    GISTCR_RETURN_IF_ERROR(FetchX(pool_, pid, &g));
    page_lsn = g.view().page_lsn();
  }
  auto it = std::upper_bound(plan.begin(), plan.end(), page_lsn);
  for (; it != plan.end(); ++it) {
    LogRecord rec;
    GISTCR_RETURN_IF_ERROR(log_->ReadRecord(*it, &rec));
    GISTCR_RETURN_IF_ERROR(RedoRecordScoped(rec, pid));
    stats_.records_redone++;
    m_redone_->Add(1);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// Redo (page-oriented, page-LSN test)
// ---------------------------------------------------------------------

Status RecoveryManager::RedoRecord(const LogRecord& rec) {
  return RedoRecordScoped(rec, kInvalidPageId);
}

Status RecoveryManager::RedoRecordScoped(const LogRecord& rec, PageId only) {
  const Lsn lsn = rec.lsn;
  switch (rec.type) {
    case LogRecordType::kSplit: {
      SplitPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("split payload");
      const Nsn new_nsn = pl.new_nsn != 0 ? pl.new_nsn : lsn;
      if (only == kInvalidPageId || only == pl.orig_page) {
        PageGuard g;
        GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.orig_page, &g));
        if (g.view().page_lsn() < lsn) {
          NodeView node(g.view().data());
          for (const IndexEntry& m : pl.moved) {
            const int idx = node.FindByKeyValue(m.key, m.value);
            if (idx < 0) return Corrupt("split redo: moved entry missing");
            node.RemoveEntry(static_cast<uint16_t>(idx));
          }
          GISTCR_RETURN_IF_ERROR(node.SetBp(pl.orig_bp_after));
          node.set_nsn(new_nsn);
          node.set_rightlink(pl.new_page);
          Stamp(&g, lsn);
        }
      }
      if (only == kInvalidPageId || only == pl.new_page) {
        PageGuard g;
        GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.new_page, &g));
        if (g.view().page_lsn() < lsn) {
          NodeView node(g.view().data());
          node.Init(pl.new_page, pl.level);
          for (const IndexEntry& m : pl.moved) {
            GISTCR_RETURN_IF_ERROR(node.InsertEntry(m));
          }
          GISTCR_RETURN_IF_ERROR(node.SetBp(pl.new_bp));
          node.set_nsn(pl.old_nsn);
          node.set_rightlink(pl.old_rightlink);
          Stamp(&g, lsn);
        }
      }
      return Status::OK();
    }
    case LogRecordType::kRootChange: {
      RootChangePayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("rootchange payload");
      if (only == kInvalidPageId || only == pl.new_root) {
        PageGuard g;
        GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.new_root, &g));
        if (g.view().page_lsn() < lsn) {
          NodeView node(g.view().data());
          node.Init(pl.new_root, pl.new_root_level);
          for (const IndexEntry& e : pl.root_entries) {
            GISTCR_RETURN_IF_ERROR(node.InsertEntry(e));
          }
          GISTCR_RETURN_IF_ERROR(node.SetBp(pl.root_bp));
          Stamp(&g, lsn);
        }
      }
      if (only == kInvalidPageId || only == pl.meta_page) {
        PageGuard g;
        GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.meta_page, &g));
        if (g.view().page_lsn() < lsn) {
          MetaView meta(g.view().data());
          meta.SetRoot(pl.index_id, pl.new_root);
          Stamp(&g, lsn);
        }
      }
      return Status::OK();
    }
    case LogRecordType::kParentEntryUpdate: {
      ParentEntryUpdatePayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("peu payload");
      if (only == kInvalidPageId || only == pl.child_page) {
        PageGuard g;
        GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.child_page, &g));
        if (g.view().page_lsn() < lsn) {
          NodeView node(g.view().data());
          GISTCR_RETURN_IF_ERROR(node.SetBp(pl.new_bp));
          Stamp(&g, lsn);
        }
      }
      if (pl.parent_page != kInvalidPageId &&
          (only == kInvalidPageId || only == pl.parent_page)) {
        PageGuard g;
        GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.parent_page, &g));
        if (g.view().page_lsn() < lsn) {
          NodeView node(g.view().data());
          const int idx = node.FindByValue(pl.child_value);
          if (idx < 0) return Corrupt("peu redo: entry missing");
          GISTCR_RETURN_IF_ERROR(
              node.SetEntryKey(static_cast<uint16_t>(idx), pl.new_bp));
          Stamp(&g, lsn);
        }
      }
      return Status::OK();
    }
    case LogRecordType::kInternalEntryAdd:
    case LogRecordType::kInternalEntryUpdate:
    case LogRecordType::kInternalEntryDelete: {
      EntryOpPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("entryop payload");
      if (only != kInvalidPageId && only != pl.page) return Status::OK();
      PageGuard g;
      GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.page, &g));
      if (g.view().page_lsn() >= lsn) return Status::OK();
      NodeView node(g.view().data());
      if (rec.type == LogRecordType::kInternalEntryAdd) {
        GISTCR_RETURN_IF_ERROR(node.InsertEntry(pl.entry));
      } else if (rec.type == LogRecordType::kInternalEntryUpdate) {
        const int idx = node.FindByValue(pl.entry.value);
        if (idx < 0) return Corrupt("ieu redo: entry missing");
        GISTCR_RETURN_IF_ERROR(
            node.SetEntryKey(static_cast<uint16_t>(idx), pl.entry.key));
      } else {
        const int idx = node.FindByValue(pl.entry.value);
        if (idx < 0) return Corrupt("ied redo: entry missing");
        node.RemoveEntry(static_cast<uint16_t>(idx));
      }
      Stamp(&g, lsn);
      return Status::OK();
    }
    case LogRecordType::kAddLeafEntry: {
      EntryOpPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("addleaf payload");
      if (only != kInvalidPageId && only != pl.page) return Status::OK();
      PageGuard g;
      GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.page, &g));
      if (g.view().page_lsn() >= lsn) return Status::OK();
      NodeView node(g.view().data());
      GISTCR_RETURN_IF_ERROR(node.InsertEntry(pl.entry));
      Stamp(&g, lsn);
      return Status::OK();
    }
    case LogRecordType::kMarkLeafEntry: {
      EntryOpPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("markleaf payload");
      if (only != kInvalidPageId && only != pl.page) return Status::OK();
      PageGuard g;
      GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.page, &g));
      if (g.view().page_lsn() >= lsn) return Status::OK();
      NodeView node(g.view().data());
      const int idx = node.FindByKeyValue(pl.entry.key, pl.entry.value);
      if (idx < 0) return Corrupt("markleaf redo: entry missing");
      node.set_entry_del_txn(static_cast<uint16_t>(idx), rec.txn_id);
      Stamp(&g, lsn);
      return Status::OK();
    }
    case LogRecordType::kGarbageCollection: {
      GarbageCollectionPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("gc payload");
      if (only != kInvalidPageId && only != pl.page) return Status::OK();
      PageGuard g;
      GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.page, &g));
      if (g.view().page_lsn() >= lsn) return Status::OK();
      NodeView node(g.view().data());
      for (const IndexEntry& e : pl.removed) {
        const int idx = node.FindByKeyValue(e.key, e.value);
        if (idx < 0) return Corrupt("gc redo: entry missing");
        node.RemoveEntry(static_cast<uint16_t>(idx));
      }
      Stamp(&g, lsn);
      return Status::OK();
    }
    case LogRecordType::kGetPage:
    case LogRecordType::kFreePage: {
      PageAllocPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("alloc payload");
      if (only != kInvalidPageId &&
          only != PageAllocator::BitmapPageFor(pl.target_page)) {
        return Status::OK();
      }
      return alloc_->ApplyBit(pl.target_page,
                              rec.type == LogRecordType::kGetPage, lsn,
                              /*check_page_lsn=*/true);
    }
    case LogRecordType::kRightlinkUpdate: {
      RightlinkUpdatePayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("rightlink payload");
      if (only != kInvalidPageId && only != pl.page) return Status::OK();
      PageGuard g;
      GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.page, &g));
      if (g.view().page_lsn() >= lsn) return Status::OK();
      if (g.view().page_type() == PageType::kHeap) {
        HeapPageView(g.view().data()).set_next(pl.new_rightlink);
      } else if (g.view().page_type() == PageType::kGistNode) {
        NodeView(g.view().data()).set_rightlink(pl.new_rightlink);
      } else {
        return Corrupt("rightlink redo: unexpected page type");
      }
      Stamp(&g, lsn);
      return Status::OK();
    }
    case LogRecordType::kHeapInsert: {
      HeapOpPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("heap payload");
      if (only != kInvalidPageId && only != pl.page) return Status::OK();
      return data_->ApplyInsert(pl.page, pl.slot, pl.record, lsn, true);
    }
    case LogRecordType::kHeapDelete: {
      HeapOpPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("heap payload");
      if (only != kInvalidPageId && only != pl.page) return Status::OK();
      return data_->ApplyDeleteMark(pl.page, pl.slot, true, lsn, true);
    }
    case LogRecordType::kClr: {
      ClrPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("clr payload");
      if (only != kInvalidPageId && only != ClrTargetPage(pl)) {
        return Status::OK();
      }
      return RedoClrAction(pl.compensated_type, pl.original,
                           pl.override_page, lsn);
    }
    default:
      return Status::OK();  // txn control, NTA-End, checkpoint: no page
  }
}

// ---------------------------------------------------------------------
// Undo (Table 1 right column); shared by live rollback and restart
// ---------------------------------------------------------------------

Status RecoveryManager::ApplyRemoveLeafEntry(PageId page,
                                             const EntryOpPayload& pl,
                                             Lsn lsn, bool check_lsn) {
  PageId pid = page;
  for (int guard = 0; guard < 1 << 20; guard++) {
    PageGuard g;
    GISTCR_RETURN_IF_ERROR(FetchX(pool_, pid, &g));
    if (check_lsn && g.view().page_lsn() >= lsn) return Status::OK();
    NodeView node(g.view().data());
    const int idx = node.FindByKeyValue(pl.entry.key, pl.entry.value);
    if (idx >= 0) {
      node.RemoveEntry(static_cast<uint16_t>(idx));
      Stamp(&g, lsn);
      return Status::OK();
    }
    // The entry migrated right between locate and apply (live rollback
    // under concurrency); keep chasing.
    if (node.nsn() <= pl.nsn || node.rightlink() == kInvalidPageId) {
      return Corrupt("undo add-leaf: entry not found");
    }
    pid = node.rightlink();
  }
  return Corrupt("undo add-leaf: rightlink cycle");
}

Status RecoveryManager::ApplyUnmarkLeafEntry(PageId page,
                                             const EntryOpPayload& pl,
                                             Lsn lsn, bool check_lsn) {
  PageId pid = page;
  for (int guard = 0; guard < 1 << 20; guard++) {
    PageGuard g;
    GISTCR_RETURN_IF_ERROR(FetchX(pool_, pid, &g));
    if (check_lsn && g.view().page_lsn() >= lsn) return Status::OK();
    NodeView node(g.view().data());
    const int idx = node.FindByKeyValue(pl.entry.key, pl.entry.value);
    if (idx >= 0) {
      node.set_entry_del_txn(static_cast<uint16_t>(idx), kInvalidTxnId);
      Stamp(&g, lsn);
      return Status::OK();
    }
    if (node.nsn() <= pl.nsn || node.rightlink() == kInvalidPageId) {
      return Corrupt("undo mark-leaf: entry not found");
    }
    pid = node.rightlink();
  }
  return Corrupt("undo mark-leaf: rightlink cycle");
}

Status RecoveryManager::ApplyUndoSplit(const SplitPayload& pl, Lsn lsn,
                                       bool check_lsn) {
  PageGuard g;
  GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.orig_page, &g));
  if (check_lsn && g.view().page_lsn() >= lsn) return Status::OK();
  NodeView node(g.view().data());
  for (const IndexEntry& m : pl.moved) {
    GISTCR_RETURN_IF_ERROR(node.InsertEntry(m));
  }
  GISTCR_RETURN_IF_ERROR(node.SetBp(pl.orig_bp_before));
  node.set_nsn(pl.old_nsn);
  node.set_rightlink(pl.old_rightlink);
  Stamp(&g, lsn);
  // New page: "no action necessary" (Table 1) — the preceding Get-Page's
  // undo returns it to the allocator.
  return Status::OK();
}

Status RecoveryManager::ApplyUndoInternal(LogRecordType t,
                                          const EntryOpPayload& pl, Lsn lsn,
                                          bool check_lsn) {
  PageGuard g;
  GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.page, &g));
  if (check_lsn && g.view().page_lsn() >= lsn) return Status::OK();
  NodeView node(g.view().data());
  if (t == LogRecordType::kInternalEntryAdd) {
    const int idx = node.FindByValue(pl.entry.value);
    if (idx < 0) return Corrupt("undo iea: entry missing");
    node.RemoveEntry(static_cast<uint16_t>(idx));
  } else if (t == LogRecordType::kInternalEntryUpdate) {
    const int idx = node.FindByValue(pl.entry.value);
    if (idx < 0) return Corrupt("undo ieu: entry missing");
    GISTCR_RETURN_IF_ERROR(
        node.SetEntryKey(static_cast<uint16_t>(idx), pl.old_bp));
  } else {  // kInternalEntryDelete
    GISTCR_RETURN_IF_ERROR(node.InsertEntry(pl.entry));
  }
  Stamp(&g, lsn);
  return Status::OK();
}

Status RecoveryManager::ApplyUndoRightlink(const RightlinkUpdatePayload& pl,
                                           Lsn lsn, bool check_lsn) {
  PageGuard g;
  GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.page, &g));
  if (check_lsn && g.view().page_lsn() >= lsn) return Status::OK();
  // Retract only the link this record installed. Under instant restart a
  // regrow can overwrite a doomed link before the loser's undo reaches it
  // (DataStore::Open stops the chain short of a doomed page, so a
  // concurrent Insert re-grows over it); blindly restoring old_rightlink
  // would then unlink the *live* regrown page. The comparison is
  // deterministic under per-page LSN-ordered replay, so CLR redo takes the
  // same branch. Stamp regardless: the page-LSN must advance past every
  // record whose effect (possibly a no-op) is accounted for.
  if (g.view().page_type() == PageType::kHeap) {
    HeapPageView hv(g.view().data());
    if (hv.next() == pl.new_rightlink) hv.set_next(pl.old_rightlink);
  } else if (g.view().page_type() == PageType::kGistNode) {
    NodeView node(g.view().data());
    if (node.rightlink() == pl.new_rightlink) {
      node.set_rightlink(pl.old_rightlink);
    }
  } else {
    return Corrupt("undo rightlink: unexpected page type");
  }
  Stamp(&g, lsn);
  return Status::OK();
}

Status RecoveryManager::ApplyUndoRootChange(const RootChangePayload& pl,
                                            Lsn lsn, bool check_lsn) {
  PageGuard g;
  GISTCR_RETURN_IF_ERROR(FetchX(pool_, pl.meta_page, &g));
  if (check_lsn && g.view().page_lsn() >= lsn) return Status::OK();
  MetaView meta(g.view().data());
  meta.SetRoot(pl.index_id, pl.old_root);
  Stamp(&g, lsn);
  return Status::OK();
}

Status RecoveryManager::RedoClrAction(LogRecordType t, Slice original,
                                      PageId override_page, Lsn lsn) {
  switch (t) {
    case LogRecordType::kAddLeafEntry: {
      EntryOpPayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr addleaf payload");
      const PageId page =
          override_page != kInvalidPageId ? override_page : pl.page;
      return ApplyRemoveLeafEntry(page, pl, lsn, /*check_lsn=*/true);
    }
    case LogRecordType::kMarkLeafEntry: {
      EntryOpPayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr markleaf payload");
      const PageId page =
          override_page != kInvalidPageId ? override_page : pl.page;
      return ApplyUnmarkLeafEntry(page, pl, lsn, /*check_lsn=*/true);
    }
    case LogRecordType::kSplit: {
      SplitPayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr split payload");
      return ApplyUndoSplit(pl, lsn, true);
    }
    case LogRecordType::kInternalEntryAdd:
    case LogRecordType::kInternalEntryUpdate:
    case LogRecordType::kInternalEntryDelete: {
      EntryOpPayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr entryop payload");
      return ApplyUndoInternal(t, pl, lsn, true);
    }
    case LogRecordType::kGetPage:
    case LogRecordType::kFreePage: {
      PageAllocPayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr alloc payload");
      return alloc_->ApplyBit(pl.target_page,
                              t == LogRecordType::kFreePage, lsn, true);
    }
    case LogRecordType::kRightlinkUpdate: {
      RightlinkUpdatePayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr rightlink payload");
      return ApplyUndoRightlink(pl, lsn, true);
    }
    case LogRecordType::kRootChange: {
      RootChangePayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr rootchange payload");
      return ApplyUndoRootChange(pl, lsn, true);
    }
    case LogRecordType::kHeapInsert: {
      HeapOpPayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr heap payload");
      return data_->ApplyDeleteMark(pl.page, pl.slot, true, lsn, true);
    }
    case LogRecordType::kHeapDelete: {
      HeapOpPayload pl;
      if (!pl.DecodeFrom(original)) return Corrupt("clr heap payload");
      return data_->ApplyDeleteMark(pl.page, pl.slot, false, lsn, true);
    }
    default:
      return Corrupt("clr: uncompensatable type");
  }
}

Status RecoveryManager::UndoRecord(Transaction* txn, const LogRecord& rec) {
  // Fires once per record rolled back — crash-during-undo coverage (the
  // CLR chain must let a second restart skip already-compensated work).
  GISTCR_CRASHPOINT("recovery.mid_undo");
  // Redo-only records (Table 1): nothing to undo, no CLR.
  if (rec.type == LogRecordType::kParentEntryUpdate ||
      rec.type == LogRecordType::kGarbageCollection) {
    return Status::OK();
  }
  stats_.records_undone++;
  m_undone_->Add(1);

  ClrPayload clr;
  clr.compensated_type = rec.type;
  clr.override_page = kInvalidPageId;
  clr.original = rec.payload;

  // Logical undo of leaf content: chase the NSN-guided rightlink chain
  // under X latches until the entry's current leaf is found, then append
  // the CLR *while still holding that latch* before mutating. Logging
  // under the latch pins override_page to exactly where the entry is at
  // the CLR's LSN — instant restart relies on that to attribute the CLR's
  // redo to a single page plan (the entry cannot migrate between locate
  // and log, unlike the old locate-log-apply sequence).
  //
  // Page first, version record second: while the aborted entry is still
  // on the leaf its pending version record must exist, or a concurrent
  // snapshot scan finds no chain, treats the entry as ancient and emits
  // the dirty insert. Once the entry is off the page (latch dropped,
  // frame version bumped) the record is unreachable and safe to retract.
  if (rec.type == LogRecordType::kAddLeafEntry ||
      rec.type == LogRecordType::kMarkLeafEntry) {
    EntryOpPayload pl;
    if (!pl.DecodeFrom(rec.payload)) return Corrupt("undo payload");
    PageId pid = pl.page;
    for (int guard = 0; guard < 1 << 20; guard++) {
      PageGuard g;
      GISTCR_RETURN_IF_ERROR(FetchX(pool_, pid, &g));
      if (g.view().page_type() != PageType::kGistNode) {
        return Corrupt("logical undo: lost leaf chain");
      }
      NodeView node(g.view().data());
      const int idx = node.FindByKeyValue(pl.entry.key, pl.entry.value);
      if (idx < 0) {
        if (node.nsn() <= pl.nsn || node.rightlink() == kInvalidPageId) {
          return Corrupt("logical undo: entry not found");
        }
        pid = node.rightlink();
        continue;
      }
      clr.override_page = pid;
      LogRecord crec;
      crec.type = LogRecordType::kClr;
      crec.undo_next = rec.prev_lsn;
      clr.EncodeTo(&crec.payload);
      GISTCR_RETURN_IF_ERROR(txns_->AppendTxnLog(txn, &crec));
      if (rec.type == LogRecordType::kAddLeafEntry) {
        node.RemoveEntry(static_cast<uint16_t>(idx));
      } else {
        node.set_entry_del_txn(static_cast<uint16_t>(idx), kInvalidTxnId);
      }
      Stamp(&g, crec.lsn);
      g.Drop();
      if (mvcc_ != nullptr) {
        if (rec.type == LogRecordType::kAddLeafEntry) {
          mvcc_->UndoInsert(pl.entry.value, rec.txn_id);
        } else {
          mvcc_->UndoDelete(pl.entry.value, rec.txn_id);
        }
      }
      return Status::OK();
    }
    return Corrupt("logical undo: rightlink cycle");
  }

  LogRecord crec;
  crec.type = LogRecordType::kClr;
  crec.undo_next = rec.prev_lsn;
  clr.EncodeTo(&crec.payload);
  GISTCR_RETURN_IF_ERROR(txns_->AppendTxnLog(txn, &crec));

  // Apply the undo action physically (no page-LSN test on the forward
  // path; the pages are current).
  switch (rec.type) {
    case LogRecordType::kSplit: {
      SplitPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("undo split payload");
      return ApplyUndoSplit(pl, crec.lsn, false);
    }
    case LogRecordType::kInternalEntryAdd:
    case LogRecordType::kInternalEntryUpdate:
    case LogRecordType::kInternalEntryDelete: {
      EntryOpPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("undo entry payload");
      return ApplyUndoInternal(rec.type, pl, crec.lsn, false);
    }
    case LogRecordType::kGetPage:
    case LogRecordType::kFreePage: {
      PageAllocPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("undo alloc payload");
      return alloc_->ApplyBit(pl.target_page,
                              rec.type == LogRecordType::kFreePage, crec.lsn,
                              false);
    }
    case LogRecordType::kRightlinkUpdate: {
      RightlinkUpdatePayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("undo rl payload");
      return ApplyUndoRightlink(pl, crec.lsn, false);
    }
    case LogRecordType::kRootChange: {
      RootChangePayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("undo root payload");
      return ApplyUndoRootChange(pl, crec.lsn, false);
    }
    case LogRecordType::kHeapInsert: {
      HeapOpPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("undo heap payload");
      return data_->ApplyDeleteMark(pl.page, pl.slot, true, crec.lsn, false);
    }
    case LogRecordType::kHeapDelete: {
      HeapOpPayload pl;
      if (!pl.DecodeFrom(rec.payload)) return Corrupt("undo heap payload");
      return data_->ApplyDeleteMark(pl.page, pl.slot, false, crec.lsn, false);
    }
    default:
      return Status::OK();
  }
}

}  // namespace gistcr
