#include "recovery/recovery_gate.h"

#include <algorithm>

#include "storage/fault_injector.h"

namespace gistcr {

void RecoveryGate::AttachMetrics(obs::MetricsRegistry* reg) {
  reg = obs::MetricsRegistry::OrFallback(reg);
  m_inline_ = reg->GetCounter("recovery.inline_redos");
  m_background_ = reg->GetCounter("recovery.background_redos");
  m_pending_ = reg->GetGauge("recovery.pages_pending");
}

void RecoveryGate::Arm(
    std::unordered_map<PageId, std::vector<Lsn>> plans, ReplayFn replay) {
  MutexLock l(mu_);
  GISTCR_CHECK(!armed_.load(std::memory_order_relaxed));
  pages_.clear();
  for (auto& [pid, plan] : plans) {
    if (plan.empty()) continue;
    PageEntry e;
    e.plan = std::move(plan);
    pages_.emplace(pid, std::move(e));
  }
  replay_ = std::move(replay);
  if (m_pending_ != nullptr) {
    m_pending_->Set(static_cast<double>(pages_.size()));
  }
  armed_.store(true, std::memory_order_release);
}

void RecoveryGate::Disarm() {
  MutexLock l(mu_);
  armed_.store(false, std::memory_order_release);
  pages_.clear();
  replay_ = nullptr;
  if (m_pending_ != nullptr) m_pending_->Set(0);
  cv_.NotifyAll();
}

Status RecoveryGate::EnsureRecovered(PageId pid, bool inline_caller) {
  if (!armed()) return Status::OK();
  std::vector<Lsn> plan;
  {
    MutexLock l(mu_);
    for (;;) {
      if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
      auto it = pages_.find(pid);
      if (it == pages_.end()) return Status::OK();
      if (it->second.state == PageRecoveryState::kRedoing) {
        if (it->second.owner == std::this_thread::get_id()) {
          // Re-entrant fetch from inside this page's own replay (redo
          // appliers fetch the page they are redoing): the plan is being
          // applied right now, proceed.
          return Status::OK();
        }
        cv_.Wait(mu_);
        continue;
      }
      it->second.state = PageRecoveryState::kRedoing;
      it->second.owner = std::this_thread::get_id();
      plan = it->second.plan;
      break;
    }
  }
  // Claimed. Replay without the gate mutex: the plan may fetch other
  // pending pages (rightlink chases, bitmap pages), recursing through the
  // gate for them.
  Status st =
      inline_caller
          ? FaultInjector::Global().CheckCrashPoint("instant.inline_redo")
          : FaultInjector::Global().CheckCrashPoint("instant.bg_drain");
  if (st.ok()) st = replay_(pid, plan);
  {
    MutexLock l(mu_);
    auto it = pages_.find(pid);
    if (it != pages_.end()) {
      if (st.ok()) {
        pages_.erase(it);
      } else {
        // Leave the page pending: the next touch (or the drainer) retries.
        it->second.state = PageRecoveryState::kNeedsRedo;
        it->second.owner = std::thread::id();
      }
    }
    if (m_pending_ != nullptr) {
      m_pending_->Set(static_cast<double>(pages_.size()));
    }
    cv_.NotifyAll();
  }
  if (st.ok()) {
    (inline_caller ? m_inline_ : m_background_)->Add(1);
  }
  return st;
}

void RecoveryGate::CancelPage(PageId pid) {
  if (!armed()) return;
  MutexLock l(mu_);
  for (;;) {
    if (!armed_.load(std::memory_order_relaxed)) return;
    auto it = pages_.find(pid);
    if (it == pages_.end()) return;
    if (it->second.state == PageRecoveryState::kRedoing &&
        it->second.owner != std::this_thread::get_id()) {
      cv_.Wait(mu_);
      continue;
    }
    pages_.erase(it);
    if (m_pending_ != nullptr) {
      m_pending_->Set(static_cast<double>(pages_.size()));
    }
    cv_.NotifyAll();
    return;
  }
}

std::vector<PageId> RecoveryGate::PendingInOrder() {
  std::vector<std::pair<Lsn, PageId>> order;
  {
    MutexLock l(mu_);
    order.reserve(pages_.size());
    for (const auto& [pid, e] : pages_) {
      order.emplace_back(e.plan.front(), pid);
    }
  }
  std::sort(order.begin(), order.end());
  std::vector<PageId> out;
  out.reserve(order.size());
  for (const auto& [lsn, pid] : order) out.push_back(pid);
  return out;
}

std::vector<std::pair<PageId, Lsn>> RecoveryGate::PendingPages() {
  MutexLock l(mu_);
  std::vector<std::pair<PageId, Lsn>> out;
  out.reserve(pages_.size());
  for (const auto& [pid, e] : pages_) {
    out.emplace_back(pid, e.plan.front());
  }
  return out;
}

Lsn RecoveryGate::PendingMinRecLsn() {
  MutexLock l(mu_);
  Lsn min = kInvalidLsn;
  for (const auto& [pid, e] : pages_) {
    if (min == kInvalidLsn || e.plan.front() < min) min = e.plan.front();
  }
  return min;
}

size_t RecoveryGate::pending_count() {
  MutexLock l(mu_);
  return pages_.size();
}

}  // namespace gistcr
