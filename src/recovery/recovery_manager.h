#ifndef GISTCR_RECOVERY_RECOVERY_MANAGER_H_
#define GISTCR_RECOVERY_RECOVERY_MANAGER_H_

#include <atomic>
#include <map>
#include <vector>

#include "db/data_store.h"
#include "db/page_allocator.h"
#include "gist/nsn.h"
#include "recovery/recovery_gate.h"
#include "storage/buffer_pool.h"
#include "txn/transaction_manager.h"
#include "util/status.h"
#include "wal/log_manager.h"
#include "wal/log_payloads.h"

namespace gistcr {

/// ARIES-style restart recovery (paper section 9): analysis over the log
/// tail, page-oriented redo with the page-LSN test, and undo of loser
/// transactions. Structure modifications were logged as nested top actions,
/// so completed ones survive loser rollback (their NTA-End records jump the
/// undo backchain over them) while half-done ones are rolled back
/// physically via the Table 1 undo actions.
///
/// Content changes (Add-Leaf-Entry / Mark-Leaf-Entry) are undone
/// *logically*: the leaf is relocated by rightlink traversal guided by the
/// logged NSN, because the tree may have been restructured since (section
/// 9.2). The undo machinery is shared with live transaction rollback: this
/// class is the TransactionManager's UndoApplier.
///
/// Two restart modes (DESIGN.md section 16):
///  - Restart(): the classic offline sequence — analysis, full redo, full
///    undo — with the database closed throughout.
///  - StartInstant() + RunInstantBackground(): analysis builds a per-page
///    redo *plan* and re-acquires the losers' locks, then the database
///    opens immediately. Redo happens per page — inline on first touch via
///    the buffer-pool recovery hook, or from the background drainer in
///    recLSN order — and loser undo runs as ordinary aborting transactions
///    through the normal lock/latch protocol, concurrent with new work.
class RecoveryManager : public UndoApplier {
 public:
  RecoveryManager(BufferPool* pool, LogManager* log, TransactionManager* txns,
                  PageAllocator* alloc, DataStore* data, GlobalNsn* nsn)
      : pool_(pool), log_(log), txns_(txns), alloc_(alloc), data_(data),
        nsn_(nsn) {
    AttachMetrics(nullptr);
  }
  GISTCR_DISALLOW_COPY_AND_ASSIGN(RecoveryManager);

  /// Re-points restart/checkpoint metrics at \p reg (null: process
  /// fallback). Call before Restart; the Database facade does so at init.
  void AttachMetrics(obs::MetricsRegistry* reg);

  /// Keeps the version store consistent with undo: a rolled-back insert or
  /// delete-mark must not leave a pending version record behind (partial
  /// rollback keeps the transaction alive, so commit would stamp it).
  void SetMvcc(MvccManager* mvcc) { mvcc_ = mvcc; }

  /// Full offline restart: analysis from \p checkpoint_lsn (kInvalidLsn:
  /// scan from the log start), redo, then undo of losers.
  Status Restart(Lsn checkpoint_lsn);

  /// Instant restart, phase one (offline, log-only): analysis builds the
  /// per-page redo plans, quarantines loser-freed pages, re-acquires the
  /// losers' locks and arms the buffer-pool recovery hook. On return the
  /// database may open for business; no page has been redone yet.
  Status StartInstant(Lsn checkpoint_lsn);

  /// Instant restart, phase two (background thread): undoes the losers as
  /// ordinary aborting transactions, drains the remaining pending pages in
  /// recLSN order, then disarms the hook and the gate. \p stop is polled
  /// between steps (shutdown / simulated crash).
  Status RunInstantBackground(const std::atomic<bool>& stop);

  /// True while the gate is armed (pages may still need redo).
  bool InstantActive() const { return gate_.armed(); }

  /// Pending-page floor for log reclamation (kInvalidLsn when none): a
  /// checkpoint taken while recovery drains must not let the log punch
  /// holes below any un-replayed plan.
  Lsn PendingMinRecLsn() { return gate_.PendingMinRecLsn(); }

  size_t PendingPageCount() { return gate_.pending_count(); }

  /// Heap tail computed by the last StartInstant analysis (kInvalidPageId:
  /// no checkpoint hint was available; DataStore::Open must walk).
  PageId HeapTailHint() const { return heap_tail_hint_; }

  /// Heap pages whose chain links belong to losers and will be unlinked by
  /// the concurrent undo (DataStore::Open stops short of them).
  const std::vector<PageId>& DoomedHeapPages() const { return doomed_heap_; }

  /// Writes a fuzzy checkpoint record (ATT + DPT + NSN counter + heap
  /// tail) and forces it. Returns its LSN for the master pointer.
  StatusOr<Lsn> Checkpoint();

  /// Page-oriented redo of one record (public for targeted tests).
  Status RedoRecord(const LogRecord& rec);

  /// UndoApplier: undoes one record on behalf of a rollback, writing the
  /// CLR. Used both by live aborts and restart undo.
  Status UndoRecord(Transaction* txn, const LogRecord& rec) override;

  /// Restart counters. Plain reads; in instant mode they settle only once
  /// RunInstantBackground has finished (fields are atomics because inline
  /// redo on user threads races the background drainer).
  struct RestartStats {
    std::atomic<uint64_t> records_analyzed{0};
    std::atomic<uint64_t> records_redone{0};
    std::atomic<uint64_t> loser_txns{0};
    std::atomic<uint64_t> records_undone{0};
  };
  const RestartStats& restart_stats() const { return stats_; }

 private:
  // Physical appliers shared by forward-undo and CLR redo. Each latches
  // the target page; when \p check_lsn, skips if page_lsn >= lsn.
  Status ApplyRemoveLeafEntry(PageId page, const EntryOpPayload& pl, Lsn lsn,
                              bool check_lsn);
  Status ApplyUnmarkLeafEntry(PageId page, const EntryOpPayload& pl, Lsn lsn,
                              bool check_lsn);
  Status ApplyUndoSplit(const SplitPayload& pl, Lsn lsn, bool check_lsn);
  Status ApplyUndoInternal(LogRecordType t, const EntryOpPayload& pl,
                           Lsn lsn, bool check_lsn);
  Status ApplyUndoRightlink(const RightlinkUpdatePayload& pl, Lsn lsn,
                            bool check_lsn);
  Status ApplyUndoRootChange(const RootChangePayload& pl, Lsn lsn,
                             bool check_lsn);

  /// Applies the undo action of \p compensated_type (used when redoing a
  /// CLR). \p override_page is where a logical undo found the entry.
  Status RedoClrAction(LogRecordType compensated_type, Slice original,
                       PageId override_page, Lsn lsn);

  /// Redo of one record restricted to the images of page \p only
  /// (kInvalidPageId: unrestricted — classic full redo). Instant restart
  /// replays each page's plan with the plan's page as \p only, so a record
  /// touching two pages (split, root change) is applied once per page,
  /// each under that page's own plan.
  Status RedoRecordScoped(const LogRecord& rec, PageId only);

  /// RecoveryGate replay callback: reads each planned record and applies
  /// it to \p pid. The page-LSN test skips whatever already reached disk.
  Status ReplayPagePlan(PageId pid, const std::vector<Lsn>& plan);

  Status Corrupt(const char* what) {
    return Status::Corruption(std::string("recovery: ") + what);
  }

  BufferPool* pool_;
  LogManager* log_;
  TransactionManager* txns_;
  PageAllocator* alloc_;
  DataStore* data_;
  GlobalNsn* nsn_;
  MvccManager* mvcc_ = nullptr;
  RestartStats stats_;

  RecoveryGate gate_;
  /// Losers resurrected by StartInstant, awaiting their background abort.
  std::vector<Transaction*> losers_;
  PageId heap_tail_hint_ = kInvalidPageId;
  std::vector<PageId> doomed_heap_;

  obs::Counter* m_analyzed_ = nullptr;
  obs::Counter* m_redone_ = nullptr;
  obs::Counter* m_losers_ = nullptr;
  obs::Counter* m_undone_ = nullptr;
  obs::Counter* m_checkpoints_ = nullptr;
  obs::Histogram* m_analysis_ns_ = nullptr;
  obs::Histogram* m_redo_ns_ = nullptr;
  obs::Histogram* m_undo_ns_ = nullptr;
  obs::Histogram* m_checkpoint_ns_ = nullptr;
};

}  // namespace gistcr

#endif  // GISTCR_RECOVERY_RECOVERY_MANAGER_H_
