#include "access/rtree_extension.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/macros.h"

namespace gistcr {

Rect Rect::UnionWith(const Rect& o) const {
  Rect r;
  r.xlo = std::min(xlo, o.xlo);
  r.ylo = std::min(ylo, o.ylo);
  r.xhi = std::max(xhi, o.xhi);
  r.yhi = std::max(yhi, o.yhi);
  return r;
}

std::string Rect::Encode() const {
  std::string s(32, '\0');
  std::memcpy(s.data(), &xlo, 8);
  std::memcpy(s.data() + 8, &ylo, 8);
  std::memcpy(s.data() + 16, &xhi, 8);
  std::memcpy(s.data() + 24, &yhi, 8);
  return s;
}

Rect Rect::Decode(Slice s) {
  GISTCR_CHECK(s.size() == 32);
  Rect r;
  std::memcpy(&r.xlo, s.data(), 8);
  std::memcpy(&r.ylo, s.data() + 8, 8);
  std::memcpy(&r.xhi, s.data() + 16, 8);
  std::memcpy(&r.yhi, s.data() + 24, 8);
  return r;
}

bool RtreeExtension::Consistent(Slice pred, Slice query) const {
  if (pred.empty() || query.empty()) return false;
  return Rect::Decode(pred).Overlaps(Rect::Decode(query));
}

double RtreeExtension::Penalty(Slice bp, Slice key) const {
  if (bp.empty()) return std::numeric_limits<double>::max() / 2;
  const Rect b = Rect::Decode(bp);
  const Rect k = Rect::Decode(key);
  return b.UnionWith(k).Area() - b.Area();
}

std::string RtreeExtension::Union(Slice a, Slice b) const {
  if (a.empty()) return b.ToString();
  if (b.empty()) return a.ToString();
  return Rect::Decode(a).UnionWith(Rect::Decode(b)).Encode();
}

bool RtreeExtension::Contains(Slice bp, Slice pred) const {
  if (pred.empty()) return true;
  if (bp.empty()) return false;
  return Rect::Decode(bp).ContainsRect(Rect::Decode(pred));
}

void RtreeExtension::PickSplit(const std::vector<IndexEntry>& entries,
                               std::vector<bool>* to_right) const {
  // Guttman's quadratic split [Gut84]: pick the pair of entries whose
  // combined rectangle wastes the most area as seeds, then assign each
  // remaining entry to the group whose MBR grows least.
  const size_t n = entries.size();
  GISTCR_CHECK(n >= 2);
  std::vector<Rect> rects(n);
  for (size_t i = 0; i < n; i++) rects[i] = Rect::Decode(entries[i].key);

  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::max();
  for (size_t i = 0; i < n; i++) {
    for (size_t j = i + 1; j < n; j++) {
      const double waste =
          rects[i].UnionWith(rects[j]).Area() - rects[i].Area() -
          rects[j].Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  to_right->assign(n, false);
  (*to_right)[seed_b] = true;
  Rect mbr_a = rects[seed_a];
  Rect mbr_b = rects[seed_b];
  size_t count_a = 1, count_b = 1;
  const size_t min_fill = std::max<size_t>(1, n / 4);

  for (size_t i = 0; i < n; i++) {
    if (i == seed_a || i == seed_b) continue;
    const size_t remaining = n - count_a - count_b;
    // Force-assign to honour minimum fill.
    if (count_a + remaining <= min_fill) {
      (*to_right)[i] = false;
      mbr_a = mbr_a.UnionWith(rects[i]);
      count_a++;
      continue;
    }
    if (count_b + remaining <= min_fill) {
      (*to_right)[i] = true;
      mbr_b = mbr_b.UnionWith(rects[i]);
      count_b++;
      continue;
    }
    const double grow_a = mbr_a.UnionWith(rects[i]).Area() - mbr_a.Area();
    const double grow_b = mbr_b.UnionWith(rects[i]).Area() - mbr_b.Area();
    bool right;
    if (grow_a != grow_b) {
      right = grow_b < grow_a;
    } else if (mbr_a.Area() != mbr_b.Area()) {
      right = mbr_b.Area() < mbr_a.Area();
    } else {
      right = count_b < count_a;
    }
    if (right) {
      (*to_right)[i] = true;
      mbr_b = mbr_b.UnionWith(rects[i]);
      count_b++;
    } else {
      mbr_a = mbr_a.UnionWith(rects[i]);
      count_a++;
    }
  }
}

std::string RtreeExtension::EqQuery(Slice key) const {
  return key.ToString();  // overlap with the key's own rect
}

std::string RtreeExtension::Describe(Slice pred) const {
  if (pred.empty()) return "[empty]";
  const Rect r = Rect::Decode(pred);
  return "[(" + std::to_string(r.xlo) + "," + std::to_string(r.ylo) +
         ")-(" + std::to_string(r.xhi) + "," + std::to_string(r.yhi) + ")]";
}

}  // namespace gistcr
