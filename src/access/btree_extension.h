#ifndef GISTCR_ACCESS_BTREE_EXTENSION_H_
#define GISTCR_ACCESS_BTREE_EXTENSION_H_

#include <cstdint>
#include <string>

#include "gist/extension.h"

namespace gistcr {

/// GiST specialization emulating a B-tree over int64 keys (the paper's own
/// validation vehicle: "We are currently implementing GiSTs emulating
/// B-trees in DB2/Common Server", section 12).
///
/// Predicate domain: closed intervals [lo, hi], 16 bytes (two little-endian
/// int64s). Leaf keys are degenerate intervals [k, k]; internal BPs are the
/// ranges bounding their subtrees. Queries are intervals too, so
/// consistent() is interval overlap — which simultaneously implements
/// range-scan navigation and predicate-lock conflict detection.
class BtreeExtension : public GistExtension {
 public:
  /// Serialized degenerate interval for a point key.
  static std::string MakeKey(int64_t k) { return MakeRange(k, k); }
  /// Serialized interval [lo, hi] (inclusive); a range-scan query.
  static std::string MakeRange(int64_t lo, int64_t hi);
  static int64_t Lo(Slice pred);
  static int64_t Hi(Slice pred);

  bool Consistent(Slice pred, Slice query) const override;
  double Penalty(Slice bp, Slice key) const override;
  std::string Union(Slice a, Slice b) const override;
  bool Contains(Slice bp, Slice pred) const override;
  void PickSplit(const std::vector<IndexEntry>& entries,
                 std::vector<bool>* to_right) const override;
  std::string EqQuery(Slice key) const override;
  std::string Describe(Slice pred) const override;
};

}  // namespace gistcr

#endif  // GISTCR_ACCESS_BTREE_EXTENSION_H_
