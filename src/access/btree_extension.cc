#include "access/btree_extension.h"

#include <algorithm>

#include "util/coding.h"
#include "util/macros.h"

namespace gistcr {

std::string BtreeExtension::MakeRange(int64_t lo, int64_t hi) {
  std::string s;
  PutFixed64(&s, static_cast<uint64_t>(lo));
  PutFixed64(&s, static_cast<uint64_t>(hi));
  return s;
}

int64_t BtreeExtension::Lo(Slice pred) {
  GISTCR_CHECK(pred.size() == 16);
  return static_cast<int64_t>(DecodeFixed64(pred.data()));
}

int64_t BtreeExtension::Hi(Slice pred) {
  GISTCR_CHECK(pred.size() == 16);
  return static_cast<int64_t>(DecodeFixed64(pred.data() + 8));
}

bool BtreeExtension::Consistent(Slice pred, Slice query) const {
  if (pred.empty() || query.empty()) return false;
  return Lo(pred) <= Hi(query) && Lo(query) <= Hi(pred);
}

double BtreeExtension::Penalty(Slice bp, Slice key) const {
  if (bp.empty()) return 1e18;
  const int64_t lo = Lo(bp), hi = Hi(bp);
  const int64_t k = Lo(key);
  double pen = 0;
  if (k < lo) pen += static_cast<double>(lo - k);
  if (k > hi) pen += static_cast<double>(k - hi);
  return pen;
}

std::string BtreeExtension::Union(Slice a, Slice b) const {
  if (a.empty()) return b.ToString();
  if (b.empty()) return a.ToString();
  return MakeRange(std::min(Lo(a), Lo(b)), std::max(Hi(a), Hi(b)));
}

bool BtreeExtension::Contains(Slice bp, Slice pred) const {
  if (pred.empty()) return true;
  if (bp.empty()) return false;
  return Lo(bp) <= Lo(pred) && Hi(pred) <= Hi(bp);
}

void BtreeExtension::PickSplit(const std::vector<IndexEntry>& entries,
                               std::vector<bool>* to_right) const {
  // B-tree style: order by interval start and cut at the median.
  std::vector<size_t> order(entries.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const int64_t la = Lo(entries[a].key), lb = Lo(entries[b].key);
    if (la != lb) return la < lb;
    return Hi(entries[a].key) < Hi(entries[b].key);
  });
  to_right->assign(entries.size(), false);
  for (size_t i = order.size() / 2; i < order.size(); i++) {
    (*to_right)[order[i]] = true;
  }
}

std::string BtreeExtension::EqQuery(Slice key) const {
  return key.ToString();  // a key is already the degenerate interval
}

std::string BtreeExtension::Describe(Slice pred) const {
  if (pred.empty()) return "[empty]";
  return "[" + std::to_string(Lo(pred)) + "," + std::to_string(Hi(pred)) +
         "]";
}

}  // namespace gistcr
