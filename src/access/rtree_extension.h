#ifndef GISTCR_ACCESS_RTREE_EXTENSION_H_
#define GISTCR_ACCESS_RTREE_EXTENSION_H_

#include <string>

#include "gist/extension.h"

namespace gistcr {

/// 2-D rectangle used by the R-tree specialization: canonical 32-byte
/// encoding (four IEEE doubles: xlo, ylo, xhi, yhi).
struct Rect {
  double xlo = 0, ylo = 0, xhi = 0, yhi = 0;

  static Rect Point(double x, double y) { return Rect{x, y, x, y}; }

  bool Overlaps(const Rect& o) const {
    return xlo <= o.xhi && o.xlo <= xhi && ylo <= o.yhi && o.ylo <= yhi;
  }
  bool ContainsRect(const Rect& o) const {
    return xlo <= o.xlo && o.xhi <= xhi && ylo <= o.ylo && o.yhi <= yhi;
  }
  double Area() const { return (xhi - xlo) * (yhi - ylo); }
  Rect UnionWith(const Rect& o) const;

  std::string Encode() const;
  static Rect Decode(Slice s);
};

/// GiST specialization of Guttman's R-tree [Gut84] — the structure the
/// paper's protocol was first developed for ([KB95] R-link trees).
/// Predicates are minimum bounding rectangles; leaf keys are (possibly
/// degenerate) rectangles; queries are rectangles with overlap semantics.
/// PickSplit is Guttman's quadratic algorithm.
class RtreeExtension : public GistExtension {
 public:
  static std::string MakeKey(const Rect& r) { return r.Encode(); }
  /// Window (overlap) query.
  static std::string MakeWindowQuery(const Rect& r) { return r.Encode(); }

  bool Consistent(Slice pred, Slice query) const override;
  double Penalty(Slice bp, Slice key) const override;
  std::string Union(Slice a, Slice b) const override;
  bool Contains(Slice bp, Slice pred) const override;
  void PickSplit(const std::vector<IndexEntry>& entries,
                 std::vector<bool>* to_right) const override;
  std::string EqQuery(Slice key) const override;
  std::string Describe(Slice pred) const override;
};

}  // namespace gistcr

#endif  // GISTCR_ACCESS_RTREE_EXTENSION_H_
