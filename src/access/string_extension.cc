#include "access/string_extension.h"

#include <algorithm>

#include "util/coding.h"
#include "util/macros.h"

namespace gistcr {

namespace {

/// Monotone embedding of a byte string into [0,1): the first 8 bytes as a
/// base-256 fraction. Only used to make penalties comparable; correctness
/// never depends on it.
double ToFraction(const std::string& s) {
  double v = 0, scale = 1.0 / 256.0;
  for (size_t i = 0; i < 8 && i < s.size(); i++) {
    v += static_cast<unsigned char>(s[i]) * scale;
    scale /= 256.0;
  }
  return v;
}

}  // namespace

std::string StringExtension::MakeRange(const std::string& lo,
                                       const std::string& hi) {
  GISTCR_CHECK(lo.size() <= kMaxStringLen && hi.size() <= kMaxStringLen);
  GISTCR_CHECK(lo <= hi);
  std::string out;
  PutFixed16(&out, static_cast<uint16_t>(lo.size()));
  out += lo;
  out += hi;
  return out;
}

std::string StringExtension::MakePrefixQuery(const std::string& prefix) {
  std::string hi = prefix;
  hi.append(8, '\xff');
  return MakeRange(prefix, hi);
}

std::string StringExtension::Lo(Slice pred) {
  GISTCR_CHECK(pred.size() >= 2);
  const uint16_t lo_len = DecodeFixed16(pred.data());
  GISTCR_CHECK(pred.size() >= 2u + lo_len);
  return std::string(pred.data() + 2, lo_len);
}

std::string StringExtension::Hi(Slice pred) {
  GISTCR_CHECK(pred.size() >= 2);
  const uint16_t lo_len = DecodeFixed16(pred.data());
  GISTCR_CHECK(pred.size() >= 2u + lo_len);
  return std::string(pred.data() + 2 + lo_len,
                     pred.size() - 2 - lo_len);
}

bool StringExtension::Consistent(Slice pred, Slice query) const {
  if (pred.empty() || query.empty()) return false;
  return Lo(pred) <= Hi(query) && Lo(query) <= Hi(pred);
}

double StringExtension::Penalty(Slice bp, Slice key) const {
  if (bp.empty()) return 1e18;
  const double lo = ToFraction(Lo(bp)), hi = ToFraction(Hi(bp));
  const double k = ToFraction(Lo(key));
  double pen = 0;
  if (k < lo) pen += lo - k;
  if (k > hi) pen += k - hi;
  return pen;
}

std::string StringExtension::Union(Slice a, Slice b) const {
  if (a.empty()) return b.ToString();
  if (b.empty()) return a.ToString();
  return MakeRange(std::min(Lo(a), Lo(b)), std::max(Hi(a), Hi(b)));
}

bool StringExtension::Contains(Slice bp, Slice pred) const {
  if (pred.empty()) return true;
  if (bp.empty()) return false;
  return Lo(bp) <= Lo(pred) && Hi(pred) <= Hi(bp);
}

void StringExtension::PickSplit(const std::vector<IndexEntry>& entries,
                                std::vector<bool>* to_right) const {
  std::vector<size_t> order(entries.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return Lo(entries[x].key) < Lo(entries[y].key);
  });
  to_right->assign(entries.size(), false);
  for (size_t i = order.size() / 2; i < order.size(); i++) {
    (*to_right)[order[i]] = true;
  }
}

std::string StringExtension::EqQuery(Slice key) const {
  return key.ToString();
}

std::string StringExtension::Describe(Slice pred) const {
  if (pred.empty()) return "[empty]";
  return "[\"" + Lo(pred) + "\",\"" + Hi(pred) + "\"]";
}

}  // namespace gistcr
