#ifndef GISTCR_ACCESS_STRING_EXTENSION_H_
#define GISTCR_ACCESS_STRING_EXTENSION_H_

#include <string>

#include "gist/extension.h"

namespace gistcr {

/// GiST specialization over variable-length byte-string keys with
/// lexicographic range queries (the shape of a text B-tree). Unlike the
/// int64 and rectangle extensions, predicates here are variable length,
/// exercising the engine's predicate-relocation paths (growing bounding
/// predicates, internal-entry key rewrites, split payloads with mixed
/// sizes).
///
/// Predicate encoding: u16 lo_len | lo bytes | hi bytes  (hi_len implied).
/// A key is the degenerate range [s, s]; queries are inclusive ranges.
class StringExtension : public GistExtension {
 public:
  /// Maximum individual string length (predicates hold two).
  static constexpr size_t kMaxStringLen = 400;

  static std::string MakeKey(const std::string& s) { return MakeRange(s, s); }
  static std::string MakeRange(const std::string& lo, const std::string& hi);
  /// All strings with the given prefix: [prefix, prefix + 0xFF...].
  static std::string MakePrefixQuery(const std::string& prefix);
  static std::string Lo(Slice pred);
  static std::string Hi(Slice pred);

  bool Consistent(Slice pred, Slice query) const override;
  double Penalty(Slice bp, Slice key) const override;
  std::string Union(Slice a, Slice b) const override;
  bool Contains(Slice bp, Slice pred) const override;
  void PickSplit(const std::vector<IndexEntry>& entries,
                 std::vector<bool>* to_right) const override;
  std::string EqQuery(Slice key) const override;
  std::string Describe(Slice pred) const override;
};

}  // namespace gistcr

#endif  // GISTCR_ACCESS_STRING_EXTENSION_H_
