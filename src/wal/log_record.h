#ifndef GISTCR_WAL_LOG_RECORD_H_
#define GISTCR_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>

#include "common/types.h"
#include "util/slice.h"
#include "util/status.h"

namespace gistcr {

/// Log record types. The middle block is exactly Table 1 of the paper; the
/// trailing block is what our substrate additionally needs (transaction
/// control, heap data store, root growth, node-deletion rightlink fix,
/// checkpoints).
enum class LogRecordType : uint8_t {
  kInvalid = 0,

  // --- Table 1 (paper section 9) ---
  kParentEntryUpdate = 1,   ///< Redo-only: new BP in child + parent slot.
  kSplit = 2,               ///< Node split (written during recursive split).
  kGarbageCollection = 3,   ///< Redo-only: drop committed-deleted entries.
  kInternalEntryAdd = 4,    ///< Written during recursive split.
  kInternalEntryUpdate = 5, ///< Written during recursive split.
  kInternalEntryDelete = 6, ///< Written during node deletion.
  kAddLeafEntry = 7,        ///< Content change; logical undo.
  kMarkLeafEntry = 8,       ///< Logical delete mark; logical undo.
  kGetPage = 9,             ///< Page allocation (split / root grow).
  kFreePage = 10,           ///< Page deallocation (node deletion).

  // --- Substrate records ---
  kBegin = 32,
  kCommit = 33,
  kAbort = 34,              ///< Rollback starts; undo follows.
  kEnd = 35,                ///< Transaction fully finished.
  kClr = 36,                ///< Compensation record (redo-only).
  kNtaEnd = 37,             ///< Dummy CLR committing a nested top action.
  kRightlinkUpdate = 38,    ///< Node deletion: left sibling rightlink fix.
  kRootChange = 39,         ///< Root growth: meta-page root pointer update.
  kHeapInsert = 40,         ///< Data record insert in the heap store.
  kHeapDelete = 41,         ///< Data record delete mark in the heap store.
  kCheckpoint = 42,         ///< Fuzzy checkpoint (ATT + DPT snapshot).
};

const char* LogRecordTypeName(LogRecordType t);

/// In-memory form of a log record. `payload` is a type-specific encoded
/// blob (see wal/log_payloads.h). `lsn` is assigned by LogManager::Append.
///
/// Nested top actions (paper section 9.1): records inside an NTA chain
/// normally through prev_lsn; the closing kNtaEnd record's undo_next points
/// at the LSN that preceded the NTA, so rollback skips the committed action.
/// kClr records likewise carry undo_next = the next record to undo.
struct LogRecord {
  LogRecordType type = LogRecordType::kInvalid;
  TxnId txn_id = kInvalidTxnId;
  Lsn prev_lsn = kInvalidLsn;
  Lsn undo_next = kInvalidLsn;  // CLR / NtaEnd only
  std::string payload;

  Lsn lsn = kInvalidLsn;  // out: set by Append / Read

  /// Serialized size including header.
  static constexpr uint32_t kHeaderSize = 4 + 1 + 1 + 8 + 8 + 8 + 4;
  uint32_t SerializedSize() const {
    return kHeaderSize + static_cast<uint32_t>(payload.size());
  }

  /// Appends the wire form (header + payload, CRC filled in) to \p dst.
  void EncodeTo(std::string* dst) const;

  /// Decodes a record starting at \p src (which must hold at least the full
  /// record). Verifies the CRC. Does not set lsn.
  Status DecodeFrom(Slice src, uint32_t* consumed);
};

}  // namespace gistcr

#endif  // GISTCR_WAL_LOG_RECORD_H_
