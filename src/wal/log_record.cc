#include "wal/log_record.h"

#include "util/coding.h"
#include "util/crc32.h"
#include "util/macros.h"

namespace gistcr {

const char* LogRecordTypeName(LogRecordType t) {
  switch (t) {
    case LogRecordType::kInvalid: return "Invalid";
    case LogRecordType::kParentEntryUpdate: return "Parent-Entry-Update";
    case LogRecordType::kSplit: return "Split";
    case LogRecordType::kGarbageCollection: return "Garbage-Collection";
    case LogRecordType::kInternalEntryAdd: return "Internal-Entry-Add";
    case LogRecordType::kInternalEntryUpdate: return "Internal-Entry-Update";
    case LogRecordType::kInternalEntryDelete: return "Internal-Entry-Delete";
    case LogRecordType::kAddLeafEntry: return "Add-Leaf-Entry";
    case LogRecordType::kMarkLeafEntry: return "Mark-Leaf-Entry";
    case LogRecordType::kGetPage: return "Get-Page";
    case LogRecordType::kFreePage: return "Free-Page";
    case LogRecordType::kBegin: return "Begin";
    case LogRecordType::kCommit: return "Commit";
    case LogRecordType::kAbort: return "Abort";
    case LogRecordType::kEnd: return "End";
    case LogRecordType::kClr: return "CLR";
    case LogRecordType::kNtaEnd: return "NTA-End";
    case LogRecordType::kRightlinkUpdate: return "Rightlink-Update";
    case LogRecordType::kRootChange: return "Root-Change";
    case LogRecordType::kHeapInsert: return "Heap-Insert";
    case LogRecordType::kHeapDelete: return "Heap-Delete";
    case LogRecordType::kCheckpoint: return "Checkpoint";
  }
  return "Unknown";
}

// Wire layout:
//   [0..3]   total_len (header + payload)
//   [4]      type
//   [5]      reserved
//   [6..13]  txn_id
//   [14..21] prev_lsn
//   [22..29] undo_next
//   [30..33] crc32 over the whole record with this field zeroed
//   [34..]   payload
void LogRecord::EncodeTo(std::string* dst) const {
  const size_t start = dst->size();
  const uint32_t total = SerializedSize();
  PutFixed32(dst, total);
  dst->push_back(static_cast<char>(type));
  dst->push_back(0);
  PutFixed64(dst, txn_id);
  PutFixed64(dst, prev_lsn);
  PutFixed64(dst, undo_next);
  PutFixed32(dst, 0);  // crc placeholder
  dst->append(payload);
  const uint32_t crc = Crc32(dst->data() + start, total);
  EncodeFixed32(dst->data() + start + 30, crc);
}

Status LogRecord::DecodeFrom(Slice src, uint32_t* consumed) {
  if (src.size() < kHeaderSize) {
    return Status::Corruption("log record: short header");
  }
  const uint32_t total = DecodeFixed32(src.data());
  if (total < kHeaderSize || total > src.size()) {
    return Status::Corruption("log record: bad length");
  }
  // Verify CRC with the CRC field zeroed.
  char header[kHeaderSize];
  std::memcpy(header, src.data(), kHeaderSize);
  const uint32_t stored_crc = DecodeFixed32(header + 30);
  EncodeFixed32(header + 30, 0);
  uint32_t crc = Crc32(header, kHeaderSize);
  crc = Crc32(src.data() + kHeaderSize, total - kHeaderSize, crc);
  if (crc != stored_crc) {
    return Status::Corruption("log record: crc mismatch");
  }
  type = static_cast<LogRecordType>(static_cast<uint8_t>(src[4]));
  txn_id = DecodeFixed64(src.data() + 6);
  prev_lsn = DecodeFixed64(src.data() + 14);
  undo_next = DecodeFixed64(src.data() + 22);
  payload.assign(src.data() + kHeaderSize, total - kHeaderSize);
  *consumed = total;
  return Status::OK();
}

}  // namespace gistcr
