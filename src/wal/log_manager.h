#ifndef GISTCR_WAL_LOG_MANAGER_H_
#define GISTCR_WAL_LOG_MANAGER_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "util/status.h"
#include "wal/log_record.h"

namespace gistcr {

/// Append-only write-ahead log. LSNs are byte offsets of record starts in
/// the log file (the file begins with an 8-byte magic, so LSN 0 stays the
/// invalid sentinel). Offsets make LSNs monotonically increasing, which is
/// what lets them double as the tree-global NSN counter (paper section
/// 10.1): `last_lsn()` *is* the global counter value a descending operation
/// memorizes.
///
/// Thread-safe. The write pipeline is split in two so no appender ever sits
/// behind an in-flight fdatasync (DESIGN.md section 11):
///
///  - **Append path** (any thread): takes `mu_`, extends the in-memory tail
///    buffer, assigns the LSN, returns. The mutex is only ever held for
///    memory operations — never across disk I/O.
///  - **Flusher thread** (one per open log, started by Open): woken when a
///    caller needs durability, it swaps the tail buffer out under `mu_`,
///    releases the mutex, pwrites + fdatasyncs the batch, then re-takes the
///    mutex to advance durable_lsn() and broadcast to waiters. One fsync
///    retires every record (and so every commit) appended before it — true
///    group commit. A flush failure fans out to *every* waiter blocked at
///    that moment and leaves the batch in the tail buffer for retry.
///
/// Flush(lsn) is the waiter side of the handshake: it records the request,
/// wakes the flusher, and blocks until durable_lsn() covers the target or
/// the covering flush attempt fails.
class LogManager {
 public:
  LogManager();
  ~LogManager();
  GISTCR_DISALLOW_COPY_AND_ASSIGN(LogManager);

  /// Re-points the log's metrics at \p reg (null: process fallback). Call
  /// before concurrent use; the Database facade does so at init.
  void AttachMetrics(obs::MetricsRegistry* reg);

  /// Opens (creating if absent) the log file, positions at its end, and
  /// starts the flusher thread. Scans backwards-compatible: an existing
  /// file is validated lazily by Scan during recovery.
  Status Open(const std::string& path);

  /// Stops the flusher (draining the tail buffer best-effort) and closes
  /// the file. Idempotent; Open may be called again afterwards.
  void Close();

  /// Appends \p rec, assigning rec->lsn. Does not flush; the record
  /// becomes durable when a later Flush covers its LSN.
  Status Append(LogRecord* rec);

  /// Blocks until the log is durable up to and including \p lsn
  /// (kInvalidLsn: everything appended so far). Many concurrent callers
  /// are retired by one fdatasync; an I/O failure during the covering
  /// flush attempt is returned to every caller blocked on it.
  Status Flush(Lsn lsn);
  Status FlushAll() { return Flush(kInvalidLsn); }

  /// LSN of the most recently appended record — the paper's "global NSN"
  /// counter value (section 10.1).
  Lsn last_lsn() const { return last_lsn_.load(std::memory_order_acquire); }
  Lsn durable_lsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }

  /// Reads the record at \p lsn (from the durable file or the in-memory
  /// tail). Sets rec->lsn.
  Status ReadRecord(Lsn lsn, LogRecord* rec);

  /// Iterates durable+buffered records with lsn >= from, in LSN order. The
  /// callback may return false to stop. Stops cleanly at the first torn or
  /// corrupt record (the crash-truncated tail).
  Status Scan(Lsn from, const std::function<bool(const LogRecord&)>& fn);

  /// Bounded variant of Scan: stops after the record whose LSN is \p upto
  /// (inclusive; kInvalidLsn = unbounded, identical to Scan). Instant
  /// restart uses this to keep per-page redo planning confined to the
  /// [redo_start, end-of-log-at-analysis] window while new user appends
  /// extend the log concurrently.
  Status ScanRange(Lsn from, Lsn upto,
                   const std::function<bool(const LogRecord&)>& fn);

  /// First valid LSN in the log (just past the file magic).
  static constexpr Lsn kFirstLsn = 8;

  /// Total bytes appended so far (for benchmarks measuring log volume).
  uint64_t TotalBytes() const;

  /// Simulates a crash: drops the unflushed tail buffer. Records with LSN
  /// beyond durable_lsn() are lost, exactly as after a power failure. A
  /// flush already in flight is allowed to land first (a power cut may or
  /// may not persist a write the kernel already accepted).
  void DiscardTail();

  /// Registers a fan-out hook the flusher invokes (without the log mutex)
  /// after each successful batch lands, with the new durable LSN. The MVCC
  /// timestamp oracle piggybacks its snapshot stamp on this. Call before
  /// Open; one callback, not a list.
  void SetDurableCallback(std::function<void(Lsn)> fn) {
    durable_cb_ = std::move(fn);
  }

  /// Adaptive group-commit pacing (DESIGN.md section 11 carry-over): when
  /// a flush is requested but fewer than \p min_commits commit records are
  /// pending, the flusher holds the batch open for up to \p wait_us
  /// microseconds so more commits can join, trading a bounded latency bump
  /// for larger groups. 0 disables (the default). Each paced batch bumps
  /// wal.flusher.pace_waits.
  void SetPacing(uint64_t wait_us, uint64_t min_commits) {
    pace_wait_us_.store(wait_us, std::memory_order_relaxed);
    pace_min_commits_.store(min_commits, std::memory_order_relaxed);
  }

  /// When disabled, flushes write to the OS but skip fdatasync. Benchmarks
  /// measuring protocol scaling (not commit durability) turn this off so
  /// fsync latency does not dominate; correctness-under-crash tests keep
  /// it on (the default).
  void SetSyncOnFlush(bool sync) {
    sync_on_flush_.store(sync, std::memory_order_relaxed);
  }

  /// Reclaims the disk space of records below \p lsn by punching a hole in
  /// the file (LSNs stay byte offsets, so nothing else changes). The caller
  /// must guarantee no record below \p lsn can ever be needed again —
  /// i.e., \p lsn <= min(checkpoint LSN, every DPT rec_lsn, every active
  /// transaction's first_lsn). Best effort: returns the bytes reclaimed, 0
  /// if the filesystem does not support hole punching.
  StatusOr<uint64_t> ReclaimBefore(Lsn lsn);

  /// Lowest LSN still readable (everything below was reclaimed).
  Lsn reclaimed_before() const {
    return reclaimed_before_.load(std::memory_order_acquire);
  }

  /// Point-in-time view of the flusher pipeline, for the introspection
  /// surface (kInspect "wal").
  struct FlusherStats {
    uint64_t tail_bytes = 0;      ///< unflushed tail buffer
    uint64_t inflight_bytes = 0;  ///< batch currently being written
    uint64_t pending_records = 0;
    uint64_t pending_commits = 0;
    bool flush_in_flight = false;
    uint64_t last_flush_ns = 0;   ///< duration of the last batch write+sync
    Lsn durable_lsn = kInvalidLsn;
    Lsn last_lsn = kInvalidLsn;
  };
  FlusherStats GetFlusherStats() const;

 private:
  /// Flusher thread body: sleep until a flush is wanted, batch, write.
  void FlusherLoop();

  /// True when the batch the flusher is about to cut should be held open
  /// briefly to let more commits join (pacing enabled, commit-driven wake,
  /// group still small, no pressure that must flush now).
  bool ShouldPaceLocked() const GISTCR_REQUIRES(mu_);

  /// True when the flusher has work: someone requested durability beyond
  /// durable_lsn(), or the tail buffer outgrew the flush-ahead cap.
  /// Always false while a DiscardTail is waiting, so the flusher parks
  /// instead of cutting batch after batch (which would starve the
  /// discard's wait for the in-flight one to land).
  bool WantsFlushLocked() const GISTCR_REQUIRES(mu_);

  /// Locates \p lsn in flushing_ or buffer_ and decodes it. NotFound past
  /// the tail end.
  Status ReadBufferedLocked(Lsn lsn, LogRecord* rec) GISTCR_REQUIRES(mu_);

  /// Flush-ahead cap: appenders beyond this much unflushed tail wake the
  /// flusher even with no durability waiter, bounding tail-buffer memory.
  static constexpr size_t kFlushAheadBytes = 8u << 20;

  obs::Counter* m_appends_ = nullptr;
  obs::Counter* m_append_bytes_ = nullptr;
  obs::Counter* m_flushes_ = nullptr;
  obs::Counter* m_flusher_wakeups_ = nullptr;
  obs::Counter* m_flusher_errors_ = nullptr;
  obs::Histogram* m_fsync_ns_ = nullptr;
  obs::Histogram* m_batch_records_ = nullptr;
  obs::Histogram* m_batch_commits_ = nullptr;
  obs::Histogram* m_batch_bytes_ = nullptr;
  obs::Histogram* m_flush_wait_ns_ = nullptr;
  obs::Counter* m_pace_waits_ = nullptr;

  mutable Mutex mu_{GISTCR_LOCK_RANK(kWal, "wal.mu")};
  /// Broadcast by the flusher after every attempt (success or failure) and
  /// by Close; Flush waiters and DiscardTail sleep on it.
  CondVar durable_cv_;
  /// Signalled when WantsFlushLocked may have become true; the flusher
  /// sleeps on it.
  CondVar work_cv_;

  int fd_ GISTCR_GUARDED_BY(mu_) = -1;
  std::string path_ GISTCR_GUARDED_BY(mu_);
  /// Unflushed tail past flushing_; first byte is at LSN
  /// buffer_base_ + flushing_.size().
  std::string buffer_ GISTCR_GUARDED_BY(mu_);
  /// Batch the flusher is currently writing (empty when idle); starts at
  /// LSN buffer_base_. Readable under mu_ while the flusher's I/O is in
  /// flight — the flusher only reads it outside the mutex and only
  /// mutates it (clear / splice back) with the mutex held.
  std::string flushing_ GISTCR_GUARDED_BY(mu_);
  /// Durable file size == LSN of the first byte of flushing_ (or of
  /// buffer_ when no flush is in flight).
  Lsn buffer_base_ GISTCR_GUARDED_BY(mu_) = 0;
  /// Highest LSN any Flush call asked to make durable.
  Lsn requested_lsn_ GISTCR_GUARDED_BY(mu_) = kInvalidLsn;
  /// Appends (and Commit-record appends) since the last flush batch cut.
  uint64_t pending_records_ GISTCR_GUARDED_BY(mu_) = 0;
  uint64_t pending_commits_ GISTCR_GUARDED_BY(mu_) = 0;
  /// Records/commits in the in-flight batch.
  uint64_t inflight_records_ GISTCR_GUARDED_BY(mu_) = 0;
  uint64_t inflight_commits_ GISTCR_GUARDED_BY(mu_) = 0;
  bool flush_in_flight_ GISTCR_GUARDED_BY(mu_) = false;
  /// Count of DiscardTail calls waiting for the in-flight flush to land.
  /// While nonzero the flusher cuts no new batches (see WantsFlushLocked).
  uint64_t discard_waiters_ GISTCR_GUARDED_BY(mu_) = 0;
  /// Error fan-out: every failed flush attempt bumps the generation and
  /// stores its status; waiters that observed an older generation return
  /// the error instead of re-sleeping.
  uint64_t error_gen_ GISTCR_GUARDED_BY(mu_) = 0;
  /// Write+fsync duration of the most recent successful batch; Flush
  /// waiters use it to split their wait into fsync vs. queueing shares
  /// when attributing request stages (DESIGN.md section 12).
  uint64_t last_flush_ns_ GISTCR_GUARDED_BY(mu_) = 0;
  Status last_error_ GISTCR_GUARDED_BY(mu_);
  bool flusher_stop_ GISTCR_GUARDED_BY(mu_) = false;

  std::thread flusher_thread_;  ///< set in Open, joined in Close

  /// Durable fan-out hook (SetDurableCallback). Written before Open, read
  /// by the flusher thread outside mu_.
  std::function<void(Lsn)> durable_cb_;

  std::atomic<uint64_t> pace_wait_us_{0};
  std::atomic<uint64_t> pace_min_commits_{0};

  std::atomic<Lsn> last_lsn_{kInvalidLsn};
  std::atomic<Lsn> durable_lsn_{kInvalidLsn};
  Lsn next_lsn_ GISTCR_GUARDED_BY(mu_) = kFirstLsn;
  std::atomic<bool> sync_on_flush_{true};
  std::atomic<Lsn> reclaimed_before_{LogManager::kFirstLsn};
};

}  // namespace gistcr

#endif  // GISTCR_WAL_LOG_MANAGER_H_
