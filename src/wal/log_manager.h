#ifndef GISTCR_WAL_LOG_MANAGER_H_
#define GISTCR_WAL_LOG_MANAGER_H_

#include <atomic>
#include <functional>
#include <string>

#include "common/mutex.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "util/status.h"
#include "wal/log_record.h"

namespace gistcr {

/// Append-only write-ahead log. LSNs are byte offsets of record starts in
/// the log file (the file begins with an 8-byte magic, so LSN 0 stays the
/// invalid sentinel). Offsets make LSNs monotonically increasing, which is
/// what lets them double as the tree-global NSN counter (paper section
/// 10.1): `last_lsn()` *is* the global counter value a descending operation
/// memorizes.
///
/// Thread-safe. Appends go to an in-memory tail buffer; Flush(lsn) forces
/// the buffer through fdatasync (group commit: one flush covers every
/// record appended before it).
class LogManager {
 public:
  LogManager();
  ~LogManager();
  GISTCR_DISALLOW_COPY_AND_ASSIGN(LogManager);

  /// Re-points the log's metrics at \p reg (null: process fallback). Call
  /// before concurrent use; the Database facade does so at init.
  void AttachMetrics(obs::MetricsRegistry* reg);

  /// Opens (creating if absent) the log file and positions at its end.
  /// Scans backwards-compatible: an existing file is validated lazily by
  /// Scan during recovery.
  Status Open(const std::string& path);
  void Close();

  /// Appends \p rec, assigning rec->lsn. Does not flush.
  Status Append(LogRecord* rec);

  /// Forces the log to disk up to and including \p lsn (kInvalidLsn: all).
  Status Flush(Lsn lsn);
  Status FlushAll() { return Flush(last_lsn()); }

  /// LSN of the most recently appended record — the paper's "global NSN"
  /// counter value (section 10.1).
  Lsn last_lsn() const { return last_lsn_.load(std::memory_order_acquire); }
  Lsn durable_lsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }

  /// Reads the record at \p lsn (from the durable file or the in-memory
  /// tail). Sets rec->lsn.
  Status ReadRecord(Lsn lsn, LogRecord* rec);

  /// Iterates durable+buffered records with lsn >= from, in LSN order. The
  /// callback may return false to stop. Stops cleanly at the first torn or
  /// corrupt record (the crash-truncated tail).
  Status Scan(Lsn from, const std::function<bool(const LogRecord&)>& fn);

  /// First valid LSN in the log (just past the file magic).
  static constexpr Lsn kFirstLsn = 8;

  /// Total bytes appended so far (for benchmarks measuring log volume).
  uint64_t TotalBytes() const;

  /// Simulates a crash: drops the unflushed tail buffer. Records with LSN
  /// beyond durable_lsn() are lost, exactly as after a power failure.
  void DiscardTail();

  /// When disabled, Flush writes to the OS but skips fdatasync. Benchmarks
  /// measuring protocol scaling (not commit durability) turn this off so
  /// fsync latency does not dominate; correctness-under-crash tests keep
  /// it on (the default).
  void SetSyncOnFlush(bool sync) {
    sync_on_flush_.store(sync, std::memory_order_relaxed);
  }

  /// Reclaims the disk space of records below \p lsn by punching a hole in
  /// the file (LSNs stay byte offsets, so nothing else changes). The caller
  /// must guarantee no record below \p lsn can ever be needed again —
  /// i.e., \p lsn <= min(checkpoint LSN, every DPT rec_lsn, every active
  /// transaction's first_lsn). Best effort: returns the bytes reclaimed, 0
  /// if the filesystem does not support hole punching.
  StatusOr<uint64_t> ReclaimBefore(Lsn lsn);

  /// Lowest LSN still readable (everything below was reclaimed).
  Lsn reclaimed_before() const {
    return reclaimed_before_.load(std::memory_order_acquire);
  }

 private:
  Status FlushLocked() GISTCR_REQUIRES(mu_);

  obs::Counter* m_appends_ = nullptr;
  obs::Counter* m_append_bytes_ = nullptr;
  obs::Counter* m_flushes_ = nullptr;
  obs::Histogram* m_fsync_ns_ = nullptr;
  obs::Histogram* m_batch_records_ = nullptr;
  /// Appends since last flush.
  uint64_t pending_records_ GISTCR_GUARDED_BY(mu_) = 0;

  mutable Mutex mu_;
  int fd_ GISTCR_GUARDED_BY(mu_) = -1;
  std::string path_ GISTCR_GUARDED_BY(mu_);
  /// Unflushed tail; starts at LSN buffer_base_.
  std::string buffer_ GISTCR_GUARDED_BY(mu_);
  /// File size == LSN of first buffered byte.
  Lsn buffer_base_ GISTCR_GUARDED_BY(mu_) = 0;
  std::atomic<Lsn> last_lsn_{kInvalidLsn};
  std::atomic<Lsn> durable_lsn_{kInvalidLsn};
  Lsn next_lsn_ GISTCR_GUARDED_BY(mu_) = kFirstLsn;
  std::atomic<bool> sync_on_flush_{true};
  std::atomic<Lsn> reclaimed_before_{LogManager::kFirstLsn};
};

}  // namespace gistcr

#endif  // GISTCR_WAL_LOG_MANAGER_H_
