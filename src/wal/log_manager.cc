#include "wal/log_manager.h"

#include <fcntl.h>
#include <linux/falloc.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "obs/op_context.h"
#include "obs/trace.h"
#include "storage/fault_injector.h"
#include "util/coding.h"

namespace gistcr {

namespace {

constexpr char kMagic[8] = {'G', 'I', 'S', 'T', 'W', 'A', 'L', '1'};

/// One batch handed from the appender state to the flusher's unlocked I/O
/// section. The data pointer aims into flushing_, which no thread mutates
/// while the flush is in flight (flush_in_flight_ brackets it).
struct BatchIo {
  int fd = -1;
  const char* data = nullptr;
  size_t size = 0;
  Lsn base = kInvalidLsn;  ///< file offset of the batch's first byte
  Lsn last = kInvalidLsn;  ///< LSN of the batch's final record
};

}  // namespace

LogManager::LogManager() { AttachMetrics(nullptr); }

LogManager::~LogManager() { Close(); }

void LogManager::AttachMetrics(obs::MetricsRegistry* reg) {
  reg = obs::MetricsRegistry::OrFallback(reg);
  m_appends_ = reg->GetCounter("wal.appends");
  m_append_bytes_ = reg->GetCounter("wal.append_bytes");
  m_flushes_ = reg->GetCounter("wal.flushes");
  m_flusher_wakeups_ = reg->GetCounter("wal.flusher.wakeups");
  m_flusher_errors_ = reg->GetCounter("wal.flusher.errors");
  m_fsync_ns_ = reg->GetHistogram("wal.fsync_ns");
  m_batch_records_ = reg->GetHistogram("wal.group_commit_records");
  m_batch_commits_ = reg->GetHistogram("wal.group_commit_commits");
  m_batch_bytes_ = reg->GetHistogram("wal.flusher.batch_bytes");
  m_flush_wait_ns_ = reg->GetHistogram("wal.flusher.wait_ns");
  m_pace_waits_ = reg->GetCounter("wal.flusher.pace_waits");
}

Status LogManager::Open(const std::string& path) {
  // File setup happens before any lock: Open precedes concurrent use, and
  // the latch discipline bans disk syncs under a Mutex even on cold paths.
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size == 0) {
    if (::write(fd, kMagic, sizeof(kMagic)) != sizeof(kMagic)) {
      ::close(fd);
      return Status::IOError("write log magic");
    }
    if (::fdatasync(fd) != 0) {
      ::close(fd);
      return Status::IOError("fdatasync");
    }
    size = sizeof(kMagic);
  } else {
    char magic[8];
    if (::pread(fd, magic, 8, 0) != 8 ||
        std::memcmp(magic, kMagic, 8) != 0) {
      ::close(fd);
      return Status::Corruption("bad log magic in " + path);
    }
  }

  MutexLock l(mu_);
  GISTCR_CHECK(fd_ < 0);
  GISTCR_CHECK(!flusher_thread_.joinable());
  fd_ = fd;
  path_ = path;
  buffer_base_ = static_cast<Lsn>(size);
  next_lsn_ = buffer_base_;
  requested_lsn_ = kInvalidLsn;
  durable_lsn_.store(buffer_base_ > kFirstLsn ? buffer_base_ - 1 : kInvalidLsn,
                     std::memory_order_release);
  // last_lsn_ is refined by Scan during recovery; a conservative value (the
  // end of the durable log) is fine for NSN purposes because it only has to
  // be >= every NSN already assigned.
  last_lsn_.store(buffer_base_ > kFirstLsn ? buffer_base_ - 1 : kInvalidLsn,
                  std::memory_order_release);
  flusher_stop_ = false;
  flusher_thread_ = std::thread([this] { FlusherLoop(); });
  return Status::OK();
}

void LogManager::Close() {
  {
    MutexLock l(mu_);
    flusher_stop_ = true;
    work_cv_.NotifyAll();
    durable_cv_.NotifyAll();
  }
  if (flusher_thread_.joinable()) flusher_thread_.join();
  MutexLock l(mu_);
  if (fd_ < 0) return;
  // Best-effort drain: shutdown cannot do anything with a flush failure,
  // and recovery tolerates a truncated tail. The flusher has exited, so
  // any in-flight batch has already landed or been spliced back.
  GISTCR_DCHECK(!flush_in_flight_);
  if (!buffer_.empty()) {
    BatchIo io;
    io.fd = fd_;
    io.data = buffer_.data();
    io.size = buffer_.size();
    io.base = buffer_base_;
    io.last = last_lsn_.load(std::memory_order_acquire);
    l.Unlock();
    GISTCR_TRACE_SCOPE("wal.flush");
    const char* p = io.data;
    size_t remaining = io.size;
    off_t offset = static_cast<off_t>(io.base);
    bool ok = true;
    while (remaining > 0) {
      ssize_t n = ::pwrite(io.fd, p, remaining, offset);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ok = false;
        break;
      }
      p += n;
      offset += n;
      remaining -= static_cast<size_t>(n);
    }
    if (ok && sync_on_flush_.load(std::memory_order_relaxed)) {
      ok = ::fdatasync(io.fd) == 0;
    }
    if (ok && durable_cb_) durable_cb_(io.last);
    l.Lock();
    if (ok) {
      buffer_base_ += buffer_.size();
      buffer_.clear();
      pending_records_ = 0;
      pending_commits_ = 0;
      durable_lsn_.store(io.last, std::memory_order_release);
    }
  }
  ::close(fd_);
  fd_ = -1;
}

Status LogManager::Append(LogRecord* rec) {
  // Serialize outside the mutex (DESIGN.md section 11): the wire form is
  // LSN-independent (the LSN is the record's file offset, never a field),
  // so the CRC-stamped image can be built into a per-thread scratch buffer
  // while other appenders hold mu_, leaving only the byte copy and the
  // bookkeeping under the lock. The scratch keeps its capacity across
  // appends, so steady state allocates nothing.
  static thread_local std::string scratch;
  scratch.clear();
  if (scratch.capacity() < rec->SerializedSize()) {
    scratch.reserve(rec->SerializedSize());
  }
  rec->EncodeTo(&scratch);
  GISTCR_DCHECK(scratch.size() == rec->SerializedSize());

  MutexLock l(mu_);
  GISTCR_CHECK(fd_ >= 0);
  rec->lsn = next_lsn_;
  buffer_.append(scratch);
  next_lsn_ += scratch.size();
  last_lsn_.store(rec->lsn, std::memory_order_release);
  m_appends_->Add(1);
  m_append_bytes_->Add(scratch.size());
  pending_records_++;
  if (rec->type == LogRecordType::kCommit) pending_commits_++;
  // Appends never wait for I/O; past the flush-ahead cap they nudge the
  // flusher so the unflushed tail stays bounded.
  if (buffer_.size() >= kFlushAheadBytes && !flush_in_flight_) {
    work_cv_.NotifyOne();
  }
  return Status::OK();
}

bool LogManager::ShouldPaceLocked() const {
  const uint64_t pace_us = pace_wait_us_.load(std::memory_order_relaxed);
  if (pace_us == 0) return false;
  // Only commit-driven wakes are paced: eviction/checkpoint forces carry
  // no commit record and should not eat the latency bump, and flush-ahead
  // or discard pressure must drain immediately.
  if (pending_commits_ == 0) return false;
  if (pending_commits_ >= pace_min_commits_.load(std::memory_order_relaxed)) {
    return false;
  }
  if (buffer_.size() >= kFlushAheadBytes) return false;
  if (discard_waiters_ > 0) return false;
  return true;
}

bool LogManager::WantsFlushLocked() const {
  // Hold off while a DiscardTail is waiting for the in-flight batch: on a
  // busy log the flusher would otherwise re-cut a new batch the instant it
  // publishes the old one (it keeps mu_ across publish -> re-check -> cut),
  // so flush_in_flight_ is true at every moment the discard holds the
  // mutex and its wait livelocks.
  if (discard_waiters_ > 0) return false;
  if (buffer_.empty()) return false;
  if (buffer_.size() >= kFlushAheadBytes) return true;
  if (requested_lsn_ == kInvalidLsn) return false;
  const Lsn durable = durable_lsn_.load(std::memory_order_acquire);
  return durable == kInvalidLsn || requested_lsn_ > durable;
}

void LogManager::FlusherLoop() {
  MutexLock l(mu_);
  for (;;) {
    while (!flusher_stop_ && !WantsFlushLocked()) work_cv_.Wait(mu_);
    if (flusher_stop_) return;
    if (ShouldPaceLocked()) {
      // Adaptive pacing: the group is small, so hold the batch open for a
      // bounded window and let concurrent committers pile on. One window
      // per batch — after it, cut whatever accumulated.
      m_pace_waits_->Add(1);
      (void)work_cv_.WaitFor(
          mu_, std::chrono::microseconds(
                   pace_wait_us_.load(std::memory_order_relaxed)));
      if (flusher_stop_) return;
      // A DiscardTail may have arrived (or the tail vanished) meanwhile.
      if (!WantsFlushLocked()) continue;
    }
    m_flusher_wakeups_->Add(1);

    // Cut the batch: everything appended so far moves to flushing_; later
    // appends extend the (now empty) tail buffer and are covered by the
    // next fsync. Batches cut at record boundaries by construction.
    GISTCR_DCHECK(flushing_.empty());
    flushing_ = std::move(buffer_);
    buffer_.clear();
    inflight_records_ = pending_records_;
    inflight_commits_ = pending_commits_;
    pending_records_ = 0;
    pending_commits_ = 0;
    BatchIo io;
    io.fd = fd_;
    io.data = flushing_.data();
    io.size = flushing_.size();
    io.base = buffer_base_;
    io.last = last_lsn_.load(std::memory_order_acquire);
    flush_in_flight_ = true;
    l.Unlock();

    // The I/O section: no mutex held. One pwrite + fdatasync retires every
    // record in the batch — this is the group commit. io.data points into
    // flushing_, which only this thread touches until flush_in_flight_
    // drops (readers may *read* it under mu_; that is race-free).
    Status st;
    uint64_t io_ns = 0;
    {
      GISTCR_TRACE_SCOPE("wal.flush");
      const uint64_t t0 = obs::NowNanos();
      const char* p = io.data;
      size_t remaining = io.size;
      off_t offset = static_cast<off_t>(io.base);
      while (remaining > 0) {
        ssize_t n = ::pwrite(io.fd, p, remaining, offset);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
          st = Status::IOError("pwrite log: " +
                               std::string(std::strerror(errno)));
          break;
        }
        p += n;
        offset += n;
        remaining -= static_cast<size_t>(n);
      }
      if (st.ok()) {
        st = FaultInjector::Global().CheckCrashPoint("wal.before_fsync");
      }
      if (st.ok() && sync_on_flush_.load(std::memory_order_relaxed)) {
        if constexpr (kFaultInjectionCompiled) {
          if (FaultInjector::Global().io_faults_active() &&
              FaultInjector::Global().TakeSyncFailure()) {
            st = Status::IOError("injected log sync failure");
          }
        }
        if (st.ok() && ::fdatasync(io.fd) != 0) {
          st = Status::IOError("fdatasync log");
        }
      }
      if (st.ok()) {
        st = FaultInjector::Global().CheckCrashPoint("wal.after_fsync");
      }
      if (st.ok()) {
        io_ns = obs::NowNanos() - t0;
        m_fsync_ns_->Record(io_ns);
      }
    }

    // Durable fan-out, still outside the mutex: consumers (the MVCC
    // timestamp oracle) learn the batch landed before any Flush waiter
    // wakes, so a commit whose waiter resumes is already stamp-visible.
    if (st.ok() && durable_cb_) durable_cb_(io.last);

    l.Lock();
    flush_in_flight_ = false;
    if (st.ok()) {
      buffer_base_ += flushing_.size();
      flushing_.clear();
      durable_lsn_.store(io.last, std::memory_order_release);
      m_flushes_->Add(1);
      m_batch_records_->Record(inflight_records_);
      if (inflight_commits_ > 0) m_batch_commits_->Record(inflight_commits_);
      m_batch_bytes_->Record(io.size);
      last_flush_ns_ = io_ns;
    } else {
      // Splice the batch back in front of the newer tail so a later flush
      // request retries it; fan the error out to every blocked waiter and
      // drop the outstanding request so a persistent error does not spin
      // the flusher (the next Flush call re-arms it).
      flushing_.append(buffer_);
      buffer_ = std::move(flushing_);
      flushing_.clear();
      pending_records_ += inflight_records_;
      pending_commits_ += inflight_commits_;
      requested_lsn_ = kInvalidLsn;
      last_error_ = st;
      error_gen_++;
      m_flusher_errors_->Add(1);
    }
    inflight_records_ = 0;
    inflight_commits_ = 0;
    durable_cv_.NotifyAll();
  }
}

Status LogManager::Flush(Lsn lsn) {
  Lsn target = lsn == kInvalidLsn ? last_lsn() : lsn;
  if (target == kInvalidLsn) return Status::OK();  // nothing ever appended
  if (durable_lsn_.load(std::memory_order_acquire) >= target) {
    return Status::OK();
  }
  GISTCR_TRACE_SCOPE("wal.flush.wait");
  const uint64_t t0 = obs::NowNanos();
  MutexLock l(mu_);
  GISTCR_CHECK(fd_ >= 0);
  {
    // DiscardTail may have dropped the records we were asked about; never
    // wait for an LSN that no longer exists. A caller naming a specific
    // record gets the same answer a parked waiter gets from the discard's
    // error fan-out: the record is gone and can never become durable.
    // Returning OK here would falsely promise durability for a dropped
    // commit. Only the flush-everything form (lsn == kInvalidLsn) clamps:
    // it asked for "whatever is there", and what's there is the durable
    // prefix.
    const Lsn last = last_lsn_.load(std::memory_order_acquire);
    if (last == kInvalidLsn || target > last) {
      if (lsn != kInvalidLsn) {
        return Status::Aborted("wal: tail discarded before flush");
      }
      if (last == kInvalidLsn) return Status::OK();
      target = last;
    }
  }
  if (requested_lsn_ == kInvalidLsn || target > requested_lsn_) {
    requested_lsn_ = target;
  }
  work_cv_.NotifyOne();
  const uint64_t my_gen = error_gen_;
  while (durable_lsn_.load(std::memory_order_acquire) < target) {
    if (error_gen_ != my_gen) return last_error_;
    if (flusher_stop_) return Status::IOError("wal: log closing");
    durable_cv_.Wait(mu_);
  }
  const uint64_t waited = obs::NowNanos() - t0;
  m_flush_wait_ns_->Record(waited);
  // Stage attribution: the covering batch's write+fsync duration is the
  // part of the wait that was genuinely disk sync; the rest is group-commit
  // queueing. last_flush_ns_ was just set by the flush that released us.
  const uint64_t fsync_share = std::min(last_flush_ns_, waited);
  obs::AddStage(obs::Stage::kFsync, fsync_share);
  obs::AddStage(obs::Stage::kWalWait, waited - fsync_share);
  return Status::OK();
}

Status LogManager::ReadBufferedLocked(Lsn lsn, LogRecord* rec) {
  // [buffer_base_, buffer_base_ + flushing_.size()) lives in flushing_
  // (the in-flight batch); everything beyond lives in buffer_. Batches are
  // cut at record boundaries, so a record never spans the two.
  const Lsn flushing_end = buffer_base_ + flushing_.size();
  const std::string* src;
  Lsn off;
  if (lsn < flushing_end) {
    src = &flushing_;
    off = lsn - buffer_base_;
  } else {
    src = &buffer_;
    off = lsn - flushing_end;
  }
  if (off >= src->size()) {
    return Status::NotFound("lsn beyond log end");
  }
  uint32_t consumed;
  GISTCR_RETURN_IF_ERROR(rec->DecodeFrom(
      Slice(src->data() + off, src->size() - off), &consumed));
  rec->lsn = lsn;
  return Status::OK();
}

Status LogManager::ReadRecord(Lsn lsn, LogRecord* rec) {
  MutexLock l(mu_);
  GISTCR_CHECK(fd_ >= 0);
  if (lsn >= buffer_base_) {
    return ReadBufferedLocked(lsn, rec);
  }
  // Durable region: read the header first to size the record.
  char header[LogRecord::kHeaderSize];
  ssize_t n = ::pread(fd_, header, sizeof(header), static_cast<off_t>(lsn));
  if (n != static_cast<ssize_t>(sizeof(header))) {
    return Status::NotFound("lsn beyond durable log");
  }
  const uint32_t total = DecodeFixed32(header);
  if (total < LogRecord::kHeaderSize || total > (64u << 20)) {
    return Status::Corruption("log record: implausible length");
  }
  std::vector<char> buf(total);
  std::memcpy(buf.data(), header, sizeof(header));
  if (total > sizeof(header)) {
    n = ::pread(fd_, buf.data() + sizeof(header), total - sizeof(header),
                static_cast<off_t>(lsn + sizeof(header)));
    if (n != static_cast<ssize_t>(total - sizeof(header))) {
      return Status::Corruption("log record: torn");
    }
  }
  uint32_t consumed;
  GISTCR_RETURN_IF_ERROR(rec->DecodeFrom(Slice(buf.data(), total), &consumed));
  rec->lsn = lsn;
  return Status::OK();
}

Status LogManager::Scan(Lsn from,
                        const std::function<bool(const LogRecord&)>& fn) {
  Lsn lsn = from == kInvalidLsn ? kFirstLsn : from;
  for (;;) {
    LogRecord rec;
    Status st = ReadRecord(lsn, &rec);
    if (st.IsNotFound()) break;           // clean end of log
    if (st.IsCorruption()) break;         // torn tail after a crash
    GISTCR_RETURN_IF_ERROR(st);
    {
      // Keep last_lsn_ monotone through recovery scans.
      Lsn cur = last_lsn_.load(std::memory_order_acquire);
      while (cur < rec.lsn &&
             !last_lsn_.compare_exchange_weak(cur, rec.lsn)) {
      }
    }
    if (!fn(rec)) break;
    lsn += rec.SerializedSize();
  }
  return Status::OK();
}

Status LogManager::ScanRange(Lsn from, Lsn upto,
                             const std::function<bool(const LogRecord&)>& fn) {
  if (upto == kInvalidLsn) return Scan(from, fn);
  return Scan(from, [&](const LogRecord& rec) {
    if (rec.lsn > upto) return false;
    return fn(rec);
  });
}

uint64_t LogManager::TotalBytes() const {
  MutexLock l(mu_);
  return buffer_base_ + flushing_.size() + buffer_.size() - kFirstLsn;
}

LogManager::FlusherStats LogManager::GetFlusherStats() const {
  MutexLock l(mu_);
  FlusherStats s;
  s.tail_bytes = buffer_.size();
  s.inflight_bytes = flushing_.size();
  s.pending_records = pending_records_;
  s.pending_commits = pending_commits_;
  s.flush_in_flight = flush_in_flight_;
  s.last_flush_ns = last_flush_ns_;
  s.durable_lsn = durable_lsn_.load(std::memory_order_acquire);
  s.last_lsn = last_lsn_.load(std::memory_order_acquire);
  return s;
}

StatusOr<uint64_t> LogManager::ReclaimBefore(Lsn lsn) {
  MutexLock l(mu_);
  GISTCR_CHECK(fd_ >= 0);
  // Never touch the magic header, the unflushed tail, or already-reclaimed
  // space; punch only whole 4 KiB blocks so the filesystem can free them.
  constexpr uint64_t kBlock = 4096;
  const Lsn already = reclaimed_before_.load(std::memory_order_acquire);
  Lsn limit = std::min<Lsn>(lsn, buffer_base_);
  const uint64_t start = ((already + kBlock - 1) / kBlock) * kBlock;
  const uint64_t end = (limit / kBlock) * kBlock;
  if (end <= start) return static_cast<uint64_t>(0);
#ifdef FALLOC_FL_PUNCH_HOLE
  if (::fallocate(fd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                  static_cast<off_t>(start),
                  static_cast<off_t>(end - start)) != 0) {
    return static_cast<uint64_t>(0);  // unsupported filesystem: best effort
  }
  reclaimed_before_.store(end, std::memory_order_release);
  return end - start;
#else
  return static_cast<uint64_t>(0);
#endif
}

void LogManager::DiscardTail() {
  MutexLock l(mu_);
  // A batch the flusher already handed to the kernel may still land — a
  // power cut can persist a write that was in flight. Let it settle so the
  // durable prefix is well-defined, then drop everything after it.
  // discard_waiters_ keeps the flusher from cutting the next batch while
  // we wait (WantsFlushLocked), otherwise continuous committers keep
  // flush_in_flight_ true forever and this wait livelocks.
  discard_waiters_++;
  while (flush_in_flight_) durable_cv_.Wait(mu_);
  discard_waiters_--;
  buffer_.clear();
  pending_records_ = 0;
  pending_commits_ = 0;
  next_lsn_ = buffer_base_;
  last_lsn_.store(durable_lsn_.load(std::memory_order_acquire),
                  std::memory_order_release);
  if (requested_lsn_ != kInvalidLsn) {
    // Waiters whose records were just discarded can never be satisfied;
    // fail them out exactly like a flush error.
    requested_lsn_ = kInvalidLsn;
    last_error_ = Status::Aborted("wal: tail discarded before flush");
    error_gen_++;
    durable_cv_.NotifyAll();
  }
}

}  // namespace gistcr
