#include "wal/log_manager.h"

#include <fcntl.h>
#include <linux/falloc.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "obs/trace.h"
#include "storage/fault_injector.h"
#include "util/coding.h"

namespace gistcr {

namespace {
constexpr char kMagic[8] = {'G', 'I', 'S', 'T', 'W', 'A', 'L', '1'};
}  // namespace

LogManager::LogManager() { AttachMetrics(nullptr); }

LogManager::~LogManager() { Close(); }

void LogManager::AttachMetrics(obs::MetricsRegistry* reg) {
  reg = obs::MetricsRegistry::OrFallback(reg);
  m_appends_ = reg->GetCounter("wal.appends");
  m_append_bytes_ = reg->GetCounter("wal.append_bytes");
  m_flushes_ = reg->GetCounter("wal.flushes");
  m_fsync_ns_ = reg->GetHistogram("wal.fsync_ns");
  m_batch_records_ = reg->GetHistogram("wal.group_commit_records");
}

Status LogManager::Open(const std::string& path) {
  GISTCR_CHECK(fd_ < 0);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  path_ = path;

  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size == 0) {
    if (::write(fd_, kMagic, sizeof(kMagic)) != sizeof(kMagic)) {
      return Status::IOError("write log magic");
    }
    if (::fdatasync(fd_) != 0) return Status::IOError("fdatasync");
    size = sizeof(kMagic);
  } else {
    char magic[8];
    if (::pread(fd_, magic, 8, 0) != 8 ||
        std::memcmp(magic, kMagic, 8) != 0) {
      return Status::Corruption("bad log magic in " + path);
    }
  }
  buffer_base_ = static_cast<Lsn>(size);
  next_lsn_ = buffer_base_;
  durable_lsn_.store(buffer_base_ > kFirstLsn ? buffer_base_ - 1 : kInvalidLsn,
                     std::memory_order_release);
  // last_lsn_ is refined by Scan during recovery; a conservative value (the
  // end of the durable log) is fine for NSN purposes because it only has to
  // be >= every NSN already assigned.
  last_lsn_.store(buffer_base_ > kFirstLsn ? buffer_base_ - 1 : kInvalidLsn,
                  std::memory_order_release);
  return Status::OK();
}

void LogManager::Close() {
  MutexLock l(mu_);
  if (fd_ >= 0) {
    // Best-effort: shutdown cannot do anything with a flush failure, and
    // recovery tolerates a truncated tail.
    (void)FlushLocked();
    ::close(fd_);
    fd_ = -1;
  }
}

Status LogManager::Append(LogRecord* rec) {
  MutexLock l(mu_);
  GISTCR_CHECK(fd_ >= 0);
  rec->lsn = next_lsn_;
  rec->EncodeTo(&buffer_);
  next_lsn_ += rec->SerializedSize();
  last_lsn_.store(rec->lsn, std::memory_order_release);
  m_appends_->Add(1);
  m_append_bytes_->Add(rec->SerializedSize());
  pending_records_++;
  return Status::OK();
}

Status LogManager::FlushLocked() {
  if (buffer_.empty()) return Status::OK();
  GISTCR_TRACE_SCOPE("wal.flush");
  // One flush covers every record appended before it (group commit); the
  // histogram of records-per-flush is the batch-size distribution, and the
  // flush duration is the durability-path latency (pwrite + fdatasync when
  // sync_on_flush is set; pwrite only otherwise).
  const uint64_t t0 = obs::NowNanos();
  const char* p = buffer_.data();
  size_t remaining = buffer_.size();
  off_t offset = static_cast<off_t>(buffer_base_);
  while (remaining > 0) {
    ssize_t n = ::pwrite(fd_, p, remaining, offset);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IOError("pwrite log: " + std::string(std::strerror(errno)));
    }
    p += n;
    offset += n;
    remaining -= static_cast<size_t>(n);
  }
  GISTCR_CRASHPOINT("wal.before_fsync");
  if (sync_on_flush_.load(std::memory_order_relaxed)) {
    if constexpr (kFaultInjectionCompiled) {
      if (FaultInjector::Global().io_faults_active() &&
          FaultInjector::Global().TakeSyncFailure()) {
        return Status::IOError("injected log sync failure");
      }
    }
    if (::fdatasync(fd_) != 0) {
      return Status::IOError("fdatasync log");
    }
  }
  GISTCR_CRASHPOINT("wal.after_fsync");
  buffer_base_ += buffer_.size();
  buffer_.clear();
  durable_lsn_.store(last_lsn_.load(std::memory_order_acquire),
                     std::memory_order_release);
  m_fsync_ns_->Record(obs::NowNanos() - t0);
  m_batch_records_->Record(pending_records_);
  pending_records_ = 0;
  m_flushes_->Add(1);
  return Status::OK();
}

Status LogManager::Flush(Lsn lsn) {
  if (lsn != kInvalidLsn &&
      durable_lsn_.load(std::memory_order_acquire) >= lsn) {
    return Status::OK();
  }
  MutexLock l(mu_);
  return FlushLocked();
}

Status LogManager::ReadRecord(Lsn lsn, LogRecord* rec) {
  MutexLock l(mu_);
  GISTCR_CHECK(fd_ >= 0);
  if (lsn >= buffer_base_) {
    const Lsn off = lsn - buffer_base_;
    if (off >= buffer_.size()) {
      return Status::NotFound("lsn beyond log end");
    }
    uint32_t consumed;
    GISTCR_RETURN_IF_ERROR(rec->DecodeFrom(
        Slice(buffer_.data() + off, buffer_.size() - off), &consumed));
    rec->lsn = lsn;
    return Status::OK();
  }
  // Durable region: read the header first to size the record.
  char header[LogRecord::kHeaderSize];
  ssize_t n = ::pread(fd_, header, sizeof(header), static_cast<off_t>(lsn));
  if (n != static_cast<ssize_t>(sizeof(header))) {
    return Status::NotFound("lsn beyond durable log");
  }
  const uint32_t total = DecodeFixed32(header);
  if (total < LogRecord::kHeaderSize || total > (64u << 20)) {
    return Status::Corruption("log record: implausible length");
  }
  std::vector<char> buf(total);
  std::memcpy(buf.data(), header, sizeof(header));
  if (total > sizeof(header)) {
    n = ::pread(fd_, buf.data() + sizeof(header), total - sizeof(header),
                static_cast<off_t>(lsn + sizeof(header)));
    if (n != static_cast<ssize_t>(total - sizeof(header))) {
      return Status::Corruption("log record: torn");
    }
  }
  uint32_t consumed;
  GISTCR_RETURN_IF_ERROR(rec->DecodeFrom(Slice(buf.data(), total), &consumed));
  rec->lsn = lsn;
  return Status::OK();
}

Status LogManager::Scan(Lsn from,
                        const std::function<bool(const LogRecord&)>& fn) {
  Lsn lsn = from == kInvalidLsn ? kFirstLsn : from;
  for (;;) {
    LogRecord rec;
    Status st = ReadRecord(lsn, &rec);
    if (st.IsNotFound()) break;           // clean end of log
    if (st.IsCorruption()) break;         // torn tail after a crash
    GISTCR_RETURN_IF_ERROR(st);
    {
      // Keep last_lsn_ monotone through recovery scans.
      Lsn cur = last_lsn_.load(std::memory_order_acquire);
      while (cur < rec.lsn &&
             !last_lsn_.compare_exchange_weak(cur, rec.lsn)) {
      }
    }
    if (!fn(rec)) break;
    lsn += rec.SerializedSize();
  }
  return Status::OK();
}

uint64_t LogManager::TotalBytes() const {
  MutexLock l(mu_);
  return buffer_base_ + buffer_.size() - kFirstLsn;
}

StatusOr<uint64_t> LogManager::ReclaimBefore(Lsn lsn) {
  MutexLock l(mu_);
  GISTCR_CHECK(fd_ >= 0);
  // Never touch the magic header, the unflushed tail, or already-reclaimed
  // space; punch only whole 4 KiB blocks so the filesystem can free them.
  constexpr uint64_t kBlock = 4096;
  const Lsn already = reclaimed_before_.load(std::memory_order_acquire);
  Lsn limit = std::min<Lsn>(lsn, buffer_base_);
  const uint64_t start = ((already + kBlock - 1) / kBlock) * kBlock;
  const uint64_t end = (limit / kBlock) * kBlock;
  if (end <= start) return static_cast<uint64_t>(0);
#ifdef FALLOC_FL_PUNCH_HOLE
  if (::fallocate(fd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                  static_cast<off_t>(start),
                  static_cast<off_t>(end - start)) != 0) {
    return static_cast<uint64_t>(0);  // unsupported filesystem: best effort
  }
  reclaimed_before_.store(end, std::memory_order_release);
  return end - start;
#else
  return static_cast<uint64_t>(0);
#endif
}

void LogManager::DiscardTail() {
  MutexLock l(mu_);
  buffer_.clear();
  pending_records_ = 0;
  next_lsn_ = buffer_base_;
  last_lsn_.store(durable_lsn_.load(std::memory_order_acquire),
                  std::memory_order_release);
}

}  // namespace gistcr
