#ifndef GISTCR_WAL_LOG_PAYLOADS_H_
#define GISTCR_WAL_LOG_PAYLOADS_H_

#include <string>
#include <vector>

#include "common/entry.h"
#include "common/types.h"
#include "util/coding.h"
#include "wal/log_record.h"

namespace gistcr {

/// Typed payloads for every log record in Table 1 plus the substrate
/// records. Each struct encodes to / decodes from the opaque
/// LogRecord::payload blob. Decode returns false on malformed input.

/// Redo-only (paper Table 1 row 1): new BP installed in the child node and
/// in the child's slot on the parent.
struct ParentEntryUpdatePayload {
  PageId child_page = kInvalidPageId;
  PageId parent_page = kInvalidPageId;
  uint64_t child_value = 0;  ///< Parent entry identified by child pointer.
  std::string new_bp;

  void EncodeTo(std::string* dst) const {
    PutFixed32(dst, child_page);
    PutFixed32(dst, parent_page);
    PutFixed64(dst, child_value);
    PutLengthPrefixed(dst, new_bp);
  }
  bool DecodeFrom(Slice s) {
    Decoder d(s);
    return d.GetFixed32(&child_page) && d.GetFixed32(&parent_page) &&
           d.GetFixed64(&child_value) && d.GetLengthPrefixed(&new_bp);
  }
};

/// Paper Table 1 row 2. Carries everything needed to redo both pages and to
/// undo the original page (the new page is reclaimed by Get-Page undo).
struct SplitPayload {
  PageId orig_page = kInvalidPageId;
  PageId new_page = kInvalidPageId;
  uint16_t level = 0;
  Nsn old_nsn = 0;  ///< NSN of orig before the split (inherited by new page).
  Nsn new_nsn = 0;  ///< NSN assigned to orig by the split.
  PageId old_rightlink = kInvalidPageId;  ///< Inherited by the new page.
  std::vector<IndexEntry> moved;          ///< Entries moved to the new page.
  std::string orig_bp_before;
  std::string orig_bp_after;
  std::string new_bp;

  void EncodeTo(std::string* dst) const {
    PutFixed32(dst, orig_page);
    PutFixed32(dst, new_page);
    PutFixed16(dst, level);
    PutFixed64(dst, old_nsn);
    PutFixed64(dst, new_nsn);
    PutFixed32(dst, old_rightlink);
    EncodeEntryList(dst, moved);
    PutLengthPrefixed(dst, orig_bp_before);
    PutLengthPrefixed(dst, orig_bp_after);
    PutLengthPrefixed(dst, new_bp);
  }
  bool DecodeFrom(Slice s) {
    Decoder d(s);
    return d.GetFixed32(&orig_page) && d.GetFixed32(&new_page) &&
           d.GetFixed16(&level) && d.GetFixed64(&old_nsn) &&
           d.GetFixed64(&new_nsn) && d.GetFixed32(&old_rightlink) &&
           DecodeEntryList(&d, &moved) &&
           d.GetLengthPrefixed(&orig_bp_before) &&
           d.GetLengthPrefixed(&orig_bp_after) && d.GetLengthPrefixed(&new_bp);
  }
};

/// Paper Table 1 row 3 (redo-only). Entries removed from a leaf because
/// their deleting transactions committed.
struct GarbageCollectionPayload {
  PageId page = kInvalidPageId;
  std::vector<IndexEntry> removed;

  void EncodeTo(std::string* dst) const {
    PutFixed32(dst, page);
    EncodeEntryList(dst, removed);
  }
  bool DecodeFrom(Slice s) {
    Decoder d(s);
    return d.GetFixed32(&page) && DecodeEntryList(&d, &removed);
  }
};

/// Rows 4-6 and 7-8 share one shape: a page and an entry. For internal
/// entries the entry's value (child pointer) identifies the slot; for leaf
/// entries (key, value=rid) identifies it. `nsn` is the node's NSN at the
/// time of a leaf operation — logical undo starts its rightlink traversal
/// from it (paper section 9.2).
struct EntryOpPayload {
  PageId page = kInvalidPageId;
  Nsn nsn = 0;
  IndexEntry entry;
  std::string old_bp;  ///< kInternalEntryUpdate only: previous predicate.

  void EncodeTo(std::string* dst) const {
    PutFixed32(dst, page);
    PutFixed64(dst, nsn);
    entry.EncodeTo(dst);
    PutLengthPrefixed(dst, old_bp);
  }
  bool DecodeFrom(Slice s) {
    Decoder d(s);
    return d.GetFixed32(&page) && d.GetFixed64(&nsn) &&
           entry.DecodeFrom(&d) && d.GetLengthPrefixed(&old_bp);
  }
};

/// Rows 9-10: page allocation state. The bit lives on an allocation bitmap
/// page; the page-LSN test applies to that bitmap page.
struct PageAllocPayload {
  PageId target_page = kInvalidPageId;
  PageId bitmap_page = kInvalidPageId;

  void EncodeTo(std::string* dst) const {
    PutFixed32(dst, target_page);
    PutFixed32(dst, bitmap_page);
  }
  bool DecodeFrom(Slice s) {
    Decoder d(s);
    return d.GetFixed32(&target_page) && d.GetFixed32(&bitmap_page);
  }
};

/// Node deletion: the left sibling's rightlink is redirected around the
/// victim node.
struct RightlinkUpdatePayload {
  PageId page = kInvalidPageId;
  PageId old_rightlink = kInvalidPageId;
  PageId new_rightlink = kInvalidPageId;

  void EncodeTo(std::string* dst) const {
    PutFixed32(dst, page);
    PutFixed32(dst, old_rightlink);
    PutFixed32(dst, new_rightlink);
  }
  bool DecodeFrom(Slice s) {
    Decoder d(s);
    return d.GetFixed32(&page) && d.GetFixed32(&old_rightlink) &&
           d.GetFixed32(&new_rightlink);
  }
};

/// Root growth (B-link style upward root split): a new root is created
/// holding entries for the old root and its fresh sibling, and the meta
/// page's root pointer moves up. One record covers both pages:
///   redo on meta page:  set root pointer to new_root;
///   redo on new_root:   format a node at new_root_level, insert
///                       root_entries, set root_bp;
///   undo on meta page:  restore old_root (the new root page itself is
///                       reclaimed by the preceding Get-Page's undo).
struct RootChangePayload {
  PageId meta_page = 0;
  uint32_t index_id = 0;
  PageId old_root = kInvalidPageId;
  PageId new_root = kInvalidPageId;
  uint16_t new_root_level = 0;
  std::vector<IndexEntry> root_entries;
  std::string root_bp;

  void EncodeTo(std::string* dst) const {
    PutFixed32(dst, meta_page);
    PutFixed32(dst, index_id);
    PutFixed32(dst, old_root);
    PutFixed32(dst, new_root);
    PutFixed16(dst, new_root_level);
    EncodeEntryList(dst, root_entries);
    PutLengthPrefixed(dst, root_bp);
  }
  bool DecodeFrom(Slice s) {
    Decoder d(s);
    return d.GetFixed32(&meta_page) && d.GetFixed32(&index_id) &&
           d.GetFixed32(&old_root) && d.GetFixed32(&new_root) &&
           d.GetFixed16(&new_root_level) &&
           DecodeEntryList(&d, &root_entries) &&
           d.GetLengthPrefixed(&root_bp);
  }
};

/// Heap data-store operations. Deletes are tombstone marks (undo unmarks).
struct HeapOpPayload {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;
  std::string record;  ///< kHeapInsert only.

  void EncodeTo(std::string* dst) const {
    PutFixed32(dst, page);
    PutFixed16(dst, slot);
    PutLengthPrefixed(dst, record);
  }
  bool DecodeFrom(Slice s) {
    Decoder d(s);
    return d.GetFixed32(&page) && d.GetFixed16(&slot) &&
           d.GetLengthPrefixed(&record);
  }
};

/// Compensation record: redoing the CLR re-applies the *undo* action of the
/// compensated record type. `override_page` carries the page where a
/// logical undo actually found the leaf entry (it may have migrated right
/// since the original operation).
struct ClrPayload {
  LogRecordType compensated_type = LogRecordType::kInvalid;
  PageId override_page = kInvalidPageId;
  std::string original;  ///< The compensated record's payload blob.

  void EncodeTo(std::string* dst) const {
    dst->push_back(static_cast<char>(compensated_type));
    PutFixed32(dst, override_page);
    PutLengthPrefixed(dst, original);
  }
  bool DecodeFrom(Slice s) {
    if (s.size() < 1) return false;
    compensated_type = static_cast<LogRecordType>(static_cast<uint8_t>(s[0]));
    Decoder d(Slice(s.data() + 1, s.size() - 1));
    return d.GetFixed32(&override_page) && d.GetLengthPrefixed(&original);
  }
};

/// Fuzzy checkpoint: active transaction table + dirty page table.
struct CheckpointPayload {
  struct TxnEntry {
    TxnId txn_id;
    Lsn last_lsn;
  };
  struct DptEntry {
    PageId page_id;
    Lsn rec_lsn;
  };
  std::vector<TxnEntry> active_txns;
  std::vector<DptEntry> dirty_pages;
  TxnId next_txn_id = 1;
  /// Dedicated-counter NSN mode: counter value at checkpoint time, so the
  /// counter is recoverable (the LSN mode needs nothing, section 10.1).
  Nsn nsn_counter = 0;
  /// Heap-chain tail at checkpoint time. Instant restart combines this
  /// with the Rightlink-Update records after the checkpoint to compute
  /// the recovered tail from the log alone, so opening the data store
  /// does not have to walk (and therefore redo) the whole heap chain.
  PageId heap_tail = kInvalidPageId;

  void EncodeTo(std::string* dst) const {
    PutFixed64(dst, nsn_counter);
    PutFixed64(dst, next_txn_id);
    PutFixed32(dst, static_cast<uint32_t>(active_txns.size()));
    for (const auto& t : active_txns) {
      PutFixed64(dst, t.txn_id);
      PutFixed64(dst, t.last_lsn);
    }
    PutFixed32(dst, static_cast<uint32_t>(dirty_pages.size()));
    for (const auto& p : dirty_pages) {
      PutFixed32(dst, p.page_id);
      PutFixed64(dst, p.rec_lsn);
    }
    PutFixed32(dst, heap_tail);
  }
  bool DecodeFrom(Slice s) {
    Decoder d(s);
    uint32_t n;
    if (!d.GetFixed64(&nsn_counter)) return false;
    if (!d.GetFixed64(&next_txn_id)) return false;
    if (!d.GetFixed32(&n)) return false;
    active_txns.clear();
    for (uint32_t i = 0; i < n; i++) {
      TxnEntry t;
      if (!d.GetFixed64(&t.txn_id) || !d.GetFixed64(&t.last_lsn)) return false;
      active_txns.push_back(t);
    }
    if (!d.GetFixed32(&n)) return false;
    dirty_pages.clear();
    for (uint32_t i = 0; i < n; i++) {
      DptEntry p;
      if (!d.GetFixed32(&p.page_id) || !d.GetFixed64(&p.rec_lsn)) return false;
      dirty_pages.push_back(p);
    }
    // Absent in records written before the field existed: treat as "no
    // hint" (instant restart then falls back to walking the chain).
    if (!d.GetFixed32(&heap_tail)) heap_tail = kInvalidPageId;
    return true;
  }
};

}  // namespace gistcr

#endif  // GISTCR_WAL_LOG_PAYLOADS_H_
