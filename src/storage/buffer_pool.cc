#include "storage/buffer_pool.h"

#include <cstring>

#include "obs/trace.h"
#include "storage/fault_injector.h"

namespace gistcr {

namespace {

/// Auto shard count: shard only pools big enough that each shard keeps at
/// least 128 frames, capped at 16. Small test pools (64-128 pages) stay
/// single-sharded, preserving their eviction-pressure margins; production
/// pools (thousands of pages) get the full fan-out.
size_t AutoShards(size_t num_frames) {
  size_t s = 1;
  while (s < 16 && num_frames / (s * 2) >= 128) s *= 2;
  return s;
}

}  // namespace

bool Frame::SnapshotPage(char* dst, uint64_t* version,
                         SnapshotBoundsFn bounds) const {
  const uint64_t v1 = version_.load(std::memory_order_acquire);
  if ((v1 & 1) != 0) return false;  // writer in progress
  // Seqlock copy: deliberately racy against a concurrent writer; the
  // re-validation below discards any torn copy. TSan cannot model this
  // idiom — see the scoped `race:` suppression in tsan.suppressions. The
  // bounds callback's reads of the live page are part of the same racy
  // window: if the trailing version check passes, both the sizing reads
  // and the copied bytes saw the single consistent image published before
  // v1 — a torn size can only produce a copy that fails validation, and
  // the callback contract clamps it to the page so the copy stays in
  // bounds meanwhile.
  uint32_t head_len = kPageSize;
  uint32_t tail_begin = kPageSize;
  if (bounds != nullptr) {
    bounds(data_, &head_len, &tail_begin);
    if (head_len > kPageSize) head_len = kPageSize;
    if (tail_begin > kPageSize) tail_begin = kPageSize;
  }
  std::memcpy(dst, data_, head_len);
  if (tail_begin < kPageSize) {
    std::memcpy(dst + tail_begin, data_ + tail_begin, kPageSize - tail_begin);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (version_.load(std::memory_order_acquire) != v1) return false;
  *version = v1;
  return true;
}

BufferPool::BufferPool(DiskManager* disk, size_t num_frames,
                       WalFlushFn wal_flush, size_t num_shards)
    : disk_(disk), wal_flush_(std::move(wal_flush)) {
  GISTCR_CHECK(num_frames > 0);
  if (num_shards == 0) num_shards = AutoShards(num_frames);
  GISTCR_CHECK(num_shards <= num_frames);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; i++) {
    shards_.push_back(std::make_unique<Shard>());
  }
  arena_.reset(new char[num_frames * kPageSize]);
  frames_.reserve(num_frames);
  for (size_t i = 0; i < num_frames; i++) {
    auto f = std::make_unique<Frame>();
    f->data_ = arena_.get() + i * kPageSize;
    Shard& s = *shards_[i % num_shards];
    f->shard_mu_ = &s.mu;
    s.frames.push_back(f.get());
    frames_.push_back(std::move(f));
  }
  AttachMetrics(nullptr);
}

void BufferPool::AttachMetrics(obs::MetricsRegistry* reg) {
  reg = obs::MetricsRegistry::OrFallback(reg);
  m_hits_ = reg->GetCounter("bp.hits");
  m_misses_ = reg->GetCounter("bp.misses");
  m_evictions_ = reg->GetCounter("bp.evictions");
  m_dirty_evictions_ = reg->GetCounter("bp.dirty_evictions");
  m_flushes_ = reg->GetCounter("bp.flushes");
  m_pin_wait_ns_ = reg->GetHistogram("bp.pin_wait_ns");
  reg->GetGauge("bp.shards")->Set(static_cast<int64_t>(shards_.size()));
  for (size_t i = 0; i < shards_.size(); i++) {
    shards_[i]->m_evictions =
        reg->GetCounter("bp.shard." + std::to_string(i) + ".evictions");
  }
}

BufferPool::~BufferPool() = default;

BufferPool::Shard& BufferPool::ShardOf(PageId page_id) {
  // Fibonacci hashing: sequential page ids (the common allocation pattern)
  // spread evenly across shards instead of striding.
  const uint64_t h =
      static_cast<uint64_t>(page_id) * 0x9E3779B97F4A7C15ull;
  return *shards_[(h >> 32) % shards_.size()];
}

Frame* BufferPool::FindVictimLocked(Shard& s) {
  // CLOCK: up to two sweeps; the first sweep clears reference bits.
  const size_t n = s.frames.size();
  for (size_t step = 0; step < 2 * n; step++) {
    Frame* f = s.frames[s.clock_hand];
    s.clock_hand = (s.clock_hand + 1) % n;
    f->AssertShardMutexHeld();
    if (f->pin_count_ != 0 || f->state_ != Frame::State::kReady) continue;
    if (f->ref_) {
      f->ref_ = false;
      continue;
    }
    return f;
  }
  return nullptr;
}

StatusOr<Frame*> BufferPool::FetchInternal(PageId page_id, bool fresh) {
  Shard& s = ShardOf(page_id);
  MutexLock l(s.mu);
  uint64_t busy_wait_ns = 0;  // time spent parked on in-flight I/O
  for (;;) {
    auto it = s.table.find(page_id);
    if (it != s.table.end()) {
      Frame* f = it->second;
      f->AssertShardMutexHeld();
      if (f->state_ == Frame::State::kBusy) {
        const uint64_t t0 = obs::NowNanos();
        s.cv.Wait(s.mu);
        busy_wait_ns += obs::NowNanos() - t0;
        continue;
      }
      f->pin_count_++;
      f->ref_ = true;
      if (fresh) {
        // Stale cached copy of a previously freed page: caller reformats.
        // The version passes through an odd value so any optimistic reader
        // still pinned to the old incarnation fails validation.
        f->BeginWrite();
        std::memset(f->data_, 0, kPageSize);
        f->EndWrite();
      } else {
        m_hits_->Add(1);
      }
      if (busy_wait_ns != 0) m_pin_wait_ns_->Record(busy_wait_ns);
      return f;
    }
    Frame* victim = FindVictimLocked(s);
    if (victim == nullptr) {
      return Status::NoSpace("buffer pool: all frames in shard pinned");
    }
    victim->AssertShardMutexHeld();
    const PageId old_pid = victim->page_id_;
    const bool was_dirty = victim->dirty();
    if (old_pid != kInvalidPageId) {
      // A dirty victim keeps its table entry (pointing at the now-Busy
      // frame) until the eviction write lands: a concurrent Fetch of
      // old_pid must park on the cv rather than miss and re-read the
      // page from disk while the write is still in flight — that read
      // returns the stale pre-write image, which would then shadow the
      // real page for the rest of the run. (old_pid hashes to this same
      // shard: it entered the table through it.)
      if (!was_dirty) s.table.erase(old_pid);
      m_evictions_->Add(1);
      s.m_evictions->Add(1);
      if (was_dirty) m_dirty_evictions_->Add(1);
    }
    if (!fresh) m_misses_->Add(1);
    victim->state_ = Frame::State::kBusy;
    victim->page_id_ = page_id;
    victim->ref_ = true;
    victim->pin_count_ = 1;
    // Park the version on an odd value for the duration of the fill. No
    // thread can pin the frame while it is Busy (so no snapshot is
    // possible), but the odd value makes that hold structurally, not just
    // by the pin protocol.
    victim->version_.store(1, std::memory_order_release);
    s.table[page_id] = victim;
    l.Unlock();

    // No pins and no table entry: we have exclusive use of the frame. No
    // shard mutex is held across the I/O.
    Status st;
    {
      GISTCR_TRACE_SCOPE("bp.io");
      if (was_dirty) {
        // WAL rule: force the log up to the victim's page_lsn before the
        // data page reaches disk.
        const Lsn page_lsn = PageView(victim->data_).page_lsn();
        if (wal_flush_) st = wal_flush_(page_lsn);
        // The frame is Busy and table-entered, so this must feed the error
        // cleanup below rather than early-return.
        if constexpr (kFaultInjectionCompiled) {
          if (st.ok()) {
            st = FaultInjector::Global().CheckCrashPoint(
                "bp.before_evict_write");
          }
        }
        if (st.ok()) st = disk_->WritePage(old_pid, victim->data_);
      }
      victim->ClearDirty();
      if (st.ok()) {
        if (fresh) {
          std::memset(victim->data_, 0, kPageSize);
        } else {
          st = disk_->ReadPage(page_id, victim->data_);
        }
      }
      if (st.ok()) {
        // Seed the seqlock word from the on-disk page_lsn (section 10.1:
        // the LSN doubles as the page's version). Shifted left to keep it
        // even = no writer; a fresh page seeds at 0 and advances when the
        // caller formats it under the X latch.
        const Lsn page_lsn = PageView(victim->data_).page_lsn();
        victim->version_.store(static_cast<uint64_t>(page_lsn) << 1,
                               std::memory_order_release);
      }
    }

    l.Lock();
    if (was_dirty && old_pid != kInvalidPageId) s.table.erase(old_pid);
    victim->state_ = Frame::State::kReady;
    if (!st.ok()) {
      s.table.erase(page_id);
      victim->page_id_ = kInvalidPageId;
      victim->pin_count_ = 0;
      s.cv.NotifyAll();
      return st;
    }
    s.cv.NotifyAll();
    if (busy_wait_ns != 0) m_pin_wait_ns_->Record(busy_wait_ns);
    return victim;
  }
}

StatusOr<Frame*> BufferPool::Fetch(PageId page_id) {
  auto frame_or = FetchInternal(page_id, /*fresh=*/false);
  if (frame_or.ok() &&
      recovery_hook_armed_.load(std::memory_order_acquire)) {
    // Instant restart: the frame is pinned but unlatched and no shard
    // mutex is held, so the hook may replay this page's redo plan
    // (including re-entrant fetches) before the caller sees the frame.
    Status st = recovery_on_fetch_(page_id);
    if (!st.ok()) {
      Unpin(frame_or.value());
      return st;
    }
  }
  return frame_or;
}

StatusOr<Frame*> BufferPool::NewPage(PageId page_id) {
  auto frame_or = FetchInternal(page_id, /*fresh=*/true);
  if (frame_or.ok() &&
      recovery_hook_armed_.load(std::memory_order_acquire)) {
    recovery_on_new_(page_id);
  }
  return frame_or;
}

void BufferPool::Unpin(Frame* frame) {
  MutexLock l(*frame->shard_mu_);
  GISTCR_CHECK(frame->pin_count_ > 0);
  frame->pin_count_--;
}

Status BufferPool::FlushPage(PageId page_id) {
  bool wrote = false;
  return FlushPageInternal(page_id, &wrote);
}

Status BufferPool::FlushPageInternal(PageId page_id, bool* wrote) {
  *wrote = false;
  Shard& s = ShardOf(page_id);
  Frame* frame = nullptr;
  {
    MutexLock l(s.mu);
    for (;;) {
      auto it = s.table.find(page_id);
      // Not resident: nothing to do. This is also the concurrent-eviction
      // case — the evicting thread wrote the page (same WAL rule) before
      // removing the entry, so the flush goal is already met.
      if (it == s.table.end()) return Status::OK();
      frame = it->second;
      frame->AssertShardMutexHeld();
      if (frame->state_ == Frame::State::kBusy) {
        s.cv.Wait(s.mu);
        continue;
      }
      if (!frame->dirty()) return Status::OK();
      frame->pin_count_++;  // keep it resident while we write
      break;
    }
  }
  Status st;
  {
    // Shared latch yields a consistent page image (no concurrent modifier)
    // and makes clearing the dirty flag race-free w.r.t. MarkDirty, which
    // requires the X latch.
    SharedLock sl(frame->latch_);
    GISTCR_TRACE_SCOPE("bp.flush");
    const Lsn page_lsn = frame->view().page_lsn();
    if (wal_flush_) st = wal_flush_(page_lsn);
    if (st.ok()) st = disk_->WritePage(page_id, frame->data_);
    if (st.ok()) {
      frame->ClearDirty();
      m_flushes_->Add(1);
      *wrote = true;
    }
  }
  {
    MutexLock l(s.mu);
    frame->AssertShardMutexHeld();
    frame->pin_count_--;
  }
  return st;
}

Status BufferPool::FlushAll() {
  std::vector<PageId> dirty;
  for (auto& sp : shards_) {
    Shard& s = *sp;
    MutexLock l(s.mu);
    for (auto& [pid, f] : s.table) {
      if (f->dirty()) dirty.push_back(pid);
    }
  }
  for (PageId pid : dirty) {
    // FlushPage no-ops on pages another thread evicted (and therefore
    // wrote) since the scan above — see the header contract.
    GISTCR_RETURN_IF_ERROR(FlushPage(pid));
  }
  return disk_->Sync();
}

StatusOr<size_t> BufferPool::WriteBackSome(size_t per_shard_budget) {
  size_t written = 0;
  for (auto& sp : shards_) {
    Shard& s = *sp;
    std::vector<PageId> targets;
    {
      MutexLock l(s.mu);
      const size_t n = s.frames.size();
      for (size_t i = 0; i < n && targets.size() < per_shard_budget; i++) {
        Frame* f = s.frames[(s.clock_hand + i) % n];
        f->AssertShardMutexHeld();
        if (f->state_ != Frame::State::kReady) continue;
        if (f->page_id_ == kInvalidPageId || !f->dirty()) continue;
        targets.push_back(f->page_id_);
      }
    }
    for (PageId pid : targets) {
      bool wrote = false;
      GISTCR_RETURN_IF_ERROR(FlushPageInternal(pid, &wrote));
      if (wrote) written++;
    }
  }
  return written;
}

void BufferPool::DiscardAll() {
  for (auto& sp : shards_) {
    Shard& s = *sp;
    MutexLock l(s.mu);
    for (Frame* f : s.frames) {
      f->AssertShardMutexHeld();
      GISTCR_CHECK(f->pin_count_ == 0);
      f->page_id_ = kInvalidPageId;
      f->ClearDirty();
      f->ref_ = false;
      f->state_ = Frame::State::kReady;
    }
    s.table.clear();
    s.clock_hand = 0;
  }
}

std::vector<std::pair<PageId, Lsn>> BufferPool::DirtyPageTable() {
  std::vector<std::pair<PageId, Lsn>> out;
  for (auto& sp : shards_) {
    Shard& s = *sp;
    MutexLock l(s.mu);
    for (auto& [pid, f] : s.table) {
      if (f->dirty()) {
        const Lsn rec = f->rec_lsn();
        out.emplace_back(pid, rec == kInvalidLsn ? 0 : rec);
      }
    }
  }
  return out;
}

size_t BufferPool::ResidentCount() {
  size_t total = 0;
  for (auto& sp : shards_) {
    Shard& s = *sp;
    MutexLock l(s.mu);
    total += s.table.size();
  }
  return total;
}

std::vector<BufferPool::ShardStats> BufferPool::ShardOccupancy() {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (auto& sp : shards_) {
    Shard& s = *sp;
    MutexLock l(s.mu);
    ShardStats st;
    st.frames = s.frames.size();
    st.resident = s.table.size();
    st.evictions = s.m_evictions->value();
    for (const auto& [page_id, frame] : s.table) {
      frame->AssertShardMutexHeld();
      if (frame->dirty()) st.dirty++;
      if (frame->pin_count_ > 0) st.pinned++;
    }
    out.push_back(st);
  }
  return out;
}

}  // namespace gistcr
