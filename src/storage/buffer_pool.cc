#include "storage/buffer_pool.h"

#include <cstring>

#include "obs/trace.h"
#include "storage/fault_injector.h"

namespace gistcr {

BufferPool::BufferPool(DiskManager* disk, size_t num_frames,
                       WalFlushFn wal_flush)
    : disk_(disk), wal_flush_(std::move(wal_flush)) {
  GISTCR_CHECK(num_frames > 0);
  arena_.reset(new char[num_frames * kPageSize]);
  frames_.reserve(num_frames);
  for (size_t i = 0; i < num_frames; i++) {
    auto f = std::make_unique<Frame>();
    f->data_ = arena_.get() + i * kPageSize;
    frames_.push_back(std::move(f));
  }
  AttachMetrics(nullptr);
}

void BufferPool::AttachMetrics(obs::MetricsRegistry* reg) {
  reg = obs::MetricsRegistry::OrFallback(reg);
  m_hits_ = reg->GetCounter("bp.hits");
  m_misses_ = reg->GetCounter("bp.misses");
  m_evictions_ = reg->GetCounter("bp.evictions");
  m_flushes_ = reg->GetCounter("bp.flushes");
  m_pin_wait_ns_ = reg->GetHistogram("bp.pin_wait_ns");
}

BufferPool::~BufferPool() = default;

Frame* BufferPool::FindVictimLocked() {
  // CLOCK: up to two sweeps; the first sweep clears reference bits.
  const size_t n = frames_.size();
  for (size_t step = 0; step < 2 * n; step++) {
    Frame* f = frames_[clock_hand_].get();
    clock_hand_ = (clock_hand_ + 1) % n;
    if (f->pin_count_ != 0 || f->state_ != Frame::State::kReady) continue;
    if (f->ref_) {
      f->ref_ = false;
      continue;
    }
    return f;
  }
  return nullptr;
}

StatusOr<Frame*> BufferPool::FetchInternal(PageId page_id, bool fresh) {
  MutexLock l(mu_);
  uint64_t busy_wait_ns = 0;  // time spent parked on in-flight I/O
  for (;;) {
    auto it = table_.find(page_id);
    if (it != table_.end()) {
      Frame* f = it->second;
      if (f->state_ == Frame::State::kBusy) {
        const uint64_t t0 = obs::NowNanos();
        cv_.Wait(mu_);
        busy_wait_ns += obs::NowNanos() - t0;
        continue;
      }
      f->pin_count_++;
      f->ref_ = true;
      if (fresh) {
        // Stale cached copy of a previously freed page: caller reformats.
        std::memset(f->data_, 0, kPageSize);
      } else {
        m_hits_->Add(1);
      }
      if (busy_wait_ns != 0) m_pin_wait_ns_->Record(busy_wait_ns);
      return f;
    }
    Frame* victim = FindVictimLocked();
    if (victim == nullptr) {
      return Status::NoSpace("buffer pool: all frames pinned");
    }
    const PageId old_pid = victim->page_id_;
    const bool was_dirty = victim->dirty();
    if (old_pid != kInvalidPageId) {
      // A dirty victim keeps its table entry (pointing at the now-Busy
      // frame) until the eviction write lands: a concurrent Fetch of
      // old_pid must park on the cv rather than miss and re-read the
      // page from disk while the write is still in flight — that read
      // returns the stale pre-write image, which would then shadow the
      // real page for the rest of the run.
      if (!was_dirty) table_.erase(old_pid);
      m_evictions_->Add(1);
    }
    if (!fresh) m_misses_->Add(1);
    victim->state_ = Frame::State::kBusy;
    victim->page_id_ = page_id;
    victim->ref_ = true;
    victim->pin_count_ = 1;
    table_[page_id] = victim;
    l.Unlock();

    // No pins and no table entry: we have exclusive use of the frame.
    Status st;
    {
      GISTCR_TRACE_SCOPE("bp.io");
      if (was_dirty) {
        // WAL rule: force the log up to the victim's page_lsn before the
        // data page reaches disk.
        const Lsn page_lsn = PageView(victim->data_).page_lsn();
        if (wal_flush_) st = wal_flush_(page_lsn);
        // The frame is Busy and table-entered, so this must feed the error
        // cleanup below rather than early-return.
        if constexpr (kFaultInjectionCompiled) {
          if (st.ok()) {
            st = FaultInjector::Global().CheckCrashPoint(
                "bp.before_evict_write");
          }
        }
        if (st.ok()) st = disk_->WritePage(old_pid, victim->data_);
      }
      victim->ClearDirty();
      if (st.ok()) {
        if (fresh) {
          std::memset(victim->data_, 0, kPageSize);
        } else {
          st = disk_->ReadPage(page_id, victim->data_);
        }
      }
    }

    l.Lock();
    if (was_dirty && old_pid != kInvalidPageId) table_.erase(old_pid);
    victim->state_ = Frame::State::kReady;
    if (!st.ok()) {
      table_.erase(page_id);
      victim->page_id_ = kInvalidPageId;
      victim->pin_count_ = 0;
      cv_.NotifyAll();
      return st;
    }
    cv_.NotifyAll();
    if (busy_wait_ns != 0) m_pin_wait_ns_->Record(busy_wait_ns);
    return victim;
  }
}

StatusOr<Frame*> BufferPool::Fetch(PageId page_id) {
  return FetchInternal(page_id, /*fresh=*/false);
}

StatusOr<Frame*> BufferPool::NewPage(PageId page_id) {
  return FetchInternal(page_id, /*fresh=*/true);
}

void BufferPool::Unpin(Frame* frame) {
  MutexLock l(mu_);
  GISTCR_CHECK(frame->pin_count_ > 0);
  frame->pin_count_--;
}

Status BufferPool::FlushPage(PageId page_id) {
  Frame* frame = nullptr;
  {
    MutexLock l(mu_);
    for (;;) {
      auto it = table_.find(page_id);
      if (it == table_.end()) return Status::OK();
      frame = it->second;
      if (frame->state_ == Frame::State::kBusy) {
        cv_.Wait(mu_);
        continue;
      }
      if (!frame->dirty()) return Status::OK();
      frame->pin_count_++;  // keep it resident while we write
      break;
    }
  }
  Status st;
  {
    // Shared latch yields a consistent page image (no concurrent modifier)
    // and makes clearing the dirty flag race-free w.r.t. MarkDirty, which
    // requires the X latch.
    SharedLock sl(frame->latch_);
    GISTCR_TRACE_SCOPE("bp.flush");
    const Lsn page_lsn = frame->view().page_lsn();
    if (wal_flush_) st = wal_flush_(page_lsn);
    if (st.ok()) st = disk_->WritePage(page_id, frame->data_);
    if (st.ok()) {
      frame->ClearDirty();
      m_flushes_->Add(1);
    }
  }
  {
    MutexLock l(mu_);
    frame->pin_count_--;
  }
  return st;
}

Status BufferPool::FlushAll() {
  std::vector<PageId> dirty;
  {
    MutexLock l(mu_);
    for (auto& [pid, f] : table_) {
      if (f->dirty()) dirty.push_back(pid);
    }
  }
  for (PageId pid : dirty) {
    GISTCR_RETURN_IF_ERROR(FlushPage(pid));
  }
  return disk_->Sync();
}

void BufferPool::DiscardAll() {
  MutexLock l(mu_);
  for (auto& f : frames_) {
    GISTCR_CHECK(f->pin_count_ == 0);
    f->page_id_ = kInvalidPageId;
    f->ClearDirty();
    f->ref_ = false;
    f->state_ = Frame::State::kReady;
  }
  table_.clear();
  clock_hand_ = 0;
}

std::vector<std::pair<PageId, Lsn>> BufferPool::DirtyPageTable() {
  MutexLock l(mu_);
  std::vector<std::pair<PageId, Lsn>> out;
  for (auto& [pid, f] : table_) {
    if (f->dirty()) {
      const Lsn rec = f->rec_lsn();
      out.emplace_back(pid, rec == kInvalidLsn ? 0 : rec);
    }
  }
  return out;
}

size_t BufferPool::ResidentCount() {
  MutexLock l(mu_);
  return table_.size();
}

}  // namespace gistcr
