#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gistcr {

DiskManager::~DiskManager() { Close(); }

Status DiskManager::Open(const std::string& path) {
  GISTCR_CHECK(fd_ < 0);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  path_ = path;
  return Status::OK();
}

void DiskManager::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status DiskManager::ReadPage(PageId page_id, char* out) {
  GISTCR_CHECK(fd_ >= 0);
  const off_t offset = static_cast<off_t>(page_id) * kPageSize;
  ssize_t n = ::pread(fd_, out, kPageSize, offset);
  if (n < 0) {
    return Status::IOError("pread: " + std::string(std::strerror(errno)));
  }
  if (n < static_cast<ssize_t>(kPageSize)) {
    // Short read past EOF: treat the rest as zeroes (fresh page).
    std::memset(out + n, 0, kPageSize - static_cast<size_t>(n));
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const char* data) {
  GISTCR_CHECK(fd_ >= 0);
  const off_t offset = static_cast<off_t>(page_id) * kPageSize;
  ssize_t n = ::pwrite(fd_, data, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status DiskManager::Sync() {
  GISTCR_CHECK(fd_ >= 0);
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

uint64_t DiskManager::PageCountOnDisk() const {
  if (fd_ < 0) return 0;
  struct stat st;
  if (::fstat(fd_, &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size) / kPageSize;
}

}  // namespace gistcr
