#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "storage/fault_injector.h"
#include "storage/page.h"

namespace gistcr {

namespace {

// pread with EINTR and short-read handling. Returns the number of bytes
// read (less than n only at EOF) or a negative errno value.
ssize_t PreadFully(int fd, char* buf, size_t n, off_t offset) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd, buf + done, n - done, offset + done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -errno;
    }
    if (r == 0) break;  // EOF
    done += static_cast<size_t>(r);
  }
  return static_cast<ssize_t>(done);
}

// pwrite with EINTR and short-write handling. Returns 0 or a negative
// errno value.
int PwriteFully(int fd, const char* buf, size_t n, off_t offset) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pwrite(fd, buf + done, n - done, offset + done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -errno;
    }
    if (r == 0) return -EIO;  // no forward progress
    done += static_cast<size_t>(r);
  }
  return 0;
}

bool IsAllZero(const char* buf, size_t n) {
  for (size_t i = 0; i < n; i++) {
    if (buf[i] != 0) return false;
  }
  return true;
}

void RetryBackoff(int attempt) {
  // Tiny linear backoff; transient faults in tests clear instantly, and a
  // real EIO that persists across the budget surfaces anyway.
  ::usleep(static_cast<useconds_t>(50 * (attempt + 1)));
}

}  // namespace

DiskManager::~DiskManager() { Close(); }

void DiskManager::AttachMetrics(obs::MetricsRegistry* reg) {
  reg = obs::MetricsRegistry::OrFallback(reg);
  m_io_retries_ = reg->GetCounter("storage.io_retries");
  m_torn_detected_ = reg->GetCounter("storage.torn_pages_detected");
}

Status DiskManager::Open(const std::string& path) {
  GISTCR_CHECK(fd_ < 0);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  path_ = path;
  return Status::OK();
}

void DiskManager::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status DiskManager::ReadPage(PageId page_id, char* out) {
  GISTCR_CHECK(fd_ >= 0);
  const off_t offset = static_cast<off_t>(page_id) * kPageSize;

  int injected = 0;
  if constexpr (kFaultInjectionCompiled) {
    if (FaultInjector::Global().io_faults_active()) {
      injected = FaultInjector::Global().DrawTransientFaults(/*is_write=*/false);
    }
  }

  Status last;
  for (int attempt = 0; attempt < kMaxIoAttempts; attempt++) {
    if (attempt > 0) {
      m_io_retries_->Add(1);
      RetryBackoff(attempt);
    }
    if (attempt < injected) {
      last = Status::IOError("injected transient read fault");
      continue;
    }
    ssize_t n = PreadFully(fd_, out, kPageSize, offset);
    if (n < 0) {
      last = Status::IOError("pread page " + std::to_string(page_id) + ": " +
                             std::strerror(static_cast<int>(-n)));
      continue;
    }
    if (n < static_cast<ssize_t>(kPageSize)) {
      // Short read past EOF: treat the rest as zeroes (fresh page).
      std::memset(out + n, 0, kPageSize - static_cast<size_t>(n));
    }
    // Checksum verification. An all-zero page is valid: a never-written
    // (fresh) page, or a zeroed lost write that WAL redo will repopulate
    // (page_lsn 0 makes every record's redo applicable).
    const uint32_t stored = PageView(out).checksum();
    if (stored != ComputePageChecksum(out) && !IsAllZero(out, kPageSize)) {
      m_torn_detected_->Add(1);
      return Status::Corruption("page " + std::to_string(page_id) +
                                ": checksum mismatch (torn write or bit rot)");
    }
    return Status::OK();
  }
  return last;
}

Status DiskManager::WritePage(PageId page_id, const char* data) {
  GISTCR_CHECK(fd_ >= 0);
  const off_t offset = static_cast<off_t>(page_id) * kPageSize;

  // Stamp the checksum into a local copy: callers hand us buffer-pool
  // frames they may only hold shared latches on, so the source bytes must
  // not be mutated here.
  char buf[kPageSize];
  std::memcpy(buf, data, kPageSize);
  PageView(buf).set_checksum(ComputePageChecksum(buf));

  size_t write_off = 0;
  size_t write_len = kPageSize;
  int injected = 0;
  if constexpr (kFaultInjectionCompiled) {
    FaultInjector& fi = FaultInjector::Global();
    if (fi.io_faults_active()) {
      FaultInjector::TornMode mode;
      if (fi.TakeTornWrite(&mode)) {
        switch (mode) {
          case FaultInjector::TornMode::kFirstHalfOnly:
            write_len = kPageSize / 2;
            break;
          case FaultInjector::TornMode::kLastHalfOnly:
            write_off = kPageSize / 2;
            write_len = kPageSize / 2;
            break;
          case FaultInjector::TornMode::kZeroPage:
            std::memset(buf, 0, kPageSize);
            break;
        }
      }
      injected = fi.DrawTransientFaults(/*is_write=*/true);
    }
  }

  Status last;
  for (int attempt = 0; attempt < kMaxIoAttempts; attempt++) {
    if (attempt > 0) {
      m_io_retries_->Add(1);
      RetryBackoff(attempt);
    }
    if (attempt < injected) {
      last = Status::IOError("injected transient write fault");
      continue;
    }
    int rc = PwriteFully(fd_, buf + write_off, write_len,
                         offset + static_cast<off_t>(write_off));
    if (rc < 0) {
      last = Status::IOError("pwrite page " + std::to_string(page_id) + ": " +
                             std::strerror(-rc));
      continue;
    }
    return Status::OK();
  }
  return last;
}

Status DiskManager::Sync() {
  GISTCR_CHECK(fd_ >= 0);
  if constexpr (kFaultInjectionCompiled) {
    if (FaultInjector::Global().io_faults_active() &&
        FaultInjector::Global().TakeSyncFailure()) {
      return Status::IOError("injected sync failure");
    }
  }
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

uint64_t DiskManager::PageCountOnDisk() const {
  if (fd_ < 0) return 0;
  struct stat st;
  if (::fstat(fd_, &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size) / kPageSize;
}

}  // namespace gistcr
