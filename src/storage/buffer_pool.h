#ifndef GISTCR_STORAGE_BUFFER_POOL_H_
#define GISTCR_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/optimistic.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/status.h"

namespace gistcr {

class BufferPool;

/// A buffer-pool frame: one in-memory page plus its latch. Latches are the
/// paper's physical synchronization primitive (section 5 footnote 8): they
/// protect the frame contents, are deadlock-unchecked, and are independent
/// of logical locks on the node. Callers may only hold the latch while the
/// frame is pinned.
class Frame {
 public:
  char* data() { return data_; }
  const char* data() const { return data_; }
  PageView view() { return PageView(data_); }

  /// Stable while the caller holds a pin (only eviction reassigns it, and
  /// eviction never selects a pinned frame).
  PageId page_id() const { return page_id_; }

  SharedMutex& latch() GISTCR_RETURN_CAPABILITY(latch_) { return latch_; }

  /// Records that the caller (holding the X latch) applied the log record
  /// with LSN \p lsn to this page. Sets the dirty flag and maintains
  /// rec_lsn = LSN of the first update since the page was last clean, which
  /// feeds the fuzzy-checkpoint dirty page table.
  void MarkDirty(Lsn lsn) {
    Lsn expected = rec_lsn_.load(std::memory_order_relaxed);
    while (expected == kInvalidLsn || lsn < expected) {
      if (rec_lsn_.compare_exchange_weak(expected, lsn,
                                         std::memory_order_relaxed)) {
        break;
      }
    }
    dirty_.store(true, std::memory_order_release);
  }

  bool dirty() const { return dirty_.load(std::memory_order_acquire); }
  Lsn rec_lsn() const { return rec_lsn_.load(std::memory_order_relaxed); }

  /// Seqlock version word for optimistic (latch-free) reads, DESIGN.md
  /// section 13. Odd while a writer holds the X latch; bumped to the next
  /// even value before the latch is released. Seeded from the on-disk
  /// page_lsn (shifted left one bit, keeping it even) when the frame is
  /// filled, unifying it with the NSN/LSN version narrative of paper
  /// section 10.1: a page image and its version word advance together.
  ///
  /// Reader protocol (SnapshotPage below): load an even version, copy the
  /// page, re-load; equal means the copy is consistent. The copy itself is
  /// a benign data race on the page bytes (the classic seqlock pattern) —
  /// see the documented scoped suppression in tsan.suppressions.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Writer-side hooks, called by PageGuard around the X latch. BeginWrite
  /// makes the version odd so in-flight optimistic copies fail validation;
  /// EndWrite publishes the new even version after all modifications.
  void BeginWrite() { version_.fetch_add(1, std::memory_order_acq_rel); }
  void EndWrite() { version_.fetch_add(1, std::memory_order_acq_rel); }

  /// Computes the byte ranges a snapshot of a page must cover: the copy
  /// spans [0, head_len) and [tail_begin, kPageSize). Called on the LIVE
  /// (possibly mid-write) page image, so implementations must clamp every
  /// derived size to the page — a torn length must only ever cost copied
  /// bytes, never an out-of-bounds read. The seqlock version re-check
  /// after the copy rejects any snapshot whose bounds were torn.
  using SnapshotBoundsFn = void (*)(const char* page, uint32_t* head_len,
                                    uint32_t* tail_begin);

  /// Copies the page into \p dst (kPageSize bytes) without latching. On
  /// success stores the version the copy is consistent with in \p version
  /// and returns true; returns false when a writer was active or raced the
  /// copy (retry or fall back to a latched read). The caller must hold a
  /// pin — the pin is this pool's safe-memory reclamation: eviction never
  /// selects a pinned frame, so data_ and page_id_ are stable for the
  /// duration. Out-of-line so the tsan.suppressions entry matches the
  /// symbol even when callers are inlined.
  ///
  /// \p bounds (optional) narrows the copy to the page's used bytes —
  /// page layouts keep a front region (headers + slot array) and a back
  /// region (entry heap), so a mostly-empty 8 KiB page needs only a few
  /// hundred bytes copied. The uncovered middle of \p dst is left
  /// unwritten; a validated snapshot never dereferences into it (all
  /// offsets in a consistent image point into the covered regions).
  bool SnapshotPage(char* dst, uint64_t* version,
                    SnapshotBoundsFn bounds = nullptr) const;

 private:
  friend class BufferPool;

  enum class State { kReady, kBusy };

  /// Tells the thread-safety analysis that the caller holds this frame's
  /// shard mutex. Sound because shard_mu_ is fixed at pool construction
  /// and every caller reached the frame through its shard's table or frame
  /// list, whose mutex it already holds — the analysis just cannot prove
  /// the aliasing (`&shard.mu == frame->shard_mu_`) statically.
  void AssertShardMutexHeld() const GISTCR_ASSERT_CAPABILITY(*shard_mu_) {}

  void ClearDirty() {
    dirty_.store(false, std::memory_order_release);
    rec_lsn_.store(kInvalidLsn, std::memory_order_relaxed);
  }

  PageId page_id_ = kInvalidPageId;  ///< see page_id() for stability rule
  uint32_t pin_count_ GISTCR_GUARDED_BY(*shard_mu_) = 0;
  bool ref_ GISTCR_GUARDED_BY(*shard_mu_) = false;  ///< clock reference bit
  /// kBusy while this frame's I/O (eviction write / fill read) is in
  /// flight; waiters park on the shard cv.
  State state_ GISTCR_GUARDED_BY(*shard_mu_) = State::kReady;
  std::atomic<bool> dirty_{false};
  std::atomic<Lsn> rec_lsn_{kInvalidLsn};
  /// Seqlock word (see version() above). Re-seeded from the page_lsn on
  /// every frame fill, and the fill/reformat paths pass through an odd
  /// value first so a concurrent snapshot can never validate against a
  /// half-filled image.
  std::atomic<uint64_t> version_{0};
  char* data_ = nullptr;
  Mutex* shard_mu_ = nullptr;  ///< owning shard's mutex; set once in ctor
  SharedMutex latch_;
};

/// Fixed-size buffer pool with CLOCK replacement and the write-ahead-log
/// flush rule: before a dirty page is written out (eviction, checkpoint
/// flush, or background writer), the log is forced up to the page's
/// page_lsn via the wal_flush callback.
///
/// The pool is sharded: frames, the page table, the clock hand, and the
/// mutex are statically partitioned into N shards, with pages assigned by
/// a hash of their PageId. Fetch/Unpin on pages in different shards never
/// contend, and every invariant (Busy protocol, WAL-before-data, the
/// dirty-victim table-entry rule) is per-shard — a page lives in exactly
/// one shard for its whole life.
///
/// I/O never happens while the caller holds a node latch *or any shard
/// mutex*: a Fetch performs disk read/write with the shard mutex released
/// (the frame marked Busy instead), and tree operations latch only
/// resident, pinned frames (the paper's "no latches during I/O" property
/// falls out of this split).
class BufferPool {
 public:
  using WalFlushFn = std::function<Status(Lsn)>;

  /// \p wal_flush may be empty (no WAL rule) for log-less unit tests.
  /// \p num_shards = 0 picks automatically: enough shards to cut
  /// contention on big pools, but never fewer than 128 frames per shard
  /// (so small test pools keep their single-shard eviction margins).
  BufferPool(DiskManager* disk, size_t num_frames, WalFlushFn wal_flush,
             size_t num_shards = 0);
  ~BufferPool();
  GISTCR_DISALLOW_COPY_AND_ASSIGN(BufferPool);

  /// Re-points the pool's metrics at \p reg (null: process fallback).
  /// Call before concurrent use; the Database facade does so at init.
  void AttachMetrics(obs::MetricsRegistry* reg);

  /// Pins the page, reading it from disk on a miss. The returned frame stays
  /// valid until Unpin.
  StatusOr<Frame*> Fetch(PageId page_id);

  /// Pins a frame for a freshly allocated page without reading disk. The
  /// buffer is zeroed; the caller formats it.
  StatusOr<Frame*> NewPage(PageId page_id);

  /// Releases a pin.
  void Unpin(Frame* frame);

  /// Instant-restart integration (DESIGN.md section 16). While the hook
  /// is armed, every successful Fetch invokes \p on_fetch(page_id) with
  /// the frame pinned but not latched and no shard mutex held — the hook
  /// may replay the page's redo plan (latching it, fetching other pages
  /// re-entrantly) before the caller ever sees the frame. A non-OK return
  /// unpins the frame and fails the Fetch. NewPage invokes \p on_new
  /// instead: the page is being re-created from scratch, so any pending
  /// redo for its previous life is cancelled rather than replayed.
  /// Install before arming; disarm before tearing the consumer down.
  void SetRecoveryHook(std::function<Status(PageId)> on_fetch,
                       std::function<void(PageId)> on_new) {
    recovery_on_fetch_ = std::move(on_fetch);
    recovery_on_new_ = std::move(on_new);
  }
  void ArmRecoveryHook() {
    recovery_hook_armed_.store(true, std::memory_order_release);
  }
  void DisarmRecoveryHook() {
    recovery_hook_armed_.store(false, std::memory_order_release);
  }
  bool recovery_hook_armed() const {
    return recovery_hook_armed_.load(std::memory_order_acquire);
  }

  /// Forces the page to disk if resident and dirty (WAL rule applied).
  /// Returns OK (as a no-op) when the page is not resident or not dirty —
  /// including when a concurrent eviction removed it after the caller
  /// decided to flush it: the eviction path already wrote the page, so
  /// there is nothing left to do.
  Status FlushPage(PageId page_id);

  /// Flushes every dirty page and syncs (clean shutdown / checkpoint).
  /// Tolerates concurrent evictions: a page that disappears between the
  /// dirty-scan and its FlushPage call was written by the evicting thread
  /// (under the same WAL rule), so FlushPage's no-op return is correct.
  Status FlushAll();

  /// One background-writer pass: writes out up to \p per_shard_budget
  /// dirty pages per shard, scanning just ahead of each shard's clock hand
  /// so the next eviction victims are already clean when the hand reaches
  /// them. All I/O runs with no shard mutex held; pages that get evicted
  /// or cleaned concurrently are skipped. Returns the number of pages
  /// actually written.
  StatusOr<size_t> WriteBackSome(size_t per_shard_budget);

  /// Drops all cached pages *without* writing them — simulates losing
  /// volatile memory in a crash. All pins must have been released.
  void DiscardAll();

  /// Dirty page table snapshot for fuzzy checkpoints: page id -> rec_lsn
  /// (LSN of the earliest update not yet on disk).
  std::vector<std::pair<PageId, Lsn>> DirtyPageTable();

  size_t num_frames() const { return frames_.size(); }
  size_t num_shards() const { return shards_.size(); }

  /// Number of pages currently resident (for tests).
  size_t ResidentCount();

  /// Per-shard occupancy snapshot for the introspection surface (kInspect
  /// "bp"): frame counts, resident/dirty pages, and pinned frames.
  struct ShardStats {
    size_t frames = 0;
    size_t resident = 0;
    size_t dirty = 0;
    size_t pinned = 0;
    /// Lifetime evictions from this shard (bp.shard.<i>.evictions) — the
    /// per-shard split of bp.evictions, for spotting skewed hash spread.
    uint64_t evictions = 0;
  };
  std::vector<ShardStats> ShardOccupancy();

 private:
  /// One partition: its frames, page table, clock hand, and the mutex/cv
  /// that guard them. Frames never migrate between shards.
  struct Shard {
    Mutex mu{GISTCR_LOCK_RANK(kBpShard, "bp.shard.mu")};
    CondVar cv;  ///< signalled when a Busy frame becomes Ready
    std::unordered_map<PageId, Frame*> table GISTCR_GUARDED_BY(mu);
    std::vector<Frame*> frames;  ///< static partition, set once in ctor
    size_t clock_hand GISTCR_GUARDED_BY(mu) = 0;
    /// Per-shard eviction counter (bp.shard.<i>.evictions); re-pointed by
    /// AttachMetrics like the pool-level counters.
    obs::Counter* m_evictions = nullptr;
  };

  Shard& ShardOf(PageId page_id);
  StatusOr<Frame*> FetchInternal(PageId page_id, bool fresh);
  Frame* FindVictimLocked(Shard& s) GISTCR_REQUIRES(s.mu);
  /// FlushPage body; *wrote reports whether a write actually happened
  /// (false for the not-resident / not-dirty no-op returns).
  Status FlushPageInternal(PageId page_id, bool* wrote);

  DiskManager* disk_;
  WalFlushFn wal_flush_;

  // Instant-restart hook (see SetRecoveryHook). The callbacks are written
  // before arming and cleared only after disarming, so the armed check
  // suffices on the hot path.
  std::function<Status(PageId)> recovery_on_fetch_;
  std::function<void(PageId)> recovery_on_new_;
  std::atomic<bool> recovery_hook_armed_{false};

  // Registry-owned; stable pointers, updated lock-free on the hot path.
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_dirty_evictions_ = nullptr;
  obs::Counter* m_flushes_ = nullptr;
  obs::Histogram* m_pin_wait_ns_ = nullptr;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Frame>> frames_;  ///< set once in ctor
  std::unique_ptr<char[]> arena_;
};

/// RAII pin + latch management for one page. Move-only. On destruction,
/// releases any held latch and then the pin (in that order; a latch may only
/// be held while pinned).
///
/// Deliberately outside Clang's thread-safety analysis (DESIGN.md section
/// 10): whether a latch is held is runtime state (latch_), guards move
/// across functions during latch coupling, and Unlatch/Drop release
/// conditionally — none of which the static analysis can express without
/// blanket false positives. The latch protocol on this type is enforced by
/// the GISTCR_DCHECK state machine below, by TSan, and by gistcr_lint
/// instead.
class PageGuard {
 public:
  PageGuard() : pool_(nullptr), frame_(nullptr) {}
  PageGuard(BufferPool* pool, Frame* frame) : pool_(pool), frame_(frame) {}
  ~PageGuard() { Drop(); }

  PageGuard(PageGuard&& o) noexcept
      : pool_(o.pool_), frame_(o.frame_), latch_(o.latch_) {
#if GISTCR_DEADLOCK_DETECTOR
    dl_cls_ = o.dl_cls_;
#endif
    o.pool_ = nullptr;
    o.frame_ = nullptr;
    o.latch_ = LatchState::kNone;
  }
  PageGuard& operator=(PageGuard&& o) noexcept {
    if (this != &o) {
      Drop();
      pool_ = o.pool_;
      frame_ = o.frame_;
      latch_ = o.latch_;
#if GISTCR_DEADLOCK_DETECTOR
      dl_cls_ = o.dl_cls_;
#endif
      o.pool_ = nullptr;
      o.frame_ = nullptr;
      o.latch_ = LatchState::kNone;
    }
    return *this;
  }
  GISTCR_DISALLOW_COPY_AND_ASSIGN(PageGuard);

  bool valid() const { return frame_ != nullptr; }
  Frame* frame() { return frame_; }
  PageView view() { return frame_->view(); }
  PageId page_id() const { return frame_->page_id(); }

  void RLatch() GISTCR_NO_THREAD_SAFETY_ANALYSIS {
    GISTCR_DCHECK(latch_ == LatchState::kNone);
    GISTCR_DCHECK(!InOptimisticSection());
    frame_->latch().lock_shared();
    latch_ = LatchState::kShared;
    NoteLatched(/*try_acquire=*/false);
  }
  void WLatch() GISTCR_NO_THREAD_SAFETY_ANALYSIS {
    GISTCR_DCHECK(latch_ == LatchState::kNone);
    GISTCR_DCHECK(!InOptimisticSection());
    frame_->latch().lock();
    latch_ = LatchState::kExclusive;
    frame_->BeginWrite();
    NoteLatched(/*try_acquire=*/false);
  }
  /// Non-blocking X latch (used where blocking would invert the latch
  /// order, e.g. garbage collection latching downward). Allowed inside an
  /// optimistic section: a try-acquire cannot wait behind a writer.
  bool TryWLatch() GISTCR_NO_THREAD_SAFETY_ANALYSIS {
    GISTCR_DCHECK(latch_ == LatchState::kNone);
    if (!frame_->latch().try_lock()) return false;
    latch_ = LatchState::kExclusive;
    frame_->BeginWrite();
    NoteLatched(/*try_acquire=*/true);
    return true;
  }
  void Unlatch() GISTCR_NO_THREAD_SAFETY_ANALYSIS {
    if (latch_ == LatchState::kShared) {
      frame_->latch().unlock_shared();
    } else if (latch_ == LatchState::kExclusive) {
      // Publish the post-modification version before the latch falls: an
      // optimistic reader that begins its copy after this point validates
      // against the new even value.
      frame_->EndWrite();
      frame_->latch().unlock();
    }
#if GISTCR_DEADLOCK_DETECTOR
    if (latch_ != LatchState::kNone) deadlock::OnPageUnlatch(dl_cls_);
#endif
    latch_ = LatchState::kNone;
  }
  bool IsLatched() const { return latch_ != LatchState::kNone; }
  bool IsWriteLatched() const { return latch_ == LatchState::kExclusive; }

  /// Unlatches (if latched) and unpins.
  void Drop() {
    if (frame_ != nullptr) {
      Unlatch();
      pool_->Unpin(frame_);
      frame_ = nullptr;
      pool_ = nullptr;
    }
  }

 private:
  enum class LatchState { kNone, kShared, kExclusive };

  // Deadlock-detector bookkeeping: page latches participate in the lock
  // hierarchy as one class per page type (common/lock_rank.h) — frames
  // are recycled across pages, so instance identity would alias. The
  // class is derived *under* the just-taken latch (the page-type byte is
  // only stable while latched) and remembered for the matching release:
  // a Format under this latch may change the page's type.
  void NoteLatched(bool try_acquire) {
#if GISTCR_DEADLOCK_DETECTOR
    dl_cls_ = deadlock::PageRankFor(
        static_cast<uint8_t>(frame_->view().page_type()));
    if (try_acquire) {
      deadlock::OnPageTryLatch(dl_cls_);
    } else {
      deadlock::OnPageLatch(dl_cls_);
    }
#else
    (void)try_acquire;
#endif
  }

  BufferPool* pool_;
  Frame* frame_;
  LatchState latch_ = LatchState::kNone;
#if GISTCR_DEADLOCK_DETECTOR
  LockRank dl_cls_ = LockRank::kUnranked;
#endif
};

}  // namespace gistcr

#endif  // GISTCR_STORAGE_BUFFER_POOL_H_
