#ifndef GISTCR_STORAGE_DISK_MANAGER_H_
#define GISTCR_STORAGE_DISK_MANAGER_H_

#include <mutex>
#include <string>

#include "common/types.h"
#include "util/macros.h"
#include "util/status.h"

namespace gistcr {

/// File-backed page store. Pure I/O: page allocation policy lives above
/// (allocation bitmap pages maintained through the buffer pool so that
/// Get-Page / Free-Page log records can redo it, paper Table 1).
///
/// Thread-safe: reads/writes use pread/pwrite; file extension is serialized.
class DiskManager {
 public:
  DiskManager() = default;
  ~DiskManager();
  GISTCR_DISALLOW_COPY_AND_ASSIGN(DiskManager);

  /// Opens (creating if absent) the database file.
  Status Open(const std::string& path);
  void Close();

  bool is_open() const { return fd_ >= 0; }

  /// Reads page \p page_id into \p out (kPageSize bytes). Reading a page
  /// beyond the current file size yields a zeroed buffer (fresh page).
  Status ReadPage(PageId page_id, char* out);

  /// Writes kPageSize bytes at the page's offset, extending the file if
  /// needed. Does not sync; call Sync() for durability.
  Status WritePage(PageId page_id, const char* data);

  /// fdatasync the file.
  Status Sync();

  /// Number of whole pages currently in the file.
  uint64_t PageCountOnDisk() const;

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace gistcr

#endif  // GISTCR_STORAGE_DISK_MANAGER_H_
