#ifndef GISTCR_STORAGE_DISK_MANAGER_H_
#define GISTCR_STORAGE_DISK_MANAGER_H_

#include <string>

#include "common/types.h"
#include "obs/metrics.h"
#include "util/macros.h"
#include "util/status.h"

namespace gistcr {

/// File-backed page store. Pure I/O: page allocation policy lives above
/// (allocation bitmap pages maintained through the buffer pool so that
/// Get-Page / Free-Page log records can redo it, paper Table 1).
///
/// Every WritePage stamps a CRC32 checksum into the page header; every
/// ReadPage verifies it and returns Status::Corruption on mismatch (an
/// all-zero page is a valid fresh page). Transient I/O errors — real
/// (EINTR, short transfers) or injected — are absorbed by a bounded
/// retry-and-backoff loop before surfacing as IOError.
///
/// Thread-safe: reads/writes use pread/pwrite; file extension is serialized.
class DiskManager {
 public:
  DiskManager() { AttachMetrics(nullptr); }
  ~DiskManager();
  GISTCR_DISALLOW_COPY_AND_ASSIGN(DiskManager);

  /// Re-points counters at \p reg (null: process-global fallback).
  void AttachMetrics(obs::MetricsRegistry* reg);

  /// Opens (creating if absent) the database file.
  Status Open(const std::string& path);
  void Close();

  bool is_open() const { return fd_ >= 0; }

  /// Reads page \p page_id into \p out (kPageSize bytes). Reading a page
  /// beyond the current file size yields a zeroed buffer (fresh page).
  /// Returns Status::Corruption when the stored checksum does not match
  /// the page contents (torn write or bit rot).
  Status ReadPage(PageId page_id, char* out);

  /// Writes kPageSize bytes at the page's offset, extending the file if
  /// needed, stamping the header checksum (the caller's buffer is not
  /// modified). Does not sync; call Sync() for durability.
  Status WritePage(PageId page_id, const char* data);

  /// fdatasync the file.
  Status Sync();

  /// Number of whole pages currently in the file.
  uint64_t PageCountOnDisk() const;

  /// Attempt budget for the transient-fault retry loop (first try + 3
  /// retries).
  static constexpr int kMaxIoAttempts = 4;

 private:
  int fd_ = -1;
  std::string path_;
  obs::Counter* m_io_retries_ = nullptr;
  obs::Counter* m_torn_detected_ = nullptr;
};

}  // namespace gistcr

#endif  // GISTCR_STORAGE_DISK_MANAGER_H_
