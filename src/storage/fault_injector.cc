#include "storage/fault_injector.h"

#include <cstdlib>

#include "obs/flight_recorder.h"

namespace gistcr {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();  // leaked on purpose
  return *instance;
}

void FaultInjector::Reset() {
  MutexLock l(mu_);
  armed_.store(false, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  crash_point_.clear();
  crash_skip_ = 0;
  crash_action_ = CrashAction::kStatus;
  rng_ = Random(1);
  transients_on_ = false;
  read_prob_ = 0.0;
  write_prob_ = 0.0;
  max_burst_ = 0;
  torn_armed_ = false;
  torn_countdown_ = 0;
  sync_failures_ = 0;
  RecomputeIoActiveLocked();
}

void FaultInjector::AttachMetrics(obs::MetricsRegistry* reg) {
  MutexLock l(mu_);
  m_hits_ = obs::MetricsRegistry::OrFallback(reg)->GetCounter(
      "storage.crashpoint_hits");
}

void FaultInjector::ArmCrashPoint(const std::string& name, int skip,
                                  CrashAction action) {
  MutexLock l(mu_);
  crash_point_ = name;
  crash_skip_ = skip;
  crash_action_ = action;
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::DisarmCrashPoints() {
  MutexLock l(mu_);
  armed_.store(false, std::memory_order_relaxed);
  crash_point_.clear();
}

Status FaultInjector::OnCrashPoint(const char* name) {
  MutexLock l(mu_);
  if (!armed_.load(std::memory_order_relaxed) || crash_point_ != name) {
    return Status::OK();
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (m_hits_ != nullptr) m_hits_->Add(1);
  if (crash_skip_ > 0) {
    crash_skip_--;
    return Status::OK();
  }
  if (crash_action_ == CrashAction::kExit) {
    // Flight recorder first: a real power cut leaves no artifact, but an
    // induced crash is exactly when the torture harness wants one. Safe
    // here — we run in normal (non-signal) context and Dump only takes
    // leaf obs-layer mutexes, never this injector's mu_ again.
    (void)obs::FlightRecorder::Global().Dump(name);
    // Simulated power cut: no destructors, no buffer flushes — the process
    // disappears exactly as a crashed machine would.
    std::_Exit(kCrashExitCode);
  }
  // kStatus: one-shot, then unwind the operation with an I/O error.
  armed_.store(false, std::memory_order_relaxed);
  crash_point_.clear();
  l.Unlock();
  return Status::IOError(std::string("crash point hit: ") + name);
}

void FaultInjector::ConfigureTransientFaults(uint64_t seed, double read_prob,
                                             double write_prob,
                                             int max_burst) {
  MutexLock l(mu_);
  rng_ = Random(seed);
  read_prob_ = read_prob;
  write_prob_ = write_prob;
  max_burst_ = max_burst < 1 ? 1 : max_burst;
  transients_on_ = read_prob > 0.0 || write_prob > 0.0;
  RecomputeIoActiveLocked();
}

int FaultInjector::DrawTransientFaults(bool is_write) {
  MutexLock l(mu_);
  if (!transients_on_) return 0;
  const double p = is_write ? write_prob_ : read_prob_;
  if (p <= 0.0) return 0;
  if (rng_.NextDouble() >= p) return 0;
  return 1 + static_cast<int>(rng_.Uniform(static_cast<uint64_t>(max_burst_)));
}

void FaultInjector::ArmTornWrite(TornMode mode, int countdown) {
  MutexLock l(mu_);
  torn_armed_ = true;
  torn_mode_ = mode;
  torn_countdown_ = countdown;
  RecomputeIoActiveLocked();
}

bool FaultInjector::TakeTornWrite(TornMode* mode) {
  MutexLock l(mu_);
  if (!torn_armed_) return false;
  if (torn_countdown_ > 0) {
    torn_countdown_--;
    return false;
  }
  torn_armed_ = false;
  *mode = torn_mode_;
  RecomputeIoActiveLocked();
  return true;
}

void FaultInjector::FailNextSyncs(int count) {
  MutexLock l(mu_);
  sync_failures_ = count;
  RecomputeIoActiveLocked();
}

bool FaultInjector::TakeSyncFailure() {
  MutexLock l(mu_);
  if (sync_failures_ <= 0) return false;
  sync_failures_--;
  if (sync_failures_ == 0) RecomputeIoActiveLocked();
  return true;
}

void FaultInjector::RecomputeIoActiveLocked() {
  io_active_.store(transients_on_ || torn_armed_ || sync_failures_ > 0,
                   std::memory_order_relaxed);
}

}  // namespace gistcr
