#ifndef GISTCR_STORAGE_FAULT_INJECTOR_H_
#define GISTCR_STORAGE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/mutex.h"
#include "obs/metrics.h"
#include "util/macros.h"
#include "util/random.h"
#include "util/status.h"

namespace gistcr {

#if GISTCR_FAULT_INJECTION
inline constexpr bool kFaultInjectionCompiled = true;
#else
inline constexpr bool kFaultInjectionCompiled = false;
#endif

/// Deterministic storage-fault injection (process-global singleton).
///
/// Three fault families, all off until armed and all seed-driven so a
/// failing configuration replays exactly:
///
///  - **Crash points**: named sites (`GISTCR_CRASHPOINT("split.before_
///    nta_commit")`) at every structure-modification and WAL boundary.
///    Arming one either kills the process (`CrashAction::kExit`, exit code
///    kCrashExitCode — for fork-based crash harnesses) or makes the site
///    return an IOError so the operation unwinds in-process
///    (`CrashAction::kStatus`).
///  - **Transient I/O errors**: each DiskManager read/write draws a burst
///    of 0..max_burst synthetic failures from a seeded RNG; DiskManager's
///    bounded retry-and-backoff absorbs bursts shorter than its attempt
///    budget and surfaces IOError otherwise.
///  - **Torn writes / failed syncs**: the next (or Nth-next) page write
///    persists only its first half, only its last half, or all zeroes —
///    the classic power-cut failure modes page checksums exist to catch;
///    armed sync failures make fdatasync report an error.
///
/// Thread-safe. The hot-path check (`armed()` / `io_faults_active()`) is a
/// relaxed atomic load; everything else takes a mutex, which is fine
/// because faults are a test-only configuration.
class FaultInjector {
 public:
  enum class CrashAction : uint8_t {
    kStatus,  ///< Crash point returns Status::IOError; operation unwinds.
    kExit,    ///< Crash point calls _Exit(kCrashExitCode); for fork tests.
  };
  enum class TornMode : uint8_t {
    kFirstHalfOnly,  ///< Only bytes [0, kPageSize/2) reach disk.
    kLastHalfOnly,   ///< Only bytes [kPageSize/2, kPageSize) reach disk.
    kZeroPage,       ///< The write is replaced by all zeroes (lost write).
  };

  /// Exit code a kExit crash point terminates with; a crash-harness parent
  /// asserts on it to distinguish "died at the point" from other failures.
  static constexpr int kCrashExitCode = 42;

  static FaultInjector& Global();

  /// Disarms everything and reseeds. Call at the start of every test (and
  /// in forked children before arming).
  void Reset();

  /// Re-points the hit counter at \p reg (null: process fallback).
  void AttachMetrics(obs::MetricsRegistry* reg);

  // --- crash points ----------------------------------------------------

  /// Arms crash point \p name: the (skip+1)-th execution of the site fires
  /// \p action. One point armed at a time; re-arming replaces.
  void ArmCrashPoint(const std::string& name, int skip = 0,
                     CrashAction action = CrashAction::kStatus);
  void DisarmCrashPoints();

  /// Fast-path gate used by GISTCR_CRASHPOINT.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Site body: no-op unless \p name is the armed point. Counts the hit,
  /// consumes one skip, then fires (kExit never returns).
  Status OnCrashPoint(const char* name);

  /// Like OnCrashPoint but with the armed() fast path folded in; for call
  /// sites that thread the Status manually instead of early-returning.
  Status CheckCrashPoint(const char* name) {
    if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
    return OnCrashPoint(name);
  }

  /// Total armed-point hits (including skipped ones) since Reset.
  uint64_t crashpoint_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }

  // --- transient I/O errors --------------------------------------------

  /// Every subsequent DiskManager read (write) independently fails with
  /// probability \p read_prob (\p write_prob); a failing operation draws a
  /// burst of 1..max_burst consecutive synthetic errors. Deterministic in
  /// \p seed.
  void ConfigureTransientFaults(uint64_t seed, double read_prob,
                                double write_prob, int max_burst);

  /// Fast-path gate for DiskManager.
  bool io_faults_active() const {
    return io_active_.load(std::memory_order_relaxed);
  }

  /// Draws the synthetic-failure burst length for one I/O operation
  /// (0 = the operation is healthy).
  int DrawTransientFaults(bool is_write);

  // --- torn writes / failed syncs --------------------------------------

  /// The (countdown+1)-th subsequent DiskManager::WritePage is torn per
  /// \p mode (one-shot).
  void ArmTornWrite(TornMode mode, int countdown = 0);

  /// Consumed by DiskManager::WritePage. True when this write is the torn
  /// one; \p mode receives the armed mode.
  bool TakeTornWrite(TornMode* mode);

  /// The next \p count fdatasync calls (data file or WAL) report failure.
  void FailNextSyncs(int count = 1);

  /// Consumed by the sync paths. True when this sync must fail.
  bool TakeSyncFailure();

 private:
  FaultInjector() = default;
  GISTCR_DISALLOW_COPY_AND_ASSIGN(FaultInjector);

  void RecomputeIoActiveLocked() GISTCR_REQUIRES(mu_);

  mutable Mutex mu_{GISTCR_LOCK_RANK(kFaultInjector, "fault.mu")};

  // Crash points.
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> hits_{0};
  std::string crash_point_ GISTCR_GUARDED_BY(mu_);
  int crash_skip_ GISTCR_GUARDED_BY(mu_) = 0;
  CrashAction crash_action_ GISTCR_GUARDED_BY(mu_) = CrashAction::kStatus;
  obs::Counter* m_hits_ GISTCR_GUARDED_BY(mu_) = nullptr;

  // I/O faults.
  std::atomic<bool> io_active_{false};
  Random rng_ GISTCR_GUARDED_BY(mu_){1};
  bool transients_on_ GISTCR_GUARDED_BY(mu_) = false;
  double read_prob_ GISTCR_GUARDED_BY(mu_) = 0.0;
  double write_prob_ GISTCR_GUARDED_BY(mu_) = 0.0;
  int max_burst_ GISTCR_GUARDED_BY(mu_) = 0;
  bool torn_armed_ GISTCR_GUARDED_BY(mu_) = false;
  TornMode torn_mode_ GISTCR_GUARDED_BY(mu_) = TornMode::kFirstHalfOnly;
  int torn_countdown_ GISTCR_GUARDED_BY(mu_) = 0;
  int sync_failures_ GISTCR_GUARDED_BY(mu_) = 0;
};

/// Central catalogue of every named crash point (DESIGN.md section 8 and
/// the crash-matrix test iterate over it). Names are hierarchical:
/// subsystem.site[.detail].
inline constexpr const char* kCrashPointCatalogue[] = {
    "insert.before_leaf_log",       // leaf chosen, Add-Leaf-Entry not logged
    "insert.after_leaf_apply",      // entry applied + logged, txn unfinished
    "delete.after_mark",            // Mark-Leaf-Entry applied, txn unfinished
    "split.after_log_append",       // Split record logged, pages untouched
    "split.before_parent_install",  // both halves written, parent entry not
    "split.before_nta_commit",      // full split applied, NTA-End not logged
    "root.before_meta_update",      // new root built, meta pointer not moved
    "gc.before_nta_end",            // GC removal applied, NTA-End not logged
    "gc.node_delete.before_rightlink_rewire",  // parent entry gone, chain not
    "bp.before_evict_write",        // WAL forced, dirty victim not written
    "search.optimistic_restart",    // optimistic read invalidated, re-copying
    "search.mvcc_visibility",       // snapshot leaf visit, Visible() filtering
    "wal.before_fsync",             // log pwritten, not yet durable
    "wal.after_fsync",              // log durable, in-memory state not updated
    "txn.commit.before_log_force",  // Commit appended, not flushed
    "txn.commit.after_log_force",   // Commit durable, locks/End pending
    "ckpt.before_master_update",    // checkpoint logged, master pointer stale
    "recovery.after_analysis",      // restart: ATT/DPT built, no redo yet
    "recovery.after_redo",          // restart: redo done, losers not undone
    "recovery.mid_undo",            // restart: mid loser rollback (per record)
    "instant.inline_redo",          // instant restart: fetch-path page replay
    "instant.bg_drain",             // instant restart: background drainer
    "instant.undo",                 // instant restart: concurrent loser undo
};

}  // namespace gistcr

/// Names a crash site. Valid only inside functions returning Status (or a
/// StatusOr): with the point armed in kStatus mode the site early-returns
/// the injected error. Compiles to nothing when GISTCR_FAULT_INJECTION is
/// off.
#if GISTCR_FAULT_INJECTION
#define GISTCR_CRASHPOINT(point)                                      \
  do {                                                                \
    if (::gistcr::FaultInjector::Global().armed()) {                  \
      ::gistcr::Status _cp_st =                                       \
          ::gistcr::FaultInjector::Global().OnCrashPoint(point);      \
      if (!_cp_st.ok()) return _cp_st;                                \
    }                                                                 \
  } while (0)
#else
#define GISTCR_CRASHPOINT(point) \
  do {                           \
  } while (0)
#endif

#endif  // GISTCR_STORAGE_FAULT_INJECTOR_H_
