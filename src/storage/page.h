#ifndef GISTCR_STORAGE_PAGE_H_
#define GISTCR_STORAGE_PAGE_H_

#include <cstdint>

#include "common/types.h"
#include "util/coding.h"
#include "util/crc32.h"

namespace gistcr {

/// Page type tags stored in the common page header.
enum class PageType : uint16_t {
  kFree = 0,
  kMeta = 1,      ///< Page 0: database metadata (root pointers, HWM).
  kAllocMap = 2,  ///< Page allocation bitmap pages.
  kGistNode = 3,  ///< GiST index node (internal or leaf).
  kHeap = 4,      ///< Heap data-store page.
};

/// Instant-restart state of a page (DESIGN.md section 16). Not stored in
/// the page image: the RecoveryGate keeps the state machine in memory,
/// seeded from log analysis. A page is kNeedsRedo while its planned redo
/// records have not been replayed, kRedoing while one thread replays them
/// (others wait), and kClean — the implicit state of every page the gate
/// does not track — once the plan has been applied (or the page was never
/// touched by the recovered log suffix).
enum class PageRecoveryState : uint8_t {
  kClean = 0,
  kNeedsRedo = 1,
  kRedoing = 2,
};

/// Every page starts with this 24-byte header:
///   [0..7]   page_lsn  - LSN of the last log record applied to the page;
///                        drives idempotent page-oriented redo.
///   [8..11]  page_id   - self identifier (corruption check).
///   [12..13] page_type
///   [14..15] reserved
///   [16..19] checksum  - CRC32 of the page excluding this field, stamped
///                        by DiskManager::WritePage and verified by
///                        ReadPage (torn-write / bit-rot detection).
///   [20..23] reserved
/// PageView is a non-owning accessor over a kPageSize byte buffer.
class PageView {
 public:
  static constexpr uint32_t kHeaderSize = 24;
  static constexpr uint32_t kChecksumOffset = 16;

  explicit PageView(char* data) : data_(data) {}

  char* data() { return data_; }
  const char* data() const { return data_; }

  /// Payload area after the common header.
  char* payload() { return data_ + kHeaderSize; }
  const char* payload() const { return data_ + kHeaderSize; }
  static constexpr uint32_t payload_size() { return kPageSize - kHeaderSize; }

  Lsn page_lsn() const { return DecodeFixed64(data_); }
  void set_page_lsn(Lsn lsn) { EncodeFixed64(data_, lsn); }

  PageId page_id() const { return DecodeFixed32(data_ + 8); }
  void set_page_id(PageId id) { EncodeFixed32(data_ + 8, id); }

  PageType page_type() const {
    return static_cast<PageType>(DecodeFixed16(data_ + 12));
  }
  void set_page_type(PageType t) {
    EncodeFixed16(data_ + 12, static_cast<uint16_t>(t));
  }

  uint32_t checksum() const { return DecodeFixed32(data_ + kChecksumOffset); }
  void set_checksum(uint32_t c) { EncodeFixed32(data_ + kChecksumOffset, c); }

  /// Initializes a fresh page: zero body, header fields set.
  void Format(PageId id, PageType type) {
    for (uint32_t i = 0; i < kPageSize; i++) data_[i] = 0;
    set_page_id(id);
    set_page_type(type);
    set_page_lsn(kInvalidLsn);
  }

 private:
  char* data_;
};

/// CRC32 over a full page image, skipping the 4-byte checksum field itself
/// so the stored value can be compared against a fresh computation.
inline uint32_t ComputePageChecksum(const char* page) {
  uint32_t c = Crc32(page, PageView::kChecksumOffset);
  return Crc32(page + PageView::kChecksumOffset + 4,
               kPageSize - PageView::kChecksumOffset - 4, c);
}

}  // namespace gistcr

#endif  // GISTCR_STORAGE_PAGE_H_
