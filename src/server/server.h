#ifndef GISTCR_SERVER_SERVER_H_
#define GISTCR_SERVER_SERVER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "net/socket.h"
#include "server/session.h"

namespace gistcr {

class Database;

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0: pick an ephemeral port (read it via port())
  uint32_t num_workers = 4;
  /// Parsed-but-unprocessed requests a connection may queue before the
  /// server stops reading from it (pipelining backpressure). Reading
  /// resumes when the queue drains to half the cap.
  uint32_t max_inflight_per_session = 64;
  /// A request that waited longer than this in the session queue is
  /// answered with a typed timeout error instead of executed (admission
  /// control under overload). 0 disables.
  uint64_t request_timeout_ms = 5000;
  /// Grace period for open transactions on Shutdown(); afterwards the
  /// survivors are force-aborted.
  uint64_t drain_timeout_ms = 2000;
};

/// Multi-client network front end over a Database: one epoll event-loop
/// thread does all socket reads and framing; a worker pool executes
/// requests. Each connection maps to a Session owning (at most) one open
/// transaction, and a session is run by one worker at a time, preserving
/// the engine's one-thread-per-transaction discipline while different
/// sessions execute fully in parallel.
///
/// Lifecycle: Start() binds and spawns threads; Shutdown() drains
/// gracefully — stop accepting, let in-flight transactions finish for
/// drain_timeout_ms, force-abort the rest, then take a final checkpoint so
/// the database reopens cleanly. The destructor calls Shutdown().
class Server {
 public:
  Server(Database* db, ServerOptions opts);
  ~Server();
  GISTCR_DISALLOW_COPY_AND_ASSIGN(Server);

  Status Start();
  Status Shutdown();

  uint16_t port() const { return port_; }
  /// Open connections right now (tests poll this around disconnects).
  size_t active_sessions();

 private:
  // epoll_event.data.u64 tags.
  static constexpr uint64_t kListenTag = 1;
  static constexpr uint64_t kWakeTag = 2;
  static constexpr uint64_t kFirstSessionId = 100;

  void EventLoop();
  void WorkerLoop();
  void AcceptAll();
  /// Reads and frames everything available on \p s, queueing requests.
  void HandleReadable(Session* s);
  /// Reaps closed sessions; during drain also closes idle transaction-less
  /// sessions and (under force) aborts surviving transactions.
  void ScanSessionsLocked() GISTCR_REQUIRES(mu_);
  void FinalizeLocked(uint64_t id) GISTCR_REQUIRES(mu_);
  void ScheduleLocked(Session* s) GISTCR_REQUIRES(mu_);
  void Wake();

  Status EpollAdd(int fd, uint64_t tag, bool readable);
  void EpollDel(int fd);

  Database* db_;
  ServerOptions opts_;
  ServerMetrics m_;

  net::Socket listener_;
  uint16_t port_ = 0;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  Mutex mu_{GISTCR_LOCK_RANK(kServer, "server.mu")};
  CondVar work_cv_;      ///< workers wait for runq_
  CondVar sessions_cv_;  ///< Shutdown waits for drain
  std::unordered_map<uint64_t, std::unique_ptr<Session>> sessions_
      GISTCR_GUARDED_BY(mu_);
  std::deque<Session*> runq_ GISTCR_GUARDED_BY(mu_);
  uint64_t next_session_id_ GISTCR_GUARDED_BY(mu_) = kFirstSessionId;
  /// Sum of session queue lengths.
  int64_t total_pending_ GISTCR_GUARDED_BY(mu_) = 0;

  bool running_ GISTCR_GUARDED_BY(mu_) = false;
  bool draining_ GISTCR_GUARDED_BY(mu_) = false;
  bool force_close_ GISTCR_GUARDED_BY(mu_) = false;
  bool listener_closed_ GISTCR_GUARDED_BY(mu_) = false;
  bool stop_workers_ GISTCR_GUARDED_BY(mu_) = false;
  bool stop_loop_ GISTCR_GUARDED_BY(mu_) = false;
  bool shutdown_done_ GISTCR_GUARDED_BY(mu_) = false;
};

}  // namespace gistcr

#endif  // GISTCR_SERVER_SERVER_H_
