#ifndef GISTCR_SERVER_SESSION_H_
#define GISTCR_SERVER_SESSION_H_

#include <cstdint>
#include <deque>
#include <string>

#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/op_context.h"
#include "txn/transaction.h"

namespace gistcr {

class Database;

/// One unit of work parsed off a connection, waiting in the session queue.
struct ServerRequest {
  enum class Kind : uint8_t {
    kFrame,          ///< a well-framed request; payload not yet decoded
    kProtocolError,  ///< framing-layer failure; reply typed error
  };
  Kind kind = Kind::kFrame;
  net::Frame frame;
  net::ErrorCode error = net::ErrorCode::kInternal;  ///< kProtocolError
  std::string error_msg;
  bool fatal = false;       ///< close the connection after replying
  uint64_t enqueue_ns = 0;  ///< for the per-request queue-wait timeout
};

/// Resolved "server.*" metric pointers (registration once at startup; hot
/// path updates are lock-free). README has the catalogue.
struct ServerMetrics {
  void Attach(obs::MetricsRegistry* reg);

  obs::Counter* requests = nullptr;
  obs::Counter* protocol_errors = nullptr;
  obs::Counter* request_errors = nullptr;
  obs::Counter* timeouts = nullptr;
  obs::Counter* disconnect_aborts = nullptr;
  obs::Counter* accepts = nullptr;
  obs::Counter* backpressure_pauses = nullptr;
  obs::Counter* bytes_in = nullptr;
  obs::Counter* bytes_out = nullptr;
  obs::Gauge* active_connections = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Histogram* request_latency = nullptr;
  /// Indexed by request opcode value (net::Opcode::kPing..kInspect).
  obs::Counter* op_count[10] = {};
  obs::Histogram* op_latency[10] = {};
  /// Per-stage latency decomposition ("rpc.stage.<stage>"): how much of
  /// each request went to queue wait, lock waits, latch waits, tree work,
  /// group-commit wait and fsync. Stage sums equal rpc.request_total.
  obs::Histogram* stage[obs::kNumStages] = {};
  obs::Histogram* request_total = nullptr;
};

/// Per-connection state. Queueing fields (pending/scheduled/closed/...)
/// are guarded by the owning Server's mutex; the execution fields (txn,
/// write path) are touched only by the single worker that has the session
/// scheduled, which is what keeps the one-thread-per-transaction
/// discipline the engine requires.
class Session {
 public:
  Session(uint64_t id, net::Socket sock) : id_(id), sock_(std::move(sock)) {}
  GISTCR_DISALLOW_COPY_AND_ASSIGN(Session);

  uint64_t id() const { return id_; }
  int fd() const { return sock_.fd(); }

  /// Executes one request, writing response frame(s) to the socket.
  /// Returns false when the connection must be closed (fatal protocol
  /// error). Called from a worker thread with the session scheduled.
  bool Process(const ServerRequest& req, Database* db, bool draining,
               uint64_t request_timeout_ms, const ServerMetrics& metrics);

  /// Rolls back the open transaction, if any (disconnect, forced drain).
  /// Safe from any thread as long as no request is concurrently executing.
  void AbortOpenTxn(Database* db, const ServerMetrics& metrics);

  bool has_txn() const { return txn_ != nullptr; }

  // --- queueing state, guarded by Server::mu_ ---------------------------
  std::string inbuf;                  ///< unparsed stream bytes (loop only)
  net::FrameReader reader{net::kMaxRequestPayload};
  std::deque<ServerRequest> pending;
  bool scheduled = false;   ///< a worker owns the session right now
  bool closed = false;      ///< fd saw EOF/error or a fatal reply was sent
  bool paused = false;      ///< EPOLLIN disarmed for backpressure
  bool in_epoll = false;

 private:
  Status HandleBegin(const net::Frame& req, bool draining, Database* db);
  Status HandleCommit(const net::Frame& req, Database* db);
  Status HandleAbort(const net::Frame& req, Database* db);
  Status HandleInsert(const net::Frame& req, bool draining, Database* db);
  Status HandleDelete(const net::Frame& req, bool draining, Database* db);
  Status HandleSearch(const net::Frame& req, bool draining, Database* db);
  Status HandleStats(const net::Frame& req, Database* db);
  Status HandleInspect(const net::Frame& req, Database* db);

  /// Runs \p body inside the session transaction, or an auto-commit
  /// transaction when none is open. Clears the session transaction (after
  /// rolling it back) when the operation loses a deadlock, so the client
  /// sees txn_aborted on the error frame.
  template <typename Fn>
  Status InTxn(bool draining, Database* db, Fn body);

  Status SendFrame(net::Opcode op, uint64_t request_id, Slice payload,
                   uint8_t flags = 0);
  Status SendError(uint64_t request_id, net::ErrorCode code, Slice msg);

  uint64_t id_;
  net::Socket sock_;
  Transaction* txn_ = nullptr;
  Database* db_ = nullptr;             ///< set on first Process call
  const ServerMetrics* metrics_ = nullptr;
  bool txn_aborted_flag_ = false;  ///< set when an error reply must carry
                                   ///  "your transaction was rolled back"
};

}  // namespace gistcr

#endif  // GISTCR_SERVER_SESSION_H_
